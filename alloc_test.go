// Steady-state allocation contract: once a table has reached its
// working-set shape, the per-operation path — hash, chain walk, block
// read/write-back through the store — allocates nothing on the mem
// backend. Disk-owned scratch buffers (iomodel.Disk.AcquireBuf), the
// pinned zero-copy read path (Disk.ReadPinned) and the preallocated
// buffer-pool arena are what make this hold; these tests gate it so a
// future change cannot quietly reintroduce per-op garbage.
package extbuf_test

import (
	"testing"

	"extbuf"
	"extbuf/internal/workload"
	"extbuf/internal/xrand"
)

// steadyTable builds a populated table of the given structure on the
// mem backend, with keys to exercise.
func steadyTable(t testing.TB, structure string, n int) (extbuf.Table, []uint64) {
	cfg := extbuf.Config{BlockSize: 64, MemoryWords: 1024, Beta: 8,
		ExpectedItems: n, Seed: 17}
	if structure == "extendible" {
		cfg.MemoryWords = int64(8*n/64 + 4096)
	}
	tab, err := extbuf.Open(structure, cfg)
	if err != nil {
		t.Fatal(err)
	}
	keys := workload.Keys(xrand.New(23), n)
	for i, k := range keys {
		if err := tab.Insert(k, uint64(i)); err != nil {
			tab.Close()
			t.Fatal(err)
		}
	}
	return tab, keys
}

// TestSteadyStateZeroAllocs is the acceptance gate: overwrites and
// lookups on a warmed mem-backend table run allocation-free.
func TestSteadyStateZeroAllocs(t *testing.T) {
	cases := []struct {
		structure string
		op        string
	}{
		{"knuth", "upsert"},
		{"knuth", "lookup"},
		{"linprobe", "lookup"},
		{"twolevel", "lookup"},
		{"extendible", "lookup"},
		{"buffered", "lookup"},
	}
	for _, tc := range cases {
		t.Run(tc.structure+"/"+tc.op, func(t *testing.T) {
			tab, keys := steadyTable(t, tc.structure, 20000)
			defer tab.Close()
			i := 0
			var run func()
			switch tc.op {
			case "upsert":
				run = func() {
					k := keys[i%len(keys)]
					i++
					if err := tab.Upsert(k, uint64(i)); err != nil {
						t.Fatal(err)
					}
				}
			case "lookup":
				run = func() {
					k := keys[i%len(keys)]
					i++
					if _, ok := tab.Lookup(k); !ok {
						t.Fatal("lost key")
					}
				}
			}
			run() // warm the disk scratch freelist
			if allocs := testing.AllocsPerRun(400, run); allocs != 0 {
				t.Fatalf("steady-state %s %s: %.2f allocs/op, want 0",
					tc.structure, tc.op, allocs)
			}
		})
	}
}

// --- Steady-state micro-benchmarks (the CI alloc gate watches these) ---

// BenchmarkSteadyStateUpsert measures the warmed overwrite path with
// allocation reporting: 0 allocs/op on the mem backend.
func BenchmarkSteadyStateUpsert(b *testing.B) {
	for _, structure := range []string{"knuth", "twolevel"} {
		b.Run(structure, func(b *testing.B) {
			tab, keys := steadyTable(b, structure, 50000)
			defer tab.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := tab.Upsert(keys[i%len(keys)], uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSteadyStateLookup measures the warmed read path with
// allocation reporting: 0 allocs/op on the mem backend.
func BenchmarkSteadyStateLookup(b *testing.B) {
	for _, structure := range []string{"knuth", "buffered"} {
		b.Run(structure, func(b *testing.B) {
			tab, keys := steadyTable(b, structure, 50000)
			defer tab.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := tab.Lookup(keys[i%len(keys)]); !ok {
					b.Fatal("lost key")
				}
			}
		})
	}
}

// BenchmarkSteadyStateEngineOps measures the sharded engine's pooled
// single-op and batch submission paths with allocation reporting. The
// batch path amortizes its per-batch bookkeeping over the pooled
// request scratch, so allocs/op rounds to 0 at batch 256.
func BenchmarkSteadyStateEngineOps(b *testing.B) {
	for _, c := range []struct {
		name  string
		batch int
	}{{"single", 1}, {"batch256", 256}} {
		b.Run(c.name, func(b *testing.B) {
			s, err := extbuf.NewSharded("knuth", extbuf.Config{
				BlockSize: 64, MemoryWords: 1024, ExpectedItems: 50000, Seed: 29,
			}, 4)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			keys := workload.Keys(xrand.New(31), 50000)
			vals := make([]uint64, len(keys))
			kc := workload.Chunks(keys, c.batch)
			vc := workload.Chunks(vals, c.batch)
			for i := range kc {
				if err := s.UpsertBatch(kc[i], vc[i]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			if c.batch == 1 {
				for i := 0; i < b.N; i++ {
					if err := s.Upsert(keys[i%len(keys)], uint64(i)); err != nil {
						b.Fatal(err)
					}
				}
			} else {
				for done := 0; done < b.N; {
					chunk := kc[(done/c.batch)%len(kc)]
					vchunk := vc[(done/c.batch)%len(vc)]
					if err := s.UpsertBatch(chunk, vchunk); err != nil {
						b.Fatal(err)
					}
					done += len(chunk)
				}
			}
		})
	}
}
