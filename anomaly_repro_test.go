package extbuf_test

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"extbuf"
	"extbuf/internal/wal"
)

// TestLegacyShipOrderAnomaly reconstructs the pre-fix §2a failure mode
// and demonstrates it: mutations applied through the plain batch path
// and shipped AFTERWARDS, per "connection" (goroutine), so the window
// between engine apply and ship append lets two racing writers apply
// A-then-B but ship B-then-A. Replaying such a log settles on a
// different value than the engine — the silent replica divergence the
// shard-sequenced ship seam eliminates.
//
// The divergence is only OBSERVABLE when an inversion hits the last
// writes of a run (earlier inversions are papered over by later
// agreeing writes), so the test runs many short racing trials instead
// of one long one, and yields between apply and ship — the preemption
// point the legacy code left open to the scheduler anyway.
//
// The test is gated off: the racy path no longer exists in the server,
// so this is a demonstration harness, not a regression gate, and losing
// a race is probabilistic — CI must not depend on it. Run it with
//
//	EXTBUF_ANOMALY_REPRO=1 go test -run TestLegacyShipOrderAnomaly -v .
//
// The fixed path's counterpart assertions live in
// internal/server TestOneKeyHammerOrderIdentical, which runs always.
func TestLegacyShipOrderAnomaly(t *testing.T) {
	if os.Getenv("EXTBUF_ANOMALY_REPRO") == "" {
		t.Skip("legacy failing-mode demo; set EXTBUF_ANOMALY_REPRO=1 to run")
	}
	const (
		hotKey  = uint64(7)
		writers = 4
		rounds  = 100
		trials  = 2000
	)
	for trial := 0; trial < trials; trial++ {
		engineVal, replayVal, err := runLegacyShipTrial(hotKey, writers, rounds, trial)
		if err != nil {
			t.Fatal(err)
		}
		if replayVal != engineVal {
			t.Logf("trial %d reproduced §2a divergence: engine settled on %#x, ship-log replay on %#x",
				trial, engineVal, replayVal)
			return
		}
	}
	t.Fatalf("anomaly did not reproduce in %d trials (the race is probabilistic; rerun or raise trials)", trials)
}

// runLegacyShipTrial races writers through the legacy apply-then-ship
// shape on one engine+log pair and returns the engine's final value for
// the hot key alongside the value a follower's replay would settle on.
func runLegacyShipTrial(hotKey uint64, writers, rounds, trial int) (engineVal, replayVal uint64, err error) {
	s, err := extbuf.NewSharded("buffered", extbuf.Config{}, 4)
	if err != nil {
		return 0, 0, err
	}
	defer s.Close()
	dir, err := os.MkdirTemp("", "anomaly")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	ship, err := wal.OpenShip(dir+"/ship.log", 1)
	if err != nil {
		return 0, 0, err
	}
	defer ship.Close()

	errCh := make(chan error, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			keys := []uint64{hotKey}
			vals := []uint64{0}
			for i := 0; i < rounds; i++ {
				vals[0] = uint64(w)<<32 | uint64(i+1)
				// The legacy PR 7 shape: apply, THEN ship, with nothing
				// tying the two orders together across goroutines. The
				// yield sits exactly in the window the bug leaves open.
				if err := s.UpsertBatch(keys, vals); err != nil {
					errCh <- err
					return
				}
				runtime.Gosched()
				if _, err := ship.Append(wal.OpUpsert, keys, vals); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return 0, 0, fmt.Errorf("trial %d: %w", trial, err)
	default:
	}

	engineVal, ok := s.Lookup(hotKey)
	if !ok {
		return 0, 0, fmt.Errorf("trial %d: hot key missing from engine", trial)
	}
	// Replay the ship log the way a follower would: last record wins.
	recs := make([]wal.Record, 512)
	cur := ship.StartLSN()
	for {
		n, err := ship.Read(cur, recs)
		if err != nil {
			return 0, 0, fmt.Errorf("trial %d: %w", trial, err)
		}
		if n == 0 {
			return engineVal, replayVal, nil
		}
		for _, rec := range recs[:n] {
			if rec.Key == hotKey {
				replayVal = rec.Val
			}
		}
		cur += uint64(n)
	}
}
