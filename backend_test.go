package extbuf_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"extbuf"
	"extbuf/internal/workload"
	"extbuf/internal/xrand"
)

// TestBackendCountersIdentical is the refactor's contract: the same
// structure under the same seed charges bit-for-bit identical I/O
// counters on every backend — only the real price of the bytes differs.
func TestBackendCountersIdentical(t *testing.T) {
	run := func(cfg extbuf.Config) extbuf.Stats {
		t.Helper()
		tab, err := extbuf.Open("buffered", cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer tab.Close()
		rng := xrand.New(11)
		keys := workload.Keys(rng, 4000)
		for i, k := range keys {
			if err := tab.Insert(k, uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		for i, k := range keys {
			if v, ok := tab.Lookup(k); !ok || v != uint64(i) {
				t.Fatalf("lost key %d", k)
			}
		}
		return tab.Stats()
	}
	base := extbuf.Config{BlockSize: 16, MemoryWords: 512, Seed: 5}

	mem := base
	mem.Backend = "mem"
	want := run(mem)

	file := base
	file.Backend = "file"
	file.CacheBlocks = 4 // force real evictions and preads
	if got := run(file); got != want {
		t.Fatalf("file backend counters %+v, mem %+v", got, want)
	}

	lat := base
	lat.Backend = "latency"
	lat.SeekDelay = time.Nanosecond
	if got := run(lat); got != want {
		t.Fatalf("latency backend counters %+v, mem %+v", got, want)
	}

	// The durability machinery (WAL appends, copy-on-write placement,
	// checkpoints) lives entirely below the cost model: a durable table
	// charges the same counters bit for bit.
	durable := base
	durable.Backend = "file"
	durable.Path = filepath.Join(t.TempDir(), "durable.tbl")
	durable.CacheBlocks = 4
	if got := run(durable); got != want {
		t.Fatalf("durable file backend counters %+v, mem %+v", got, want)
	}

	// Extreme cache pressure: a 2-frame buffer pool evicts on nearly
	// every access (CLOCK sweeps, dirty write-backs, re-faults), yet the
	// model counters must stay bit-identical — eviction is a cost-layer
	// invisible mechanism.
	tiny := base
	tiny.Backend = "file"
	tiny.CacheBlocks = 2
	if got := run(tiny); got != want {
		t.Fatalf("2-frame file backend counters %+v, mem %+v", got, want)
	}
}

func TestFileBackendPersistsToPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "table.blocks")
	tab, err := extbuf.Open("knuth", extbuf.Config{
		BlockSize: 16, MemoryWords: 512, ExpectedItems: 2048,
		Backend: "file", Path: path, CacheBlocks: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 2000; k++ {
		if err := tab.Insert(k, k*2); err != nil {
			t.Fatal(err)
		}
	}
	if v, ok := tab.Lookup(1500); !ok || v != 3000 {
		t.Fatalf("lookup through page cache failed: %d %v", v, ok)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("backing file missing: %v", err)
	}
	if info.Size() == 0 {
		t.Fatal("backing file empty despite evictions")
	}
	tab.Close()
	// A named file survives Close (only temp files are removed).
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("named backing file removed on Close: %v", err)
	}
}

func TestShardedFileBackendOneFilePerShard(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spindles")
	s, err := extbuf.NewSharded("knuth", extbuf.Config{
		BlockSize: 16, MemoryWords: 512, ExpectedItems: 4096,
		Backend: "file", Path: path, CacheBlocks: 8, Seed: 9,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 4000; k++ {
		if err := s.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 4000 {
		t.Fatalf("Len = %d", s.Len())
	}
	for i := 0; i < 4; i++ {
		shardPath := fmt.Sprintf("%s.shard%03d", path, i)
		if _, err := os.Stat(shardPath); err != nil {
			t.Fatalf("shard %d file missing: %v", i, err)
		}
	}
	s.Close()
}

// TestConstructorErrorClosesStore: when the inner table constructor
// fails after the backend was built, the store must be closed — for a
// temp file backend that means the file is removed, not leaked.
func TestConstructorErrorClosesStore(t *testing.T) {
	countTemp := func() int {
		m, err := filepath.Glob(filepath.Join(os.TempDir(), "extbuf-*.blocks"))
		if err != nil {
			t.Fatal(err)
		}
		return len(m)
	}
	before := countTemp()
	// The extendible directory cannot fit in a 2-word budget, so
	// exthash.New fails after the temp store exists.
	tab, err := extbuf.NewExtendible(extbuf.Config{
		BlockSize: 8, MemoryWords: 2, Backend: "file",
	})
	if err == nil {
		tab.Close()
		t.Skip("constructor unexpectedly fit the budget; cannot exercise error path")
	}
	if after := countTemp(); after != before {
		t.Fatalf("temp stores leaked on constructor error: %d -> %d", before, after)
	}
}

func TestUnknownBackend(t *testing.T) {
	_, err := extbuf.Open("buffered", extbuf.Config{Backend: "tape"})
	if !errors.Is(err, extbuf.ErrUnknownBackend) {
		t.Fatalf("err = %v, want ErrUnknownBackend", err)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  extbuf.Config
		open func(extbuf.Config) (extbuf.Table, error)
		want error
	}{
		{"beta too small", extbuf.Config{Beta: 1}, extbuf.New, extbuf.ErrBetaRange},
		{"beta exceeds block", extbuf.Config{BlockSize: 16, Beta: 17}, extbuf.New, extbuf.ErrBetaRange},
		{"gamma too small core", extbuf.Config{Gamma: 1}, extbuf.New, extbuf.ErrGammaRange},
		{"gamma too small logmethod", extbuf.Config{Gamma: -3}, extbuf.NewLogMethod, extbuf.ErrGammaRange},
		{"block too small", extbuf.Config{BlockSize: 4}, extbuf.New, extbuf.ErrBlockTooSmall},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tab, err := tc.open(tc.cfg)
			if tab != nil {
				tab.Close()
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
	// Defaults stay valid: the zero Config must still open.
	tab, err := extbuf.New(extbuf.Config{})
	if err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	tab.Close()
}

// TestReopenSamePathRoundTrip is the durability contract for every
// structure: Open on an existing Path reopens the table with contents,
// parameters and topology intact — including a second reopen with a
// zero config, which must adopt the stored parameters.
func TestReopenSamePathRoundTrip(t *testing.T) {
	for _, name := range extbuf.Structures() {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "table.blocks")
			cfg := extbuf.Config{
				BlockSize: 16, MemoryWords: 512, ExpectedItems: 4096, Seed: 7,
				Backend: "file", Path: path, CacheBlocks: 8,
			}
			if name == "extendible" {
				cfg.MemoryWords = 1 << 16
			}
			tab, err := extbuf.Open(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for k := uint64(1); k <= 2000; k++ {
				if err := tab.Insert(k, k*3); err != nil {
					t.Fatalf("insert %d: %v", k, err)
				}
			}
			for k := uint64(1); k <= 100; k++ {
				if !tab.Delete(k) {
					t.Fatalf("delete %d missed", k)
				}
			}
			if err := tab.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}

			// First reopen: explicit matching config.
			tab, err = extbuf.Open(name, cfg)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			if got := tab.Len(); got != 1900 {
				t.Fatalf("Len after reopen = %d, want 1900", got)
			}
			// Mutate across the generation boundary.
			for k := uint64(2001); k <= 2200; k++ {
				if err := tab.Insert(k, k*3); err != nil {
					t.Fatalf("insert after reopen: %v", err)
				}
			}
			if err := tab.Close(); err != nil {
				t.Fatalf("close after reopen: %v", err)
			}

			// Second reopen: zero parameters adopt the superblock's.
			tab, err = extbuf.Open(name, extbuf.Config{Backend: "file", Path: path})
			if err != nil {
				t.Fatalf("zero-config reopen: %v", err)
			}
			defer tab.Close()
			for k := uint64(101); k <= 2200; k++ {
				v, ok := tab.Lookup(k)
				if !ok || v != k*3 {
					t.Fatalf("key %d lost across reopen (ok=%v v=%d)", k, ok, v)
				}
			}
			if _, ok := tab.Lookup(50); ok {
				t.Fatal("deleted key resurfaced after reopen")
			}
		})
	}
}

// TestShardedReopenRoundTrip: a durable sharded engine reopens one file
// per shard behind the recovery barrier, and refuses a different shard
// count.
func TestShardedReopenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spindles")
	cfg := extbuf.Config{
		BlockSize: 16, MemoryWords: 512, ExpectedItems: 4096, Seed: 9,
		Backend: "file", Path: path, CacheBlocks: 8, FlushPolicy: extbuf.FlushAsync,
	}
	s, err := extbuf.NewSharded("knuth", cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 4000; k++ {
		if err := s.Insert(k, k+7); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	if _, err := extbuf.NewSharded("knuth", cfg, 8); !errors.Is(err, extbuf.ErrSuperblockMismatch) {
		t.Fatalf("reopen with wrong shard count: err = %v, want ErrSuperblockMismatch", err)
	}

	s, err = extbuf.NewSharded("knuth", cfg, 4)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s.Close()
	if got := s.Len(); got != 4000 {
		t.Fatalf("Len after reopen = %d, want 4000", got)
	}
	for k := uint64(1); k <= 4000; k++ {
		v, ok := s.Lookup(k)
		if !ok || v != k+7 {
			t.Fatalf("key %d lost across sharded reopen (ok=%v v=%d)", k, ok, v)
		}
	}
}

// TestSuperblockMismatch: conflicting explicit parameters and a wrong
// structure name must be rejected, not silently scramble the table.
func TestSuperblockMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "table.blocks")
	tab, err := extbuf.Open("knuth", extbuf.Config{
		BlockSize: 16, MemoryWords: 512, Seed: 3, Backend: "file", Path: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := tab.Close(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		open func() (extbuf.Table, error)
	}{
		{"different structure", func() (extbuf.Table, error) {
			return extbuf.Open("linear", extbuf.Config{Backend: "file", Path: path})
		}},
		{"different block size", func() (extbuf.Table, error) {
			return extbuf.Open("knuth", extbuf.Config{BlockSize: 32, Backend: "file", Path: path})
		}},
		{"different seed", func() (extbuf.Table, error) {
			return extbuf.Open("knuth", extbuf.Config{Seed: 99, Backend: "file", Path: path})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tab, err := tc.open()
			if tab != nil {
				tab.Close()
			}
			if !errors.Is(err, extbuf.ErrSuperblockMismatch) {
				t.Fatalf("err = %v, want ErrSuperblockMismatch", err)
			}
		})
	}
}
