package extbuf_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"extbuf"
	"extbuf/internal/workload"
	"extbuf/internal/xrand"
)

// TestBackendCountersIdentical is the refactor's contract: the same
// structure under the same seed charges bit-for-bit identical I/O
// counters on every backend — only the real price of the bytes differs.
func TestBackendCountersIdentical(t *testing.T) {
	run := func(cfg extbuf.Config) extbuf.Stats {
		t.Helper()
		tab, err := extbuf.Open("buffered", cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer tab.Close()
		rng := xrand.New(11)
		keys := workload.Keys(rng, 4000)
		for i, k := range keys {
			if err := tab.Insert(k, uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		for i, k := range keys {
			if v, ok := tab.Lookup(k); !ok || v != uint64(i) {
				t.Fatalf("lost key %d", k)
			}
		}
		return tab.Stats()
	}
	base := extbuf.Config{BlockSize: 16, MemoryWords: 512, Seed: 5}

	mem := base
	mem.Backend = "mem"
	want := run(mem)

	file := base
	file.Backend = "file"
	file.CacheBlocks = 4 // force real evictions and preads
	if got := run(file); got != want {
		t.Fatalf("file backend counters %+v, mem %+v", got, want)
	}

	lat := base
	lat.Backend = "latency"
	lat.SeekDelay = time.Nanosecond
	if got := run(lat); got != want {
		t.Fatalf("latency backend counters %+v, mem %+v", got, want)
	}
}

func TestFileBackendPersistsToPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "table.blocks")
	tab, err := extbuf.Open("knuth", extbuf.Config{
		BlockSize: 16, MemoryWords: 512, ExpectedItems: 2048,
		Backend: "file", Path: path, CacheBlocks: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 2000; k++ {
		if err := tab.Insert(k, k*2); err != nil {
			t.Fatal(err)
		}
	}
	if v, ok := tab.Lookup(1500); !ok || v != 3000 {
		t.Fatalf("lookup through page cache failed: %d %v", v, ok)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("backing file missing: %v", err)
	}
	if info.Size() == 0 {
		t.Fatal("backing file empty despite evictions")
	}
	tab.Close()
	// A named file survives Close (only temp files are removed).
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("named backing file removed on Close: %v", err)
	}
}

func TestShardedFileBackendOneFilePerShard(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spindles")
	s, err := extbuf.NewSharded("knuth", extbuf.Config{
		BlockSize: 16, MemoryWords: 512, ExpectedItems: 4096,
		Backend: "file", Path: path, CacheBlocks: 8, Seed: 9,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 4000; k++ {
		if err := s.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 4000 {
		t.Fatalf("Len = %d", s.Len())
	}
	for i := 0; i < 4; i++ {
		shardPath := fmt.Sprintf("%s.shard%03d", path, i)
		if _, err := os.Stat(shardPath); err != nil {
			t.Fatalf("shard %d file missing: %v", i, err)
		}
	}
	s.Close()
}

// TestConstructorErrorClosesStore: when the inner table constructor
// fails after the backend was built, the store must be closed — for a
// temp file backend that means the file is removed, not leaked.
func TestConstructorErrorClosesStore(t *testing.T) {
	countTemp := func() int {
		m, err := filepath.Glob(filepath.Join(os.TempDir(), "extbuf-*.blocks"))
		if err != nil {
			t.Fatal(err)
		}
		return len(m)
	}
	before := countTemp()
	// The extendible directory cannot fit in a 2-word budget, so
	// exthash.New fails after the temp store exists.
	tab, err := extbuf.NewExtendible(extbuf.Config{
		BlockSize: 8, MemoryWords: 2, Backend: "file",
	})
	if err == nil {
		tab.Close()
		t.Skip("constructor unexpectedly fit the budget; cannot exercise error path")
	}
	if after := countTemp(); after != before {
		t.Fatalf("temp stores leaked on constructor error: %d -> %d", before, after)
	}
}

func TestUnknownBackend(t *testing.T) {
	_, err := extbuf.Open("buffered", extbuf.Config{Backend: "tape"})
	if !errors.Is(err, extbuf.ErrUnknownBackend) {
		t.Fatalf("err = %v, want ErrUnknownBackend", err)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  extbuf.Config
		open func(extbuf.Config) (extbuf.Table, error)
		want error
	}{
		{"beta too small", extbuf.Config{Beta: 1}, extbuf.New, extbuf.ErrBetaRange},
		{"beta exceeds block", extbuf.Config{BlockSize: 16, Beta: 17}, extbuf.New, extbuf.ErrBetaRange},
		{"gamma too small core", extbuf.Config{Gamma: 1}, extbuf.New, extbuf.ErrGammaRange},
		{"gamma too small logmethod", extbuf.Config{Gamma: -3}, extbuf.NewLogMethod, extbuf.ErrGammaRange},
		{"block too small", extbuf.Config{BlockSize: 4}, extbuf.New, extbuf.ErrBlockTooSmall},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tab, err := tc.open(tc.cfg)
			if tab != nil {
				tab.Close()
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
	// Defaults stay valid: the zero Config must still open.
	tab, err := extbuf.New(extbuf.Config{})
	if err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	tab.Close()
}
