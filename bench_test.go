// Benchmarks regenerating every artifact of the paper's evaluation (see
// DESIGN.md §4 for the experiment index). Each experiment-level
// benchmark runs the corresponding harness driver and reports the key
// measured quantity via ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces the full series; the cmd/ binaries print the same rows as
// human-readable tables. Per-structure micro-benchmarks report the
// simulated disk I/Os per operation, the quantity the paper's t_u and
// t_q measure (wall time of the simulator is also reported but is not a
// claim of the paper).
package extbuf_test

import (
	"fmt"
	"math"
	"testing"

	"extbuf"
	"extbuf/internal/binball"
	"extbuf/internal/core"
	"extbuf/internal/experiments"
	"extbuf/internal/hashfn"
	"extbuf/internal/iomodel"
	"extbuf/internal/workload"
	"extbuf/internal/xrand"
)

// benchCfg is the scaled-down experiment configuration used by the
// experiment-level benchmarks (cmd binaries run the full Default()).
func benchCfg() experiments.Config {
	cfg := experiments.Default()
	cfg.N = 20000
	cfg.QuerySamples = 2000
	return cfg
}

// --- Experiment F1: Figure 1 ---

func BenchmarkFigure1(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Experiments T1.1–T1.3: Theorem 1 regimes ---

func benchStaged(b *testing.B, c float64) {
	cfg := benchCfg()
	fb := float64(cfg.B)
	delta := 1 / math.Pow(fb, c)
	var tu float64
	for i := 0; i < b.N; i++ {
		model := iomodel.NewModel(cfg.B, cfg.StagedMWords)
		s, err := core.NewStaged(model, hashfn.NewIdeal(cfg.Seed), core.StagedConfig{Delta: delta})
		if err != nil {
			b.Fatal(err)
		}
		rng := xrand.New(cfg.Seed)
		for _, k := range workload.Keys(rng, cfg.N) {
			s.Insert(k, 0)
		}
		tu = float64(model.Counters().IOs()) / float64(cfg.N)
		s.Close()
	}
	b.ReportMetric(tu, "tu-diskIOs/insert")
}

func BenchmarkTheorem1CLow(b *testing.B)  { benchStaged(b, 0.5) } // T1.3: c < 1
func BenchmarkTheorem1C1(b *testing.B)    { benchStaged(b, 1.0) } // T1.2: c = 1
func BenchmarkTheorem1CHigh(b *testing.B) { benchStaged(b, 1.5) } // T1.1: c > 1

// --- Experiments T2.1–T2.2: Theorem 2 ---

func BenchmarkTheorem2(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Theorem2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTheorem2Eps(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Theorem2Eps(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Experiment L5: Lemma 5 ---

func BenchmarkLemma5(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Lemma5(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Experiments L3/L4: bin-ball games ---

func BenchmarkBinBallLemma3(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.BinBallLemma3(cfg, 200)
	}
}

func BenchmarkBinBallLemma4(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.BinBallLemma4(cfg, 200)
	}
}

func BenchmarkBinBallPlay(b *testing.B) {
	rng := xrand.New(1)
	g := binball.Game{S: 1000, R: 10000, T: 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binball.Play(g, rng)
	}
}

// --- Experiments EQ1/L2: zone audits ---

func BenchmarkZoneAudit(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ZoneAudit(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGoodFunctions(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.GoodFunctions(cfg, 20000); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Experiment K64: Knuth baseline ---

func BenchmarkKnuthQuery(b *testing.B) {
	cfg := benchCfg()
	cfg.QuerySamples = 1000
	for i := 0; i < b.N; i++ {
		if _, err := experiments.KnuthBaseline(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Experiment JP: Jensen–Pagh point ---

func BenchmarkJensenPagh(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.JensenPagh(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Experiment ABL: ablations of design choices ---

func BenchmarkAblations(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Ablations(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Per-structure micro-benchmarks: diskIOs/op is the paper's metric ---

func benchInsert(b *testing.B, structure string) {
	cfg := extbuf.Config{BlockSize: 64, MemoryWords: 1024, Beta: 8,
		ExpectedItems: b.N + 1, Seed: 9}
	if structure == "extendible" {
		cfg.MemoryWords = int64(8*(b.N+4096)/64 + 4096)
	}
	tab, err := extbuf.Open(structure, cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer tab.Close()
	rng := xrand.New(33)
	keys := make([]uint64, b.N)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tab.Insert(keys[i], uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(tab.Stats().IOs())/float64(b.N), "diskIOs/op")
}

func benchLookup(b *testing.B, structure string) {
	const n = 50000
	cfg := extbuf.Config{BlockSize: 64, MemoryWords: 1024, Beta: 8,
		ExpectedItems: n, Seed: 9}
	if structure == "extendible" {
		cfg.MemoryWords = 8*n/64 + 4096
	}
	tab, err := extbuf.Open(structure, cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer tab.Close()
	rng := xrand.New(34)
	keys := workload.Keys(rng, n)
	for i, k := range keys {
		if err := tab.Insert(k, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	before := tab.Stats().IOs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tab.Lookup(keys[i%n]); !ok {
			b.Fatal("lost key")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(tab.Stats().IOs()-before)/float64(b.N), "diskIOs/op")
}

func BenchmarkInsert(b *testing.B) {
	for _, s := range extbuf.Structures() {
		b.Run(s, func(b *testing.B) { benchInsert(b, s) })
	}
}

func BenchmarkLookup(b *testing.B) {
	for _, s := range extbuf.Structures() {
		b.Run(s, func(b *testing.B) { benchLookup(b, s) })
	}
}

// BenchmarkBetaSweep reports the (t_u, t_q) pair at each beta — the
// upper-bound curve of Figure 1 as raw metrics.
func BenchmarkBetaSweep(b *testing.B) {
	for _, beta := range []int{2, 8, 32, 64} {
		b.Run(betaName(beta), func(b *testing.B) {
			const n, q = 30000, 3000
			var tu, tq float64
			for i := 0; i < b.N; i++ {
				tab, err := extbuf.New(extbuf.Config{BlockSize: 64, MemoryWords: 1024,
					Beta: beta, Seed: uint64(beta)})
				if err != nil {
					b.Fatal(err)
				}
				rng := xrand.New(5)
				keys := workload.Keys(rng, n)
				for j, k := range keys {
					if err := tab.Insert(k, uint64(j)); err != nil {
						b.Fatal(err)
					}
				}
				ins := tab.Stats().IOs()
				for j := 0; j < q; j++ {
					tab.Lookup(keys[rng.Intn(n)])
				}
				tu = float64(ins) / n
				tq = float64(tab.Stats().IOs()-ins) / q
				tab.Close()
			}
			b.ReportMetric(tu, "tu-diskIOs/insert")
			b.ReportMetric(tq, "tq-diskIOs/lookup")
		})
	}
}

// --- Sharded engine benchmarks: the batch pipeline's throughput ---

// benchShardedBatch drives the pipelined engine with batches of the
// given size, reporting wall-clock throughput of the batch APIs. These
// are the benchmarks CI's regression gate watches.
func benchShardedBatch(b *testing.B, shards, batch int) {
	s, err := extbuf.NewSharded("buffered", extbuf.Config{
		BlockSize: 64, MemoryWords: 1024, Beta: 8, Seed: 21,
	}, shards)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	rng := xrand.New(44)
	keys := make([]uint64, b.N)
	vals := make([]uint64, b.N)
	for i := range keys {
		keys[i] = rng.Uint64()
		vals[i] = uint64(i)
	}
	kc := workload.Chunks(keys, batch)
	vc := workload.Chunks(vals, batch)
	b.ResetTimer()
	for i := range kc {
		if err := s.InsertBatch(kc[i], vc[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(s.Stats().IOs())/float64(b.N), "diskIOs/op")
}

func BenchmarkShardedBatchInsert(b *testing.B) {
	for _, c := range []struct{ shards, batch int }{
		{1, 1}, {4, 64}, {8, 256},
	} {
		b.Run(fmt.Sprintf("shards=%d/batch=%d", c.shards, c.batch), func(b *testing.B) {
			benchShardedBatch(b, c.shards, c.batch)
		})
	}
}

func BenchmarkShardedBatchLookup(b *testing.B) {
	const n, batch = 50000, 256
	s, err := extbuf.NewSharded("buffered", extbuf.Config{
		BlockSize: 64, MemoryWords: 1024, Beta: 8, Seed: 22,
	}, 4)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	rng := xrand.New(45)
	keys := workload.Keys(rng, n)
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(i)
	}
	kc := workload.Chunks(keys, batch)
	vc := workload.Chunks(vals, batch)
	for i := range kc {
		if err := s.InsertBatch(kc[i], vc[i]); err != nil {
			b.Fatal(err)
		}
	}
	q := make([]uint64, batch)
	b.ResetTimer()
	for done := 0; done < b.N; done += len(q) {
		if left := b.N - done; left < len(q) {
			q = q[:left]
		}
		for i := range q {
			q[i] = keys[rng.Intn(n)]
		}
		_, found, err := s.LookupBatch(q)
		if err != nil {
			b.Fatal(err)
		}
		for i := range found {
			if !found[i] {
				b.Fatal("lost key")
			}
		}
	}
}

func betaName(beta int) string {
	switch beta {
	case 2:
		return "beta=2"
	case 8:
		return "beta=8"
	case 32:
		return "beta=32"
	default:
		return "beta=64"
	}
}
