package client

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Variable-length values ride the fixed-width protocol by client-side
// chunking: a blob under key k is stored as a header entry plus one
// entry per 8 value bytes, all under derived keys in a reserved key
// region (top bit set) that plain fixed-width keys must stay out of.
//
//	chunk key = 1<<63 | k<<8 | seq     (k < 2^55, seq in 0..255)
//	seq 0     = header: [byte len uint32][crc32(data) uint32]
//	seq 1..n  = 8 data bytes each, little-endian, zero-padded
//
// A blob write is one ordered batch with the header LAST, so a reader
// that sees the header sees chunks at least as new; a delete puts the
// header FIRST, so a reader that still sees it finds the chunks too.
// Batches are not atomic across keys: a reader racing a writer can
// catch a torn mix, which the header CRC detects — GetBlob retries a
// few times and then reports ErrBlobTorn. Two writers racing the SAME
// blob can interleave persistently; serialize per-blob writes (or
// arbitrate with CompareSwap on a separate lock key) if that matters.

// MaxBlobKey bounds the user key space for blobs: chunk keys pack the
// key and a sequence number into 63 bits.
const MaxBlobKey = uint64(1)<<55 - 1

// MaxBlobLen is the largest blob PutBlob accepts (255 data chunks).
const MaxBlobLen = 255 * 8

// ErrBlobTorn is returned by GetBlob when the stored chunks keep
// failing the header checksum — a concurrent writer is tearing the
// blob, or it was partially overwritten by a non-blob writer.
var ErrBlobTorn = errors.New("client: blob checksum mismatch (torn write?)")

// blobKey derives the chunk key for (k, seq).
func blobKey(k uint64, seq int) uint64 { return 1<<63 | k<<8 | uint64(seq) }

// blobChunks returns the data-chunk count for an n-byte blob.
func blobChunks(n int) int { return (n + 7) / 8 }

func checkBlobKey(key uint64) error {
	if key > MaxBlobKey {
		return fmt.Errorf("client: blob key %d exceeds MaxBlobKey", key)
	}
	return nil
}

// PutBlob stores data as key's blob, replacing any previous blob. The
// returned token covers the whole write.
func (c *Client) PutBlob(ctx context.Context, key uint64, data []byte) (ReadToken, error) {
	if err := checkBlobKey(key); err != nil {
		return ReadToken{}, err
	}
	if len(data) > MaxBlobLen {
		return ReadToken{}, fmt.Errorf("client: %d-byte blob exceeds MaxBlobLen %d", len(data), MaxBlobLen)
	}
	n := blobChunks(len(data))
	keys := make([]uint64, 0, n+1)
	vals := make([]uint64, 0, n+1)
	var word [8]byte
	for i := 0; i < n; i++ {
		word = [8]byte{}
		copy(word[:], data[i*8:])
		keys = append(keys, blobKey(key, i+1))
		vals = append(vals, binary.LittleEndian.Uint64(word[:]))
	}
	// Header last: per-key order within a batch is preserved, so the
	// header only becomes visible once its chunks are.
	keys = append(keys, blobKey(key, 0))
	vals = append(vals, uint64(len(data))|uint64(crc32.ChecksumIEEE(data))<<32)
	return c.Upsert(ctx, keys, vals)
}

// getBlobRetries bounds GetBlob's re-reads when a concurrent PutBlob
// tears the chunks under it.
const getBlobRetries = 8

// GetBlob reads key's blob, observing at least the state at's token
// stands for. found is false when no blob is stored under key.
func (c *Client) GetBlob(ctx context.Context, key uint64, at ReadToken) (data []byte, found bool, err error) {
	if err := checkBlobKey(key); err != nil {
		return nil, false, err
	}
	var keys []uint64
	for attempt := 0; attempt < getBlobRetries; attempt++ {
		vals, founds, err := c.Lookup(ctx, []uint64{blobKey(key, 0)}, at)
		if err != nil {
			return nil, false, err
		}
		if !founds[0] {
			return nil, false, nil
		}
		size := int(uint32(vals[0]))
		wantCRC := uint32(vals[0] >> 32)
		if size > MaxBlobLen {
			return nil, false, fmt.Errorf("client: blob header under key %d claims %d bytes", key, size)
		}
		n := blobChunks(size)
		keys = keys[:0]
		for i := 0; i < n; i++ {
			keys = append(keys, blobKey(key, i+1))
		}
		cvals, cfounds, err := c.Lookup(ctx, keys, at)
		if err != nil {
			return nil, false, err
		}
		data = make([]byte, n*8)
		torn := false
		for i := 0; i < n; i++ {
			if !cfounds[i] {
				torn = true // chunk deleted under us: racing delete/rewrite
				break
			}
			binary.LittleEndian.PutUint64(data[i*8:], cvals[i])
		}
		if !torn {
			data = data[:size]
			if crc32.ChecksumIEEE(data) == wantCRC {
				return data, true, nil
			}
		}
	}
	return nil, false, ErrBlobTorn
}

// DeleteBlob removes key's blob, reporting whether one was stored.
func (c *Client) DeleteBlob(ctx context.Context, key uint64) (found bool, _ ReadToken, err error) {
	if err := checkBlobKey(key); err != nil {
		return false, ReadToken{}, err
	}
	// Read the header to size the chunk range; delete header first so
	// readers stop resolving the blob before its chunks go.
	vals, founds, err := c.Lookup(ctx, []uint64{blobKey(key, 0)}, ReadToken{})
	if err != nil {
		return false, ReadToken{}, err
	}
	if !founds[0] {
		return false, ReadToken{}, nil
	}
	n := blobChunks(int(uint32(vals[0])))
	keys := make([]uint64, 0, n+1)
	keys = append(keys, blobKey(key, 0))
	for i := 0; i < n; i++ {
		keys = append(keys, blobKey(key, i+1))
	}
	founds, tok, err := c.Delete(ctx, keys)
	if err != nil {
		return false, tok, err
	}
	return founds[0], tok, nil
}
