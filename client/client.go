// Package client is the Go client for hashserved, the wire-protocol
// server in front of the extbuf engine (see DESIGN.md, "Serving
// layer").
//
// A Client multiplexes requests over a small pool of TCP connections.
// Every request is asynchronous at the wire level: the Go* methods
// write a frame and return a Pending whose Wait-style methods block for
// the matching response, so a single goroutine can pipeline many
// requests down one connection and the server aggregates them into
// engine batches. The plain methods (InsertBatch, LookupBatch, ...) are
// the synchronous wrappers: one Go* plus one wait, honoring the
// context's deadline.
//
// In-flight requests per connection are bounded (Options.Pipeline);
// past the bound, senders block — the client-side half of the
// end-to-end backpressure chain (client bound, server apply queue, TCP
// flow control, engine shard channels).
//
// An acknowledged mutation (a nil error from InsertBatch, UpsertBatch,
// DeleteBatch or a Pending.Wait) is durable on the server when it runs
// a durable backend: the server acks behind a group-committed
// write-ahead-log fsync.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"extbuf"
	"extbuf/internal/wire"
)

// ErrClosed is returned for operations on a closed client.
var ErrClosed = errors.New("client: closed")

// ErrTooLarge is returned for batches above the protocol's MaxBatch.
var ErrTooLarge = errors.New("client: batch exceeds wire.MaxBatch")

// ServerError is a failure reported by the server for one request (the
// wire ERR response); connection-level failures are returned as plain
// errors instead.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "server: " + e.Msg }

// IsReadOnly reports whether err is a server rejection of a mutation
// sent to a read-only replica — the signal to re-route writes to the
// primary (or the newly promoted node).
func IsReadOnly(err error) bool {
	var se *ServerError
	return errors.As(err, &se) && strings.HasPrefix(se.Msg, wire.ErrTextReadOnly)
}

// IsBehind reports whether err is a replica's rejection of a
// token-carrying read it could not satisfy in time — the signal to
// retry the read against the primary.
func IsBehind(err error) bool {
	var se *ServerError
	return errors.As(err, &se) && strings.HasPrefix(se.Msg, wire.ErrTextBehind)
}

// ReadToken is the position returned by an acknowledged mutation: the
// last ship-log LSN the mutation occupies, plus the replication epoch
// it was committed in. Passing it to Lookup guarantees read-your-writes
// against any node — a replica that has not yet applied the LSN waits
// (briefly) or answers with a BEHIND error instead of serving stale
// state. The zero ReadToken places no constraint. Tokens combine with
// Max, so one token can cover many writes.
//
// On a server without replication tokens are zero; reads behave as
// before.
type ReadToken struct {
	LSN   uint64
	Epoch uint64
}

// Max returns the later of two tokens — covering both writes.
func (t ReadToken) Max(o ReadToken) ReadToken {
	if o.LSN > t.LSN {
		t.LSN = o.LSN
	}
	if o.Epoch > t.Epoch {
		t.Epoch = o.Epoch
	}
	return t
}

// NodeInfo is a node's replication identity (the INFO reply).
type NodeInfo struct {
	// Epoch counts promotions; clients prefer the node with the highest
	// epoch after a failover.
	Epoch uint64
	// AppliedLSN is the node's applied horizon.
	AppliedLSN uint64
	// Writable reports whether the node accepts mutations.
	Writable bool
	// Role is "primary" or "follower".
	Role string
}

// Options configures Dial.
type Options struct {
	// Conns is the connection pool size (default 1). Requests are
	// spread round-robin.
	Conns int
	// Pipeline bounds the in-flight requests per connection (default
	// 64); senders block past it.
	Pipeline int
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
}

// Stats is the decoded STATS reply: engine length and memory, the
// paper's I/O model counters, and the backend real-cost counters.
type Stats struct {
	Len        int64
	MemoryUsed int64
	Ops        extbuf.Stats
	Store      extbuf.StoreStats
	Repl       extbuf.ReplStats
	Expiry     extbuf.ExpiryStats
}

// Client is a pooled, pipelined hashserved client. It is safe for
// concurrent use.
type Client struct {
	addr     string
	pipeline int
	timeout  time.Duration

	cmu    sync.RWMutex
	conns  []*poolConn
	next   atomic.Uint32
	closed atomic.Bool
}

// Dial connects the pool to addr.
func Dial(addr string, opts Options) (*Client, error) {
	n := opts.Conns
	if n <= 0 {
		n = 1
	}
	pipeline := opts.Pipeline
	if pipeline <= 0 {
		pipeline = 64
	}
	timeout := opts.DialTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	c := &Client{addr: addr, pipeline: pipeline, timeout: timeout}
	for i := 0; i < n; i++ {
		pc, err := c.dialConn()
		if err != nil {
			c.Close()
			return nil, err
		}
		c.conns = append(c.conns, pc)
	}
	return c, nil
}

// dialConn opens one pool connection and starts its reader.
func (c *Client) dialConn() (*poolConn, error) {
	nc, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", c.addr, err)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	pc := &poolConn{
		nc:      nc,
		bw:      bufio.NewWriterSize(nc, 64<<10),
		pending: make(map[uint32]*Pending),
		sem:     make(chan struct{}, c.pipeline),
	}
	go pc.readLoop()
	return pc, nil
}

// Close tears down every connection; outstanding Pendings fail.
func (c *Client) Close() error {
	c.closed.Store(true)
	c.cmu.RLock()
	conns := append([]*poolConn(nil), c.conns...)
	c.cmu.RUnlock()
	for _, pc := range conns {
		pc.fail(ErrClosed)
	}
	return nil
}

// pick returns the next live pool connection round-robin, skipping
// connections that have died. When every connection is dead it redials
// one — so a client outlives server restarts and transient network
// failures instead of being poisoned by the first broken socket.
func (c *Client) pick() (*poolConn, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	// Modulo in uint32 space: converting the wrapping counter to int
	// first would go negative on 32-bit platforms after 2^31 requests.
	start := c.next.Add(1) - 1
	c.cmu.RLock()
	n := uint32(len(c.conns))
	for k := uint32(0); k < n; k++ {
		pc := c.conns[(start+k)%n]
		if !pc.isDead() {
			c.cmu.RUnlock()
			return pc, nil
		}
	}
	c.cmu.RUnlock()

	// Every connection is dead: replace the slot we landed on.
	c.cmu.Lock()
	defer c.cmu.Unlock()
	if c.closed.Load() {
		return nil, ErrClosed
	}
	i := start % uint32(len(c.conns))
	if !c.conns[i].isDead() { // another goroutine already redialed
		return c.conns[i], nil
	}
	pc, err := c.dialConn()
	if err != nil {
		return nil, err
	}
	c.conns[i] = pc
	return pc, nil
}

// GoInsert pipelines an INSERT batch and returns its Pending. The key
// and value slices are encoded before return; the caller may reuse
// them immediately.
func (c *Client) GoInsert(keys, vals []uint64) (*Pending, error) {
	return c.goKV(wire.OpInsert, keys, vals)
}

// GoUpsert pipelines an UPSERT batch.
func (c *Client) GoUpsert(keys, vals []uint64) (*Pending, error) {
	return c.goKV(wire.OpUpsert, keys, vals)
}

// GoLookup pipelines a LOOKUP batch; collect results with
// Pending.Lookup.
func (c *Client) GoLookup(keys []uint64) (*Pending, error) {
	return c.goKeys(wire.OpLookup, keys)
}

// GoDelete pipelines a DELETE batch; collect results with
// Pending.Deleted.
func (c *Client) GoDelete(keys []uint64) (*Pending, error) {
	return c.goKeys(wire.OpDelete, keys)
}

func (c *Client) goKV(op wire.Op, keys, vals []uint64) (*Pending, error) {
	if len(keys) != len(vals) {
		return nil, fmt.Errorf("client: %d keys, %d values", len(keys), len(vals))
	}
	if len(keys) > wire.MaxBatch {
		return nil, ErrTooLarge
	}
	pc, err := c.pick()
	if err != nil {
		return nil, err
	}
	return pc.send(op, func(dst []byte) []byte { return wire.AppendKV(dst, keys, vals) })
}

func (c *Client) goKeys(op wire.Op, keys []uint64) (*Pending, error) {
	if len(keys) > wire.MaxBatch {
		return nil, ErrTooLarge
	}
	pc, err := c.pick()
	if err != nil {
		return nil, err
	}
	return pc.send(op, func(dst []byte) []byte { return wire.AppendKeys(dst, keys) })
}

func (c *Client) goEmpty(op wire.Op) (*Pending, error) {
	pc, err := c.pick()
	if err != nil {
		return nil, err
	}
	return pc.send(op, nil)
}

// GoInsertT pipelines a token-returning INSERT batch; collect the
// token with Pending.Token.
func (c *Client) GoInsertT(keys, vals []uint64) (*Pending, error) {
	return c.goKV(wire.OpInsertAt, keys, vals)
}

// GoUpsertT pipelines a token-returning UPSERT batch.
func (c *Client) GoUpsertT(keys, vals []uint64) (*Pending, error) {
	return c.goKV(wire.OpUpsertAt, keys, vals)
}

// GoDeleteT pipelines a token-returning DELETE batch; collect results
// with Pending.DeletedT.
func (c *Client) GoDeleteT(keys []uint64) (*Pending, error) {
	return c.goKeys(wire.OpDeleteAt, keys)
}

// GoLookupAt pipelines a LOOKUP constrained by a read token; collect
// results with Pending.Lookup.
func (c *Client) GoLookupAt(keys []uint64, at ReadToken) (*Pending, error) {
	if len(keys) > wire.MaxBatch {
		return nil, ErrTooLarge
	}
	pc, err := c.pick()
	if err != nil {
		return nil, err
	}
	return pc.send(wire.OpLookupAt, func(dst []byte) []byte {
		return wire.AppendLookupAt(dst, at.LSN, keys)
	})
}

// Insert stores (keys[i], vals[i]) for every i; a nil error means the
// server acked the batch as applied, WAL-durable, and (under semi-sync
// replication) applied by the required followers. The returned token
// makes the batch visible to any Lookup that carries it.
func (c *Client) Insert(ctx context.Context, keys, vals []uint64) (ReadToken, error) {
	p, err := c.GoInsertT(keys, vals)
	if err != nil {
		return ReadToken{}, err
	}
	return p.Token(ctx)
}

// Upsert stores (keys[i], vals[i]) whether or not the keys are
// present, returning the batch's read token.
func (c *Client) Upsert(ctx context.Context, keys, vals []uint64) (ReadToken, error) {
	p, err := c.GoUpsertT(keys, vals)
	if err != nil {
		return ReadToken{}, err
	}
	return p.Token(ctx)
}

// Delete removes every key, reporting per key whether it was present,
// plus the batch's read token.
func (c *Client) Delete(ctx context.Context, keys []uint64) ([]bool, ReadToken, error) {
	p, err := c.GoDeleteT(keys)
	if err != nil {
		return nil, ReadToken{}, err
	}
	return p.DeletedT(ctx)
}

// Lookup returns the value and presence of every key, in input order,
// observing at least the state the token stands for: a replica that
// has not applied at.LSN yet waits for it (or fails BEHIND — see
// IsBehind). The zero token reads whatever state the node has.
func (c *Client) Lookup(ctx context.Context, keys []uint64, at ReadToken) ([]uint64, []bool, error) {
	p, err := c.GoLookupAt(keys, at)
	if err != nil {
		return nil, nil, err
	}
	return p.Lookup(ctx)
}

// Info reports the node's replication identity. It fails with a
// ServerError when the server runs without replication.
func (c *Client) Info(ctx context.Context) (NodeInfo, error) {
	p, err := c.goEmpty(wire.OpInfo)
	if err != nil {
		return NodeInfo{}, err
	}
	return p.info(ctx, wire.OpInfoR)
}

// Promote asks the node to become writable in a fresh epoch — the
// failover step after the primary is lost. It returns the node's
// post-promotion identity. Promoting an already-writable node is a
// no-op reporting its current identity.
func (c *Client) Promote(ctx context.Context) (NodeInfo, error) {
	p, err := c.goEmpty(wire.OpPromote)
	if err != nil {
		return NodeInfo{}, err
	}
	return p.info(ctx, wire.OpInfoR)
}

// InsertBatch stores (keys[i], vals[i]) for every i and returns after
// the server acks the batch as applied and WAL-durable.
//
// Deprecated: use Insert, which also returns the batch's ReadToken.
func (c *Client) InsertBatch(ctx context.Context, keys, vals []uint64) error {
	_, err := c.Insert(ctx, keys, vals)
	return err
}

// UpsertBatch stores (keys[i], vals[i]) whether or not the keys are
// present.
//
// Deprecated: use Upsert, which also returns the batch's ReadToken.
func (c *Client) UpsertBatch(ctx context.Context, keys, vals []uint64) error {
	_, err := c.Upsert(ctx, keys, vals)
	return err
}

// LookupBatch returns the value and presence of every key, in input
// order.
//
// Deprecated: use Lookup, which can carry a ReadToken for
// read-your-writes against replicas.
func (c *Client) LookupBatch(ctx context.Context, keys []uint64) ([]uint64, []bool, error) {
	return c.Lookup(ctx, keys, ReadToken{})
}

// DeleteBatch removes every key, reporting per key whether it was
// present.
//
// Deprecated: use Delete, which also returns the batch's ReadToken.
func (c *Client) DeleteBatch(ctx context.Context, keys []uint64) ([]bool, error) {
	founds, _, err := c.Delete(ctx, keys)
	return founds, err
}

// Len returns the number of entries stored by the server.
func (c *Client) Len(ctx context.Context) (int, error) {
	p, err := c.goEmpty(wire.OpLen)
	if err != nil {
		return 0, err
	}
	n, err := p.count(ctx)
	return int(n), err
}

// Sync asks the server for an explicit acknowledgement barrier (WAL
// fsync). Mutations are already acked durable, so this is only needed
// to force durability of nothing in particular — e.g. as a liveness
// probe of the durable path.
func (c *Client) Sync(ctx context.Context) error {
	p, err := c.goEmpty(wire.OpSync)
	if err != nil {
		return err
	}
	return p.Wait(ctx)
}

// Flush asks the server for a full checkpoint barrier.
func (c *Client) Flush(ctx context.Context) error {
	p, err := c.goEmpty(wire.OpFlush)
	if err != nil {
		return err
	}
	return p.Wait(ctx)
}

// Ping round-trips an empty frame.
func (c *Client) Ping(ctx context.Context) error {
	p, err := c.goEmpty(wire.OpPing)
	if err != nil {
		return err
	}
	return p.Wait(ctx)
}

// Stats fetches the server's engine and backend counters.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	p, err := c.goEmpty(wire.OpStats)
	if err != nil {
		return Stats{}, err
	}
	return p.stats(ctx)
}

// Pending is one in-flight request. Exactly one wait-style method
// should be called, matching the request kind.
type Pending struct {
	done    chan struct{}
	op      wire.Op
	payload []byte // copied response payload
	err     error  // connection-level failure
}

// Wait blocks for the response of a mutation, SYNC, FLUSH or PING
// request. A nil return means the server acked it (for mutations on a
// durable backend: applied and WAL-fsynced).
func (p *Pending) Wait(ctx context.Context) error {
	if err := p.wait(ctx); err != nil {
		return err
	}
	if p.op != wire.OpAck {
		return fmt.Errorf("client: unexpected %v response", p.op)
	}
	return nil
}

// Lookup blocks for a LOOKUP response and decodes it.
func (p *Pending) Lookup(ctx context.Context) ([]uint64, []bool, error) {
	if err := p.wait(ctx); err != nil {
		return nil, nil, err
	}
	if p.op != wire.OpValues {
		return nil, nil, fmt.Errorf("client: unexpected %v response", p.op)
	}
	return wire.DecodeValuesInto(p.payload, nil, nil)
}

// Deleted blocks for a DELETE response and decodes it.
func (p *Pending) Deleted(ctx context.Context) ([]bool, error) {
	if err := p.wait(ctx); err != nil {
		return nil, err
	}
	if p.op != wire.OpFounds {
		return nil, fmt.Errorf("client: unexpected %v response", p.op)
	}
	return wire.DecodeFoundsInto(p.payload, nil)
}

// Token blocks for the response of a token-returning mutation
// (GoInsertT, GoUpsertT) and decodes its ReadToken.
func (p *Pending) Token(ctx context.Context) (ReadToken, error) {
	if err := p.wait(ctx); err != nil {
		return ReadToken{}, err
	}
	if p.op != wire.OpAckT {
		return ReadToken{}, fmt.Errorf("client: unexpected %v response", p.op)
	}
	lsn, epoch, err := wire.DecodeAckT(p.payload)
	return ReadToken{LSN: lsn, Epoch: epoch}, err
}

// DeletedT blocks for a GoDeleteT response and decodes it.
func (p *Pending) DeletedT(ctx context.Context) ([]bool, ReadToken, error) {
	if err := p.wait(ctx); err != nil {
		return nil, ReadToken{}, err
	}
	if p.op != wire.OpFoundsT {
		return nil, ReadToken{}, fmt.Errorf("client: unexpected %v response", p.op)
	}
	lsn, epoch, founds, err := wire.DecodeFoundsTInto(p.payload, nil)
	return founds, ReadToken{LSN: lsn, Epoch: epoch}, err
}

// info blocks for an INFO-shaped response and decodes it.
func (p *Pending) info(ctx context.Context, want wire.Op) (NodeInfo, error) {
	if err := p.wait(ctx); err != nil {
		return NodeInfo{}, err
	}
	if p.op != want {
		return NodeInfo{}, fmt.Errorf("client: unexpected %v response", p.op)
	}
	wi, err := wire.DecodeInfo(p.payload)
	if err != nil {
		return NodeInfo{}, err
	}
	role := "primary"
	if wi.Role == wire.RoleFollower {
		role = "follower"
	}
	return NodeInfo{
		Epoch:      wi.Epoch,
		AppliedLSN: wi.AppliedLSN,
		Writable:   wi.Writable,
		Role:       role,
	}, nil
}

func (p *Pending) count(ctx context.Context) (uint64, error) {
	if err := p.wait(ctx); err != nil {
		return 0, err
	}
	if p.op != wire.OpCount {
		return 0, fmt.Errorf("client: unexpected %v response", p.op)
	}
	return wire.DecodeCount(p.payload)
}

func (p *Pending) stats(ctx context.Context) (Stats, error) {
	if err := p.wait(ctx); err != nil {
		return Stats{}, err
	}
	if p.op != wire.OpStatsR {
		return Stats{}, fmt.Errorf("client: unexpected %v response", p.op)
	}
	ws, err := wire.DecodeStats(p.payload)
	if err != nil {
		return Stats{}, err
	}
	return Stats{Len: ws.Len, MemoryUsed: ws.MemoryUsed, Ops: ws.Ops, Store: ws.Store,
		Repl: ws.Repl, Expiry: ws.Expiry}, nil
}

// wait blocks for response delivery or ctx expiry. On expiry the
// request stays in flight on the wire; its eventual response is
// discarded by the connection reader.
func (p *Pending) wait(ctx context.Context) error {
	select {
	case <-p.done:
	case <-ctx.Done():
		return ctx.Err()
	}
	if p.err != nil {
		return p.err
	}
	if p.op == wire.OpErr {
		return &ServerError{Msg: string(p.payload)}
	}
	return nil
}

// poolConn is one pooled TCP connection: a locked writer, a pending
// table keyed by request id, and a reader goroutine delivering
// responses.
type poolConn struct {
	nc net.Conn

	wmu    sync.Mutex
	bw     *bufio.Writer
	pbuf   []byte // payload scratch, reused under wmu
	fbuf   []byte // frame scratch, reused under wmu
	nextID uint32

	pmu     sync.Mutex
	pending map[uint32]*Pending
	dead    error

	sem chan struct{}
}

// isDead reports whether the connection has failed.
func (pc *poolConn) isDead() bool {
	pc.pmu.Lock()
	defer pc.pmu.Unlock()
	return pc.dead != nil
}

// send encodes one request frame (payload built by appendPayload into
// the connection's scratch) and registers its Pending.
func (pc *poolConn) send(op wire.Op, appendPayload func([]byte) []byte) (*Pending, error) {
	pc.sem <- struct{}{} // pipeline bound; released on response delivery
	p := &Pending{done: make(chan struct{})}

	pc.wmu.Lock()
	id := pc.nextID
	pc.nextID++

	// Register under the same pending-table acquisition that checks for
	// a dead connection: a concurrent fail() either sees our entry (and
	// fails it, releasing our semaphore slot) or we see dead here —
	// never a stranded Pending.
	pc.pmu.Lock()
	if pc.dead != nil {
		err := pc.dead
		pc.pmu.Unlock()
		pc.wmu.Unlock()
		<-pc.sem
		return nil, err
	}
	pc.pending[id] = p
	pc.pmu.Unlock()

	pc.pbuf = pc.pbuf[:0]
	if appendPayload != nil {
		pc.pbuf = appendPayload(pc.pbuf)
	}
	pc.fbuf = wire.AppendFrame(pc.fbuf[:0], op, id, pc.pbuf)
	_, err := pc.bw.Write(pc.fbuf)
	if err == nil {
		err = pc.bw.Flush()
	}
	pc.wmu.Unlock()
	if err != nil {
		pc.fail(fmt.Errorf("client: write: %w", err))
		return nil, err
	}
	return p, nil
}

// readLoop delivers responses to their Pendings until the connection
// dies, then fails everything outstanding.
func (pc *poolConn) readLoop() {
	r := wire.NewReader(bufio.NewReaderSize(pc.nc, 64<<10))
	for {
		f, err := r.Next()
		if err != nil {
			pc.fail(fmt.Errorf("client: connection lost: %w", err))
			return
		}
		pc.pmu.Lock()
		p, ok := pc.pending[f.ID]
		delete(pc.pending, f.ID)
		pc.pmu.Unlock()
		if !ok {
			continue // response to an abandoned request
		}
		p.op = f.Op
		p.payload = append([]byte(nil), f.Payload...)
		close(p.done)
		<-pc.sem
	}
}

// fail marks the connection dead with err, fails every outstanding
// Pending, and closes the socket. Idempotent.
func (pc *poolConn) fail(err error) {
	pc.pmu.Lock()
	if pc.dead == nil {
		pc.dead = err
	}
	outstanding := pc.pending
	pc.pending = make(map[uint32]*Pending)
	pc.pmu.Unlock()
	for _, p := range outstanding {
		p.err = err
		close(p.done)
		<-pc.sem
	}
	pc.nc.Close()
}
