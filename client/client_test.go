package client_test

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"extbuf"
	"extbuf/client"
	"extbuf/internal/server"
)

func startServer(t *testing.T) (string, func()) {
	t.Helper()
	eng, err := extbuf.NewSharded("buffered", extbuf.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{Engine: eng, Logf: t.Logf})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	return lis.Addr().String(), func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		eng.Close()
	}
}

// TestContextDeadline dials a listener that never answers and checks
// the deadline fires instead of hanging.
func TestContextDeadline(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			nc, err := lis.Accept()
			if err != nil {
				return
			}
			defer nc.Close() // accept and say nothing
		}
	}()

	cl, err := client.Dial(lis.Addr().String(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err = cl.LookupBatch(ctx, []uint64{1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("deadline took %v to fire", time.Since(start))
	}
}

// TestPoolSpreadsAndPipelines drives async requests over a 3-conn pool
// and verifies ordering-insensitive correctness.
func TestPoolSpreadsAndPipelines(t *testing.T) {
	addr, stop := startServer(t)
	defer stop()
	cl, err := client.Dial(addr, client.Options{Conns: 3, Pipeline: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx := context.Background()
	var inserts []*client.Pending
	for i := 0; i < 300; i++ {
		p, err := cl.GoInsert([]uint64{uint64(i + 1)}, []uint64{uint64(i * 2)})
		if err != nil {
			t.Fatal(err)
		}
		inserts = append(inserts, p)
	}
	for i, p := range inserts {
		if err := p.Wait(ctx); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	var lookups []*client.Pending
	for i := 0; i < 300; i += 100 {
		keys := make([]uint64, 100)
		for j := range keys {
			keys[j] = uint64(i + j + 1)
		}
		p, err := cl.GoLookup(keys)
		if err != nil {
			t.Fatal(err)
		}
		lookups = append(lookups, p)
	}
	for bi, p := range lookups {
		vals, found, err := p.Lookup(ctx)
		if err != nil {
			t.Fatalf("lookup batch %d: %v", bi, err)
		}
		for j := range vals {
			want := uint64((bi*100 + j) * 2)
			if !found[j] || vals[j] != want {
				t.Fatalf("batch %d key %d: (%d,%v), want (%d,true)", bi, j, vals[j], found[j], want)
			}
		}
	}
}

// TestServerGoneFailsFast kills the server and checks the client
// surfaces connection errors rather than hanging.
func TestServerGoneFailsFast(t *testing.T) {
	addr, stop := startServer(t)
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		stop()
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	if err := cl.InsertBatch(ctx, []uint64{1}, []uint64{2}); err != nil {
		stop()
		t.Fatal(err)
	}
	stop() // server down

	deadline, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	err = cl.InsertBatch(deadline, []uint64{3}, []uint64{4})
	if err == nil {
		t.Fatal("insert succeeded against a dead server")
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("client hung until deadline instead of failing fast: %v", err)
	}
}

// TestBatchValidation checks client-side batch guards.
func TestBatchValidation(t *testing.T) {
	addr, stop := startServer(t)
	defer stop()
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.GoInsert([]uint64{1, 2}, []uint64{3}); err == nil {
		t.Fatal("mismatched batch accepted")
	}
	big := make([]uint64, 1<<16+1)
	if _, err := cl.GoLookup(big); !errors.Is(err, client.ErrTooLarge) {
		t.Fatalf("oversized batch: %v, want ErrTooLarge", err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.GoLookup([]uint64{1}); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("closed client: %v, want ErrClosed", err)
	}
}
