package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Cluster fronts a replicated set of hashserved nodes with automatic
// failover. It routes every request to the node it currently believes
// is the primary; when that node dies (connection failure) or turns out
// to be a read-only replica (a READONLY rejection after a promotion
// moved the primary), it re-probes every address with INFO, adopts the
// writable node with the highest replication epoch, and retries the
// request once. Token-carrying Lookups additionally retry on BEHIND —
// the replica-lag rejection — against the primary, which can always
// satisfy its own tokens.
//
// The epoch ratchet is what makes failover safe against a stale
// primary: a node that was primary in epoch N and missed its own
// demotion still answers INFO with epoch N, and the probe prefers the
// promoted node's N+1.
type Cluster struct {
	addrs []string
	opts  Options

	mu      sync.Mutex
	clients []*Client // lazily dialed, index-parallel with addrs
	cur     int       // index of the believed primary
	epoch   uint64    // highest epoch observed
	closed  bool
}

// DialCluster connects to the first reachable node of addrs and probes
// for the primary. Nodes that are down at dial time are retried on
// every failover.
func DialCluster(addrs []string, opts Options) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, errors.New("client: DialCluster needs at least one address")
	}
	c := &Cluster{
		addrs:   addrs,
		opts:    opts,
		clients: make([]*Client, len(addrs)),
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.probeTimeout())
	defer cancel()
	c.mu.Lock()
	_, err := c.reprobeLocked(ctx)
	c.mu.Unlock()
	if err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

func (c *Cluster) probeTimeout() time.Duration {
	if c.opts.DialTimeout > 0 {
		return c.opts.DialTimeout
	}
	return 5 * time.Second
}

// Close tears down every dialed node client.
func (c *Cluster) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, cl := range c.clients {
		if cl != nil {
			cl.Close()
		}
	}
	return nil
}

// Addr reports the address of the node currently treated as primary.
func (c *Cluster) Addr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addrs[c.cur]
}

// Epoch reports the highest replication epoch the cluster client has
// observed.
func (c *Cluster) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// clientLocked returns (dialing if needed) the client for addrs[i].
func (c *Cluster) clientLocked(i int) (*Client, error) {
	if c.clients[i] == nil {
		cl, err := Dial(c.addrs[i], c.opts)
		if err != nil {
			return nil, err
		}
		c.clients[i] = cl
	}
	return c.clients[i], nil
}

// primary returns the client for the believed primary.
func (c *Cluster) primary() (*Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	return c.clientLocked(c.cur)
}

// reprobeLocked asks every address for INFO and adopts the writable
// node with the highest epoch (preferring, among candidates, one at
// least as new as every epoch we have ever seen). Callers hold c.mu.
func (c *Cluster) reprobeLocked(ctx context.Context) (*Client, error) {
	if c.closed {
		return nil, ErrClosed
	}
	best := -1
	var bestEpoch uint64
	var firstErr error
	for i := range c.addrs {
		cl, err := c.clientLocked(i)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		ictx, cancel := context.WithTimeout(ctx, c.probeTimeout())
		info, err := cl.Info(ictx)
		cancel()
		if err != nil {
			// A node without replication has no INFO but is trivially
			// writable — a single-node "cluster" still works.
			var se *ServerError
			if errors.As(err, &se) {
				info = NodeInfo{Writable: true}
			} else {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
		}
		if info.Epoch > c.epoch {
			c.epoch = info.Epoch
		}
		if info.Writable && (best == -1 || info.Epoch > bestEpoch) {
			best, bestEpoch = i, info.Epoch
		}
	}
	if best == -1 {
		if firstErr != nil {
			return nil, fmt.Errorf("client: no writable node: %w", firstErr)
		}
		return nil, errors.New("client: no writable node among replicas (promote one)")
	}
	c.cur = best
	return c.clientLocked(best)
}

// retriable reports whether err warrants a failover retry: connection
// loss, or a routing rejection (READONLY from a demoted-or-never
// primary; BEHIND from a lagging replica). Context expiry and genuine
// server errors are not retried.
func retriable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if IsReadOnly(err) || IsBehind(err) {
		return true
	}
	var se *ServerError
	return !errors.As(err, &se) // anything connection-level
}

// do runs op against the believed primary, failing over and retrying
// once per remaining address on retriable errors.
func (c *Cluster) do(ctx context.Context, op func(cl *Client) error) error {
	cl, err := c.primary()
	if err == nil {
		if err = op(cl); err == nil || !retriable(err) {
			return err
		}
	}
	for attempt := 0; attempt < len(c.addrs); attempt++ {
		c.mu.Lock()
		cl, perr := c.reprobeLocked(ctx)
		c.mu.Unlock()
		if perr != nil {
			return errors.Join(err, perr)
		}
		if err = op(cl); err == nil || !retriable(err) {
			return err
		}
		if ctx.Err() != nil {
			return err
		}
	}
	return err
}

// Insert stores the batch on the primary, failing over if it has
// moved. See Client.Insert.
func (c *Cluster) Insert(ctx context.Context, keys, vals []uint64) (ReadToken, error) {
	var t ReadToken
	err := c.do(ctx, func(cl *Client) error {
		var e error
		t, e = cl.Insert(ctx, keys, vals)
		return e
	})
	return t, err
}

// Upsert stores the batch on the primary, failing over if it has
// moved. See Client.Upsert.
func (c *Cluster) Upsert(ctx context.Context, keys, vals []uint64) (ReadToken, error) {
	var t ReadToken
	err := c.do(ctx, func(cl *Client) error {
		var e error
		t, e = cl.Upsert(ctx, keys, vals)
		return e
	})
	return t, err
}

// Delete removes the keys on the primary, failing over if it has
// moved. See Client.Delete.
func (c *Cluster) Delete(ctx context.Context, keys []uint64) ([]bool, ReadToken, error) {
	var founds []bool
	var t ReadToken
	err := c.do(ctx, func(cl *Client) error {
		var e error
		founds, t, e = cl.Delete(ctx, keys)
		return e
	})
	return founds, t, err
}

// Lookup reads from the believed primary (which trivially satisfies
// any token), failing over on connection loss. See Client.Lookup.
func (c *Cluster) Lookup(ctx context.Context, keys []uint64, at ReadToken) ([]uint64, []bool, error) {
	var vals []uint64
	var founds []bool
	err := c.do(ctx, func(cl *Client) error {
		var e error
		vals, founds, e = cl.Lookup(ctx, keys, at)
		return e
	})
	return vals, founds, err
}
