package client

import (
	"context"
	"fmt"
	"time"

	"extbuf"
	"extbuf/internal/wire"
)

// ScanDone is the cursor a scan returns when the table is exhausted.
const ScanDone = extbuf.ScanDone

// DeadlineAt converts a wall-clock time to the protocol's deadline
// representation (unix milliseconds).
func DeadlineAt(t time.Time) uint64 { return uint64(t.UnixMilli()) }

// DeadlineAfter returns the deadline d from now.
func DeadlineAfter(d time.Duration) uint64 { return DeadlineAt(time.Now().Add(d)) }

// GoExpire pipelines an EXPIRE batch: deadlines[i] (unix ms) becomes
// keys[i]'s expiry deadline if the key is present and unexpired.
// Collect results with Pending.FoundsT.
func (c *Client) GoExpire(keys, deadlines []uint64) (*Pending, error) {
	return c.goKV(wire.OpExpire, keys, deadlines)
}

// GoUpsertTTL pipelines an UPSERTTTL batch: each pair is stored and its
// deadline set atomically. Collect the token with Pending.Token.
func (c *Client) GoUpsertTTL(keys, vals, deadlines []uint64) (*Pending, error) {
	return c.goTriples(wire.OpUpsertTTL, keys, vals, deadlines)
}

// GoCompareSwap pipelines a CAS batch: keys[i] is set to news[i] iff
// its current unexpired value is olds[i]. Collect results with
// Pending.FoundsT (flags report which keys swapped).
func (c *Client) GoCompareSwap(keys, olds, news []uint64) (*Pending, error) {
	return c.goTriples(wire.OpCAS, keys, olds, news)
}

// GoScan pipelines a SCAN page request. cursor 0 starts a scan; max 0
// lets the server pick its page size. Collect the page with
// Pending.ScanPage.
func (c *Client) GoScan(cursor uint64, max int) (*Pending, error) {
	pc, err := c.pick()
	if err != nil {
		return nil, err
	}
	return pc.send(wire.OpScan, func(dst []byte) []byte {
		return wire.AppendScan(dst, cursor, uint32(max))
	})
}

func (c *Client) goTriples(op wire.Op, a, b, d []uint64) (*Pending, error) {
	if len(a) != len(b) || len(a) != len(d) {
		return nil, fmt.Errorf("client: triple batch lengths %d/%d/%d", len(a), len(b), len(d))
	}
	if len(a) > wire.MaxTripleBatch {
		return nil, ErrTooLarge
	}
	pc, err := c.pick()
	if err != nil {
		return nil, err
	}
	return pc.send(op, func(dst []byte) []byte { return wire.AppendTriples(dst, a, b, d) })
}

// Expire sets each key's expiry deadline (unix ms; see DeadlineAfter),
// reporting per key whether it was present to expire, plus the batch's
// read token. Expired keys vanish from reads immediately at their
// deadline; the server's sweeper reclaims their space. A later plain
// write to a key clears its deadline.
func (c *Client) Expire(ctx context.Context, keys, deadlines []uint64) ([]bool, ReadToken, error) {
	p, err := c.GoExpire(keys, deadlines)
	if err != nil {
		return nil, ReadToken{}, err
	}
	return p.FoundsT(ctx)
}

// UpsertTTL stores (keys[i], vals[i]) with deadlines[i] as its expiry
// deadline, atomically per key, returning the batch's read token.
func (c *Client) UpsertTTL(ctx context.Context, keys, vals, deadlines []uint64) (ReadToken, error) {
	p, err := c.GoUpsertTTL(keys, vals, deadlines)
	if err != nil {
		return ReadToken{}, err
	}
	return p.Token(ctx)
}

// CompareSwap atomically replaces keys[i] with news[i] iff its current
// unexpired value equals olds[i], reporting per key whether it swapped,
// plus the batch's read token. A swap clears the key's TTL, like any
// value write.
func (c *Client) CompareSwap(ctx context.Context, keys, olds, news []uint64) ([]bool, ReadToken, error) {
	p, err := c.GoCompareSwap(keys, olds, news)
	if err != nil {
		return nil, ReadToken{}, err
	}
	return p.FoundsT(ctx)
}

// Scan reads one page of entries in the server's bucket order. cursor 0
// starts a scan; pass the returned next cursor to continue, until it is
// ScanDone. The scan is weakly consistent: entries moved by a
// concurrent rehash may be seen twice or not at all, entries untouched
// during the scan exactly once. Expired entries are filtered.
func (c *Client) Scan(ctx context.Context, cursor uint64, max int) (keys, vals []uint64, next uint64, err error) {
	p, err := c.GoScan(cursor, max)
	if err != nil {
		return nil, nil, 0, err
	}
	return p.ScanPage(ctx)
}

// FoundsT blocks for a FOUNDST-shaped response (GoDeleteT, GoExpire,
// GoCompareSwap) and decodes its per-key flags and covering token.
func (p *Pending) FoundsT(ctx context.Context) ([]bool, ReadToken, error) {
	if err := p.wait(ctx); err != nil {
		return nil, ReadToken{}, err
	}
	if p.op != wire.OpFoundsT {
		return nil, ReadToken{}, fmt.Errorf("client: unexpected %v response", p.op)
	}
	lsn, epoch, founds, err := wire.DecodeFoundsTInto(p.payload, nil)
	return founds, ReadToken{LSN: lsn, Epoch: epoch}, err
}

// ScanPage blocks for a SCAN response and decodes the page.
func (p *Pending) ScanPage(ctx context.Context) (keys, vals []uint64, next uint64, err error) {
	if err := p.wait(ctx); err != nil {
		return nil, nil, 0, err
	}
	if p.op != wire.OpScanR {
		return nil, nil, 0, fmt.Errorf("client: unexpected %v response", p.op)
	}
	next, keys, vals, err = wire.DecodeScanRInto(p.payload, nil, nil)
	return keys, vals, next, err
}
