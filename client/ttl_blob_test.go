package client_test

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"extbuf"
	"extbuf/client"
	"extbuf/internal/server"
)

// startSweepingServer is startServer with the TTL sweeper on a tight
// interval, so tests observe reclamation without waiting.
func startSweepingServer(t *testing.T) (string, func()) {
	t.Helper()
	eng, err := extbuf.NewSharded("buffered", extbuf.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{
		Engine: eng, Logf: t.Logf,
		SweepEvery: 5 * time.Millisecond, SweepMax: 128,
	})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	return lis.Addr().String(), func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		eng.Close()
	}
}

// TestTTLRoundTrip drives EXPIRE/UPSERTTTL over the wire: expired keys
// vanish from reads, live ones stay, and the sweeper physically
// reclaims the expired ones.
func TestTTLRoundTrip(t *testing.T) {
	addr, stop := startSweepingServer(t)
	defer stop()
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	keys := make([]uint64, 200)
	vals := make([]uint64, 200)
	for i := range keys {
		keys[i], vals[i] = uint64(i+1), uint64(i*7)
	}
	if _, err := cl.Upsert(ctx, keys, vals); err != nil {
		t.Fatal(err)
	}

	// Expire the first half a hair in the future, so the EXPIRE itself
	// sees them alive but every later read sees them gone.
	dl := client.DeadlineAfter(10 * time.Millisecond)
	deads := make([]uint64, 100)
	for i := range deads {
		deads[i] = dl
	}
	founds, tok, err := cl.Expire(ctx, keys[:100], deads)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range founds {
		if !f {
			t.Fatalf("EXPIRE key %d: not found", keys[i])
		}
	}
	// A missing key must report found=false, not fail.
	founds, _, err = cl.Expire(ctx, []uint64{9999}, []uint64{dl})
	if err != nil || founds[0] {
		t.Fatalf("EXPIRE missing key: (%v, %v), want (false, nil)", founds[0], err)
	}
	time.Sleep(20 * time.Millisecond)

	got, ok, err := cl.Lookup(ctx, keys, tok)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if want := i >= 100; ok[i] != want {
			t.Fatalf("key %d after expiry: found=%v, want %v", keys[i], ok[i], want)
		}
		if i >= 100 && got[i] != vals[i] {
			t.Fatalf("key %d: %d, want %d", keys[i], got[i], vals[i])
		}
	}

	// The sweeper reclaims: server Len drops to the live half.
	deadline := time.Now().Add(5 * time.Second)
	for {
		n, err := cl.Len(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if n == 100 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("len %d after sweeping, want 100", n)
		}
		time.Sleep(10 * time.Millisecond)
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Expiry.Swept != 100 {
		t.Fatalf("stats: swept %d, want 100", st.Expiry.Swept)
	}
	if st.Expiry.Tracked != 0 {
		t.Fatalf("stats: %d tracked after sweep, want 0", st.Expiry.Tracked)
	}

	// UPSERTTTL with a live deadline is readable; a plain upsert then
	// clears the TTL.
	if _, err := cl.UpsertTTL(ctx, []uint64{501}, []uint64{42}, []uint64{client.DeadlineAfter(time.Hour)}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := cl.Lookup(ctx, []uint64{501}, client.ReadToken{}); !ok[0] {
		t.Fatal("UPSERTTTL key invisible before its deadline")
	}
	st, _ = cl.Stats(ctx)
	if st.Expiry.Tracked != 1 {
		t.Fatalf("tracked %d, want 1", st.Expiry.Tracked)
	}
	if _, err := cl.Upsert(ctx, []uint64{501}, []uint64{43}); err != nil {
		t.Fatal(err)
	}
	st, _ = cl.Stats(ctx)
	if st.Expiry.Tracked != 0 {
		t.Fatalf("tracked %d after TTL-clearing upsert, want 0", st.Expiry.Tracked)
	}
}

// TestCASRoundTrip checks CAS over the wire: success, stale-old
// failure, and absent-key failure.
func TestCASRoundTrip(t *testing.T) {
	addr, stop := startServer(t)
	defer stop()
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	if _, err := cl.Upsert(ctx, []uint64{1, 2}, []uint64{10, 20}); err != nil {
		t.Fatal(err)
	}
	swapped, tok, err := cl.CompareSwap(ctx,
		[]uint64{1, 2, 3}, []uint64{10, 99, 0}, []uint64{11, 21, 31})
	if err != nil {
		t.Fatal(err)
	}
	if !swapped[0] || swapped[1] || swapped[2] {
		t.Fatalf("swapped = %v, want [true false false]", swapped)
	}
	vals, ok, err := cl.Lookup(ctx, []uint64{1, 2, 3}, tok)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 11 || vals[1] != 20 || ok[2] {
		t.Fatalf("after CAS: vals=%v ok=%v", vals, ok)
	}
}

// TestScanRoundTrip pages the whole table over the wire and checks the
// union of pages is exactly the inserted set.
func TestScanRoundTrip(t *testing.T) {
	addr, stop := startServer(t)
	defer stop()
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	const n = 5000
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i], vals[i] = uint64(i+1), uint64(i*3)
	}
	for off := 0; off < n; off += 2500 {
		if _, err := cl.Upsert(ctx, keys[off:off+2500], vals[off:off+2500]); err != nil {
			t.Fatal(err)
		}
	}

	seen := make(map[uint64]uint64, n)
	cursor, pages := uint64(0), 0
	for cursor != client.ScanDone {
		ks, vs, next, err := cl.Scan(ctx, cursor, 512)
		if err != nil {
			t.Fatal(err)
		}
		for i, k := range ks {
			if prev, dup := seen[k]; dup && prev != vs[i] {
				t.Fatalf("key %d scanned twice with different values", k)
			}
			seen[k] = vs[i]
		}
		cursor = next
		pages++
		if pages > 10000 {
			t.Fatal("scan does not terminate")
		}
	}
	if pages < 2 {
		t.Fatalf("scan of %d keys took %d page(s); paging untested", n, pages)
	}
	if len(seen) != n {
		t.Fatalf("scan saw %d keys, want %d", len(seen), n)
	}
	for i, k := range keys {
		if seen[k] != vals[i] {
			t.Fatalf("key %d: scanned %d, want %d", k, seen[k], vals[i])
		}
	}
}

// TestBlobRoundTrip checks client-side chunked blobs at the size
// boundaries, plus overwrite and delete.
func TestBlobRoundTrip(t *testing.T) {
	addr, stop := startServer(t)
	defer stop()
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	sizes := []int{0, 1, 7, 8, 9, 100, client.MaxBlobLen}
	for i, size := range sizes {
		key := uint64(i + 1)
		data := bytes.Repeat([]byte{byte(i + 1)}, size)
		if size > 2 {
			data[size/2] = 0xEE
		}
		tok, err := cl.PutBlob(ctx, key, data)
		if err != nil {
			t.Fatalf("put %d bytes: %v", size, err)
		}
		got, found, err := cl.GetBlob(ctx, key, tok)
		if err != nil || !found {
			t.Fatalf("get %d bytes: (%v, %v)", size, found, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("blob %d: round-trip mismatch (%d vs %d bytes)", key, len(got), len(data))
		}
	}

	// Overwrite with a shorter blob; the stale tail chunks are unreachable.
	if _, err := cl.PutBlob(ctx, 6, []byte("short")); err != nil {
		t.Fatal(err)
	}
	got, found, err := cl.GetBlob(ctx, 6, client.ReadToken{})
	if err != nil || !found || string(got) != "short" {
		t.Fatalf("after overwrite: (%q, %v, %v)", got, found, err)
	}

	// Delete, then reads miss.
	found, _, err = cl.DeleteBlob(ctx, 6)
	if err != nil || !found {
		t.Fatalf("delete: (%v, %v)", found, err)
	}
	if _, found, _ = cl.GetBlob(ctx, 6, client.ReadToken{}); found {
		t.Fatal("blob readable after delete")
	}
	if found, _, _ = cl.DeleteBlob(ctx, 6); found {
		t.Fatal("second delete reported a blob")
	}

	// Oversized and out-of-range keys are rejected client-side.
	if _, err := cl.PutBlob(ctx, 1, make([]byte, client.MaxBlobLen+1)); err == nil {
		t.Fatal("oversized blob accepted")
	}
	if _, err := cl.PutBlob(ctx, client.MaxBlobKey+1, []byte("x")); err == nil {
		t.Fatal("out-of-range blob key accepted")
	}
}
