// Command benchdiff gates CI on benchmark regressions: it parses two
// `go test -bench` outputs (the PR head and the merge base), pairs
// benchmarks by name, and compares per-benchmark median ns/op and
// allocs/op. The geometric mean of the new/old ratios is the verdict —
// one geomean per metric: above the threshold (default +10%) on either,
// the command writes its JSON report and exits nonzero, failing the
// job. benchstat renders the human-readable comparison in the same CI
// job; benchdiff exists because benchstat has no machine-checkable
// pass/fail threshold.
//
// Allocation ratios are smoothed as (new+1)/(old+1): zero-allocation
// benchmarks pair cleanly (0 vs 0 → ratio 1), and a benchmark sliding
// from 0 to 1 alloc/op registers as a 2x regression instead of a
// division by zero. allocs/op requires running the benchmarks with
// -benchmem; without it only ns/op is gated.
//
// Usage:
//
//	benchdiff -old main.txt -new pr.txt [-out BENCH.json] [-threshold 0.10]
//
// Benchmarks present in only one file are reported but excluded from
// the geomeans, so adding or removing benchmarks never trips the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	var (
		oldPath   = flag.String("old", "", "baseline `go test -bench` output (required)")
		newPath   = flag.String("new", "", "candidate `go test -bench` output (required)")
		outPath   = flag.String("out", "", "write the JSON report here (default: stdout only)")
		threshold = flag.Float64("threshold", 0.10, "fail when geomean ns/op or allocs/op grows by more than this fraction")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	oldRuns, err := parseBench(*oldPath)
	if err != nil {
		log.Fatal(err)
	}
	newRuns, err := parseBench(*newPath)
	if err != nil {
		log.Fatal(err)
	}

	rep := compare(oldRuns, newRuns, *threshold)
	js, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(js))
	if *outPath != "" {
		if err := os.WriteFile(*outPath, append(js, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if rep.Regression {
		log.Fatalf("geomean ratio exceeds 1+%.2f (ns/op %.4f, allocs/op %.4f)",
			*threshold, rep.Geomean, rep.AllocGeomean)
	}
}

// samples accumulates one benchmark's repetitions per metric.
type samples struct {
	ns     []float64
	allocs []float64
}

// Benchmark is one paired benchmark's comparison.
type Benchmark struct {
	Name      string  `json:"name"`
	OldNs     float64 `json:"old_ns_per_op"`
	NewNs     float64 `json:"new_ns_per_op"`
	Ratio     float64 `json:"ratio"` // new/old ns; > 1 is a slowdown
	OldAllocs float64 `json:"old_allocs_per_op,omitempty"`
	NewAllocs float64 `json:"new_allocs_per_op,omitempty"`
	// AllocRatio is (new+1)/(old+1); > 1 means more allocation. Zero
	// when either side lacks -benchmem output.
	AllocRatio float64 `json:"alloc_ratio,omitempty"`
}

// Report is the JSON artifact benchdiff emits.
type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
	OldOnly    []string    `json:"old_only,omitempty"`
	NewOnly    []string    `json:"new_only,omitempty"`
	Geomean    float64     `json:"geomean_ratio"`
	// AllocGeomean is the geometric mean of the smoothed allocs/op
	// ratios across benchmarks with -benchmem output on both sides
	// (1.0 when there are none).
	AllocGeomean float64 `json:"alloc_geomean_ratio"`
	Threshold    float64 `json:"threshold"`
	Regression   bool    `json:"regression"`
}

// parseBench extracts ns/op and allocs/op samples per benchmark name
// from a `go test -bench` output file. Repetitions (-count) accumulate
// under one name; the trailing -GOMAXPROCS suffix stays part of the
// name since both files run on the same CI runner shape.
func parseBench(path string) (map[string]*samples, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	runs := make(map[string]*samples)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Layout: name iterations {value unit}... A recognized unit
		// with an unparseable value is a corrupt file and must fail
		// loudly — silently dropping the line would quietly exclude
		// the benchmark from the gate.
		var ns, allocs float64
		var haveNs, haveAllocs bool
		for i := 2; i+1 < len(fields); i += 2 {
			unit := fields[i+1]
			if unit != "ns/op" && unit != "allocs/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad %s in %q: %w", path, unit, sc.Text(), err)
			}
			if unit == "ns/op" {
				ns, haveNs = v, true
			} else {
				allocs, haveAllocs = v, true
			}
		}
		if !haveNs {
			continue
		}
		s := runs[fields[0]]
		if s == nil {
			s = &samples{}
			runs[fields[0]] = s
		}
		s.ns = append(s.ns, ns)
		if haveAllocs {
			s.allocs = append(s.allocs, allocs)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return runs, nil
}

// median is the per-benchmark summary statistic: robust to the odd
// scheduler hiccup a mean would smear across the gate.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// compare pairs the two run sets and renders the verdict.
func compare(oldRuns, newRuns map[string]*samples, threshold float64) Report {
	rep := Report{Threshold: threshold}
	names := make([]string, 0, len(oldRuns))
	for name := range oldRuns {
		names = append(names, name)
	}
	sort.Strings(names)
	logSum, pairs := 0.0, 0
	allocLogSum, allocPairs := 0.0, 0
	for _, name := range names {
		nr, ok := newRuns[name]
		if !ok {
			rep.OldOnly = append(rep.OldOnly, name)
			continue
		}
		or := oldRuns[name]
		o, n := median(or.ns), median(nr.ns)
		ratio := math.Inf(1)
		if o > 0 {
			ratio = n / o
		}
		b := Benchmark{Name: name, OldNs: o, NewNs: n, Ratio: ratio}
		if o > 0 && n > 0 {
			logSum += math.Log(ratio)
			pairs++
		}
		if len(or.allocs) > 0 && len(nr.allocs) > 0 {
			b.OldAllocs = median(or.allocs)
			b.NewAllocs = median(nr.allocs)
			b.AllocRatio = (b.NewAllocs + 1) / (b.OldAllocs + 1)
			allocLogSum += math.Log(b.AllocRatio)
			allocPairs++
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	for name := range newRuns {
		if _, ok := oldRuns[name]; !ok {
			rep.NewOnly = append(rep.NewOnly, name)
		}
	}
	sort.Strings(rep.NewOnly)
	rep.Geomean = 1.0
	if pairs > 0 {
		rep.Geomean = math.Exp(logSum / float64(pairs))
	}
	rep.AllocGeomean = 1.0
	if allocPairs > 0 {
		rep.AllocGeomean = math.Exp(allocLogSum / float64(allocPairs))
	}
	rep.Regression = rep.Geomean > 1+threshold || rep.AllocGeomean > 1+threshold
	return rep
}
