// Command benchdiff gates CI on benchmark regressions: it parses two
// `go test -bench` outputs (the PR head and the merge base), pairs
// benchmarks by name, and compares per-benchmark median ns/op. The
// geometric mean of the new/old ratios is the verdict: above the
// threshold (default +10%) the command writes its JSON report and exits
// nonzero, failing the job. benchstat renders the human-readable
// comparison in the same CI job; benchdiff exists because benchstat has
// no machine-checkable pass/fail threshold.
//
// Usage:
//
//	benchdiff -old main.txt -new pr.txt [-out BENCH.json] [-threshold 0.10]
//
// Benchmarks present in only one file are reported but excluded from
// the geomean, so adding or removing benchmarks never trips the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	var (
		oldPath   = flag.String("old", "", "baseline `go test -bench` output (required)")
		newPath   = flag.String("new", "", "candidate `go test -bench` output (required)")
		outPath   = flag.String("out", "", "write the JSON report here (default: stdout only)")
		threshold = flag.Float64("threshold", 0.10, "fail when geomean ns/op grows by more than this fraction")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	oldRuns, err := parseBench(*oldPath)
	if err != nil {
		log.Fatal(err)
	}
	newRuns, err := parseBench(*newPath)
	if err != nil {
		log.Fatal(err)
	}

	rep := compare(oldRuns, newRuns, *threshold)
	js, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(js))
	if *outPath != "" {
		if err := os.WriteFile(*outPath, append(js, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if rep.Regression {
		log.Fatalf("geomean ns/op ratio %.4f exceeds 1+%.2f", rep.Geomean, *threshold)
	}
}

// Benchmark is one paired benchmark's comparison.
type Benchmark struct {
	Name  string  `json:"name"`
	OldNs float64 `json:"old_ns_per_op"`
	NewNs float64 `json:"new_ns_per_op"`
	Ratio float64 `json:"ratio"` // new/old; > 1 is a slowdown
}

// Report is the JSON artifact benchdiff emits.
type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
	OldOnly    []string    `json:"old_only,omitempty"`
	NewOnly    []string    `json:"new_only,omitempty"`
	Geomean    float64     `json:"geomean_ratio"`
	Threshold  float64     `json:"threshold"`
	Regression bool        `json:"regression"`
}

// parseBench extracts ns/op samples per benchmark name from a
// `go test -bench` output file. Repetitions (-count) accumulate under
// one name; the trailing -GOMAXPROCS suffix stays part of the name
// since both files run on the same CI runner shape.
func parseBench(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	runs := make(map[string][]float64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Layout: name iterations {value unit}...
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad ns/op in %q: %w", path, sc.Text(), err)
			}
			runs[fields[0]] = append(runs[fields[0]], v)
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return runs, nil
}

// median is the per-benchmark summary statistic: robust to the odd
// scheduler hiccup a mean would smear across the gate.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// compare pairs the two run sets and renders the verdict.
func compare(oldRuns, newRuns map[string][]float64, threshold float64) Report {
	rep := Report{Threshold: threshold}
	names := make([]string, 0, len(oldRuns))
	for name := range oldRuns {
		names = append(names, name)
	}
	sort.Strings(names)
	logSum, pairs := 0.0, 0
	for _, name := range names {
		if _, ok := newRuns[name]; !ok {
			rep.OldOnly = append(rep.OldOnly, name)
			continue
		}
		o, n := median(oldRuns[name]), median(newRuns[name])
		ratio := math.Inf(1)
		if o > 0 {
			ratio = n / o
		}
		rep.Benchmarks = append(rep.Benchmarks, Benchmark{Name: name, OldNs: o, NewNs: n, Ratio: ratio})
		if o > 0 && n > 0 {
			logSum += math.Log(ratio)
			pairs++
		}
	}
	for name := range newRuns {
		if _, ok := oldRuns[name]; !ok {
			rep.NewOnly = append(rep.NewOnly, name)
		}
	}
	sort.Strings(rep.NewOnly)
	rep.Geomean = 1.0
	if pairs > 0 {
		rep.Geomean = math.Exp(logSum / float64(pairs))
	}
	rep.Regression = rep.Geomean > 1+threshold
	return rep
}
