package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeBench(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const oldOut = `goos: linux
BenchmarkInsert/buffered-8   	  100000	      1000 ns/op	       0.55 diskIOs/op	     512 B/op	       3 allocs/op
BenchmarkInsert/buffered-8   	  100000	      1200 ns/op	       0.55 diskIOs/op	     512 B/op	       3 allocs/op
BenchmarkInsert/buffered-8   	  100000	      1100 ns/op	       0.55 diskIOs/op	     512 B/op	       3 allocs/op
BenchmarkLookup/knuth-8      	  200000	       500 ns/op	       0 B/op	       0 allocs/op
BenchmarkRemoved-8           	  100000	       700 ns/op
PASS
`

func TestParseBench(t *testing.T) {
	runs, err := parseBench(writeBench(t, "old.txt", oldOut))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(runs["BenchmarkInsert/buffered-8"].ns); got != 3 {
		t.Fatalf("reps = %d, want 3", got)
	}
	if m := median(runs["BenchmarkInsert/buffered-8"].ns); m != 1100 {
		t.Fatalf("median = %v, want 1100", m)
	}
	if m := median(runs["BenchmarkInsert/buffered-8"].allocs); m != 3 {
		t.Fatalf("allocs median = %v, want 3", m)
	}
	// A benchmark run without -benchmem still pairs on ns/op.
	if got := len(runs["BenchmarkRemoved-8"].allocs); got != 0 {
		t.Fatalf("allocs samples without -benchmem = %d, want 0", got)
	}
	if _, err := parseBench(writeBench(t, "empty.txt", "PASS\n")); err == nil {
		t.Fatal("empty file accepted")
	}
}

func TestCompareVerdicts(t *testing.T) {
	oldRuns, err := parseBench(writeBench(t, "old.txt", oldOut))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		newOut  string
		geomean float64
		fail    bool
	}{
		{"improvement", `
BenchmarkInsert/buffered-8    100000    900 ns/op    0.5 diskIOs/op    512 B/op    3 allocs/op
BenchmarkLookup/knuth-8       200000    450 ns/op    0 B/op    0 allocs/op
`, 0.85, false},
		{"regression", `
BenchmarkInsert/buffered-8    100000    1500 ns/op    0.5 diskIOs/op    512 B/op    3 allocs/op
BenchmarkLookup/knuth-8       200000    700 ns/op    0 B/op    0 allocs/op
`, 1.38, true},
		{"within threshold", `
BenchmarkInsert/buffered-8    100000    1150 ns/op    0.5 diskIOs/op    512 B/op    3 allocs/op
BenchmarkLookup/knuth-8       200000    520 ns/op    0 B/op    0 allocs/op
`, 1.04, false},
		// ns/op flat but allocations exploded: the alloc geomean alone
		// must trip the gate ((4+1)/(3+1) and (2+1)/(0+1) → geomean ~1.94).
		{"alloc regression", `
BenchmarkInsert/buffered-8    100000    1000 ns/op    0.5 diskIOs/op    900 B/op    4 allocs/op
BenchmarkLookup/knuth-8       200000    500 ns/op    64 B/op    2 allocs/op
`, 1.0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			newRuns, err := parseBench(writeBench(t, "new.txt", tc.newOut))
			if err != nil {
				t.Fatal(err)
			}
			rep := compare(oldRuns, newRuns, 0.10)
			if rep.Regression != tc.fail {
				t.Fatalf("regression = %v, want %v (geomean %.3f)", rep.Regression, tc.fail, rep.Geomean)
			}
			if rep.Geomean < tc.geomean-0.07 || rep.Geomean > tc.geomean+0.07 {
				t.Fatalf("geomean = %.3f, want about %.2f", rep.Geomean, tc.geomean)
			}
			// BenchmarkRemoved exists only in the baseline: reported,
			// never counted toward the gate.
			if len(rep.OldOnly) != 1 || rep.OldOnly[0] != "BenchmarkRemoved-8" {
				t.Fatalf("old_only = %v", rep.OldOnly)
			}
			if len(rep.Benchmarks) != 2 {
				t.Fatalf("paired = %d, want 2", len(rep.Benchmarks))
			}
		})
	}
}
