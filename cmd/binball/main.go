// Command binball Monte-Carlos the (s, p, t) bin-ball games of §2 of
// the paper against the Lemma 3 and Lemma 4 cost bounds (experiments L3
// and L4 in DESIGN.md), and optionally plays a single custom game.
//
// Usage:
//
//	binball [-trials 2000] [-seed 42]                  # the L3/L4 tables
//	binball -s 1000 -r 10000 -t 100 [-trials 2000]     # one custom game
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"extbuf/internal/binball"
	"extbuf/internal/experiments"
	"extbuf/internal/tablefmt"
	"extbuf/internal/xrand"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("binball: ")
	var (
		trials = flag.Int("trials", 2000, "Monte Carlo trials")
		seed   = flag.Uint64("seed", 42, "seed")
		s      = flag.Int("s", 0, "custom game: balls")
		r      = flag.Int("r", 0, "custom game: bins")
		t      = flag.Int("t", 0, "custom game: adversarial removals")
	)
	flag.Parse()

	if *s > 0 && *r > 0 {
		g := binball.Game{S: *s, R: *r, T: *t}
		if err := g.Validate(); err != nil {
			log.Fatal(err)
		}
		rng := xrand.New(*seed)
		sum, _ := binball.MonteCarlo(g, rng, *trials, 0)
		out := tablefmt.New(fmt.Sprintf("custom game s=%d r=%d t=%d", *s, *r, *t),
			"metric", "value")
		out.AddRow("trials", *trials)
		out.AddRow("mean cost", sum.Mean())
		out.AddRow("min cost", sum.Min())
		out.AddRow("max cost", sum.Max())
		out.AddRow("stddev", sum.StdDev())
		out.AddRow("E[distinct bins] (t=0)", binball.ExpectedDistinct(*s, *r))
		if bound, ok := binball.Lemma3Threshold(g, 0.1); ok {
			out.AddRow("Lemma 3 bound (mu=0.1)", bound)
		}
		if bound, ok := binball.Lemma4Threshold(g); ok {
			out.AddRow("Lemma 4 bound", bound)
		}
		out.Render(os.Stdout)
		return
	}

	cfg := experiments.Default()
	cfg.Seed = *seed
	experiments.BinBallLemma3(cfg, *trials).Render(os.Stdout)
	fmt.Println()
	experiments.BinBallLemma4(cfg, *trials).Render(os.Stdout)
}
