// Command figure1 regenerates Figure 1 of Wei, Yi, Zhang (SPAA 2009):
// the query-insertion tradeoff of dynamic external hashing, measured on
// the simulated external memory model.
//
// Usage:
//
//	figure1 [-b blocksize] [-m words] [-n items] [-q samples] [-seed s] [-hash family]
//
// It prints the full tradeoff table (experiment F1 in DESIGN.md) plus
// the per-regime Theorem 1 and Theorem 2 tables.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"extbuf/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figure1: ")
	cfg := experiments.Default()
	flag.IntVar(&cfg.B, "b", cfg.B, "block size in items")
	flag.Int64Var(&cfg.MWords, "m", cfg.MWords, "memory budget in words")
	flag.IntVar(&cfg.N, "n", cfg.N, "items to insert")
	flag.IntVar(&cfg.QuerySamples, "q", cfg.QuerySamples, "successful lookups sampled")
	flag.Uint64Var(&cfg.Seed, "seed", cfg.Seed, "master seed")
	flag.StringVar(&cfg.HashFamily, "hash", "", "hash family: ideal, multshift, tabulation")
	flag.Parse()

	fig, err := experiments.Figure1(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fig.Render(os.Stdout)
	fmt.Println()

	t1, err := experiments.Theorem1(cfg)
	if err != nil {
		log.Fatal(err)
	}
	t1.Render(os.Stdout)
	fmt.Println()

	t2, err := experiments.Theorem2(cfg)
	if err != nil {
		log.Fatal(err)
	}
	t2.Render(os.Stdout)
	fmt.Println()

	t2e, err := experiments.Theorem2Eps(cfg)
	if err != nil {
		log.Fatal(err)
	}
	t2e.Render(os.Stdout)
}
