// Command hashbench measures the costs of any one structure in this
// repository under a configurable workload — the general-purpose driver
// behind the per-structure experiment rows in README.md.
//
// Besides the paper's simulated I/O counts it reports wall-clock time
// per operation, and can run the structure against a real storage
// backend:
//
//	-backend=mem      the paper's free in-memory simulated store (default)
//	-backend=file     blocks persisted to an on-disk file behind a page
//	                  cache (-path, -cache); reports syscall and cache
//	                  columns alongside the model's I/O counters
//	-backend=latency  in-memory store with injected per-transfer delays
//	                  (-seek, -xfer)
//
// The I/O counters are identical across backends; only the real price
// of the bytes differs.
//
// With -workers >= 1 it instead drives the sharded pipelined engine:
// the workload is partitioned over that many shard workers and fed
// through the batch APIs in batches of -batch operations, with the
// write path selected by -flush (sync or async write-behind; async
// runs a Flush barrier before the clock stops). This mode reports
// throughput (ops/sec) columns next to the model's I/O counters.
//
// Usage:
//
//	hashbench -structure core [-b 64] [-m 1024] [-n 50000] [-beta 8]
//	          [-gamma 2] [-delta 0.1] [-q 4000] [-seed 42] [-hash ideal]
//	          [-backend mem|file|latency] [-path FILE] [-cache 512]
//	          [-iomode buffered|odirect|uring]
//	          [-seek 4ms] [-xfer 100us] [-profile nvme|ssd|hdd]
//	          [-workers 8] [-batch 256] [-flush sync|async]
//	          [-wbworkers 8] [-walpath FILE] [-recoverypar 8]
//	          [-reopen [-crashtail 100000]]
//	          [-cpuprofile cpu.out] [-memprofile mem.out]
//
// -iomode selects the file backend's kernel-bypass tier: odirect opens
// the block file (and WAL) O_DIRECT with sector-aligned buffers, uring
// adds an io_uring submission queue (Linux, build tag "iouring"). Each
// rung falls back one step where unsupported; the effective mode and
// any fallbacks are reported in the stat rows.
//
// Every mode reports an allocs/op column (runtime allocation counters
// around the measured loops), and -cpuprofile/-memprofile write pprof
// profiles so perf work needs no code edits.
//
// Structures: chainhash, linprobe, exthash, linhash, twolevel,
// logmethod, core, staged (-workers mode accepts the extbuf.Open
// names, e.g. buffered).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"extbuf"
	"extbuf/internal/chainhash"
	"extbuf/internal/core"
	"extbuf/internal/exthash"
	"extbuf/internal/hashfn"
	"extbuf/internal/iomodel"
	"extbuf/internal/linhash"
	"extbuf/internal/linprobe"
	"extbuf/internal/logmethod"
	"extbuf/internal/tablefmt"
	"extbuf/internal/twolevel"
	"extbuf/internal/workload"
	"extbuf/internal/xrand"
	"extbuf/internal/zones"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hashbench: ")
	var (
		structure = flag.String("structure", "core", "structure to drive")
		b         = flag.Int("b", 64, "block size in items")
		mWords    = flag.Int64("m", 1024, "memory budget in words")
		n         = flag.Int("n", 50000, "items to insert")
		beta      = flag.Int("beta", 8, "core: merge parameter")
		gamma     = flag.Int("gamma", 2, "core/logmethod: growth factor")
		delta     = flag.Float64("delta", 0.1, "staged: slow-zone budget coefficient")
		q         = flag.Int("q", 4000, "successful lookups sampled")
		seed      = flag.Uint64("seed", 42, "seed")
		family    = flag.String("hash", "ideal", "hash family")
		backend   = flag.String("backend", "mem", "block store: mem, file or latency")
		path      = flag.String("path", "", "file backend: backing file (default: temp file)")
		cache     = flag.Int("cache", iomodel.DefaultCacheBlocks, "file backend: page-cache capacity in blocks")
		ioMode    = flag.String("iomode", "", "file backend: I/O mode (buffered, odirect or uring; default buffered)")
		seek      = flag.Duration("seek", 100*time.Microsecond, "latency backend: per-transfer seek delay")
		xfer      = flag.Duration("xfer", 25*time.Microsecond, "latency backend: per-transfer data delay")
		profile   = flag.String("profile", "", "latency backend: fio-style device profile (nvme, ssd or hdd; overrides -seek/-xfer)")
		workers   = flag.Int("workers", 0, "sharded engine: shard worker count (0 = classic single-structure mode)")
		batch     = flag.Int("batch", 1, "sharded engine: operations per batch")
		fpolicy   = flag.String("flush", extbuf.FlushSync, "sharded engine: flush policy (sync or async)")
		wbWorkers = flag.Int("wbworkers", 0, "file backend: async writeback workers (0 = default, 1 = synchronous)")
		walPath   = flag.String("walpath", "", "durable mode: dedicated WAL file path (default: -path plus .wal)")
		recovPar  = flag.Int("recoverypar", 0, "durable mode: recovery parallelism across shards and WAL replay (0 = GOMAXPROCS)")
		reopen    = flag.Bool("reopen", false, "durability mode: build, flush and close a durable table, then measure reopen/recovery time (requires -backend file and -path)")
		crashtail = flag.Int("crashtail", 0, "reopen mode: items inserted after the checkpoint and acked via Sync only, with the handle then abandoned (simulated crash) — recovery must replay them from the WAL")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile of the measured run to this file")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	)
	flag.Parse()
	startProfiles(*cpuProf, *memProf)
	defer stopProfiles()

	if *reopen {
		if *backend != "file" || *path == "" {
			fatalf("-reopen requires -backend file and a named -path (durable mode)")
		}
		runReopen(*structure, extbuf.Config{
			BlockSize:           *b,
			MemoryWords:         *mWords,
			Beta:                *beta,
			Gamma:               *gamma,
			ExpectedItems:       *n,
			Seed:                *seed,
			HashFamily:          *family,
			Backend:             *backend,
			Path:                *path,
			WALPath:             *walPath,
			CacheBlocks:         *cache,
			IOMode:              *ioMode,
			FlushPolicy:         *fpolicy,
			WritebackWorkers:    *wbWorkers,
			RecoveryParallelism: *recovPar,
		}, *workers, *batch, *n, *q, *crashtail)
		return
	}

	if *workers > 0 {
		runEngine(*structure, extbuf.Config{
			BlockSize:           *b,
			MemoryWords:         *mWords,
			Beta:                *beta,
			Gamma:               *gamma,
			ExpectedItems:       *n,
			Seed:                *seed,
			HashFamily:          *family,
			Backend:             *backend,
			Path:                *path,
			WALPath:             *walPath,
			CacheBlocks:         *cache,
			IOMode:              *ioMode,
			SeekDelay:           *seek,
			TransferDelay:       *xfer,
			DeviceProfile:       *profile,
			FlushPolicy:         *fpolicy,
			WritebackWorkers:    *wbWorkers,
			RecoveryParallelism: *recovPar,
		}, *workers, *batch, *n, *q)
		return
	}

	// The extendible baseline's directory needs Theta(n/b) words beyond
	// the budget; provision it before the store exists.
	words := *mWords
	if *structure == "exthash" || *structure == "extendible" {
		words += int64(8 * *n / *b)
	}

	store := openStore(*backend, *b, *path, *cache, *ioMode, *seek, *xfer, *profile, *wbWorkers)
	model := iomodel.NewModelOn(store, words)
	// log.Fatal exits without running defers, so fatal() also routes
	// through this cleanup: a temp-file store must not outlive a failed
	// run. Closing twice is safe.
	cleanup = func() {
		if err := model.Close(); err != nil {
			log.Printf("close store: %v", err)
		}
	}
	defer cleanup()
	fn := hashfn.Family(*family, *seed)
	rng := xrand.New(*seed)

	var (
		insert  func(k uint64) error
		lookup  func(k uint64) bool
		subject zones.Subject
	)
	switch *structure {
	case "chainhash", "knuth":
		tab, err := chainhash.New(model, fn, 2**n / *b)
		fatal(err)
		insert = func(k uint64) error { tab.Insert(k, 0); return nil }
		lookup = func(k uint64) bool { _, ok, _ := tab.Lookup(k); return ok }
		subject = tab
	case "linprobe":
		tab, err := linprobe.New(model, fn, 2**n / *b)
		fatal(err)
		insert = func(k uint64) error { _, err := tab.Insert(k, 0); return err }
		lookup = func(k uint64) bool { _, ok, _ := tab.Lookup(k); return ok }
		subject = tab
	case "exthash", "extendible":
		tab, err := exthash.New(model, fn, 4)
		fatal(err)
		insert = func(k uint64) error { tab.Insert(k, 0); return nil }
		lookup = func(k uint64) bool { _, ok, _ := tab.Lookup(k); return ok }
		subject = tab
	case "linhash", "linear":
		tab, err := linhash.New(model, fn, 2)
		fatal(err)
		insert = func(k uint64) error { tab.Insert(k, 0); return nil }
		lookup = func(k uint64) bool { _, ok, _ := tab.Lookup(k); return ok }
		subject = tab
	case "twolevel":
		tab, err := twolevel.New(model, fn, twolevel.HomeBucketsFor(*n, *b))
		fatal(err)
		insert = func(k uint64) error { tab.Insert(k, 0); return nil }
		lookup = func(k uint64) bool { _, ok, _ := tab.Lookup(k); return ok }
		subject = tab
	case "logmethod":
		tab, err := logmethod.New(model, fn, logmethod.Config{Gamma: *gamma})
		fatal(err)
		insert = func(k uint64) error { _, err := tab.Insert(k, 0); return err }
		lookup = func(k uint64) bool { _, ok, _ := tab.Lookup(k); return ok }
		subject = tab
	case "core", "buffered":
		tab, err := core.New(model, fn, core.Config{Beta: *beta, Gamma: *gamma})
		fatal(err)
		insert = func(k uint64) error { _, err := tab.Insert(k, 0); return err }
		lookup = func(k uint64) bool { _, ok, _ := tab.Lookup(k); return ok }
		subject = tab
	case "staged":
		tab, err := core.NewStaged(model, fn, core.StagedConfig{Delta: *delta})
		fatal(err)
		insert = func(k uint64) error { tab.Insert(k, 0); return nil }
		lookup = func(k uint64) bool { _, ok, _ := tab.Lookup(k); return ok }
		subject = tab
	default:
		fatalf("unknown structure %q", *structure)
	}

	keys := workload.Keys(rng, *n)
	c0 := model.Counters()
	a0 := allocSnapshot()
	insStart := time.Now()
	for _, k := range keys {
		fatal(insert(k))
	}
	insWall := time.Since(insStart)
	insAllocs := a0.perOp(*n)
	ins := model.Counters().Sub(c0)

	qs := workload.SuccessfulQueries(rng, keys, *n, *q)
	c1 := model.Counters()
	a1 := allocSnapshot()
	qryStart := time.Now()
	for _, k := range qs {
		if !lookup(k) {
			cleanup()
			fatalf("lost key %d", k)
		}
	}
	qryWall := time.Since(qryStart)
	qryAllocs := a1.perOp(len(qs))
	qry := model.Counters().Sub(c1)

	// Snapshot the backend's real-cost rows before the zone audit: Audit
	// peeks every block, and on the file backend that sweep would inflate
	// the syscall and cache columns far beyond the measured workload.
	backendRows := backendStatRows(store)

	rep := zones.Audit(subject, keys)

	t := tablefmt.New(fmt.Sprintf("%s: b=%d m=%d n=%d backend=%s", *structure, *b, *mWords, *n, *backend),
		"metric", "value")
	t.AddRow("amortized insert I/Os", float64(ins.IOs())/float64(*n))
	t.AddRow("  reads", float64(ins.Reads)/float64(*n))
	t.AddRow("  cold writes", float64(ins.Writes)/float64(*n))
	t.AddRow("  free write-backs", float64(ins.WriteBacks)/float64(*n))
	t.AddRow("avg successful lookup I/Os", float64(qry.IOs())/float64(len(qs)))
	t.AddRow("insert wall µs/op", float64(insWall.Microseconds())/float64(*n))
	t.AddRow("lookup wall µs/op", float64(qryWall.Microseconds())/float64(len(qs)))
	t.AddRow("insert allocs/op", insAllocs)
	t.AddRow("lookup allocs/op", qryAllocs)
	t.AddRow("zone |M|", rep.M)
	t.AddRow("zone |F|", rep.F)
	t.AddRow("zone |S|", rep.S)
	t.AddRow("zone-model tq", rep.ModelQueryCost())
	t.AddRow("slow fraction", rep.SlowFraction())
	t.AddRow("memory peak (words)", model.Mem.Peak())
	t.AddRow("disk blocks", model.Disk.NumBlocks())
	t.AddRow("(tq-1)*b", tablefmt.FormatFloat((float64(qry.IOs())/float64(len(qs))-1)*float64(*b)))
	for _, r := range backendRows {
		t.AddRow(r.metric, r.value)
	}
	t.Render(os.Stdout)
}

// runEngine drives the sharded pipelined engine: n batched inserts and
// q batched successful lookups, reporting throughput next to the
// model's aggregated I/O counters.
func runEngine(structure string, cfg extbuf.Config, workers, batch, n, q int) {
	if batch < 1 {
		fatalf("batch must be >= 1, got %d", batch)
	}
	s, err := extbuf.NewSharded(structure, cfg, workers)
	if err != nil {
		log.Fatal(err)
	}
	closed := false
	defer func() {
		if !closed {
			if err := s.Close(); err != nil {
				log.Printf("close: %v", err)
			}
		}
	}()

	rng := xrand.New(cfg.Seed)
	keys := workload.Keys(rng, n)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i)
	}
	keyChunks := workload.Chunks(keys, batch)
	valChunks := workload.Chunks(vals, batch)

	c0 := s.Stats()
	a0 := allocSnapshot()
	insStart := time.Now()
	for i := range keyChunks {
		if err := s.InsertBatch(keyChunks[i], valChunks[i]); err != nil {
			fatalf("insert batch %d: %v", i, err)
		}
	}
	// Under async write-behind the inserts may still be in flight;
	// Flush is the completion barrier, so it belongs inside the clock.
	if err := s.Flush(); err != nil {
		fatalf("flush: %v", err)
	}
	insWall := time.Since(insStart)
	insAllocs := a0.perOp(n)
	ins := sub(s.Stats(), c0)

	qs := workload.SuccessfulQueries(rng, keys, n, q)
	c1 := s.Stats()
	a1 := allocSnapshot()
	qryStart := time.Now()
	for i, chunk := range workload.Chunks(qs, batch) {
		_, found, err := s.LookupBatch(chunk)
		if err != nil {
			fatalf("lookup batch %d: %v", i, err)
		}
		for j, ok := range found {
			if !ok {
				fatalf("lookup batch %d: lost key %d", i, chunk[j])
			}
		}
	}
	qryWall := time.Since(qryStart)
	qryAllocs := a1.perOp(len(qs))
	qry := sub(s.Stats(), c1)

	if got := s.Len(); got != n {
		fatalf("Len = %d, want %d", got, n)
	}

	t := tablefmt.New(fmt.Sprintf("%s: b=%d m=%d n=%d backend=%s workers=%d batch=%d flush=%s",
		structure, cfg.BlockSize, cfg.MemoryWords, n, orDefault(cfg.Backend, "mem"),
		s.NumShards(), batch, orDefault(cfg.FlushPolicy, extbuf.FlushSync)),
		"metric", "value")
	t.AddRow("insert throughput ops/s", float64(n)/insWall.Seconds())
	t.AddRow("lookup throughput ops/s", float64(len(qs))/qryWall.Seconds())
	t.AddRow("insert wall µs/op", float64(insWall.Microseconds())/float64(n))
	t.AddRow("lookup wall µs/op", float64(qryWall.Microseconds())/float64(len(qs)))
	t.AddRow("insert allocs/op", insAllocs)
	t.AddRow("lookup allocs/op", qryAllocs)
	t.AddRow("amortized insert I/Os", float64(ins.IOs())/float64(n))
	t.AddRow("  reads", float64(ins.Reads)/float64(n))
	t.AddRow("  cold writes", float64(ins.Writes)/float64(n))
	t.AddRow("  free write-backs", float64(ins.WriteBacks)/float64(n))
	t.AddRow("avg successful lookup I/Os", float64(qry.IOs())/float64(len(qs)))
	t.AddRow("memory used (words)", s.MemoryUsed())
	if cfg.Backend == "file" {
		st := s.StoreStats()
		t.AddRow("store: io mode (effective)", effectiveIOMode(st, cfg.IOMode))
		if st.WriteSyscalls > 0 {
			t.AddRow("store: mean KiB/pwrite", float64(st.BytesWritten)/float64(st.WriteSyscalls)/1024)
		}
		if st.UringEnters > 0 {
			t.AddRow("store: uring mean batch", float64(st.UringSQEs)/float64(st.UringEnters))
		}
		if st.ODirectFallbacks > 0 || st.UringFallbacks > 0 {
			t.AddRow("store: bypass fallbacks (odirect/uring)",
				fmt.Sprintf("%d/%d", st.ODirectFallbacks, st.UringFallbacks))
		}
	}
	t.Render(os.Stdout)

	closed = true
	if err := s.Close(); err != nil {
		fatalf("close: %v", err)
	}
}

// runReopen measures the durability subsystem end to end: build a
// durable table (or sharded engine) at cfg.Path, insert n items, Flush
// (the checkpoint barrier), then reopen the same path with the clock
// running and verify q lookups. The reopen wall time is the recovery
// cost a restarting server pays: superblock read, allocator/directory
// restore and WAL replay.
//
// With -crashtail T the run simulates a crash between checkpoints:
// after the checkpoint it inserts T more items acked only by Sync (WAL
// fsync, no checkpoint) and abandons the handle without Close — the
// on-disk state is then exactly a kill -9 after the ack, and the
// measured recovery includes replaying those T records from the log
// (in parallel when -recoverypar allows).
func runReopen(structure string, cfg extbuf.Config, workers, batch, n, q, crashtail int) {
	type engine interface {
		Insert(key, val uint64) error
		Lookup(key uint64) (uint64, bool)
		Len() int
		Sync() error
		Flush() error
		Close() error
	}
	open := func() engine {
		if workers > 0 {
			s, err := extbuf.NewSharded(structure, cfg, workers)
			fatal(err)
			return s
		}
		t, err := extbuf.Open(structure, cfg)
		fatal(err)
		return t
	}

	rng := xrand.New(cfg.Seed)
	all := workload.Keys(rng, n+crashtail)
	keys, tail := all[:n], all[n:]

	insertMany := func(e engine, ks []uint64, base int) {
		if workers > 0 {
			s := e.(*extbuf.Sharded)
			vals := make([]uint64, len(ks))
			for i := range vals {
				vals[i] = uint64(base + i)
			}
			keyChunks := workload.Chunks(ks, batch)
			valChunks := workload.Chunks(vals, batch)
			for i := range keyChunks {
				fatal(s.InsertBatch(keyChunks[i], valChunks[i]))
			}
			return
		}
		for i, k := range ks {
			fatal(e.Insert(k, uint64(base+i)))
		}
	}

	e := open()
	buildStart := time.Now()
	insertMany(e, keys, 0)
	buildWall := time.Since(buildStart)
	flushStart := time.Now()
	fatal(e.Flush())
	flushWall := time.Since(flushStart)
	if crashtail > 0 {
		// Crash-tail phase: these items are acked by the Sync barrier
		// only, then the handle is abandoned — no Close, no checkpoint.
		// Recovery below must replay them from the WAL.
		insertMany(e, tail, n)
		fatal(e.Sync())
	} else {
		fatal(e.Close())
	}

	reopenStart := time.Now()
	e2 := open()
	reopenWall := time.Since(reopenStart)
	if got := e2.Len(); got != n+crashtail {
		fatalf("reopen lost items: Len = %d, want %d", got, n+crashtail)
	}
	qs := workload.SuccessfulQueries(rng, all, n+crashtail, q)
	qryStart := time.Now()
	for i, k := range qs {
		if _, ok := e2.Lookup(k); !ok {
			fatalf("reopen lost key %d (query %d)", k, i)
		}
	}
	qryWall := time.Since(qryStart)
	fatal(e2.Close())

	t := tablefmt.New(fmt.Sprintf("%s reopen: b=%d m=%d n=%d crashtail=%d workers=%d recoverypar=%d path=%s",
		structure, cfg.BlockSize, cfg.MemoryWords, n, crashtail, workers, cfg.RecoveryParallelism, cfg.Path), "metric", "value")
	t.AddRow("build wall ms", float64(buildWall.Microseconds())/1000)
	t.AddRow("flush (checkpoint) wall ms", float64(flushWall.Microseconds())/1000)
	t.AddRow("reopen (recovery) wall ms", float64(reopenWall.Microseconds())/1000)
	t.AddRow("reopen items", n+crashtail)
	t.AddRow("replayed tail items", crashtail)
	t.AddRow("post-reopen lookup µs/op", float64(qryWall.Microseconds())/float64(len(qs)))
	t.Render(os.Stdout)
}

// sub returns a - b per counter.
func sub(a, b extbuf.Stats) extbuf.Stats {
	return extbuf.Stats{
		Reads:      a.Reads - b.Reads,
		Writes:     a.Writes - b.Writes,
		WriteBacks: a.WriteBacks - b.WriteBacks,
	}
}

// effectiveIOMode derives the engine-wide syscall path from the
// aggregated store counters (every shard is configured identically):
// any ring submission means uring, any direct fd means odirect, else
// buffered — annotated when the fallback ladder moved off the
// configured mode.
func effectiveIOMode(st extbuf.StoreStats, configured string) string {
	mode := "buffered"
	if st.DirectIO > 0 {
		mode = "odirect"
	}
	if st.UringSQEs > 0 {
		mode = "uring"
	}
	if configured == "" {
		configured = "buffered"
	}
	if mode != configured {
		return fmt.Sprintf("%s (configured %s)", mode, configured)
	}
	return mode
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// openStore builds the block store selected by -backend.
func openStore(backend string, b int, path string, cache int, ioMode string, seek, xfer time.Duration, profile string, wbWorkers int) iomodel.BlockStore {
	switch backend {
	case "mem":
		return iomodel.NewMemStore(b)
	case "file":
		var (
			fs  *iomodel.FileStore
			err error
		)
		opt := iomodel.IOOptions{Mode: ioMode}
		if path == "" {
			fs, err = iomodel.NewTempFileStoreIO(b, cache, opt)
		} else {
			fs, err = iomodel.NewFileStoreIO(path, b, cache, opt)
		}
		fatal(err)
		n := wbWorkers
		if n == 0 {
			if n = runtime.GOMAXPROCS(0); n > 4 {
				n = 4
			}
		}
		fs.ConfigureSubmission(ioMode, n)
		return fs
	case "latency":
		lcfg := iomodel.LatencyConfig{Seek: seek, Transfer: xfer}
		if profile != "" {
			var err error
			lcfg, err = iomodel.DeviceProfileIO(profile, ioMode)
			fatal(err)
		}
		return iomodel.NewLatencyStore(iomodel.NewMemStore(b), lcfg)
	default:
		fatalf("unknown backend %q (want mem, file or latency)", backend)
		return nil
	}
}

type statRow struct {
	metric string
	value  any
}

// backendStatRows snapshots the real-cost columns a backend exposes.
func backendStatRows(store iomodel.BlockStore) []statRow {
	switch s := store.(type) {
	case *iomodel.FileStore:
		st := s.Stats()
		rows := []statRow{
			{"file: path", s.Path()},
			{"file: io mode (effective)", s.EffectiveIOMode()},
			{"file: pread syscalls", st.ReadSyscalls},
			{"file: pwrite syscalls", st.WriteSyscalls},
			{"file: cache hits", st.CacheHits},
			{"file: cache misses", st.CacheMisses},
			{"file: pool evictions", st.Evictions},
			{"file: dirty writebacks", st.DirtyWritebacks},
			{"file: flush frames", st.FlushedFrames},
			{"file: flush runs (coalesced)", st.FlushRuns},
			{"file: fsyncs", st.Fsyncs},
			{"file: fsyncs elided", st.FsyncsElided},
			{"file: ghost hits (scan-resistant promotions)", st.GhostHits},
			{"file: MB read", float64(st.BytesRead) / (1 << 20)},
			{"file: MB written", float64(st.BytesWritten) / (1 << 20)},
		}
		if st.WriteSyscalls > 0 {
			rows = append(rows, statRow{"file: mean KiB/pwrite",
				float64(st.BytesWritten) / float64(st.WriteSyscalls) / 1024})
		}
		if st.ODirectFallbacks > 0 || st.UringFallbacks > 0 {
			rows = append(rows, statRow{"file: bypass fallbacks (odirect/uring)",
				fmt.Sprintf("%d/%d", st.ODirectFallbacks, st.UringFallbacks)})
		}
		if st.UringEnters > 0 {
			rows = append(rows,
				statRow{"file: uring SQEs", st.UringSQEs},
				statRow{"file: uring enters", st.UringEnters},
				statRow{"file: uring mean batch", float64(st.UringSQEs) / float64(st.UringEnters)})
		}
		return rows
	case *iomodel.LatencyStore:
		return []statRow{
			{"latency: delayed transfers", s.DelayedOps()},
			{"latency: sequential transfers", s.SeqOps()},
			{"latency: injected wait", s.Waited().String()},
		}
	}
	return nil
}

// cleanup releases the block store; set once the model exists. fatal
// paths call it explicitly because log.Fatal skips defers.
var cleanup = func() {}

func fatal(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

// fatalf is log.Fatalf behind the run's teardown: log.Fatal skips
// defers, so the store cleanup and profile finalization run here —
// a -cpuprofile of a failing run is still written.
func fatalf(format string, args ...any) {
	cleanup()
	stopProfiles()
	log.Fatalf(format, args...)
}

// stopProfiles finalizes any profiles started by startProfiles. It is
// safe to call more than once (fatal paths call it before log.Fatal,
// which skips defers).
var stopProfiles = func() {}

// startProfiles begins CPU profiling and/or arranges a heap profile at
// exit, so perf work on this binary needs no code edits:
//
//	hashbench -cpuprofile cpu.out -memprofile mem.out ...
//	go tool pprof cpu.out
func startProfiles(cpuPath, memPath string) {
	var stops []func()
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if memPath != "" {
		stops = append(stops, func() {
			f, err := os.Create(memPath)
			if err != nil {
				log.Printf("memprofile: %v", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("memprofile: %v", err)
			}
		})
	}
	done := false
	stopProfiles = func() {
		if done {
			return
		}
		done = true
		for _, stop := range stops {
			stop()
		}
	}
}

// allocCounter samples runtime allocation counters so each measured
// phase can report a real allocs/op column next to its wall clock.
type allocCounter struct{ mallocs uint64 }

func allocSnapshot() allocCounter {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return allocCounter{mallocs: ms.Mallocs}
}

// perOp returns the allocations per operation since the snapshot.
func (c allocCounter) perOp(ops int) float64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.Mallocs-c.mallocs) / float64(ops)
}
