// Command hashbench measures the I/O costs of any one structure in this
// repository under a configurable workload — the general-purpose driver
// behind the per-structure rows of EXPERIMENTS.md.
//
// Usage:
//
//	hashbench -structure core [-b 64] [-m 1024] [-n 50000] [-beta 8]
//	          [-gamma 2] [-delta 0.1] [-q 4000] [-seed 42] [-hash ideal]
//
// Structures: chainhash, linprobe, exthash, linhash, twolevel,
// logmethod, core, staged.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"extbuf/internal/chainhash"
	"extbuf/internal/core"
	"extbuf/internal/exthash"
	"extbuf/internal/hashfn"
	"extbuf/internal/iomodel"
	"extbuf/internal/linhash"
	"extbuf/internal/linprobe"
	"extbuf/internal/logmethod"
	"extbuf/internal/tablefmt"
	"extbuf/internal/twolevel"
	"extbuf/internal/workload"
	"extbuf/internal/xrand"
	"extbuf/internal/zones"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hashbench: ")
	var (
		structure = flag.String("structure", "core", "structure to drive")
		b         = flag.Int("b", 64, "block size in items")
		mWords    = flag.Int64("m", 1024, "memory budget in words")
		n         = flag.Int("n", 50000, "items to insert")
		beta      = flag.Int("beta", 8, "core: merge parameter")
		gamma     = flag.Int("gamma", 2, "core/logmethod: growth factor")
		delta     = flag.Float64("delta", 0.1, "staged: slow-zone budget coefficient")
		q         = flag.Int("q", 4000, "successful lookups sampled")
		seed      = flag.Uint64("seed", 42, "seed")
		family    = flag.String("hash", "ideal", "hash family")
	)
	flag.Parse()

	model := iomodel.NewModel(*b, *mWords)
	fn := hashfn.Family(*family, *seed)
	rng := xrand.New(*seed)

	var (
		insert  func(k uint64) error
		lookup  func(k uint64) bool
		subject zones.Subject
	)
	switch *structure {
	case "chainhash", "knuth":
		tab, err := chainhash.New(model, fn, 2**n / *b)
		fatal(err)
		insert = func(k uint64) error { tab.Insert(k, 0); return nil }
		lookup = func(k uint64) bool { _, ok, _ := tab.Lookup(k); return ok }
		subject = tab
	case "linprobe":
		tab, err := linprobe.New(model, fn, 2**n / *b)
		fatal(err)
		insert = func(k uint64) error { _, err := tab.Insert(k, 0); return err }
		lookup = func(k uint64) bool { _, ok, _ := tab.Lookup(k); return ok }
		subject = tab
	case "exthash", "extendible":
		// Provision the directory's Theta(n/b) words explicitly.
		model = iomodel.NewModel(*b, *mWords+int64(8**n / *b))
		tab, err := exthash.New(model, fn, 4)
		fatal(err)
		insert = func(k uint64) error { tab.Insert(k, 0); return nil }
		lookup = func(k uint64) bool { _, ok, _ := tab.Lookup(k); return ok }
		subject = tab
	case "linhash", "linear":
		tab, err := linhash.New(model, fn, 2)
		fatal(err)
		insert = func(k uint64) error { tab.Insert(k, 0); return nil }
		lookup = func(k uint64) bool { _, ok, _ := tab.Lookup(k); return ok }
		subject = tab
	case "twolevel":
		tab, err := twolevel.New(model, fn, twolevel.HomeBucketsFor(*n, *b))
		fatal(err)
		insert = func(k uint64) error { tab.Insert(k, 0); return nil }
		lookup = func(k uint64) bool { _, ok, _ := tab.Lookup(k); return ok }
		subject = tab
	case "logmethod":
		tab, err := logmethod.New(model, fn, logmethod.Config{Gamma: *gamma})
		fatal(err)
		insert = func(k uint64) error { _, err := tab.Insert(k, 0); return err }
		lookup = func(k uint64) bool { _, ok, _ := tab.Lookup(k); return ok }
		subject = tab
	case "core", "buffered":
		tab, err := core.New(model, fn, core.Config{Beta: *beta, Gamma: *gamma})
		fatal(err)
		insert = func(k uint64) error { _, err := tab.Insert(k, 0); return err }
		lookup = func(k uint64) bool { _, ok, _ := tab.Lookup(k); return ok }
		subject = tab
	case "staged":
		tab, err := core.NewStaged(model, fn, core.StagedConfig{Delta: *delta})
		fatal(err)
		insert = func(k uint64) error { tab.Insert(k, 0); return nil }
		lookup = func(k uint64) bool { _, ok, _ := tab.Lookup(k); return ok }
		subject = tab
	default:
		log.Fatalf("unknown structure %q", *structure)
	}

	keys := workload.Keys(rng, *n)
	c0 := model.Counters()
	for _, k := range keys {
		fatal(insert(k))
	}
	ins := model.Counters().Sub(c0)

	qs := workload.SuccessfulQueries(rng, keys, *n, *q)
	c1 := model.Counters()
	for _, k := range qs {
		if !lookup(k) {
			log.Fatalf("lost key %d", k)
		}
	}
	qry := model.Counters().Sub(c1)

	rep := zones.Audit(subject, keys)

	t := tablefmt.New(fmt.Sprintf("%s: b=%d m=%d n=%d", *structure, *b, *mWords, *n),
		"metric", "value")
	t.AddRow("amortized insert I/Os", float64(ins.IOs())/float64(*n))
	t.AddRow("  reads", float64(ins.Reads)/float64(*n))
	t.AddRow("  cold writes", float64(ins.Writes)/float64(*n))
	t.AddRow("  free write-backs", float64(ins.WriteBacks)/float64(*n))
	t.AddRow("avg successful lookup I/Os", float64(qry.IOs())/float64(len(qs)))
	t.AddRow("zone |M|", rep.M)
	t.AddRow("zone |F|", rep.F)
	t.AddRow("zone |S|", rep.S)
	t.AddRow("zone-model tq", rep.ModelQueryCost())
	t.AddRow("slow fraction", rep.SlowFraction())
	t.AddRow("memory peak (words)", model.Mem.Peak())
	t.AddRow("disk blocks", model.Disk.NumBlocks())
	t.AddRow("(tq-1)*b", tablefmt.FormatFloat((float64(qry.IOs())/float64(len(qs))-1)*float64(*b)))
	t.Render(os.Stdout)
}

func fatal(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
