// Command hashload is a closed-loop load generator for hashserved: a
// fixed set of workers issue pipelined batch requests over a pooled
// client connection and each waits for its response before sending the
// next (closed loop), so offered load adapts to what the server
// sustains. It reports throughput and per-request latency percentiles,
// and can record an acked-write log for crash-recovery verification.
//
// Workload: each worker owns a disjoint key space and mixes fresh-key
// insert batches with lookup (and optional delete) batches over the
// keys it has already inserted, sampled uniformly or Zipf-skewed
// toward recent inserts (-dist zipf), the recency skew of package
// workload.
//
// Crash verification: with -acklog the generator writes a mutation log
// — inserts after the server acks them WAL-durable, deletes when they
// are issued (a delete may apply durably even if its ack is lost, so
// issued deletes conservatively leave the verified set) — and
// tolerates the server dying mid-run (the run ends early,
// successfully, with the log intact). A second invocation with -verify
// replays the log against a restarted server and fails if any acked
// write is missing: the e2e CI gate's kill -9 check. -ttlfrac sends
// that fraction of insert batches as UPSERTTTL with a far deadline
// (acked TTL writes must survive like plain inserts); -casfrac mixes
// in CAS batches over owned keys, demoted to presence-only claims at
// issue time (a swap leaves either value behind, never loses the key).
//
// Replication: -replica ADDR points at a read replica; workers then
// re-read a sample of their acked insert batches there carrying the
// batch's ReadToken, verifying read-your-writes across the replication
// stream (missing or wrong values are token violations; a BEHIND
// rejection is the protocol's honest escape valve and counted
// separately). -promote asks the node at -addr to become the writable
// primary and exits — the failover step after a primary dies.
//
// Contended writes: -overlap N abandons the disjoint per-worker key
// spaces and instead has every worker upsert into ONE shared keyspace
// of N keys (Zipf-skewed with -dist zipf, so a few keys are hammered
// from many connections at once) — the §2a total-write-order trigger.
// Values are still globally unique, but which write wins a key is
// decided by the server's apply order, so the ack log records bare
// presence ("k <key>") and replica token checks only demand the key
// exists at the token, not any particular value.
//
// Convergence: -diff FILE (with -replica) is the post-run/post-failover
// gate for overlap runs: it waits until -addr and -replica report the
// same applied LSN, then reads every key the log mentions on both nodes
// and fails on ANY difference in value or presence — the check that a
// replica did not silently diverge under contention.
//
// Usage:
//
//	hashload -addr HOST:PORT [-conns 4] [-workers 16] [-pipeline 16]
//	         [-batch 256] [-duration 10s] [-lookupfrac 0.5]
//	         [-deletefrac 0] [-casfrac 0] [-ttlfrac 0]
//	         [-dist uniform|zipf] [-zipfexp 1.5]
//	         [-seed 42] [-acklog FILE] [-summary FILE] [-replica HOST:PORT]
//	         [-overlap N]
//	hashload -addr HOST:PORT -ycsb A|B|C|D|E|F [-records N] [-scanlen N]
//	hashload -addr HOST:PORT -verify FILE
//	hashload -addr HOST:PORT -replica HOST:PORT -diff FILE
//	hashload -addr HOST:PORT -promote
//
// The run always ends with a machine-readable line:
//
//	SUMMARY ops=... errors=... seconds=... ops_per_sec=... acked_inserts=... p50_us=... p95_us=... p99_us=... token_checks=... token_behind=... token_violations=...
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"extbuf/client"
	"extbuf/internal/stats"
	"extbuf/internal/workload"
	"extbuf/internal/xrand"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hashload: ")
	var (
		addr       = flag.String("addr", "", "server address (required)")
		conns      = flag.Int("conns", 4, "pooled TCP connections")
		workers    = flag.Int("workers", 16, "closed-loop worker goroutines")
		pipeline   = flag.Int("pipeline", 16, "client per-connection in-flight bound")
		batch      = flag.Int("batch", 256, "operations per request")
		duration   = flag.Duration("duration", 10*time.Second, "run length")
		lookupFrac = flag.Float64("lookupfrac", 0.5, "fraction of lookup batches")
		deleteFrac = flag.Float64("deletefrac", 0, "fraction of delete batches")
		dist       = flag.String("dist", "uniform", "lookup key distribution: uniform or zipf")
		zipfExp    = flag.Float64("zipfexp", 1.5, "zipf exponent (-dist zipf)")
		seed       = flag.Uint64("seed", 42, "workload seed")
		ackPath    = flag.String("acklog", "", "append acked mutations to this log")
		verifyPath = flag.String("verify", "", "verify an acked-write log against the server and exit")
		sumPath    = flag.String("summary", "", "write a JSON summary here")
		replica    = flag.String("replica", "", "read replica address: verify token reads there during the run")
		promote    = flag.Bool("promote", false, "promote the node at -addr to writable primary and exit")
		overlap    = flag.Int("overlap", 0, "contended mode: all workers upsert one shared keyspace of N keys")
		diffPath   = flag.String("diff", "", "wait for -addr and -replica to converge, diff the keys in this acklog, and exit")
		ycsb       = flag.String("ycsb", "", "run a YCSB-style workload (A, B, C, D, E or F) instead of the legacy mix")
		records    = flag.Int("records", 100000, "ycsb: records preloaded before the timed run")
		scanLen    = flag.Int("scanlen", 100, "ycsb: scan page size (workload E)")
		ttlFrac    = flag.Float64("ttlfrac", 0, "fraction of insert batches issued as UPSERTTTL with a far deadline")
		casFrac    = flag.Float64("casfrac", 0, "legacy mix: fraction of CAS batches swapping owned keys to fresh values")
	)
	flag.Parse()
	if *addr == "" {
		log.Fatal("-addr is required")
	}

	cl, err := client.Dial(*addr, client.Options{
		Conns:       *conns,
		Pipeline:    *pipeline,
		DialTimeout: 10 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	if *promote {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		info, err := cl.Promote(ctx)
		if err != nil {
			log.Fatalf("promote: %v", err)
		}
		fmt.Printf("PROMOTED role=%s writable=%v epoch=%d applied_lsn=%d\n",
			info.Role, info.Writable, info.Epoch, info.AppliedLSN)
		return
	}

	if *verifyPath != "" {
		if err := verify(cl, *verifyPath, *batch); err != nil {
			log.Fatal(err)
		}
		return
	}

	var rcl *client.Client
	if *replica != "" {
		rcl, err = client.Dial(*replica, client.Options{
			Conns:       *conns,
			Pipeline:    *pipeline,
			DialTimeout: 10 * time.Second,
		})
		if err != nil {
			log.Fatalf("replica: %v", err)
		}
		defer rcl.Close()
	}

	if *diffPath != "" {
		if rcl == nil {
			log.Fatal("-diff requires -replica")
		}
		if err := diffConverged(cl, rcl, *diffPath, *batch); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *ycsb != "" {
		runYCSB(cl, ycsbConfig{
			workload: strings.ToUpper(*ycsb),
			workers:  *workers,
			batch:    *batch,
			records:  *records,
			scanLen:  *scanLen,
			duration: *duration,
			zipfExp:  *zipfExp,
			seed:     *seed,
			ttlFrac:  *ttlFrac,
			sumPath:  *sumPath,
		})
		return
	}

	run(cl, rcl, runConfig{
		workers:    *workers,
		batch:      *batch,
		duration:   *duration,
		lookupFrac: *lookupFrac,
		deleteFrac: *deleteFrac,
		casFrac:    *casFrac,
		ttlFrac:    *ttlFrac,
		zipf:       *dist == "zipf",
		zipfExp:    *zipfExp,
		seed:       *seed,
		ackPath:    *ackPath,
		sumPath:    *sumPath,
		overlap:    *overlap,
	})
}

type runConfig struct {
	workers    int
	batch      int
	duration   time.Duration
	lookupFrac float64
	deleteFrac float64
	casFrac    float64 // fraction of CAS batches over owned keys
	ttlFrac    float64 // fraction of insert batches sent as UPSERTTTL
	zipf       bool
	zipfExp    float64
	seed       uint64
	ackPath    string
	sumPath    string
	overlap    int // shared contended keyspace size; 0 = disjoint spaces
}

// ackLog serializes mutation records from all workers into one
// buffered file. Lines: "i <key> <val>" for inserts — written only
// after the server acked the batch durable — and "d <key>" for
// deletes, written when the delete is ISSUED: an unacked delete may
// still have applied durably, so issue-time logging conservatively
// removes the key from the verified set instead of falsely claiming
// it live (see verify). Contended-mode upserts log "k <key>" after the
// ack: the key is durably present, but which worker's value won it is
// the server's call, so verification is presence-only.
type ackLog struct {
	mu sync.Mutex
	w  *bufio.Writer
	f  *os.File
}

func openAckLog(path string) (*ackLog, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &ackLog{w: bufio.NewWriterSize(f, 1<<20), f: f}, nil
}

func (a *ackLog) inserts(keys, vals []uint64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	for i := range keys {
		fmt.Fprintf(a.w, "i %d %d\n", keys[i], vals[i])
	}
	a.mu.Unlock()
}

func (a *ackLog) contended(keys []uint64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	for _, k := range keys {
		fmt.Fprintf(a.w, "k %d\n", k)
	}
	a.mu.Unlock()
}

func (a *ackLog) deletes(keys []uint64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	for _, k := range keys {
		fmt.Fprintf(a.w, "d %d\n", k)
	}
	a.mu.Unlock()
}

func (a *ackLog) close() error {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.w.Flush(); err != nil {
		return err
	}
	return a.f.Close()
}

// workerResult carries one worker's tallies back to the aggregator.
type workerResult struct {
	ops          int64
	errors       int64
	ackedInserts int64
	tokenChecks  int64           // token-carrying replica reads issued
	tokenBehind  int64           // replica answered BEHIND (allowed; client re-routes)
	tokenViols   int64           // replica read missed an acked, token-covered write
	lat          stats.Histogram // per-request latency, µs
	fatal        error           // connection-level failure that ended the worker
}

func run(cl, rcl *client.Client, cfg runConfig) {
	ack, err := openAckLog(cfg.ackPath)
	if err != nil {
		log.Fatalf("acklog: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.duration)
	defer cancel()

	results := make([]workerResult, cfg.workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = worker(ctx, cancel, cl, rcl, cfg, w, ack)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := ack.close(); err != nil {
		log.Fatalf("acklog: %v", err)
	}

	var total workerResult
	disconnected := false
	for i := range results {
		r := &results[i]
		total.ops += r.ops
		total.errors += r.errors
		total.ackedInserts += r.ackedInserts
		total.tokenChecks += r.tokenChecks
		total.tokenBehind += r.tokenBehind
		total.tokenViols += r.tokenViols
		for _, v := range r.lat.Values() {
			total.lat.AddN(v, r.lat.Count(v))
		}
		if r.fatal != nil {
			disconnected = true
		}
	}
	if disconnected {
		log.Printf("server connection lost mid-run (tolerated); acked log is authoritative")
	}

	secs := elapsed.Seconds()
	opsPerSec := float64(total.ops) / secs
	p50 := percentile(&total.lat, 0.50)
	p95 := percentile(&total.lat, 0.95)
	p99 := percentile(&total.lat, 0.99)

	fmt.Printf("ops            %d\n", total.ops)
	fmt.Printf("errors         %d\n", total.errors)
	fmt.Printf("wall seconds   %.3f\n", secs)
	fmt.Printf("throughput     %.0f ops/s\n", opsPerSec)
	fmt.Printf("acked inserts  %d\n", total.ackedInserts)
	fmt.Printf("request p50    %d µs\n", p50)
	fmt.Printf("request p95    %d µs\n", p95)
	fmt.Printf("request p99    %d µs\n", p99)
	if total.tokenChecks > 0 {
		fmt.Printf("token checks   %d (%d behind, %d violations)\n",
			total.tokenChecks, total.tokenBehind, total.tokenViols)
	}
	fmt.Printf("SUMMARY ops=%d errors=%d seconds=%.3f ops_per_sec=%.0f acked_inserts=%d p50_us=%d p95_us=%d p99_us=%d token_checks=%d token_behind=%d token_violations=%d\n",
		total.ops, total.errors, secs, opsPerSec, total.ackedInserts, p50, p95, p99,
		total.tokenChecks, total.tokenBehind, total.tokenViols)

	if cfg.sumPath != "" {
		js, _ := json.MarshalIndent(map[string]any{
			"ops":              total.ops,
			"errors":           total.errors,
			"seconds":          secs,
			"ops_per_sec":      opsPerSec,
			"acked_inserts":    total.ackedInserts,
			"p50_us":           p50,
			"p95_us":           p95,
			"p99_us":           p99,
			"disconnected":     disconnected,
			"token_checks":     total.tokenChecks,
			"token_behind":     total.tokenBehind,
			"token_violations": total.tokenViols,
		}, "", "  ")
		if err := os.WriteFile(cfg.sumPath, append(js, '\n'), 0o644); err != nil {
			log.Fatalf("summary: %v", err)
		}
	}
}

// worker runs one closed loop until the context expires or the
// connection dies. Worker w owns key space w<<40 | counter (mixed), so
// inserts are globally fresh without coordination.
func worker(ctx context.Context, cancel context.CancelFunc, cl, rcl *client.Client, cfg runConfig, w int, ack *ackLog) workerResult {
	if cfg.overlap > 0 {
		return overlapWorker(ctx, cancel, cl, rcl, cfg, w, ack)
	}
	var res workerResult
	rng := xrand.New(cfg.seed + uint64(w)*0x9e3779b97f4a7c15)
	zipf := workload.MakeRecencyZipf(cfg.zipfExp)
	var (
		history []uint64 // keys this worker has inserted (acked or in flight)
		counter uint64
		keys    = make([]uint64, 0, cfg.batch)
		vals    = make([]uint64, 0, cfg.batch)
		news    []uint64          // CAS replacement values
		valOf   map[uint64]uint64 // current value per owned key (CAS mode)
	)
	if cfg.casFrac > 0 {
		valOf = make(map[uint64]uint64)
	}
	nextKey := func() uint64 {
		counter++
		return xrand.Mix64(uint64(w)<<40 | counter)
	}
	pick := func() uint64 {
		if cfg.zipf {
			return history[len(history)-1-zipf.Rank(rng, len(history))]
		}
		return history[rng.Intn(len(history))]
	}
	for ctx.Err() == nil {
		keys = keys[:0]
		vals = vals[:0]
		r := rng.Float64()
		switch {
		case len(history) >= cfg.batch && r < cfg.lookupFrac:
			for i := 0; i < cfg.batch; i++ {
				keys = append(keys, pick())
			}
			t0 := time.Now()
			_, found, err := cl.LookupBatch(ctx, keys)
			if done := tally(&res, cancel, ctx, err, cfg.batch, t0); done {
				return res
			}
			if err == nil {
				for i, ok := range found {
					if !ok {
						// A key this worker inserted must be visible: the
						// engine guarantees read-your-writes through the
						// pipeline. Count it as an error, loudly.
						log.Printf("worker %d: lost key %d", w, keys[i])
						res.errors++
					}
				}
			}
		case len(history) >= 2*cfg.batch && r < cfg.lookupFrac+cfg.deleteFrac:
			for i := 0; i < cfg.batch; i++ {
				j := rng.Intn(len(history))
				keys = append(keys, history[j])
				history[j] = history[len(history)-1]
				history = history[:len(history)-1]
			}
			// Deletes are logged when ISSUED, not when acked: a delete can
			// apply and turn durable (riding another wave's group commit)
			// with its ack lost to the crash, and verifying such a key as
			// "acked live" would report false loss. Logging at issue time
			// only shrinks the verified set — never unsoundly grows it.
			ack.deletes(keys)
			if valOf != nil {
				for _, k := range keys {
					delete(valOf, k)
				}
			}
			t0 := time.Now()
			_, err := cl.DeleteBatch(ctx, keys)
			if done := tally(&res, cancel, ctx, err, cfg.batch, t0); done {
				return res
			}
		case len(history) >= 2*cfg.batch && r < cfg.lookupFrac+cfg.deleteFrac+cfg.casFrac:
			// CAS batch: swap distinct owned keys from their tracked value
			// to a fresh one. Like a delete, a CAS can apply durably with
			// its ack lost to a crash, so the key is demoted to a
			// presence-only claim ("k" line) at ISSUE time — the swap
			// leaves either value behind, but never loses the key.
			news = news[:0]
			for attempts := 0; len(keys) < cfg.batch && attempts < 4*cfg.batch; attempts++ {
				k := history[rng.Intn(len(history))]
				if old, ok := valOf[k]; ok {
					keys = append(keys, k)
					vals = append(vals, old)
					counter++
					news = append(news, uint64(w)<<40|counter|1<<62)
					delete(valOf, k) // reserve: no duplicate in this batch
				}
			}
			if len(keys) == 0 {
				continue
			}
			ack.contended(keys)
			t0 := time.Now()
			swapped, _, err := cl.CompareSwap(ctx, keys, vals, news)
			if done := tally(&res, cancel, ctx, err, len(keys), t0); done {
				return res
			}
			if err == nil {
				for i, ok := range swapped {
					if !ok {
						// Nothing else writes this worker's keys: a failed
						// swap means the key or its value went missing.
						log.Printf("worker %d: CAS lost key %d", w, keys[i])
						res.errors++
						continue
					}
					valOf[keys[i]] = news[i]
				}
			}
		default:
			for i := 0; i < cfg.batch; i++ {
				k := nextKey()
				keys = append(keys, k)
				vals = append(vals, k>>1)
			}
			t0 := time.Now()
			var tok client.ReadToken
			var err error
			if cfg.ttlFrac > 0 && rng.Float64() < cfg.ttlFrac {
				// UPSERTTTL with a far deadline: the acked value (and the
				// deadline record behind it) must survive a crash exactly
				// like a plain insert, and the key stays visible to verify.
				deadlines := make([]uint64, len(keys))
				far := client.DeadlineAfter(24 * time.Hour)
				for i := range deadlines {
					deadlines[i] = far
				}
				tok, err = cl.UpsertTTL(ctx, keys, vals, deadlines)
			} else {
				tok, err = cl.Insert(ctx, keys, vals)
			}
			if done := tally(&res, cancel, ctx, err, cfg.batch, t0); done {
				return res
			}
			if err == nil {
				res.ackedInserts += int64(len(keys))
				ack.inserts(keys, vals)
				history = append(history, keys...)
				if valOf != nil {
					for i := range keys {
						valOf[keys[i]] = vals[i]
					}
				}
				// Read-your-writes across replication: re-read a sample of
				// acked batches on the replica, carrying the batch's token.
				// The token obliges the replica to serve these exact writes
				// (or answer BEHIND); anything else is a violation.
				if rcl != nil && rng.Intn(4) == 0 {
					rcl = replicaCheck(ctx, rcl, &res, w, keys, vals, tok, false)
				}
			}
		}
	}
	return res
}

// overlapWorker is the contended-mode loop: every worker upserts into
// the same keyspace [1, cfg.overlap], Zipf-skewed toward low ranks with
// -dist zipf, so hot keys take concurrent writes from many connections
// — exactly the interleaving that used to permute the ship log against
// apply order. Values stay globally unique (worker|counter) so a
// convergence diff can tell WHICH write each node kept; the workers
// themselves make no value claims, only presence ones.
func overlapWorker(ctx context.Context, cancel context.CancelFunc, cl, rcl *client.Client, cfg runConfig, w int, ack *ackLog) workerResult {
	var res workerResult
	rng := xrand.New(cfg.seed + uint64(w)*0x9e3779b97f4a7c15)
	zipf := workload.MakeRecencyZipf(cfg.zipfExp)
	var (
		counter uint64
		keys    = make([]uint64, 0, cfg.batch)
		vals    = make([]uint64, 0, cfg.batch)
	)
	pick := func() uint64 {
		if cfg.zipf {
			return uint64(zipf.Rank(rng, cfg.overlap) + 1)
		}
		return uint64(rng.Intn(cfg.overlap) + 1)
	}
	for ctx.Err() == nil {
		keys = keys[:0]
		vals = vals[:0]
		for i := 0; i < cfg.batch; i++ {
			counter++
			keys = append(keys, pick())
			vals = append(vals, uint64(w)<<40|counter)
		}
		t0 := time.Now()
		tok, err := cl.Upsert(ctx, keys, vals)
		if done := tally(&res, cancel, ctx, err, cfg.batch, t0); done {
			return res
		}
		if err == nil {
			res.ackedInserts += int64(len(keys))
			ack.contended(keys)
			if rcl != nil && rng.Intn(4) == 0 {
				rcl = replicaCheck(ctx, rcl, &res, w, keys, vals, tok, true)
			}
		}
	}
	return res
}

// replicaCheck re-reads one acked insert batch on the replica with its
// token, tallying violations. It returns the replica client to keep
// using — nil after a connection-level failure (the replica died; the
// run against the primary continues, checks just stop). presenceOnly
// relaxes the value claim for contended keys: a concurrent writer may
// legitimately overwrite between this worker's ack and its re-read, so
// only a MISSING key violates the token there.
func replicaCheck(ctx context.Context, rcl *client.Client, res *workerResult, w int, keys, vals []uint64, tok client.ReadToken, presenceOnly bool) *client.Client {
	res.tokenChecks++
	got, found, err := rcl.Lookup(ctx, keys, tok)
	switch {
	case err == nil:
		for i := range keys {
			if !found[i] || (!presenceOnly && got[i] != vals[i]) {
				res.tokenViols++
				if res.tokenViols <= 10 {
					log.Printf("worker %d: TOKEN VIOLATION key %d on replica: (%d,%v), want (%d,true) at lsn %d",
						w, keys[i], got[i], found[i], vals[i], tok.LSN)
				}
			}
		}
	case client.IsBehind(err):
		res.tokenBehind++
	case ctx.Err() != nil:
		// Run over; not a replica problem.
	default:
		var se *client.ServerError
		if errors.As(err, &se) {
			res.tokenViols++
			log.Printf("worker %d: replica error for token read: %v", w, err)
		} else {
			log.Printf("worker %d: replica connection lost (checks stop): %v", w, err)
			return nil
		}
	}
	return rcl
}

// tally records one request's outcome and latency. It returns true when
// the worker should stop: the run deadline passed, or the connection
// died (which also cancels the whole run — a dead server ends the run
// for everyone, successfully, with the ack log intact).
func tally(res *workerResult, cancel context.CancelFunc, ctx context.Context, err error, ops int, t0 time.Time) bool {
	if err == nil {
		res.ops += int64(ops)
		res.lat.Add(int(time.Since(t0).Microseconds()))
		return false
	}
	if ctx.Err() != nil {
		return true // deadline, not a failure
	}
	var se *client.ServerError
	if errors.As(err, &se) {
		res.errors++
		return false // per-request server error; keep going
	}
	// Connection-level failure: the server is gone.
	res.errors++
	res.fatal = err
	cancel()
	return true
}

// percentile returns the q-quantile of the histogram's values.
func percentile(h *stats.Histogram, q float64) int {
	total := h.Total()
	if total == 0 {
		return 0
	}
	want := int64(q * float64(total))
	var seen int64
	vs := h.Values()
	sort.Ints(vs)
	for _, v := range vs {
		seen += h.Count(v)
		if seen > want {
			return v
		}
	}
	return vs[len(vs)-1]
}

// parseAckLog reads an acked-write log into the value-checked live set
// ("i" lines) and the presence-only contended set ("k" lines); "d"
// lines conservatively remove from both.
func parseAckLog(path string) (live map[uint64]uint64, present map[uint64]bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	live = make(map[uint64]uint64)
	present = make(map[uint64]bool)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		switch {
		case len(fields) == 3 && fields[0] == "i":
			k, err1 := strconv.ParseUint(fields[1], 10, 64)
			v, err2 := strconv.ParseUint(fields[2], 10, 64)
			if err1 != nil || err2 != nil {
				return nil, nil, fmt.Errorf("acklog line %d: %q", line, sc.Text())
			}
			live[k] = v
		case len(fields) == 2 && fields[0] == "k":
			k, err1 := strconv.ParseUint(fields[1], 10, 64)
			if err1 != nil {
				return nil, nil, fmt.Errorf("acklog line %d: %q", line, sc.Text())
			}
			present[k] = true
		case len(fields) == 2 && fields[0] == "d":
			k, err1 := strconv.ParseUint(fields[1], 10, 64)
			if err1 != nil {
				return nil, nil, fmt.Errorf("acklog line %d: %q", line, sc.Text())
			}
			delete(live, k)
			delete(present, k)
		default:
			return nil, nil, fmt.Errorf("acklog line %d: %q", line, sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return live, present, nil
}

// verify replays an acked-write log against the server: every key the
// log leaves live must be present — with its logged value for "i"
// records, any value for contended "k" records — and the server's Len
// must cover the log's live set. Exits nonzero via error on any
// acked-write loss.
func verify(cl *client.Client, path string, batch int) error {
	live, present, err := parseAckLog(path)
	if err != nil {
		return err
	}
	// A key both inserted and contended is checked presence-only.
	for k := range present {
		delete(live, k)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	keys := make([]uint64, 0, batch)
	wants := make([]uint64, 0, batch)
	var checked, missing, mismatched int
	flush := func(valCheck bool) error {
		if len(keys) == 0 {
			return nil
		}
		vals, found, err := cl.LookupBatch(ctx, keys)
		if err != nil {
			return err
		}
		for i := range keys {
			checked++
			switch {
			case !found[i]:
				missing++
				if missing <= 10 {
					log.Printf("MISSING acked key %d", keys[i])
				}
			case valCheck && vals[i] != wants[i]:
				mismatched++
				if mismatched <= 10 {
					log.Printf("MISMATCH key %d: got %d, want %d", keys[i], vals[i], wants[i])
				}
			}
		}
		keys = keys[:0]
		wants = wants[:0]
		return nil
	}
	for k, v := range live {
		keys = append(keys, k)
		wants = append(wants, v)
		if len(keys) == batch {
			if err := flush(true); err != nil {
				return err
			}
		}
	}
	if err := flush(true); err != nil {
		return err
	}
	for k := range present {
		keys = append(keys, k)
		wants = append(wants, 0)
		if len(keys) == batch {
			if err := flush(false); err != nil {
				return err
			}
		}
	}
	if err := flush(false); err != nil {
		return err
	}
	n, err := cl.Len(ctx)
	if err != nil {
		return err
	}
	liveSet := len(live) + len(present)
	fmt.Printf("verified %d acked writes: %d missing, %d mismatched; server Len=%d (acked live set %d)\n",
		checked, missing, mismatched, n, liveSet)
	if missing > 0 || mismatched > 0 {
		return fmt.Errorf("acked-write loss: %d missing, %d mismatched of %d", missing, mismatched, checked)
	}
	if n < liveSet {
		return fmt.Errorf("server Len %d below acked live set %d", n, liveSet)
	}
	fmt.Println("VERIFY OK")
	return nil
}

// diffConverged waits for the two nodes to report the same applied LSN
// — with no writers running, both horizons are static once the stream
// drains — then reads every key the acklog mentions on both and fails
// on any presence or value difference. This is the convergence gate for
// contended runs: token checks prove read-your-writes during the run,
// the diff proves the replica ended bit-identical on the contended set.
func diffConverged(cl, rcl *client.Client, path string, batch int) error {
	live, present, err := parseAckLog(path)
	if err != nil {
		return err
	}
	all := make([]uint64, 0, len(live)+len(present))
	for k := range live {
		all = append(all, k)
	}
	for k := range present {
		if _, dup := live[k]; !dup {
			all = append(all, k)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var aLSN, bLSN uint64
	for {
		a, err := cl.Info(ctx)
		if err != nil {
			return fmt.Errorf("primary info: %w", err)
		}
		b, err := rcl.Info(ctx)
		if err != nil {
			return fmt.Errorf("replica info: %w", err)
		}
		aLSN, bLSN = a.AppliedLSN, b.AppliedLSN
		if aLSN == bLSN {
			break
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("nodes never converged: applied %d vs %d", aLSN, bLSN)
		case <-time.After(50 * time.Millisecond):
		}
	}

	var checked, diffs int
	for base := 0; base < len(all); base += batch {
		end := base + batch
		if end > len(all) {
			end = len(all)
		}
		keys := all[base:end]
		av, af, err := cl.LookupBatch(ctx, keys)
		if err != nil {
			return fmt.Errorf("primary read: %w", err)
		}
		bv, bf, err := rcl.LookupBatch(ctx, keys)
		if err != nil {
			return fmt.Errorf("replica read: %w", err)
		}
		for i := range keys {
			checked++
			if af[i] != bf[i] || (af[i] && av[i] != bv[i]) {
				diffs++
				if diffs <= 10 {
					log.Printf("DIFF key %d: primary (%d,%v), replica (%d,%v)",
						keys[i], av[i], af[i], bv[i], bf[i])
				}
			}
		}
	}
	fmt.Printf("converged at lsn %d; diffed %d keys: %d differences\n", aLSN, checked, diffs)
	fmt.Printf("DIFFSUMMARY lsn=%d keys=%d diffs=%d\n", aLSN, checked, diffs)
	if diffs > 0 {
		return fmt.Errorf("replica divergence: %d of %d keys differ", diffs, checked)
	}
	fmt.Println("CONVERGED OK")
	return nil
}
