package main

// The YCSB-style suite: the standard workload mixes A-F expressed over
// this repository's batch protocol, with per-operation-kind latency
// histograms. Unlike the legacy mix (disjoint per-worker key spaces,
// fresh-key inserts), every worker here operates on ONE shared record
// space with a Zipf hot spot, which is what makes the mixes comparable
// across engines and runs:
//
//	A  update-heavy   50% read  / 50% update
//	B  read-mostly    95% read  /  5% update
//	C  read-only     100% read
//	D  read-latest    95% read (skewed to newest) / 5% insert
//	E  scan-heavy     95% cursor-page scan / 5% insert
//	F  read-modify    50% read  / 50% read-modify-write via CAS
//
// A preload phase upserts -records keys before timing starts. Requests
// are batches (-batch) of same-kind ops; latency is recorded per
// request into the kind's histogram, so the SUMMARY line carries
// read_p99_us, update_p99_us, insert_p99_us, scan_p99_us and rmw_p99_us
// next to the overall percentiles the soak gates key on.
//
// -ttlfrac T issues that fraction of update/insert batches as UPSERTTTL
// with a deadline far past the run, keeping the TTL path hot under load
// without expiring anything the checks rely on. Workload F's CAS
// failures (a racing writer moved the value between read and swap) are
// counted, not errored: contention is the point of F.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"extbuf/client"
	"extbuf/internal/stats"
	"extbuf/internal/workload"
	"extbuf/internal/xrand"
)

// ycsbOp indexes the per-kind latency histograms.
type ycsbOp int

const (
	ycsbRead ycsbOp = iota
	ycsbUpdate
	ycsbInsert
	ycsbScan
	ycsbRMW
	ycsbOps
)

var ycsbOpNames = [ycsbOps]string{"read", "update", "insert", "scan", "rmw"}

// ycsbMix is one workload's op distribution (fractions summing to 1).
type ycsbMix struct {
	read, update, insert, scan, rmw float64
	readLatest                      bool // skew reads to newest keys (D)
}

var ycsbMixes = map[string]ycsbMix{
	"A": {read: 0.5, update: 0.5},
	"B": {read: 0.95, update: 0.05},
	"C": {read: 1},
	"D": {read: 0.95, insert: 0.05, readLatest: true},
	"E": {scan: 0.95, insert: 0.05},
	"F": {read: 0.5, rmw: 0.5},
}

type ycsbConfig struct {
	workload string
	workers  int
	batch    int
	records  int
	scanLen  int
	duration time.Duration
	zipfExp  float64
	seed     uint64
	ttlFrac  float64
	sumPath  string
}

// ycsbResult is one worker's tallies.
type ycsbResult struct {
	ops       [ycsbOps]int64
	errors    int64
	casFailed int64 // F: swaps lost to a racing writer (expected, counted)
	lat       [ycsbOps]stats.Histogram
	fatal     error
}

// ycsbValue derives the value written for key k in update generation
// gen, so readers can sanity-check what they get without a shared map.
func ycsbValue(k, gen uint64) uint64 { return xrand.Mix64(k ^ gen<<1) }

func runYCSB(cl *client.Client, cfg ycsbConfig) {
	mix, ok := ycsbMixes[cfg.workload]
	if !ok {
		log.Fatalf("unknown YCSB workload %q (have A-F)", cfg.workload)
	}
	if cfg.records < cfg.batch {
		log.Fatalf("-records %d below -batch %d", cfg.records, cfg.batch)
	}

	// Preload [1, records] in parallel before the clock starts.
	preCtx, preCancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer preCancel()
	var (
		wg      sync.WaitGroup
		preErr  atomic.Value
		perWkr  = (cfg.records + cfg.workers - 1) / cfg.workers
		t0      = time.Now()
		nextKey atomic.Uint64 // D/E insert frontier
	)
	nextKey.Store(uint64(cfg.records))
	for w := 0; w < cfg.workers; w++ {
		lo, hi := w*perWkr+1, (w+1)*perWkr
		if hi > cfg.records {
			hi = cfg.records
		}
		if lo > hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			keys := make([]uint64, 0, cfg.batch)
			vals := make([]uint64, 0, cfg.batch)
			for k := lo; k <= hi; k++ {
				keys = append(keys, uint64(k))
				vals = append(vals, ycsbValue(uint64(k), 0))
				if len(keys) == cfg.batch || k == hi {
					if _, err := cl.Upsert(preCtx, keys, vals); err != nil {
						preErr.Store(err)
						return
					}
					keys, vals = keys[:0], vals[:0]
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	if err, _ := preErr.Load().(error); err != nil {
		log.Fatalf("preload: %v", err)
	}
	log.Printf("ycsb-%s: preloaded %d records in %v", cfg.workload, cfg.records, time.Since(t0).Round(time.Millisecond))

	ctx, cancel := context.WithTimeout(context.Background(), cfg.duration)
	defer cancel()
	results := make([]ycsbResult, cfg.workers)
	start := time.Now()
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = ycsbWorker(ctx, cancel, cl, cfg, mix, w, &nextKey)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total ycsbResult
	disconnected := false
	for i := range results {
		r := &results[i]
		for op := ycsbOp(0); op < ycsbOps; op++ {
			total.ops[op] += r.ops[op]
			for _, v := range r.lat[op].Values() {
				total.lat[op].AddN(v, r.lat[op].Count(v))
			}
		}
		total.errors += r.errors
		total.casFailed += r.casFailed
		if r.fatal != nil {
			disconnected = true
		}
	}
	if disconnected {
		log.Printf("server connection lost mid-run")
	}

	var all stats.Histogram
	var ops int64
	for op := ycsbOp(0); op < ycsbOps; op++ {
		ops += total.ops[op]
		for _, v := range total.lat[op].Values() {
			all.AddN(v, total.lat[op].Count(v))
		}
	}
	secs := elapsed.Seconds()
	opsPerSec := float64(ops) / secs

	fmt.Printf("workload       YCSB-%s (%d records, %d workers, batch %d)\n",
		cfg.workload, cfg.records, cfg.workers, cfg.batch)
	fmt.Printf("ops            %d\n", ops)
	fmt.Printf("errors         %d\n", total.errors)
	fmt.Printf("wall seconds   %.3f\n", secs)
	fmt.Printf("throughput     %.0f ops/s\n", opsPerSec)
	js := map[string]any{
		"workload":    cfg.workload,
		"ops":         ops,
		"errors":      total.errors,
		"cas_failed":  total.casFailed,
		"seconds":     secs,
		"ops_per_sec": opsPerSec,
		"p50_us":      percentile(&all, 0.50),
		"p95_us":      percentile(&all, 0.95),
		"p99_us":      percentile(&all, 0.99),
	}
	summary := fmt.Sprintf("SUMMARY workload=%s ops=%d errors=%d cas_failed=%d seconds=%.3f ops_per_sec=%.0f p50_us=%d p95_us=%d p99_us=%d",
		cfg.workload, ops, total.errors, total.casFailed, secs, opsPerSec,
		js["p50_us"], js["p95_us"], js["p99_us"])
	for op := ycsbOp(0); op < ycsbOps; op++ {
		if total.ops[op] == 0 {
			continue
		}
		name := ycsbOpNames[op]
		p50, p95, p99 := percentile(&total.lat[op], 0.50), percentile(&total.lat[op], 0.95), percentile(&total.lat[op], 0.99)
		fmt.Printf("%-7s %12d ops   p50 %6d µs   p95 %6d µs   p99 %6d µs\n",
			name, total.ops[op], p50, p95, p99)
		js[name+"_ops"] = total.ops[op]
		js[name+"_p50_us"], js[name+"_p95_us"], js[name+"_p99_us"] = p50, p95, p99
		summary += fmt.Sprintf(" %s_ops=%d %s_p50_us=%d %s_p95_us=%d %s_p99_us=%d",
			name, total.ops[op], name, p50, name, p95, name, p99)
	}
	fmt.Println(summary)

	if cfg.sumPath != "" {
		out, _ := json.MarshalIndent(js, "", "  ")
		if err := os.WriteFile(cfg.sumPath, append(out, '\n'), 0o644); err != nil {
			log.Fatalf("summary: %v", err)
		}
	}
	if disconnected || total.errors > 0 {
		os.Exit(1)
	}
}

// ycsbWorker runs one closed loop of the given mix until the deadline.
func ycsbWorker(ctx context.Context, cancel context.CancelFunc, cl *client.Client, cfg ycsbConfig, mix ycsbMix, w int, nextKey *atomic.Uint64) ycsbResult {
	var res ycsbResult
	rng := xrand.New(cfg.seed + uint64(w)*0x9e3779b97f4a7c15)
	zipf := workload.MakeRecencyZipf(cfg.zipfExp)
	var (
		keys   = make([]uint64, 0, cfg.batch)
		vals   = make([]uint64, 0, cfg.batch)
		deads  = make([]uint64, 0, cfg.batch)
		gen    uint64
		cursor uint64
	)
	// pick draws a key from [1, frontier]. Hot keys are the high end:
	// zipf rank 0 is the newest key, which for preloaded spaces is as
	// good a hot spot as any and for D is exactly "the latest".
	pick := func() uint64 {
		n := nextKey.Load()
		return n - uint64(zipf.Rank(rng, int(min(n, 1<<31))))
	}
	farDeadline := client.DeadlineAfter(cfg.duration + time.Hour)

	for ctx.Err() == nil {
		keys, vals, deads = keys[:0], vals[:0], deads[:0]
		r := rng.Float64()
		var op ycsbOp
		switch {
		case r < mix.read:
			op = ycsbRead
		case r < mix.read+mix.update:
			op = ycsbUpdate
		case r < mix.read+mix.update+mix.insert:
			op = ycsbInsert
		case r < mix.read+mix.update+mix.insert+mix.scan:
			op = ycsbScan
		default:
			op = ycsbRMW
		}
		switch op {
		case ycsbRead:
			for i := 0; i < cfg.batch; i++ {
				keys = append(keys, pick())
			}
			t0 := time.Now()
			_, found, err := cl.Lookup(ctx, keys, client.ReadToken{})
			if ycsbTally(&res, cancel, ctx, op, err, t0) {
				return res
			}
			if err == nil {
				for i, ok := range found {
					// Preloaded keys can never be missing (nothing deletes);
					// keys above the preload frontier may be in flight.
					if !ok && keys[i] <= uint64(cfg.records) {
						log.Printf("worker %d: lost preloaded key %d", w, keys[i])
						res.errors++
					}
				}
			}
		case ycsbUpdate, ycsbInsert:
			gen++
			for i := 0; i < cfg.batch; i++ {
				var k uint64
				if op == ycsbInsert {
					k = nextKey.Add(1)
				} else {
					k = pick()
				}
				keys = append(keys, k)
				vals = append(vals, ycsbValue(k, gen))
			}
			t0 := time.Now()
			var err error
			if cfg.ttlFrac > 0 && rng.Float64() < cfg.ttlFrac {
				for range keys {
					deads = append(deads, farDeadline)
				}
				_, err = cl.UpsertTTL(ctx, keys, vals, deads)
			} else {
				_, err = cl.Upsert(ctx, keys, vals)
			}
			if ycsbTally(&res, cancel, ctx, op, err, t0) {
				return res
			}
		case ycsbScan:
			t0 := time.Now()
			_, _, next, err := cl.Scan(ctx, cursor, cfg.scanLen)
			if ycsbTally(&res, cancel, ctx, op, err, t0) {
				return res
			}
			if err == nil {
				cursor = next
				if cursor == client.ScanDone {
					cursor = 0
				}
			}
		case ycsbRMW:
			// Dedupe within the batch: two swaps of one key in a single CAS
			// request would make the second fail by construction (the first
			// moved the value), drowning the real contention signal.
			seen := make(map[uint64]struct{}, cfg.batch)
			for i := 0; i < cfg.batch; i++ {
				if k := pick(); k != 0 {
					if _, dup := seen[k]; !dup {
						seen[k] = struct{}{}
						keys = append(keys, k)
					}
				}
			}
			// The YCSB-F unit is the whole read-modify-write: time both
			// round trips as one op. Lost swaps (a writer raced us between
			// read and CAS) are contention, not failure.
			t0 := time.Now()
			olds, found, err := cl.Lookup(ctx, keys, client.ReadToken{})
			if err == nil {
				gen++
				keys2 := keys[:0]
				news := vals[:0]
				oldv := deads[:0]
				for i := range keys {
					if !found[i] {
						continue // racing insert frontier; skip
					}
					keys2 = append(keys2, keys[i])
					oldv = append(oldv, olds[i])
					news = append(news, ycsbValue(keys[i], gen))
				}
				var swapped []bool
				swapped, _, err = cl.CompareSwap(ctx, keys2, oldv, news)
				if err == nil {
					for _, s := range swapped {
						if !s {
							res.casFailed++
						}
					}
				}
			}
			if ycsbTally(&res, cancel, ctx, op, err, t0) {
				return res
			}
		}
	}
	return res
}

// ycsbTally records one request's outcome; true means stop the worker.
func ycsbTally(res *ycsbResult, cancel context.CancelFunc, ctx context.Context, op ycsbOp, err error, t0 time.Time) bool {
	if err == nil {
		res.ops[op]++
		res.lat[op].Add(int(time.Since(t0).Microseconds()))
		return false
	}
	if ctx.Err() != nil {
		return true
	}
	var se *client.ServerError
	if errors.As(err, &se) {
		res.errors++
		return false
	}
	res.errors++
	res.fatal = err
	cancel()
	return true
}
