// Command hashserved serves an extbuf sharded engine over TCP with the
// repository's wire protocol (internal/wire), turning the library into
// a network key/value service.
//
// The engine configuration mirrors hashbench: structure, block size,
// memory budget, backend, shard count and flush policy. With
// -backend file and a named -path the store is durable — mutations are
// only acked to clients after a group-committed write-ahead-log fsync,
// and restarting the server on the same path recovers every
// acknowledged write.
//
// Shutdown: SIGTERM or SIGINT drains gracefully — stop accepting,
// answer everything already received, then run the checkpoint (engine
// Close), so a clean restart replays no log. kill -9 skips all of that
// and exercises recovery instead; acked writes survive either way.
//
// Usage:
//
//	hashserved -addr 127.0.0.1:4090 -structure buffered -shards 4
//	           [-backend mem|file|latency] [-path FILE] [-b 64] [-m 1024]
//	           [-cache 512] [-flush sync|async] [-maxbatch 4096]
//	           [-pipeline 64] [-addrfile FILE] [-drain 30s] [-leakcheck]
//	           [-repl] [-follow ADDR] [-syncfollowers N] [-synctimeout 5s]
//	           [-shipretain N] [-metrics HOST:PORT] [-sweep 1s] [-sweepmax N]
//
// -metrics serves Prometheus text-format counters over HTTP at
// /metrics on a side listener, never the data port. -sweep is the TTL
// sweeper interval: expired keys disappear from reads at their deadline
// regardless, the sweeper is what physically reclaims them (through the
// logged, replicated delete path; followers never sweep).
//
// -addrfile writes the bound address (useful with -addr :0) to a file
// once listening, for scripts. -leakcheck verifies at shutdown that no
// goroutines outlive the drain — the soak CI job runs with it under
// the race detector.
//
// Replication (-repl, implied by -follow or -syncfollowers): the node
// keeps a ship log next to -path and either sources it to followers
// (primary) or, with -follow, starts as a read-only replica streaming
// from that address. -syncfollowers N withholds mutation acks until N
// followers confirm applying them — the semi-synchronous commit that
// makes failover lossless for acked writes. A follower is promoted at
// runtime with the client's Promote call (hashload -promote).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"extbuf"
	"extbuf/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hashserved: ")
	var (
		addr      = flag.String("addr", "127.0.0.1:4090", "TCP listen address")
		addrFile  = flag.String("addrfile", "", "write the bound address to this file once listening")
		structure = flag.String("structure", "buffered", "structure to serve (see extbuf.Structures)")
		shards    = flag.Int("shards", 4, "shard worker count")
		b         = flag.Int("b", 64, "block size in items")
		mWords    = flag.Int64("m", 1024, "per-shard memory budget in words")
		backend   = flag.String("backend", "mem", "block store: mem, file or latency")
		path      = flag.String("path", "", "file backend: backing path (named path = durable)")
		cache     = flag.Int("cache", 0, "file backend: page-cache capacity in blocks (0 = default)")
		ioMode    = flag.String("iomode", "", "file backend: I/O mode (buffered, odirect or uring; default buffered, falls back where unsupported)")
		fpolicy   = flag.String("flush", extbuf.FlushSync, "engine flush policy (sync or async)")
		walPath   = flag.String("walpath", "", "durable mode: dedicated WAL device path (default: -path plus .wal)")
		wbWorkers = flag.Int("wbworkers", 0, "file backend: async writeback workers (0 = default, 1 = synchronous)")
		recovPar  = flag.Int("recoverypar", 0, "startup recovery parallelism across shards and WAL replay (0 = GOMAXPROCS)")
		expected  = flag.Int("expected", 1<<20, "expected items (pre-sizes fixed-capacity structures)")
		seed      = flag.Uint64("seed", 1, "hash seed")
		maxBatch  = flag.Int("maxbatch", server.DefaultMaxBatch, "max operations per request frame / aggregation")
		pipeline  = flag.Int("pipeline", server.DefaultPipeline, "per-connection in-flight request bound")
		drain     = flag.Duration("drain", 30*time.Second, "graceful drain budget at shutdown")
		leakCheck = flag.Bool("leakcheck", false, "fail shutdown if goroutines outlive the drain")
		quiet     = flag.Bool("quiet", false, "suppress per-connection diagnostics")
		repl      = flag.Bool("repl", false, "enable WAL-shipping replication (implied by -follow / -syncfollowers)")
		follow    = flag.String("follow", "", "start as a read-only follower replaying from this primary address")
		syncFoll  = flag.Int("syncfollowers", 0, "withhold mutation acks until this many followers confirm applying")
		syncTmo   = flag.Duration("synctimeout", 5*time.Second, "semi-sync: bound on the follower-ack wait")
		shipKeep  = flag.Int("shipretain", 0, "follower: truncate the ship log to its newest N records at each durability sync (0: keep all)")
		metrics   = flag.String("metrics", "", "serve Prometheus /metrics on this HTTP address (e.g. 127.0.0.1:9090)")
		sweep     = flag.Duration("sweep", time.Second, "TTL sweep interval (0: lazy expiry only, no space reclamation)")
		sweepMax  = flag.Int("sweepmax", server.DefaultSweepMax, "max expired keys reclaimed per sweep tick")
	)
	flag.Parse()
	if *follow != "" || *syncFoll > 0 {
		*repl = true
	}

	baseline := runtime.NumGoroutine()

	eng, err := extbuf.NewSharded(*structure, extbuf.Config{
		BlockSize:           *b,
		MemoryWords:         *mWords,
		ExpectedItems:       *expected,
		Seed:                *seed,
		Backend:             *backend,
		Path:                *path,
		WALPath:             *walPath,
		CacheBlocks:         *cache,
		IOMode:              *ioMode,
		FlushPolicy:         *fpolicy,
		WritebackWorkers:    *wbWorkers,
		RecoveryParallelism: *recovPar,
	}, *shards)
	if err != nil {
		log.Fatalf("open engine: %v", err)
	}
	log.Printf("engine: structure=%s shards=%d backend=%s path=%q recovered_len=%d",
		*structure, eng.NumShards(), *backend, *path, eng.Len())

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	scfg := server.Config{
		Engine:     eng,
		MaxBatch:   *maxBatch,
		Pipeline:   *pipeline,
		Logf:       logf,
		SweepEvery: *sweep,
		SweepMax:   *sweepMax,
	}
	if *repl {
		// The ship log and epoch state live next to the store; a mem
		// backend (no -path) keeps them in a scratch dir — replication
		// still works, it is just not crash-durable, like the engine.
		base := *path
		if base == "" {
			dir, err := os.MkdirTemp("", "hashserved-repl-")
			if err != nil {
				log.Fatalf("repl scratch dir: %v", err)
			}
			defer os.RemoveAll(dir)
			base = dir + "/node"
		}
		scfg.Repl = &server.ReplConfig{
			ShipPath:      base + ".ship",
			StatePath:     base + ".replstate",
			Follow:        *follow,
			SyncFollowers: *syncFoll,
			SyncTimeout:   *syncTmo,
			ShipRetain:    *shipKeep,
		}
	}
	srv, err := server.NewServer(scfg)
	if err != nil {
		log.Fatalf("server: %v", err)
	}
	if *repl {
		role := "primary"
		if *follow != "" {
			role = "follower of " + *follow
		}
		info, _ := srv.Info()
		log.Printf("replication: role=%s epoch=%d applied_lsn=%d syncfollowers=%d",
			role, info.Epoch, info.AppliedLSN, *syncFoll)
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen %s: %v", *addr, err)
	}
	log.Printf("listening on %s", lis.Addr())
	if *follow != "" {
		if _, err := srv.Follow(*follow); err != nil {
			log.Fatalf("follow %s: %v", *follow, err)
		}
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(lis.Addr().String()+"\n"), 0o644); err != nil {
			log.Fatalf("addrfile: %v", err)
		}
	}

	var msrv *http.Server
	if *metrics != "" {
		mlis, err := net.Listen("tcp", *metrics)
		if err != nil {
			log.Fatalf("metrics listen %s: %v", *metrics, err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", srv.MetricsHandler())
		msrv = &http.Server{Handler: mux}
		go msrv.Serve(mlis)
		log.Printf("metrics on http://%s/metrics", mlis.Addr())
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()

	select {
	case sig := <-sigCh:
		log.Printf("%v: draining (budget %v)", sig, *drain)
	case err := <-serveErr:
		log.Fatalf("serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if msrv != nil {
		msrv.Shutdown(ctx)
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if err := srv.CloseRepl(); err != nil {
		log.Printf("close repl: %v", err)
	}
	// The PR 3/4 checkpoint: Close flushes every shard's WAL and blocks,
	// commits superblocks and truncates the logs, so the next open
	// replays nothing.
	ckptStart := time.Now()
	if err := eng.Close(); err != nil {
		log.Fatalf("close engine: %v", err)
	}
	log.Printf("checkpointed in %v", time.Since(ckptStart).Round(time.Millisecond))

	if *leakCheck {
		if err := checkGoroutines(baseline); err != nil {
			log.Print(err)
			pprof.Lookup("goroutine").WriteTo(os.Stderr, 1)
			os.Exit(3)
		}
		log.Printf("leakcheck ok: %d goroutines", runtime.NumGoroutine())
	}
}

// checkGoroutines waits for the goroutine count to settle back to the
// pre-engine baseline (plus the signal handler's helper), reporting an
// error if anything the server or engine started outlives shutdown.
func checkGoroutines(baseline int) error {
	// signal.Notify keeps one helper goroutine alive; allow it.
	limit := baseline + 1
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= limit {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("leakcheck: %d goroutines alive, want <= %d", n, limit)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
