// Command paper regenerates every experiment table of the reproduction
// in one run — Figure 1, Theorems 1 and 2 (both forms), Lemma 5, the
// bin-ball lemmas, the zone audits, the Knuth baseline and the
// Jensen–Pagh point. This is the one-command counterpart of
// EXPERIMENTS.md.
//
// Usage:
//
//	paper [-scale f] [-seed s]
//
// -scale 0.25 runs a quarter-size workload for a fast smoke pass.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"extbuf/internal/experiments"
	"extbuf/internal/tablefmt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paper: ")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	seed := flag.Uint64("seed", 42, "master seed")
	trials := flag.Int("trials", 2000, "bin-ball Monte Carlo trials")
	flag.Parse()

	cfg := experiments.Default()
	cfg.Seed = *seed
	if *scale != 1.0 {
		cfg = cfg.Scaled(*scale)
	}

	type driver struct {
		id  string
		run func() (*tablefmt.Table, error)
	}
	drivers := []driver{
		{"F1", func() (*tablefmt.Table, error) { return experiments.Figure1(cfg) }},
		{"T1.1-T1.3", func() (*tablefmt.Table, error) { return experiments.Theorem1(cfg) }},
		{"T2.1", func() (*tablefmt.Table, error) { return experiments.Theorem2(cfg) }},
		{"T2.2", func() (*tablefmt.Table, error) { return experiments.Theorem2Eps(cfg) }},
		{"L5", func() (*tablefmt.Table, error) { return experiments.Lemma5(cfg) }},
		{"L3", func() (*tablefmt.Table, error) { return experiments.BinBallLemma3(cfg, *trials), nil }},
		{"L4", func() (*tablefmt.Table, error) { return experiments.BinBallLemma4(cfg, *trials), nil }},
		{"EQ1", func() (*tablefmt.Table, error) { return experiments.ZoneAudit(cfg) }},
		{"L2", func() (*tablefmt.Table, error) { return experiments.GoodFunctions(cfg, 100000) }},
		{"K64", func() (*tablefmt.Table, error) { return experiments.KnuthBaseline(cfg) }},
		{"JP", func() (*tablefmt.Table, error) { return experiments.JensenPagh(cfg) }},
		{"ABL", func() (*tablefmt.Table, error) { return experiments.Ablations(cfg) }},
		{"MISS", func() (*tablefmt.Table, error) { return experiments.Unsuccessful(cfg) }},
	}
	for _, d := range drivers {
		t, err := d.run()
		if err != nil {
			log.Fatalf("%s: %v", d.id, err)
		}
		fmt.Printf("[%s]\n", d.id)
		t.Render(os.Stdout)
		fmt.Println()
	}
}
