// Command zones runs the zone audits of §2 of the paper over every
// structure in the repository: the Eq. (1) check |S| <= m + delta*k
// (experiment EQ1 in DESIGN.md) and the Lemma 2 characteristic-vector
// goodness classification (experiment L2).
//
// Usage:
//
//	zones [-b 64] [-m 1024] [-n 50000] [-samples 100000] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"extbuf/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("zones: ")
	cfg := experiments.Default()
	samples := flag.Int("samples", 100000, "Monte Carlo samples for characteristic vectors")
	flag.IntVar(&cfg.B, "b", cfg.B, "block size in items")
	flag.Int64Var(&cfg.MWords, "m", cfg.MWords, "memory budget in words")
	flag.IntVar(&cfg.N, "n", cfg.N, "items to insert")
	flag.Uint64Var(&cfg.Seed, "seed", cfg.Seed, "seed")
	flag.Parse()

	audit, err := experiments.ZoneAudit(cfg)
	if err != nil {
		log.Fatal(err)
	}
	audit.Render(os.Stdout)
	fmt.Println()

	good, err := experiments.GoodFunctions(cfg, *samples)
	if err != nil {
		log.Fatal(err)
	}
	good.Render(os.Stdout)
}
