package extbuf_test

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"extbuf"
	"extbuf/internal/iomodel"
	"extbuf/internal/xrand"
)

// The crash-injection matrix exercises every fault point the durable
// backend exposes: for k = 1..N the simulated process dies at the k-th
// write syscall (optionally tearing that write), the table is reopened
// without faults, and recovery must restore a state equal to the
// workload after some prefix of the successfully applied operations —
// with everything acknowledged by the last successful Flush at the base
// of that prefix. That single invariant captures both halves of the
// contract: acknowledged operations survive (the prefix can never fall
// below the last Flush, whose checkpoint or synced WAL is durable), and
// no operation half-applies (a state between two operations matches no
// prefix and fails the search).

// crashKeySpace is the small key universe the scripted workload mutates.
const crashKeySpace = 48

// crashWorkloadResult captures a faulted run: the reference state after
// each applied operation since the last acknowledged Flush (index 0 is
// the acknowledged state itself), and whether the fault tripped.
type crashWorkloadResult struct {
	snapshots []map[uint64]uint64
	crashed   bool
}

func copyState(m map[uint64]uint64) map[uint64]uint64 {
	c := make(map[uint64]uint64, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// crashFarDeadline is a TTL deadline far past any test clock: expire
// records with it change no visible state, so they exercise only the
// OpExpire WAL framing and replay. crashPastDeadline (1ms after the
// epoch) is behind any real clock, so installing it hides the key from
// reads — observationally a delete.
const (
	crashFarDeadline  = ^uint64(0) >> 1
	crashPastDeadline = uint64(1)
)

// runCrashWorkload drives a deterministic scripted workload (upserts,
// deletes, TTL expires, atomic upsert+TTL, periodic Flush barriers)
// against a durable table with the given fault plan. Any error is
// interpreted as the injected crash; the table is still closed to
// release file handles (post-crash writes all fail, so closing cannot
// disturb the on-disk state).
//
// TTL operations extend the prefix invariant to the expiry sidecar:
// an expire op appends one wal.OpExpire record, so the crash point can
// fall between a key's value write and its deadline write. UpsertTTL
// (one upsert record then one expire record) therefore contributes TWO
// snapshots — the value-visible intermediate state is a legal recovery
// prefix.
func runCrashWorkload(t *testing.T, structure string, cfg extbuf.Config) crashWorkloadResult {
	t.Helper()
	res := crashWorkloadResult{}
	cur := map[uint64]uint64{}
	res.snapshots = []map[uint64]uint64{copyState(cur)} // acknowledged: empty
	tab, err := extbuf.OpenEngine(structure, cfg)
	if err != nil {
		res.crashed = true
		return res
	}
	defer tab.Close() // release handles; harmless post-crash (all writes fail)
	rng := xrand.New(9)
	found := make([]bool, 1)
	for i := 0; i < 240; i++ {
		if i > 0 && i%60 == 0 {
			if err := tab.Flush(); err != nil {
				res.crashed = true
				return res
			}
			res.snapshots = []map[uint64]uint64{copyState(cur)} // new acknowledged base
		}
		key := rng.Uint64() % crashKeySpace
		switch r := rng.Uint64() % 10; {
		case r < 6:
			val := uint64(i)<<16 | key
			if err := tab.Upsert(key, val); err != nil {
				res.crashed = true
				return res
			}
			cur[key] = val
		case r < 8:
			got := tab.Delete(key)
			_, present := cur[key]
			if !got && present {
				// A present key "missing": the log append was refused —
				// the crash point has been reached.
				res.crashed = true
				return res
			}
			delete(cur, key)
		case r == 8:
			// Expire: even rounds install a far deadline (pure OpExpire
			// framing, no visible change), odd rounds a past one (the
			// key disappears from reads — a delete to the model).
			deadline := crashFarDeadline
			if i%2 == 1 {
				deadline = crashPastDeadline
			}
			if err := tab.ExpireBatch([]uint64{key}, []uint64{deadline}, found); err != nil {
				res.crashed = true
				return res
			}
			_, present := cur[key]
			if !found[0] && present {
				res.crashed = true
				return res
			}
			if found[0] && deadline == crashPastDeadline {
				delete(cur, key)
			}
		default:
			// UpsertTTL writes an upsert record then an expire record;
			// snapshot both states so a crash between the two records
			// still lands on a legal prefix. Odd rounds use a past
			// deadline, making the intermediate state (value visible,
			// deadline not yet durable) genuinely distinct.
			val := uint64(i)<<16 | key | 1<<48
			deadline := crashFarDeadline
			if i%2 == 1 {
				deadline = crashPastDeadline
			}
			if _, err := tab.UpsertTTLBatchShip([]uint64{key}, []uint64{val}, []uint64{deadline}); err != nil {
				res.crashed = true
				return res
			}
			cur[key] = val
			res.snapshots = append(res.snapshots, copyState(cur))
			if deadline == crashPastDeadline {
				delete(cur, key)
			}
		}
		res.snapshots = append(res.snapshots, copyState(cur))
	}
	if err := tab.Close(); err != nil {
		res.crashed = true
	}
	return res
}

// verifyRecovered reopens the table fault-free and checks its state
// equals some snapshot (searching newest first), failing with the seed
// of divergence otherwise.
func verifyRecovered(t *testing.T, structure string, cfg extbuf.Config, label string, snapshots []map[uint64]uint64) {
	t.Helper()
	cfg.Crash = nil
	tab, err := extbuf.Open(structure, cfg)
	if err != nil {
		t.Fatalf("%s: reopen after crash: %v", label, err)
	}
	defer tab.Close()
	state := map[uint64]uint64{}
	for key := uint64(0); key < crashKeySpace; key++ {
		if v, ok := tab.Lookup(key); ok {
			state[key] = v
		}
	}
	for j := len(snapshots) - 1; j >= 0; j-- {
		snap := snapshots[j]
		if len(snap) != len(state) {
			continue
		}
		match := true
		for k, v := range snap {
			if sv, ok := state[k]; !ok || sv != v {
				match = false
				break
			}
		}
		if match {
			return
		}
	}
	t.Fatalf("%s: recovered state matches no operation prefix:\n state: %v\n acked: %v\n final: %v",
		label, state, snapshots[0], snapshots[len(snapshots)-1])
}

// TestCrashMatrix walks the crash point across every write syscall of
// the scripted workload for every structure, with and without torn
// writes, until a plan survives the whole run (the crash point lies
// beyond the workload's total writes).
func TestCrashMatrix(t *testing.T) {
	stride := int64(1)
	if testing.Short() {
		stride = 7
	}
	for _, structure := range extbuf.Structures() {
		for _, torn := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/torn=%v", structure, torn), func(t *testing.T) {
				completed := false
				for k := int64(1); k < 4000; k += stride {
					cfg := extbuf.Config{
						BlockSize: 16, MemoryWords: 512, ExpectedItems: 512, Seed: 5,
						Backend: "file", Path: filepath.Join(t.TempDir(), "crash.tbl"),
						CacheBlocks: 4, // small cache: evictions exercise copy-on-write mid-epoch
						Crash:       &extbuf.CrashPlan{FailAfterWrites: k, TornWrite: torn, Seed: 77},
					}
					if structure == "extendible" {
						cfg.MemoryWords = 1 << 16
					}
					res := runCrashWorkload(t, structure, cfg)
					verifyRecovered(t, structure, cfg,
						fmt.Sprintf("%s torn=%v k=%d", structure, torn, k), res.snapshots)
					if !res.crashed {
						completed = true
						break
					}
				}
				if !completed {
					t.Fatal("crash matrix never ran past the workload's total writes")
				}
			})
		}
	}
}

// TestCrashFailedSync: failing fsyncs must deny every acknowledgement
// (Flush and Close return the injected failure) while recovery still
// lands on a consistent operation prefix.
func TestCrashFailedSync(t *testing.T) {
	cfg := extbuf.Config{
		BlockSize: 16, MemoryWords: 512, ExpectedItems: 512, Seed: 5,
		Backend: "file", Path: filepath.Join(t.TempDir(), "sync.tbl"), CacheBlocks: 4,
		Crash: &extbuf.CrashPlan{FailSync: true},
	}
	tab, err := extbuf.Open("knuth", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cur := map[uint64]uint64{}
	snapshots := []map[uint64]uint64{copyState(cur)}
	for i := 0; i < 200; i++ {
		key := uint64(i) % crashKeySpace
		val := uint64(i + 1000)
		if err := tab.Upsert(key, val); err != nil {
			t.Fatalf("upsert %d: %v", i, err)
		}
		cur[key] = val
		snapshots = append(snapshots, copyState(cur))
		if i%50 == 49 {
			if err := tab.Flush(); !errors.Is(err, iomodel.ErrInjectedSyncFailure) {
				t.Fatalf("flush with failing fsync: err = %v, want ErrInjectedSyncFailure", err)
			}
		}
	}
	if err := tab.Close(); !errors.Is(err, iomodel.ErrInjectedSyncFailure) {
		t.Fatalf("close with failing fsync: err = %v, want ErrInjectedSyncFailure", err)
	}
	verifyRecovered(t, "knuth", cfg, "failed-sync", snapshots)
}

// TestCrashShardedAsyncRecovers is the acceptance scenario: a sharded
// engine under FlushAsync write-behind, crashed at an arbitrary write
// in each shard, reopened, and checked per key — every key holds its
// acknowledged value or the value of a later submitted operation on it,
// and keys never submitted stay absent.
func TestCrashShardedAsyncRecovers(t *testing.T) {
	for _, k := range []int64{3, 9, 17, 40, 90} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			cfg := extbuf.Config{
				BlockSize: 16, MemoryWords: 512, ExpectedItems: 2048, Seed: 11,
				Backend: "file", Path: filepath.Join(t.TempDir(), "shards"),
				CacheBlocks: 8, FlushPolicy: extbuf.FlushAsync,
				Crash: &extbuf.CrashPlan{FailAfterWrites: k, TornWrite: true, Seed: 13},
			}
			s, err := extbuf.NewSharded("knuth", cfg, 4)
			if err != nil {
				t.Fatal(err)
			}
			// Per key: the acknowledged value (post last successful Flush)
			// and every later-submitted candidate value.
			acked := map[uint64]uint64{}
			candidates := map[uint64]map[uint64]bool{}
			cur := map[uint64]uint64{}
			submit := func(key, val uint64) {
				if candidates[key] == nil {
					candidates[key] = map[uint64]bool{}
				}
				candidates[key][val] = true
				cur[key] = val
			}
			crashed := false
			for round := 0; round < 6 && !crashed; round++ {
				keys := make([]uint64, 0, 64)
				vals := make([]uint64, 0, 64)
				for i := 0; i < 64; i++ {
					key := uint64(round*64+i) % 160
					val := uint64(round)<<32 | key
					keys = append(keys, key)
					vals = append(vals, val)
				}
				if err := s.UpsertBatch(keys, vals); err != nil {
					crashed = true
					break
				}
				for i := range keys {
					submit(keys[i], vals[i])
				}
				if round%2 == 1 {
					if err := s.Flush(); err != nil {
						crashed = true
						break
					}
					acked = copyState(cur)
					candidates = map[uint64]map[uint64]bool{}
					for kk, vv := range cur {
						candidates[kk] = map[uint64]bool{vv: true}
					}
				}
			}
			if err := s.Close(); err != nil {
				crashed = true
			}
			if !crashed {
				t.Fatalf("k=%d never crashed; raise the workload size", k)
			}

			cfg.Crash = nil
			s, err = extbuf.NewSharded("knuth", cfg, 4)
			if err != nil {
				t.Fatalf("reopen after sharded crash: %v", err)
			}
			defer s.Close()
			for key := uint64(0); key < 160; key++ {
				v, ok := s.Lookup(key)
				av, acking := acked[key]
				switch {
				case acking && !ok:
					t.Fatalf("acknowledged key %d lost", key)
				case acking && ok && v != av && !candidates[key][v]:
					t.Fatalf("key %d = %d; not the acknowledged value %d nor any later submission", key, v, av)
				case !acking && ok && !candidates[key][v]:
					t.Fatalf("key %d = %d surfaced from nowhere", key, v)
				}
			}
		})
	}
}
