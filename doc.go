// Package extbuf is a from-scratch reproduction of Wei, Yi, Zhang,
// "Dynamic External Hashing: The Limit of Buffering" (SPAA 2009,
// arXiv:0811.3062) as a usable Go library.
//
// The paper settles how much a memory buffer can reduce the insertion
// cost of an external (disk-resident) hash table without hurting its
// near-one-I/O lookups: writing t_q = 1 + Theta(1/b^c) for the expected
// successful-lookup cost on blocks of b items,
//
//   - for c > 1, insertions must cost 1 - O(1/b^((c-1)/4)) I/Os — the
//     buffer is useless, the plain Knuth table is already optimal;
//   - at c = 1, insertions can reach any constant eps > 0 but no better;
//   - for c < 1, insertions can reach Theta(b^(c-1)) = o(1), achieved by
//     the paper's bootstrapped structure (Theorem 2).
//
// This module provides:
//
//   - the Theorem 2 buffered hash table (New) and the logarithmic-method
//     table of Lemma 5 (NewLogMethod), both with tunable parameters;
//   - the classical baselines: external chaining (NewKnuth), block
//     linear probing (NewLinearProbing), extendible hashing
//     (NewExtendible), linear hashing (NewLinear), and a Jensen–Pagh
//     style high-load two-level table (NewTwoLevel);
//   - a layered external memory model (internal/iomodel): a
//     cost-accounting Disk that counts block transfers exactly as the
//     paper does, including the write-back-after-read-is-free
//     convention, over pluggable BlockStore backends — the default
//     in-memory simulated store, a file-backed store with a real page
//     cache, and a latency-injecting store (Config.Backend selects);
//   - a durability subsystem for the file backend: naming Config.Path
//     adds a write-ahead log and checkpointed superblock beside the
//     block file, so Open on an existing path reopens the table —
//     contents, parameters and block topology intact — and Flush is a
//     crash-safe acknowledgement barrier; deterministic crash injection
//     (Config.Crash) makes recovery testable in-process (DESIGN.md §1b);
//   - a network serving layer: cmd/hashserved serves a Sharded engine
//     over TCP with a CRC-framed pipelined wire protocol
//     (internal/wire, internal/server), extbuf/client is the pooled
//     async client, and cmd/hashload the closed-loop load generator;
//     mutations are acked behind a group-committed WAL fsync (Sync),
//     so a kill -9 loses no acknowledged write (DESIGN.md §2);
//   - the paper's lower-bound machinery — zone audits, characteristic
//     vectors, bin-ball games — and an experiment harness regenerating
//     Figure 1 and every theorem/lemma table (cmd/figure1, cmd/zones,
//     cmd/binball, cmd/hashbench).
//
// All tables implement the Table interface and report their exact I/O
// counts through Stats. Keys and values are uint64 words, matching the
// paper's one-word atomic items. See README.md for a quickstart,
// DESIGN.md for the system inventory, and EXPERIMENTS.md for measured
// versus published results.
package extbuf
