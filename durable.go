package extbuf

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"extbuf/internal/ckpt"
	"extbuf/internal/expiry"
	"extbuf/internal/hashfn"
	"extbuf/internal/iomodel"
	"extbuf/internal/wal"
)

// This file implements the durability subsystem around the file
// backend: a versioned superblock + checkpoint beside the block file, a
// per-table write-ahead log, and the recovery path that makes
// extbuf.Open on an existing Config.Path reopen the table with its
// contents, structure parameters and block-chain topology intact.
//
// Protocol (DESIGN.md, "Durability & recovery"):
//
//   - Every mutation is appended to the WAL before the structure
//     absorbs it (buffered; not yet durable).
//   - Flush is the acknowledgement barrier: (1) spill the WAL and (2)
//     flush dirty blocks copy-on-write (coalesced into runs of adjacent
//     slots) — slots referenced by the previous checkpoint are never
//     overwritten (iomodel.FileStore durable mode) — then fsync both
//     files concurrently through the shared group committer: every
//     operation so far is now recoverable against the PREVIOUS
//     checkpoint; (3) write the new superblock+checkpoint to a temp
//     file, fsync, and atomically rename it over Path + ".ckpt"; (4)
//     commit the copy-on-write epoch and truncate the WAL.
//   - A crash strictly before (3)'s rename leaves the previous
//     checkpoint and a WAL holding every operation since it. A crash
//     after the rename leaves the new checkpoint, whose recorded LSN
//     makes any surviving WAL records no-ops. Recovery therefore always
//     sees one consistent checkpoint plus a CRC-validated log suffix.
//
// Superblock payload (framed by ckpt.Frame, version 4): structure name,
// construction parameters, shard layout, last-applied LSN, the block
// allocator + logical→physical placement state, the configured WAL
// path, the I/O mode with its layout sector size, the expiry deadline
// map (key → unix ms), and the structure's serialized directory state.
// Version 1 (no WAL path), version 2 (no I/O mode) and version 3 (no
// expiry map) files are still read; new checkpoints are written as
// version 4.

// superblockVersion is the on-disk checkpoint format version.
const superblockVersion = 4

// minSuperblockVersion is the oldest checkpoint format still readable.
const minSuperblockVersion = 1

// ckptSuffix and walSuffix name a durable table's sidecar files.
const (
	ckptSuffix = ".ckpt"
	walSuffix  = ".wal"
)

// superblock is the decoded head of a checkpoint file.
type superblock struct {
	structure     string
	blockSize     int
	memoryWords   int64
	beta          int
	gamma         int
	expectedItems int
	seed          uint64
	hashFamily    string
	shardCount    int
	shardIndex    int
	lastLSN       uint64
	nslots        int
	free          []iomodel.BlockID
	mapping       []int64
	walPath       string            // configured Config.WALPath ("" = beside the block file)
	ioMode        string            // configured Config.IOMode ("" = buffered, pre-v3 files)
	sector        int               // direct-layout slot alignment the block file was written with
	expiry        map[uint64]uint64 // key → expiry deadline (unix ms); nil on pre-v4 files
}

// durableTable layers write-ahead logging and checkpointing over a
// structure adapter running on a durable FileStore.
type durableTable struct {
	inner     tableAdapter
	store     *iomodel.FileStore
	log       *wal.Log
	cfg       Config // effective configuration (post-merge, post-defaults)
	structure string
	crasher   *iomodel.Crasher
	committer *wal.Committer // shared across shards by NewSharded
	enc       ckpt.Encoder   // reused checkpoint encode buffer
	exp       *expiry.Index  // shared with the guard; snapshotted into checkpoints
}

// openDurable creates or recovers the durable table at cfg.Path. The
// expiry index idx is filled during recovery (checkpoint snapshot +
// OpExpire replay) and snapshotted into every checkpoint; the guard
// that owns this table shares it.
func openDurable(structure string, cfg Config, idx *expiry.Index) (*durableTable, error) {
	var crasher *iomodel.Crasher
	if cfg.Crash != nil {
		crasher = iomodel.NewCrasher(iomodel.CrashPlan{
			FailAfterWrites: cfg.Crash.FailAfterWrites,
			TornWrite:       cfg.Crash.TornWrite,
			FailSync:        cfg.Crash.FailSync,
			Seed:            cfg.Crash.Seed,
		})
	}
	sb, stateDec, err := readSuperblock(cfg.Path + ckptSuffix)
	if err != nil {
		return nil, err
	}
	if sb != nil {
		if cfg, err = sb.mergeConfig(structure, cfg); err != nil {
			return nil, err
		}
	}
	cfg = cfg.withDefaults()
	if err := cfg.validateFor(structure); err != nil {
		return nil, err
	}
	ioOpt := iomodel.IOOptions{Mode: cfg.IOMode}
	if sb != nil {
		// Reopen with the stride the file was written with, not a fresh
		// probe: the layout must survive a move across filesystems.
		ioOpt.Sector = sb.sector
	}
	store, err := iomodel.OpenFileStoreIO(cfg.Path, cfg.BlockSize, cfg.CacheBlocks, crasher, ioOpt)
	if err != nil {
		return nil, err
	}
	// Asynchronous submission: the pwrite pool, or an io_uring ring under
	// IOMode "uring"; forced synchronous buffered under crash injection
	// (ConfigureSubmission refuses a crasher-wrapped store; the harness
	// counts write syscalls).
	store.ConfigureSubmission(cfg.IOMode, cfg.writebackWorkers())
	model := iomodel.NewModelOn(store, cfg.MemoryWords)
	fn := hashfn.Family(cfg.HashFamily, cfg.Seed)

	var inner tableAdapter
	var lastLSN uint64
	if sb != nil {
		if err := store.RestoreAllocState(sb.nslots, sb.free, sb.mapping); err != nil {
			model.Close()
			return nil, fmt.Errorf("extbuf: recover %s: %w", cfg.Path, err)
		}
		inner, err = restoreAdapter(structure, model, fn, stateDec)
		lastLSN = sb.lastLSN
		for k, dl := range sb.expiry {
			idx.Set(k, dl)
		}
	} else {
		inner, err = buildAdapter(structure, model, fn, cfg)
	}
	if err != nil {
		model.Close()
		return nil, err
	}

	log, records, err := wal.OpenIO(cfg.walPath(), crasher, lastLSN+1, iomodel.IOOptions{Mode: cfg.IOMode})
	if err != nil {
		inner.Close()
		return nil, err
	}
	if err := replayRecords(records, lastLSN, fn, inner, idx, cfg.RecoveryParallelism); err != nil {
		inner.Close()
		log.Close()
		return nil, err
	}
	committer := cfg.committer
	if committer == nil {
		committer = wal.NewCommitter(2)
	}
	return &durableTable{
		inner:     inner,
		store:     store,
		log:       log,
		cfg:       cfg,
		structure: structure,
		crasher:   crasher,
		committer: committer,
		exp:       idx,
	}, nil
}

// walPath resolves the write-ahead log file: Config.WALPath if set (a
// dedicated WAL device/path), otherwise beside the block file.
func (c Config) walPath() string {
	if c.WALPath != "" {
		return c.WALPath
	}
	return c.Path + walSuffix
}

// replayParallelThreshold is the record count below which replay stays
// serial: partitioning and sorting a handful of records costs more
// than it saves.
const replayParallelThreshold = 4096

// replayOp is one collapsed replay operation: the final state of a key
// in the log suffix, tagged with its hash for bucket-ordered apply. exp
// carries the key's final deadline (expSet) when an OpExpire record
// survived the collapse; expOnly marks a deadline change with no value
// write in the suffix (the value lives in the checkpointed structure).
type replayOp struct {
	key, val uint64
	hash     uint64
	exp      uint64
	del      bool
	expSet   bool
	expOnly  bool
}

// replayRecords applies the log suffix the checkpoint has not
// absorbed. Inserts replay as upserts: a record at or below the
// checkpoint LSN was truncated away, but re-applying a full suffix
// must stay idempotent when a crash landed between checkpoint commit
// and log truncation.
//
// Large suffixes run through a parallel pipeline: records are
// partitioned by hash prefix into par groups, each group is collapsed
// to one operation per key (last write wins — per-key sequences of
// sets and deletes depend only on the final one) and sorted by hash
// concurrently, and the groups are then applied in hash order. The
// CPU work (hashing, dedup, sort) saturates cores, and the hash-
// ordered apply walks the structure's buckets sequentially instead of
// faulting the pool randomly, so the replayed I/O coalesces. Applying
// the collapsed suffix is content-equivalent to applying the full one;
// only the physical block layout may differ.
func replayRecords(records []wal.Record, lastLSN uint64, fn hashfn.Fn, inner tableAdapter, idx *expiry.Index, par int) error {
	// Drop the prefix the checkpoint already absorbed.
	live := records
	for len(live) > 0 && live[0].LSN <= lastLSN {
		live = live[1:]
	}
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if len(live) < replayParallelThreshold || par <= 1 {
		for _, r := range live {
			switch r.Op {
			case wal.OpInsert, wal.OpUpsert:
				if err := inner.Upsert(r.Key, r.Val); err != nil {
					return fmt.Errorf("extbuf: replay lsn %d: %w", r.LSN, err)
				}
				idx.Clear(r.Key) // a plain write makes the key persistent
			case wal.OpDelete:
				inner.Delete(r.Key)
				idx.Clear(r.Key)
			case wal.OpExpire:
				idx.Set(r.Key, r.Val) // value field carries the deadline
			}
		}
		return nil
	}
	// Partition count: power of two <= par, so a hash-prefix shift
	// assigns each key a group and groups cover disjoint bucket ranges.
	shift := uint(64)
	groups := 1
	for groups*2 <= par && groups < 64 {
		groups *= 2
		shift--
	}
	parts := make([][]wal.Record, groups)
	for _, r := range live {
		g := fn.Hash(r.Key) >> shift
		parts[g] = append(parts[g], r)
	}
	collapsed := make([][]replayOp, groups)
	var wg sync.WaitGroup
	for g := range parts {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			part := parts[g]
			seenAt := make(map[uint64]int, len(part))
			ops := make([]replayOp, 0, len(part))
			for _, r := range part {
				if r.Op == wal.OpExpire {
					// A deadline rides on whatever state the key has so
					// far; with no prior record in the suffix, only the
					// index changes (the value is checkpointed).
					if i, seen := seenAt[r.Key]; seen {
						ops[i].exp = r.Val
						ops[i].expSet = true
						continue
					}
					op := replayOp{key: r.Key, exp: r.Val, expSet: true, expOnly: true, hash: fn.Hash(r.Key)}
					seenAt[r.Key] = len(ops)
					ops = append(ops, op)
					continue
				}
				// A value write or delete supersedes everything before it,
				// deadline included (plain writes clear TTL).
				op := replayOp{key: r.Key, val: r.Val, del: r.Op == wal.OpDelete}
				if i, seen := seenAt[r.Key]; seen {
					op.hash = ops[i].hash
					ops[i] = op
					continue
				}
				op.hash = fn.Hash(r.Key)
				seenAt[r.Key] = len(ops)
				ops = append(ops, op)
			}
			sort.Slice(ops, func(i, j int) bool { return ops[i].hash < ops[j].hash })
			collapsed[g] = ops
		}(g)
	}
	wg.Wait()
	for _, ops := range collapsed {
		for _, op := range ops {
			if !op.del && !op.expOnly {
				if err := inner.Upsert(op.key, op.val); err != nil {
					return fmt.Errorf("extbuf: replay key %d: %w", op.key, err)
				}
			}
			if op.del {
				inner.Delete(op.key)
			}
			// The deadline mirrors the serial order exactly: an expire
			// after the final write/delete sets it, anything else clears
			// it (a plain write makes the key persistent).
			switch {
			case op.expSet:
				idx.Set(op.key, op.exp)
			case !op.expOnly:
				idx.Clear(op.key)
			}
		}
	}
	return nil
}

// readSuperblock loads and validates the checkpoint at path. A missing
// file means a fresh table (nil superblock, nil error); a present but
// invalid file is an error — silently rebuilding an empty table over
// data that exists but fails validation would be data loss.
func readSuperblock(path string) (*superblock, *ckpt.Decoder, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("extbuf: read superblock: %w", err)
	}
	version, payload, err := ckpt.Unframe(data)
	if err != nil {
		return nil, nil, fmt.Errorf("extbuf: superblock %s: %w", path, err)
	}
	if version < minSuperblockVersion || version > superblockVersion {
		return nil, nil, fmt.Errorf("extbuf: superblock %s: unsupported version %d", path, version)
	}
	d := ckpt.NewDecoder(payload)
	sb := &superblock{
		structure:     d.String(),
		blockSize:     d.Int(),
		memoryWords:   d.I64(),
		beta:          d.Int(),
		gamma:         d.Int(),
		expectedItems: d.Int(),
		seed:          d.U64(),
		hashFamily:    d.String(),
		shardCount:    d.Int(),
		shardIndex:    d.Int(),
		lastLSN:       d.U64(),
		nslots:        d.Int(),
	}
	sb.free = d.BlockIDs()
	sb.mapping = d.I64s()
	if version >= 2 {
		sb.walPath = d.String()
	}
	if version >= 3 {
		sb.ioMode = d.String()
		sb.sector = d.Int()
	}
	if version >= 4 {
		sb.expiry = d.PairMap()
	}
	if err := d.Err(); err != nil {
		return nil, nil, fmt.Errorf("extbuf: superblock %s: %w", path, err)
	}
	// The remainder of the payload is the structure state; hand the
	// decoder over positioned at it.
	return sb, d, nil
}

// mergeConfig reconciles a reopen request against the stored
// parameters: the structure must match, zero-valued request fields
// adopt the stored values, and explicitly set fields must agree —
// reopening a table under a different hash seed or block size would
// silently scramble it.
func (sb *superblock) mergeConfig(structure string, cfg Config) (Config, error) {
	mismatch := func(field string, stored, requested any) error {
		return fmt.Errorf("%w: %s: stored %v, requested %v (path %s)",
			ErrSuperblockMismatch, field, stored, requested, cfg.Path)
	}
	if sb.structure != structure {
		return cfg, mismatch("structure", sb.structure, structure)
	}
	if sb.shardCount != cfg.shardCount || sb.shardIndex != cfg.shardIndex {
		return cfg, mismatch("shard layout",
			fmt.Sprintf("%d/%d", sb.shardIndex, sb.shardCount),
			fmt.Sprintf("%d/%d", cfg.shardIndex, cfg.shardCount))
	}
	merge := func(field string, stored int, req *int) error {
		if *req == 0 {
			*req = stored
			return nil
		}
		if *req != stored {
			return mismatch(field, stored, *req)
		}
		return nil
	}
	if err := merge("BlockSize", sb.blockSize, &cfg.BlockSize); err != nil {
		return cfg, err
	}
	if err := merge("Beta", sb.beta, &cfg.Beta); err != nil {
		return cfg, err
	}
	if err := merge("Gamma", sb.gamma, &cfg.Gamma); err != nil {
		return cfg, err
	}
	if err := merge("ExpectedItems", sb.expectedItems, &cfg.ExpectedItems); err != nil {
		return cfg, err
	}
	switch cfg.MemoryWords {
	case 0, sb.memoryWords:
		cfg.MemoryWords = sb.memoryWords
	default:
		return cfg, mismatch("MemoryWords", sb.memoryWords, cfg.MemoryWords)
	}
	switch cfg.Seed {
	case 0, sb.seed:
		cfg.Seed = sb.seed
	default:
		return cfg, mismatch("Seed", sb.seed, cfg.Seed)
	}
	switch cfg.HashFamily {
	case "", sb.hashFamily:
		cfg.HashFamily = sb.hashFamily
	default:
		return cfg, mismatch("HashFamily", sb.hashFamily, cfg.HashFamily)
	}
	// Reopening without a WALPath adopts the stored one — otherwise the
	// table would silently recover against a fresh empty log beside the
	// block file, losing the real log's tail on the other device.
	switch cfg.WALPath {
	case "", sb.walPath:
		cfg.WALPath = sb.walPath
	default:
		return cfg, mismatch("WALPath", sb.walPath, cfg.WALPath)
	}
	// The I/O mode fixes the block file's slot layout. An empty request
	// adopts the stored mode; the two direct modes share one layout, so
	// either may reopen the other's files (the syscall path changes, the
	// stride does not); a buffered/direct conflict would misread every
	// slot and is rejected.
	stored := sb.ioMode
	if stored == "" {
		stored = iomodel.IOModeBuffered
	}
	switch {
	case cfg.IOMode == "" || cfg.IOMode == stored:
		cfg.IOMode = stored
	case iomodel.DirectLayout(cfg.IOMode) && iomodel.DirectLayout(stored):
		// odirect <-> uring: layout-compatible override.
	default:
		return cfg, mismatch("IOMode", stored, cfg.IOMode)
	}
	return cfg, nil
}

// Insert logs the operation, then applies it (write-ahead discipline).
// A failed apply retracts the record: an operation the caller was told
// failed must not resurface through replay.
func (d *durableTable) Insert(key, val uint64) error {
	if _, err := d.log.Append(wal.OpInsert, key, val); err != nil {
		return err
	}
	if err := d.inner.Insert(key, val); err != nil {
		d.log.Rollback()
		return err
	}
	return nil
}

// Upsert logs the operation, then applies it, retracting the record if
// the apply fails.
func (d *durableTable) Upsert(key, val uint64) error {
	if _, err := d.log.Append(wal.OpUpsert, key, val); err != nil {
		return err
	}
	if err := d.inner.Upsert(key, val); err != nil {
		d.log.Rollback()
		return err
	}
	return nil
}

// Delete logs the operation, then applies it. A failed log append (the
// store has crashed) suppresses the delete and reports a miss; the
// failure surfaces at the next Flush or Close barrier.
func (d *durableTable) Delete(key uint64) bool {
	if _, err := d.log.Append(wal.OpDelete, key, 0); err != nil {
		return false
	}
	return d.inner.Delete(key)
}

// logExpire appends a wal.OpExpire record (value field = deadline) so
// recovery re-learns the deadline; the caller then updates the shared
// expiry index. The structure itself is untouched — a deadline is
// sidecar state, not a value write.
func (d *durableTable) logExpire(key, deadline uint64) error {
	_, err := d.log.Append(wal.OpExpire, key, deadline)
	return err
}

func (d *durableTable) Lookup(key uint64) (uint64, bool) { return d.inner.Lookup(key) }
func (d *durableTable) Len() int                         { return d.inner.Len() }
func (d *durableTable) Stats() Stats                     { return d.inner.Stats() }
func (d *durableTable) MemoryUsed() int64                { return d.inner.MemoryUsed() }

func (d *durableTable) scanBuckets() int { return d.inner.scanBuckets() }
func (d *durableTable) scanBucket(i int, buf []iomodel.Entry) ([]iomodel.Entry, int) {
	return d.inner.scanBucket(i, buf)
}

// StoreStats reports the block file's pool/syscall counters plus the
// write-ahead log's spill and fsync counts.
func (d *durableTable) StoreStats() StoreStats {
	st := fromFileStats(d.store.Stats())
	st.WALSpills = d.log.Spills()
	st.WALFsyncs = d.log.Fsyncs()
	st.WALFsyncsElided = d.log.FsyncsElided()
	return st
}

// Sync is the acknowledgement barrier: spill and fsync the write-ahead
// log, making every logged operation recoverable against the last
// checkpoint. Unlike Flush it writes no blocks and commits no
// checkpoint — one buffered write plus one fsync, the group-commit unit
// the serving layer acks client writes behind.
func (d *durableTable) Sync() error { return d.log.Sync() }

// Flush is the durability barrier: it commits a checkpoint, after which
// every previously submitted operation survives any crash.
func (d *durableTable) Flush() error { return d.checkpoint() }

// Close checkpoints and releases the table. The checkpoint error (a
// crashed store, a failed sync) is reported but does not prevent the
// resource teardown.
func (d *durableTable) Close() error {
	errs := []error{d.checkpoint()}
	errs = append(errs, d.inner.Close()) // closes the model and block store
	errs = append(errs, d.log.Close())
	return errors.Join(errs...)
}

// checkpoint runs the four-step commit protocol described at the top of
// the file. The writes of steps (1) and (2) are issued first — in a
// deterministic order, so crash injection can replay a failure — and
// their fsyncs then run concurrently through the shared group
// committer: neither file's durability depends on the other's (copy-on-
// write keeps block flushes away from checkpointed slots whenever they
// land), only step (3) requires both.
func (d *durableTable) checkpoint() error {
	// (1) Spill the log; (2) flush dirty blocks copy-on-write, coalesced
	// into runs of adjacent slots. The previous checkpoint's slots stay
	// intact either way.
	if err := d.log.Spill(); err != nil {
		return err
	}
	if err := d.store.FlushDirty(); err != nil {
		return err
	}
	// Group commit: both files reach durability together. After this,
	// every operation so far is recoverable against the PREVIOUS
	// checkpoint.
	if err := d.committer.Commit(d.log.Fsync, d.store.Fsync); err != nil {
		return err
	}
	// (3) Commit the new superblock atomically.
	nextLSN := d.log.NextLSN()
	e := &d.enc
	e.Reset()
	e.String(d.structure)
	e.Int(d.cfg.BlockSize)
	e.I64(d.cfg.MemoryWords)
	e.Int(d.cfg.Beta)
	e.Int(d.cfg.Gamma)
	e.Int(d.cfg.ExpectedItems)
	e.U64(d.cfg.Seed)
	e.String(d.cfg.HashFamily)
	e.Int(d.cfg.shardCount)
	e.Int(d.cfg.shardIndex)
	e.U64(nextLSN - 1)
	nslots, free, mapping := d.store.AllocState()
	e.Int(nslots)
	e.BlockIDs(free)
	e.I64s(mapping)
	e.String(d.cfg.WALPath)
	e.String(d.cfg.IOMode)
	e.Int(d.store.SectorSize())
	expMap := make(map[uint64]uint64, d.exp.Len())
	d.exp.Range(func(k, dl uint64) { expMap[k] = dl })
	e.PairMap(expMap)
	d.inner.saveState(e)
	if err := writeFileAtomic(d.cfg.Path+ckptSuffix, ckpt.Frame(superblockVersion, e.Bytes()), d.crasher); err != nil {
		return err
	}
	// (4) The checkpoint is durable: retire the superseded block slots
	// and the logged operations it absorbed.
	d.store.EndEpoch()
	return d.log.Reset(nextLSN)
}

// writeFileAtomic writes data to path via a temp file, fsync and
// rename, so path always holds either the old or the new content. A
// non-nil crasher injects faults into the writes, modeling a crash
// mid-checkpoint (the rename never runs; the old file survives). On any
// failure before the rename the temp file is removed: a table whose
// Flush failed must still release every resource it acquired when the
// caller moves on to Close (a lingering ".ckpt.tmp" would otherwise
// survive the table and shadow disk space until the next checkpoint).
func writeFileAtomic(path string, data []byte, crasher *iomodel.Crasher) error {
	tmpPath := path + ".tmp"
	f, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("extbuf: checkpoint temp: %w", err)
	}
	var bf iomodel.BlockFile = f
	if crasher != nil {
		bf = crasher.WrapFile(bf)
	}
	if _, err := bf.Write(data); err != nil {
		bf.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("extbuf: checkpoint write: %w", err)
	}
	if err := bf.Sync(); err != nil {
		bf.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("extbuf: checkpoint sync: %w", err)
	}
	if err := bf.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("extbuf: checkpoint close: %w", err)
	}
	if err := os.Rename(tmpPath, path); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("extbuf: checkpoint rename: %w", err)
	}
	// Make the rename itself durable (best-effort: some platforms
	// reject directory fsync).
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}
