package extbuf_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"extbuf"
)

// openFDs counts this process's open file descriptors via /proc (Linux;
// skipped elsewhere). It is how the close-after-failed-flush regression
// tests assert that file handles are actually released, not just that
// Close returned.
func openFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("no /proc fd accounting on this platform: %v", err)
	}
	return len(ents)
}

// listLeftovers returns the names of stray checkpoint temp files in dir.
func listLeftovers(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var bad []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			bad = append(bad, e.Name())
		}
	}
	return bad
}

// TestCloseAfterFailedFlushReleasesResources is the regression test for
// the durable error path: a table whose Flush failed (injected fsync
// failure) must still release every file descriptor and leave no
// checkpoint temp file behind when closed, and the path must be
// reopenable afterwards.
func TestCloseAfterFailedFlushReleasesResources(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "table")
	base := openFDs(t)

	tab, err := extbuf.Open("knuth", extbuf.Config{
		Backend: "file",
		Path:    path,
		Crash:   &extbuf.CrashPlan{FailSync: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 100; i++ {
		if err := tab.Insert(i, i*2); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := tab.Flush(); err == nil {
		t.Fatal("Flush succeeded despite failing fsyncs")
	}
	if err := tab.Close(); err == nil {
		t.Fatal("Close reported nil after a failed checkpoint")
	}
	if got := openFDs(t); got != base {
		t.Fatalf("open fds after failed-flush Close: %d, want %d (descriptors leaked)", got, base)
	}
	if bad := listLeftovers(t, dir); len(bad) > 0 {
		t.Fatalf("stray checkpoint temp files after Close: %v", bad)
	}

	// The path must not be wedged: a clean reopen recovers the WAL
	// suffix (the spill writes themselves succeeded; only fsyncs were
	// failed, and this process never crashed).
	re, err := extbuf.Open("knuth", extbuf.Config{Backend: "file", Path: path})
	if err != nil {
		t.Fatalf("reopen after failed-flush close: %v", err)
	}
	defer re.Close()
	if n := re.Len(); n != 100 {
		t.Fatalf("reopened Len = %d, want 100", n)
	}
	if v, ok := re.Lookup(50); !ok || v != 100 {
		t.Fatalf("reopened Lookup(50) = (%d,%v), want (100,true)", v, ok)
	}
}

// TestCheckpointTempCleanedOnCrash walks the crash point across every
// write syscall of a build-flush-close run and asserts that no
// ".ckpt.tmp" file survives the failed table — including crashes landing
// inside the checkpoint temp write itself — and that descriptors are
// released each time.
func TestCheckpointTempCleanedOnCrash(t *testing.T) {
	base := openFDs(t)
	for k := int64(1); k <= 80; k++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "t")
		tab, err := extbuf.Open("knuth", extbuf.Config{
			Backend: "file",
			Path:    path,
			Crash:   &extbuf.CrashPlan{FailAfterWrites: k, Seed: uint64(k)},
		})
		if err == nil {
			for i := uint64(1); i <= 200; i++ {
				tab.Insert(i, i) // errors expected once the crash point hits
			}
			tab.Flush() // may fail; that is the point
			tab.Close() // must release resources regardless
		}
		// err != nil: the crash landed inside open itself, whose error
		// paths must release everything too.
		if bad := listLeftovers(t, dir); len(bad) > 0 {
			t.Fatalf("k=%d: stray temp files: %v", k, bad)
		}
		if got := openFDs(t); got != base {
			t.Fatalf("k=%d: open fds %d, want %d", k, got, base)
		}
	}
}
