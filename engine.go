package extbuf

import "extbuf/internal/wal"

// Engine is the full serving surface of a table: the single-key Table
// operations plus the order-preserving batch operations and the
// Durable capability probe. Both Sharded (worker-per-shard pipeline)
// and every table returned by Open/New* (via the close guard) satisfy
// it, so layers that used to special-case the two — the network server,
// the replication follower apply loop, load generators — program
// against one interface and work with either.
//
// Batch semantics are those Sharded established: positions i of keys,
// vals and found correspond; InsertBatch and UpsertBatch require
// len(keys) == len(vals) (ErrBatchLength otherwise); the *Into variants
// write results into caller-provided slices of exactly len(keys) and
// allocate nothing. A batch is not atomic — on error a prefix of it may
// have applied — but per-key ordering is preserved between batches.
type Engine interface {
	Table

	// InsertBatch inserts each (keys[i], vals[i]) pair in order.
	InsertBatch(keys, vals []uint64) error
	// UpsertBatch upserts each (keys[i], vals[i]) pair in order.
	UpsertBatch(keys, vals []uint64) error
	// LookupBatch looks up every key, allocating the result slices.
	LookupBatch(keys []uint64) (vals []uint64, found []bool, err error)
	// LookupBatchInto looks up every key into caller-provided slices
	// (len(vals) == len(found) == len(keys)); it allocates nothing.
	LookupBatchInto(keys, vals []uint64, found []bool) error
	// DeleteBatch deletes every key, allocating the found slice.
	DeleteBatch(keys []uint64) ([]bool, error)
	// DeleteBatchInto deletes every key into a caller-provided found
	// slice of len(keys); it allocates nothing.
	DeleteBatchInto(keys []uint64, found []bool) error
	// Durable reports whether Sync buys crash durability (the durable
	// file backend). Serving layers skip the commit barrier when false.
	Durable() bool

	// SetShip installs (or, with nil, removes) the ship sink the
	// *BatchShip variants emit applied mutations to. It must be called
	// before any Ship-variant mutation is submitted and must not run
	// concurrently with them: the seam is wired once at serving-layer
	// construction, not toggled under load.
	SetShip(fn ShipFunc)
	// InsertBatchShip is InsertBatch, plus: each successfully applied
	// pair is emitted to the ship sink UNDER THE SAME ORDERING THE
	// ENGINE APPLIES WITH (per key: apply order == ship order — the
	// replication total-order guarantee, DESIGN.md §2a). It returns the
	// highest ship LSN assigned to the batch — 0 when no sink is
	// installed, the batch is empty, or nothing applied. A partially
	// failed batch ships its applied subset and still returns the
	// first apply error.
	InsertBatchShip(keys, vals []uint64) (uint64, error)
	// UpsertBatchShip is UpsertBatch with InsertBatchShip's shipping
	// contract.
	UpsertBatchShip(keys, vals []uint64) (uint64, error)
	// DeleteBatchShipInto is DeleteBatchInto with the shipping
	// contract; every attempted delete ships (a miss is an idempotent
	// no-op on a replica), so the record stream stays dense.
	DeleteBatchShipInto(keys []uint64, found []bool) (uint64, error)

	// ExpireBatch sets deadlines[i] (unix milliseconds) as keys[i]'s
	// expiry deadline, for keys that are present and unexpired
	// (found[i] reports which). Expired keys are invisible to reads
	// immediately and physically deleted by SweepExpired. A plain
	// Insert/Upsert/CAS on a key clears its deadline. Follower replay
	// uses this non-shipping variant.
	ExpireBatch(keys, deadlines []uint64, found []bool) error
	// ExpireBatchShip is ExpireBatch with the shipping contract: the
	// found subset ships as expire records, so replicas adopt the
	// primary's deadlines instead of running their own clocks.
	ExpireBatchShip(keys, deadlines []uint64, found []bool) (uint64, error)
	// UpsertTTLBatchShip atomically upserts each pair and sets its
	// deadline, shipping an upsert record followed by an expire record
	// per key. Unlike UpsertBatch + ExpireBatchShip, no concurrent
	// writer can interleave between a key's value write and its
	// deadline write.
	UpsertTTLBatchShip(keys, vals, deadlines []uint64) (uint64, error)
	// CompareSwapBatchShip atomically replaces keys[i]'s value with
	// news[i] iff its current (unexpired) value equals olds[i];
	// swapped[i] reports the outcome. Swapped keys ship as plain
	// upserts (and, like any value write, lose their TTL).
	CompareSwapBatchShip(keys, olds, news []uint64, swapped []bool) (uint64, error)
	// Scan reads one page of entries in bucket order starting at
	// cursor (0 starts a scan), appending up to max live entries (plus
	// the remainder of the bucket that crossed the threshold) and
	// returning the cursor for the next page, or ScanDone when the
	// table is exhausted. The cursor is weakly consistent: entries
	// moved by a concurrent rehash/split may be seen twice or not at
	// all, but entries untouched during the scan are seen exactly
	// once. Expired entries are filtered.
	Scan(cursor uint64, max int) (keys, vals []uint64, next uint64, err error)
	// SweepExpired pops up to max due keys from the expiry index and
	// deletes them through the normal logged path, shipping the
	// deletes. It returns the number swept and the covering ship LSN
	// (0 when nothing swept or no sink). Only the writable node
	// sweeps; replicas converge by applying the shipped deletes.
	SweepExpired(max int) (int, uint64, error)
	// ExpiryStats reports the engine's TTL counters.
	ExpiryStats() ExpiryStats
}

// ShipFunc is the replication seam: a multi-producer ordered append
// into the node's ship log. It writes one record per key with the
// given op (vals nil means zero values — deletes), assigns
// consecutive LSNs, and returns the LSN of the first record. The
// engine invokes it from shard workers while they still own the
// per-shard apply order, so the sink's internal serialization (the
// ship log's append mutex) is the merge stage that makes the LSN
// order a true total order of applied mutations.
type ShipFunc func(op uint8, keys, vals []uint64) (uint64, error)

// Ship record operation codes, matching the WAL/ship-log record ops.
// Expire records carry the deadline (unix ms) in the value field.
const (
	ShipInsert = uint8(wal.OpInsert)
	ShipUpsert = uint8(wal.OpUpsert)
	ShipDelete = uint8(wal.OpDelete)
	ShipExpire = uint8(wal.OpExpire)
)

var (
	_ Engine = (*Sharded)(nil)
	_ Engine = (*guard)(nil)
)

// OpenEngine constructs a single (unsharded) table by structure name —
// exactly like Open — and returns it as an Engine. Single tables are
// not safe for concurrent use; front them with one goroutine (or use
// NewSharded) when serving. See Open for structure names and reopen
// semantics.
func OpenEngine(structure string, cfg Config) (Engine, error) {
	t, err := Open(structure, cfg)
	if err != nil {
		return nil, err
	}
	// Open's single construction path always wraps in *guard, which
	// satisfies Engine; assert so a future refactor that breaks the
	// invariant fails loudly here rather than at a call site.
	return t.(Engine), nil
}

// ReplStats reports a node's replication state and traffic counters,
// exposed over the wire via the STATS request (append-only payload
// extension). On a node with replication disabled all fields are zero.
type ReplStats struct {
	// Epoch is the replication epoch: bumped by every promotion, so
	// clients can detect that the writable node moved and re-route.
	Epoch int64
	// CurrentLSN is the highest LSN this node has assigned (primary)
	// or applied (follower).
	CurrentLSN int64
	// FollowerLag is the primary's view of its slowest subscribed
	// follower: CurrentLSN minus that follower's acknowledged LSN.
	// Zero when no follower is subscribed or the node is a follower.
	FollowerLag int64
	// FramesShipped counts replication batches sent to followers.
	FramesShipped int64
	// FramesReplayed counts replication batches this node applied as
	// a follower.
	FramesReplayed int64
	// ShipStartLSN is the LSN of the oldest record still in the node's
	// ship log — above 1 once prefix truncation has run, so operators
	// can see the retained window of a bounded follower log.
	ShipStartLSN int64
}

// batch runs a per-key mutation over a batch, enforcing the length
// contract shared with Sharded.
func (g *guard) mutateBatch(keys, vals []uint64, op func(k, v uint64) error) error {
	if len(keys) != len(vals) {
		return ErrBatchLength
	}
	if g.closed {
		return ErrClosed
	}
	for i, k := range keys {
		if err := op(k, vals[i]); err != nil {
			return err
		}
	}
	return nil
}

// InsertBatch inserts each pair in order on the guarded table.
func (g *guard) InsertBatch(keys, vals []uint64) error {
	return g.mutateBatch(keys, vals, g.insertOne)
}

// UpsertBatch upserts each pair in order on the guarded table.
func (g *guard) UpsertBatch(keys, vals []uint64) error {
	return g.mutateBatch(keys, vals, g.upsertOne)
}

// LookupBatch looks up every key, allocating the result slices.
func (g *guard) LookupBatch(keys []uint64) ([]uint64, []bool, error) {
	vals := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	if err := g.LookupBatchInto(keys, vals, found); err != nil {
		return nil, nil, err
	}
	return vals, found, nil
}

// LookupBatchInto looks up every key into caller-provided slices.
func (g *guard) LookupBatchInto(keys, vals []uint64, found []bool) error {
	if len(vals) != len(keys) || len(found) != len(keys) {
		return ErrBatchLength
	}
	if g.closed {
		return ErrClosed
	}
	for i, k := range keys {
		if g.expired(k) {
			g.expStats.LazyHits++
			vals[i], found[i] = 0, false
			continue
		}
		vals[i], found[i] = g.t.Lookup(k)
	}
	return nil
}

// DeleteBatch deletes every key, allocating the found slice.
func (g *guard) DeleteBatch(keys []uint64) ([]bool, error) {
	found := make([]bool, len(keys))
	if err := g.DeleteBatchInto(keys, found); err != nil {
		return nil, err
	}
	return found, nil
}

// DeleteBatchInto deletes every key into a caller-provided found slice.
func (g *guard) DeleteBatchInto(keys []uint64, found []bool) error {
	if len(found) != len(keys) {
		return ErrBatchLength
	}
	if g.closed {
		return ErrClosed
	}
	for i, k := range keys {
		found[i] = g.deleteOne(k)
	}
	return nil
}

// Durable reports whether the guarded table was opened on the durable
// file backend.
func (g *guard) Durable() bool { return g.durable }

// SetShip installs the ship sink on the guarded table. Single tables
// are single-goroutine by contract, so "apply then ship, per key, in
// call order" is trivially the total order the seam requires.
func (g *guard) SetShip(fn ShipFunc) { g.ship = fn }

// mutateBatchShip applies a per-key mutation over the batch and ships
// the applied subset in apply order, returning the batch's highest
// ship LSN and the first apply (or ship) error.
func (g *guard) mutateBatchShip(op uint8, keys, vals []uint64, apply func(k, v uint64) error) (uint64, error) {
	if len(keys) != len(vals) {
		return 0, ErrBatchLength
	}
	if g.closed {
		return 0, ErrClosed
	}
	var firstErr error
	shipK, shipV := keys, vals
	var failed bool
	for i, k := range keys {
		if err := apply(k, vals[i]); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			if !failed {
				// First failure: switch to filtered ship slices seeded
				// with the applied prefix. Error path only — the clean
				// path ships the caller's slices without copying.
				failed = true
				shipK = append([]uint64(nil), keys[:i]...)
				shipV = append([]uint64(nil), vals[:i]...)
			}
			continue
		}
		if failed {
			shipK = append(shipK, k)
			shipV = append(shipV, vals[i])
		}
	}
	if g.ship == nil || len(shipK) == 0 {
		return 0, firstErr
	}
	first, err := g.ship(op, shipK, shipV)
	if err != nil {
		if firstErr == nil {
			firstErr = err
		}
		return 0, firstErr
	}
	return first + uint64(len(shipK)) - 1, firstErr
}

// InsertBatchShip inserts each pair in order, shipping applied pairs.
func (g *guard) InsertBatchShip(keys, vals []uint64) (uint64, error) {
	return g.mutateBatchShip(ShipInsert, keys, vals, g.insertOne)
}

// UpsertBatchShip upserts each pair in order, shipping applied pairs.
func (g *guard) UpsertBatchShip(keys, vals []uint64) (uint64, error) {
	return g.mutateBatchShip(ShipUpsert, keys, vals, g.upsertOne)
}

// DeleteBatchShipInto deletes every key, shipping the whole attempted
// batch (misses included — idempotent on replay).
func (g *guard) DeleteBatchShipInto(keys []uint64, found []bool) (uint64, error) {
	if err := g.DeleteBatchInto(keys, found); err != nil {
		return 0, err
	}
	if g.ship == nil || len(keys) == 0 {
		return 0, nil
	}
	first, err := g.ship(ShipDelete, keys, nil)
	if err != nil {
		return 0, err
	}
	return first + uint64(len(keys)) - 1, nil
}
