package extbuf

// Engine is the full serving surface of a table: the single-key Table
// operations plus the order-preserving batch operations and the
// Durable capability probe. Both Sharded (worker-per-shard pipeline)
// and every table returned by Open/New* (via the close guard) satisfy
// it, so layers that used to special-case the two — the network server,
// the replication follower apply loop, load generators — program
// against one interface and work with either.
//
// Batch semantics are those Sharded established: positions i of keys,
// vals and found correspond; InsertBatch and UpsertBatch require
// len(keys) == len(vals) (ErrBatchLength otherwise); the *Into variants
// write results into caller-provided slices of exactly len(keys) and
// allocate nothing. A batch is not atomic — on error a prefix of it may
// have applied — but per-key ordering is preserved between batches.
type Engine interface {
	Table

	// InsertBatch inserts each (keys[i], vals[i]) pair in order.
	InsertBatch(keys, vals []uint64) error
	// UpsertBatch upserts each (keys[i], vals[i]) pair in order.
	UpsertBatch(keys, vals []uint64) error
	// LookupBatch looks up every key, allocating the result slices.
	LookupBatch(keys []uint64) (vals []uint64, found []bool, err error)
	// LookupBatchInto looks up every key into caller-provided slices
	// (len(vals) == len(found) == len(keys)); it allocates nothing.
	LookupBatchInto(keys, vals []uint64, found []bool) error
	// DeleteBatch deletes every key, allocating the found slice.
	DeleteBatch(keys []uint64) ([]bool, error)
	// DeleteBatchInto deletes every key into a caller-provided found
	// slice of len(keys); it allocates nothing.
	DeleteBatchInto(keys []uint64, found []bool) error
	// Durable reports whether Sync buys crash durability (the durable
	// file backend). Serving layers skip the commit barrier when false.
	Durable() bool
}

var (
	_ Engine = (*Sharded)(nil)
	_ Engine = (*guard)(nil)
)

// OpenEngine constructs a single (unsharded) table by structure name —
// exactly like Open — and returns it as an Engine. Single tables are
// not safe for concurrent use; front them with one goroutine (or use
// NewSharded) when serving. See Open for structure names and reopen
// semantics.
func OpenEngine(structure string, cfg Config) (Engine, error) {
	t, err := Open(structure, cfg)
	if err != nil {
		return nil, err
	}
	// Open's single construction path always wraps in *guard, which
	// satisfies Engine; assert so a future refactor that breaks the
	// invariant fails loudly here rather than at a call site.
	return t.(Engine), nil
}

// ReplStats reports a node's replication state and traffic counters,
// exposed over the wire via the STATS request (append-only payload
// extension). On a node with replication disabled all fields are zero.
type ReplStats struct {
	// Epoch is the replication epoch: bumped by every promotion, so
	// clients can detect that the writable node moved and re-route.
	Epoch int64
	// CurrentLSN is the highest LSN this node has assigned (primary)
	// or applied (follower).
	CurrentLSN int64
	// FollowerLag is the primary's view of its slowest subscribed
	// follower: CurrentLSN minus that follower's acknowledged LSN.
	// Zero when no follower is subscribed or the node is a follower.
	FollowerLag int64
	// FramesShipped counts replication batches sent to followers.
	FramesShipped int64
	// FramesReplayed counts replication batches this node applied as
	// a follower.
	FramesReplayed int64
}

// batch runs a per-key mutation over a batch, enforcing the length
// contract shared with Sharded.
func (g *guard) mutateBatch(keys, vals []uint64, op func(k, v uint64) error) error {
	if len(keys) != len(vals) {
		return ErrBatchLength
	}
	if g.closed {
		return ErrClosed
	}
	for i, k := range keys {
		if err := op(k, vals[i]); err != nil {
			return err
		}
	}
	return nil
}

// InsertBatch inserts each pair in order on the guarded table.
func (g *guard) InsertBatch(keys, vals []uint64) error {
	return g.mutateBatch(keys, vals, g.t.Insert)
}

// UpsertBatch upserts each pair in order on the guarded table.
func (g *guard) UpsertBatch(keys, vals []uint64) error {
	return g.mutateBatch(keys, vals, g.t.Upsert)
}

// LookupBatch looks up every key, allocating the result slices.
func (g *guard) LookupBatch(keys []uint64) ([]uint64, []bool, error) {
	vals := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	if err := g.LookupBatchInto(keys, vals, found); err != nil {
		return nil, nil, err
	}
	return vals, found, nil
}

// LookupBatchInto looks up every key into caller-provided slices.
func (g *guard) LookupBatchInto(keys, vals []uint64, found []bool) error {
	if len(vals) != len(keys) || len(found) != len(keys) {
		return ErrBatchLength
	}
	if g.closed {
		return ErrClosed
	}
	for i, k := range keys {
		vals[i], found[i] = g.t.Lookup(k)
	}
	return nil
}

// DeleteBatch deletes every key, allocating the found slice.
func (g *guard) DeleteBatch(keys []uint64) ([]bool, error) {
	found := make([]bool, len(keys))
	if err := g.DeleteBatchInto(keys, found); err != nil {
		return nil, err
	}
	return found, nil
}

// DeleteBatchInto deletes every key into a caller-provided found slice.
func (g *guard) DeleteBatchInto(keys []uint64, found []bool) error {
	if len(found) != len(keys) {
		return ErrBatchLength
	}
	if g.closed {
		return ErrClosed
	}
	for i, k := range keys {
		found[i] = g.t.Delete(k)
	}
	return nil
}

// Durable reports whether the guarded table was opened on the durable
// file backend.
func (g *guard) Durable() bool { return g.durable }
