// Archival ingest: the workload that motivates the paper's introduction
// — "there tends to be a lot more insertions than deletions in many
// practical situations like managing archival data".
//
// A stream of archive records (think log segments keyed by content
// hash) is ingested with occasional point lookups (audits) and rare
// deletions (retention). The example runs the same stream through the
// paper's buffered table, the logarithmic method, and the plain Knuth
// table, and prints the I/O bill of each — the practical face of
// Figure 1.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"extbuf"
	"extbuf/internal/workload"
	"extbuf/internal/xrand"
)

func main() {
	log.SetFlags(0)

	const ops = 400_000
	// Audits are uniform over live records — the paper's definition of
	// the expected average successful lookup. (Set ZipfQueries for a
	// recency-skewed variant: audits then mostly hit the memory buffer
	// and every structure answers them nearly free.)
	stream := workload.Mix(xrand.New(7), workload.MixConfig{
		Ops:        ops,
		LookupFrac: 0.05, // rare audits
		DeleteFrac: 0.01, // rarer retention deletes
	})

	type contestant struct {
		name string
		tab  extbuf.Table
	}
	mk := func(name string) contestant {
		tab, err := extbuf.Open(name, extbuf.Config{
			BlockSize:     128,
			MemoryWords:   2048,
			Beta:          8,
			ExpectedItems: ops,
			Seed:          11,
		})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		return contestant{name, tab}
	}
	contestants := []contestant{mk("buffered"), mk("logmethod"), mk("knuth")}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "structure\tingest I/Os per insert\taudit I/Os per lookup\tdelete I/Os each\ttotal I/Os")
	for _, c := range contestants {
		var nIns, nLook, nDel int
		var insIOs, lookIOs, delIOs int64
		prev := c.tab.Stats().IOs()
		tick := func(counter *int64) {
			now := c.tab.Stats().IOs()
			*counter += now - prev
			prev = now
		}
		for _, op := range stream {
			switch op.Kind {
			case workload.OpInsert:
				// Content-addressed archives never re-insert a hash, so
				// the distinct-keys Insert contract holds.
				if err := c.tab.Insert(op.Key, op.Val); err != nil {
					log.Fatalf("%s: %v", c.name, err)
				}
				nIns++
				tick(&insIOs)
			case workload.OpLookup:
				if _, ok := c.tab.Lookup(op.Key); !ok {
					log.Fatalf("%s: audit missed record %d", c.name, op.Key)
				}
				nLook++
				tick(&lookIOs)
			case workload.OpDelete:
				if !c.tab.Delete(op.Key) {
					log.Fatalf("%s: retention delete missed %d", c.name, op.Key)
				}
				nDel++
				tick(&delIOs)
			}
		}
		fmt.Fprintf(w, "%s\t%.4f\t%.4f\t%.4f\t%d\n",
			c.name,
			float64(insIOs)/float64(nIns),
			float64(lookIOs)/float64(nLook),
			float64(delIOs)/float64(nDel),
			c.tab.Stats().IOs())
		c.tab.Close()
	}
	w.Flush()
	fmt.Println("\nreading the table: all three ingest; the plain (knuth) table pays ~1 I/O")
	fmt.Println("per insert where the buffered structures pay o(1). The logarithmic method's")
	fmt.Println("ingest is cheapest but every audit walks its whole cascade (Lemma 5), while")
	fmt.Println("the buffered table keeps audits at ~1 I/O (Theorem 2) — the paper's tradeoff")
	fmt.Println("in one workload. Raise LookupFrac and the buffered table wins outright.")
}
