// kvstore: a small string-keyed key-value store built on the extbuf
// public API, showing how a real application layers on the paper's
// one-word model: string keys are hashed to 64-bit identifiers
// (fingerprints), values live in an external value log addressed by the
// stored word, and the hash table provides the index.
//
// The example ingests a dictionary, performs point reads, overwrites,
// and deletes, and verifies everything against an in-memory reference.
package main

import (
	"fmt"
	"log"

	"extbuf"
	"extbuf/internal/xrand"
)

// Store is a string-to-string KV store over an extbuf table.
type Store struct {
	idx extbuf.Table
	// valueLog models the external value log: the table stores offsets
	// into it. Real deployments would write these pages to disk; the
	// index I/O is what the paper (and this example) measures.
	valueLog []string
	seed     uint64
}

// NewStore opens a store with the buffered (Theorem 2) index.
func NewStore() (*Store, error) {
	idx, err := extbuf.New(extbuf.Config{
		BlockSize:   256,
		MemoryWords: 4096,
		Beta:        8,
		Seed:        99,
	})
	if err != nil {
		return nil, err
	}
	return &Store{idx: idx, seed: 0x5bd1e995}, nil
}

// fingerprint hashes a string key to the one-word item the table
// stores. 64-bit fingerprints collide with probability ~n^2/2^64,
// negligible at this scale (and detectable: Get compares the key).
func (s *Store) fingerprint(key string) uint64 {
	h := s.seed
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 0x100000001b3
	}
	return xrand.Mix64(h)
}

// Put stores (key, value), overwriting any existing value. It pays an
// existence probe (~1 I/O); bulk loads of keys known to be fresh should
// use PutNew.
func (s *Store) Put(key, value string) error {
	s.valueLog = append(s.valueLog, key+"\x00"+value)
	return s.idx.Upsert(s.fingerprint(key), uint64(len(s.valueLog)-1))
}

// PutNew stores (key, value) for a key known not to be present — the
// buffered index then absorbs it at o(1) amortized I/Os (the Theorem 2
// fast path). Loading with a duplicate key is a caller bug.
func (s *Store) PutNew(key, value string) error {
	s.valueLog = append(s.valueLog, key+"\x00"+value)
	return s.idx.Insert(s.fingerprint(key), uint64(len(s.valueLog)-1))
}

// Get returns the value for key.
func (s *Store) Get(key string) (string, bool) {
	off, ok := s.idx.Lookup(s.fingerprint(key))
	if !ok {
		return "", false
	}
	rec := s.valueLog[off]
	for i := 0; i < len(rec); i++ {
		if rec[i] == 0 {
			if rec[:i] != key {
				return "", false // fingerprint collision: treat as absent
			}
			return rec[i+1:], true
		}
	}
	return "", false
}

// Delete removes key.
func (s *Store) Delete(key string) bool {
	return s.idx.Delete(s.fingerprint(key))
}

// Stats exposes the index's I/O counters.
func (s *Store) Stats() extbuf.Stats { return s.idx.Stats() }

// Close releases the store, reporting any backend flush/close error.
func (s *Store) Close() error { return s.idx.Close() }

func main() {
	log.SetFlags(0)
	store, err := NewStore()
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	const n = 200_000
	ref := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("user:%07d", i)
		v := fmt.Sprintf("profile-%d", i*31)
		if err := store.PutNew(k, v); err != nil {
			log.Fatal(err)
		}
		ref[k] = v
	}
	fmt.Printf("loaded %d records in %d index I/Os (%.4f per put)\n",
		n, store.Stats().IOs(), float64(store.Stats().IOs())/n)

	// Overwrite a slice of users.
	for i := 0; i < n/10; i++ {
		k := fmt.Sprintf("user:%07d", i*10)
		v := fmt.Sprintf("profile-updated-%d", i)
		if err := store.Put(k, v); err != nil {
			log.Fatal(err)
		}
		ref[k] = v
	}

	// Delete every 100th user.
	for i := 0; i < n; i += 100 {
		k := fmt.Sprintf("user:%07d", i)
		if !store.Delete(k) {
			log.Fatalf("delete %s failed", k)
		}
		delete(ref, k)
	}

	// Verify a sample against the reference.
	rng := xrand.New(1)
	checked, found := 0, 0
	for i := 0; i < 50_000; i++ {
		k := fmt.Sprintf("user:%07d", rng.Intn(n))
		got, ok := store.Get(k)
		want, wantOK := ref[k]
		if ok != wantOK || (ok && got != want) {
			log.Fatalf("mismatch for %s: got (%q,%v) want (%q,%v)", k, got, ok, want, wantOK)
		}
		checked++
		if ok {
			found++
		}
	}
	fmt.Printf("verified %d random reads (%d hits) — store consistent\n", checked, found)
	st := store.Stats()
	fmt.Printf("final bill: %d reads, %d cold writes, %d free write-backs\n",
		st.Reads, st.Writes, st.WriteBacks)
}
