// netkv: the serving layer end to end, in one process. Boots a
// hashserved-equivalent server (internal/server) over a durable
// 4-shard engine on a loopback listener, drives it with the pooled
// pipelined client the way a remote application would, prints the
// engine and buffer-pool counters fetched over the wire (STATS), then
// drains the server gracefully — the SIGTERM path of cmd/hashserved —
// and reopens the engine to show the checkpoint took.
//
// The one line to notice: InsertBatch returning nil MEANS the batch is
// WAL-durable on disk (the server group-commits the ack behind an
// engine Sync), which is why the reopened engine must report every
// acked key.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"time"

	"extbuf"
	"extbuf/client"
	"extbuf/internal/server"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "netkv-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "kv")

	// Server side: a durable sharded engine behind the wire protocol.
	eng, err := extbuf.NewSharded("buffered", extbuf.Config{
		Backend: "file",
		Path:    path,
	}, 4)
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(server.Config{Engine: eng})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(lis)
	addr := lis.Addr().String()
	fmt.Println("serving on", addr)

	// Client side: pool of 2 connections, pipelined.
	cl, err := client.Dial(addr, client.Options{Conns: 2, Pipeline: 32})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	const n = 50000
	const batch = 256
	keys := make([]uint64, 0, batch)
	vals := make([]uint64, 0, batch)
	start := time.Now()
	var pending []*client.Pending
	for k := uint64(1); k <= n; k++ {
		keys = append(keys, k)
		vals = append(vals, k*3)
		if len(keys) == batch || k == n {
			// Async: keep many batches in flight; the server aggregates
			// them into engine-sized fan-outs.
			p, err := cl.GoInsert(keys, vals)
			if err != nil {
				log.Fatal(err)
			}
			pending = append(pending, p)
			keys, vals = keys[:0], vals[:0]
		}
	}
	for _, p := range pending {
		if err := p.Wait(ctx); err != nil { // nil = applied AND WAL-durable
			log.Fatal(err)
		}
	}
	fmt.Printf("inserted %d keys in %v (acked durable)\n", n, time.Since(start).Round(time.Millisecond))

	got, found, err := cl.LookupBatch(ctx, []uint64{1, 777, n, n + 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lookups over the wire: 1->%d(%v) 777->%d(%v) %d->%d(%v) miss->(%v)\n",
		got[0], found[0], got[1], found[1], n, got[2], found[2], found[3])

	st, err := cl.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("STATS: len=%d model I/Os=%d wal fsyncs=%d pool hits=%d misses=%d\n",
		st.Len, st.Ops.IOs(), st.Store.WALFsyncs, st.Store.CacheHits, st.Store.CacheMisses)

	// Graceful drain (what SIGTERM does in cmd/hashserved), then the
	// checkpoint, then prove the data's all there on a cold reopen.
	cl.Close()
	shutdownCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}

	re, err := extbuf.NewSharded("buffered", extbuf.Config{Backend: "file", Path: path}, 4)
	if err != nil {
		log.Fatal(err)
	}
	defer re.Close()
	fmt.Printf("reopened from checkpoint: Len=%d (want %d)\n", re.Len(), n)
}
