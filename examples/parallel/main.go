// parallel: multi-worker ingest into the sharded pipelined engine.
// Each shard is an independent external-memory model (its own disk and
// memory budget — think one spindle per worker) with a dedicated worker
// goroutine, so the paper's per-structure bounds hold shard-locally
// while shards proceed concurrently. The example ingests the same
// workload three ways — single-shard one-at-a-time, multi-shard
// one-at-a-time, and multi-shard batched — to show where the wall-clock
// time actually goes: per-operation pipeline round-trips, which
// batching amortizes across every shard at once.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"extbuf"
	"extbuf/internal/workload"
	"extbuf/internal/xrand"
)

const batchSize = 256

func ingest(shards, batch, n int) (extbuf.Stats, time.Duration) {
	s, err := extbuf.NewSharded("buffered", extbuf.Config{
		BlockSize:   128,
		MemoryWords: 2048,
		Beta:        8,
		Seed:        17,
	}, shards)
	if err != nil {
		log.Fatal(err)
	}

	rng := xrand.New(1000)
	keys := workload.Keys(rng, n)
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(i)
	}

	start := time.Now()
	kc := workload.Chunks(keys, batch)
	vc := workload.Chunks(vals, batch)
	for i := range kc {
		if err := s.InsertBatch(kc[i], vc[i]); err != nil {
			log.Fatal(err)
		}
	}
	elapsed := time.Since(start)

	if got := s.Len(); got != n {
		log.Fatalf("lost items: %d != %d", got, n)
	}
	st := s.Stats()
	if err := s.Close(); err != nil {
		log.Fatal(err)
	}
	return st, elapsed
}

func main() {
	log.SetFlags(0)
	shards := runtime.GOMAXPROCS(0)
	if shards > 8 {
		shards = 8
	}
	if shards < 2 {
		shards = 2
	}
	const total = 1_000_000

	fmt.Printf("ingesting %d items (batch = %d where batched)\n\n", total, batchSize)
	for _, run := range []struct {
		label         string
		shards, batch int
	}{
		{"1 shard,  op-at-a-time", 1, 1},
		{fmt.Sprintf("%d shards, op-at-a-time", shards), shards, 1},
		{fmt.Sprintf("%d shards, batched", shards), shards, batchSize},
	} {
		st, elapsed := ingest(run.shards, run.batch, total)
		fmt.Printf("%-24s %8.2fms wall, %6.2f Mops/s, %.4f simulated I/Os per insert\n",
			run.label, float64(elapsed.Microseconds())/1000,
			float64(total)/elapsed.Seconds()/1e6,
			float64(st.IOs())/float64(total))
	}
	fmt.Println("\nop-at-a-time pays a pipeline round-trip per insert; batching partitions")
	fmt.Println("each slice across every shard worker in one fan-out, so the round-trip")
	fmt.Println("amortizes over the whole batch. The per-insert I/O count even improves")
	fmt.Println("with shards: each shard holds n/S items, and Theorem 2's t_u carries a")
	fmt.Println("(2/b)·log(n_shard/m) term, so smaller shards mean shallower cascades")
	fmt.Println("(at the price of S memory budgets).")
}
