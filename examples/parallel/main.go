// parallel: multi-worker ingest into a sharded buffered table. Each
// shard is an independent external-memory model (its own disk and
// memory budget — think one spindle per worker), so the paper's
// per-structure bounds hold shard-locally while workers proceed
// concurrently. The example ingests from several goroutines, then
// compares the aggregate I/O bill against a single-shard run of the
// same workload.
package main

import (
	"fmt"
	"log"
	"runtime"
	"sync"
	"time"

	"extbuf"
	"extbuf/internal/xrand"
)

func ingest(shards, workers, perWorker int) (extbuf.Stats, time.Duration, int) {
	s, err := extbuf.NewSharded("buffered", extbuf.Config{
		BlockSize:   128,
		MemoryWords: 2048,
		Beta:        8,
		Seed:        17,
	}, shards)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(1000 + w))
			for i := 0; i < perWorker; i++ {
				// Worker-partitioned key space keeps Insert's
				// fresh-key contract across goroutines.
				key := uint64(w)<<56 | rng.Uint64()>>8
				if err := s.Insert(key, uint64(i)); err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	return s.Stats(), elapsed, s.Len()
}

func main() {
	log.SetFlags(0)
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	const perWorker = 250_000
	total := workers * perWorker

	fmt.Printf("ingesting %d items with %d workers\n\n", total, workers)
	for _, shards := range []int{1, workers} {
		st, elapsed, n := ingest(shards, workers, perWorker)
		if n != total {
			log.Fatalf("lost items: %d != %d", n, total)
		}
		fmt.Printf("shards=%d: %8.2fms wall, %d simulated I/Os (%.4f per insert)\n",
			shards, float64(elapsed.Microseconds())/1000, st.IOs(),
			float64(st.IOs())/float64(total))
	}
	fmt.Println("\nthe wall-clock drop is the parallelism — one lock and one model per shard")
	fmt.Println("instead of a single contended structure. The per-insert I/O count even")
	fmt.Println("improves slightly with shards: each shard holds n/S items, and Theorem 2's")
	fmt.Println("t_u carries a (2/b)·log(n_shard/m) term, so smaller shards mean shallower")
	fmt.Println("cascades (at the price of S memory budgets).")
}
