// Quickstart: build the paper's buffered hash table, insert a million
// items, look some up, and read the I/O counters — the five-minute tour
// of the extbuf public API.
package main

import (
	"fmt"
	"log"

	"extbuf"
	"extbuf/internal/xrand"
)

func main() {
	log.SetFlags(0)

	// A disk with 256-item blocks and a 4096-word memory budget: the
	// external memory model of the paper, simulated. Beta = 8 buys
	// lookups within 1 + O(1/8) I/Os; insertions amortize to o(1)
	// (the advantage grows with the block size b — Theorem 2's bound is
	// O(beta/b + (2/b)log(n/m)) per insert).
	tab, err := extbuf.New(extbuf.Config{
		BlockSize:   256,
		MemoryWords: 4096,
		Beta:        8,
		Seed:        2009, // SPAA 2009
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tab.Close()

	const n = 1_000_000
	rng := xrand.New(42)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64()
		if err := tab.Insert(keys[i], uint64(i)); err != nil {
			log.Fatal(err)
		}
	}
	ins := tab.Stats()
	fmt.Printf("inserted %d items in %d I/Os  ->  t_u = %.4f I/Os amortized\n",
		n, ins.IOs(), float64(ins.IOs())/n)
	fmt.Printf("  (reads %d, cold writes %d, free write-backs %d)\n",
		ins.Reads, ins.Writes, ins.WriteBacks)

	const q = 10_000
	for i := 0; i < q; i++ {
		k := keys[rng.Intn(n)]
		if v, ok := tab.Lookup(k); !ok {
			log.Fatalf("lost key %d", k)
		} else if v >= n {
			log.Fatalf("corrupt value %d", v)
		}
	}
	qry := tab.Stats()
	tq := float64(qry.IOs()-ins.IOs()) / q
	fmt.Printf("%d random successful lookups  ->  t_q = %.4f I/Os average\n", q, tq)

	fmt.Printf("table holds %d items using %d memory words\n", tab.Len(), tab.MemoryUsed())
	fmt.Println()
	fmt.Println("compare with a plain Knuth table, which pays ~1 I/O per insert:")
	plain, err := extbuf.NewKnuth(extbuf.Config{BlockSize: 256, ExpectedItems: n, Seed: 2009})
	if err != nil {
		log.Fatal(err)
	}
	defer plain.Close()
	for i, k := range keys {
		if err := plain.Insert(k, uint64(i)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("plain table: t_u = %.4f I/Os amortized — buffering won %.0fx\n",
		float64(plain.Stats().IOs())/n,
		float64(plain.Stats().IOs())/float64(ins.IOs()))
}
