// tradeoff: walk the beta knob of the Theorem 2 table across the
// query-cost spectrum and print the achieved (t_q, t_u) pairs — the
// user-facing version of Figure 1's upper-bound curve. Use it to pick a
// beta for your own workload's read/write balance.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"extbuf"
	"extbuf/internal/xrand"
)

func main() {
	log.SetFlags(0)
	const (
		b = 128
		n = 300_000
		q = 20_000
	)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "beta\tt_u (I/Os per insert)\tt_q (I/Os per lookup)\t(t_q-1)*beta\t")
	for _, beta := range []int{2, 4, 8, 16, 32, 64, 128} {
		tab, err := extbuf.New(extbuf.Config{
			BlockSize:   b,
			MemoryWords: 2048,
			Beta:        beta,
			Seed:        uint64(beta),
		})
		if err != nil {
			log.Fatal(err)
		}
		rng := xrand.New(3)
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = rng.Uint64()
			if err := tab.Insert(keys[i], uint64(i)); err != nil {
				log.Fatal(err)
			}
		}
		ins := tab.Stats().IOs()
		for i := 0; i < q; i++ {
			if _, ok := tab.Lookup(keys[rng.Intn(n)]); !ok {
				log.Fatal("lost key")
			}
		}
		tot := tab.Stats().IOs()
		tu := float64(ins) / n
		tq := float64(tot-ins) / q
		fmt.Fprintf(w, "%d\t%.4f\t%.4f\t%.3f\t\n", beta, tu, tq, (tq-1)*float64(beta))
		tab.Close()
	}
	w.Flush()
	fmt.Println("\nreading the table: t_u grows ~linearly with beta (merge frequency)")
	fmt.Println("while t_q-1 shrinks as ~1/beta — the paper's Theorem 2 tradeoff. beta=b")
	fmt.Println("recovers near-plain-table inserts; beta=2 is the cheapest-insert corner.")
}
