package extbuf

import "extbuf/internal/iomodel"

// Test-only exports: the differential model checker asserts that
// buffer-pool pin reference counts balance after every operation
// sequence, which needs a path from a public Table (or engine) down to
// its block store's pin gauge.

// poolPinned reports the pin gauge of the adapter's backing store. The
// method lives on base, so every structure adapter promotes it.
func (b base) poolPinned() (int, bool) {
	switch st := b.model.Disk.Store().(type) {
	case *iomodel.FileStore:
		return st.PinnedFrames(), true
	case *iomodel.MemStore:
		return st.PinnedBlocks(), true
	case *iomodel.LatencyStore:
		if inner, ok := st.Inner().(*iomodel.MemStore); ok {
			return inner.PinnedBlocks(), true
		}
	}
	return 0, false
}

// PoolPinnedForTest walks tab to its block store(s) and returns the
// summed pin gauge. ok is false when no store with a gauge was found.
func PoolPinnedForTest(tab Table) (pinned int, ok bool) {
	switch v := tab.(type) {
	case *guard:
		return PoolPinnedForTest(v.t)
	case *durableTable:
		return v.store.PinnedFrames(), true
	case *Sharded:
		found := false
		for _, sh := range v.shards {
			if p, shOK := PoolPinnedForTest(sh); shOK {
				pinned += p
				found = true
			}
		}
		return pinned, found
	}
	if p, pOK := tab.(interface{ poolPinned() (int, bool) }); pOK {
		return p.poolPinned()
	}
	return 0, false
}

// WithClock returns cfg with the TTL clock replaced by now (unix ms),
// so expiry tests control time instead of sleeping through it.
func (c Config) WithClock(now func() uint64) Config {
	c.nowMillis = now
	return c
}
