package extbuf

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"extbuf/internal/chainhash"
	"extbuf/internal/ckpt"
	"extbuf/internal/core"
	"extbuf/internal/expiry"
	"extbuf/internal/exthash"
	"extbuf/internal/hashfn"
	"extbuf/internal/iomodel"
	"extbuf/internal/linhash"
	"extbuf/internal/linprobe"
	"extbuf/internal/logmethod"
	"extbuf/internal/twolevel"
	"extbuf/internal/wal"
)

// Stats reports cumulative I/O counts of a table's simulated disk.
// IOs = Reads + Writes is the seek-dominated cost the paper measures;
// WriteBacks are writes issued immediately after reading the same block,
// free under the paper's footnote-2 convention.
type Stats struct {
	Reads      int64
	Writes     int64
	WriteBacks int64
}

// IOs returns the seek-dominated I/O count.
func (s Stats) IOs() int64 { return s.Reads + s.Writes }

// StoreStats reports the real storage costs behind a table — what the
// bytes actually cost, next to the model counters of Stats. On the file
// backend these are the buffer pool's syscall, cache and coalescing
// counters (iomodel.FileStats); a durable table adds its write-ahead
// log's spill and fsync counts. Scratch backends (mem, latency) have no
// real costs and report zeros. The serving layer exposes this struct
// over the wire via the STATS request.
type StoreStats struct {
	ReadSyscalls    int64 // preads issued (cache misses that touched the file)
	WriteSyscalls   int64 // pwrites issued (evictions and coalesced flush runs)
	CacheHits       int64 // block accesses served from the buffer pool
	CacheMisses     int64 // block accesses that had to fault a frame in
	BytesRead       int64
	BytesWritten    int64
	Evictions       int64 // frames recycled to make room for a faulting block
	DirtyWritebacks int64 // evicted frames that had to be written back first
	FlushedFrames   int64 // dirty frames written back (flush barriers + clustering)
	FlushRuns       int64 // pwrites the flushed frames were batched into
	Fsyncs          int64 // fsyncs of the block file
	FsyncsElided    int64 // block-file barrier fsyncs skipped (nothing written since the last)
	GhostHits       int64 // faults of recently evicted blocks (scan-resistant promotions)
	WALSpills       int64 // write-ahead log spill writes (durable tables)
	WALFsyncs       int64 // write-ahead log fsyncs (durable tables)
	WALFsyncsElided int64 // write-ahead log barrier fsyncs skipped (durable tables)

	// Kernel-bypass tier counters (zero under IOMode "buffered"). The
	// fields are appended so older STATS wire peers keep decoding.
	DirectIO         int64 // stores (shards) whose block fd is open O_DIRECT
	ODirectFallbacks int64 // O_DIRECT opens refused by the filesystem (buffered fallback)
	UringEnters      int64 // io_uring_enter syscalls issued
	UringSQEs        int64 // submission-queue entries placed (writes through the ring)
	UringFallbacks   int64 // io_uring rings refused (tag off or kernel probe failed)
}

// Add returns s + o field-wise, for aggregating shards.
func (s StoreStats) Add(o StoreStats) StoreStats {
	s.ReadSyscalls += o.ReadSyscalls
	s.WriteSyscalls += o.WriteSyscalls
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.BytesRead += o.BytesRead
	s.BytesWritten += o.BytesWritten
	s.Evictions += o.Evictions
	s.DirtyWritebacks += o.DirtyWritebacks
	s.FlushedFrames += o.FlushedFrames
	s.FlushRuns += o.FlushRuns
	s.Fsyncs += o.Fsyncs
	s.FsyncsElided += o.FsyncsElided
	s.GhostHits += o.GhostHits
	s.WALSpills += o.WALSpills
	s.WALFsyncs += o.WALFsyncs
	s.WALFsyncsElided += o.WALFsyncsElided
	s.DirectIO += o.DirectIO
	s.ODirectFallbacks += o.ODirectFallbacks
	s.UringEnters += o.UringEnters
	s.UringSQEs += o.UringSQEs
	s.UringFallbacks += o.UringFallbacks
	return s
}

// fromFileStats maps the file backend's counter struct onto the public
// one.
func fromFileStats(st iomodel.FileStats) StoreStats {
	return StoreStats{
		ReadSyscalls:     st.ReadSyscalls,
		WriteSyscalls:    st.WriteSyscalls,
		CacheHits:        st.CacheHits,
		CacheMisses:      st.CacheMisses,
		BytesRead:        st.BytesRead,
		BytesWritten:     st.BytesWritten,
		Evictions:        st.Evictions,
		DirtyWritebacks:  st.DirtyWritebacks,
		FlushedFrames:    st.FlushedFrames,
		FlushRuns:        st.FlushRuns,
		Fsyncs:           st.Fsyncs,
		FsyncsElided:     st.FsyncsElided,
		GhostHits:        st.GhostHits,
		DirectIO:         st.DirectIO,
		ODirectFallbacks: st.ODirectFallbacks,
		UringEnters:      st.UringEnters,
		UringSQEs:        st.UringSQEs,
		UringFallbacks:   st.UringFallbacks,
	}
}

// Table is a dynamic external hash table storing one-word keys and
// values, the paper's atomic items. Implementations are not safe for
// concurrent use.
type Table interface {
	// Insert stores (key, val). For the buffered table (New) the key
	// must not already be present — the paper's insert-only model; this
	// is what keeps its lookups at 1 + O(1/beta) I/Os. Use Upsert for
	// read-modify-write. Baseline tables treat Insert as Upsert.
	Insert(key, val uint64) error
	// Upsert stores (key, val) whether or not key is present.
	Upsert(key, val uint64) error
	// Lookup returns the value stored for key.
	Lookup(key uint64) (uint64, bool)
	// Delete removes key, reporting whether it was present.
	Delete(key uint64) bool
	// Len returns the number of stored entries.
	Len() int
	// Stats returns cumulative I/O counts since construction.
	Stats() Stats
	// MemoryUsed returns the words of main memory the table currently
	// charges against its budget.
	MemoryUsed() int64
	// Sync is the lightweight acknowledgement barrier: once it returns
	// nil, every operation submitted before it survives a crash. A
	// durable table (file backend with a named Path) spills and fsyncs
	// its write-ahead log — no checkpoint, no block flush — so recovery
	// replays the log against the last checkpoint; the serving layer
	// group-commits client acks behind exactly this barrier. Scratch
	// backends degrade to a backend sync (a no-op in memory).
	Sync() error
	// Flush forces any state buffered by the storage backend down to
	// durable storage. For a durable table (file backend with a named
	// Path) this is the checkpoint barrier: it fsyncs the write-ahead
	// log, flushes dirty blocks, commits a checkpoint and truncates the
	// log, so every operation submitted before Flush survives a crash
	// once it returns nil — and subsequent recovery pays no log replay.
	// For scratch backends it degrades to a backend sync (a no-op in
	// memory).
	Flush() error
	// StoreStats returns the real-cost counters of the table's storage
	// backend: the file backend's buffer-pool and syscall counters plus,
	// for a durable table, the write-ahead log's spill and fsync counts.
	// Backends without real costs (mem, latency) report zeros. Like
	// Stats, it stays readable after Close.
	StoreStats() StoreStats
	// Close flushes (checkpointing a durable table), releases the
	// table's memory reservations and the storage backend's resources,
	// and returns any error the backend reports. The table must not be
	// used afterwards: operations on a closed table return ErrClosed
	// (or zero values from Lookup/Delete/Len), and a second Close
	// returns ErrClosed rather than panicking.
	Close() error
}

// Config parametrizes table construction.
type Config struct {
	// BlockSize is b, the number of items per disk block (default 64;
	// must be >= 8 — the paper assumes b > log u).
	BlockSize int
	// MemoryWords is m, the main-memory budget in words (default 1024).
	MemoryWords int64
	// Beta is the Theorem 2 merge parameter (default 8; 2 <= Beta <= b).
	// Lookups cost 1 + O(1/Beta); insertions O(Beta/b + log/b).
	Beta int
	// Gamma is the logarithmic-method growth factor (default 2).
	Gamma int
	// ExpectedItems pre-sizes fixed-capacity baselines (default 1 << 16).
	ExpectedItems int
	// Seed drives the hash function; runs with equal seeds are
	// identical (default 1).
	Seed uint64
	// HashFamily selects "ideal" (default), "multshift" or "tabulation".
	HashFamily string
	// Backend selects the block-store backend: "mem" (default) is the
	// paper's free in-memory simulated store, "file" persists blocks to
	// a real file behind a page cache, "latency" injects seek/transfer
	// delays into an in-memory store. I/O counters are identical across
	// backends; only the real cost of the bytes differs.
	Backend string
	// Path names the backing file of the "file" backend and switches it
	// into durable mode: the table writes a write-ahead log (Path +
	// ".wal") and checkpointed superblock (Path + ".ckpt") beside the
	// block file, and Open on an existing Path reopens the table with
	// its contents, structure parameters and block-chain topology
	// intact, replaying the log for operations after the last
	// checkpoint. Empty selects a fresh scratch temporary file that is
	// removed when the table is closed (no durability machinery, the
	// pre-durability behavior).
	Path string
	// WALPath names the write-ahead log file of a durable table,
	// placing it on a different path (typically a different device)
	// than the block file, so group-commit WAL fsyncs never queue
	// behind checkpoint writeback on one fd. Empty (the default) keeps
	// the log beside the block file at Path + ".wal". The setting is
	// recorded in the superblock: reopening with an empty WALPath
	// adopts the stored one, and an explicitly different WALPath fails
	// with ErrSuperblockMismatch instead of silently recovering without
	// the log's tail. NewSharded appends the same ".shardNNN" suffix it
	// appends to Path.
	WALPath string
	// CacheBlocks is the "file" backend's page-cache capacity in blocks
	// (default iomodel.DefaultCacheBlocks).
	CacheBlocks int
	// IOMode selects the "file" backend's kernel-bypass tier: "buffered"
	// (the default) routes block and WAL I/O through the kernel page
	// cache; "odirect" opens both files O_DIRECT with sector-aligned
	// buffers and slot layout, making the table's own pool the only
	// cache; "uring" is odirect plus an io_uring submission queue in
	// place of the pwrite writeback pool (Linux, build tag "iouring").
	// Each rung falls back one step where unsupported — filesystems
	// without O_DIRECT, kernels without io_uring, binaries without the
	// tag — recorded in StoreStats.ODirectFallbacks/UringFallbacks; the
	// fallback changes only the syscall path, never the file layout. The
	// mode is recorded in the superblock: reopening with an empty IOMode
	// adopts the stored one, the two direct modes (which share a layout)
	// reopen each other's files, and a buffered/direct conflict fails
	// with ErrSuperblockMismatch. Crash-injected tables always run
	// buffered and synchronous (the crash matrix counts write syscalls).
	IOMode string
	// WritebackWorkers sets the "file" backend's asynchronous writeback
	// pool: flush-barrier and eviction writes are encoded on the table
	// goroutine but submitted as concurrent pwrites by this many
	// workers, keeping the device queue full. 0 (the default) selects
	// min(4, GOMAXPROCS): enough concurrent submissions to keep a
	// flash device's queue busy, degrading to fully synchronous writes
	// on a single-CPU machine where the pool is pure overhead. 1
	// forces synchronous writes.
	// Crash-injected tables (Crash != nil) always write synchronously —
	// the crash harness counts write syscalls, so submission order must
	// stay deterministic.
	WritebackWorkers int
	// RecoveryParallelism bounds the concurrency of the recovery cold
	// path: NewSharded opens (and replays) this many shards at once,
	// and within each shard the WAL replay pipeline partitions records
	// by hash bucket across this many goroutines before applying them
	// in bucket order. 0 (the default) uses GOMAXPROCS; 1 recovers
	// serially.
	RecoveryParallelism int
	// SeekDelay and TransferDelay are the "latency" backend's per-block
	// delays. If both are zero the backend defaults to a 100µs seek and
	// 25µs transfer.
	SeekDelay     time.Duration
	TransferDelay time.Duration
	// DeviceProfile selects a built-in fio-style preset for the
	// "latency" backend ("nvme", "ssd" or "hdd": seek vs sequential
	// transfer cost and a device queue depth), overriding SeekDelay and
	// TransferDelay. Empty uses the explicit delays.
	DeviceProfile string
	// FlushPolicy selects when mutations submitted to the Sharded
	// engine complete: FlushSync (default) makes every Insert/Upsert
	// call — single or batch — return only after its shard workers have
	// applied it, while FlushAsync enqueues mutations and returns
	// immediately (write-behind), deferring application errors and
	// durability to the next Flush or Close barrier. Lookups, deletes
	// and Len always synchronize behind queued writes of their shard,
	// so read-your-writes holds under both policies. Single (unsharded)
	// tables ignore the field.
	FlushPolicy string
	// Crash injects deterministic faults into a durable table's files
	// (block file, write-ahead log, checkpoint writes) for recovery
	// testing: a simulated process death at the Nth write syscall,
	// optionally torn, or failing fsyncs. Requires the "file" backend
	// with a non-empty Path. Production configurations leave it nil.
	Crash *CrashPlan

	// shardCount/shardIndex are set by NewSharded so each shard's
	// superblock records its place in the engine; reopening with a
	// different shard count fails with ErrSuperblockMismatch instead of
	// silently misrouting keys.
	shardCount int
	shardIndex int
	// nowMillis overrides the TTL clock (unix milliseconds); tests
	// inject deterministic time through it (see export_test.go). Nil
	// uses the real clock.
	nowMillis func() uint64
	// committer is the shared group-commit fsync pool NewSharded hands
	// every durable shard, so one Flush barrier overlaps all shards'
	// WAL and block-file fsyncs. Nil (single tables) gets a private
	// two-slot committer.
	committer *wal.Committer
}

// CrashPlan describes a deterministic fault to inject into a durable
// table's storage, mirroring iomodel's plan for public use. The zero
// plan injects nothing.
type CrashPlan struct {
	// FailAfterWrites simulates a process death at the Nth write
	// syscall (1-based) across the table's files; zero never crashes.
	FailAfterWrites int64
	// TornWrite makes the fatal write partial: a seed-determined
	// prefix of its bytes persists.
	TornWrite bool
	// FailSync makes every fsync fail without crashing.
	FailSync bool
	// Seed drives the torn-write prefix length.
	Seed uint64
}

// FlushPolicy values accepted by Config.FlushPolicy.
const (
	// FlushSync completes every mutation before its call returns.
	FlushSync = "sync"
	// FlushAsync queues mutations (write-behind) until a Flush or
	// Close barrier.
	FlushAsync = "async"
)

func (c Config) withDefaults() Config {
	if c.BlockSize == 0 {
		c.BlockSize = 64
	}
	if c.MemoryWords == 0 {
		c.MemoryWords = 1024
	}
	if c.Beta == 0 {
		c.Beta = 8
	}
	if c.Gamma == 0 {
		c.Gamma = 2
	}
	if c.ExpectedItems == 0 {
		c.ExpectedItems = 1 << 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Backend == "" {
		c.Backend = "mem"
	}
	if c.Backend == "latency" && c.SeekDelay == 0 && c.TransferDelay == 0 {
		c.SeekDelay = 100 * time.Microsecond
		c.TransferDelay = 25 * time.Microsecond
	}
	if c.FlushPolicy == "" {
		c.FlushPolicy = FlushSync
	}
	if c.IOMode == "" {
		c.IOMode = iomodel.IOModeBuffered
	}
	return c
}

// durable reports whether the configuration selects the durable file
// backend (named path ⇒ WAL + checkpointed superblock + reopen).
func (c Config) durable() bool { return c.Backend == "file" && c.Path != "" }

// ErrBlockTooSmall is returned for block sizes under 8 items.
var ErrBlockTooSmall = errors.New("extbuf: block size must be >= 8 items")

// ErrBetaRange is returned when Config.Beta violates 2 <= Beta <= BlockSize
// (the paper requires 2 <= beta <= b).
var ErrBetaRange = errors.New("extbuf: Beta must satisfy 2 <= Beta <= BlockSize")

// ErrGammaRange is returned when Config.Gamma is below the logarithmic
// method's minimum growth factor of 2.
var ErrGammaRange = errors.New("extbuf: Gamma must be >= 2")

// ErrUnknownBackend is returned for Backend values other than "mem",
// "file" and "latency".
var ErrUnknownBackend = errors.New("extbuf: unknown backend")

// ErrUnknownFlushPolicy is returned for FlushPolicy values other than
// FlushSync and FlushAsync.
var ErrUnknownFlushPolicy = errors.New("extbuf: unknown flush policy")

// ErrUnknownIOMode is returned for IOMode values other than "buffered",
// "odirect" and "uring".
var ErrUnknownIOMode = errors.New("extbuf: unknown IO mode")

// ErrBatchLength is returned by batch operations whose key and value
// slices differ in length.
var ErrBatchLength = errors.New("extbuf: batch keys and values differ in length")

// ErrClosed is returned by operations on a closed table or engine,
// including a second Close.
var ErrClosed = errors.New("extbuf: table is closed")

// ErrSuperblockMismatch is returned when Open finds an existing durable
// table at Config.Path whose superblock disagrees with the request: a
// different structure, an explicitly set parameter that conflicts with
// the stored one, or a different shard layout.
var ErrSuperblockMismatch = errors.New("extbuf: superblock does not match request")

// validateBlockSize enforces the paper's b > log u assumption. It is the
// first check of every constructor, so ErrBlockTooSmall takes precedence
// over parameter-range errors.
func (c Config) validateBlockSize() error {
	if c.BlockSize < 8 {
		return ErrBlockTooSmall
	}
	return nil
}

// defaultWritebackWorkers is the asynchronous writeback pool size used
// when Config.WritebackWorkers is zero: enough concurrent submissions
// to keep a flash device's queue busy, few enough that a many-shard
// engine does not drown in idle goroutines — and none at all on a
// single-CPU machine, where every handoff to a worker is a context
// switch on the only core and the pool can only slow the store down.
func defaultWritebackWorkers() int {
	if n := runtime.GOMAXPROCS(0); n < 4 {
		return n
	}
	return 4
}

// writebackWorkers resolves the effective pool size (see the Config
// field).
func (c Config) writebackWorkers() int {
	if c.WritebackWorkers == 0 {
		return defaultWritebackWorkers()
	}
	return c.WritebackWorkers
}

// store builds the scratch (non-durable) block-store backend selected
// by c.Backend; durable file stores are opened by openDurable.
func (c Config) store() (iomodel.BlockStore, error) {
	switch c.Backend {
	case "", "mem":
		return iomodel.NewMemStore(c.BlockSize), nil
	case "file":
		s, err := iomodel.NewTempFileStoreIO(c.BlockSize, c.CacheBlocks, iomodel.IOOptions{Mode: c.IOMode})
		if err != nil {
			return nil, err
		}
		s.ConfigureSubmission(c.IOMode, c.writebackWorkers())
		return s, nil
	case "latency":
		lcfg := iomodel.LatencyConfig{Seek: c.SeekDelay, Transfer: c.TransferDelay}
		if c.DeviceProfile != "" {
			var err error
			if lcfg, err = iomodel.DeviceProfileIO(c.DeviceProfile, c.IOMode); err != nil {
				return nil, err
			}
		}
		return iomodel.NewLatencyStore(iomodel.NewMemStore(c.BlockSize), lcfg), nil
	default:
		return nil, fmt.Errorf("%w %q (want mem, file or latency)", ErrUnknownBackend, c.Backend)
	}
}

// validateBeta enforces the Theorem 2 constraint after defaults applied.
func (c Config) validateBeta() error {
	if c.Beta < 2 || c.Beta > c.BlockSize {
		return fmt.Errorf("%w: Beta=%d, BlockSize=%d", ErrBetaRange, c.Beta, c.BlockSize)
	}
	return nil
}

// validateGamma enforces the logarithmic-method constraint after
// defaults applied.
func (c Config) validateGamma() error {
	if c.Gamma < 2 {
		return fmt.Errorf("%w: Gamma=%d", ErrGammaRange, c.Gamma)
	}
	return nil
}

// validateFor runs the structure-specific parameter checks.
func (c Config) validateFor(structure string) error {
	if err := c.validateBlockSize(); err != nil {
		return err
	}
	if !iomodel.ValidIOMode(c.IOMode) {
		return fmt.Errorf("%w %q (want buffered, odirect or uring)", ErrUnknownIOMode, c.IOMode)
	}
	switch structure {
	case "buffered":
		if err := c.validateBeta(); err != nil {
			return err
		}
		return c.validateGamma()
	case "logmethod":
		return c.validateGamma()
	}
	return nil
}

// base carries the model shared by all adapters.
type base struct {
	model *iomodel.Model
}

func (b base) Stats() Stats {
	c := b.model.Counters()
	return Stats{Reads: c.Reads, Writes: c.Writes, WriteBacks: c.WriteBacks}
}

func (b base) MemoryUsed() int64 { return b.model.Mem.Used() }

func (b base) Sync() error { return b.model.Disk.Store().Sync() }

func (b base) Flush() error { return b.model.Disk.Store().Sync() }

func (b base) StoreStats() StoreStats {
	if fs, ok := b.model.Disk.Store().(*iomodel.FileStore); ok {
		return fromFileStats(fs.Stats())
	}
	return StoreStats{}
}

// tableAdapter is a structure adapter plus the checkpoint hook the
// durability layer serializes it through and the bucket-order scan
// hooks the engine's Scan pages over.
type tableAdapter interface {
	Table
	saveState(e *ckpt.Encoder)
	scanBuckets() int
	scanBucket(i int, buf []iomodel.Entry) ([]iomodel.Entry, int)
}

// Structures lists the constructor names accepted by Open.
func Structures() []string {
	return []string{"buffered", "logmethod", "knuth", "linprobe", "extendible", "linear", "twolevel"}
}

// canonicalStructure folds the name aliases Open accepts onto the
// Structures entries; it returns "" for unknown names.
func canonicalStructure(name string) string {
	switch name {
	case "buffered", "core":
		return "buffered"
	case "logmethod":
		return "logmethod"
	case "knuth", "chainhash":
		return "knuth"
	case "linprobe":
		return "linprobe"
	case "extendible", "exthash":
		return "extendible"
	case "linear", "linhash":
		return "linear"
	case "twolevel":
		return "twolevel"
	default:
		return ""
	}
}

// Open constructs a table by structure name; see Structures. With the
// durable file backend (Backend "file" and a named Path), Open reopens
// an existing table at Path — recovering its checkpoint and replaying
// its write-ahead log — and creates a fresh durable table otherwise.
func Open(structure string, cfg Config) (Table, error) {
	canonical := canonicalStructure(structure)
	if canonical == "" {
		return nil, fmt.Errorf("extbuf: unknown structure %q (want one of %v)", structure, Structures())
	}
	return open(canonical, cfg)
}

// New returns the paper's Theorem 2 buffered hash table: o(1) amortized
// insertions with lookups in 1 + O(1/Beta) I/Os. It returns ErrBetaRange
// or ErrGammaRange for parameters outside the paper's preconditions.
func New(cfg Config) (Table, error) { return open("buffered", cfg) }

// NewLogMethod returns the Lemma 5 logarithmic-method table: o(1)
// amortized insertions with O(log_gamma(n/m)) lookups. It returns
// ErrGammaRange for growth factors below 2.
func NewLogMethod(cfg Config) (Table, error) { return open("logmethod", cfg) }

// NewKnuth returns the classical external chaining table sized for
// cfg.ExpectedItems at load factor 1/2: ~1 I/O lookups and inserts.
func NewKnuth(cfg Config) (Table, error) { return open("knuth", cfg) }

// NewLinearProbing returns the block-level linear probing baseline.
func NewLinearProbing(cfg Config) (Table, error) { return open("linprobe", cfg) }

// NewExtendible returns the extendible hashing baseline (Fagin et al.).
// Its in-memory directory needs Theta(n/b) words; size MemoryWords
// accordingly (the constructor cannot know the final n).
func NewExtendible(cfg Config) (Table, error) { return open("extendible", cfg) }

// NewLinear returns the linear hashing baseline (Litwin).
func NewLinear(cfg Config) (Table, error) { return open("linear", cfg) }

// NewTwoLevel returns the Jensen–Pagh-style high-load table sized for
// cfg.ExpectedItems at load factor 1 - 1/sqrt(b).
func NewTwoLevel(cfg Config) (Table, error) { return open("twolevel", cfg) }

// open is the single construction path behind Open and the New*
// wrappers: validate, build the backend, construct or recover the
// structure, and wrap the result in the close guard.
func open(structure string, cfg Config) (Table, error) {
	if cfg.Crash != nil && !cfg.durable() {
		return nil, fmt.Errorf("extbuf: Crash injection requires the durable file backend (Backend \"file\" with a named Path)")
	}
	if cfg.durable() {
		// Defaults are applied inside openDurable, after the superblock
		// merge: a reopen with zero-valued fields adopts the stored
		// parameters rather than colliding with the defaults.
		idx := expiry.New()
		t, err := openDurable(structure, cfg, idx)
		if err != nil {
			return nil, err
		}
		return &guard{t: t, durable: true, exp: idx, now: cfg.clock()}, nil
	}
	cfg = cfg.withDefaults()
	if err := cfg.validateFor(structure); err != nil {
		return nil, err
	}
	store, err := cfg.store()
	if err != nil {
		return nil, err
	}
	model := iomodel.NewModelOn(store, cfg.MemoryWords)
	fn := hashfn.Family(cfg.HashFamily, cfg.Seed)
	inner, err := buildAdapter(structure, model, fn, cfg)
	if err != nil {
		model.Close()
		return nil, err
	}
	return &guard{t: inner, exp: expiry.New(), now: cfg.clock()}, nil
}

// buildAdapter constructs a fresh structure of the given canonical name
// on the model.
func buildAdapter(structure string, model *iomodel.Model, fn hashfn.Fn, cfg Config) (tableAdapter, error) {
	switch structure {
	case "buffered":
		t, err := core.New(model, fn, core.Config{Beta: cfg.Beta, Gamma: cfg.Gamma})
		if err != nil {
			return nil, err
		}
		return &coreTable{base{model}, t}, nil
	case "logmethod":
		t, err := logmethod.New(model, fn, logmethod.Config{Gamma: cfg.Gamma})
		if err != nil {
			return nil, err
		}
		return &logTable{base{model}, t}, nil
	case "knuth":
		nb := 2 * cfg.ExpectedItems / cfg.BlockSize
		if nb < 2 {
			nb = 2
		}
		t, err := chainhash.New(model, fn, nb)
		if err != nil {
			return nil, err
		}
		t.SetMaxLoad(0.75)
		return &chainTable{base{model}, t}, nil
	case "linprobe":
		nb := 2 * cfg.ExpectedItems / cfg.BlockSize
		if nb < 2 {
			nb = 2
		}
		t, err := linprobe.New(model, fn, nb)
		if err != nil {
			return nil, err
		}
		t.SetMaxLoad(0.7)
		return &probeTable{base{model}, t}, nil
	case "extendible":
		t, err := exthash.New(model, fn, 2)
		if err != nil {
			return nil, err
		}
		return &extTable{base{model}, t}, nil
	case "linear":
		t, err := linhash.New(model, fn, 2)
		if err != nil {
			return nil, err
		}
		return &linTable{base{model}, t}, nil
	case "twolevel":
		t, err := twolevel.New(model, fn, twolevel.HomeBucketsFor(cfg.ExpectedItems, cfg.BlockSize))
		if err != nil {
			return nil, err
		}
		return &twoTable{base{model}, t}, nil
	default:
		return nil, fmt.Errorf("extbuf: unknown structure %q (want one of %v)", structure, Structures())
	}
}

// restoreAdapter rebuilds a structure of the given canonical name from
// a checkpoint state payload, on a model whose store already holds the
// checkpointed blocks.
func restoreAdapter(structure string, model *iomodel.Model, fn hashfn.Fn, d *ckpt.Decoder) (tableAdapter, error) {
	switch structure {
	case "buffered":
		t, err := core.Restore(model, fn, d)
		if err != nil {
			return nil, err
		}
		return &coreTable{base{model}, t}, nil
	case "logmethod":
		t, err := logmethod.Restore(model, fn, d)
		if err != nil {
			return nil, err
		}
		return &logTable{base{model}, t}, nil
	case "knuth":
		t, err := chainhash.Restore(model, fn, d)
		if err != nil {
			return nil, err
		}
		return &chainTable{base{model}, t}, nil
	case "linprobe":
		t, err := linprobe.Restore(model, fn, d)
		if err != nil {
			return nil, err
		}
		return &probeTable{base{model}, t}, nil
	case "extendible":
		t, err := exthash.Restore(model, fn, d)
		if err != nil {
			return nil, err
		}
		return &extTable{base{model}, t}, nil
	case "linear":
		t, err := linhash.Restore(model, fn, d)
		if err != nil {
			return nil, err
		}
		return &linTable{base{model}, t}, nil
	case "twolevel":
		t, err := twolevel.Restore(model, fn, d)
		if err != nil {
			return nil, err
		}
		return &twoTable{base{model}, t}, nil
	default:
		return nil, fmt.Errorf("extbuf: unknown structure %q in superblock", structure)
	}
}

type coreTable struct {
	base
	t *core.Table
}

func (c *coreTable) Insert(key, val uint64) error {
	_, err := c.t.Insert(key, val)
	return err
}
func (c *coreTable) Upsert(key, val uint64) error {
	_, err := c.t.Upsert(key, val)
	return err
}
func (c *coreTable) Lookup(key uint64) (uint64, bool) {
	v, ok, _ := c.t.Lookup(key)
	return v, ok
}
func (c *coreTable) Delete(key uint64) bool {
	ok, _ := c.t.Delete(key)
	return ok
}
func (c *coreTable) Len() int { return c.t.Len() }
func (c *coreTable) Close() error {
	c.t.Close()
	return c.model.Close()
}
func (c *coreTable) saveState(e *ckpt.Encoder) { c.t.SaveState(e) }
func (c *coreTable) scanBuckets() int          { return c.t.ScanBuckets() }
func (c *coreTable) scanBucket(i int, buf []iomodel.Entry) ([]iomodel.Entry, int) {
	return c.t.ScanBucket(i, buf)
}

type logTable struct {
	base
	t *logmethod.Table
}

func (l *logTable) Insert(key, val uint64) error {
	_, err := l.t.Insert(key, val)
	return err
}
func (l *logTable) Upsert(key, val uint64) error { return l.Insert(key, val) }
func (l *logTable) Lookup(key uint64) (uint64, bool) {
	v, ok, _ := l.t.Lookup(key)
	return v, ok
}
func (l *logTable) Delete(key uint64) bool {
	ok, _ := l.t.Delete(key)
	return ok
}
func (l *logTable) Len() int { return l.t.Len() }
func (l *logTable) Close() error {
	l.t.Close()
	return l.model.Close()
}
func (l *logTable) saveState(e *ckpt.Encoder) { l.t.SaveState(e) }
func (l *logTable) scanBuckets() int          { return l.t.ScanBuckets() }
func (l *logTable) scanBucket(i int, buf []iomodel.Entry) ([]iomodel.Entry, int) {
	return l.t.ScanBucket(i, buf)
}

type chainTable struct {
	base
	t *chainhash.Table
}

func (c *chainTable) Insert(key, val uint64) error { c.t.Insert(key, val); return nil }
func (c *chainTable) Upsert(key, val uint64) error { return c.Insert(key, val) }
func (c *chainTable) Lookup(key uint64) (uint64, bool) {
	v, ok, _ := c.t.Lookup(key)
	return v, ok
}
func (c *chainTable) Delete(key uint64) bool {
	ok, _ := c.t.Delete(key)
	return ok
}
func (c *chainTable) Len() int { return c.t.Len() }
func (c *chainTable) Close() error {
	c.t.Close()
	return c.model.Close()
}
func (c *chainTable) saveState(e *ckpt.Encoder) { c.t.SaveState(e) }
func (c *chainTable) scanBuckets() int          { return c.t.ScanBuckets() }
func (c *chainTable) scanBucket(i int, buf []iomodel.Entry) ([]iomodel.Entry, int) {
	return c.t.ScanBucket(i, buf)
}

type probeTable struct {
	base
	t *linprobe.Table
}

func (p *probeTable) Insert(key, val uint64) error {
	_, err := p.t.Insert(key, val)
	return err
}
func (p *probeTable) Upsert(key, val uint64) error { return p.Insert(key, val) }
func (p *probeTable) Lookup(key uint64) (uint64, bool) {
	v, ok, _ := p.t.Lookup(key)
	return v, ok
}
func (p *probeTable) Delete(key uint64) bool {
	ok, _ := p.t.Delete(key)
	return ok
}
func (p *probeTable) Len() int { return p.t.Len() }
func (p *probeTable) Close() error {
	p.t.Close()
	return p.model.Close()
}
func (p *probeTable) saveState(e *ckpt.Encoder) { p.t.SaveState(e) }
func (p *probeTable) scanBuckets() int          { return p.t.ScanBuckets() }
func (p *probeTable) scanBucket(i int, buf []iomodel.Entry) ([]iomodel.Entry, int) {
	return p.t.ScanBucket(i, buf)
}

type extTable struct {
	base
	t *exthash.Table
}

func (e *extTable) Insert(key, val uint64) error { e.t.Insert(key, val); return nil }
func (e *extTable) Upsert(key, val uint64) error { return e.Insert(key, val) }
func (e *extTable) Lookup(key uint64) (uint64, bool) {
	v, ok, _ := e.t.Lookup(key)
	return v, ok
}
func (e *extTable) Delete(key uint64) bool {
	ok, _ := e.t.Delete(key)
	return ok
}
func (e *extTable) Len() int { return e.t.Len() }
func (e *extTable) Close() error {
	e.t.Close()
	return e.model.Close()
}
func (e *extTable) saveState(enc *ckpt.Encoder) { e.t.SaveState(enc) }
func (e *extTable) scanBuckets() int            { return e.t.ScanBuckets() }
func (e *extTable) scanBucket(i int, buf []iomodel.Entry) ([]iomodel.Entry, int) {
	return e.t.ScanBucket(i, buf)
}

type linTable struct {
	base
	t *linhash.Table
}

func (l *linTable) Insert(key, val uint64) error { l.t.Insert(key, val); return nil }
func (l *linTable) Upsert(key, val uint64) error { return l.Insert(key, val) }
func (l *linTable) Lookup(key uint64) (uint64, bool) {
	v, ok, _ := l.t.Lookup(key)
	return v, ok
}
func (l *linTable) Delete(key uint64) bool {
	ok, _ := l.t.Delete(key)
	return ok
}
func (l *linTable) Len() int { return l.t.Len() }
func (l *linTable) Close() error {
	l.t.Close()
	return l.model.Close()
}
func (l *linTable) saveState(e *ckpt.Encoder) { l.t.SaveState(e) }
func (l *linTable) scanBuckets() int          { return l.t.ScanBuckets() }
func (l *linTable) scanBucket(i int, buf []iomodel.Entry) ([]iomodel.Entry, int) {
	return l.t.ScanBucket(i, buf)
}

type twoTable struct {
	base
	t *twolevel.Table
}

func (w *twoTable) Insert(key, val uint64) error { w.t.Insert(key, val); return nil }
func (w *twoTable) Upsert(key, val uint64) error { return w.Insert(key, val) }
func (w *twoTable) Lookup(key uint64) (uint64, bool) {
	v, ok, _ := w.t.Lookup(key)
	return v, ok
}
func (w *twoTable) Delete(key uint64) bool {
	ok, _ := w.t.Delete(key)
	return ok
}
func (w *twoTable) Len() int { return w.t.Len() }
func (w *twoTable) Close() error {
	w.t.Close()
	return w.model.Close()
}
func (w *twoTable) saveState(e *ckpt.Encoder) { w.t.SaveState(e) }
func (w *twoTable) scanBuckets() int          { return w.t.ScanBuckets() }
func (w *twoTable) scanBucket(i int, buf []iomodel.Entry) ([]iomodel.Entry, int) {
	return w.t.ScanBucket(i, buf)
}

// guard enforces the close contract around every table returned by the
// constructors: operations on a closed table fail with ErrClosed (or
// zero results from the non-error methods) and a second Close reports
// ErrClosed instead of panicking on released resources. Stats stays
// readable after Close so experiments can harvest counters last.
type guard struct {
	t       Table
	durable bool
	closed  bool
	ship    ShipFunc // replication seam; see Engine.SetShip

	// TTL sidecar (see ttl.go): the expiry index, the millisecond clock
	// it is read against, reusable sweep/scan scratch, and counters.
	// Shared with the durable layer, which fills the index during WAL
	// replay and persists it at every checkpoint.
	exp      *expiry.Index
	now      func() uint64
	sweepBuf []uint64
	scanBuf  []iomodel.Entry
	expStats ExpiryStats
}

// insertOne applies one insert and clears the key's TTL — any plain
// value write makes a key persistent again (Redis semantics), which is
// also what keeps replicas convergent: the shipped record is a plain
// insert/upsert and clears the TTL there too.
func (g *guard) insertOne(key, val uint64) error {
	if err := g.t.Insert(key, val); err != nil {
		return err
	}
	g.exp.Clear(key)
	return nil
}

// upsertOne applies one upsert and clears the key's TTL; see insertOne.
func (g *guard) upsertOne(key, val uint64) error {
	if err := g.t.Upsert(key, val); err != nil {
		return err
	}
	g.exp.Clear(key)
	return nil
}

// deleteOne applies one delete and clears the key's TTL. Deleting a
// key that has already expired (but not yet been swept) still removes
// it physically, but reports a miss — the key was logically absent.
func (g *guard) deleteOne(key uint64) bool {
	expired := g.expired(key)
	ok := g.t.Delete(key)
	g.exp.Clear(key)
	return ok && !expired
}

// expired reports whether key's deadline has passed. The deadline map
// read comes first so keys without a TTL — the hot path — never pay
// the clock read.
func (g *guard) expired(key uint64) bool {
	d, ok := g.exp.Deadline(key)
	return ok && d <= g.now()
}

func (g *guard) Insert(key, val uint64) error {
	if g.closed {
		return ErrClosed
	}
	return g.insertOne(key, val)
}

func (g *guard) Upsert(key, val uint64) error {
	if g.closed {
		return ErrClosed
	}
	return g.upsertOne(key, val)
}

func (g *guard) Lookup(key uint64) (uint64, bool) {
	if g.closed {
		return 0, false
	}
	if g.expired(key) {
		// Lazy expiry: the key is dead the instant its deadline passes,
		// without waiting for the sweep to delete it physically.
		g.expStats.LazyHits++
		return 0, false
	}
	return g.t.Lookup(key)
}

func (g *guard) Delete(key uint64) bool {
	if g.closed {
		return false
	}
	return g.deleteOne(key)
}

func (g *guard) Len() int {
	if g.closed {
		return 0
	}
	return g.t.Len()
}

func (g *guard) Stats() Stats { return g.t.Stats() }

func (g *guard) StoreStats() StoreStats { return g.t.StoreStats() }

func (g *guard) MemoryUsed() int64 { return g.t.MemoryUsed() }

func (g *guard) Sync() error {
	if g.closed {
		return ErrClosed
	}
	return g.t.Sync()
}

func (g *guard) Flush() error {
	if g.closed {
		return ErrClosed
	}
	return g.t.Flush()
}

func (g *guard) Close() error {
	if g.closed {
		return ErrClosed
	}
	g.closed = true
	return g.t.Close()
}
