package extbuf

import (
	"errors"
	"fmt"
	"time"

	"extbuf/internal/chainhash"
	"extbuf/internal/core"
	"extbuf/internal/exthash"
	"extbuf/internal/hashfn"
	"extbuf/internal/iomodel"
	"extbuf/internal/linhash"
	"extbuf/internal/linprobe"
	"extbuf/internal/logmethod"
	"extbuf/internal/twolevel"
)

// Stats reports cumulative I/O counts of a table's simulated disk.
// IOs = Reads + Writes is the seek-dominated cost the paper measures;
// WriteBacks are writes issued immediately after reading the same block,
// free under the paper's footnote-2 convention.
type Stats struct {
	Reads      int64
	Writes     int64
	WriteBacks int64
}

// IOs returns the seek-dominated I/O count.
func (s Stats) IOs() int64 { return s.Reads + s.Writes }

// Table is a dynamic external hash table storing one-word keys and
// values, the paper's atomic items. Implementations are not safe for
// concurrent use.
type Table interface {
	// Insert stores (key, val). For the buffered table (New) the key
	// must not already be present — the paper's insert-only model; this
	// is what keeps its lookups at 1 + O(1/beta) I/Os. Use Upsert for
	// read-modify-write. Baseline tables treat Insert as Upsert.
	Insert(key, val uint64) error
	// Upsert stores (key, val) whether or not key is present.
	Upsert(key, val uint64) error
	// Lookup returns the value stored for key.
	Lookup(key uint64) (uint64, bool)
	// Delete removes key, reporting whether it was present.
	Delete(key uint64) bool
	// Len returns the number of stored entries.
	Len() int
	// Stats returns cumulative I/O counts since construction.
	Stats() Stats
	// MemoryUsed returns the words of main memory the table currently
	// charges against its budget.
	MemoryUsed() int64
	// Flush forces any state buffered by the storage backend down to
	// durable storage (dirty page-cache frames plus an fsync for the
	// "file" backend; a no-op for in-memory backends).
	Flush() error
	// Close releases the table's memory reservations and the storage
	// backend's resources, returning any error the backend reports
	// (flush or close failures of file-backed stores). The table must
	// not be used afterwards.
	Close() error
}

// Config parametrizes table construction.
type Config struct {
	// BlockSize is b, the number of items per disk block (default 64;
	// must be >= 8 — the paper assumes b > log u).
	BlockSize int
	// MemoryWords is m, the main-memory budget in words (default 1024).
	MemoryWords int64
	// Beta is the Theorem 2 merge parameter (default 8; 2 <= Beta <= b).
	// Lookups cost 1 + O(1/Beta); insertions O(Beta/b + log/b).
	Beta int
	// Gamma is the logarithmic-method growth factor (default 2).
	Gamma int
	// ExpectedItems pre-sizes fixed-capacity baselines (default 1 << 16).
	ExpectedItems int
	// Seed drives the hash function; runs with equal seeds are
	// identical (default 1).
	Seed uint64
	// HashFamily selects "ideal" (default), "multshift" or "tabulation".
	HashFamily string
	// Backend selects the block-store backend: "mem" (default) is the
	// paper's free in-memory simulated store, "file" persists blocks to
	// a real file behind a page cache, "latency" injects seek/transfer
	// delays into an in-memory store. I/O counters are identical across
	// backends; only the real cost of the bytes differs.
	Backend string
	// Path is the backing file for the "file" backend. Empty selects a
	// fresh temporary file that is removed when the table is closed.
	Path string
	// CacheBlocks is the "file" backend's page-cache capacity in blocks
	// (default iomodel.DefaultCacheBlocks).
	CacheBlocks int
	// SeekDelay and TransferDelay are the "latency" backend's per-block
	// delays. If both are zero the backend defaults to a 100µs seek and
	// 25µs transfer.
	SeekDelay     time.Duration
	TransferDelay time.Duration
	// FlushPolicy selects when mutations submitted to the Sharded
	// engine complete: FlushSync (default) makes every Insert/Upsert
	// call — single or batch — return only after its shard workers have
	// applied it, while FlushAsync enqueues mutations and returns
	// immediately (write-behind), deferring application errors and
	// durability to the next Flush or Close barrier. Lookups, deletes
	// and Len always synchronize behind queued writes of their shard,
	// so read-your-writes holds under both policies. Single (unsharded)
	// tables ignore the field.
	FlushPolicy string
}

// FlushPolicy values accepted by Config.FlushPolicy.
const (
	// FlushSync completes every mutation before its call returns.
	FlushSync = "sync"
	// FlushAsync queues mutations (write-behind) until a Flush or
	// Close barrier.
	FlushAsync = "async"
)

func (c Config) withDefaults() Config {
	if c.BlockSize == 0 {
		c.BlockSize = 64
	}
	if c.MemoryWords == 0 {
		c.MemoryWords = 1024
	}
	if c.Beta == 0 {
		c.Beta = 8
	}
	if c.Gamma == 0 {
		c.Gamma = 2
	}
	if c.ExpectedItems == 0 {
		c.ExpectedItems = 1 << 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Backend == "" {
		c.Backend = "mem"
	}
	if c.Backend == "latency" && c.SeekDelay == 0 && c.TransferDelay == 0 {
		c.SeekDelay = 100 * time.Microsecond
		c.TransferDelay = 25 * time.Microsecond
	}
	if c.FlushPolicy == "" {
		c.FlushPolicy = FlushSync
	}
	return c
}

// ErrBlockTooSmall is returned for block sizes under 8 items.
var ErrBlockTooSmall = errors.New("extbuf: block size must be >= 8 items")

// ErrBetaRange is returned when Config.Beta violates 2 <= Beta <= BlockSize
// (the paper requires 2 <= beta <= b).
var ErrBetaRange = errors.New("extbuf: Beta must satisfy 2 <= Beta <= BlockSize")

// ErrGammaRange is returned when Config.Gamma is below the logarithmic
// method's minimum growth factor of 2.
var ErrGammaRange = errors.New("extbuf: Gamma must be >= 2")

// ErrUnknownBackend is returned for Backend values other than "mem",
// "file" and "latency".
var ErrUnknownBackend = errors.New("extbuf: unknown backend")

// ErrUnknownFlushPolicy is returned for FlushPolicy values other than
// FlushSync and FlushAsync.
var ErrUnknownFlushPolicy = errors.New("extbuf: unknown flush policy")

// ErrBatchLength is returned by batch operations whose key and value
// slices differ in length.
var ErrBatchLength = errors.New("extbuf: batch keys and values differ in length")

// ErrClosed is returned by operations on a closed Sharded engine.
var ErrClosed = errors.New("extbuf: table is closed")

// validateBlockSize enforces the paper's b > log u assumption. It is the
// first check of every constructor, so ErrBlockTooSmall takes precedence
// over parameter-range errors.
func (c Config) validateBlockSize() error {
	if c.BlockSize < 8 {
		return ErrBlockTooSmall
	}
	return nil
}

func (c Config) model() (*iomodel.Model, hashfn.Fn, error) {
	if err := c.validateBlockSize(); err != nil {
		return nil, nil, err
	}
	store, err := c.store()
	if err != nil {
		return nil, nil, err
	}
	return iomodel.NewModelOn(store, c.MemoryWords), hashfn.Family(c.HashFamily, c.Seed), nil
}

// store builds the block-store backend selected by c.Backend.
func (c Config) store() (iomodel.BlockStore, error) {
	switch c.Backend {
	case "", "mem":
		return iomodel.NewMemStore(c.BlockSize), nil
	case "file":
		if c.Path == "" {
			return iomodel.NewTempFileStore(c.BlockSize, c.CacheBlocks)
		}
		return iomodel.NewFileStore(c.Path, c.BlockSize, c.CacheBlocks)
	case "latency":
		return iomodel.NewLatencyStore(iomodel.NewMemStore(c.BlockSize),
			iomodel.LatencyConfig{Seek: c.SeekDelay, Transfer: c.TransferDelay}), nil
	default:
		return nil, fmt.Errorf("%w %q (want mem, file or latency)", ErrUnknownBackend, c.Backend)
	}
}

// validateBeta enforces the Theorem 2 constraint after defaults applied.
func (c Config) validateBeta() error {
	if c.Beta < 2 || c.Beta > c.BlockSize {
		return fmt.Errorf("%w: Beta=%d, BlockSize=%d", ErrBetaRange, c.Beta, c.BlockSize)
	}
	return nil
}

// validateGamma enforces the logarithmic-method constraint after
// defaults applied.
func (c Config) validateGamma() error {
	if c.Gamma < 2 {
		return fmt.Errorf("%w: Gamma=%d", ErrGammaRange, c.Gamma)
	}
	return nil
}

// base carries the model shared by all adapters.
type base struct {
	model *iomodel.Model
}

func (b base) Stats() Stats {
	c := b.model.Counters()
	return Stats{Reads: c.Reads, Writes: c.Writes, WriteBacks: c.WriteBacks}
}

func (b base) MemoryUsed() int64 { return b.model.Mem.Used() }

func (b base) Flush() error { return b.model.Disk.Store().Sync() }

// New returns the paper's Theorem 2 buffered hash table: o(1) amortized
// insertions with lookups in 1 + O(1/Beta) I/Os. It returns ErrBetaRange
// or ErrGammaRange for parameters outside the paper's preconditions.
func New(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validateBlockSize(); err != nil {
		return nil, err
	}
	if err := cfg.validateBeta(); err != nil {
		return nil, err
	}
	if err := cfg.validateGamma(); err != nil {
		return nil, err
	}
	model, fn, err := cfg.model()
	if err != nil {
		return nil, err
	}
	t, err := core.New(model, fn, core.Config{Beta: cfg.Beta, Gamma: cfg.Gamma})
	if err != nil {
		model.Close()
		return nil, err
	}
	return &coreTable{base{model}, t}, nil
}

type coreTable struct {
	base
	t *core.Table
}

func (c *coreTable) Insert(key, val uint64) error {
	_, err := c.t.Insert(key, val)
	return err
}
func (c *coreTable) Upsert(key, val uint64) error {
	_, err := c.t.Upsert(key, val)
	return err
}
func (c *coreTable) Lookup(key uint64) (uint64, bool) {
	v, ok, _ := c.t.Lookup(key)
	return v, ok
}
func (c *coreTable) Delete(key uint64) bool {
	ok, _ := c.t.Delete(key)
	return ok
}
func (c *coreTable) Len() int { return c.t.Len() }
func (c *coreTable) Close() error {
	c.t.Close()
	return c.model.Close()
}

// NewLogMethod returns the Lemma 5 logarithmic-method table: o(1)
// amortized insertions with O(log_gamma(n/m)) lookups. It returns
// ErrGammaRange for growth factors below 2.
func NewLogMethod(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validateGamma(); err != nil {
		return nil, err
	}
	model, fn, err := cfg.model()
	if err != nil {
		return nil, err
	}
	t, err := logmethod.New(model, fn, logmethod.Config{Gamma: cfg.Gamma})
	if err != nil {
		model.Close()
		return nil, err
	}
	return &logTable{base{model}, t}, nil
}

type logTable struct {
	base
	t *logmethod.Table
}

func (l *logTable) Insert(key, val uint64) error {
	_, err := l.t.Insert(key, val)
	return err
}
func (l *logTable) Upsert(key, val uint64) error { return l.Insert(key, val) }
func (l *logTable) Lookup(key uint64) (uint64, bool) {
	v, ok, _ := l.t.Lookup(key)
	return v, ok
}
func (l *logTable) Delete(key uint64) bool {
	ok, _ := l.t.Delete(key)
	return ok
}
func (l *logTable) Len() int { return l.t.Len() }
func (l *logTable) Close() error {
	l.t.Close()
	return l.model.Close()
}

// NewKnuth returns the classical external chaining table sized for
// cfg.ExpectedItems at load factor 1/2: ~1 I/O lookups and inserts.
func NewKnuth(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	model, fn, err := cfg.model()
	if err != nil {
		return nil, err
	}
	nb := 2 * cfg.ExpectedItems / cfg.BlockSize
	if nb < 2 {
		nb = 2
	}
	t, err := chainhash.New(model, fn, nb)
	if err != nil {
		model.Close()
		return nil, err
	}
	t.SetMaxLoad(0.75)
	return &chainTable{base{model}, t}, nil
}

type chainTable struct {
	base
	t *chainhash.Table
}

func (c *chainTable) Insert(key, val uint64) error { c.t.Insert(key, val); return nil }
func (c *chainTable) Upsert(key, val uint64) error { return c.Insert(key, val) }
func (c *chainTable) Lookup(key uint64) (uint64, bool) {
	v, ok, _ := c.t.Lookup(key)
	return v, ok
}
func (c *chainTable) Delete(key uint64) bool {
	ok, _ := c.t.Delete(key)
	return ok
}
func (c *chainTable) Len() int { return c.t.Len() }
func (c *chainTable) Close() error {
	c.t.Close()
	return c.model.Close()
}

// NewLinearProbing returns the block-level linear probing baseline.
func NewLinearProbing(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	model, fn, err := cfg.model()
	if err != nil {
		return nil, err
	}
	nb := 2 * cfg.ExpectedItems / cfg.BlockSize
	if nb < 2 {
		nb = 2
	}
	t, err := linprobe.New(model, fn, nb)
	if err != nil {
		model.Close()
		return nil, err
	}
	t.SetMaxLoad(0.7)
	return &probeTable{base{model}, t}, nil
}

type probeTable struct {
	base
	t *linprobe.Table
}

func (p *probeTable) Insert(key, val uint64) error {
	_, err := p.t.Insert(key, val)
	return err
}
func (p *probeTable) Upsert(key, val uint64) error { return p.Insert(key, val) }
func (p *probeTable) Lookup(key uint64) (uint64, bool) {
	v, ok, _ := p.t.Lookup(key)
	return v, ok
}
func (p *probeTable) Delete(key uint64) bool {
	ok, _ := p.t.Delete(key)
	return ok
}
func (p *probeTable) Len() int { return p.t.Len() }
func (p *probeTable) Close() error {
	p.t.Close()
	return p.model.Close()
}

// NewExtendible returns the extendible hashing baseline (Fagin et al.).
// Its in-memory directory needs Theta(n/b) words; size MemoryWords
// accordingly (the constructor cannot know the final n).
func NewExtendible(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	model, fn, err := cfg.model()
	if err != nil {
		return nil, err
	}
	t, err := exthash.New(model, fn, 2)
	if err != nil {
		model.Close()
		return nil, err
	}
	return &extTable{base{model}, t}, nil
}

type extTable struct {
	base
	t *exthash.Table
}

func (e *extTable) Insert(key, val uint64) error { e.t.Insert(key, val); return nil }
func (e *extTable) Upsert(key, val uint64) error { return e.Insert(key, val) }
func (e *extTable) Lookup(key uint64) (uint64, bool) {
	v, ok, _ := e.t.Lookup(key)
	return v, ok
}
func (e *extTable) Delete(key uint64) bool {
	ok, _ := e.t.Delete(key)
	return ok
}
func (e *extTable) Len() int { return e.t.Len() }
func (e *extTable) Close() error {
	e.t.Close()
	return e.model.Close()
}

// NewLinear returns the linear hashing baseline (Litwin).
func NewLinear(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	model, fn, err := cfg.model()
	if err != nil {
		return nil, err
	}
	t, err := linhash.New(model, fn, 2)
	if err != nil {
		model.Close()
		return nil, err
	}
	return &linTable{base{model}, t}, nil
}

type linTable struct {
	base
	t *linhash.Table
}

func (l *linTable) Insert(key, val uint64) error { l.t.Insert(key, val); return nil }
func (l *linTable) Upsert(key, val uint64) error { return l.Insert(key, val) }
func (l *linTable) Lookup(key uint64) (uint64, bool) {
	v, ok, _ := l.t.Lookup(key)
	return v, ok
}
func (l *linTable) Delete(key uint64) bool {
	ok, _ := l.t.Delete(key)
	return ok
}
func (l *linTable) Len() int { return l.t.Len() }
func (l *linTable) Close() error {
	l.t.Close()
	return l.model.Close()
}

// NewTwoLevel returns the Jensen–Pagh-style high-load table sized for
// cfg.ExpectedItems at load factor 1 - 1/sqrt(b).
func NewTwoLevel(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	model, fn, err := cfg.model()
	if err != nil {
		return nil, err
	}
	t, err := twolevel.New(model, fn, twolevel.HomeBucketsFor(cfg.ExpectedItems, cfg.BlockSize))
	if err != nil {
		model.Close()
		return nil, err
	}
	return &twoTable{base{model}, t}, nil
}

type twoTable struct {
	base
	t *twolevel.Table
}

func (w *twoTable) Insert(key, val uint64) error { w.t.Insert(key, val); return nil }
func (w *twoTable) Upsert(key, val uint64) error { return w.Insert(key, val) }
func (w *twoTable) Lookup(key uint64) (uint64, bool) {
	v, ok, _ := w.t.Lookup(key)
	return v, ok
}
func (w *twoTable) Delete(key uint64) bool {
	ok, _ := w.t.Delete(key)
	return ok
}
func (w *twoTable) Len() int { return w.t.Len() }
func (w *twoTable) Close() error {
	w.t.Close()
	return w.model.Close()
}

// Structures lists the constructor names accepted by Open.
func Structures() []string {
	return []string{"buffered", "logmethod", "knuth", "linprobe", "extendible", "linear", "twolevel"}
}

// Open constructs a table by structure name; see Structures.
func Open(structure string, cfg Config) (Table, error) {
	switch structure {
	case "buffered", "core":
		return New(cfg)
	case "logmethod":
		return NewLogMethod(cfg)
	case "knuth", "chainhash":
		return NewKnuth(cfg)
	case "linprobe":
		return NewLinearProbing(cfg)
	case "extendible", "exthash":
		return NewExtendible(cfg)
	case "linear", "linhash":
		return NewLinear(cfg)
	case "twolevel":
		return NewTwoLevel(cfg)
	default:
		return nil, fmt.Errorf("extbuf: unknown structure %q (want one of %v)", structure, Structures())
	}
}
