package extbuf_test

import (
	"errors"
	"path/filepath"
	"testing"
	"testing/quick"

	"extbuf"
	"extbuf/internal/xrand"
)

// allStructures builds one table of every kind with small parameters.
func allStructures(t *testing.T) map[string]extbuf.Table {
	t.Helper()
	out := map[string]extbuf.Table{}
	for _, name := range extbuf.Structures() {
		cfg := extbuf.Config{BlockSize: 16, MemoryWords: 512, ExpectedItems: 4096, Seed: 7}
		if name == "extendible" {
			cfg.MemoryWords = 1 << 16 // directory space
		}
		tab, err := extbuf.Open(name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = tab
	}
	return out
}

func TestAllStructuresBasicOps(t *testing.T) {
	for name, tab := range allStructures(t) {
		rng := xrand.New(11)
		keys := make([]uint64, 2000)
		for i := range keys {
			keys[i] = rng.Uint64()
			if err := tab.Insert(keys[i], uint64(i)); err != nil {
				t.Fatalf("%s: insert: %v", name, err)
			}
		}
		if tab.Len() != 2000 {
			t.Fatalf("%s: Len = %d", name, tab.Len())
		}
		for i, k := range keys {
			v, ok := tab.Lookup(k)
			if !ok || v != uint64(i) {
				t.Fatalf("%s: key %d lost (ok=%v v=%d)", name, k, ok, v)
			}
		}
		if _, ok := tab.Lookup(0xdeadbeefdeadbeef); ok {
			t.Fatalf("%s: found absent key", name)
		}
		if tab.Stats().IOs() == 0 {
			t.Fatalf("%s: no I/O recorded", name)
		}
		for i, k := range keys {
			if i%2 == 0 && !tab.Delete(k) {
				t.Fatalf("%s: delete failed", name)
			}
		}
		if tab.Len() != 1000 {
			t.Fatalf("%s: Len = %d after deletes", name, tab.Len())
		}
		tab.Close()
	}
}

func TestUpsertSemantics(t *testing.T) {
	for name, tab := range allStructures(t) {
		for i := 0; i < 500; i++ {
			if err := tab.Upsert(uint64(i%50), uint64(i)); err != nil {
				t.Fatalf("%s: upsert: %v", name, err)
			}
		}
		if tab.Len() != 50 {
			t.Fatalf("%s: Len = %d, want 50 distinct keys", name, tab.Len())
		}
		for k := 0; k < 50; k++ {
			v, ok := tab.Lookup(uint64(k))
			want := uint64(450 + k)
			if !ok || v != want {
				t.Fatalf("%s: key %d = %d want %d", name, k, v, want)
			}
		}
		tab.Close()
	}
}

func TestConfigDefaults(t *testing.T) {
	tab, err := extbuf.New(extbuf.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Close()
	if err := tab.Insert(1, 2); err != nil {
		t.Fatal(err)
	}
	v, ok := tab.Lookup(1)
	if !ok || v != 2 {
		t.Fatal("default-config table broken")
	}
}

func TestBlockTooSmall(t *testing.T) {
	_, err := extbuf.New(extbuf.Config{BlockSize: 4})
	if !errors.Is(err, extbuf.ErrBlockTooSmall) {
		t.Fatalf("err = %v", err)
	}
}

func TestOpenUnknown(t *testing.T) {
	if _, err := extbuf.Open("btree", extbuf.Config{}); err == nil {
		t.Fatal("unknown structure accepted")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() extbuf.Stats {
		tab, err := extbuf.New(extbuf.Config{BlockSize: 16, MemoryWords: 256, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		defer tab.Close()
		rng := xrand.New(5)
		for i := 0; i < 5000; i++ {
			if err := tab.Insert(rng.Uint64(), uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		return tab.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different I/O counts: %+v vs %+v", a, b)
	}
}

func TestMemoryUsedReported(t *testing.T) {
	tab, err := extbuf.New(extbuf.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tab.MemoryUsed() <= 0 {
		t.Fatal("no memory charge visible")
	}
	tab.Close()
}

func TestBufferedMatchesModelProperty(t *testing.T) {
	f := func(seed uint64, ops []byte) bool {
		tab, err := extbuf.New(extbuf.Config{BlockSize: 8, MemoryWords: 128, Seed: seed | 1})
		if err != nil {
			return false
		}
		defer tab.Close()
		ref := map[uint64]uint64{}
		r := xrand.New(seed)
		for _, op := range ops {
			key := uint64(op % 40)
			switch op % 4 {
			case 0, 1:
				v := r.Uint64()
				if tab.Upsert(key, v) != nil {
					return false
				}
				ref[key] = v
			case 2:
				ok := tab.Delete(key)
				_, inRef := ref[key]
				if ok != inRef {
					return false
				}
				delete(ref, key)
			default:
				v, ok := tab.Lookup(key)
				rv, rok := ref[key]
				if ok != rok || (ok && v != rv) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestCloseSemantics: double Close and use-after-Close must return
// errors (or zero results from the non-error methods), never panic —
// for every structure and every backend family.
func TestCloseSemantics(t *testing.T) {
	open := func(t *testing.T, name, backend string) extbuf.Table {
		cfg := extbuf.Config{BlockSize: 16, MemoryWords: 512, ExpectedItems: 1024, Seed: 7, Backend: backend}
		if backend == "file-durable" {
			cfg.Backend = "file"
			cfg.Path = filepath.Join(t.TempDir(), "close.tbl")
		}
		tab, err := extbuf.Open(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	for _, backend := range []string{"mem", "file", "file-durable"} {
		for _, name := range extbuf.Structures() {
			t.Run(backend+"/"+name, func(t *testing.T) {
				tab := open(t, name, backend)
				if err := tab.Insert(1, 2); err != nil {
					t.Fatal(err)
				}
				if err := tab.Close(); err != nil {
					t.Fatalf("first close: %v", err)
				}
				if err := tab.Close(); !errors.Is(err, extbuf.ErrClosed) {
					t.Fatalf("double close: err = %v, want ErrClosed", err)
				}
				if err := tab.Insert(3, 4); !errors.Is(err, extbuf.ErrClosed) {
					t.Fatalf("insert after close: err = %v, want ErrClosed", err)
				}
				if err := tab.Upsert(3, 4); !errors.Is(err, extbuf.ErrClosed) {
					t.Fatalf("upsert after close: err = %v, want ErrClosed", err)
				}
				if err := tab.Flush(); !errors.Is(err, extbuf.ErrClosed) {
					t.Fatalf("flush after close: err = %v, want ErrClosed", err)
				}
				if _, ok := tab.Lookup(1); ok {
					t.Fatal("lookup after close reported a hit")
				}
				if tab.Delete(1) {
					t.Fatal("delete after close reported a hit")
				}
				if n := tab.Len(); n != 0 {
					t.Fatalf("Len after close = %d, want 0", n)
				}
			})
		}
	}
}
