package extbuf_test

import (
	"path/filepath"
	"testing"

	"extbuf"
)

// FuzzTableOps decodes a byte stream into operations over a small-B
// durable table — upserts, fresh-key inserts, deletes, lookups, flush
// barriers and close/reopen transitions — and differentially checks
// every observation against a map reference model. The seed corpus
// lives under testdata/fuzz/FuzzTableOps; CI runs a short -fuzz smoke
// on top of the corpus replay that plain `go test` performs.
func FuzzTableOps(f *testing.F) {
	f.Add(uint64(1), []byte{0x00, 0x11, 0x22, 0x85, 0x46, 0x97})
	f.Add(uint64(42), []byte("insert-delete-reopen"))
	f.Fuzz(func(t *testing.T, seed uint64, ops []byte) {
		if len(ops) > 512 {
			ops = ops[:512]
		}
		path := filepath.Join(t.TempDir(), "fuzz.tbl")
		cfg := extbuf.Config{
			BlockSize: 8, MemoryWords: 256, ExpectedItems: 128,
			Seed: seed | 1, Backend: "file", Path: path, CacheBlocks: 4,
		}
		tab, err := extbuf.Open("buffered", cfg)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		// Close the CURRENT table at exit: reopen ops rebind tab, and a
		// plain `defer tab.Close()` would close the stale original and
		// leak the final table's file descriptors across fuzz iterations.
		defer func() { tab.Close() }()
		ref := map[uint64]uint64{}
		val := uint64(0)
		for i, b := range ops {
			key := uint64(b >> 3) // 32 keys: constant collisions
			val++
			switch b % 7 {
			case 0, 1: // upsert
				if err := tab.Upsert(key, val); err != nil {
					t.Fatalf("op %d: upsert(%d): %v", i, key, err)
				}
				ref[key] = val
			case 2: // insert honoring the fresh-key contract
				if _, present := ref[key]; present {
					continue
				}
				if err := tab.Insert(key, val); err != nil {
					t.Fatalf("op %d: insert(%d): %v", i, key, err)
				}
				ref[key] = val
			case 3: // delete
				got := tab.Delete(key)
				_, want := ref[key]
				if got != want {
					t.Fatalf("op %d: delete(%d) = %v, reference %v", i, key, got, want)
				}
				delete(ref, key)
			case 4: // flush barrier
				if err := tab.Flush(); err != nil {
					t.Fatalf("op %d: flush: %v", i, err)
				}
			case 5: // close + reopen through the recovery path
				if err := tab.Close(); err != nil {
					t.Fatalf("op %d: close: %v", i, err)
				}
				if tab, err = extbuf.Open("buffered", cfg); err != nil {
					t.Fatalf("op %d: reopen: %v", i, err)
				}
			default: // lookup
				v, ok := tab.Lookup(key)
				rv, rok := ref[key]
				if ok != rok || (ok && v != rv) {
					t.Fatalf("op %d: lookup(%d) = (%d,%v), reference (%d,%v)", i, key, v, ok, rv, rok)
				}
			}
		}
		for k, want := range ref {
			if v, ok := tab.Lookup(k); !ok || v != want {
				t.Fatalf("final: key %d = (%d,%v), reference %d", k, v, ok, want)
			}
		}
		if got := tab.Len(); got != len(ref) {
			t.Fatalf("final: Len = %d, reference %d", got, len(ref))
		}
	})
}
