module extbuf

go 1.24
