// Package binball simulates the (s, p, t) bin-ball game of §2 of Wei,
// Yi, Zhang (SPAA 2009), the combinatorial engine of the paper's
// insertion lower bound.
//
// In an (s, p, t) game, s balls are thrown independently into r >= 1/p
// bins, each ball landing in any particular bin with probability at most
// p. An adversary then removes t balls so that the remaining s - t balls
// occupy as few bins as possible; the cost of the game is the number of
// bins still occupied.
//
// The game models one round of insertions against a hash table using a
// good address function: balls are the round's items, bins are the disk
// blocks of the good index area, and the adversary's removals are the
// items the structure may hide in memory or the slow zone. The cost
// lower-bounds the round's I/Os, because every fast-zone item forces a
// touch of its own block.
//
// Lemma 3 (sparse regime, sp <= 1/3): cost >= (1-mu)(1-sp)s - t with
// probability >= 1 - exp(-mu^2 s / 3).
//
// Lemma 4 (dense regime, s/2 >= t, s/2 >= 1/p): cost >= 1/(20p) with
// probability >= 1 - 2^(-Omega(s)).
//
// The Monte Carlo drivers here measure the exact game cost (the greedy
// adversary below is optimal) so the experiments can place the measured
// distribution against both bounds.
package binball

import (
	"fmt"
	"sort"

	"extbuf/internal/stats"
	"extbuf/internal/xrand"
)

// Game describes an (s, p, t) bin-ball game realized with r equiprobable
// bins (p = 1/r, the hardest case for the player and the one the
// paper's reduction produces).
type Game struct {
	S int // balls thrown
	R int // bins (ball lands in each with probability exactly 1/R)
	T int // balls the adversary removes
}

// P returns the per-bin probability 1/R.
func (g Game) P() float64 { return 1 / float64(g.R) }

// Validate reports parameter errors.
func (g Game) Validate() error {
	if g.S < 0 || g.T < 0 || g.R < 1 {
		return fmt.Errorf("binball: invalid game %+v", g)
	}
	if g.T > g.S {
		return fmt.Errorf("binball: t=%d exceeds s=%d", g.T, g.S)
	}
	return nil
}

// Play runs one game and returns its exact cost: the minimum number of
// bins that can stay occupied after the adversary removes T balls.
//
// The adversary is greedy and provably optimal: to empty the largest
// number of bins with a fixed removal budget, empty bins in increasing
// order of occupancy (exchanging any other removal multiset for this one
// never empties fewer bins).
func Play(g Game, rng *xrand.Rand) int {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	counts := make([]int, g.R)
	occupied := 0
	for i := 0; i < g.S; i++ {
		b := rng.Intn(g.R)
		if counts[b] == 0 {
			occupied++
		}
		counts[b]++
	}
	return RemoveOptimally(counts, occupied, g.T)
}

// RemoveOptimally applies the optimal adversary to an occupancy vector:
// it removes up to t balls, emptying smallest bins first, and returns
// the number of bins still occupied. counts is not modified.
func RemoveOptimally(counts []int, occupied, t int) int {
	nonzero := make([]int, 0, occupied)
	for _, c := range counts {
		if c > 0 {
			nonzero = append(nonzero, c)
		}
	}
	sort.Ints(nonzero)
	remaining := t
	emptied := 0
	for _, c := range nonzero {
		if remaining < c {
			break
		}
		remaining -= c
		emptied++
	}
	return len(nonzero) - emptied
}

// MonteCarlo plays the game trials times and returns the cost summary
// together with the empirical probability that the cost fell below
// threshold (pass a lemma bound to estimate its failure probability).
func MonteCarlo(g Game, rng *xrand.Rand, trials int, threshold float64) (sum stats.Summary, below float64) {
	belowCount := 0
	for i := 0; i < trials; i++ {
		c := Play(g, rng)
		sum.Add(float64(c))
		if float64(c) < threshold {
			belowCount++
		}
	}
	return sum, float64(belowCount) / float64(trials)
}

// ExpectedDistinct returns the expectation r(1 - (1 - 1/r)^s) of the
// number of distinct bins hit by s balls in r bins — the t = 0 cost in
// expectation, and the quantity that governs the cleaning cost of the
// staged strategy (cost per item = distinct/s, which is ~1 when s << r
// and ~r/s when s >> r: the two regimes of Figure 1).
func ExpectedDistinct(s, r int) float64 {
	fr := float64(r)
	q := 1.0
	base := 1 - 1/fr
	// Exponentiation by squaring on the float base for large s.
	e := s
	for e > 0 {
		if e&1 == 1 {
			q *= base
		}
		base *= base
		e >>= 1
	}
	return fr * (1 - q)
}

// Lemma3Threshold returns the Lemma 3 cost bound for game g with slack
// mu, and whether the lemma's precondition sp <= 1/3 holds.
func Lemma3Threshold(g Game, mu float64) (bound float64, applies bool) {
	bound, _ = stats.Lemma3Bound(g.S, g.P(), g.T, mu)
	return bound, stats.Lemma3Applies(g.S, g.P())
}

// Lemma4Threshold returns the Lemma 4 cost bound 1/(20p) for game g and
// whether the preconditions s/2 >= t, s/2 >= 1/p hold.
func Lemma4Threshold(g Game) (bound float64, applies bool) {
	return stats.Lemma4Bound(g.P()), stats.Lemma4Applies(g.S, g.P(), g.T)
}
