package binball

import (
	"math"
	"testing"
	"testing/quick"

	"extbuf/internal/xrand"
)

func TestValidate(t *testing.T) {
	if (Game{S: 10, R: 5, T: 2}).Validate() != nil {
		t.Fatal("valid game rejected")
	}
	for _, g := range []Game{
		{S: -1, R: 5, T: 0},
		{S: 5, R: 0, T: 0},
		{S: 5, R: 5, T: 6},
	} {
		if g.Validate() == nil {
			t.Fatalf("invalid game %+v accepted", g)
		}
	}
}

func TestPlayBounds(t *testing.T) {
	rng := xrand.New(1)
	f := func(sRaw, rRaw, tRaw uint16) bool {
		s := int(sRaw%200) + 1
		r := int(rRaw%50) + 1
		tt := int(tRaw) % (s + 1)
		g := Game{S: s, R: r, T: tt}
		c := Play(g, rng)
		if c < 0 || c > s-tt && c > r {
			return false
		}
		// Cost can never exceed the number of surviving balls or bins.
		if c > s-tt || c > r {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPlayNoRemoval(t *testing.T) {
	// With t=0 the cost is the number of distinct bins hit; its mean
	// must match r(1-(1-1/r)^s).
	rng := xrand.New(2)
	g := Game{S: 500, R: 200, T: 0}
	var sum float64
	const trials = 3000
	for i := 0; i < trials; i++ {
		sum += float64(Play(g, rng))
	}
	mean := sum / trials
	want := ExpectedDistinct(g.S, g.R)
	if math.Abs(mean-want)/want > 0.02 {
		t.Fatalf("mean %.2f want %.2f", mean, want)
	}
}

func TestPlayFullRemoval(t *testing.T) {
	rng := xrand.New(3)
	g := Game{S: 50, R: 10, T: 50}
	if c := Play(g, rng); c != 0 {
		t.Fatalf("removing all balls must cost 0, got %d", c)
	}
}

func TestRemoveOptimally(t *testing.T) {
	counts := []int{3, 1, 2, 0, 5}
	// t=1: empty the 1-bin -> 3 occupied remain.
	if got := RemoveOptimally(counts, 4, 1); got != 3 {
		t.Fatalf("t=1: %d", got)
	}
	// t=3: empty 1 and 2 -> 2 remain.
	if got := RemoveOptimally(counts, 4, 3); got != 2 {
		t.Fatalf("t=3: %d", got)
	}
	// t=2: can only empty the 1-bin (2 < 1+2 only partially) -> 3 remain.
	if got := RemoveOptimally(counts, 4, 2); got != 3 {
		t.Fatalf("t=2: %d", got)
	}
	// t=11: empty all but the 5-bin -> 1 remains.
	if got := RemoveOptimally(counts, 4, 11); got != 0 {
		t.Fatalf("t=11: %d", got)
	}
	// counts untouched
	if counts[4] != 5 {
		t.Fatal("RemoveOptimally mutated input")
	}
}

func TestGreedyAdversaryOptimal(t *testing.T) {
	// Exhaustively verify on small games that no removal multiset beats
	// the greedy adversary.
	rng := xrand.New(4)
	for trial := 0; trial < 200; trial++ {
		r := 4
		s := 8
		counts := make([]int, r)
		for i := 0; i < s; i++ {
			counts[rng.Intn(r)]++
		}
		occ := 0
		for _, c := range counts {
			if c > 0 {
				occ++
			}
		}
		tt := rng.Intn(s + 1)
		greedy := RemoveOptimally(counts, occ, tt)
		// Brute force: choose how many to remove from each bin.
		best := occ
		var rec func(bin, budget, occupied int, cs []int)
		rec = func(bin, budget, occupied int, cs []int) {
			if bin == len(cs) {
				if occupied < best {
					best = occupied
				}
				return
			}
			for take := 0; take <= cs[bin] && take <= budget; take++ {
				occ2 := occupied
				if cs[bin] > 0 && take == cs[bin] {
					occ2--
				}
				rec(bin+1, budget-take, occ2, cs)
			}
		}
		rec(0, tt, occ, counts)
		if greedy != best {
			t.Fatalf("greedy %d != optimal %d for counts %v t=%d", greedy, best, counts, tt)
		}
	}
}

func TestLemma3Holds(t *testing.T) {
	// Sparse regime: cost must exceed the Lemma 3 bound except with
	// (at most) the lemma's failure probability.
	rng := xrand.New(5)
	g := Game{S: 1000, R: 10000, T: 100} // sp = 0.1 <= 1/3
	mu := 0.1
	bound, applies := Lemma3Threshold(g, mu)
	if !applies {
		t.Fatal("lemma 3 preconditions should hold")
	}
	sum, below := MonteCarlo(g, rng, 2000, bound)
	failBound := math.Exp(-mu * mu * float64(g.S) / 3)
	if below > failBound+0.01 {
		t.Fatalf("cost below bound %.1f in %.4f of trials, lemma allows %.4f",
			bound, below, failBound)
	}
	if sum.Mean() <= bound {
		t.Fatalf("mean cost %.1f should exceed bound %.1f", sum.Mean(), bound)
	}
}

func TestLemma4Holds(t *testing.T) {
	// Dense regime: with s >> r, cost >= 1/(20p) = r/20 w.h.p.
	rng := xrand.New(6)
	g := Game{S: 2000, R: 100, T: 900} // s/2 >= t, s/2 >= 1/p = 100
	bound, applies := Lemma4Threshold(g)
	if !applies {
		t.Fatal("lemma 4 preconditions should hold")
	}
	_, below := MonteCarlo(g, rng, 2000, bound)
	if below > 0.001 {
		t.Fatalf("cost fell below r/20 in %.4f of trials", below)
	}
}

func TestLemma4NotApplies(t *testing.T) {
	g := Game{S: 100, R: 100, T: 90} // t > s/2
	if _, applies := Lemma4Threshold(g); applies {
		t.Fatal("preconditions should fail")
	}
}

func TestExpectedDistinct(t *testing.T) {
	if d := ExpectedDistinct(0, 10); d != 0 {
		t.Fatalf("s=0: %v", d)
	}
	if d := ExpectedDistinct(1, 10); math.Abs(d-1) > 1e-9 {
		t.Fatalf("s=1: %v", d)
	}
	// s >> r: approaches r.
	if d := ExpectedDistinct(10000, 10); d < 9.999 {
		t.Fatalf("s>>r: %v", d)
	}
	// Monotone in s.
	prev := 0.0
	for s := 1; s < 100; s += 7 {
		d := ExpectedDistinct(s, 50)
		if d <= prev {
			t.Fatalf("not monotone at s=%d", s)
		}
		prev = d
	}
}

// TestTwoRegimes demonstrates the two cost regimes of the cleaning
// bin-ball game that Figure 1 reflects: per-ball cost ~1 when s << r,
// ~r/s when s >> r.
func TestTwoRegimes(t *testing.T) {
	rng := xrand.New(7)
	// Sparse: s = r/10 -> per-ball cost ~0.95.
	sparse := Game{S: 100, R: 1000, T: 0}
	var sSum float64
	for i := 0; i < 500; i++ {
		sSum += float64(Play(sparse, rng))
	}
	perBallSparse := sSum / 500 / float64(sparse.S)
	if perBallSparse < 0.9 {
		t.Fatalf("sparse per-ball cost %.3f, want ~1", perBallSparse)
	}
	// Dense: s = 10r -> per-ball cost ~1/10.
	dense := Game{S: 10000, R: 1000, T: 0}
	var dSum float64
	for i := 0; i < 50; i++ {
		dSum += float64(Play(dense, rng))
	}
	perBallDense := dSum / 50 / float64(dense.S)
	if perBallDense > 0.11 {
		t.Fatalf("dense per-ball cost %.3f, want ~0.1", perBallDense)
	}
}
