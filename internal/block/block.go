// Package block implements the bucket primitive shared by every external
// hash table in this repository: a bucket is a chain of disk blocks — a
// head block plus zero or more overflow blocks linked through block
// headers. All operations are expressed over iomodel.Disk so that their
// exact I/O cost is accounted.
//
// Cost model recap (see package iomodel): reading a block costs 1 I/O,
// writing it back immediately after the read is free, writing a block cold
// costs 1 I/O. A successful lookup that finds its key in the k-th block of
// a chain therefore costs exactly k I/Os, which is the quantity the
// paper's t_q measures.
package block

import (
	"sort"

	"extbuf/internal/iomodel"
)

// Find walks the chain rooted at head looking for key. It returns the
// value, whether the key was found, and the number of I/Os spent (blocks
// read). An empty chain (head == NilBlock) costs 0 I/Os and reports not
// found — callers that model a mandatory bucket probe should pass a real
// head block.
//
// The walk reads each block pinned (Disk.ReadPinned): the scan runs
// over the store's own frame with no copy and no allocation, and the
// pin keeps the frame resident for exactly the scan.
func Find(d *iomodel.Disk, head iomodel.BlockID, key uint64) (val uint64, found bool, ios int) {
	for id := head; id != iomodel.NilBlock; id = d.Next(id) {
		entries := d.ReadPinned(id)
		ios++
		for i := range entries {
			if entries[i].Key == key {
				v := entries[i].Val
				d.Unpin(id)
				return v, true, ios
			}
		}
		d.Unpin(id)
	}
	return 0, false, ios
}

// Insert places e into the first block of the chain with free space,
// walking from head. If every block is full it allocates a new overflow
// block, appends it at the end of the chain (we are already positioned
// there, so linking is a free write-back), and writes the entry into it.
// If a block already contains e.Key the entry's value is overwritten in
// place. It reports the I/Os spent, whether a new block was allocated,
// and whether the key was already present.
//
// Together with Delete's backfill-from-last-block policy this maintains
// the invariant that only the final block of a chain can have free space,
// which is what makes the walk-until-space duplicate scan sound: every
// block preceding the insertion point has been checked.
//
// head must be a valid block (tables pre-allocate one head block per
// bucket).
func Insert(d *iomodel.Disk, head iomodel.BlockID, e iomodel.Entry) (ios int, grew, replaced bool) {
	buf := d.AcquireBuf()
	defer func() { d.ReleaseBuf(buf) }()
	id := head
	for {
		buf = d.Read(id, buf[:0])
		ios++
		for i := range buf {
			if buf[i].Key == e.Key {
				buf[i].Val = e.Val
				d.WriteBack(id, buf)
				return ios, false, true
			}
		}
		if len(buf) < d.B() {
			buf = append(buf, e)
			d.WriteBack(id, buf)
			return ios, false, false
		}
		next := d.Next(id)
		if next == iomodel.NilBlock {
			break
		}
		id = next
	}
	// Chain exhausted with id holding the (full) last block just read:
	// append a fresh block; the header update rides the free write-back.
	nb := d.Alloc()
	d.SetNext(id, nb)
	d.WriteBack(id, buf)
	one := append(d.AcquireBuf(), e)
	d.Write(nb, one)
	d.ReleaseBuf(one)
	ios++
	return ios, true, false
}

// InsertNoDup is Insert for callers that guarantee e.Key is not already in
// the chain (e.g. bulk loads of pre-deduplicated batches). It skips the
// duplicate scan of partially filled blocks it does not need to touch:
// it walks to the first block with space exactly like Insert but does not
// pay to verify absence.
func InsertNoDup(d *iomodel.Disk, head iomodel.BlockID, e iomodel.Entry) (ios int, grew bool) {
	buf := d.AcquireBuf()
	defer func() { d.ReleaseBuf(buf) }()
	id := head
	for {
		buf = d.Read(id, buf[:0])
		ios++
		if len(buf) < d.B() {
			buf = append(buf, e)
			d.WriteBack(id, buf)
			return ios, false
		}
		next := d.Next(id)
		if next == iomodel.NilBlock {
			break
		}
		id = next
	}
	nb := d.Alloc()
	d.SetNext(id, nb)
	d.WriteBack(id, buf)
	one := append(d.AcquireBuf(), e)
	d.Write(nb, one)
	d.ReleaseBuf(one)
	ios++
	return ios, true
}

// Delete removes key from the chain rooted at head. To keep chains
// compact it backfills the hole with an entry taken from the chain's last
// block, freeing that block if it empties (the head block is never
// freed). It reports the I/Os spent and whether the key was present.
func Delete(d *iomodel.Disk, head iomodel.BlockID, key uint64) (ios int, found bool) {
	// First pass: locate the block holding the key, remembering the path.
	buf := d.AcquireBuf()
	defer func() { d.ReleaseBuf(buf) }()
	foundID := iomodel.NilBlock
	foundIdx := -1
	prev := iomodel.NilBlock
	lastID := head
	lastPrev := iomodel.NilBlock
	for id := head; id != iomodel.NilBlock; id = d.Next(id) {
		buf = d.Read(id, buf[:0])
		ios++
		if foundIdx < 0 {
			for i, e := range buf {
				if e.Key == key {
					foundID, foundIdx = id, i
					break
				}
			}
		}
		lastPrev = prev
		prev = id
		lastID = id
		if foundIdx >= 0 && d.Next(id) == iomodel.NilBlock {
			break
		}
	}
	if foundIdx < 0 {
		return ios, false
	}
	// Re-read the victim block (the scan may have moved past it).
	buf = d.Read(foundID, buf[:0])
	ios++
	if foundID == lastID {
		// Remove in place from the last block.
		buf[foundIdx] = buf[len(buf)-1]
		buf = buf[:len(buf)-1]
		d.WriteBack(foundID, buf)
		if len(buf) == 0 && foundID != head {
			unlink(d, lastPrev, foundID)
			ios++ // re-reading predecessor to update its header
		}
		return ios, true
	}
	// Steal the final entry of the last block to fill the hole.
	lastBuf := d.Read(lastID, d.AcquireBuf())
	ios++
	steal := lastBuf[len(lastBuf)-1]
	lastBuf = lastBuf[:len(lastBuf)-1]
	d.WriteBack(lastID, lastBuf)
	if len(lastBuf) == 0 && lastID != head {
		unlink(d, lastPrev, lastID)
		ios++
	}
	d.ReleaseBuf(lastBuf)
	buf = d.Read(foundID, buf[:0])
	ios++
	buf[foundIdx] = steal
	d.WriteBack(foundID, buf)
	return ios, true
}

// unlink detaches victim (known to follow prev) from the chain and frees
// it. It costs one read of prev, accounted by the caller.
func unlink(d *iomodel.Disk, prev, victim iomodel.BlockID) {
	pbuf := d.Read(prev, d.AcquireBuf())
	d.SetNext(prev, d.Next(victim))
	d.WriteBack(prev, pbuf)
	d.Free(victim)
	d.ReleaseBuf(pbuf)
}

// Collect appends every entry of the chain to buf and returns it together
// with the I/Os spent (one per block).
func Collect(d *iomodel.Disk, head iomodel.BlockID, buf []iomodel.Entry) ([]iomodel.Entry, int) {
	ios := 0
	for id := head; id != iomodel.NilBlock; id = d.Next(id) {
		buf = d.Read(id, buf)
		ios++
	}
	return buf, ios
}

// Blocks returns the number of blocks in the chain without performing
// I/O (header walk; used by audits and sizing logic, not by queries).
func Blocks(d *iomodel.Disk, head iomodel.BlockID) int {
	n := 0
	for id := head; id != iomodel.NilBlock; id = d.Next(id) {
		n++
	}
	return n
}

// Len returns the number of entries in the chain without performing I/O.
// Like Disk.Peek it exists for audits and tests, never operation logic.
func Len(d *iomodel.Disk, head iomodel.BlockID) int {
	n := 0
	for id := head; id != iomodel.NilBlock; id = d.Next(id) {
		n += len(d.Peek(id))
	}
	return n
}

// WriteChain writes entries as a fresh chain and returns its head and the
// I/Os spent (one cold write per block, ceil(len/b); an empty entry set
// still materializes the head block at 1 write so the bucket exists).
func WriteChain(d *iomodel.Disk, entries []iomodel.Entry) (iomodel.BlockID, int) {
	b := d.B()
	head := d.Alloc()
	if len(entries) <= b {
		d.Write(head, entries)
		return head, 1
	}
	d.Write(head, entries[:b])
	entries = entries[b:]
	ios := 1
	prev := head
	for len(entries) > 0 {
		n := len(entries)
		if n > b {
			n = b
		}
		id := d.Alloc()
		d.Write(id, entries[:n])
		ios++
		d.SetNext(prev, id)
		prev = id
		entries = entries[n:]
	}
	return head, ios
}

// FreeChain releases every block of the chain. Deallocation is free.
func FreeChain(d *iomodel.Disk, head iomodel.BlockID) {
	for id := head; id != iomodel.NilBlock; {
		next := d.Next(id)
		d.Free(id)
		id = next
	}
}

// Rewrite replaces the contents of the chain rooted at head with entries,
// reusing the head block, allocating or freeing overflow blocks as
// needed. Unlike WriteChain it keeps the head stable so directory entries
// pointing at it stay valid. Costs one cold write per written block.
func Rewrite(d *iomodel.Disk, head iomodel.BlockID, entries []iomodel.Entry) int {
	FreeChainTail(d, head)
	b := d.B()
	n := len(entries)
	if n <= b {
		d.Write(head, entries)
		return 1
	}
	d.Write(head, entries[:b])
	entries = entries[b:]
	ios := 1
	prev := head
	for len(entries) > 0 {
		k := len(entries)
		if k > b {
			k = b
		}
		id := d.Alloc()
		d.Write(id, entries[:k])
		ios++
		d.SetNext(prev, id)
		prev = id
		entries = entries[k:]
	}
	return ios
}

// FreeChainTail frees every overflow block of the chain, leaving the head
// allocated (and empty of successors).
func FreeChainTail(d *iomodel.Disk, head iomodel.BlockID) {
	for id := d.Next(head); id != iomodel.NilBlock; {
		next := d.Next(id)
		d.Free(id)
		id = next
	}
	d.SetNext(head, iomodel.NilBlock)
}

// SortByKey sorts entries in increasing key order (used by merge paths
// that want deterministic layouts).
func SortByKey(entries []iomodel.Entry) {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
}
