package block

import (
	"testing"
	"testing/quick"

	"extbuf/internal/iomodel"
	"extbuf/internal/xrand"
)

func newChain(t *testing.T, b int) (*iomodel.Disk, iomodel.BlockID) {
	t.Helper()
	d := iomodel.NewDisk(b)
	head := d.Alloc()
	d.Write(head, nil)
	return d, head
}

func TestInsertFind(t *testing.T) {
	d, head := newChain(t, 4)
	for k := uint64(1); k <= 10; k++ {
		Insert(d, head, iomodel.Entry{Key: k, Val: k * 100})
	}
	for k := uint64(1); k <= 10; k++ {
		v, ok, ios := Find(d, head, k)
		if !ok || v != k*100 {
			t.Fatalf("key %d: ok=%v v=%d", k, ok, v)
		}
		if ios < 1 || ios > 3 {
			t.Fatalf("key %d: suspicious probe count %d", k, ios)
		}
	}
	if _, ok, _ := Find(d, head, 999); ok {
		t.Fatal("found absent key")
	}
}

func TestInsertSingleBlockCost(t *testing.T) {
	d, head := newChain(t, 8)
	c0 := d.Counters()
	ios, grew, replaced := Insert(d, head, iomodel.Entry{Key: 1})
	if ios != 1 || grew || replaced {
		t.Fatalf("ios=%d grew=%v replaced=%v", ios, grew, replaced)
	}
	dc := d.Counters().Sub(c0)
	if dc.IOs() != 1 || dc.WriteBacks != 1 {
		t.Fatalf("unexpected cost: %+v", dc)
	}
}

func TestInsertReplace(t *testing.T) {
	d, head := newChain(t, 4)
	Insert(d, head, iomodel.Entry{Key: 7, Val: 1})
	_, grew, replaced := Insert(d, head, iomodel.Entry{Key: 7, Val: 2})
	if grew || !replaced {
		t.Fatalf("grew=%v replaced=%v", grew, replaced)
	}
	v, ok, _ := Find(d, head, 7)
	if !ok || v != 2 {
		t.Fatalf("replace lost value: %d", v)
	}
	if n := Len(d, head); n != 1 {
		t.Fatalf("len = %d after replace", n)
	}
}

func TestOverflowGrowth(t *testing.T) {
	d, head := newChain(t, 2)
	var grewCount int
	for k := uint64(0); k < 7; k++ {
		_, grew, _ := Insert(d, head, iomodel.Entry{Key: k})
		if grew {
			grewCount++
		}
	}
	if Blocks(d, head) != 4 { // ceil(7/2) = 4 blocks
		t.Fatalf("blocks = %d", Blocks(d, head))
	}
	if grewCount != 3 {
		t.Fatalf("grew %d times, want 3", grewCount)
	}
	if Len(d, head) != 7 {
		t.Fatalf("len = %d", Len(d, head))
	}
}

func TestInsertNoDup(t *testing.T) {
	d, head := newChain(t, 2)
	for k := uint64(0); k < 5; k++ {
		InsertNoDup(d, head, iomodel.Entry{Key: k})
	}
	if Len(d, head) != 5 {
		t.Fatalf("len = %d", Len(d, head))
	}
	for k := uint64(0); k < 5; k++ {
		if _, ok, _ := Find(d, head, k); !ok {
			t.Fatalf("key %d missing", k)
		}
	}
}

func TestDelete(t *testing.T) {
	d, head := newChain(t, 2)
	for k := uint64(0); k < 6; k++ {
		Insert(d, head, iomodel.Entry{Key: k, Val: k})
	}
	if _, found := Delete(d, head, 99); found {
		t.Fatal("deleted absent key")
	}
	for k := uint64(0); k < 6; k++ {
		_, found := Delete(d, head, k)
		if !found {
			t.Fatalf("key %d not found for delete", k)
		}
		if _, ok, _ := Find(d, head, k); ok {
			t.Fatalf("key %d still present after delete", k)
		}
		if got, want := Len(d, head), int(5-k); got != want {
			t.Fatalf("len = %d want %d", got, want)
		}
	}
	if Blocks(d, head) != 1 {
		t.Fatalf("empty chain should shrink to head only, has %d blocks", Blocks(d, head))
	}
}

func TestDeleteCompactsBlocks(t *testing.T) {
	d, head := newChain(t, 2)
	for k := uint64(0); k < 8; k++ {
		Insert(d, head, iomodel.Entry{Key: k})
	}
	before := Blocks(d, head)
	// Delete everything except one entry; chain must shrink.
	for k := uint64(0); k < 7; k++ {
		Delete(d, head, k)
	}
	after := Blocks(d, head)
	if after >= before {
		t.Fatalf("chain did not compact: %d -> %d blocks", before, after)
	}
	if Len(d, head) != 1 {
		t.Fatalf("len = %d", Len(d, head))
	}
	if _, ok, _ := Find(d, head, 7); !ok {
		t.Fatal("survivor key lost")
	}
}

func TestCollect(t *testing.T) {
	d, head := newChain(t, 2)
	for k := uint64(0); k < 5; k++ {
		Insert(d, head, iomodel.Entry{Key: k, Val: k * 2})
	}
	out, ios := Collect(d, head, nil)
	if len(out) != 5 {
		t.Fatalf("collected %d entries", len(out))
	}
	if ios != Blocks(d, head) {
		t.Fatalf("collect ios %d != blocks %d", ios, Blocks(d, head))
	}
	seen := map[uint64]uint64{}
	for _, e := range out {
		seen[e.Key] = e.Val
	}
	for k := uint64(0); k < 5; k++ {
		if seen[k] != k*2 {
			t.Fatalf("key %d val %d", k, seen[k])
		}
	}
}

func TestWriteChainAndFree(t *testing.T) {
	d := iomodel.NewDisk(3)
	var entries []iomodel.Entry
	for k := uint64(0); k < 10; k++ {
		entries = append(entries, iomodel.Entry{Key: k})
	}
	head, ios := WriteChain(d, entries)
	if ios != 4 { // ceil(10/3)
		t.Fatalf("write ios = %d", ios)
	}
	if Len(d, head) != 10 || Blocks(d, head) != 4 {
		t.Fatalf("len=%d blocks=%d", Len(d, head), Blocks(d, head))
	}
	FreeChain(d, head)
	if d.NumBlocks() != 0 {
		t.Fatalf("blocks leaked: %d", d.NumBlocks())
	}
}

func TestWriteChainEmpty(t *testing.T) {
	d := iomodel.NewDisk(3)
	head, ios := WriteChain(d, nil)
	if ios != 1 {
		t.Fatalf("empty chain write ios = %d", ios)
	}
	if Len(d, head) != 0 || Blocks(d, head) != 1 {
		t.Fatal("empty chain should be a single empty head block")
	}
}

func TestRewriteKeepsHead(t *testing.T) {
	d, head := newChain(t, 2)
	for k := uint64(0); k < 6; k++ {
		Insert(d, head, iomodel.Entry{Key: k})
	}
	newEntries := []iomodel.Entry{{Key: 100}, {Key: 101}, {Key: 102}}
	Rewrite(d, head, newEntries)
	if Len(d, head) != 3 {
		t.Fatalf("len = %d", Len(d, head))
	}
	if _, ok, _ := Find(d, head, 100); !ok {
		t.Fatal("rewritten key missing")
	}
	if _, ok, _ := Find(d, head, 0); ok {
		t.Fatal("old key survived rewrite")
	}
	// Shrinking rewrite must release blocks.
	Rewrite(d, head, nil)
	if Blocks(d, head) != 1 || Len(d, head) != 0 {
		t.Fatal("rewrite to empty did not shrink chain")
	}
}

func TestSortByKey(t *testing.T) {
	es := []iomodel.Entry{{Key: 3}, {Key: 1}, {Key: 2}}
	SortByKey(es)
	if es[0].Key != 1 || es[1].Key != 2 || es[2].Key != 3 {
		t.Fatalf("not sorted: %v", es)
	}
}

// TestChainMatchesMapModel drives a random op sequence against both the
// chain and a map reference model and requires identical behaviour.
func TestChainMatchesMapModel(t *testing.T) {
	f := func(seed uint64, opsRaw []byte) bool {
		d := iomodel.NewDisk(3)
		head := d.Alloc()
		d.Write(head, nil)
		model := map[uint64]uint64{}
		r := xrand.New(seed)
		for _, op := range opsRaw {
			key := uint64(op % 16) // small key space to force collisions
			switch {
			case op%3 == 0: // insert/update
				val := r.Uint64()
				Insert(d, head, iomodel.Entry{Key: key, Val: val})
				model[key] = val
			case op%3 == 1: // delete
				_, found := Delete(d, head, key)
				_, inModel := model[key]
				if found != inModel {
					return false
				}
				delete(model, key)
			default: // lookup
				v, ok, _ := Find(d, head, key)
				mv, mok := model[key]
				if ok != mok || (ok && v != mv) {
					return false
				}
			}
			if Len(d, head) != len(model) {
				return false
			}
		}
		// Final full verification.
		out, _ := Collect(d, head, nil)
		if len(out) != len(model) {
			return false
		}
		for _, e := range out {
			if model[e.Key] != e.Val {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
