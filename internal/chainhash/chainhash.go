// Package chainhash implements the classical external hash table with
// chaining, the structure behind Knuth's analysis (TAOCP vol. 3 §6.4)
// that the paper cites as the baseline: with load factor bounded below 1,
// a successful lookup costs 1 + 1/2^Omega(b) I/Os on average and an
// insertion costs the same (the read and the write-back of the target
// block count as one seek).
//
// The table is an array of buckets; bucket i's head occupies one disk
// block and overflowing buckets grow a chain of overflow blocks. The
// address function f(x) = heads[TopBits(h(x))] is computable from O(1)
// words of memory (base address and bucket count), which is exactly the
// paper's requirement that f be memory-computable; the heads slice is an
// addressing convenience, not charged memory.
//
// This is the upper bound for the regime t_q = 1 + Theta(1/b^c), c > 1,
// of Figure 1: buffering is useless there, and the plain table is already
// optimal to within 1/2^Omega(b).
package chainhash

import (
	"fmt"
	"slices"

	"extbuf/internal/block"
	"extbuf/internal/hashfn"
	"extbuf/internal/iomodel"
)

// Table is an external chaining hash table. It is not safe for concurrent
// use.
type Table struct {
	d       *iomodel.Disk
	mem     *iomodel.Memory
	fn      hashfn.Fn
	heads   []iomodel.BlockID
	bits    uint
	n       int
	blocks  int     // blocks owned by this table (heads + overflow)
	maxLoad float64 // grow when n/(blocks*b) would exceed this; 0 = fixed
	memRes  int64   // words charged against mem

	// Merge scratch, reused across MergeIn calls so bulk merges build
	// no per-call maps or slices.
	msort []mergeItem
	mrun  []iomodel.Entry
}

// mergeItem tags an entry with its bucket and input position for the
// sort-based grouping in MergeIn.
type mergeItem struct {
	bucket int32
	seq    int32
	e      iomodel.Entry
}

// memoryWords is the in-memory footprint charged by the table: base
// address, bucket-count, item count and the hash seed.
const memoryWords = 4

// New returns a table with nbuckets buckets (rounded up to a power of
// two) drawing blocks from model's disk. The construction performs no
// I/O: blocks come zeroed from the allocator.
func New(model *iomodel.Model, fn hashfn.Fn, nbuckets int) (*Table, error) {
	if nbuckets < 1 {
		return nil, fmt.Errorf("chainhash: nbuckets must be >= 1, got %d", nbuckets)
	}
	nbuckets = hashfn.CeilPow2(nbuckets)
	if err := model.Mem.Alloc(memoryWords); err != nil {
		return nil, fmt.Errorf("chainhash: %w", err)
	}
	t := &Table{
		d:      model.Disk,
		mem:    model.Mem,
		fn:     fn,
		heads:  make([]iomodel.BlockID, nbuckets),
		bits:   uint(hashfn.Log2(nbuckets)),
		blocks: nbuckets,
		memRes: memoryWords,
	}
	for i := range t.heads {
		t.heads[i] = model.Disk.Alloc()
	}
	return t, nil
}

// SetMaxLoad enables automatic doubling: after an insert pushes the load
// factor n/(b*buckets) above maxLoad the table doubles its bucket count.
// Zero (the default) keeps the bucket count fixed, matching Knuth's
// static analysis.
func (t *Table) SetMaxLoad(maxLoad float64) { t.maxLoad = maxLoad }

// Len returns the number of stored entries.
func (t *Table) Len() int { return t.n }

// NumBuckets returns the bucket count.
func (t *Table) NumBuckets() int { return len(t.heads) }

// DiskBlocks returns the number of disk blocks the table occupies.
func (t *Table) DiskBlocks() int { return t.blocks }

// LoadFactor returns the paper's load factor: ceil(n/b) over the blocks
// actually used.
func (t *Table) LoadFactor() float64 {
	b := t.d.B()
	need := (t.n + b - 1) / b
	if t.blocks == 0 {
		return 0
	}
	return float64(need) / float64(t.blocks)
}

// Fill returns n/(b*buckets), the mean bucket occupancy fraction used to
// decide growth.
func (t *Table) Fill() float64 {
	return float64(t.n) / (float64(t.d.B()) * float64(len(t.heads)))
}

func (t *Table) bucket(key uint64) int {
	return int(hashfn.TopBits(t.fn.Hash(key), t.bits))
}

// Insert stores (key, val), overwriting any existing value for key, and
// returns the I/Os spent.
func (t *Table) Insert(key, val uint64) int {
	ios, grew, replaced := block.Insert(t.d, t.heads[t.bucket(key)], iomodel.Entry{Key: key, Val: val})
	if grew {
		t.blocks++
	}
	if !replaced {
		t.n++
	}
	if t.maxLoad > 0 && t.Fill() > t.maxLoad {
		ios += t.grow()
	}
	return ios
}

// Lookup returns the value stored for key and the I/Os spent. A lookup
// that finds the key in its bucket's head block costs exactly 1 I/O.
func (t *Table) Lookup(key uint64) (val uint64, ok bool, ios int) {
	return block.Find(t.d, t.heads[t.bucket(key)], key)
}

// Delete removes key, reporting whether it was present and the I/Os
// spent.
func (t *Table) Delete(key uint64) (ok bool, ios int) {
	before := block.Blocks(t.d, t.heads[t.bucket(key)])
	ios, ok = block.Delete(t.d, t.heads[t.bucket(key)], key)
	if ok {
		t.n--
		t.blocks -= before - block.Blocks(t.d, t.heads[t.bucket(key)])
	}
	return ok, ios
}

// Update overwrites the value of key if present, without inserting.
// Returns whether the key was found and the I/Os spent. Used by upsert
// paths that must not create a second copy of a key.
func (t *Table) Update(key, val uint64) (ok bool, ios int) {
	id := t.heads[t.bucket(key)]
	buf := t.d.AcquireBuf()
	defer func() { t.d.ReleaseBuf(buf) }()
	for ; id != iomodel.NilBlock; id = t.d.Next(id) {
		buf = t.d.Read(id, buf[:0])
		ios++
		for i := range buf {
			if buf[i].Key == key {
				buf[i].Val = val
				t.d.WriteBack(id, buf)
				return true, ios
			}
		}
	}
	return false, ios
}

// MergeIn bulk-merges entries (whose keys must not already be present)
// into the table with one sequential pass per touched bucket: each chain
// block is read once and written back for free (footnote 2 accounting),
// and only newly allocated overflow blocks pay cold writes. This is the
// paper's "merge by scanning the two tables in parallel" and the engine
// of both the Theorem 2 structure and the staged strategy. Returns the
// I/Os spent.
func (t *Table) MergeIn(entries []iomodel.Entry) int {
	if len(entries) == 0 {
		return 0
	}
	// Group by bucket with a reusable sort instead of a per-call map:
	// no allocation in steady state, and the buckets are visited in
	// ascending order, so the write sequence is deterministic (a map
	// walk would randomize it per process, breaking crash-point
	// replay). The input position breaks ties, preserving each
	// bucket's input order.
	t.msort = t.msort[:0]
	for i, e := range entries {
		t.msort = append(t.msort, mergeItem{bucket: int32(t.bucket(e.Key)), seq: int32(i), e: e})
	}
	// slices.SortFunc with a capture-free comparator: unlike
	// sort.Slice, no swapper or closure allocation per merge.
	slices.SortFunc(t.msort, func(a, b mergeItem) int {
		if a.bucket != b.bucket {
			return int(a.bucket) - int(b.bucket)
		}
		return int(a.seq) - int(b.seq)
	})
	ios := 0
	b := t.d.B()
	buf := t.d.AcquireBuf()
	defer func() { t.d.ReleaseBuf(buf) }()
	for start := 0; start < len(t.msort); {
		end := start + 1
		for end < len(t.msort) && t.msort[end].bucket == t.msort[start].bucket {
			end++
		}
		t.mrun = t.mrun[:0]
		for _, it := range t.msort[start:end] {
			t.mrun = append(t.mrun, it.e)
		}
		g := t.mrun
		i := int(t.msort[start].bucket)
		start = end
		id := t.heads[i]
		for {
			buf = t.d.Read(id, buf[:0])
			ios++
			for len(g) > 0 && len(buf) < b {
				buf = append(buf, g[0])
				g = g[1:]
			}
			next := t.d.Next(id)
			if len(g) > 0 && next == iomodel.NilBlock {
				// Chain exhausted with items remaining: allocate the
				// overflow blocks first (allocation is free), link them
				// into the header that rides the free write-back, then
				// pay one cold write per new block.
				need := (len(g) + b - 1) / b
				ids := make([]iomodel.BlockID, need)
				for j := range ids {
					ids[j] = t.d.Alloc()
				}
				for j := 0; j+1 < need; j++ {
					t.d.SetNext(ids[j], ids[j+1])
				}
				t.d.SetNext(id, ids[0])
				t.d.WriteBack(id, buf)
				for j := 0; j < need; j++ {
					chunk := g
					if len(chunk) > b {
						chunk = g[:b]
					}
					t.d.Write(ids[j], chunk)
					ios++
					g = g[len(chunk):]
				}
				t.blocks += need
				break
			}
			t.d.WriteBack(id, buf)
			if len(g) == 0 {
				break
			}
			id = next
		}
	}
	t.n += len(entries)
	return ios
}

// Grow doubles the bucket count with a sequential rebuild and returns
// the I/Os spent. Exposed for structures (core, staged) that manage
// their own growth policy.
func (t *Table) Grow() int { return t.grow() }

// grow doubles the bucket count, splitting bucket i into buckets 2i and
// 2i+1 (top-bit addressing makes the split a sequential scan). Returns
// the I/Os spent.
func (t *Table) grow() int {
	old := t.heads
	newHeads := make([]iomodel.BlockID, 2*len(old))
	ios := 0
	blocks := 0
	var buf []iomodel.Entry
	var lo, hi []iomodel.Entry
	newBits := t.bits + 1
	for i, head := range old {
		buf = buf[:0]
		buf, c := block.Collect(t.d, head, buf)
		ios += c
		lo, hi = lo[:0], hi[:0]
		for _, e := range buf {
			if int(hashfn.TopBits(t.fn.Hash(e.Key), newBits)) == 2*i {
				lo = append(lo, e)
			} else {
				hi = append(hi, e)
			}
		}
		block.FreeChain(t.d, head)
		var w int
		newHeads[2*i], w = block.WriteChain(t.d, lo)
		ios += w
		blocks += w
		newHeads[2*i+1], w = block.WriteChain(t.d, hi)
		ios += w
		blocks += w
	}
	t.heads = newHeads
	t.bits = newBits
	t.blocks = blocks
	return ios
}

// BucketHead returns the head block of bucket i. It exists for merge
// paths (package logmethod and the Theorem 2 structure) that rewrite
// chains directly with sequential scans; plain clients never need it.
func (t *Table) BucketHead(i int) iomodel.BlockID { return t.heads[i] }

// AdjustAfterMerge fixes the table's bookkeeping after a caller has
// rewritten bucket chains directly via BucketHead: addedEntries is the
// net change in entry count; the block count is re-derived from the
// chain headers (a memory walk, no I/O).
func (t *Table) AdjustAfterMerge(addedEntries int) {
	t.n += addedEntries
	blocks := 0
	for _, head := range t.heads {
		blocks += block.Blocks(t.d, head)
	}
	t.blocks = blocks
}

// CollectAll reads every block of the table in bucket order, appending
// all entries to buf, and returns the entries and the I/Os spent (one per
// block). This is the sequential scan primitive used by rebuilds and
// merges.
func (t *Table) CollectAll(buf []iomodel.Entry) ([]iomodel.Entry, int) {
	ios := 0
	for _, head := range t.heads {
		var c int
		buf, c = block.Collect(t.d, head, buf)
		ios += c
	}
	return buf, ios
}

// BulkLoad replaces the table's entire contents with entries (which must
// have distinct keys), grouping them by bucket and writing each bucket's
// chain sequentially. It returns the I/Os spent: one cold write per
// written block, the optimal layout cost. Buckets that receive nothing
// are skipped when the table is already empty (their heads are clear),
// and cleared otherwise.
func (t *Table) BulkLoad(entries []iomodel.Entry) int {
	nb := len(t.heads)
	groups := make([][]iomodel.Entry, nb)
	for _, e := range entries {
		i := t.bucket(e.Key)
		groups[i] = append(groups[i], e)
	}
	wasEmpty := t.n == 0
	ios := 0
	blocks := 0
	for i, head := range t.heads {
		if len(groups[i]) == 0 {
			if !wasEmpty {
				block.FreeChainTail(t.d, head)
				t.d.Clear(head)
			}
			blocks++
			continue
		}
		ios += block.Rewrite(t.d, head, groups[i])
		blocks += block.Blocks(t.d, head)
	}
	t.n = len(entries)
	t.blocks = blocks
	return ios
}

// Reset empties the table, freeing all overflow blocks and clearing the
// head blocks. No I/O is charged: discarding data is a format/TRIM
// operation, not a transfer (see iomodel.Disk.Clear).
func (t *Table) Reset() {
	for _, head := range t.heads {
		block.FreeChainTail(t.d, head)
		t.d.Clear(head)
	}
	t.n = 0
	t.blocks = len(t.heads)
}

// AddressOf returns the primary block f(x) for key: the head of its
// bucket's chain. This is the paper's memory-computable address function,
// used by the zones audit.
func (t *Table) AddressOf(key uint64) iomodel.BlockID {
	return t.heads[t.bucket(key)]
}

// MemoryKeys returns the keys held in the memory zone; the plain table
// buffers nothing.
func (t *Table) MemoryKeys() []uint64 { return nil }

// Disk exposes the underlying disk for audits.
func (t *Table) Disk() *iomodel.Disk { return t.d }

// Close releases the table's memory reservation. The disk blocks remain
// until freed by the caller (experiments usually discard the whole
// model).
func (t *Table) Close() {
	t.mem.Release(t.memRes)
	t.memRes = 0
}
