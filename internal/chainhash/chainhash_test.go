package chainhash

import (
	"testing"
	"testing/quick"

	"extbuf/internal/hashfn"
	"extbuf/internal/iomodel"
	"extbuf/internal/workload"
	"extbuf/internal/xrand"
)

func newTable(t *testing.T, b, nbuckets int) (*iomodel.Model, *Table) {
	t.Helper()
	model := iomodel.NewModel(b, 1<<20)
	tab, err := New(model, hashfn.NewIdeal(1), nbuckets)
	if err != nil {
		t.Fatal(err)
	}
	return model, tab
}

func TestInsertLookup(t *testing.T) {
	_, tab := newTable(t, 8, 16)
	rng := xrand.New(2)
	keys := workload.Keys(rng, 500)
	for i, k := range keys {
		tab.Insert(k, uint64(i))
	}
	if tab.Len() != 500 {
		t.Fatalf("Len = %d", tab.Len())
	}
	for i, k := range keys {
		v, ok, ios := tab.Lookup(k)
		if !ok || v != uint64(i) {
			t.Fatalf("key %d: ok=%v v=%d", k, ok, v)
		}
		if ios < 1 {
			t.Fatalf("lookup cost %d < 1", ios)
		}
	}
	for i := 0; i < 100; i++ {
		if _, ok, _ := tab.Lookup(rng.Uint64()); ok {
			t.Fatal("found absent key")
		}
	}
}

func TestInsertReplaceSemantics(t *testing.T) {
	_, tab := newTable(t, 8, 4)
	tab.Insert(42, 1)
	tab.Insert(42, 2)
	if tab.Len() != 1 {
		t.Fatalf("Len = %d after replace", tab.Len())
	}
	v, ok, _ := tab.Lookup(42)
	if !ok || v != 2 {
		t.Fatalf("v = %d", v)
	}
}

func TestDelete(t *testing.T) {
	_, tab := newTable(t, 4, 8)
	rng := xrand.New(3)
	keys := workload.Keys(rng, 200)
	for i, k := range keys {
		tab.Insert(k, uint64(i))
	}
	for i, k := range keys {
		if i%2 == 0 {
			ok, _ := tab.Delete(k)
			if !ok {
				t.Fatalf("delete %d failed", k)
			}
		}
	}
	if tab.Len() != 100 {
		t.Fatalf("Len = %d", tab.Len())
	}
	for i, k := range keys {
		_, ok, _ := tab.Lookup(k)
		if (i%2 == 0) == ok {
			t.Fatalf("key %d: present=%v want %v", k, ok, i%2 != 0)
		}
	}
	if ok, _ := tab.Delete(12345); ok {
		t.Fatal("deleted absent key")
	}
}

func TestKnuthQueryCostLowLoad(t *testing.T) {
	// At load factor ~0.4 with b = 32, the expected successful lookup
	// cost must be within 1 + 1/2^Omega(b): essentially 1.
	model, tab := newTable(t, 32, 64)
	_ = model
	rng := xrand.New(5)
	n := 819
	keys := workload.Keys(rng, n)
	for _, k := range keys {
		tab.Insert(k, 0)
	}
	totalIOs := 0
	for _, k := range keys {
		_, ok, ios := tab.Lookup(k)
		if !ok {
			t.Fatal("lost key")
		}
		totalIOs += ios
	}
	avg := float64(totalIOs) / float64(n)
	if avg > 1.02 {
		t.Fatalf("avg successful lookup %.4f, want ~1 at low load", avg)
	}
}

func TestGrowth(t *testing.T) {
	_, tab := newTable(t, 8, 4)
	tab.SetMaxLoad(0.75)
	rng := xrand.New(7)
	keys := workload.Keys(rng, 2000)
	for i, k := range keys {
		tab.Insert(k, uint64(i))
	}
	if tab.NumBuckets() <= 4 {
		t.Fatalf("table did not grow: %d buckets", tab.NumBuckets())
	}
	if tab.Fill() > 0.75 {
		t.Fatalf("fill %.3f above threshold after growth", tab.Fill())
	}
	for i, k := range keys {
		v, ok, _ := tab.Lookup(k)
		if !ok || v != uint64(i) {
			t.Fatalf("key lost after growth: %d", k)
		}
	}
}

func TestLoadFactorAccounting(t *testing.T) {
	_, tab := newTable(t, 8, 8)
	if lf := tab.LoadFactor(); lf != 0 {
		t.Fatalf("empty load factor %v", lf)
	}
	rng := xrand.New(9)
	for _, k := range workload.Keys(rng, 32) {
		tab.Insert(k, 0)
	}
	lf := tab.LoadFactor()
	if lf <= 0 || lf > 1 {
		t.Fatalf("load factor %v out of range", lf)
	}
	if tab.DiskBlocks() < 8 {
		t.Fatalf("DiskBlocks %d < bucket count", tab.DiskBlocks())
	}
}

func TestMemoryCharge(t *testing.T) {
	model := iomodel.NewModel(8, 3) // too small for the 4 control words
	if _, err := New(model, hashfn.NewIdeal(1), 4); err == nil {
		t.Fatal("expected memory budget error")
	}
	model2 := iomodel.NewModel(8, 64)
	tab, err := New(model2, hashfn.NewIdeal(1), 4)
	if err != nil {
		t.Fatal(err)
	}
	if model2.Mem.Used() == 0 {
		t.Fatal("no memory charged")
	}
	tab.Close()
	if model2.Mem.Used() != 0 {
		t.Fatal("Close did not release memory")
	}
}

func TestUpdate(t *testing.T) {
	_, tab := newTable(t, 4, 4)
	if ok, _ := tab.Update(1, 10); ok {
		t.Fatal("updated absent key")
	}
	tab.Insert(1, 10)
	ok, ios := tab.Update(1, 20)
	if !ok || ios < 1 {
		t.Fatalf("ok=%v ios=%d", ok, ios)
	}
	v, _, _ := tab.Lookup(1)
	if v != 20 {
		t.Fatalf("v = %d", v)
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d", tab.Len())
	}
}

func TestMergeIn(t *testing.T) {
	model, tab := newTable(t, 8, 8)
	rng := xrand.New(11)
	keys := workload.Keys(rng, 300)
	var entries []iomodel.Entry
	for i, k := range keys[:200] {
		entries = append(entries, iomodel.Entry{Key: k, Val: uint64(i)})
	}
	c0 := model.Counters()
	ios := tab.MergeIn(entries)
	dc := model.Counters().Sub(c0)
	if int64(ios) != dc.IOs() {
		t.Fatalf("reported ios %d != counter delta %d", ios, dc.IOs())
	}
	if tab.Len() != 200 {
		t.Fatalf("Len = %d", tab.Len())
	}
	// Merge should exploit write-backs: most blocks are read once and
	// written back free, so IOs should be well below 2 per touched block.
	if dc.WriteBacks == 0 {
		t.Fatal("MergeIn produced no write-backs")
	}
	// Now merge more and verify everything is found.
	for i, k := range keys[200:] {
		tab.MergeIn([]iomodel.Entry{{Key: k, Val: uint64(i)}})
	}
	for _, k := range keys {
		if _, ok, _ := tab.Lookup(k); !ok {
			t.Fatalf("key %d lost after merges", k)
		}
	}
}

func TestMergeInEmpty(t *testing.T) {
	_, tab := newTable(t, 8, 8)
	if ios := tab.MergeIn(nil); ios != 0 {
		t.Fatalf("empty merge cost %d", ios)
	}
}

func TestCollectAllBulkLoadRoundTrip(t *testing.T) {
	_, tab := newTable(t, 4, 8)
	rng := xrand.New(13)
	keys := workload.Keys(rng, 100)
	for i, k := range keys {
		tab.Insert(k, uint64(i))
	}
	entries, ios := tab.CollectAll(nil)
	if len(entries) != 100 {
		t.Fatalf("collected %d", len(entries))
	}
	if ios < 8 {
		t.Fatalf("collect ios %d < bucket count", ios)
	}
	tab.Reset()
	if tab.Len() != 0 {
		t.Fatal("reset did not empty table")
	}
	tab.BulkLoad(entries)
	if tab.Len() != 100 {
		t.Fatalf("Len = %d after bulk load", tab.Len())
	}
	for i, k := range keys {
		v, ok, _ := tab.Lookup(k)
		if !ok || v != uint64(i) {
			t.Fatalf("key %d lost in round trip", k)
		}
	}
}

func TestAddressOfZoneConsistency(t *testing.T) {
	// Items in the head block of their bucket must be found there.
	_, tab := newTable(t, 8, 16)
	rng := xrand.New(15)
	keys := workload.Keys(rng, 200)
	for _, k := range keys {
		tab.Insert(k, 0)
	}
	d := tab.Disk()
	inHead := 0
	for _, k := range keys {
		blk := tab.AddressOf(k)
		for _, e := range d.Peek(blk) {
			if e.Key == k {
				inHead++
				break
			}
		}
	}
	// At fill ~1.56 items/bucket-block... with 200 items and 16 buckets of
	// capacity 8, overflow is certain; but the majority must be in heads.
	if inHead < 100 {
		t.Fatalf("only %d/200 items in their addressed block", inHead)
	}
}

func TestTableMatchesMapModel(t *testing.T) {
	f := func(seed uint64, ops []byte) bool {
		model := iomodel.NewModel(4, 1<<16)
		tab, err := New(model, hashfn.NewIdeal(seed), 4)
		if err != nil {
			return false
		}
		tab.SetMaxLoad(0.8)
		ref := map[uint64]uint64{}
		r := xrand.New(seed)
		for _, op := range ops {
			key := uint64(op % 32)
			switch op % 3 {
			case 0:
				v := r.Uint64()
				tab.Insert(key, v)
				ref[key] = v
			case 1:
				ok, _ := tab.Delete(key)
				_, inRef := ref[key]
				if ok != inRef {
					return false
				}
				delete(ref, key)
			default:
				v, ok, _ := tab.Lookup(key)
				rv, rok := ref[key]
				if ok != rok || (ok && v != rv) {
					return false
				}
			}
			if tab.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
