package chainhash

import (
	"fmt"

	"extbuf/internal/ckpt"
	"extbuf/internal/hashfn"
	"extbuf/internal/iomodel"
)

// SaveState serializes the table's volatile in-memory state — the
// bucket directory and counters — for a checkpoint. The blocks the
// directory references live in the block store and are persisted by
// the store itself; together the two halves reopen the table with its
// chain topology intact (see DESIGN.md, "Durability & recovery").
func (t *Table) SaveState(e *ckpt.Encoder) {
	e.BlockIDs(t.heads)
	e.Int(t.n)
	e.Int(t.blocks)
	e.F64(t.maxLoad)
}

// Restore rebuilds a table from a SaveState payload on a model whose
// store already holds the checkpointed blocks. It charges the same
// memory reservation as New.
func Restore(model *iomodel.Model, fn hashfn.Fn, d *ckpt.Decoder) (*Table, error) {
	heads := d.BlockIDs()
	n := d.Int()
	blocks := d.Int()
	maxLoad := d.F64()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("chainhash: restore: %w", err)
	}
	if len(heads) < 1 || len(heads) != hashfn.CeilPow2(len(heads)) {
		return nil, fmt.Errorf("chainhash: restore: bucket count %d is not a positive power of two", len(heads))
	}
	if n < 0 || blocks < len(heads) {
		return nil, fmt.Errorf("chainhash: restore: implausible counters n=%d blocks=%d", n, blocks)
	}
	if err := model.Mem.Alloc(memoryWords); err != nil {
		return nil, fmt.Errorf("chainhash: %w", err)
	}
	return &Table{
		d:       model.Disk,
		mem:     model.Mem,
		fn:      fn,
		heads:   heads,
		bits:    uint(hashfn.Log2(len(heads))),
		n:       n,
		blocks:  blocks,
		maxLoad: maxLoad,
		memRes:  memoryWords,
	}, nil
}
