package chainhash

import (
	"extbuf/internal/block"
	"extbuf/internal/iomodel"
)

// ScanBuckets returns the number of scan buckets: one per chain.
func (t *Table) ScanBuckets() int { return len(t.heads) }

// ScanBucket appends bucket i's entries (its whole chain) to buf,
// returning buf and the I/Os spent. Bucket numbering is only stable
// between table growths: a scan paged across a grow may see keys twice
// or not at all — the cursor contract documented at the engine layer.
func (t *Table) ScanBucket(i int, buf []iomodel.Entry) ([]iomodel.Entry, int) {
	return block.Collect(t.d, t.heads[i], buf)
}
