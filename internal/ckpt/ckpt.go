// Package ckpt provides the binary encoding shared by the durability
// subsystem: the superblock/checkpoint files written next to a
// FileStore's block file and the per-structure state blobs nested
// inside them (see DESIGN.md, "Durability & recovery").
//
// The format is deliberately plain: little-endian fixed-width words,
// length-prefixed byte strings, no compression, no reflection. Writers
// append through an Encoder; readers consume through a Decoder whose
// error is sticky, so a sequence of reads can be validated once at the
// end. Integrity is the caller's concern: the superblock wraps the
// payload in a magic/version header and a CRC32 trailer via Frame and
// Unframe.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"extbuf/internal/iomodel"
)

// ErrCorrupt is returned (wrapped) when a frame or field fails to
// decode: short payload, bad magic, CRC mismatch, or an implausible
// length prefix.
var ErrCorrupt = errors.New("ckpt: corrupt checkpoint")

// Encoder accumulates an encoded payload.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// Reset empties the encoder, retaining its buffer: a caller that
// checkpoints repeatedly (the durable table's Flush barrier) reuses one
// encoder instead of re-growing a fresh payload each time.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Len returns the current payload length.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// I64 appends a little-endian int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as an int64.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// F64 appends a float64 by bit pattern.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends a boolean byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// String appends a length-prefixed UTF-8 string.
func (e *Encoder) String(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// BlockIDs appends a length-prefixed slice of block IDs.
func (e *Encoder) BlockIDs(ids []iomodel.BlockID) {
	e.U32(uint32(len(ids)))
	for _, id := range ids {
		e.U32(uint32(int32(id)))
	}
}

// I64s appends a length-prefixed slice of int64s.
func (e *Encoder) I64s(vs []int64) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.I64(v)
	}
}

// U8s appends a length-prefixed byte slice.
func (e *Encoder) U8s(vs []uint8) {
	e.U32(uint32(len(vs)))
	e.buf = append(e.buf, vs...)
}

// PairMap appends a length-prefixed set of key/value pairs. Iteration
// order is unspecified; decoded maps are content-equal, not byte-equal.
func (e *Encoder) PairMap(m map[uint64]uint64) {
	e.U32(uint32(len(m)))
	for k, v := range m {
		e.U64(k)
		e.U64(v)
	}
}

// Decoder consumes an encoded payload. The first failure sticks: all
// subsequent reads return zero values and Err reports the failure.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over payload.
func NewDecoder(payload []byte) *Decoder { return &Decoder{buf: payload} }

// err0 checks that n more bytes are readable, recording a sticky
// ErrCorrupt otherwise.
func (d *Decoder) err0(n int) bool {
	if d.err != nil {
		return true
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrCorrupt, n, d.off, len(d.buf))
		return true
	}
	return false
}

// Err returns the sticky decode error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread payload bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	if d.err0(1) {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	if d.err0(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	if d.err0(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// I64 reads a little-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int64-encoded int.
func (d *Decoder) Int() int { return int(d.I64()) }

// F64 reads a float64 by bit pattern.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads a boolean byte.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := int(d.U32())
	if d.err0(n) {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// BlockIDs reads a length-prefixed slice of block IDs.
func (d *Decoder) BlockIDs() []iomodel.BlockID {
	n := int(d.U32())
	if d.err != nil || n > d.Remaining()/4 {
		d.fail("block id slice length %d", n)
		return nil
	}
	ids := make([]iomodel.BlockID, n)
	for i := range ids {
		ids[i] = iomodel.BlockID(int32(d.U32()))
	}
	return ids
}

// I64s reads a length-prefixed slice of int64s.
func (d *Decoder) I64s() []int64 {
	n := int(d.U32())
	if d.err != nil || n > d.Remaining()/8 {
		d.fail("int64 slice length %d", n)
		return nil
	}
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = d.I64()
	}
	return vs
}

// U8s reads a length-prefixed byte slice.
func (d *Decoder) U8s() []uint8 {
	n := int(d.U32())
	if d.err != nil || n > d.Remaining() {
		d.fail("byte slice length %d", n)
		return nil
	}
	vs := make([]uint8, n)
	copy(vs, d.buf[d.off:d.off+n])
	d.off += n
	return vs
}

// PairMap reads a length-prefixed set of key/value pairs.
func (d *Decoder) PairMap() map[uint64]uint64 {
	n := int(d.U32())
	if d.err != nil || n > d.Remaining()/16 {
		d.fail("pair map length %d", n)
		return nil
	}
	m := make(map[uint64]uint64, n)
	for i := 0; i < n; i++ {
		k := d.U64()
		m[k] = d.U64()
	}
	return m
}

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: implausible "+format, append([]any{ErrCorrupt}, args...)...)
	}
}

// frameMagic identifies a framed checkpoint payload ("EXBC").
const frameMagic = 0x43425845

// frameHeaderBytes is magic + version + payload length.
const frameHeaderBytes = 12

// Frame wraps payload in a magic/version header and CRC32 trailer,
// producing the bytes written to disk.
func Frame(version uint32, payload []byte) []byte {
	out := make([]byte, 0, frameHeaderBytes+len(payload)+4)
	out = binary.LittleEndian.AppendUint32(out, frameMagic)
	out = binary.LittleEndian.AppendUint32(out, version)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
}

// Unframe validates the header and CRC32 trailer of data and returns
// the contained version and payload. Any violation returns ErrCorrupt
// (wrapped).
func Unframe(data []byte) (version uint32, payload []byte, err error) {
	if len(data) < frameHeaderBytes+4 {
		return 0, nil, fmt.Errorf("%w: %d bytes is shorter than a frame", ErrCorrupt, len(data))
	}
	if binary.LittleEndian.Uint32(data) != frameMagic {
		return 0, nil, fmt.Errorf("%w: bad magic %#x", ErrCorrupt, binary.LittleEndian.Uint32(data))
	}
	version = binary.LittleEndian.Uint32(data[4:])
	n := int(binary.LittleEndian.Uint32(data[8:]))
	if frameHeaderBytes+n+4 != len(data) {
		return 0, nil, fmt.Errorf("%w: payload length %d does not match file size %d", ErrCorrupt, n, len(data))
	}
	body := data[:frameHeaderBytes+n]
	want := binary.LittleEndian.Uint32(data[frameHeaderBytes+n:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return 0, nil, fmt.Errorf("%w: crc %#x, want %#x", ErrCorrupt, got, want)
	}
	return version, data[frameHeaderBytes : frameHeaderBytes+n], nil
}
