package ckpt

import (
	"errors"
	"testing"

	"extbuf/internal/iomodel"
)

func TestRoundTrip(t *testing.T) {
	e := &Encoder{}
	e.U8(7)
	e.U32(0xdeadbeef)
	e.U64(1 << 60)
	e.I64(-42)
	e.Int(123456)
	e.F64(0.75)
	e.Bool(true)
	e.Bool(false)
	e.String("hello")
	e.String("")
	e.BlockIDs([]iomodel.BlockID{1, iomodel.NilBlock, 300})
	e.I64s([]int64{-1, 0, 9})
	e.U8s([]uint8{3, 2, 1})
	e.PairMap(map[uint64]uint64{10: 20, 30: 40})

	d := NewDecoder(e.Bytes())
	if got := d.U8(); got != 7 {
		t.Fatalf("U8 = %d", got)
	}
	if got := d.U32(); got != 0xdeadbeef {
		t.Fatalf("U32 = %#x", got)
	}
	if got := d.U64(); got != 1<<60 {
		t.Fatalf("U64 = %d", got)
	}
	if got := d.I64(); got != -42 {
		t.Fatalf("I64 = %d", got)
	}
	if got := d.Int(); got != 123456 {
		t.Fatalf("Int = %d", got)
	}
	if got := d.F64(); got != 0.75 {
		t.Fatalf("F64 = %v", got)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("Bool round trip failed")
	}
	if got := d.String(); got != "hello" {
		t.Fatalf("String = %q", got)
	}
	if got := d.String(); got != "" {
		t.Fatalf("empty String = %q", got)
	}
	ids := d.BlockIDs()
	if len(ids) != 3 || ids[0] != 1 || ids[1] != iomodel.NilBlock || ids[2] != 300 {
		t.Fatalf("BlockIDs = %v", ids)
	}
	i64s := d.I64s()
	if len(i64s) != 3 || i64s[0] != -1 || i64s[2] != 9 {
		t.Fatalf("I64s = %v", i64s)
	}
	u8s := d.U8s()
	if len(u8s) != 3 || u8s[0] != 3 {
		t.Fatalf("U8s = %v", u8s)
	}
	m := d.PairMap()
	if len(m) != 2 || m[10] != 20 || m[30] != 40 {
		t.Fatalf("PairMap = %v", m)
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left over", d.Remaining())
	}
}

func TestDecoderErrorSticks(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	if d.U64(); d.Err() == nil {
		t.Fatal("short read accepted")
	}
	if got := d.U8(); got != 0 {
		t.Fatal("reads after a failure must return zero values")
	}
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", d.Err())
	}
}

func TestDecoderImplausibleLength(t *testing.T) {
	e := &Encoder{}
	e.U32(1 << 30) // a length prefix far beyond the payload
	d := NewDecoder(e.Bytes())
	if d.BlockIDs(); !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", d.Err())
	}
}

func TestFrameRoundTripAndCorruption(t *testing.T) {
	payload := []byte("superblock payload")
	framed := Frame(3, payload)

	version, got, err := Unframe(framed)
	if err != nil || version != 3 || string(got) != string(payload) {
		t.Fatalf("Unframe = (%d, %q, %v)", version, got, err)
	}

	cases := map[string][]byte{
		"short":     framed[:8],
		"bad magic": append([]byte{9}, framed[1:]...),
		"bad crc":   append(append([]byte(nil), framed[:len(framed)-1]...), framed[len(framed)-1]^1),
		"truncated": framed[:len(framed)-2],
	}
	for name, data := range cases {
		if _, _, err := Unframe(data); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}
