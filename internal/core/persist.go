package core

import (
	"fmt"

	"extbuf/internal/chainhash"
	"extbuf/internal/ckpt"
	"extbuf/internal/hashfn"
	"extbuf/internal/iomodel"
	"extbuf/internal/logmethod"
)

// SaveState serializes the Theorem 2 structure's volatile in-memory
// state for a checkpoint: the merge parameter, the event counters, Ĥ's
// directory and the cascade (including the buffered H_0 — the paper's
// RAM buffer, exactly what a crash would lose without logging).
func (t *Table) SaveState(e *ckpt.Encoder) {
	e.Int(t.beta)
	e.Int(t.merges)
	e.Int(t.growths)
	t.big.SaveState(e)
	t.cascade.SaveState(e)
}

// Restore rebuilds a structure from a SaveState payload on a model
// whose store already holds the checkpointed blocks. It charges the
// same memory reservations as New.
func Restore(model *iomodel.Model, fn hashfn.Fn, d *ckpt.Decoder) (*Table, error) {
	beta := d.Int()
	merges := d.Int()
	growths := d.Int()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("core: restore: %w", err)
	}
	if beta < 2 || beta > model.B() || merges < 0 || growths < 0 {
		return nil, fmt.Errorf("core: restore: implausible state (beta=%d merges=%d growths=%d)",
			beta, merges, growths)
	}
	big, err := chainhash.Restore(model, fn, d)
	if err != nil {
		return nil, fmt.Errorf("core: restore big table: %w", err)
	}
	cascade, err := logmethod.Restore(model, fn, d)
	if err != nil {
		big.Close()
		return nil, fmt.Errorf("core: restore cascade: %w", err)
	}
	return &Table{
		model:   model,
		fn:      fn,
		big:     big,
		cascade: cascade,
		beta:    beta,
		merges:  merges,
		growths: growths,
	}, nil
}
