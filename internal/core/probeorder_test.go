package core

import (
	"testing"

	"extbuf/internal/workload"
	"extbuf/internal/xrand"
)

// TestLookupSmallestFirstAgreement: both probe orders must return the
// same results on a distinct-key table; smallest-first may only differ
// in cost.
func TestLookupSmallestFirstAgreement(t *testing.T) {
	_, tab := newCore(t, 16, 512, 8)
	rng := xrand.New(3)
	keys := workload.Keys(rng, 4000)
	for i, k := range keys {
		if _, err := tab.Insert(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range keys {
		v1, ok1, _ := tab.Lookup(k)
		v2, ok2, _ := tab.LookupSmallestFirst(k)
		if !ok1 || !ok2 || v1 != v2 || v1 != uint64(i) {
			t.Fatalf("probe orders disagree on key %d: (%d,%v) vs (%d,%v)", k, v1, ok1, v2, ok2)
		}
	}
	if _, ok, _ := tab.LookupSmallestFirst(0xdead); ok {
		t.Fatal("found absent key")
	}
}
