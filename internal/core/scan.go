package core

import "extbuf/internal/iomodel"

// ScanBuckets returns the number of scan buckets: the cascade's
// buckets followed by Ĥ's. The structure keeps at most one copy of
// each key (the package's API contract), so the concatenation emits
// each key exactly once.
func (t *Table) ScanBuckets() int {
	return t.cascade.ScanBuckets() + t.big.NumBuckets()
}

// ScanBucket appends bucket i's entries to buf, returning buf and the
// I/Os spent. Cascade buckets come first so freshly written keys appear
// early; bucket numbering shifts when the cascade merges or Ĥ doubles
// (the engine's weak cursor contract).
func (t *Table) ScanBucket(i int, buf []iomodel.Entry) ([]iomodel.Entry, int) {
	if nc := t.cascade.ScanBuckets(); i < nc {
		return t.cascade.ScanBucketUnique(i, buf)
	} else {
		i -= nc
	}
	return t.big.ScanBucket(i, buf)
}
