package core

import (
	"fmt"

	"extbuf/internal/chainhash"
	"extbuf/internal/hashfn"
	"extbuf/internal/iomodel"
)

// Staged is the budgeted buffering strategy used to trace the paper's
// lower-bound frontier (Theorem 1) empirically. It is the natural "best
// effort" adversary the proof of Theorem 1 shows cannot beat the bound:
//
//   - inserts accumulate in a memory buffer (the memory zone M, free);
//   - a full buffer is flushed to an append-only staging area on disk at
//     the sequential cost of ~1/b I/Os per item (the slow zone S);
//   - the slow-zone budget |S| <= m + delta*k (the paper's Eq. (1), the
//     most any structure with query cost 1 + delta may hold outside the
//     fast zone) forces a *cleaning* pass once staging outgrows it: all
//     staged items are read back and merged into their home buckets of
//     the main table.
//
// The cleaning pass is a physical (s, p, t) bin-ball game (§2 of the
// paper): s staged items are thrown into home buckets, and the I/O cost
// is the number of distinct buckets touched. When delta <= 1/b the
// budget keeps s below the bucket count, nearly every staged item
// touches its own bucket, and the measured amortized insertion cost
// approaches 1 (tradeoffs 1 and 2 of Theorem 1); when delta = 1/b^c for
// c < 1 the budget lets s reach b^(1-c) items per bucket and the cost
// per item falls to Theta(b^(c-1)) (tradeoff 3). The experiments sweep
// delta and watch the elbow at delta = Theta(1/b), the paper's sharp
// boundary of effective buffering.
//
// Queries: the lower bound constrains *zone sizes*, not a concrete query
// algorithm, so experiments cost queries with the paper's zone model
// ((|F| + 2|S|)/k via the zones audit; items in M are free). Lookup is
// still implemented honestly — home bucket first, then a staging scan —
// for API completeness.
type Staged struct {
	model        *iomodel.Model
	fn           hashfn.Fn
	main         *chainhash.Table
	buffer       map[uint64]uint64
	bufCap       int
	staging      []iomodel.BlockID
	stagingItems int
	delta        float64
	maxFill      float64
	inserted     int // k, the number of items inserted so far
	flushes      int
	cleanings    int
	memRes       int64
}

// StagedConfig parametrizes a Staged strategy.
type StagedConfig struct {
	// Delta is the slow-zone budget coefficient: staging holds at most
	// m + Delta*k items. Delta = 1/b^c positions the strategy on the
	// query budget t_q = 1 + O(1/b^c) of the paper's regime c.
	Delta float64
	// BufferCap is the memory buffer capacity in items; zero selects
	// m/2 (the other half of memory is the paper's working space).
	BufferCap int
	// MainMaxFill caps the main table's fill n/(b*buckets); zero
	// selects 0.5. Lower values burn more disk for a lower load factor
	// — the ablation for the paper's remark that extra disk space
	// cannot beat the lower bound.
	MainMaxFill float64
}

// NewStaged returns an empty staged strategy on the model.
func NewStaged(model *iomodel.Model, fn hashfn.Fn, cfg StagedConfig) (*Staged, error) {
	if cfg.Delta < 0 {
		return nil, fmt.Errorf("core: negative delta %v", cfg.Delta)
	}
	bufCap := cfg.BufferCap
	if bufCap == 0 {
		bufCap = int(model.MWords() / 2)
	}
	if bufCap < 1 {
		return nil, fmt.Errorf("core: buffer capacity %d < 1", bufCap)
	}
	res := int64(bufCap) + 8
	if err := model.Mem.Alloc(res); err != nil {
		return nil, fmt.Errorf("core: staged buffer: %w", err)
	}
	maxFill := cfg.MainMaxFill
	if maxFill == 0 {
		maxFill = 0.5
	}
	if maxFill < 0 || maxFill > 1 {
		model.Mem.Release(res)
		return nil, fmt.Errorf("core: main max fill %v out of (0, 1]", maxFill)
	}
	nb := hashfn.CeilPow2(int(float64(model.MWords()) / maxFill / float64(model.B())))
	if nb < 2 {
		nb = 2
	}
	main, err := chainhash.New(model, fn, nb)
	if err != nil {
		model.Mem.Release(res)
		return nil, fmt.Errorf("core: staged main table: %w", err)
	}
	return &Staged{
		model:   model,
		fn:      fn,
		main:    main,
		buffer:  make(map[uint64]uint64, bufCap),
		bufCap:  bufCap,
		delta:   cfg.Delta,
		maxFill: maxFill,
		memRes:  res,
	}, nil
}

// Delta returns the slow-zone budget coefficient.
func (s *Staged) Delta() float64 { return s.delta }

// Len returns the number of stored entries.
func (s *Staged) Len() int { return len(s.buffer) + s.stagingItems + s.main.Len() }

// StagingItems returns the current slow-zone population.
func (s *Staged) StagingItems() int { return s.stagingItems }

// Flushes returns the number of buffer-to-staging flushes.
func (s *Staged) Flushes() int { return s.flushes }

// Cleanings returns the number of staging-into-main cleaning passes.
func (s *Staged) Cleanings() int { return s.cleanings }

// budget returns the slow-zone capacity m + delta*k of Eq. (1).
func (s *Staged) budget() int {
	return int(float64(s.model.MWords()) + s.delta*float64(s.inserted))
}

// Insert stores (key, val) — keys must be distinct, as in the paper's
// workload — and returns the I/Os spent.
func (s *Staged) Insert(key, val uint64) int {
	s.buffer[key] = val
	s.inserted++
	if len(s.buffer) < s.bufCap {
		return 0
	}
	return s.flush()
}

// flush empties the memory buffer into the staging area, cleaning first
// if the slow-zone budget would be exceeded.
func (s *Staged) flush() int {
	ios := 0
	if s.stagingItems+len(s.buffer) > s.budget() {
		ios += s.clean()
	}
	entries := make([]iomodel.Entry, 0, len(s.buffer))
	for k, v := range s.buffer {
		entries = append(entries, iomodel.Entry{Key: k, Val: v})
	}
	s.buffer = make(map[uint64]uint64, s.bufCap)
	b := s.model.B()
	for len(entries) > 0 {
		n := len(entries)
		if n > b {
			n = b
		}
		id := s.model.Disk.Alloc()
		s.model.Disk.Write(id, entries[:n])
		ios++
		s.staging = append(s.staging, id)
		s.stagingItems += n
		entries = entries[n:]
	}
	s.flushes++
	return ios
}

// clean reads the staging area back and merges every staged item into
// its home bucket in the main table — the bin-ball game whose cost the
// lower bound analyzes. Staging blocks are then freed.
func (s *Staged) clean() int {
	ios := 0
	var all []iomodel.Entry
	for _, id := range s.staging {
		all = s.model.Disk.Read(id, all)
		ios++
		s.model.Disk.Free(id)
	}
	s.staging = s.staging[:0]
	s.stagingItems = 0
	ios += s.main.MergeIn(all)
	for s.main.Fill() > s.maxFill {
		ios += s.main.Grow()
	}
	s.cleanings++
	return ios
}

// FlushAll drains the buffer and staging into the main table (tests and
// end-of-run audits).
func (s *Staged) FlushAll() int {
	ios := 0
	if len(s.buffer) > 0 {
		ios += s.flush()
	}
	if s.stagingItems > 0 {
		ios += s.clean()
	}
	return ios
}

// Lookup probes the memory buffer (free), the home bucket, and finally
// scans the staging area. The staging scan is what the zone model prices
// at >= 2 I/Os; see the package comment for why experiments use the zone
// costing instead.
func (s *Staged) Lookup(key uint64) (val uint64, ok bool, ios int) {
	if v, hit := s.buffer[key]; hit {
		return v, true, 0
	}
	v, hit, c := s.main.Lookup(key)
	ios += c
	if hit {
		return v, true, ios
	}
	var buf []iomodel.Entry
	for _, id := range s.staging {
		buf = s.model.Disk.Read(id, buf[:0])
		ios++
		for _, e := range buf {
			if e.Key == key {
				return e.Val, true, ios
			}
		}
	}
	return 0, false, ios
}

// MemoryKeys returns the buffered keys (zone M) for the zones audit.
func (s *Staged) MemoryKeys() []uint64 {
	keys := make([]uint64, 0, len(s.buffer))
	for k := range s.buffer {
		keys = append(keys, k)
	}
	return keys
}

// AddressOf returns the main-table bucket head for key; staged items are
// outside B_f(x) and constitute the slow zone by construction.
func (s *Staged) AddressOf(key uint64) iomodel.BlockID {
	return s.main.AddressOf(key)
}

// Disk exposes the underlying disk for audits.
func (s *Staged) Disk() *iomodel.Disk { return s.model.Disk }

// Close releases all memory reservations.
func (s *Staged) Close() {
	s.main.Close()
	s.model.Mem.Release(s.memRes)
	s.memRes = 0
}
