package core

import (
	"math"
	"testing"

	"extbuf/internal/hashfn"
	"extbuf/internal/iomodel"
	"extbuf/internal/workload"
	"extbuf/internal/xrand"
	"extbuf/internal/zones"
)

func newStaged(t *testing.T, b int, mWords int64, delta float64) (*iomodel.Model, *Staged) {
	t.Helper()
	model := iomodel.NewModel(b, mWords)
	s, err := NewStaged(model, hashfn.NewIdeal(1), StagedConfig{Delta: delta})
	if err != nil {
		t.Fatal(err)
	}
	return model, s
}

func TestStagedInsertLookup(t *testing.T) {
	_, s := newStaged(t, 8, 256, 0.01)
	rng := xrand.New(2)
	keys := workload.Keys(rng, 3000)
	for i, k := range keys {
		s.Insert(k, uint64(i))
	}
	if s.Len() != 3000 {
		t.Fatalf("Len = %d", s.Len())
	}
	for i, k := range keys {
		v, ok, _ := s.Lookup(k)
		if !ok || v != uint64(i) {
			t.Fatalf("key %d lost (ok=%v)", k, ok)
		}
	}
	for i := 0; i < 100; i++ {
		if _, ok, _ := s.Lookup(rng.Uint64()); ok {
			t.Fatal("found absent key")
		}
	}
}

func TestStagedBudgetEnforced(t *testing.T) {
	// |S| = staging items must never exceed m + delta*k.
	b := 16
	mWords := int64(256)
	delta := 0.05
	_, s := newStaged(t, b, mWords, delta)
	rng := xrand.New(3)
	for i, k := range workload.Keys(rng, 20000) {
		s.Insert(k, 0)
		budget := float64(mWords) + delta*float64(i+1)
		if float64(s.StagingItems()) > budget {
			t.Fatalf("after %d inserts staging %d exceeds budget %.0f",
				i+1, s.StagingItems(), budget)
		}
	}
}

func TestStagedZoneAudit(t *testing.T) {
	model, s := newStaged(t, 16, 256, 0.02)
	rng := xrand.New(5)
	keys := workload.Keys(rng, 10000)
	for _, k := range keys {
		s.Insert(k, 0)
	}
	rep := zones.Audit(s, keys)
	if rep.M+rep.F+rep.S != rep.K {
		t.Fatalf("zones don't partition: %+v", rep)
	}
	// Eq. (1) with the structure's own delta plus chain-overflow slack.
	ok, slack := rep.CheckEq1(model.MWords(), 0.03)
	if !ok {
		t.Fatalf("Eq.(1) violated: %s slack=%.0f", rep, slack)
	}
	if rep.M > int(model.MWords()) {
		t.Fatalf("|M| = %d exceeds memory", rep.M)
	}
}

// measureStagedTu returns the measured amortized insertion cost at the
// given delta.
func measureStagedTu(t *testing.T, b int, mWords int64, n int, delta float64) float64 {
	t.Helper()
	model := iomodel.NewModel(b, mWords)
	s, err := NewStaged(model, hashfn.NewIdeal(1), StagedConfig{Delta: delta})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(7)
	for _, k := range workload.Keys(rng, n) {
		s.Insert(k, 0)
	}
	return float64(model.Counters().IOs()) / float64(n)
}

func TestTheorem1Regimes(t *testing.T) {
	// The staged strategy's measured t_u must trace the three regimes of
	// Theorem 1 as delta = 1/b^c varies:
	//   c > 1  -> t_u near 1 (buffering useless),
	//   c = 1  -> t_u = Theta(1),
	//   c < 1  -> t_u = Theta(b^(c-1)) << 1.
	b := 64
	mWords := int64(512)
	n := 60000
	fb := float64(b)
	tuHigh := measureStagedTu(t, b, mWords, n, 1/math.Pow(fb, 1.5)) // c = 1.5
	tuOne := measureStagedTu(t, b, mWords, n, 1/fb)                 // c = 1
	tuLow := measureStagedTu(t, b, mWords, n, 1/math.Pow(fb, 0.5))  // c = 0.5
	if tuHigh < 0.5 {
		t.Fatalf("c=1.5: t_u = %.4f, lower bound says it must stay near 1", tuHigh)
	}
	if !(tuLow < tuOne && tuOne <= tuHigh+0.2) {
		t.Fatalf("regimes out of order: c=1.5:%.4f c=1:%.4f c=0.5:%.4f", tuHigh, tuOne, tuLow)
	}
	// c = 0.5: t_u = Theta(b^(-1/2)). The full asymptotic gap needs the
	// paper's precondition n/m > b^(1+2c), far beyond laptop scale for
	// c = 1.5, so demand a clear 2x separation rather than the limit
	// value (see EXPERIMENTS.md, experiment T1.*).
	if tuLow > tuHigh/2 {
		t.Fatalf("c=0.5 t_u %.4f not clearly below c=1.5 t_u %.4f", tuLow, tuHigh)
	}
}

func TestStagedFlushAll(t *testing.T) {
	_, s := newStaged(t, 8, 256, 0.5)
	rng := xrand.New(11)
	keys := workload.Keys(rng, 500)
	for i, k := range keys {
		s.Insert(k, uint64(i))
	}
	s.FlushAll()
	if s.StagingItems() != 0 {
		t.Fatalf("staging not drained: %d", s.StagingItems())
	}
	if len(s.MemoryKeys()) != 0 {
		t.Fatal("buffer not drained")
	}
	for i, k := range keys {
		v, ok, _ := s.Lookup(k)
		if !ok || v != uint64(i) {
			t.Fatalf("key %d lost in FlushAll", k)
		}
	}
}

func TestStagedDeltaZero(t *testing.T) {
	// delta = 0: the budget is just m, forcing a clean on nearly every
	// flush; the strategy degrades toward ~1 I/O per item, the c > 1
	// regime in its purest form.
	tu := measureStagedTu(t, 64, 512, 30000, 0)
	if tu < 0.4 {
		t.Fatalf("delta=0 t_u = %.4f, expected near-1 (no slow zone allowed)", tu)
	}
}

func TestStagedCounters(t *testing.T) {
	_, s := newStaged(t, 8, 128, 0.1)
	rng := xrand.New(13)
	for _, k := range workload.Keys(rng, 2000) {
		s.Insert(k, 0)
	}
	if s.Flushes() == 0 {
		t.Fatal("no flushes recorded")
	}
	if s.Cleanings() == 0 {
		t.Fatal("no cleanings recorded")
	}
	if s.Delta() != 0.1 {
		t.Fatalf("Delta = %v", s.Delta())
	}
}

func TestStagedMemoryRelease(t *testing.T) {
	model, s := newStaged(t, 8, 256, 0.1)
	s.Insert(1, 1)
	s.Close()
	if model.Mem.Used() != 0 {
		t.Fatalf("Close left %d words", model.Mem.Used())
	}
}

func TestStagedRejectsNegativeDelta(t *testing.T) {
	model := iomodel.NewModel(8, 256)
	if _, err := NewStaged(model, hashfn.NewIdeal(1), StagedConfig{Delta: -1}); err == nil {
		t.Fatal("negative delta accepted")
	}
}
