// Package core implements the paper's constructive contribution: the
// dynamic hash table of Theorem 2 of Wei, Yi, Zhang, "Dynamic External
// Hashing: The Limit of Buffering" (SPAA 2009), together with the staged
// buffering strategy used to trace the paper's lower-bound frontier
// (Theorem 1) empirically.
//
// # The Theorem 2 structure
//
// The structure bootstraps the logarithmic method (Lemma 5, package
// logmethod) to push almost all items into one big external hash table
// Ĥ whose lookups cost ~1 I/O:
//
//   - New items enter the logarithmic cascade (memory table H_0 plus
//     geometrically growing disk tables).
//   - Every time the cascade accumulates a 1/beta fraction of Ĥ's size,
//     its entire contents are merged into Ĥ by sequential scans and the
//     cascade is cleared. Ĥ therefore always holds at least a 1 - 1/beta
//     fraction of all items.
//   - When Ĥ's load factor reaches 1/2 its bucket count doubles via one
//     sequential rebuild (top-bit addressing splits every bucket into two
//     adjacent buckets), which is the paper's round transition: in round
//     i the size of Ĥ goes from 2^(i-1)·m to 2^i·m.
//
// Lookups probe H_0 (free), then Ĥ (~1 I/O), then the cascade's disk
// levels largest-first — the order behind the paper's cost computation
//
//	(1 + 1/2^Ω(b)) · (1·(1-1/β) + (1/β)·(2·1/2 + 3·1/4 + ...)) = 1 + O(1/β).
//
// With beta = b^c (c < 1 constant) and gamma = 2, Theorem 2 gives
// amortized insertion cost O(b^(c-1)) = o(1) I/Os and expected average
// successful lookups in 1 + O(1/b^c) I/Os; with beta = (eps/(2c'))·b the
// insertion cost is eps for lookups in 1 + O(1/b). Both parameterizations
// are exercised by the benchmarks.
//
// # API contract
//
// Insert requires a key not currently in the table (the paper's model:
// n distinct uniform items); this is what keeps at most one copy of each
// key alive and makes the largest-first probe order sound. Upsert
// provides read-modify-write semantics at ~1 extra I/O by updating in
// place wherever the key lives. Delete (an extension; the paper studies
// insertions) purges the key from every component.
package core

import (
	"fmt"

	"extbuf/internal/chainhash"
	"extbuf/internal/hashfn"
	"extbuf/internal/iomodel"
	"extbuf/internal/logmethod"
)

// Config parametrizes the Theorem 2 structure.
type Config struct {
	// Beta is the paper's merge parameter: the cascade is merged into Ĥ
	// every |Ĥ|/Beta insertions, so Ĥ holds a 1 - 1/Beta fraction of all
	// items and successful lookups cost 1 + O(1/Beta). Must satisfy
	// 2 <= Beta <= b. Setting Beta = b^c for a constant c < 1 yields the
	// first form of Theorem 2.
	Beta int
	// Gamma is the cascade's growth factor (>= 2, rounded to a power of
	// two). Theorem 2 sets Gamma = 2.
	Gamma int
	// H0Cap overrides the cascade's in-memory buffer capacity in items;
	// zero selects m/4.
	H0Cap int
}

// Table is the Theorem 2 dynamic hash table. Not safe for concurrent
// use.
type Table struct {
	model   *iomodel.Model
	fn      hashfn.Fn
	big     *chainhash.Table // Ĥ
	cascade *logmethod.Table // H_0, H_1, ... of the logarithmic method
	beta    int
	merges  int // cascade-into-Ĥ merge events
	growths int // Ĥ doubling events
}

// New returns an empty Theorem 2 table on the model.
func New(model *iomodel.Model, fn hashfn.Fn, cfg Config) (*Table, error) {
	beta := cfg.Beta
	if beta < 2 {
		beta = 2
	}
	if beta > model.B() {
		return nil, fmt.Errorf("core: beta %d exceeds block size %d (paper requires 2 <= beta <= b)", beta, model.B())
	}
	// Ĥ starts sized for the first m items at load 1/2.
	nb := hashfn.CeilPow2(int(2*model.MWords()) / model.B())
	if nb < 2 {
		nb = 2
	}
	big, err := chainhash.New(model, fn, nb)
	if err != nil {
		return nil, fmt.Errorf("core: big table: %w", err)
	}
	cascade, err := logmethod.New(model, fn, logmethod.Config{Gamma: cfg.Gamma, H0Cap: cfg.H0Cap})
	if err != nil {
		big.Close()
		return nil, fmt.Errorf("core: cascade: %w", err)
	}
	return &Table{
		model:   model,
		fn:      fn,
		big:     big,
		cascade: cascade,
		beta:    beta,
	}, nil
}

// Beta returns the merge parameter.
func (t *Table) Beta() int { return t.beta }

// Len returns the number of stored entries.
func (t *Table) Len() int { return t.big.Len() + t.cascade.Len() }

// BigLen returns the number of entries in Ĥ.
func (t *Table) BigLen() int { return t.big.Len() }

// CascadeLen returns the number of entries in the logarithmic cascade.
func (t *Table) CascadeLen() int { return t.cascade.Len() }

// Merges returns the number of cascade-into-Ĥ merges performed.
func (t *Table) Merges() int { return t.merges }

// Growths returns the number of Ĥ doublings performed.
func (t *Table) Growths() int { return t.growths }

// BigFraction returns the fraction of items resident in Ĥ; the paper
// guarantees >= 1 - 1/beta (up to the current merge window).
func (t *Table) BigFraction() float64 {
	n := t.Len()
	if n == 0 {
		return 1
	}
	return float64(t.big.Len()) / float64(n)
}

// window returns the merge window: the cascade size that triggers a
// merge into Ĥ. The paper uses 2^(i-1)·m/beta in round i, i.e. |Ĥ|/beta;
// max(m, ·) makes the first window the initial dump of m items.
func (t *Table) window() int {
	w := t.big.Len()
	if mw := int(t.model.MWords()); w < mw {
		w = mw
	}
	w /= t.beta
	if w < 1 {
		w = 1
	}
	return w
}

// Insert stores (key, val) and returns the I/Os spent (zero for most
// inserts; merge costs are charged to the insert that triggers them and
// amortize to O(beta/b + (gamma/b)·log(n/m)) per insertion).
//
// The key must not already be present (see the package contract); use
// Upsert for read-modify-write semantics.
func (t *Table) Insert(key, val uint64) (int, error) {
	ios, err := t.cascade.Insert(key, val)
	if err != nil {
		return ios, err
	}
	if t.cascade.Len() >= t.window() {
		ios += t.mergeCascade()
	}
	return ios, nil
}

// mergeCascade absorbs the entire cascade into Ĥ and clears it, then
// doubles Ĥ if the merge pushed its load factor past 1/2.
func (t *Table) mergeCascade() int {
	entries, ios := t.cascade.CollectAll(nil)
	ios += t.big.MergeIn(entries)
	t.cascade.Clear()
	t.merges++
	for t.big.Fill() > 0.5 {
		ios += t.big.Grow()
		t.growths++
	}
	return ios
}

// Flush forces a cascade merge regardless of the window, returning the
// I/Os spent. Useful before bulk read phases and in tests.
func (t *Table) Flush() int {
	if t.cascade.Len() == 0 {
		return 0
	}
	return t.mergeCascade()
}

// Lookup returns the value for key and the I/Os spent, probing H_0
// (free), then Ĥ, then the cascade levels largest-first.
func (t *Table) Lookup(key uint64) (val uint64, ok bool, ios int) {
	if v, hit := t.cascade.LookupMem(key); hit {
		return v, true, 0
	}
	v, hit, c := t.big.Lookup(key)
	ios += c
	if hit {
		return v, true, ios
	}
	v, hit, c = t.cascade.LookupLevelsLargestFirst(key)
	ios += c
	return v, hit, ios
}

// LookupSmallestFirst is an ablation hook: like Lookup, but probes the
// cascade's disk levels smallest-first instead of largest-first. Since
// most of the cascade's mass sits in its largest level, this order makes
// a uniformly random cascade item pay ~all levels instead of O(1)
// expected probes — the constant §3 of the paper buys with its ordering.
// The Ablations experiment quantifies the difference.
func (t *Table) LookupSmallestFirst(key uint64) (val uint64, ok bool, ios int) {
	if v, hit := t.cascade.LookupMem(key); hit {
		return v, true, 0
	}
	v, hit, c := t.big.Lookup(key)
	ios += c
	if hit {
		return v, true, ios
	}
	v, hit, c = t.cascade.LookupLevels(key)
	ios += c
	return v, hit, ios
}

// Upsert stores (key, val) whether or not key is present, updating in
// place when it is. It costs ~1 I/O more than Insert for keys that turn
// out to be new (the existence probe), matching the cost of a standard
// hash table; workloads that know their keys are fresh should call
// Insert.
func (t *Table) Upsert(key, val uint64) (int, error) {
	if _, hit := t.cascade.LookupMem(key); hit {
		return t.cascade.Insert(key, val) // overwrites the H_0 copy
	}
	ok, ios := t.big.Update(key, val)
	if ok {
		return ios, nil
	}
	ok, c := t.cascade.UpdateLevels(key, val)
	ios += c
	if ok {
		return ios, nil
	}
	c, err := t.Insert(key, val)
	return ios + c, err
}

// Delete removes key from every component (extension; see package doc).
// Reports whether it was present and the I/Os spent.
func (t *Table) Delete(key uint64) (ok bool, ios int) {
	ok, ios = t.cascade.Delete(key)
	big, c := t.big.Delete(key)
	ios += c
	return ok || big, ios
}

// LoadFactor returns the paper's load factor of Ĥ (the dominant disk
// footprint).
func (t *Table) LoadFactor() float64 { return t.big.LoadFactor() }

// MemoryKeys returns the keys buffered in the cascade's H_0 (the
// paper's memory zone M), for the zones audit.
func (t *Table) MemoryKeys() []uint64 { return t.cascade.MemoryKeys() }

// AddressOf returns the first disk block a query for key probes: its Ĥ
// bucket head. Items in the cascade's disk levels (a <= 1/beta fraction)
// and in Ĥ overflow blocks are outside B_f(x), forming the slow zone the
// paper's Eq. (1) bounds by m + delta*k with delta = Theta(1/beta).
func (t *Table) AddressOf(key uint64) iomodel.BlockID {
	return t.big.AddressOf(key)
}

// Disk exposes the underlying disk for audits.
func (t *Table) Disk() *iomodel.Disk { return t.model.Disk }

// Close releases all memory reservations.
func (t *Table) Close() {
	t.cascade.Close()
	t.big.Close()
}
