package core

import (
	"math"
	"testing"
	"testing/quick"

	"extbuf/internal/hashfn"
	"extbuf/internal/iomodel"
	"extbuf/internal/workload"
	"extbuf/internal/xrand"
	"extbuf/internal/zones"
)

func newCore(t *testing.T, b int, mWords int64, beta int) (*iomodel.Model, *Table) {
	t.Helper()
	model := iomodel.NewModel(b, mWords)
	tab, err := New(model, hashfn.NewIdeal(1), Config{Beta: beta, Gamma: 2})
	if err != nil {
		t.Fatal(err)
	}
	return model, tab
}

func TestInsertLookup(t *testing.T) {
	_, tab := newCore(t, 16, 512, 8)
	rng := xrand.New(2)
	keys := workload.Keys(rng, 5000)
	for i, k := range keys {
		if _, err := tab.Insert(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tab.Len() != 5000 {
		t.Fatalf("Len = %d", tab.Len())
	}
	for i, k := range keys {
		v, ok, _ := tab.Lookup(k)
		if !ok || v != uint64(i) {
			t.Fatalf("key %d lost (ok=%v v=%d want %d)", k, ok, v, i)
		}
	}
	for i := 0; i < 200; i++ {
		if _, ok, _ := tab.Lookup(rng.Uint64()); ok {
			t.Fatal("found absent key")
		}
	}
}

func TestBigFractionInvariant(t *testing.T) {
	// The paper: Ĥ always holds >= 1 - 1/beta of all items (checked once
	// past the initial dump of ~m items).
	beta := 8
	_, tab := newCore(t, 16, 512, beta)
	rng := xrand.New(3)
	keys := workload.Keys(rng, 20000)
	for i, k := range keys {
		if _, err := tab.Insert(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
		if i > 2*512 {
			// Allow the current in-flight window on top of 1/beta.
			frac := tab.BigFraction()
			floor := 1 - 2.5/float64(beta)
			if frac < floor {
				t.Fatalf("after %d inserts BigFraction %.4f < %.4f", i+1, frac, floor)
			}
		}
	}
}

func TestTheorem2QueryCost(t *testing.T) {
	// t_q <= 1 + O(1/beta) for successful lookups.
	b := 64
	beta := 16
	model, tab := newCore(t, b, 2048, beta)
	rng := xrand.New(5)
	n := 60000
	keys := workload.Keys(rng, n)
	for _, k := range keys {
		if _, err := tab.Insert(k, 0); err != nil {
			t.Fatal(err)
		}
	}
	qs := workload.SuccessfulQueries(rng, keys, n, 5000)
	c0 := model.Counters()
	for _, q := range qs {
		if _, ok, _ := tab.Lookup(q); !ok {
			t.Fatal("lost key")
		}
	}
	tq := float64(model.Counters().Sub(c0).IOs()) / float64(len(qs))
	bound := 1 + 6.0/float64(beta)
	if tq > bound {
		t.Fatalf("t_q = %.4f exceeds 1 + O(1/beta) ~ %.4f", tq, bound)
	}
	if tq < 0.8 {
		t.Fatalf("t_q = %.4f implausibly low", tq)
	}
}

func TestTheorem2InsertCost(t *testing.T) {
	// t_u = O(beta/b + (gamma/b) log(n/m)) — in particular o(1) when
	// beta << b. Also: larger beta must cost more than smaller beta.
	b := 128
	measure := func(beta int) float64 {
		model, tab := newCore(t, b, 2048, beta)
		rng := xrand.New(7)
		n := 80000
		keys := workload.Keys(rng, n)
		c0 := model.Counters()
		for _, k := range keys {
			if _, err := tab.Insert(k, 0); err != nil {
				t.Fatal(err)
			}
		}
		return float64(model.Counters().Sub(c0).IOs()) / float64(n)
	}
	tu4 := measure(4)
	tu32 := measure(32)
	if tu4 >= 1 || tu32 >= 1 {
		t.Fatalf("insert costs not o(1): beta=4: %.4f, beta=32: %.4f", tu4, tu32)
	}
	if tu32 <= tu4 {
		t.Fatalf("beta=32 (%.4f) should cost more than beta=4 (%.4f)", tu32, tu4)
	}
}

func TestQueryInsertTradeoff(t *testing.T) {
	// The heart of Figure 1's upper-bound curve: raising beta buys query
	// cost closer to 1 at higher insert cost.
	b := 64
	type point struct{ tq, tu float64 }
	measure := func(beta int) point {
		model, tab := newCore(t, b, 1024, beta)
		rng := xrand.New(11)
		n := 40000
		keys := workload.Keys(rng, n)
		c0 := model.Counters()
		for _, k := range keys {
			tab.Insert(k, 0)
		}
		tu := float64(model.Counters().Sub(c0).IOs()) / float64(n)
		qs := workload.SuccessfulQueries(rng, keys, n, 4000)
		c1 := model.Counters()
		for _, q := range qs {
			tab.Lookup(q)
		}
		tq := float64(model.Counters().Sub(c1).IOs()) / float64(len(qs))
		return point{tq, tu}
	}
	p4 := measure(4)
	p32 := measure(32)
	if !(p32.tq < p4.tq) {
		t.Fatalf("higher beta should lower t_q: beta4 tq=%.4f beta32 tq=%.4f", p4.tq, p32.tq)
	}
	if !(p32.tu > p4.tu) {
		t.Fatalf("higher beta should raise t_u: beta4 tu=%.4f beta32 tu=%.4f", p4.tu, p32.tu)
	}
}

func TestUpsert(t *testing.T) {
	_, tab := newCore(t, 8, 256, 4)
	rng := xrand.New(13)
	keys := workload.Keys(rng, 1000)
	for i, k := range keys {
		if _, err := tab.Upsert(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tab.Len() != 1000 {
		t.Fatalf("Len = %d", tab.Len())
	}
	// Overwrite everything through Upsert; count must not change and
	// values must be fresh regardless of where each key lives.
	for i, k := range keys {
		if _, err := tab.Upsert(k, uint64(i)+5000); err != nil {
			t.Fatal(err)
		}
	}
	if tab.Len() != 1000 {
		t.Fatalf("Len = %d after upserts", tab.Len())
	}
	for i, k := range keys {
		v, ok, _ := tab.Lookup(k)
		if !ok || v != uint64(i)+5000 {
			t.Fatalf("key %d: v=%d ok=%v", k, v, ok)
		}
	}
}

func TestDelete(t *testing.T) {
	_, tab := newCore(t, 8, 256, 4)
	rng := xrand.New(17)
	keys := workload.Keys(rng, 800)
	for i, k := range keys {
		tab.Insert(k, uint64(i))
	}
	for i, k := range keys {
		if i%2 == 0 {
			ok, _ := tab.Delete(k)
			if !ok {
				t.Fatalf("delete %d failed", k)
			}
		}
	}
	for i, k := range keys {
		_, ok, _ := tab.Lookup(k)
		if (i%2 == 0) == ok {
			t.Fatalf("key %d presence wrong", k)
		}
	}
	if ok, _ := tab.Delete(999); ok {
		t.Fatal("deleted absent key")
	}
}

func TestFlush(t *testing.T) {
	_, tab := newCore(t, 8, 256, 4)
	rng := xrand.New(19)
	keys := workload.Keys(rng, 100)
	for i, k := range keys {
		tab.Insert(k, uint64(i))
	}
	tab.Flush()
	if tab.CascadeLen() != 0 {
		t.Fatalf("cascade not empty after flush: %d", tab.CascadeLen())
	}
	if tab.BigLen() != 100 {
		t.Fatalf("big table has %d items", tab.BigLen())
	}
	for i, k := range keys {
		v, ok, _ := tab.Lookup(k)
		if !ok || v != uint64(i) {
			t.Fatalf("key %d lost in flush", k)
		}
	}
	if tab.Flush() != 0 {
		t.Fatal("flushing empty cascade cost I/Os")
	}
}

func TestZoneAuditEq1(t *testing.T) {
	// The structure must satisfy Eq. (1): |S| <= m + delta*k with
	// delta = Theta(1/beta).
	b := 64
	beta := 16
	model, tab := newCore(t, b, 1024, beta)
	rng := xrand.New(23)
	keys := workload.Keys(rng, 30000)
	for _, k := range keys {
		tab.Insert(k, 0)
	}
	rep := zones.Audit(tab, keys)
	if rep.K != 30000 || rep.M+rep.F+rep.S != rep.K {
		t.Fatalf("audit inconsistent: %+v", rep)
	}
	delta := 3.0 / float64(beta)
	ok, slack := rep.CheckEq1(model.MWords(), delta)
	if !ok {
		t.Fatalf("Eq.(1) violated: %s, slack %.1f at delta=%.4f", rep, slack, delta)
	}
	// And the zone-model query cost must be 1 + O(1/beta).
	if mc := rep.ModelQueryCost(); mc > 1+6/float64(beta) {
		t.Fatalf("zone-model query cost %.4f too high", mc)
	}
}

func TestMemoryBudget(t *testing.T) {
	model, tab := newCore(t, 16, 512, 4)
	rng := xrand.New(29)
	for _, k := range workload.Keys(rng, 20000) {
		if _, err := tab.Insert(k, 0); err != nil {
			t.Fatal(err)
		}
		if model.Mem.Used() > model.Mem.Capacity() {
			t.Fatal("memory budget exceeded")
		}
	}
	tab.Close()
	if model.Mem.Used() != 0 {
		t.Fatalf("Close left %d words", model.Mem.Used())
	}
}

func TestBetaValidation(t *testing.T) {
	model := iomodel.NewModel(8, 256)
	if _, err := New(model, hashfn.NewIdeal(1), Config{Beta: 9, Gamma: 2}); err == nil {
		t.Fatal("beta > b accepted")
	}
	// Beta below 2 is clamped, not rejected.
	tab, err := New(model, hashfn.NewIdeal(1), Config{Beta: 0, Gamma: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Beta() != 2 {
		t.Fatalf("Beta = %d, want clamp to 2", tab.Beta())
	}
}

func TestGrowthDoublesRounds(t *testing.T) {
	_, tab := newCore(t, 16, 512, 4)
	rng := xrand.New(31)
	for _, k := range workload.Keys(rng, 30000) {
		tab.Insert(k, 0)
	}
	if tab.Growths() < 3 {
		t.Fatalf("expected several Ĥ doublings, got %d", tab.Growths())
	}
	if tab.Merges() < tab.Growths() {
		t.Fatalf("merges (%d) should outnumber growths (%d)", tab.Merges(), tab.Growths())
	}
	if lf := tab.LoadFactor(); lf > 0.7 || lf <= 0 {
		t.Fatalf("Ĥ load factor %.3f outside (0, 0.7]", lf)
	}
}

func TestEpsilonParameterization(t *testing.T) {
	// Theorem 2 second form: beta = (eps/2c')*b gives t_u ~ eps with
	// t_q = 1 + O(1/b). Check that scaling beta linearly with b holds
	// t_u roughly constant across block sizes.
	measure := func(b int) float64 {
		beta := b / 8
		model, tab := newCore(t, b, 2048, beta)
		rng := xrand.New(37)
		n := 60000
		for _, k := range workload.Keys(rng, n) {
			tab.Insert(k, 0)
		}
		return float64(model.Counters().IOs()) / float64(n)
	}
	t64 := measure(64)
	t256 := measure(256)
	if t64 >= 1 || t256 >= 1 {
		t.Fatalf("eps-parameterized insert cost not < 1: %v %v", t64, t256)
	}
	ratio := t64 / t256
	if ratio > 3 || ratio < 1.0/3 {
		t.Fatalf("t_u should be roughly b-independent at beta ~ b: %v vs %v", t64, t256)
	}
}

func TestMatchesMapModel(t *testing.T) {
	f := func(seed uint64, ops []byte) bool {
		model := iomodel.NewModel(4, 128)
		tab, err := New(model, hashfn.NewIdeal(seed), Config{Beta: 4, Gamma: 2})
		if err != nil {
			return false
		}
		ref := map[uint64]uint64{}
		r := xrand.New(seed)
		for _, op := range ops {
			key := uint64(op % 32)
			switch op % 4 {
			case 0, 1:
				v := r.Uint64()
				if _, err := tab.Upsert(key, v); err != nil {
					return false
				}
				ref[key] = v
			case 2:
				ok, _ := tab.Delete(key)
				_, inRef := ref[key]
				if ok != inRef {
					return false
				}
				delete(ref, key)
			default:
				v, ok, _ := tab.Lookup(key)
				rv, rok := ref[key]
				if ok != rok || (ok && v != rv) {
					return false
				}
			}
		}
		for k, v := range ref {
			got, ok, _ := tab.Lookup(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInsertCostShrinksWithBlockSize(t *testing.T) {
	// Fixing beta, t_u = O(beta/b + (2/b)log(n/m)) must shrink as b
	// grows — the defining property of effective buffering (c < 1 side
	// of Figure 1).
	measure := func(b int) float64 {
		model, tab := newCore(t, b, 2048, 8)
		rng := xrand.New(41)
		n := 60000
		for _, k := range workload.Keys(rng, n) {
			tab.Insert(k, 0)
		}
		return float64(model.Counters().IOs()) / float64(n)
	}
	t32 := measure(32)
	t256 := measure(256)
	if !(t256 < t32) {
		t.Fatalf("t_u did not shrink with b: b=32 %.4f, b=256 %.4f", t32, t256)
	}
	if ratio := t32 / t256; ratio < 3 {
		t.Fatalf("t_u scaling with b too weak: ratio %.2f (want ~8)", ratio)
	}
	if math.IsNaN(t32) || math.IsNaN(t256) {
		t.Fatal("NaN costs")
	}
}
