package experiments

import (
	"fmt"

	"extbuf/internal/core"
	"extbuf/internal/iomodel"
	"extbuf/internal/tablefmt"
	"extbuf/internal/workload"
)

// Ablations quantifies the design choices DESIGN.md calls out, all on
// the Theorem 2 structure at beta = b^0.5:
//
//  1. The footnote-2 accounting (write-back immediately after a read is
//     one seek): the same run costed both ways. The paper's merge-based
//     structure leans on write-backs, so charging them shifts its t_u
//     visibly while leaving the plain-table baseline at ~2x exactly.
//  2. The cascade probe order of §3 (largest level first): measured t_q
//     against the freshness order (smallest first). Largest-first is
//     what keeps the cascade's contribution to t_q at O(1/beta).
//  3. The hash family: ideal mixer vs 2-universal multiply-shift vs
//     simple tabulation. The paper assumes ideal hashing; the results
//     should be (and are) insensitive to the family, supporting the
//     substitution in DESIGN.md §5.
func Ablations(cfg Config) (*tablefmt.Table, error) {
	t := tablefmt.New("Ablations (Theorem 2 structure, beta=b^0.5)",
		"ablation", "variant", "tu", "tq")
	t.AddNote("b=%d m=%d n=%d", cfg.B, cfg.MWords, cfg.N)
	beta := betaFor(cfg.B, 0.5)

	// 1. Accounting: one run, two costings.
	{
		model := iomodel.NewModel(cfg.B, cfg.MWords)
		tab, err := core.New(model, cfg.fn(2000), core.Config{Beta: beta, Gamma: 2})
		if err != nil {
			return nil, err
		}
		rng := cfg.rng(2000)
		keys := workload.Keys(rng, cfg.N)
		for _, k := range keys {
			if _, err := tab.Insert(k, 0); err != nil {
				return nil, err
			}
		}
		ins := model.Counters()
		qs := workload.SuccessfulQueries(rng, keys, cfg.N, cfg.QuerySamples)
		for _, q := range qs {
			tab.Lookup(q)
		}
		qry := model.Counters().Sub(ins)
		t.AddRow("accounting", "footnote 2 (write-backs free)",
			float64(ins.IOs())/float64(cfg.N),
			float64(qry.IOs())/float64(len(qs)))
		t.AddRow("accounting", "write-backs charged",
			float64(ins.Transfers())/float64(cfg.N),
			float64(qry.Transfers())/float64(len(qs)))
		tab.Close()
	}

	// 2. Probe order: same table, two query paths. Queries are sampled
	// uniformly from the whole key set; only the cascade-resident slice
	// differs between the orders.
	{
		model := iomodel.NewModel(cfg.B, cfg.MWords)
		tab, err := core.New(model, cfg.fn(2001), core.Config{Beta: beta, Gamma: 2})
		if err != nil {
			return nil, err
		}
		rng := cfg.rng(2001)
		keys := workload.Keys(rng, cfg.N)
		for _, k := range keys {
			if _, err := tab.Insert(k, 0); err != nil {
				return nil, err
			}
		}
		qs := workload.SuccessfulQueries(rng, keys, cfg.N, cfg.QuerySamples)
		c0 := model.Counters()
		for _, q := range qs {
			if _, ok, _ := tab.Lookup(q); !ok {
				return nil, fmt.Errorf("ablations: lost key %d", q)
			}
		}
		c1 := model.Counters()
		for _, q := range qs {
			if _, ok, _ := tab.LookupSmallestFirst(q); !ok {
				return nil, fmt.Errorf("ablations: lost key %d", q)
			}
		}
		c2 := model.Counters()
		t.AddRow("cascade probe order", "largest level first (paper §3)", "",
			float64(c1.Sub(c0).IOs())/float64(len(qs)))
		t.AddRow("cascade probe order", "smallest level first", "",
			float64(c2.Sub(c1).IOs())/float64(len(qs)))
		tab.Close()
	}

	// 3. Hash family sensitivity.
	for i, family := range []string{"ideal", "multshift", "tabulation"} {
		fcfg := cfg
		fcfg.HashFamily = family
		m, err := fcfg.runCore(beta, uint64(2010+i))
		if err != nil {
			return nil, err
		}
		t.AddRow("hash family", family, m.tu, m.tq)
	}

	// 4. Disk space: the paper remarks its lower bounds "do not depend
	// on the load factor, which implies the hash table cannot do better
	// by consuming more disk space." Measured on the staged strategy:
	// quadrupling the main table's bucket count (quartering its load)
	// does not reduce the insertion cost — the cleaning bin-ball game
	// only gets *more* bins to touch.
	for _, loadDiv := range []int{1, 4} {
		model := iomodel.NewModel(cfg.B, cfg.StagedMWords)
		s, err := core.NewStaged(model, cfg.fn(uint64(2020+loadDiv)), core.StagedConfig{
			Delta:       1 / float64(cfg.B), // the c = 1 boundary
			MainMaxFill: 0.5 / float64(loadDiv),
		})
		if err != nil {
			return nil, err
		}
		rng := cfg.rng(uint64(2020 + loadDiv))
		for _, k := range workload.Keys(rng, cfg.N) {
			s.Insert(k, 0)
		}
		variant := "main table load <= 0.5"
		if loadDiv != 1 {
			variant = "main table load <= 0.125 (4x the disk)"
		}
		t.AddRow("disk space (Thm 1 remark)", variant,
			float64(model.Counters().IOs())/float64(cfg.N), "")
		s.Close()
	}
	return t, nil
}
