package experiments

import "testing"

func TestAblations(t *testing.T) {
	tab, err := Ablations(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Accounting: charging write-backs must strictly raise tu (the
	// merges lean on them) and leave it below 2x (every write-back has
	// a paired read).
	var tuFree, tuCharged float64
	fmtSscan(tab.Rows[0][2], &tuFree)
	fmtSscan(tab.Rows[1][2], &tuCharged)
	if !(tuCharged > tuFree) {
		t.Fatalf("charging write-backs did not raise tu: %v vs %v", tuFree, tuCharged)
	}
	if tuCharged > 2*tuFree {
		t.Fatalf("charged tu %v exceeds 2x free tu %v", tuCharged, tuFree)
	}
	// Probe order: largest-first must not lose to smallest-first.
	var tqLargest, tqSmallest float64
	fmtSscan(tab.Rows[2][3], &tqLargest)
	fmtSscan(tab.Rows[3][3], &tqSmallest)
	if tqLargest > tqSmallest+0.01 {
		t.Fatalf("largest-first (%v) worse than smallest-first (%v)", tqLargest, tqSmallest)
	}
	// Hash families: all three within a tight band of each other.
	var tus []float64
	for _, row := range tab.Rows[4:7] {
		var tu float64
		fmtSscan(row[2], &tu)
		tus = append(tus, tu)
	}
	for i := 1; i < len(tus); i++ {
		ratio := tus[i] / tus[0]
		if ratio < 0.8 || ratio > 1.25 {
			t.Fatalf("hash family %d deviates: tus=%v", i, tus)
		}
	}
	// Disk space: 4x the disk must not make insertions cheaper (the
	// paper's load-factor remark); allow a little noise.
	var tuHalf, tuQuarter float64
	fmtSscan(tab.Rows[7][2], &tuHalf)
	fmtSscan(tab.Rows[8][2], &tuQuarter)
	if tuQuarter < tuHalf*0.95 {
		t.Fatalf("extra disk reduced tu: %v -> %v", tuHalf, tuQuarter)
	}
}
