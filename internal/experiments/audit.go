package experiments

import (
	"math"

	"extbuf/internal/chainhash"
	"extbuf/internal/core"
	"extbuf/internal/exthash"
	"extbuf/internal/iomodel"
	"extbuf/internal/linhash"
	"extbuf/internal/linprobe"
	"extbuf/internal/logmethod"
	"extbuf/internal/tablefmt"
	"extbuf/internal/twolevel"
	"extbuf/internal/workload"
	"extbuf/internal/zones"
)

// auditSubject pairs a constructed structure with its insert driver.
type auditSubject struct {
	name   string
	sub    zones.Subject
	insert func(key uint64) error
}

// buildAll constructs every structure in the repository on its own
// model, ready for a zone audit.
func (cfg Config) buildAll(salt uint64) ([]auditSubject, error) {
	var subs []auditSubject

	mChain := iomodel.NewModel(cfg.B, cfg.MWords)
	chain, err := chainhash.New(mChain, cfg.fn(salt+1), 2*cfg.N/cfg.B)
	if err != nil {
		return nil, err
	}
	subs = append(subs, auditSubject{"chainhash", chain,
		func(k uint64) error { chain.Insert(k, 0); return nil }})

	mProbe := iomodel.NewModel(cfg.B, cfg.MWords)
	probe, err := linprobe.New(mProbe, cfg.fn(salt+2), 2*cfg.N/cfg.B)
	if err != nil {
		return nil, err
	}
	subs = append(subs, auditSubject{"linprobe", probe,
		func(k uint64) error { _, err := probe.Insert(k, 0); return err }})

	// Extendible hashing's in-memory directory needs Theta(n/b) words —
	// a real cost of the scheme the memory accounting makes visible, so
	// its model is provisioned for it explicitly.
	mExt := iomodel.NewModel(cfg.B, cfg.MWords+int64(8*cfg.N/cfg.B))
	ext, err := exthash.New(mExt, cfg.fn(salt+3), 4)
	if err != nil {
		return nil, err
	}
	subs = append(subs, auditSubject{"exthash", ext,
		func(k uint64) error { ext.Insert(k, 0); return nil }})

	mLin := iomodel.NewModel(cfg.B, cfg.MWords)
	lin, err := linhash.New(mLin, cfg.fn(salt+4), 2)
	if err != nil {
		return nil, err
	}
	subs = append(subs, auditSubject{"linhash", lin,
		func(k uint64) error { lin.Insert(k, 0); return nil }})

	mTwo := iomodel.NewModel(cfg.B, cfg.MWords)
	two, err := twolevel.New(mTwo, cfg.fn(salt+5), twolevel.HomeBucketsFor(cfg.N, cfg.B))
	if err != nil {
		return nil, err
	}
	subs = append(subs, auditSubject{"twolevel(JP)", two,
		func(k uint64) error { two.Insert(k, 0); return nil }})

	mLog := iomodel.NewModel(cfg.B, cfg.MWords)
	logm, err := logmethod.New(mLog, cfg.fn(salt+6), logmethod.Config{Gamma: 2})
	if err != nil {
		return nil, err
	}
	subs = append(subs, auditSubject{"logmethod", logm,
		func(k uint64) error { _, err := logm.Insert(k, 0); return err }})

	mCore := iomodel.NewModel(cfg.B, cfg.MWords)
	ct, err := core.New(mCore, cfg.fn(salt+7), core.Config{Beta: betaFor(cfg.B, 0.5), Gamma: 2})
	if err != nil {
		return nil, err
	}
	subs = append(subs, auditSubject{"core(Thm2)", ct,
		func(k uint64) error { _, err := ct.Insert(k, 0); return err }})

	mStaged := iomodel.NewModel(cfg.B, cfg.MWords)
	st, err := core.NewStaged(mStaged, cfg.fn(salt+8), core.StagedConfig{Delta: 1 / math.Sqrt(float64(cfg.B))})
	if err != nil {
		return nil, err
	}
	subs = append(subs, auditSubject{"staged(c=0.5)", st,
		func(k uint64) error { st.Insert(k, 0); return nil }})

	return subs, nil
}

// ZoneAudit verifies Eq. (1) and reports the zone decomposition of every
// structure after n inserts: |M|, |F|, |S|, the zone-model query cost,
// and the Eq. (1) slack at the delta each structure targets.
//
// Shape to check: every structure satisfies Eq. (1) at its design delta;
// the plain tables are almost all fast zone; the logarithmic method has
// a large slow zone (which is why its t_q is Omega(1) away from 1); the
// Theorem 2 structure keeps |S|/k = O(1/beta).
func ZoneAudit(cfg Config) (*tablefmt.Table, error) {
	t := tablefmt.New("Eq. (1) zone audit: |S| <= m + delta*k",
		"structure", "|M|", "|F|", "|S|", "slow frac", "tq_model",
		"design delta", "Eq.(1) ok", "slack")
	t.AddNote("b=%d m=%d n=%d", cfg.B, cfg.MWords, cfg.N)
	subs, err := cfg.buildAll(1000)
	if err != nil {
		return nil, err
	}
	rng := cfg.rng(1001)
	keys := workload.Keys(rng, cfg.N)
	deltas := map[string]float64{
		"chainhash": 0.02,
		"linprobe":  0.02,
		"exthash":   0.001,
		// linhash runs at fill 0.85 by default; its overflow-chain mass
		// (the slow zone) is ~0.1 of all items, so that is the delta its
		// query cost actually targets.
		"linhash":       0.15,
		"twolevel(JP)":  2 / math.Sqrt(float64(cfg.B)),
		"logmethod":     1.0, // no sub-constant delta: the audit shows why
		"core(Thm2)":    3 / math.Pow(float64(cfg.B), 0.5),
		"staged(c=0.5)": 1.2 / math.Pow(float64(cfg.B), 0.5),
	}
	for _, s := range subs {
		for _, k := range keys {
			if err := s.insert(k); err != nil {
				return nil, err
			}
		}
		rep := zones.Audit(s.sub, keys)
		delta := deltas[s.name]
		ok, slack := rep.CheckEq1(cfg.MWords, delta)
		t.AddRow(s.name, rep.M, rep.F, rep.S, rep.SlowFraction(),
			rep.ModelQueryCost(), delta, ok, slack)
	}
	return t, nil
}

// GoodFunctions reproduces Lemma 2's premise empirically: every
// structure that answers queries near 1 I/O must use a "good" address
// function — small total mass lambda_f on overloaded indices. The
// characteristic vector is estimated by Monte Carlo over fresh uniform
// keys; rho is set per the paper's proof parameters at c = 1/2.
func GoodFunctions(cfg Config, samples int) (*tablefmt.Table, error) {
	t := tablefmt.New("Lemma 2: characteristic vectors and good functions",
		"structure", "addressed blocks", "max alpha*d", "lambda_f", "phi", "good?")
	t.AddNote("alpha estimated over %d sampled keys; rho, phi per §2 at c=0.5", samples)
	subs, err := cfg.buildAll(1100)
	if err != nil {
		return nil, err
	}
	rng := cfg.rng(1101)
	keys := workload.Keys(rng, cfg.N)
	pp := zones.ParamsFor(0.5, cfg.B, cfg.N, 0)
	for _, s := range subs {
		for _, k := range keys {
			if err := s.insert(k); err != nil {
				return nil, err
			}
		}
		alphas := zones.CharVector(s.sub, cfg.rng(1102), samples)
		lambda, _ := zones.Lambda(alphas, pp.Rho)
		var maxA float64
		for _, a := range alphas {
			if a > maxA {
				maxA = a
			}
		}
		t.AddRow(s.name, len(alphas), maxA*float64(len(alphas)), lambda,
			pp.Phi, zones.IsGood(lambda, pp.Phi))
	}
	return t, nil
}

// JensenPagh reproduces the cited Jensen–Pagh point on the tradeoff: at
// load factor 1 - O(1/sqrt(b)), queries and updates both cost
// 1 + O(1/sqrt(b)) I/Os (via the repository's two-level substitution).
func JensenPagh(cfg Config) (*tablefmt.Table, error) {
	t := tablefmt.New("Jensen–Pagh [12] point: alpha = 1 - 1/sqrt(b)",
		"b", "load factor", "tu(measured)", "tq(measured)",
		"1 + 2/sqrt(b)", "overflow frac", "1/sqrt(b)")
	for i, b := range []int{16, 64, 256} {
		model := iomodel.NewModel(b, cfg.MWords)
		tab, err := twolevel.New(model, cfg.fn(uint64(1200+i)), twolevel.HomeBucketsFor(cfg.N, b))
		if err != nil {
			return nil, err
		}
		rng := cfg.rng(uint64(1200 + i))
		keys := workload.Keys(rng, cfg.N)
		c0 := model.Counters()
		for _, k := range keys {
			tab.Insert(k, 0)
		}
		tu := float64(model.Counters().Sub(c0).IOs()) / float64(cfg.N)
		qs := workload.SuccessfulQueries(rng, keys, cfg.N, cfg.QuerySamples)
		c1 := model.Counters()
		for _, q := range qs {
			tab.Lookup(q)
		}
		tq := float64(model.Counters().Sub(c1).IOs()) / float64(len(qs))
		rs := 1 / math.Sqrt(float64(b))
		t.AddRow(b, tab.LoadFactor(), tu, tq, 1+2*rs,
			float64(tab.OverflowLen())/float64(cfg.N), rs)
	}
	return t, nil
}
