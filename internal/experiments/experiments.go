// Package experiments is the reproduction harness: one driver per
// experiment ID in DESIGN.md §4, each regenerating the corresponding
// artifact of Wei, Yi, Zhang, "Dynamic External Hashing: The Limit of
// Buffering" (SPAA 2009) as a plain-text table.
//
// The paper has a single figure (Figure 1, the query-insertion tradeoff)
// and states its results as theorems and lemmas; the drivers here emit
// the measured counterpart of each:
//
//	F1    Figure1          the full tradeoff frontier
//	T1.*  Theorem1         staged-strategy insertion costs per regime
//	T2.*  Theorem2/Eps     the paper's structure, both parameterizations
//	L5    Lemma5           logarithmic method costs
//	L3/L4 BinBallLemma3/4  bin-ball game concentration
//	EQ1   ZoneAudit        Eq. (1) and zone sizes for every structure
//	L2    GoodFunctions    characteristic-vector goodness
//	K64   KnuthBaseline    classic table query costs vs load factor
//	JP    JensenPagh       the two-level high-load table
//
// Every driver takes a Config so the benchmarks can run scaled-down
// versions, and returns a tablefmt.Table ready to print.
package experiments

import (
	"fmt"
	"math"

	"extbuf/internal/core"
	"extbuf/internal/hashfn"
	"extbuf/internal/iomodel"
	"extbuf/internal/workload"
	"extbuf/internal/xrand"
	"extbuf/internal/zones"
)

// Config carries the model and workload parameters shared by all
// drivers.
type Config struct {
	B            int    // block size in items
	MWords       int64  // memory budget in words
	N            int    // items inserted
	QuerySamples int    // successful lookups sampled for t_q
	Seed         uint64 // master seed; every driver derives sub-streams
	HashFamily   string // "ideal" (default), "multshift", "tabulation"
	// StagedMWords is the memory budget used for the staged
	// lower-bound traces. The paper's Theorem 1 needs n >> m*b^(1+2c)
	// to reach its asymptotics — far beyond laptop n at the default m —
	// and since the lower bound holds for every m, the traces use a
	// deliberately small budget to make the regime boundary visible.
	StagedMWords int64
}

// Default returns the configuration used by the cmd binaries: a
// realistic block size (the paper: "typical values of b range from a
// few hundreds to a thousand") and enough items for stable averages
// while remaining laptop-fast.
func Default() Config {
	return Config{B: 128, MWords: 2048, N: 80000, QuerySamples: 4000, Seed: 42, StagedMWords: 256}
}

// Scaled returns cfg with N and QuerySamples scaled by f (for quick
// benchmark runs).
func (cfg Config) Scaled(f float64) Config {
	out := cfg
	out.N = int(float64(cfg.N) * f)
	if out.N < 1000 {
		out.N = 1000
	}
	out.QuerySamples = int(float64(cfg.QuerySamples) * f)
	if out.QuerySamples < 200 {
		out.QuerySamples = 200
	}
	return out
}

func (cfg Config) rng(salt uint64) *xrand.Rand {
	return xrand.New(cfg.Seed ^ (salt * 0x9e3779b97f4a7c15))
}

func (cfg Config) fn(salt uint64) hashfn.Fn {
	return hashfn.Family(cfg.HashFamily, cfg.Seed^salt)
}

// betaFor returns the paper's beta = b^c, clamped into [2, b].
func betaFor(b int, c float64) int {
	beta := int(math.Round(math.Pow(float64(b), c)))
	if beta < 2 {
		beta = 2
	}
	if beta > b {
		beta = b
	}
	return beta
}

// inserter abstracts the structures the measurement loop drives.
type inserter interface {
	zones.Subject
	Len() int
}

// measured is one structure's measured costs over a run.
type measured struct {
	tu      float64 // amortized I/Os per insertion
	tq      float64 // measured expected average successful lookup I/Os
	tqModel float64 // zone-model query cost (paper's accounting)
	report  zones.Report
}

// runCore builds and drives a Theorem 2 table, returning its costs.
func (cfg Config) runCore(beta int, salt uint64) (measured, error) {
	model := iomodel.NewModel(cfg.B, cfg.MWords)
	tab, err := core.New(model, cfg.fn(salt), core.Config{Beta: beta, Gamma: 2})
	if err != nil {
		return measured{}, err
	}
	defer tab.Close()
	rng := cfg.rng(salt)
	keys := workload.Keys(rng, cfg.N)
	c0 := model.Counters()
	for _, k := range keys {
		if _, err := tab.Insert(k, 0); err != nil {
			return measured{}, err
		}
	}
	tu := float64(model.Counters().Sub(c0).IOs()) / float64(cfg.N)
	qs := workload.SuccessfulQueries(rng, keys, cfg.N, cfg.QuerySamples)
	c1 := model.Counters()
	for _, q := range qs {
		if _, ok, _ := tab.Lookup(q); !ok {
			return measured{}, fmt.Errorf("experiments: lost key %d", q)
		}
	}
	tq := float64(model.Counters().Sub(c1).IOs()) / float64(len(qs))
	rep := zones.Audit(tab, keys)
	return measured{tu: tu, tq: tq, tqModel: rep.ModelQueryCost(), report: rep}, nil
}

// runStaged builds and drives a staged lower-bound strategy on the
// (smaller) StagedMWords budget; see the Config field comment.
func (cfg Config) runStaged(delta float64, salt uint64) (measured, error) {
	mw := cfg.StagedMWords
	if mw == 0 {
		mw = cfg.MWords
	}
	model := iomodel.NewModel(cfg.B, mw)
	s, err := core.NewStaged(model, cfg.fn(salt), core.StagedConfig{Delta: delta})
	if err != nil {
		return measured{}, err
	}
	defer s.Close()
	rng := cfg.rng(salt)
	keys := workload.Keys(rng, cfg.N)
	c0 := model.Counters()
	for _, k := range keys {
		s.Insert(k, 0)
	}
	tu := float64(model.Counters().Sub(c0).IOs()) / float64(cfg.N)
	rep := zones.Audit(s, keys)
	return measured{tu: tu, tq: math.NaN(), tqModel: rep.ModelQueryCost(), report: rep}, nil
}
