package experiments

import (
	"math"
	"strings"
	"testing"
)

// small returns a scaled-down config for fast tests.
func small() Config {
	cfg := Default()
	cfg.N = 12000
	cfg.QuerySamples = 1500
	return cfg
}

func TestScaled(t *testing.T) {
	base := Default()
	cfg := base.Scaled(0.1)
	if cfg.N != base.N/10 || cfg.QuerySamples != base.QuerySamples/10 {
		t.Fatalf("scaled: %+v", cfg)
	}
	tiny := base.Scaled(0.0001)
	if tiny.N < 1000 || tiny.QuerySamples < 200 {
		t.Fatalf("floors not applied: %+v", tiny)
	}
}

func TestFigure1Shape(t *testing.T) {
	tab, err := Figure1(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Column indices: 3 tu(upper), 4 tq(upper), 5 tu(staged).
	get := func(r, c int) float64 {
		var v float64
		if _, err := fmtSscan(tab.Rows[r][c], &v); err != nil {
			t.Fatalf("cell %d,%d = %q: %v", r, c, tab.Rows[r][c], err)
		}
		return v
	}
	// c = 0.25 (row 0): Theorem 2 upper bound must have tu << 1 and tq
	// within its budget band.
	if tu := get(0, 3); tu >= 0.8 {
		t.Fatalf("c=0.25 upper tu = %v, want o(1)", tu)
	}
	// c = 2 (row 6): plain table; tu ~ 1, tq ~ 1.
	if tu := get(6, 3); tu < 0.95 || tu > 1.2 {
		t.Fatalf("c=2 upper tu = %v, want ~1", tu)
	}
	if tq := get(6, 4); tq > 1.05 {
		t.Fatalf("c=2 upper tq = %v, want ~1", tq)
	}
	// Staged tu must increase with c (less slow-zone budget).
	low := get(0, 5)
	high := get(6, 5)
	if !(low < high) {
		t.Fatalf("staged tu not increasing with c: %v -> %v", low, high)
	}
	// Render sanity.
	s := tab.String()
	if !strings.Contains(s, "Figure 1") {
		t.Fatal("render missing title")
	}
}

func TestTheorem1Shape(t *testing.T) {
	tab, err := Theorem1(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	var prev float64 = -1
	for i, row := range tab.Rows {
		var tu float64
		if _, err := fmtSscan(row[2], &tu); err != nil {
			t.Fatalf("row %d tu cell %q", i, row[2])
		}
		if tu <= 0 || tu > 1.6 {
			t.Fatalf("row %d tu = %v out of range", i, tu)
		}
		if i > 0 && tu+0.25 < prev {
			t.Fatalf("tu dropped sharply with growing c: %v -> %v", prev, tu)
		}
		prev = tu
	}
}

func TestTheorem2Shape(t *testing.T) {
	tab, err := Theorem2(small())
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tab.Rows {
		var tu, tq float64
		fmtSscan(row[2], &tu)
		fmtSscan(row[4], &tq)
		if tu >= 1 {
			t.Fatalf("row %d: tu = %v not o(1)", i, tu)
		}
		if tq > 1.8 || tq < 0.5 {
			t.Fatalf("row %d: tq = %v out of band", i, tq)
		}
	}
}

func TestTheorem2EpsShape(t *testing.T) {
	tab, err := Theorem2Eps(small())
	if err != nil {
		t.Fatal(err)
	}
	// tu must increase with eps... inversely: smaller eps, smaller tu.
	var prev float64 = -1
	for i, row := range tab.Rows {
		var tu float64
		fmtSscan(row[2], &tu)
		if tu <= prev-0.05 {
			t.Fatalf("row %d: tu %v not increasing with eps (prev %v)", i, tu, prev)
		}
		prev = tu
	}
}

func TestLemma5Shape(t *testing.T) {
	tab, err := Lemma5(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// tq decreases with gamma; tu stays o(1).
	var tqs []float64
	for _, row := range tab.Rows {
		var tu, tq float64
		fmtSscan(row[1], &tu)
		fmtSscan(row[3], &tq)
		if tu >= 1 {
			t.Fatalf("logmethod tu = %v not o(1)", tu)
		}
		tqs = append(tqs, tq)
	}
	if !(tqs[2] < tqs[0]) {
		t.Fatalf("tq not decreasing with gamma: %v", tqs)
	}
}

func TestBinBallTables(t *testing.T) {
	cfg := small()
	l3 := BinBallLemma3(cfg, 300)
	if len(l3.Rows) == 0 {
		t.Fatal("lemma 3 produced no rows")
	}
	for i, row := range l3.Rows {
		var below, fail float64
		fmtSscan(row[7], &below)
		fmtSscan(row[8], &fail)
		if below > fail+0.02 {
			t.Fatalf("row %d: empirical failure %v above lemma bound %v", i, below, fail)
		}
	}
	l4 := BinBallLemma4(cfg, 300)
	for i, row := range l4.Rows {
		var below float64
		fmtSscan(row[6], &below)
		if below > 0.01 {
			t.Fatalf("lemma4 row %d: failure prob %v", i, below)
		}
	}
}

func TestZoneAuditAllPass(t *testing.T) {
	cfg := small()
	tab, err := ZoneAudit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[7] != "true" {
			t.Fatalf("structure %s violates Eq.(1): %v", row[0], row)
		}
	}
}

func TestGoodFunctionsAllGood(t *testing.T) {
	cfg := small()
	tab, err := GoodFunctions(cfg, 30000)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[5] != "true" {
			t.Fatalf("structure %s uses a bad address function: %v", row[0], row)
		}
	}
}

func TestKnuthBaselineShape(t *testing.T) {
	cfg := small()
	cfg.QuerySamples = 1000
	tab, err := KnuthBaseline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 15 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		var alpha, tqC, tqL float64
		fmtSscan(row[1], &alpha)
		fmtSscan(row[2], &tqC)
		fmtSscan(row[3], &tqL)
		if alpha <= 0.7 && (tqC > 1.05 || tqL > 1.1) {
			t.Fatalf("low-load costs too high: %v", row)
		}
		if tqC < 1 || tqL < 1 {
			t.Fatalf("costs below 1: %v", row)
		}
	}
}

func TestJensenPaghShape(t *testing.T) {
	tab, err := JensenPagh(small())
	if err != nil {
		t.Fatal(err)
	}
	// Larger b must give costs closer to 1 (the 1/sqrt(b) law).
	var prevTq float64 = math.Inf(1)
	for _, row := range tab.Rows {
		var tq float64
		fmtSscan(row[3], &tq)
		if tq > prevTq+0.02 {
			t.Fatalf("tq not improving with b: %v then %v", prevTq, tq)
		}
		prevTq = tq
	}
}
