package experiments

import (
	"math"

	"extbuf/internal/chainhash"
	"extbuf/internal/iomodel"
	"extbuf/internal/tablefmt"
	"extbuf/internal/workload"
	"extbuf/internal/zones"
)

// Figure1 regenerates the paper's only figure: the query-insertion
// tradeoff across the three regimes t_q = 1 + Theta(1/b^c) for c > 1,
// c = 1, and c < 1. For every c it reports:
//
//   - the upper-bound structure's measured (t_u, t_q): the plain Knuth
//     table for c >= 1 (where the paper proves buffering cannot help)
//     and the Theorem 2 structure with beta = b^c for c <= 1;
//   - the staged strategy's measured t_u and zone-model t_q at the
//     matching slow-zone budget delta = 1/b^c — the empirical trace of
//     the lower-bound frontier;
//   - the paper's lower-bound formula for t_u in that regime.
//
// The shape to check against Figure 1: for c > 1 every column sits near
// 1 I/O per insert; at c = 1 the staged t_u is a constant below 1; for
// c < 1 both the Theorem 2 structure and the staged strategy drop
// toward Theta(b^(c-1)), with t_q degrading only to 1 + O(1/b^c).
func Figure1(cfg Config) (*tablefmt.Table, error) {
	t := tablefmt.New("Figure 1: the query-insertion tradeoff",
		"c", "delta=1/b^c", "upper bound", "tu(upper)", "tq(upper)",
		"tu(staged)", "tq_model(staged)", "paper lower bound on tu")
	t.AddNote("b=%d m=%d n=%d; tq over %d successful lookups; staged traces use m=%d (see Config.StagedMWords)",
		cfg.B, cfg.MWords, cfg.N, cfg.QuerySamples, cfg.StagedMWords)
	t.AddNote("paper: tu >= 1-O(1/b^((c-1)/4)) for c>1; Omega(1) at c=1; Omega(b^(c-1)) for c<1")
	fb := float64(cfg.B)
	for i, c := range []float64{0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0} {
		delta := 1 / math.Pow(fb, c)
		salt := uint64(100 + i)

		var upName string
		var up measured
		var err error
		if c < 1 {
			upName = "Theorem 2 (beta=b^c)"
			up, err = cfg.runCore(betaFor(cfg.B, c), salt)
		} else if c == 1 {
			upName = "Theorem 2 (beta=eps*b)"
			up, err = cfg.runCore(cfg.B/4, salt)
		} else {
			upName = "plain table (Knuth)"
			up, err = cfg.runPlain(salt)
		}
		if err != nil {
			return nil, err
		}
		staged, err := cfg.runStaged(delta, salt+50)
		if err != nil {
			return nil, err
		}
		var lower string
		switch {
		case c > 1:
			lower = tablefmt.FormatFloat(1 - 1/math.Pow(fb, (c-1)/4))
		case c == 1:
			lower = "Omega(1)"
		default:
			lower = tablefmt.FormatFloat(math.Pow(fb, c-1))
		}
		t.AddRow(c, delta, upName, up.tu, up.tq, staged.tu, staged.tqModel, lower)
	}
	return t, nil
}

// runPlain drives a plain external chaining table sized at load 1/2 —
// the c > 1 upper bound — charging the usual read+write-back 1 I/O per
// insert.
func (cfg Config) runPlain(salt uint64) (measured, error) {
	model := iomodel.NewModel(cfg.B, cfg.MWords)
	nb := 2 * cfg.N / cfg.B
	tab, err := chainhash.New(model, cfg.fn(salt), nb)
	if err != nil {
		return measured{}, err
	}
	defer tab.Close()
	rng := cfg.rng(salt)
	keys := workload.Keys(rng, cfg.N)
	c0 := model.Counters()
	for _, k := range keys {
		tab.Insert(k, 0)
	}
	tu := float64(model.Counters().Sub(c0).IOs()) / float64(cfg.N)
	qs := workload.SuccessfulQueries(rng, keys, cfg.N, cfg.QuerySamples)
	c1 := model.Counters()
	for _, q := range qs {
		tab.Lookup(q)
	}
	tq := float64(model.Counters().Sub(c1).IOs()) / float64(len(qs))
	rep := zones.Audit(tab, keys)
	return measured{tu: tu, tq: tq, tqModel: rep.ModelQueryCost(), report: rep}, nil
}
