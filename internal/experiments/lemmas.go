package experiments

import (
	"math"

	"extbuf/internal/binball"
	"extbuf/internal/chainhash"
	"extbuf/internal/iomodel"
	"extbuf/internal/linprobe"
	"extbuf/internal/logmethod"
	"extbuf/internal/stats"
	"extbuf/internal/tablefmt"
	"extbuf/internal/workload"
)

// Lemma5 reproduces the folklore logarithmic-method bounds: for any
// gamma >= 2, insertions in amortized O((gamma/b) log(n/m)) I/Os and
// lookups in expected average O(log_gamma(n/m)) I/Os.
//
// Shape to check: t_u shrinks as b grows and rises with gamma; t_q
// shrinks as gamma grows (fewer levels) and is far above 1 — the reason
// the paper must bootstrap the method (Theorem 2) rather than use it
// directly.
func Lemma5(cfg Config) (*tablefmt.Table, error) {
	t := tablefmt.New("Lemma 5: logarithmic method",
		"gamma", "tu(measured)", "(gamma/b)log_g(n/m)", "tq(measured)",
		"log_g(n/m)", "levels", "migrations")
	t.AddNote("b=%d m=%d n=%d", cfg.B, cfg.MWords, cfg.N)
	for i, gamma := range []int{2, 4, 8} {
		model := iomodel.NewModel(cfg.B, cfg.MWords)
		tab, err := logmethod.New(model, cfg.fn(uint64(600+i)), logmethod.Config{Gamma: gamma})
		if err != nil {
			return nil, err
		}
		rng := cfg.rng(uint64(600 + i))
		keys := workload.Keys(rng, cfg.N)
		c0 := model.Counters()
		for _, k := range keys {
			if _, err := tab.Insert(k, 0); err != nil {
				return nil, err
			}
		}
		tu := float64(model.Counters().Sub(c0).IOs()) / float64(cfg.N)
		qs := workload.SuccessfulQueries(rng, keys, cfg.N, cfg.QuerySamples)
		c1 := model.Counters()
		for _, q := range qs {
			tab.Lookup(q)
		}
		tq := float64(model.Counters().Sub(c1).IOs()) / float64(len(qs))
		logg := math.Log(float64(cfg.N)/float64(cfg.MWords)) / math.Log(float64(gamma))
		t.AddRow(gamma, tu, float64(gamma)/float64(cfg.B)*logg, tq, logg,
			tab.Levels(), tab.Migrations())
		tab.Close()
	}
	return t, nil
}

// BinBallLemma3 Monte-Carlos the sparse-regime bin-ball game of Lemma 3:
// with sp <= 1/3, the cost is at least (1-mu)(1-sp)s - t except with
// probability exp(-mu^2 s/3).
func BinBallLemma3(cfg Config, trials int) *tablefmt.Table {
	t := tablefmt.New("Lemma 3: (s,p,t) bin-ball game, sparse regime",
		"s", "bins", "t", "mu", "bound", "mean cost", "min cost",
		"Pr[cost<bound]", "lemma failure prob")
	rng := cfg.rng(700)
	games := []struct {
		g  binball.Game
		mu float64
	}{
		{binball.Game{S: 500, R: 5000, T: 50}, 0.1},
		{binball.Game{S: 1000, R: 10000, T: 100}, 0.1},
		{binball.Game{S: 2000, R: 50000, T: 0}, 0.05},
		{binball.Game{S: 4000, R: 20000, T: 400}, 0.1},
	}
	for _, gc := range games {
		bound, applies := binball.Lemma3Threshold(gc.g, gc.mu)
		if !applies {
			continue
		}
		sum, below := binball.MonteCarlo(gc.g, rng, trials, bound)
		_, fail := stats.Lemma3Bound(gc.g.S, gc.g.P(), gc.g.T, gc.mu)
		t.AddRow(gc.g.S, gc.g.R, gc.g.T, gc.mu, bound, sum.Mean(), sum.Min(),
			below, fail)
	}
	return t
}

// BinBallLemma4 Monte-Carlos the dense-regime game of Lemma 4: with
// s/2 >= t and s/2 >= 1/p, the cost is at least 1/(20p) w.h.p.
func BinBallLemma4(cfg Config, trials int) *tablefmt.Table {
	t := tablefmt.New("Lemma 4: (s,p,t) bin-ball game, dense regime",
		"s", "bins", "t", "bound 1/(20p)", "mean cost", "min cost",
		"Pr[cost<bound]")
	rng := cfg.rng(800)
	games := []binball.Game{
		{S: 2000, R: 100, T: 900},
		{S: 5000, R: 500, T: 2000},
		{S: 10000, R: 1000, T: 5000},
		{S: 4000, R: 2000, T: 0},
	}
	for _, g := range games {
		bound, applies := binball.Lemma4Threshold(g)
		if !applies {
			continue
		}
		sum, below := binball.MonteCarlo(g, rng, trials, bound)
		t.AddRow(g.S, g.R, g.T, bound, sum.Mean(), sum.Min(), below)
	}
	return t
}

// KnuthBaseline reproduces the classical baseline the paper builds on
// (Knuth, TAOCP v3 §6.4): the expected successful-lookup cost of
// external chaining and block-level linear probing as a function of the
// load factor alpha and block size b — the 1 + 1/2^Omega(b) behaviour.
//
// Shape to check: costs hug 1.0 for alpha well below 1 and any
// realistic b, deteriorate only as alpha -> 1, and deteriorate later
// for larger b (the exponent in 1/2^Omega(b) scales with b).
func KnuthBaseline(cfg Config) (*tablefmt.Table, error) {
	t := tablefmt.New("Knuth §6.4 baseline: successful lookup cost vs load factor",
		"b", "alpha", "tq(chaining)", "tq(linear probing)",
		"overflow tail bound 1/2^Omega(b)")
	t.AddNote("n scaled per cell to hold alpha fixed; %d query samples", cfg.QuerySamples)
	for _, b := range []int{16, 64, 256} {
		for _, alpha := range []float64{0.3, 0.5, 0.7, 0.85, 0.95} {
			nb := 256
			n := int(alpha * float64(b) * float64(nb))
			tqC, err := knuthChain(cfg, b, nb, n)
			if err != nil {
				return nil, err
			}
			tqL, err := knuthProbe(cfg, b, nb, n)
			if err != nil {
				return nil, err
			}
			tail := stats.BinomialTailAbove(n, 1/float64(nb), b)
			t.AddRow(b, alpha, tqC, tqL, tail)
		}
	}
	return t, nil
}

func knuthChain(cfg Config, b, nb, n int) (float64, error) {
	model := iomodel.NewModel(b, cfg.MWords)
	tab, err := chainhash.New(model, cfg.fn(900), nb)
	if err != nil {
		return 0, err
	}
	defer tab.Close()
	rng := cfg.rng(901)
	keys := workload.Keys(rng, n)
	for _, k := range keys {
		tab.Insert(k, 0)
	}
	qs := workload.SuccessfulQueries(rng, keys, n, cfg.QuerySamples)
	c0 := model.Counters()
	for _, q := range qs {
		tab.Lookup(q)
	}
	return float64(model.Counters().Sub(c0).IOs()) / float64(len(qs)), nil
}

func knuthProbe(cfg Config, b, nb, n int) (float64, error) {
	model := iomodel.NewModel(b, cfg.MWords)
	tab, err := linprobe.New(model, cfg.fn(902), nb)
	if err != nil {
		return 0, err
	}
	defer tab.Close()
	rng := cfg.rng(903)
	keys := workload.Keys(rng, n)
	for _, k := range keys {
		if _, err := tab.Insert(k, 0); err != nil {
			return 0, err
		}
	}
	qs := workload.SuccessfulQueries(rng, keys, n, cfg.QuerySamples)
	c0 := model.Counters()
	for _, q := range qs {
		tab.Lookup(q)
	}
	return float64(model.Counters().Sub(c0).IOs()) / float64(len(qs)), nil
}
