package experiments

import "fmt"

// fmtSscan parses a formatted table cell back into a float (test
// helper; table cells are rendered by tablefmt.FormatFloat).
func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}
