package experiments

import (
	"math"

	"extbuf/internal/tablefmt"
	"extbuf/internal/zones"
)

// Theorem1 reproduces the three lower-bound tradeoffs of Theorem 1 by
// sweeping the staged strategy's slow-zone budget delta = 1/b^c across
// the regimes. Columns report the measured amortized insertion cost, the
// zone-model query cost the budget buys, the paper's lower-bound formula
// and the paper's proof parameters (phi, rho, s from §2) at these
// dimensions.
//
// Shape to check: t_u(measured) stays above the paper's bound in every
// regime, hugging ~1 for c >= 1 and falling as Theta(b^(c-1)) once
// c < 1 — the elbow at c = 1 is the paper's "limit of buffering".
func Theorem1(cfg Config) (*tablefmt.Table, error) {
	t := tablefmt.New("Theorem 1: insertion lower bounds (staged strategy trace)",
		"c", "delta", "tu(measured)", "tq_model", "paper bound on tu",
		"phi", "rho*n", "round s")
	t.AddNote("b=%d m=%d n=%d; staged strategy holds |S| <= m + delta*k (Eq. 1)", cfg.B, cfg.StagedMWords, cfg.N)
	fb := float64(cfg.B)
	for i, c := range []float64{0.25, 0.5, 0.75, 1.0, 1.5, 2.0} {
		delta := 1 / math.Pow(fb, c)
		m, err := cfg.runStaged(delta, uint64(300+i))
		if err != nil {
			return nil, err
		}
		var bound string
		switch {
		case c > 1:
			bound = tablefmt.FormatFloat(1 - 1/math.Pow(fb, (c-1)/4))
		case c == 1:
			bound = "Omega(1)"
		default:
			bound = tablefmt.FormatFloat(math.Pow(fb, c-1))
		}
		pp := zones.ParamsFor(c, cfg.B, cfg.N, 0)
		t.AddRow(c, delta, m.tu, m.tqModel, bound,
			pp.Phi, pp.Rho*float64(cfg.N), pp.S)
	}
	return t, nil
}

// Theorem2 reproduces the first form of Theorem 2: insertions in
// amortized O(b^(c-1)) I/Os with successful lookups in 1 + O(1/b^c),
// sweeping c (via beta = b^c) at gamma = 2.
func Theorem2(cfg Config) (*tablefmt.Table, error) {
	t := tablefmt.New("Theorem 2: tu = O(b^(c-1)), tq = 1 + O(1/b^c)",
		"c", "beta=b^c", "tu(measured)", "paper tu ~ b^(c-1)",
		"tq(measured)", "paper tq ~ 1+1/b^c", "big fraction", "tq_model")
	t.AddNote("b=%d m=%d n=%d gamma=2", cfg.B, cfg.MWords, cfg.N)
	fb := float64(cfg.B)
	for i, c := range []float64{0.25, 0.4, 0.5, 0.65, 0.8, 0.95} {
		beta := betaFor(cfg.B, c)
		m, err := cfg.runCore(beta, uint64(400+i))
		if err != nil {
			return nil, err
		}
		bigFrac := 1 - m.report.SlowFraction() - float64(m.report.M)/float64(m.report.K)
		t.AddRow(c, beta, m.tu, math.Pow(fb, c-1), m.tq, 1+1/math.Pow(fb, c),
			bigFrac, m.tqModel)
	}
	return t, nil
}

// Theorem2Eps reproduces the second form of Theorem 2: for any constant
// eps > 0, insertions in amortized eps I/Os with lookups in 1 + O(1/b),
// by setting beta = eps*b/2 (the paper's beta = (eps/2c')*b with the
// implementation's constant c' ~ 1).
func Theorem2Eps(cfg Config) (*tablefmt.Table, error) {
	t := tablefmt.New("Theorem 2 (eps form): tu = eps, tq = 1 + O(1/b)",
		"eps", "beta", "tu(measured)", "tq(measured)", "1 + 4/b")
	t.AddNote("b=%d m=%d n=%d; beta = eps*b/2", cfg.B, cfg.MWords, cfg.N)
	for i, eps := range []float64{0.125, 0.25, 0.5, 1.0} {
		beta := int(eps * float64(cfg.B) / 2)
		if beta < 2 {
			beta = 2
		}
		if beta > cfg.B {
			beta = cfg.B
		}
		m, err := cfg.runCore(beta, uint64(500+i))
		if err != nil {
			return nil, err
		}
		t.AddRow(eps, beta, m.tu, m.tq, 1+4/float64(cfg.B))
	}
	return t, nil
}
