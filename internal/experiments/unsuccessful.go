package experiments

import (
	"extbuf/internal/chainhash"
	"extbuf/internal/core"
	"extbuf/internal/iomodel"
	"extbuf/internal/linprobe"
	"extbuf/internal/logmethod"
	"extbuf/internal/tablefmt"
	"extbuf/internal/workload"
)

// Unsuccessful reproduces the paper's side remark that "an unsuccessful
// lookup costs slightly more, but is the same as that of a successful
// lookup if ignoring the constant in the big-Omega": it measures both
// costs for the main structures.
//
// Shape to check: for the plain tables the two differ only in the
// 1/2^Omega(b) overflow term (a successful probe stops at the match;
// an unsuccessful one scans the whole chain/cluster). For the cascade
// structures the gap is structural: a miss must prove absence in every
// component, so the logarithmic method pays its full level count and
// the Theorem 2 structure pays ~1 + all cascade levels.
func Unsuccessful(cfg Config) (*tablefmt.Table, error) {
	t := tablefmt.New("Successful vs unsuccessful lookups",
		"structure", "tq(successful)", "tq(unsuccessful)", "gap")
	t.AddNote("b=%d m=%d n=%d; %d samples each", cfg.B, cfg.MWords, cfg.N, cfg.QuerySamples)

	type probe struct {
		name   string
		lookup func(key uint64) int // returns ios
	}
	var probes []probe
	rng := cfg.rng(3000)
	keys := workload.Keys(rng, cfg.N)

	mChain := iomodel.NewModel(cfg.B, cfg.MWords)
	chain, err := chainhash.New(mChain, cfg.fn(3001), 2*cfg.N/cfg.B)
	if err != nil {
		return nil, err
	}
	for _, k := range keys {
		chain.Insert(k, 0)
	}
	probes = append(probes, probe{"chainhash", func(k uint64) int {
		_, _, ios := chain.Lookup(k)
		return ios
	}})

	mProbe := iomodel.NewModel(cfg.B, cfg.MWords)
	lp, err := linprobe.New(mProbe, cfg.fn(3002), 2*cfg.N/cfg.B)
	if err != nil {
		return nil, err
	}
	for _, k := range keys {
		if _, err := lp.Insert(k, 0); err != nil {
			return nil, err
		}
	}
	probes = append(probes, probe{"linprobe", func(k uint64) int {
		_, _, ios := lp.Lookup(k)
		return ios
	}})

	mLog := iomodel.NewModel(cfg.B, cfg.MWords)
	lg, err := logmethod.New(mLog, cfg.fn(3003), logmethod.Config{Gamma: 2})
	if err != nil {
		return nil, err
	}
	for _, k := range keys {
		if _, err := lg.Insert(k, 0); err != nil {
			return nil, err
		}
	}
	probes = append(probes, probe{"logmethod", func(k uint64) int {
		_, _, ios := lg.Lookup(k)
		return ios
	}})

	mCore := iomodel.NewModel(cfg.B, cfg.MWords)
	ct, err := core.New(mCore, cfg.fn(3004), core.Config{Beta: betaFor(cfg.B, 0.5), Gamma: 2})
	if err != nil {
		return nil, err
	}
	for _, k := range keys {
		if _, err := ct.Insert(k, 0); err != nil {
			return nil, err
		}
	}
	probes = append(probes, probe{"core(Thm2)", func(k uint64) int {
		_, _, ios := ct.Lookup(k)
		return ios
	}})

	hits := workload.SuccessfulQueries(rng, keys, cfg.N, cfg.QuerySamples)
	misses := workload.AbsentQueries(rng, keys, cfg.QuerySamples)
	for _, p := range probes {
		var hitIOs, missIOs int
		for _, q := range hits {
			hitIOs += p.lookup(q)
		}
		for _, q := range misses {
			missIOs += p.lookup(q)
		}
		tqHit := float64(hitIOs) / float64(len(hits))
		tqMiss := float64(missIOs) / float64(len(misses))
		t.AddRow(p.name, tqHit, tqMiss, tqMiss-tqHit)
	}
	return t, nil
}
