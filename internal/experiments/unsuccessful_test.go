package experiments

import "testing"

func TestUnsuccessful(t *testing.T) {
	tab, err := Unsuccessful(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		var hit, miss float64
		fmtSscan(row[1], &hit)
		fmtSscan(row[2], &miss)
		if miss+1e-9 < hit {
			t.Fatalf("%s: unsuccessful (%v) cheaper than successful (%v)", row[0], miss, hit)
		}
		switch row[0] {
		case "chainhash", "linprobe":
			// Gap is only the 1/2^Omega(b) overflow term.
			if miss-hit > 0.2 {
				t.Fatalf("%s: gap %v too large for a plain table", row[0], miss-hit)
			}
		case "logmethod":
			// A miss proves absence in every level.
			if miss <= hit {
				t.Fatalf("logmethod: miss (%v) should exceed hit (%v)", miss, hit)
			}
		}
	}
}
