// Package expiry implements the per-table TTL sidecar index: a map from
// key to expiry deadline (unix milliseconds) paired with a min-heap over
// deadlines so a background sweep can pop due keys in time order without
// scanning the table. The index is deliberately NOT the source of truth
// for durability — deadlines are logged as wal.OpExpire records and
// saved in the checkpoint superblock by the durable layer — it is the
// in-memory view both lazy read-filtering and the sweeper consult.
//
// Semantics (Redis-style): Insert/Upsert/Delete on a key clears its
// deadline (a plain write makes the key persistent again); Set installs
// or replaces one. A key is expired once its deadline is <= now; expired
// keys are invisible to reads immediately (lazy filtering) and physically
// deleted by the sweep, which issues real logged-and-shipped deletes so
// replicas converge by applying the primary's deletes rather than
// running clocks of their own.
//
// Not safe for concurrent use: callers (shard workers, or the engine
// guard under its external serialization contract) own the index.
package expiry

// entry is one heap element. The heap uses lazy deletion: an entry is
// live only while the map still holds the same deadline for its key, so
// Clear and re-Set just abandon the old entry to be skipped when popped.
type entry struct {
	key      uint64
	deadline uint64
}

// Index tracks deadlines for one table (or one shard of one).
type Index struct {
	deadline map[uint64]uint64
	heap     []entry
}

// New returns an empty index.
func New() *Index {
	return &Index{deadline: make(map[uint64]uint64)}
}

// Len returns the number of keys with a live deadline.
func (x *Index) Len() int { return len(x.deadline) }

// Set installs or replaces key's deadline (unix ms).
func (x *Index) Set(key, deadline uint64) {
	x.deadline[key] = deadline
	x.push(entry{key, deadline})
}

// Clear drops key's deadline, if any. The heap entry is abandoned.
func (x *Index) Clear(key uint64) {
	delete(x.deadline, key)
}

// Deadline returns key's deadline and whether one is set.
func (x *Index) Deadline(key uint64) (uint64, bool) {
	d, ok := x.deadline[key]
	return d, ok
}

// Expired reports whether key has a deadline at or before now.
func (x *Index) Expired(key, now uint64) bool {
	d, ok := x.deadline[key]
	return ok && d <= now
}

// PopDue removes up to max due keys (deadline <= now) from the index in
// deadline order, appends them to dst, and returns it. Stale heap
// entries — keys cleared or re-set since they were pushed — are drained
// for free along the way.
func (x *Index) PopDue(now uint64, dst []uint64, max int) []uint64 {
	for len(x.heap) > 0 && max > 0 {
		top := x.heap[0]
		if top.deadline > now {
			break
		}
		x.pop()
		if d, ok := x.deadline[top.key]; ok && d == top.deadline {
			delete(x.deadline, top.key)
			dst = append(dst, top.key)
			max--
		}
	}
	return dst
}

// Range calls f for every (key, deadline) pair, in no particular order.
// Used by checkpoint save; f must not mutate the index.
func (x *Index) Range(f func(key, deadline uint64)) {
	for k, d := range x.deadline {
		f(k, d)
	}
}

func (x *Index) push(e entry) {
	x.heap = append(x.heap, e)
	i := len(x.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if x.heap[p].deadline <= x.heap[i].deadline {
			break
		}
		x.heap[p], x.heap[i] = x.heap[i], x.heap[p]
		i = p
	}
}

func (x *Index) pop() {
	n := len(x.heap) - 1
	x.heap[0] = x.heap[n]
	x.heap = x.heap[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && x.heap[l].deadline < x.heap[small].deadline {
			small = l
		}
		if r < n && x.heap[r].deadline < x.heap[small].deadline {
			small = r
		}
		if small == i {
			break
		}
		x.heap[i], x.heap[small] = x.heap[small], x.heap[i]
		i = small
	}
}
