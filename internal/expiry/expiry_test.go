package expiry

import (
	"math/rand"
	"sort"
	"testing"
)

func TestSetClearExpired(t *testing.T) {
	x := New()
	x.Set(1, 100)
	x.Set(2, 200)
	if d, ok := x.Deadline(1); !ok || d != 100 {
		t.Fatalf("Deadline(1) = %d, %v", d, ok)
	}
	if !x.Expired(1, 100) {
		t.Fatal("deadline <= now should be expired")
	}
	if x.Expired(1, 99) {
		t.Fatal("deadline > now should not be expired")
	}
	if x.Expired(3, 1000) {
		t.Fatal("key without deadline is never expired")
	}
	x.Clear(1)
	if _, ok := x.Deadline(1); ok {
		t.Fatal("Clear left a deadline")
	}
	if x.Len() != 1 {
		t.Fatalf("Len = %d, want 1", x.Len())
	}
}

func TestPopDueOrderAndStaleness(t *testing.T) {
	x := New()
	x.Set(1, 50)
	x.Set(2, 30)
	x.Set(3, 70)
	x.Set(2, 10)  // re-set: old heap entry for key 2 goes stale
	x.Clear(3)    // cleared: heap entry stale
	x.Set(4, 500) // not due

	got := x.PopDue(100, nil, 10)
	want := []uint64{2, 1}
	if len(got) != len(want) {
		t.Fatalf("PopDue = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PopDue = %v, want %v (deadline order)", got, want)
		}
	}
	if x.Len() != 1 {
		t.Fatalf("Len after pop = %d, want 1 (key 4)", x.Len())
	}
	if got := x.PopDue(100, nil, 10); len(got) != 0 {
		t.Fatalf("second PopDue = %v, want empty", got)
	}
}

func TestPopDueMax(t *testing.T) {
	x := New()
	for k := uint64(0); k < 10; k++ {
		x.Set(k, k+1)
	}
	got := x.PopDue(100, nil, 3)
	if len(got) != 3 {
		t.Fatalf("PopDue max=3 returned %d keys", len(got))
	}
	if x.Len() != 7 {
		t.Fatalf("Len = %d, want 7", x.Len())
	}
}

func TestRandomAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	x := New()
	model := map[uint64]uint64{}
	for i := 0; i < 5000; i++ {
		k := uint64(rng.Intn(64))
		switch rng.Intn(4) {
		case 0:
			d := uint64(rng.Intn(1000))
			x.Set(k, d)
			model[k] = d
		case 1:
			x.Clear(k)
			delete(model, k)
		case 2:
			d, ok := x.Deadline(k)
			md, mok := model[k]
			if ok != mok || d != md {
				t.Fatalf("step %d: Deadline(%d) = %d,%v want %d,%v", i, k, d, ok, md, mok)
			}
		case 3:
			now := uint64(rng.Intn(1000))
			got := x.PopDue(now, nil, 1000)
			var want []uint64
			for mk, md := range model {
				if md <= now {
					want = append(want, mk)
					delete(model, mk)
				}
			}
			sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
			sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
			if len(got) != len(want) {
				t.Fatalf("step %d: PopDue(%d) = %v, want %v", i, now, got, want)
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("step %d: PopDue(%d) = %v, want %v", i, now, got, want)
				}
			}
		}
	}
	if x.Len() != len(model) {
		t.Fatalf("final Len = %d, model %d", x.Len(), len(model))
	}
}
