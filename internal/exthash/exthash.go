// Package exthash implements extendible hashing (Fagin, Nievergelt,
// Pippenger, Strong 1979), one of the two classical directory schemes the
// paper cites for maintaining the load factor of an external hash table
// at an extra amortized cost of O(1/b) I/Os per insertion.
//
// A memory-resident directory of 2^g pointers (g = global depth) maps the
// top g bits of the hash to a bucket block; each bucket has a local depth
// ld <= g and is shared by the 2^(g-ld) directory slots agreeing on its
// top ld bits. A bucket that overflows splits on bit ld+1; if ld = g the
// directory doubles. Buckets are single blocks — extendible hashing has
// no overflow chains, so every lookup costs exactly one I/O.
//
// The directory lives in main memory and its 2^g words are charged
// against the model's memory budget, which is how the paper's
// memory-computable address function f accounts for such structures.
package exthash

import (
	"fmt"

	"extbuf/internal/hashfn"
	"extbuf/internal/iomodel"
)

// Table is an extendible hash table. Not safe for concurrent use.
type Table struct {
	d      *iomodel.Disk
	mem    *iomodel.Memory
	fn     hashfn.Fn
	dir    []iomodel.BlockID
	depth  []uint8 // local depth, parallel to dir (duplicated across shared slots)
	global uint
	n      int
	memRes int64
}

// overheadWords is the fixed in-memory footprint beyond the directory.
const overheadWords = 4

// New returns a table with an initial directory of 2^initialDepth slots.
func New(model *iomodel.Model, fn hashfn.Fn, initialDepth uint) (*Table, error) {
	if initialDepth > 28 {
		return nil, fmt.Errorf("exthash: initial depth %d too large", initialDepth)
	}
	size := 1 << initialDepth
	// Directory slots plus one local-depth word per slot.
	res := int64(overheadWords + 2*size)
	if err := model.Mem.Alloc(res); err != nil {
		return nil, fmt.Errorf("exthash: %w", err)
	}
	t := &Table{
		d:      model.Disk,
		mem:    model.Mem,
		fn:     fn,
		dir:    make([]iomodel.BlockID, size),
		depth:  make([]uint8, size),
		global: initialDepth,
		memRes: res,
	}
	for i := range t.dir {
		t.dir[i] = model.Disk.Alloc()
		t.depth[i] = uint8(initialDepth)
	}
	return t, nil
}

// Len returns the number of stored entries.
func (t *Table) Len() int { return t.n }

// GlobalDepth returns the current directory depth g.
func (t *Table) GlobalDepth() uint { return t.global }

// DirSize returns the number of directory slots, 2^g.
func (t *Table) DirSize() int { return len(t.dir) }

// LoadFactor returns ceil(n/b) over the number of distinct buckets.
func (t *Table) LoadFactor() float64 {
	b := t.d.B()
	distinct := t.NumBuckets()
	if distinct == 0 {
		return 0
	}
	return float64((t.n+b-1)/b) / float64(distinct)
}

// NumBuckets returns the number of distinct bucket blocks.
func (t *Table) NumBuckets() int {
	seen := make(map[iomodel.BlockID]struct{}, len(t.dir))
	for _, id := range t.dir {
		seen[id] = struct{}{}
	}
	return len(seen)
}

func (t *Table) slot(key uint64) int {
	return int(hashfn.TopBits(t.fn.Hash(key), t.global))
}

// Insert stores (key, val), overwriting an existing value. It returns
// the I/Os spent.
func (t *Table) Insert(key, val uint64) int {
	ios := 0
	for attempt := 0; attempt < 64; attempt++ {
		s := t.slot(key)
		id := t.dir[s]
		buf := t.d.Read(id, nil)
		ios++
		for i := range buf {
			if buf[i].Key == key {
				buf[i].Val = val
				t.d.WriteBack(id, buf)
				return ios
			}
		}
		if len(buf) < t.d.B() {
			buf = append(buf, iomodel.Entry{Key: key, Val: val})
			t.d.WriteBack(id, buf)
			t.n++
			return ios
		}
		ios += t.split(s, buf)
	}
	panic("exthash: insert failed after 64 splits (hash family degenerate)")
}

// split divides the overfull bucket serving slot s. buf holds the bucket
// contents already read by the caller. Returns extra I/Os spent.
func (t *Table) split(s int, buf []iomodel.Entry) int {
	ios := 0
	ld := uint(t.depth[s])
	if ld == t.global {
		t.doubleDir()
		s <<= 1 // slot index in the doubled directory
	}
	ld++
	// The bucket's slots in the current directory share the top ld-1 hash
	// bits; they form a contiguous run of length 2^(g-(ld-1)) starting at
	// the run base. Split entries on hash bit ld (counting from the top).
	runLen := 1 << (t.global - (ld - 1))
	base := (s / runLen) * runLen
	oldID := t.dir[base]
	var lo, hi []iomodel.Entry
	for _, e := range buf {
		if hashfn.TopBits(t.fn.Hash(e.Key), ld)&1 == 0 {
			lo = append(lo, e)
		} else {
			hi = append(hi, e)
		}
	}
	newID := t.d.Alloc()
	t.d.WriteBack(oldID, lo) // caller just read oldID
	t.d.Write(newID, hi)
	ios++
	half := runLen / 2
	for i := base; i < base+half; i++ {
		t.dir[i] = oldID
		t.depth[i] = uint8(ld)
	}
	for i := base + half; i < base+runLen; i++ {
		t.dir[i] = newID
		t.depth[i] = uint8(ld)
	}
	return ios
}

// doubleDir doubles the directory, charging the extra memory.
func (t *Table) doubleDir() {
	extra := int64(2 * len(t.dir))
	t.mem.MustAlloc(extra)
	t.memRes += extra
	nd := make([]iomodel.BlockID, 2*len(t.dir))
	ndep := make([]uint8, 2*len(t.dir))
	for i, id := range t.dir {
		nd[2*i], nd[2*i+1] = id, id
		ndep[2*i], ndep[2*i+1] = t.depth[i], t.depth[i]
	}
	t.dir = nd
	t.depth = ndep
	t.global++
}

// Lookup returns the value for key; every lookup costs exactly 1 I/O.
func (t *Table) Lookup(key uint64) (val uint64, ok bool, ios int) {
	id := t.dir[t.slot(key)]
	buf := t.d.ReadPinned(id)
	for i := range buf {
		if buf[i].Key == key {
			v := buf[i].Val
			t.d.Unpin(id)
			return v, true, 1
		}
	}
	t.d.Unpin(id)
	return 0, false, 1
}

// Delete removes key, merging buddy buckets when both halves fit in one
// block, and halving the directory when every bucket's local depth
// permits. Reports presence and I/Os spent.
func (t *Table) Delete(key uint64) (ok bool, ios int) {
	s := t.slot(key)
	id := t.dir[s]
	buf := t.d.Read(id, t.d.AcquireBuf())
	defer func() { t.d.ReleaseBuf(buf) }()
	ios++
	hit := -1
	for i, e := range buf {
		if e.Key == key {
			hit = i
			break
		}
	}
	if hit < 0 {
		return false, ios
	}
	buf[hit] = buf[len(buf)-1]
	buf = buf[:len(buf)-1]
	t.d.WriteBack(id, buf)
	t.n--
	ios += t.tryMerge(s, len(buf))
	return true, ios
}

// tryMerge coalesces the bucket serving slot s with its buddy if their
// combined contents fit in one block and they have equal local depth.
// It then halves the directory while possible.
func (t *Table) tryMerge(s int, curLen int) int {
	ios := 0
	for {
		ld := uint(t.depth[s])
		if ld == 0 {
			break
		}
		runLen := 1 << (t.global - ld)
		base := (s / runLen) * runLen
		var buddyBase int
		if (base/runLen)%2 == 0 {
			buddyBase = base + runLen
		} else {
			buddyBase = base - runLen
		}
		if t.depth[buddyBase] != uint8(ld) {
			break
		}
		buddyID := t.dir[buddyBase]
		myID := t.dir[base]
		buddy := t.d.Read(buddyID, t.d.AcquireBuf())
		ios++
		if curLen+len(buddy) > t.d.B() {
			t.d.ReleaseBuf(buddy)
			break
		}
		mine := t.d.Read(myID, t.d.AcquireBuf())
		ios++
		merged := append(mine, buddy...)
		t.d.WriteBack(myID, merged)
		t.d.ReleaseBuf(buddy)
		t.d.ReleaseBuf(merged)
		t.d.Free(buddyID)
		lo := base
		if buddyBase < base {
			lo = buddyBase
		}
		for i := lo; i < lo+2*runLen; i++ {
			t.dir[i] = myID
			t.depth[i] = uint8(ld - 1)
		}
		curLen = len(merged)
		s = lo
	}
	// Halve once after all merges: halving renumbers slots, so it must
	// not run while the loop still holds a slot index.
	t.tryHalveDir()
	return ios
}

// tryHalveDir shrinks the directory while no bucket needs the last bit.
func (t *Table) tryHalveDir() {
	for t.global > 0 {
		canHalve := true
		for i := 0; i < len(t.dir); i += 2 {
			if t.dir[i] != t.dir[i+1] {
				canHalve = false
				break
			}
		}
		if !canHalve {
			return
		}
		nd := make([]iomodel.BlockID, len(t.dir)/2)
		ndep := make([]uint8, len(t.dir)/2)
		for i := range nd {
			nd[i] = t.dir[2*i]
			ndep[i] = t.depth[2*i]
		}
		released := int64(2 * len(nd))
		t.dir = nd
		t.depth = ndep
		t.global--
		t.mem.Release(released)
		t.memRes -= released
	}
}

// AddressOf returns the directory-resolved block for key (the zones
// audit's f). Every stored item is in its addressed block, so the whole
// table is fast zone — the price is the directory's memory and the ~1
// I/O insertion cost.
func (t *Table) AddressOf(key uint64) iomodel.BlockID {
	return t.dir[t.slot(key)]
}

// MemoryKeys returns nil: the directory holds pointers, not items.
func (t *Table) MemoryKeys() []uint64 { return nil }

// Disk exposes the underlying disk for audits.
func (t *Table) Disk() *iomodel.Disk { return t.d }

// CheckInvariant validates directory/bucket consistency (test hook): the
// slots sharing a bucket form exactly the aligned run its local depth
// implies, and every stored key hashes into the bucket that holds it.
func (t *Table) CheckInvariant() error {
	for s, id := range t.dir {
		ld := uint(t.depth[s])
		if ld > t.global {
			return fmt.Errorf("exthash: slot %d local depth %d > global %d", s, ld, t.global)
		}
		runLen := 1 << (t.global - ld)
		base := (s / runLen) * runLen
		for i := base; i < base+runLen; i++ {
			if t.dir[i] != id {
				return fmt.Errorf("exthash: run [%d,%d) of slot %d not uniform", base, base+runLen, s)
			}
			if t.depth[i] != uint8(ld) {
				return fmt.Errorf("exthash: run of slot %d has mixed depths", s)
			}
		}
		for _, e := range t.d.Peek(id) {
			if t.dir[t.slot(e.Key)] != id {
				return fmt.Errorf("exthash: key %d stored in block %d but addressed to %d", e.Key, id, t.dir[t.slot(e.Key)])
			}
		}
	}
	return nil
}

// Close releases the table's memory reservation.
func (t *Table) Close() {
	t.mem.Release(t.memRes)
	t.memRes = 0
}
