package exthash

import (
	"testing"
	"testing/quick"

	"extbuf/internal/hashfn"
	"extbuf/internal/iomodel"
	"extbuf/internal/workload"
	"extbuf/internal/xrand"
)

func newTable(t *testing.T, b int, depth uint) (*iomodel.Model, *Table) {
	t.Helper()
	model := iomodel.NewModel(b, 1<<20)
	tab, err := New(model, hashfn.NewIdeal(1), depth)
	if err != nil {
		t.Fatal(err)
	}
	return model, tab
}

func TestInsertLookup(t *testing.T) {
	_, tab := newTable(t, 4, 1)
	rng := xrand.New(2)
	keys := workload.Keys(rng, 400)
	for i, k := range keys {
		tab.Insert(k, uint64(i))
	}
	if tab.Len() != 400 {
		t.Fatalf("Len = %d", tab.Len())
	}
	if err := tab.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		v, ok, ios := tab.Lookup(k)
		if !ok || v != uint64(i) {
			t.Fatalf("key %d lost", k)
		}
		if ios != 1 {
			t.Fatalf("lookup cost %d, extendible hashing must cost exactly 1", ios)
		}
	}
	if tab.GlobalDepth() <= 1 {
		t.Fatalf("directory did not deepen: %d", tab.GlobalDepth())
	}
}

func TestReplace(t *testing.T) {
	_, tab := newTable(t, 4, 1)
	tab.Insert(9, 1)
	tab.Insert(9, 2)
	if tab.Len() != 1 {
		t.Fatalf("Len = %d", tab.Len())
	}
	v, _, _ := tab.Lookup(9)
	if v != 2 {
		t.Fatalf("v = %d", v)
	}
}

func TestSplitPreservesContents(t *testing.T) {
	// Insert exactly enough to force splits at b = 2 and verify every
	// key after each insert.
	_, tab := newTable(t, 2, 0)
	rng := xrand.New(3)
	keys := workload.Keys(rng, 64)
	for i, k := range keys {
		tab.Insert(k, uint64(i))
		for j := 0; j <= i; j++ {
			v, ok, _ := tab.Lookup(keys[j])
			if !ok || v != uint64(j) {
				t.Fatalf("after %d inserts key %d lost", i+1, keys[j])
			}
		}
		if err := tab.CheckInvariant(); err != nil {
			t.Fatalf("after insert %d: %v", i, err)
		}
	}
}

func TestDirectoryMemoryCharged(t *testing.T) {
	model, tab := newTable(t, 2, 1)
	used0 := model.Mem.Used()
	rng := xrand.New(5)
	for _, k := range workload.Keys(rng, 500) {
		tab.Insert(k, 0)
	}
	if model.Mem.Used() <= used0 {
		t.Fatal("directory growth did not charge memory")
	}
	tab.Close()
	if model.Mem.Used() != 0 {
		t.Fatalf("Close left %d words charged", model.Mem.Used())
	}
}

func TestDeleteAndMerge(t *testing.T) {
	_, tab := newTable(t, 4, 1)
	rng := xrand.New(7)
	keys := workload.Keys(rng, 300)
	for i, k := range keys {
		tab.Insert(k, uint64(i))
	}
	depthAtPeak := tab.GlobalDepth()
	for _, k := range keys {
		ok, _ := tab.Delete(k)
		if !ok {
			t.Fatalf("delete %d failed", k)
		}
		if err := tab.CheckInvariant(); err != nil {
			t.Fatal(err)
		}
	}
	if tab.Len() != 0 {
		t.Fatalf("Len = %d", tab.Len())
	}
	if tab.GlobalDepth() >= depthAtPeak {
		t.Fatalf("directory did not shrink: %d -> %d", depthAtPeak, tab.GlobalDepth())
	}
	if ok, _ := tab.Delete(1); ok {
		t.Fatal("deleted absent key from empty table")
	}
}

func TestLoadFactorMaintained(t *testing.T) {
	// Extendible hashing's whole point: load factor stays decent as the
	// table grows, without ever touching more than O(1) blocks per op.
	_, tab := newTable(t, 16, 1)
	rng := xrand.New(9)
	for _, k := range workload.Keys(rng, 5000) {
		tab.Insert(k, 0)
	}
	lf := tab.LoadFactor()
	if lf < 0.4 || lf > 1 {
		t.Fatalf("load factor %.3f outside extendible hashing's expected band", lf)
	}
}

func TestInsertCostConstant(t *testing.T) {
	model, tab := newTable(t, 16, 1)
	rng := xrand.New(11)
	keys := workload.Keys(rng, 4000)
	c0 := model.Counters()
	for _, k := range keys {
		tab.Insert(k, 0)
	}
	dc := model.Counters().Sub(c0)
	perInsert := float64(dc.IOs()) / float64(len(keys))
	// 1 read per insert, splits amortize to O(1/b): ~1.1 at b=16.
	if perInsert > 1.3 {
		t.Fatalf("amortized insert cost %.3f I/Os, want ~1", perInsert)
	}
	if perInsert < 1.0 {
		t.Fatalf("amortized insert cost %.3f < 1, accounting broken", perInsert)
	}
}

func TestMatchesMapModel(t *testing.T) {
	f := func(seed uint64, ops []byte) bool {
		model := iomodel.NewModel(2, 1<<18)
		tab, err := New(model, hashfn.NewIdeal(seed), 1)
		if err != nil {
			return false
		}
		ref := map[uint64]uint64{}
		r := xrand.New(seed)
		for _, op := range ops {
			key := uint64(op % 24)
			switch op % 3 {
			case 0:
				v := r.Uint64()
				tab.Insert(key, v)
				ref[key] = v
			case 1:
				ok, _ := tab.Delete(key)
				_, inRef := ref[key]
				if ok != inRef {
					return false
				}
				delete(ref, key)
			default:
				v, ok, _ := tab.Lookup(key)
				rv, rok := ref[key]
				if ok != rok || (ok && v != rv) {
					return false
				}
			}
			if tab.Len() != len(ref) {
				return false
			}
			if err := tab.CheckInvariant(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
