package exthash

import (
	"fmt"

	"extbuf/internal/ckpt"
	"extbuf/internal/hashfn"
	"extbuf/internal/iomodel"
)

// SaveState serializes the table's volatile in-memory state — the
// directory, the parallel local depths and the global depth — for a
// checkpoint.
func (t *Table) SaveState(e *ckpt.Encoder) {
	e.BlockIDs(t.dir)
	e.U8s(t.depth)
	e.U64(uint64(t.global))
	e.Int(t.n)
}

// Restore rebuilds a table from a SaveState payload on a model whose
// store already holds the checkpointed blocks. It charges the same
// directory-sized memory reservation as the live table held.
func Restore(model *iomodel.Model, fn hashfn.Fn, d *ckpt.Decoder) (*Table, error) {
	dir := d.BlockIDs()
	depth := d.U8s()
	global := uint(d.U64())
	n := d.Int()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("exthash: restore: %w", err)
	}
	if global > 28 || len(dir) != 1<<global || len(depth) != len(dir) {
		return nil, fmt.Errorf("exthash: restore: directory size %d/%d inconsistent with global depth %d",
			len(dir), len(depth), global)
	}
	if n < 0 {
		return nil, fmt.Errorf("exthash: restore: negative entry count %d", n)
	}
	res := int64(overheadWords + 2*len(dir))
	if err := model.Mem.Alloc(res); err != nil {
		return nil, fmt.Errorf("exthash: %w", err)
	}
	return &Table{
		d:      model.Disk,
		mem:    model.Mem,
		fn:     fn,
		dir:    dir,
		depth:  depth,
		global: global,
		n:      n,
		memRes: res,
	}, nil
}
