package exthash

import "extbuf/internal/iomodel"

// ScanBuckets returns the number of scan bucket slots: one per
// directory slot. Slots sharing a bucket (local depth < global) yield
// their contents only at the run base, so every distinct bucket is
// emitted exactly once per full scan.
func (t *Table) ScanBuckets() int { return len(t.dir) }

// ScanBucket appends slot i's bucket to buf if i is the canonical
// (lowest) slot pointing at it, returning buf and the I/Os spent.
// Non-canonical slots cost nothing and emit nothing.
func (t *Table) ScanBucket(i int, buf []iomodel.Entry) ([]iomodel.Entry, int) {
	runLen := 1 << (t.global - uint(t.depth[i]))
	if i%runLen != 0 {
		return buf, 0
	}
	return t.d.Read(t.dir[i], buf), 1
}
