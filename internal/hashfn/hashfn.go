// Package hashfn provides the hash-function families used by every table
// in this repository, together with the bucket-index extraction scheme the
// merges rely on.
//
// The paper assumes an ideal hash function h(x) mapping each item
// independently and uniformly into U = {0, ..., u-1} (a "justifiable
// assumption" citing Mitzenmacher–Vadhan). Our default family, Ideal, is a
// keyed SplitMix64 finalizer: a bijection whose outputs on distinct keys
// are empirically indistinguishable from independent uniform draws. Two
// weaker classical families (multiply-shift universal hashing and simple
// tabulation) are provided so experiments can demonstrate insensitivity to
// the family choice.
//
// # Index extraction
//
// All tables index buckets by the TOP bits of the 64-bit hash value:
// a table with 2^j buckets uses bucket index h >> (64-j). Consequently a
// table that doubles from 2^j to 2^(j+1) buckets splits every bucket into
// two consecutive buckets, and a gamma-fold growth (gamma a power of two)
// maps bucket i to the consecutive range [i*gamma, (i+1)*gamma). This is
// what makes every merge in the logarithmic method and in the Theorem 2
// structure a strictly sequential parallel scan, exactly as the paper's
// "we can conduct the merge by scanning the two tables in parallel".
package hashfn

import (
	"extbuf/internal/xrand"
)

// Fn is a hash function from 64-bit keys to 64-bit hash values. The hash
// value plays the role of h(x) in the paper: tables never look at the key
// other than through Fn.
type Fn interface {
	// Hash returns the 64-bit hash value of key.
	Hash(key uint64) uint64
	// Name identifies the family for experiment reports.
	Name() string
}

// Ideal is the default family: a SplitMix64 finalizer keyed by a seed.
// It models the paper's ideal random hash function.
type Ideal struct {
	seed uint64
}

// NewIdeal returns an Ideal hash function derived from seed.
func NewIdeal(seed uint64) Ideal {
	return Ideal{seed: xrand.Mix64(seed ^ 0x6a09e667f3bcc909)}
}

// Hash implements Fn.
func (f Ideal) Hash(key uint64) uint64 { return xrand.Mix64(key ^ f.seed) }

// Name implements Fn.
func (f Ideal) Name() string { return "ideal" }

// MultShift is the classical 2-universal multiply-shift family of Dietzfelbinger
// et al.: h(x) = (a*x + c) over 64 bits, with odd multiplier a.
type MultShift struct {
	a, c uint64
}

// NewMultShift returns a MultShift function with parameters drawn from seed.
func NewMultShift(seed uint64) MultShift {
	sm := seed
	a := xrand.SplitMix64(&sm) | 1 // multiplier must be odd
	c := xrand.SplitMix64(&sm)
	return MultShift{a: a, c: c}
}

// Hash implements Fn.
func (f MultShift) Hash(key uint64) uint64 { return f.a*key + f.c }

// Name implements Fn.
func (f MultShift) Name() string { return "multshift" }

// Tabulation is simple tabulation hashing over 8 character tables of 256
// entries each: h(x) = T0[x0] ^ T1[x1] ^ ... ^ T7[x7]. Simple tabulation is
// 3-independent and known to behave like full randomness for hashing with
// chaining and linear probing (Pătraşcu–Thorup).
type Tabulation struct {
	t [8][256]uint64
}

// NewTabulation returns a Tabulation function with tables filled from seed.
func NewTabulation(seed uint64) *Tabulation {
	var f Tabulation
	sm := seed
	for i := range f.t {
		for j := range f.t[i] {
			f.t[i][j] = xrand.SplitMix64(&sm)
		}
	}
	return &f
}

// Hash implements Fn.
func (f *Tabulation) Hash(key uint64) uint64 {
	var h uint64
	for i := 0; i < 8; i++ {
		h ^= f.t[i][byte(key>>(8*i))]
	}
	return h
}

// Name implements Fn.
func (f *Tabulation) Name() string { return "tabulation" }

// TopBits returns the bucket index given by the top `bits` bits of hash.
// bits must be in [0, 64]; TopBits(h, 0) is always 0.
func TopBits(hash uint64, bits uint) uint64 {
	if bits == 0 {
		return 0
	}
	return hash >> (64 - bits)
}

// BucketOf returns the bucket index of hash in a table with nbuckets
// buckets, nbuckets a power of two, using top-bit extraction.
func BucketOf(hash uint64, nbuckets int) int {
	return int(TopBits(hash, uint(Log2(nbuckets))))
}

// Log2 returns floor(log2(n)) for n >= 1. It panics for n < 1.
func Log2(n int) int {
	if n < 1 {
		panic("hashfn: Log2 of non-positive value")
	}
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// CeilPow2 returns the smallest power of two >= n, with CeilPow2(0) == 1.
func CeilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Family constructs a named family member; valid names are "ideal",
// "multshift" and "tabulation". Unknown names return the ideal family.
func Family(name string, seed uint64) Fn {
	switch name {
	case "multshift":
		return NewMultShift(seed)
	case "tabulation":
		return NewTabulation(seed)
	default:
		return NewIdeal(seed)
	}
}
