package hashfn

import (
	"math"
	"testing"
	"testing/quick"

	"extbuf/internal/xrand"
)

func TestTopBits(t *testing.T) {
	if TopBits(0xffffffffffffffff, 0) != 0 {
		t.Fatal("0 bits should give 0")
	}
	if TopBits(0x8000000000000000, 1) != 1 {
		t.Fatal("top bit extraction failed")
	}
	if TopBits(0xff00000000000000, 8) != 0xff {
		t.Fatal("top byte extraction failed")
	}
}

func TestBucketOfRange(t *testing.T) {
	f := func(h uint64, shift uint8) bool {
		n := 1 << (shift % 16)
		b := BucketOf(h, n)
		return b >= 0 && b < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBucketOfRefinement(t *testing.T) {
	// Doubling the bucket count must split bucket i into buckets 2i, 2i+1.
	f := func(h uint64, shift uint8) bool {
		n := 1 << (shift%14 + 1)
		coarse := BucketOf(h, n)
		fine := BucketOf(h, 2*n)
		return fine == 2*coarse || fine == 2*coarse+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBucketOfGammaRefinement(t *testing.T) {
	// gamma-fold growth maps bucket i to [i*gamma, (i+1)*gamma).
	f := func(h uint64) bool {
		const n, gamma = 64, 8
		coarse := BucketOf(h, n)
		fine := BucketOf(h, n*gamma)
		return fine >= coarse*gamma && fine < (coarse+1)*gamma
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3, 1024: 10}
	for n, want := range cases {
		if got := Log2(n); got != want {
			t.Errorf("Log2(%d) = %d want %d", n, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Log2(0) did not panic")
		}
	}()
	Log2(0)
}

func TestCeilPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 5: 8, 1023: 1024, 1024: 1024}
	for n, want := range cases {
		if got := CeilPow2(n); got != want {
			t.Errorf("CeilPow2(%d) = %d want %d", n, got, want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 4096} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -1, 3, 6, 12, 1000} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestFamilyNames(t *testing.T) {
	for _, name := range []string{"ideal", "multshift", "tabulation"} {
		f := Family(name, 1)
		if f.Name() != name {
			t.Errorf("Family(%q).Name() = %q", name, f.Name())
		}
	}
	if Family("unknown", 1).Name() != "ideal" {
		t.Error("unknown family should fall back to ideal")
	}
}

func TestFamiliesDeterministic(t *testing.T) {
	for _, name := range []string{"ideal", "multshift", "tabulation"} {
		a := Family(name, 99)
		b := Family(name, 99)
		for k := uint64(0); k < 100; k++ {
			if a.Hash(k) != b.Hash(k) {
				t.Fatalf("%s: same seed, different hash for key %d", name, k)
			}
		}
	}
}

func TestFamiliesSeedSensitive(t *testing.T) {
	for _, name := range []string{"ideal", "multshift", "tabulation"} {
		a := Family(name, 1)
		b := Family(name, 2)
		same := 0
		for k := uint64(0); k < 1000; k++ {
			if a.Hash(k) == b.Hash(k) {
				same++
			}
		}
		if same > 2 {
			t.Errorf("%s: %d/1000 collisions across seeds", name, same)
		}
	}
}

// bucketChiSquare computes the chi-square statistic of hashing n sequential
// keys into nb buckets.
func bucketChiSquare(f Fn, n, nb int) float64 {
	counts := make([]float64, nb)
	for k := 0; k < n; k++ {
		counts[BucketOf(f.Hash(uint64(k)), nb)]++
	}
	want := float64(n) / float64(nb)
	var chi float64
	for _, c := range counts {
		d := c - want
		chi += d * d / want
	}
	return chi
}

func TestFamiliesUniformBuckets(t *testing.T) {
	// chi-square with nb-1 = 255 degrees of freedom: mean 255, sd ~22.6.
	// Accept anything below mean + 6 sd; sequential keys are the paper's
	// hardest realistic input for multiply-shift.
	const n, nb = 1 << 16, 256
	for _, name := range []string{"ideal", "tabulation"} {
		chi := bucketChiSquare(Family(name, 12345), n, nb)
		if chi > 255+6*math.Sqrt(2*255) {
			t.Errorf("%s: chi-square %v too large for uniform buckets", name, chi)
		}
	}
}

func TestIdealAvalanche(t *testing.T) {
	// Flipping one input bit should flip ~32 of 64 output bits.
	f := NewIdeal(7)
	var totalFlips, samples float64
	r := xrand.New(3)
	for i := 0; i < 2000; i++ {
		k := r.Uint64()
		bit := uint(r.Intn(64))
		diff := f.Hash(k) ^ f.Hash(k^(1<<bit))
		flips := 0
		for diff != 0 {
			flips++
			diff &= diff - 1
		}
		totalFlips += float64(flips)
		samples++
	}
	mean := totalFlips / samples
	if math.Abs(mean-32) > 1 {
		t.Fatalf("avalanche mean %v, want ~32", mean)
	}
}
