package iomodel

import (
	"strings"
	"testing"
)

func TestClearIsFree(t *testing.T) {
	d := NewDisk(4)
	id := d.Alloc()
	d.Write(id, []Entry{{1, 1}, {2, 2}})
	other := d.Alloc()
	d.SetNext(id, other)
	before := d.Counters()
	d.Clear(id)
	if d.Counters() != before {
		t.Fatal("Clear charged I/O")
	}
	if len(d.Peek(id)) != 0 {
		t.Fatal("Clear left contents")
	}
	if d.Next(id) != NilBlock {
		t.Fatal("Clear left next pointer")
	}
}

func TestClearResetsLastRead(t *testing.T) {
	d := NewDisk(4)
	id := d.Alloc()
	d.Write(id, []Entry{{1, 1}})
	d.Read(id, nil)
	d.Clear(id)
	// After Clear the write-back window is gone: WriteBack must panic.
	defer func() {
		if recover() == nil {
			t.Fatal("WriteBack after Clear did not panic")
		}
	}()
	d.WriteBack(id, nil)
}

func TestCountersString(t *testing.T) {
	c := Counters{Reads: 1, Writes: 2, WriteBacks: 3}
	s := c.String()
	for _, want := range []string{"reads=1", "writes=2", "writebacks=3", "ios=3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero block size":   func() { NewDisk(0) },
		"negative capacity": func() { NewMemory(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMustAllocPanics(t *testing.T) {
	m := NewMemory(4)
	m.MustAlloc(4)
	defer func() {
		if recover() == nil {
			t.Fatal("MustAlloc over budget did not panic")
		}
	}()
	m.MustAlloc(1)
}
