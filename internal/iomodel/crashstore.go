package iomodel

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
)

// This file implements CrashStore: deterministic, seedable fault
// injection for the durability subsystem. A Crasher interposes on every
// file underlying a durable table — the block file, the write-ahead log
// and the checkpoint temp file — and simulates a process death at a
// chosen write syscall: the fatal write may be torn (only a prefix of
// its bytes reaches the file), and after the crash point every
// subsequent write and sync fails with ErrInjectedCrash, so nothing
// more can reach "disk", exactly as if the process had died. Recovery
// is then exercised by reopening the same path without a Crasher — no
// process actually has to be killed.

// ErrInjectedCrash is the sticky error every write and sync returns
// once a Crasher's crash point has been reached.
var ErrInjectedCrash = errors.New("iomodel: injected crash")

// ErrInjectedSyncFailure is returned by Sync when a CrashPlan demands
// failing fsyncs (without killing the process).
var ErrInjectedSyncFailure = errors.New("iomodel: injected sync failure")

// CrashPlan describes the fault to inject. The zero plan injects
// nothing.
type CrashPlan struct {
	// FailAfterWrites crashes on the Nth write syscall (1-based)
	// counted across every wrapped file. Zero never crashes.
	FailAfterWrites int64
	// TornWrite makes the fatal write partial: a seed-determined
	// prefix of its bytes is persisted before the crash.
	TornWrite bool
	// FailSync makes every Sync return ErrInjectedSyncFailure without
	// crashing, modeling an fsync error the caller must surface.
	FailSync bool
	// Seed drives the torn-write prefix length.
	Seed uint64
}

// Crasher executes a CrashPlan across the set of files it wraps. It is
// safe for concurrent use (durable shards may share one plan).
type Crasher struct {
	plan    CrashPlan
	writes  atomic.Int64
	crashed atomic.Bool
}

// NewCrasher returns a Crasher executing plan.
func NewCrasher(plan CrashPlan) *Crasher { return &Crasher{plan: plan} }

// Crashed reports whether the crash point has been reached.
func (c *Crasher) Crashed() bool { return c.crashed.Load() }

// Writes returns the number of write syscalls observed so far.
func (c *Crasher) Writes() int64 { return c.writes.Load() }

// BlockFile is the file-handle surface the storage layer consumes:
// what FileStore, the WAL and the checkpoint writer need from an
// *os.File, and the seam a Crasher interposes on.
type BlockFile interface {
	io.ReaderAt
	io.WriterAt
	io.Writer
	Sync() error
	Close() error
	Truncate(size int64) error
	Name() string
}

var _ BlockFile = (*crashFile)(nil)

// WrapFile interposes the crasher on f. All wrapped files share the
// crasher's write counter and crash state.
func (c *Crasher) WrapFile(f BlockFile) BlockFile { return &crashFile{c: c, f: f} }

type crashFile struct {
	c *Crasher
	f BlockFile
}

// admitWrite charges one write syscall against the plan. It returns the
// number of bytes of p that may be persisted and the error to report;
// on the fatal write a torn plan persists a prefix, otherwise nothing
// of the failing write lands.
func (c *Crasher) admitWrite(p []byte) (int, error) {
	if c.crashed.Load() {
		return 0, ErrInjectedCrash
	}
	n := c.writes.Add(1)
	if c.plan.FailAfterWrites > 0 && n >= c.plan.FailAfterWrites {
		c.crashed.Store(true)
		if c.plan.TornWrite && len(p) > 0 {
			// Deterministic prefix in [0, len(p)): at least one byte is
			// always lost, so the write is genuinely partial.
			x := c.plan.Seed ^ uint64(n)*0x9e3779b97f4a7c15
			x ^= x >> 33
			x *= 0xff51afd7ed558ccd
			x ^= x >> 33
			return int(x % uint64(len(p))), ErrInjectedCrash
		}
		return 0, ErrInjectedCrash
	}
	return len(p), nil
}

func (w *crashFile) WriteAt(p []byte, off int64) (int, error) {
	n, err := w.c.admitWrite(p)
	if n > 0 {
		if wn, werr := w.f.WriteAt(p[:n], off); werr != nil {
			return wn, werr
		}
	}
	if err != nil {
		return n, err
	}
	return len(p), nil
}

func (w *crashFile) Write(p []byte) (int, error) {
	n, err := w.c.admitWrite(p)
	if n > 0 {
		if wn, werr := w.f.Write(p[:n]); werr != nil {
			return wn, werr
		}
	}
	if err != nil {
		return n, err
	}
	return len(p), nil
}

func (w *crashFile) ReadAt(p []byte, off int64) (int, error) { return w.f.ReadAt(p, off) }

func (w *crashFile) Sync() error {
	if w.c.crashed.Load() {
		return ErrInjectedCrash
	}
	if w.c.plan.FailSync {
		return ErrInjectedSyncFailure
	}
	return w.f.Sync()
}

func (w *crashFile) Truncate(size int64) error {
	if w.c.crashed.Load() {
		return ErrInjectedCrash
	}
	return w.f.Truncate(size)
}

func (w *crashFile) Close() error { return w.f.Close() }

func (w *crashFile) Name() string { return w.f.Name() }

// CrashStore is a durable FileStore under a Crasher: the fault-testing
// backend of the crash matrix. Construction opens (or reopens) the
// block file at path in durable mode with every write routed through
// the crasher.
type CrashStore struct {
	*FileStore
	Crasher *Crasher
}

// NewCrashStore opens a durable FileStore at path with faults injected
// by crasher.
func NewCrashStore(path string, b, cacheBlocks int, crasher *Crasher) (*CrashStore, error) {
	fs, err := OpenFileStore(path, b, cacheBlocks, crasher)
	if err != nil {
		return nil, err
	}
	return &CrashStore{FileStore: fs, Crasher: crasher}, nil
}

// Failed returns the store's sticky write failure, if any — the signal
// a driving harness uses to learn the simulated process has died.
func (s *CrashStore) Failed() error { return s.FileStore.Failed() }

// String identifies the store in test failure messages.
func (s *CrashStore) String() string {
	return fmt.Sprintf("CrashStore(%s, writes=%d, crashed=%v)",
		s.Path(), s.Crasher.Writes(), s.Crasher.Crashed())
}
