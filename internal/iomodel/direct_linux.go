//go:build linux

package iomodel

import (
	"os"
	"path/filepath"
	"syscall"
)

// directIOSupported is true where the platform has an O_DIRECT flag at
// all; the per-filesystem probe in openBlockFile still decides whether
// a given path honors it.
const directIOSupported = true

// forceNoDirect makes openBlockFile behave as if every O_DIRECT open
// failed — a test hook for exercising the fallback ladder on
// filesystems that (like ext4 and this kernel's tmpfs) accept O_DIRECT.
var forceNoDirect = false

// openBlockFile opens path with the given flags, attempting O_DIRECT
// when wantDirect. It reports whether the returned fd actually is
// direct: filesystems without O_DIRECT support (older tmpfs, some
// overlayfs and network mounts) fail the open, and the store falls
// back to a buffered fd rather than failing — the caller records the
// fallback in FileStats.
func openBlockFile(path string, flags int, wantDirect bool) (*os.File, bool, error) {
	if wantDirect && !forceNoDirect {
		f, err := os.OpenFile(path, flags|syscall.O_DIRECT, 0o644)
		if err == nil {
			return f, true, nil
		}
		// O_TRUNC already happened? No: a failed open(2) is atomic —
		// nothing was created or truncated — so retrying without the
		// flag is safe.
	}
	f, err := os.OpenFile(path, flags, 0o644)
	return f, false, err
}

// fsBlockSize returns the filesystem block size of the volume holding
// path (the path's directory is probed, so the file need not exist),
// clamped to a power of two in [512, 64 KiB]. 4096 if the probe fails.
func fsBlockSize(path string) int {
	var st syscall.Statfs_t
	dir := filepath.Dir(path)
	if err := syscall.Statfs(dir, &st); err != nil {
		return 4096
	}
	bs := int(st.Bsize)
	if bs < 512 || bs > 1<<16 || bs&(bs-1) != 0 {
		return 4096
	}
	return bs
}

// fsSectorSize returns the alignment the direct layout uses for the
// volume holding path: the filesystem block size, floored at 512.
// O_DIRECT requires alignment to the device's logical sector size,
// which the filesystem block size is always a multiple of.
func fsSectorSize(path string) int {
	bs := fsBlockSize(path)
	if bs < 512 {
		return 512
	}
	if bs > 4096 {
		// Huge-block filesystems still honor 4 KiB direct alignment
		// (the page size bounds the requirement in practice).
		return 4096
	}
	return bs
}
