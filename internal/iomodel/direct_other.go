//go:build !linux

package iomodel

import "os"

// directIOSupported: no portable O_DIRECT outside Linux; direct modes
// fall back to buffered syscalls (recorded in FileStats) but keep the
// sector-padded layout so files move between platforms.
const directIOSupported = false

var forceNoDirect = false

func openBlockFile(path string, flags int, wantDirect bool) (*os.File, bool, error) {
	f, err := os.OpenFile(path, flags, 0o644)
	return f, false, err
}

func fsBlockSize(path string) int { return 4096 }

func fsSectorSize(path string) int { return 4096 }
