package iomodel

import (
	"testing"
	"unsafe"
)

// recordingFile wraps a BlockFile and records the offset, length and
// buffer address of every read and write, for alignment assertions.
type recordingFile struct {
	inner BlockFile
	ops   []recordedOp
}

type recordedOp struct {
	write bool
	off   int64
	n     int
	addr  uintptr
}

func (r *recordingFile) record(write bool, p []byte, off int64) {
	var addr uintptr
	if len(p) > 0 {
		addr = uintptr(unsafe.Pointer(&p[0]))
	}
	r.ops = append(r.ops, recordedOp{write: write, off: off, n: len(p), addr: addr})
}

func (r *recordingFile) ReadAt(p []byte, off int64) (int, error) {
	r.record(false, p, off)
	return r.inner.ReadAt(p, off)
}

func (r *recordingFile) WriteAt(p []byte, off int64) (int, error) {
	r.record(true, p, off)
	return r.inner.WriteAt(p, off)
}

func (r *recordingFile) Write(p []byte) (int, error) { return r.inner.Write(p) }
func (r *recordingFile) Sync() error                 { return r.inner.Sync() }
func (r *recordingFile) Close() error                { return r.inner.Close() }
func (r *recordingFile) Truncate(n int64) error      { return r.inner.Truncate(n) }
func (r *recordingFile) Name() string                { return r.inner.Name() }

// TestDirectLayoutAlignment drives flush-barrier runs, eviction
// clustering and faulting reads through an odirect-layout store and
// asserts the alignment invariants the kernel-bypass tier promises:
// every I/O offset and write length is a multiple of the slot stride
// (itself sector-padded), and — when the fd really is O_DIRECT — every
// I/O buffer is sector-aligned.
func TestDirectLayoutAlignment(t *testing.T) {
	const b, cacheBlocks, blocks = 7, 16, 64 // odd b: frameBytes far from any sector multiple
	s, err := NewFileStoreIO(t.TempDir()+"/blocks", b, cacheBlocks, IOOptions{Mode: IOModeODirect})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rec := &recordingFile{inner: s.f}
	s.f = rec

	sector := int64(s.SectorSize())
	if sector < 512 {
		t.Fatalf("direct layout sector = %d, want >= 512", sector)
	}
	if s.slotBytes%sector != 0 || s.slotBytes < s.frameBytes {
		t.Fatalf("slotBytes %d not sector-padded (frame %d, sector %d)", s.slotBytes, s.frameBytes, sector)
	}

	for i := 0; i < blocks; i++ {
		id := s.Alloc()
		s.WriteBlock(id, []Entry{{Key: uint64(i), Val: uint64(i) * 3}})
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// Evictions + faulting reads: touch everything again (the pool only
	// holds cacheBlocks frames).
	for i := 0; i < blocks; i++ {
		got := s.ReadBlock(BlockID(i), nil)
		if len(got) != 1 || got[0].Key != uint64(i) {
			t.Fatalf("block %d: got %v", i, got)
		}
	}
	// Chain-pointer preservation path (loadHeader) on an uncached block.
	s.WriteBlock(BlockID(0), []Entry{{Key: 99}})
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}

	if len(rec.ops) == 0 {
		t.Fatal("recording file saw no I/O")
	}
	for i, op := range rec.ops {
		if op.off%s.slotBytes != 0 {
			t.Errorf("op %d: offset %d not slot-aligned (slot %d)", i, op.off, s.slotBytes)
		}
		if op.write && int64(op.n)%s.slotBytes != 0 {
			t.Errorf("op %d: write length %d not a slot multiple", i, op.n)
		}
		if s.direct {
			if int64(op.n)%sector != 0 {
				t.Errorf("op %d: length %d not sector-aligned", i, op.n)
			}
			if op.addr%uintptr(sector) != 0 {
				t.Errorf("op %d: buffer address %#x not sector-aligned", i, op.addr)
			}
		}
	}
}

// TestDirectLayoutAlignmentAsync repeats the alignment drive with the
// writeback pool engaged, so pooled submission buffers are checked
// too.
func TestDirectLayoutAlignmentAsync(t *testing.T) {
	const b, cacheBlocks, blocks = 5, 8, 48
	s, err := NewFileStoreIO(t.TempDir()+"/blocks", b, cacheBlocks, IOOptions{Mode: IOModeODirect})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rec := &recordingFile{inner: s.f}
	s.f = rec
	s.SetWritebackWorkers(3)

	for i := 0; i < blocks; i++ {
		id := s.Alloc()
		s.WriteBlock(id, []Entry{{Key: uint64(i)}})
		if i%7 == 0 {
			if err := s.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < blocks; i++ {
		if got := s.ReadBlock(BlockID(i), nil); len(got) != 1 || got[0].Key != uint64(i) {
			t.Fatalf("block %d: got %v", i, got)
		}
	}
	sector := int64(s.SectorSize())
	for i, op := range rec.ops {
		if op.off%s.slotBytes != 0 {
			t.Errorf("op %d: offset %d not slot-aligned", i, op.off)
		}
		if s.direct && op.addr%uintptr(sector) != 0 {
			t.Errorf("op %d: buffer address %#x not sector-aligned", i, op.addr)
		}
	}
}

// TestODirectDurableRoundTrip exercises the full durable cycle —
// write, checkpoint-style sync, close, reopen with the recorded
// mapping, verify — on a real O_DIRECT fd. Skips cleanly where the
// filesystem refused the flag.
func TestODirectDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/blocks"
	io := IOOptions{Mode: IOModeODirect}
	s, err := OpenFileStoreIO(path, 4, 8, nil, io)
	if err != nil {
		t.Fatal(err)
	}
	if s.EffectiveIOMode() != IOModeODirect {
		s.Close()
		t.Skipf("O_DIRECT unsupported here (effective mode %s)", s.EffectiveIOMode())
	}
	if st := s.Stats(); st.DirectIO != 1 || st.ODirectFallbacks != 0 {
		t.Fatalf("stats: DirectIO=%d ODirectFallbacks=%d, want 1, 0", st.DirectIO, st.ODirectFallbacks)
	}
	const blocks = 40
	for i := 0; i < blocks; i++ {
		id := s.Alloc()
		s.WriteBlock(id, []Entry{{Key: uint64(i), Val: ^uint64(i)}})
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	nslots, free, mapping := s.AllocState()
	sector := s.SectorSize()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with the recorded sector, as the superblock would.
	s2, err := OpenFileStoreIO(path, 4, 8, nil, IOOptions{Mode: IOModeODirect, Sector: sector})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.RestoreAllocState(nslots, free, mapping); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < blocks; i++ {
		got := s2.ReadBlock(BlockID(i), nil)
		if len(got) != 1 || got[0].Key != uint64(i) || got[0].Val != ^uint64(i) {
			t.Fatalf("block %d after reopen: got %v", i, got)
		}
	}
}

// TestODirectFallbackRecorded forces the O_DIRECT open to fail and
// verifies the fallback ladder: buffered syscalls, the sector-padded
// layout kept, and the fallback recorded in FileStats.
func TestODirectFallbackRecorded(t *testing.T) {
	forceNoDirect = true
	defer func() { forceNoDirect = false }()
	s, err := NewFileStoreIO(t.TempDir()+"/blocks", 4, 8, IOOptions{Mode: IOModeODirect})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.EffectiveIOMode(); got != IOModeBuffered {
		t.Fatalf("effective mode = %s, want buffered", got)
	}
	if st := s.Stats(); st.ODirectFallbacks != 1 || st.DirectIO != 0 {
		t.Fatalf("stats: ODirectFallbacks=%d DirectIO=%d, want 1, 0", st.ODirectFallbacks, st.DirectIO)
	}
	if s.SectorSize() == 0 {
		t.Fatal("fallback dropped the sector-padded layout")
	}
	for i := 0; i < 20; i++ {
		id := s.Alloc()
		s.WriteBlock(id, []Entry{{Key: uint64(i)}})
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if got := s.ReadBlock(BlockID(i), nil); len(got) != 1 || got[0].Key != uint64(i) {
			t.Fatalf("block %d: got %v", i, got)
		}
	}
}

// TestConfigureSubmissionUring exercises ConfigureSubmission under
// IOModeUring in whichever build variant is running: with the iouring
// tag and a supporting kernel the ring engages; otherwise the store
// records the fallback and lands on the pwrite pool. Data round-trips
// either way.
func TestConfigureSubmissionUring(t *testing.T) {
	s, err := NewTempFileStoreIO(4, 8, IOOptions{Mode: IOModeUring})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.ConfigureSubmission(IOModeUring, 2)
	st := s.Stats()
	switch {
	case s.uringOn:
		if !uringBuilt {
			t.Fatal("ring engaged without the iouring tag")
		}
		if s.EffectiveIOMode() != IOModeUring {
			t.Fatalf("effective mode = %s, want uring", s.EffectiveIOMode())
		}
	default:
		if st.UringFallbacks != 1 {
			t.Fatalf("UringFallbacks = %d, want 1", st.UringFallbacks)
		}
		if s.wb == nil {
			t.Fatal("fallback did not engage the pwrite pool")
		}
	}
	const blocks = 200
	for i := 0; i < blocks; i++ {
		id := s.Alloc()
		s.WriteBlock(id, []Entry{{Key: uint64(i), Val: uint64(i) << 8}})
		if i%33 == 0 {
			if err := s.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < blocks; i++ {
		got := s.ReadBlock(BlockID(i), nil)
		if len(got) != 1 || got[0].Key != uint64(i) || got[0].Val != uint64(i)<<8 {
			t.Fatalf("block %d: got %v", i, got)
		}
	}
	if s.uringOn {
		st = s.Stats()
		if st.UringSQEs == 0 || st.UringEnters == 0 {
			t.Fatalf("ring counters unmetered: SQEs=%d enters=%d", st.UringSQEs, st.UringEnters)
		}
		if st.UringSQEs < st.UringEnters {
			t.Fatalf("SQEs (%d) < enters (%d): batching accounting broken", st.UringSQEs, st.UringEnters)
		}
	}
}

// TestCrasherRefusesKernelBypass: a crash-injected store must stay on
// the synchronous buffered syscall path whatever mode asks for — the
// crash matrix counts write syscalls — while keeping the direct slot
// layout so the same files replay.
func TestCrasherRefusesKernelBypass(t *testing.T) {
	crasher := NewCrasher(CrashPlan{FailAfterWrites: 1 << 30})
	s, err := OpenFileStoreIO(t.TempDir()+"/blocks", 4, 8, crasher, IOOptions{Mode: IOModeUring})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.EffectiveIOMode(); got != IOModeBuffered {
		t.Fatalf("effective mode = %s, want buffered under crash injection", got)
	}
	s.ConfigureSubmission(IOModeUring, 4)
	if s.wb != nil {
		t.Fatal("crash-injected store accepted an async submission backend")
	}
	if st := s.Stats(); st.DirectIO != 0 || st.ODirectFallbacks != 0 {
		t.Fatalf("refusal should not count as a fallback: %+v", st)
	}
	if s.SectorSize() == 0 {
		t.Fatal("crash-injected store lost the direct slot layout")
	}
}

// TestAlignmentHelpers pins the allocator invariants the direct tier
// is built on.
func TestAlignmentHelpers(t *testing.T) {
	for _, align := range []int{512, 4096} {
		for _, n := range []int{1, 511, 512, 4097} {
			buf := alignedBytes(n, n, align)
			if len(buf) != n {
				t.Fatalf("alignedBytes(%d, %d): len %d", n, align, len(buf))
			}
			if uintptr(unsafe.Pointer(&buf[0]))%uintptr(align) != 0 {
				t.Fatalf("alignedBytes(%d, %d): base not aligned", n, align)
			}
		}
	}
	if got := alignUp(1, 512); got != 512 {
		t.Fatalf("alignUp(1, 512) = %d", got)
	}
	if got := alignUp(512, 512); got != 512 {
		t.Fatalf("alignUp(512, 512) = %d", got)
	}
	arena := alignedEntryArena(1000)
	if uintptr(unsafe.Pointer(&arena[0]))%4096 != 0 {
		t.Fatal("entry arena base not page-aligned")
	}
	if !ValidIOMode("") || !ValidIOMode(IOModeUring) || ValidIOMode("mmap") {
		t.Fatal("ValidIOMode misclassifies")
	}
}

// TestDirectStoreSoleCache verifies the kernel-bypass premise end to
// end on a supporting filesystem: with O_DIRECT active, re-reading an
// evicted block is a real device read, not a page-cache copy — the
// counters must show the pread, and the data must still be right.
func TestDirectStoreSoleCache(t *testing.T) {
	s, err := NewFileStoreIO(t.TempDir()+"/blocks", 4, 4, IOOptions{Mode: IOModeODirect})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.EffectiveIOMode() != IOModeODirect {
		t.Skipf("O_DIRECT unsupported here")
	}
	const blocks = 32 // 8x the pool: every revisit faults
	for i := 0; i < blocks; i++ {
		id := s.Alloc()
		s.WriteBlock(id, []Entry{{Key: uint64(i)}})
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	pre := s.Stats()
	for i := 0; i < blocks; i++ {
		if got := s.ReadBlock(BlockID(i), nil); len(got) != 1 || got[0].Key != uint64(i) {
			t.Fatalf("block %d: got %v", i, got)
		}
	}
	post := s.Stats()
	if post.ReadSyscalls == pre.ReadSyscalls {
		t.Fatal("expected real preads when sweeping past the pool capacity")
	}
}
