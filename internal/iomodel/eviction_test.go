package iomodel

import (
	"fmt"
	"testing"
)

// TestScanResistantEviction is the regression test for the 2Q/CLOCK-
// Pro-lite policy: a sequential scan over 4x the pool capacity,
// repeated for several passes, must not evict a concurrently
// re-referenced hot set. The hot set's hit rate (measured via
// FileStats around each hot sweep) must stay above a floor, the ghost
// list must have promoted at least one re-faulted hot block, and the
// scan itself must not have earned hot status (its re-touch interval
// exceeds the ghost window).
func TestScanResistantEviction(t *testing.T) {
	const (
		cacheCap = 64
		hotN     = cacheCap / 4
		scanN    = 4 * cacheCap
		passes   = 6
		interval = 48 // scan reads between hot sweeps
	)
	st, err := NewTempFileStore(4, cacheCap)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	alloc := func(n int) []BlockID {
		ids := make([]BlockID, n)
		for i := range ids {
			ids[i] = st.Alloc()
			st.WriteBlock(ids[i], []Entry{{Key: uint64(ids[i]), Val: 1}})
		}
		return ids
	}
	hot := alloc(hotN)
	scan := alloc(scanN)
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}

	readHot := func() (misses int64) {
		before := st.Stats().CacheMisses
		for _, id := range hot {
			st.ReadBlock(id, nil)
		}
		return st.Stats().CacheMisses - before
	}
	// Warmup pass: fault the hot set back in (the allocation of the
	// scan blocks evicted it) and let the ghost list learn it.
	readHot()
	for s, n := 0, 0; s < scanN; s++ {
		st.ReadBlock(scan[s], nil)
		if n++; n == interval {
			n = 0
			readHot()
		}
	}

	var hotReads, hotMisses int64
	for p := 0; p < passes; p++ {
		for s, n := 0, 0; s < scanN; s++ {
			st.ReadBlock(scan[s], nil)
			if n++; n == interval {
				n = 0
				hotReads += hotN
				hotMisses += readHot()
			}
		}
	}
	stats := st.Stats()
	hitRate := 1 - float64(hotMisses)/float64(hotReads)
	t.Logf("hot reads %d, misses %d (hit rate %.3f); GhostHits %d, Evictions %d",
		hotReads, hotMisses, hitRate, stats.GhostHits, stats.Evictions)
	if hitRate < 0.75 {
		t.Fatalf("scan evicted the hot set: hit rate %.3f < 0.75 over %d hot reads", hitRate, hotReads)
	}
	if stats.GhostHits == 0 {
		t.Fatal("no ghost promotions: the scan-resistance mechanism never engaged")
	}
	// The scan's own re-touch interval (4x capacity) exceeds the ghost
	// window (1x capacity), so the scan must not promote itself.
	if stats.GhostHits > int64(hotN*(passes+2)) {
		t.Fatalf("GhostHits = %d: the scan itself earned hot status", stats.GhostHits)
	}
	if stats.Evictions < int64(passes*scanN/2) {
		t.Fatalf("Evictions = %d: the scan did not actually stress the pool", stats.Evictions)
	}
}

// BenchmarkWriteback measures a flush barrier over fresh dirty blocks
// with synchronous vs pooled writeback submission.
func BenchmarkWriteback(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			const blocks = 2048
			st, err := NewTempFileStore(64, blocks+16)
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			st.SetWritebackWorkers(workers)
			ids := make([]BlockID, blocks)
			entries := make([]Entry, 32)
			for i := range ids {
				ids[i] = st.Alloc()
			}
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				for i, id := range ids {
					entries[0] = Entry{Key: uint64(i), Val: uint64(n)}
					st.WriteBlock(id, entries)
				}
				if err := st.Sync(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(blocks), "blocks/op")
		})
	}
}

// BenchmarkEvictionScan measures steady-state eviction traffic: a
// working set far larger than the pool read sequentially, with the
// scan-resistant sweep and write clustering on the miss path.
func BenchmarkEvictionScan(b *testing.B) {
	const cacheCap = 256
	const blocks = 4 * cacheCap
	st, err := NewTempFileStore(64, cacheCap)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	ids := make([]BlockID, blocks)
	for i := range ids {
		ids[i] = st.Alloc()
		st.WriteBlock(ids[i], []Entry{{Key: uint64(i), Val: 1}})
	}
	if err := st.Sync(); err != nil {
		b.Fatal(err)
	}
	var buf []Entry
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		buf = st.ReadBlock(ids[n%blocks], buf[:0])
	}
	_ = buf
}
