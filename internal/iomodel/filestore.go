package iomodel

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
)

// FileStore is a BlockStore persisting fixed-size blocks to a real file,
// fronted by a write-back buffer pool of configurable capacity. It is
// the backend that turns the simulation into a storage engine: the same
// table code that produces the paper's I/O counts runs unchanged against
// it, and wall-clock and syscall costs become measurable.
//
// On-disk frame layout: a frame is an 8-byte header (entry count uint32,
// next pointer stored as next+1 uint32, both little-endian) followed by
// B() entries of 16 bytes each (key, val). The +1 bias makes all-zero
// bytes — EOF short reads and sparse holes left by out-of-order first
// writes — decode as an empty block with a nil chain pointer, which is
// exactly the state of an allocated-but-never-written block.
//
// # Placement: direct vs durable
//
// A store built with NewFileStore truncates its file and places block
// id at byte offset id*slotBytes — a fresh scratch store, not a
// recovery mechanism. A store built with OpenFileStore runs in durable
// mode: the file is NOT truncated, and a logical→physical indirection
// table decouples the block IDs tables chain through from file
// placement. Durable flushes are copy-on-write: the first flush of a
// block in a checkpoint epoch goes to a fresh physical slot, so every
// slot referenced by the last completed checkpoint stays byte-identical
// on disk until the next checkpoint commits. A crash at any write
// therefore leaves the previous checkpoint fully intact — the property
// the recovery protocol in package extbuf is built on. The indirection
// table and allocator free lists are volatile; AllocState and
// RestoreAllocState move them in and out of checkpoints, and EndEpoch
// retires the superseded pre-checkpoint slots once a checkpoint commits.
//
// # Buffer pool
//
// The pool is a preallocated arena of cacheCap frames backed by one
// contiguous entry array: faulting a block in recycles a frame from the
// free list, so steady-state reads and writes allocate nothing. A cache
// hit costs no syscall; a miss reads the block with one pread. Eviction
// is CLOCK (second chance): each access sets the frame's reference bit,
// and the sweep hand clears bits until it finds a cold frame, writing it
// back first if dirty — no per-access list maintenance, unlike an LRU.
// Frames can be pinned (PinBlock/UnpinBlock, reference counted): a
// pinned frame is never evicted, so callers may hold its entries across
// further store operations without a copy. Whole-block writes populate
// a frame without reading the old contents.
//
// Dirty frames flushed at a Sync barrier are sorted by physical slot
// and written as runs of adjacent blocks in single large pwrites
// (bounded by maxRunBytes), so a checkpoint costs a handful of syscalls
// instead of one per block. Stats exposes the syscall, pool and
// coalescing counters so experiments can report real costs next to the
// model's counters.
//
// Write errors are sticky: the first failed pwrite (real, or injected
// by a Crasher) marks the store failed, further evictions quietly drop
// their frames — the bytes are lost exactly as in a crash — and Sync
// and Close report the failure instead of panicking, so a durable
// table's Flush barrier surfaces it to the caller as an un-acknowledged
// write.
//
// # Kernel-bypass tier
//
// Under the direct I/O modes (IOModeODirect, IOModeUring) the store
// bypasses the kernel page cache: the buffer pool above is the only
// cache between the tables and the device. Slots are padded from
// frameBytes to slotBytes (the next multiple of the filesystem's
// logical sector size) and every I/O buffer is sector-aligned, so all
// pread/pwrite offsets, lengths and addresses satisfy O_DIRECT's
// alignment rules. The fallback ladder is: io_uring submission →
// pwrite worker pool (tag off or kernel probe failed, UringFallbacks);
// O_DIRECT fd → buffered fd (filesystem refused the flag,
// ODirectFallbacks); and crash-injected stores always take the
// synchronous buffered syscall path — the crash harness counts write
// syscalls, so write order must stay deterministic — while keeping the
// mode's slot layout, so crash tests and production stores read the
// same files.
type FileStore struct {
	f          BlockFile
	osf        *os.File // underlying fd when known; io_uring needs it
	b          int
	frameBytes int64  // encoded frame: header + B() entries
	slotBytes  int64  // on-disk stride: frameBytes, sector-padded under direct layout
	sector     int64  // direct-layout alignment; 0 = buffered layout
	ioMode     string // configured mode (IOMode constants)
	direct     bool   // fd is open O_DIRECT
	uringOn    bool   // submissions ride an io_uring ring
	nslots     int    // allocated slots, including freed ones
	free       []BlockID
	cacheCap   int

	// Buffer pool: frames is the arena, arena the shared entry backing,
	// cache maps resident block IDs to frame indexes, freeFrames the
	// recycle list, hand the CLOCK sweep position.
	frames     []frame
	arena      []Entry
	cache      map[BlockID]int32
	freeFrames []int32
	hand       int
	pinned     int // frames with pins > 0 (gauge)

	// Most-recently-used memo: block accesses cluster heavily on the
	// block just touched (read → write-back → header), so remembering
	// one (id, frame) pair skips the cache map on the dominant path.
	// Self-invalidating: recycling sets the frame's id to NilBlock, so
	// a stale memo simply misses into the map.
	lastID  BlockID
	lastIdx int32

	scratch     []byte   // one-frame encode/decode buffer
	runBuf      []byte   // coalesced flush buffer, grown on demand
	dirtyList   []*frame // scratch list reused by FlushDirty
	clusterList []*frame // scratch list reused by eviction clustering
	stats       FileStats
	removeName  string // non-empty: unlink this path on Close (temp stores)
	closed      bool
	failed      error // sticky first write failure

	// Asynchronous writeback (nil = synchronous writes): the pwrite
	// worker pool or, under IOModeUring, the io_uring ring. wrote
	// tracks whether any bytes reached (or were submitted to) the file
	// since the last fsync, so a barrier with nothing new to harden
	// elides its fsync instead of queueing a no-op behind the device.
	wb         ioSubmitter
	wrote      bool
	hasCrasher bool // write order must stay deterministic: no async pool

	// Scan-resistant eviction (2Q/CLOCK-Pro-lite): a bounded ghost ring
	// remembers recently evicted block IDs; a block faulting back in
	// from the ghost list enters the pool "hot" and survives one extra
	// CLOCK lap (demotion before eviction). First-touch blocks — a
	// sequential scan's entire footprint — enter cold and are evicted
	// after a single lap, so a scan cannot displace the re-referenced
	// hot set.
	ghost    map[BlockID]struct{}
	ghostLog []BlockID // FIFO ring over ghost membership
	ghostPos int

	// Durable-mode placement state (nil mapping = direct mode).
	durable     bool
	mapping     []int64            // logical id -> physical slot; -1 = never written
	physHigh    int64              // physical slots ever placed (file extent, in frames)
	physFree    []int64            // reusable physical slots
	pendingFree []int64            // slots superseded this epoch; free after checkpoint
	epochSlots  map[int64]struct{} // physical slots written this epoch (safe to overwrite)
}

var _ BlockStore = (*FileStore)(nil)

type frame struct {
	id      BlockID
	entries []Entry // arena-backed; capacity is exactly B()
	next    BlockID
	dirty   bool
	ref     bool  // CLOCK reference bit
	hot     bool  // survives one extra CLOCK lap (demotion before eviction)
	wasHot  bool  // ghost-promoted this residency: re-references restore hot
	pins    int32 // > 0: never evict
}

// FileStats counts the real storage costs incurred by a FileStore.
type FileStats struct {
	ReadSyscalls  int64 // preads issued (cache misses that touched the file)
	WriteSyscalls int64 // pwrites issued (evictions and coalesced flush runs)
	CacheHits     int64 // block accesses served from the buffer pool
	CacheMisses   int64 // block accesses that had to fault a frame in
	BytesRead     int64
	BytesWritten  int64

	// Buffer-pool and coalescing counters.
	Evictions       int64 // frames recycled to make room for a faulting block
	DirtyWritebacks int64 // evicted frames that had to be written back first
	// FlushedFrames counts every dirty frame written back — at flush
	// barriers and through eviction write-clustering alike — and
	// FlushRuns the pwrites they were batched into, so
	// FlushedFrames/FlushRuns is the realized coalescing factor.
	FlushedFrames int64
	FlushRuns     int64
	Fsyncs        int64 // fsyncs of the block file
	// FsyncsElided counts barrier fsyncs skipped because nothing had
	// been written since the previous fsync — the one-fsync-per-fd-per-
	// barrier dedupe.
	FsyncsElided int64
	// GhostHits counts faults of blocks found on the eviction ghost
	// list: re-references the scan-resistant policy promoted to hot.
	GhostHits int64

	// Kernel-bypass tier. DirectIO is 1 while the block fd is open
	// O_DIRECT; ODirectFallbacks counts direct-mode opens that fell
	// back to buffered syscalls (filesystem refused the flag);
	// UringFallbacks counts uring-mode stores that fell back to the
	// pwrite pool (tag off or kernel probe failed). UringEnters and
	// UringSQEs meter the ring: SQEs per enter is the realized
	// submission batch size.
	DirectIO         int64
	ODirectFallbacks int64
	UringEnters      int64
	UringSQEs        int64
	UringFallbacks   int64
}

// DefaultCacheBlocks is the page-cache capacity used when none is
// given. At the default 64-item block size a frame is about 1 KiB, so
// the default cache is about half a MiB per store — small enough that
// every shard of a sharded engine affords its own, large enough that
// a shard-sized working set at default parameters stays resident and
// the syscall rate reflects the workload rather than cache thrash.
const DefaultCacheBlocks = 512

const blockHeaderBytes = 8
const entryBytes = 16

// maxRunBytes bounds one coalesced flush pwrite (and therefore the
// reusable run buffer): runs of adjacent dirty slots longer than this
// split into multiple syscalls.
const maxRunBytes = 1 << 20

// NewFileStore creates (or truncates) the file at path and returns a
// direct-placement store with blocks of capacity b entries and a page
// cache of cacheBlocks frames (DefaultCacheBlocks if cacheBlocks <= 0).
func NewFileStore(path string, b, cacheBlocks int) (*FileStore, error) {
	return NewFileStoreIO(path, b, cacheBlocks, IOOptions{})
}

// NewFileStoreIO is NewFileStore with an explicit I/O mode (see the
// IOMode constants). A direct mode that the filesystem refuses falls
// back to buffered syscalls, recorded in FileStats.ODirectFallbacks;
// the sector-padded layout is kept either way.
func NewFileStoreIO(path string, b, cacheBlocks int, io IOOptions) (*FileStore, error) {
	f, direct, err := openBlockFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, directLayout(io.Mode))
	if err != nil {
		return nil, fmt.Errorf("iomodel: open block store: %w", err)
	}
	s := newFileStoreOn(f, f, b, cacheBlocks, false, io, direct)
	if directLayout(io.Mode) && !direct {
		s.stats.ODirectFallbacks++
	}
	return s, nil
}

// OpenFileStore opens (creating if absent, never truncating) the file
// at path as a durable-mode store: copy-on-write placement behind a
// logical→physical indirection table, ready for checkpoint/recovery.
// A non-nil crasher interposes fault injection on every file write.
func OpenFileStore(path string, b, cacheBlocks int, crasher *Crasher) (*FileStore, error) {
	return OpenFileStoreIO(path, b, cacheBlocks, crasher, IOOptions{})
}

// OpenFileStoreIO is OpenFileStore with an explicit I/O mode. A
// crash-injected store refuses the kernel-bypass syscall paths (same
// rule as SetWritebackWorkers) but keeps the mode's slot layout, so
// the crash matrix replays deterministically against the same files a
// production store writes.
func OpenFileStoreIO(path string, b, cacheBlocks int, crasher *Crasher, io IOOptions) (*FileStore, error) {
	wantDirect := directLayout(io.Mode) && crasher == nil
	f, direct, err := openBlockFile(path, os.O_RDWR|os.O_CREATE, wantDirect)
	if err != nil {
		return nil, fmt.Errorf("iomodel: open block store: %w", err)
	}
	var bf BlockFile = f
	if crasher != nil {
		bf = crasher.WrapFile(bf)
	}
	s := newFileStoreOn(bf, f, b, cacheBlocks, true, io, direct)
	s.hasCrasher = crasher != nil
	if wantDirect && !direct {
		s.stats.ODirectFallbacks++
	}
	return s, nil
}

func newFileStoreOn(f BlockFile, osf *os.File, b, cacheBlocks int, durable bool, io IOOptions, direct bool) *FileStore {
	if b < 1 {
		panic("iomodel: block size must be >= 1")
	}
	if cacheBlocks <= 0 {
		cacheBlocks = DefaultCacheBlocks
	}
	mode := io.Mode
	if mode == "" {
		mode = IOModeBuffered
	}
	fb := int64(blockHeaderBytes + b*entryBytes)
	slot := fb
	var sector int64
	if directLayout(mode) {
		sector = int64(io.Sector)
		if sector <= 0 && osf != nil {
			sector = int64(fsSectorSize(osf.Name()))
		}
		if sector <= 0 {
			sector = 4096
		}
		slot = alignUp(fb, sector)
	}
	s := &FileStore{
		f:          f,
		osf:        osf,
		b:          b,
		frameBytes: fb,
		slotBytes:  slot,
		sector:     sector,
		ioMode:     mode,
		direct:     direct,
		cacheCap:   cacheBlocks,
		frames:     make([]frame, cacheBlocks),
		arena:      alignedEntryArena(cacheBlocks * b),
		cache:      make(map[BlockID]int32, cacheBlocks),
		freeFrames: make([]int32, cacheBlocks),
		scratch:    alignedBytes(int(slot), int(slot), int(sector)),
		durable:    durable,
	}
	if direct {
		s.stats.DirectIO = 1
	}
	s.lastID = NilBlock
	for i := range s.frames {
		fr := &s.frames[i]
		fr.id = NilBlock
		fr.entries = s.arena[i*b : i*b : (i+1)*b]
		// Hand frames out low-index-first: the free list is popped from
		// the back.
		s.freeFrames[cacheBlocks-1-i] = int32(i)
	}
	if durable {
		s.epochSlots = make(map[int64]struct{})
	}
	// The ghost list remembers one cache-capacity's worth of eviction
	// history: a block re-faulted within that window is hot.
	s.ghost = make(map[BlockID]struct{}, cacheBlocks)
	s.ghostLog = make([]BlockID, cacheBlocks)
	for i := range s.ghostLog {
		s.ghostLog[i] = NilBlock
	}
	return s
}

// SetWritebackWorkers switches the store's flush-barrier and eviction
// writeback from synchronous pwrites to a pool of n concurrent
// submission workers (see writeback). n <= 1 keeps writes synchronous.
// The call is ignored on a crash-injected store — the crash harness
// kills the process at the Nth write syscall, so write order must stay
// deterministic — and must be made before any write reaches the store.
func (s *FileStore) SetWritebackWorkers(n int) {
	if n <= 1 || s.hasCrasher || s.wb != nil {
		return
	}
	runBytes := int(maxRunBytes)
	if sb := int(s.slotBytes); sb > runBytes {
		runBytes = sb
	}
	s.wb = newWriteback(s.f, n, runBytes, int(s.sector))
}

// ConfigureSubmission selects the store's asynchronous write backend
// for the given I/O mode: an io_uring ring under IOModeUring (build
// tag "iouring"; falls back to the pwrite pool, counted in
// FileStats.UringFallbacks, when the tag is off or the kernel probe
// fails), otherwise SetWritebackWorkers' pwrite pool. Crash-injected
// stores stay synchronous either way. Must be called before any write
// reaches the store.
func (s *FileStore) ConfigureSubmission(mode string, workers int) {
	if mode == IOModeUring && !s.hasCrasher && s.wb == nil {
		if ur, err := newURing(s, uringDepth); err == nil {
			s.wb = ur
			s.uringOn = true
			return
		}
		s.stats.UringFallbacks++
	}
	s.SetWritebackWorkers(workers)
}

// NewTempFileStore is NewFileStore on a fresh temporary file that is
// removed when the store is closed.
func NewTempFileStore(b, cacheBlocks int) (*FileStore, error) {
	return NewTempFileStoreIO(b, cacheBlocks, IOOptions{})
}

// NewTempFileStoreIO is NewFileStoreIO on a fresh temporary file that
// is removed when the store is closed.
func NewTempFileStoreIO(b, cacheBlocks int, io IOOptions) (*FileStore, error) {
	f, err := os.CreateTemp("", "extbuf-*.blocks")
	if err != nil {
		return nil, fmt.Errorf("iomodel: temp block store: %w", err)
	}
	name := f.Name()
	f.Close()
	s, err := NewFileStoreIO(name, b, cacheBlocks, io)
	if err != nil {
		os.Remove(name)
		return nil, err
	}
	s.removeName = name
	return s, nil
}

// Path returns the backing file's name.
func (s *FileStore) Path() string { return s.f.Name() }

// Stats returns a snapshot of the real-cost counters.
func (s *FileStore) Stats() FileStats { return s.stats }

// B returns the block capacity in entries.
func (s *FileStore) B() int { return s.b }

// Durable reports whether the store runs in durable (copy-on-write)
// mode.
func (s *FileStore) Durable() bool { return s.durable }

// IOMode returns the store's configured I/O mode, which fixes the slot
// layout (see the IOMode constants).
func (s *FileStore) IOMode() string { return s.ioMode }

// EffectiveIOMode returns the syscall path actually in use after the
// fallback ladder: "uring" when submissions ride an io_uring ring,
// else "odirect" when the fd is open O_DIRECT, else "buffered".
func (s *FileStore) EffectiveIOMode() string {
	if s.uringOn {
		return IOModeUring
	}
	if s.direct {
		return IOModeODirect
	}
	return IOModeBuffered
}

// SectorSize returns the direct layout's alignment in bytes, 0 under
// the buffered layout.
func (s *FileStore) SectorSize() int { return int(s.sector) }

// Failed returns the sticky first write failure, or nil. A failed store
// has lost writes; its in-memory cache no longer reflects the file.
func (s *FileStore) Failed() error { return s.failed }

// PinnedFrames returns the number of frames currently pinned — zero
// whenever every PinBlock has been balanced by its UnpinBlock.
func (s *FileStore) PinnedFrames() int { return s.pinned }

// Alloc reserves a fresh empty block and returns its ID.
func (s *FileStore) Alloc() BlockID {
	if n := len(s.free); n > 0 {
		id := s.free[n-1]
		s.free = s.free[:n-1]
		// The file may still hold the freed block's stale bytes; install
		// an empty dirty frame so readers see a fresh block.
		fr := s.frameForWrite(id, false)
		fr.entries = fr.entries[:0]
		fr.next = NilBlock
		return id
	}
	id := BlockID(s.nslots)
	s.nslots++
	if s.durable {
		s.mapping = append(s.mapping, -1)
	}
	// Nothing is written yet: a read of a never-written slot hits EOF
	// (direct mode) or an unmapped slot (durable mode) and decodes as an
	// empty block, so allocation alone costs no syscall.
	return id
}

// Free releases a block back to the allocator, discarding any cached
// (even dirty) frame: freed contents need never reach the file. In
// durable mode the block's physical slot is retired — after the next
// checkpoint if the last checkpoint references it, immediately
// otherwise. Freeing a pinned block panics (the pinned slice would
// alias a recycled frame).
func (s *FileStore) Free(id BlockID) {
	s.checkID(id)
	if idx, ok := s.cache[id]; ok {
		fr := &s.frames[idx]
		if fr.pins > 0 {
			panic(fmt.Sprintf("iomodel: freeing pinned block %d", id))
		}
		s.recycle(idx)
	}
	if s.durable {
		s.retirePhys(s.mapping[id])
		s.mapping[id] = -1
	}
	// Forget eviction history: the ID's next use is a fresh block, not
	// a re-reference.
	delete(s.ghost, id)
	s.free = append(s.free, id)
}

// recycle detaches frame idx from the cache and returns it to the free
// list.
func (s *FileStore) recycle(idx int32) {
	fr := &s.frames[idx]
	delete(s.cache, fr.id)
	fr.id = NilBlock
	fr.dirty = false
	fr.ref = false
	fr.hot = false
	fr.wasHot = false
	s.freeFrames = append(s.freeFrames, idx)
}

// retirePhys returns physical slot phys to the allocator: to the free
// list if it was first written this epoch (no checkpoint references
// it), to the pending list to be freed when the next checkpoint
// commits otherwise.
func (s *FileStore) retirePhys(phys int64) {
	if phys < 0 {
		return
	}
	if _, thisEpoch := s.epochSlots[phys]; thisEpoch {
		delete(s.epochSlots, phys)
		s.physFree = append(s.physFree, phys)
	} else {
		s.pendingFree = append(s.pendingFree, phys)
	}
}

// allocPhys reserves a physical slot for a copy-on-write flush.
func (s *FileStore) allocPhys() int64 {
	if n := len(s.physFree); n > 0 {
		p := s.physFree[n-1]
		s.physFree = s.physFree[:n-1]
		return p
	}
	p := s.physHigh
	s.physHigh++
	return p
}

// physFor returns the file slot holding block id, or -1 if the block
// has never been flushed (durable mode only; direct mode is identity).
func (s *FileStore) physFor(id BlockID) int64 {
	if !s.durable {
		return int64(id)
	}
	return s.mapping[id]
}

// ReadBlock appends the entries of block id to buf and returns it.
func (s *FileStore) ReadBlock(id BlockID, buf []Entry) []Entry {
	return append(buf, s.frameFor(id).entries...)
}

// WriteBlock replaces the contents of block id. The header's next
// pointer survives the overwrite, matching MemStore: only SetNext,
// ClearBlock and allocator reuse may change it.
func (s *FileStore) WriteBlock(id BlockID, entries []Entry) {
	fr := s.frameForWrite(id, true)
	fr.entries = append(fr.entries[:0], entries...)
}

// ClearBlock empties block id and resets its next pointer.
func (s *FileStore) ClearBlock(id BlockID) {
	fr := s.frameForWrite(id, false)
	fr.entries = fr.entries[:0]
	fr.next = NilBlock
}

// PeekBlock returns the cached contents of block id without copying. The
// slice is only valid until the next store operation.
func (s *FileStore) PeekBlock(id BlockID) []Entry { return s.frameFor(id).entries }

// PinBlock faults block id in (a read: hit/miss and pread accounting
// apply) and returns its entries without copying, pinning the frame
// against eviction until the matching UnpinBlock.
func (s *FileStore) PinBlock(id BlockID) []Entry {
	fr := s.frameFor(id)
	if fr.pins == 0 {
		s.pinned++
	}
	fr.pins++
	return fr.entries
}

// UnpinBlock releases one pin of block id, panicking on underflow. The
// frame is necessarily still resident — that is what the pin
// guaranteed.
func (s *FileStore) UnpinBlock(id BlockID) {
	s.checkID(id)
	idx, ok := s.cache[id]
	if !ok || s.frames[idx].pins == 0 {
		panic(fmt.Sprintf("iomodel: unpin of unpinned block %d", id))
	}
	fr := &s.frames[idx]
	fr.pins--
	if fr.pins == 0 {
		s.pinned--
	}
}

// Next returns the overflow-chain pointer of block id. Headers live with
// their block, so an uncached header walk faults the block in — a real
// read the simulated store performs for free.
func (s *FileStore) Next(id BlockID) BlockID { return s.frameFor(id).next }

// SetNext updates the overflow-chain pointer of block id.
func (s *FileStore) SetNext(id, next BlockID) {
	fr := s.frameFor(id)
	fr.next = next
	fr.dirty = true
}

// NumBlocks returns the number of allocated (live) blocks.
func (s *FileStore) NumBlocks() int { return s.nslots - len(s.free) }

// FlushDirty writes every dirty frame to the file without fsyncing,
// coalescing adjacent physical slots into single large pwrites. Copy-
// on-write slot assignment happens in block-ID order — deterministic,
// so the crash-injection harness ("die at the Nth write") can replay a
// failure — and the writes are then issued in physical-slot order so
// runs of adjacent slots (the common case: fresh slots are allocated
// sequentially) become one syscall each. A failed store reports its
// sticky failure without issuing further writes.
func (s *FileStore) FlushDirty() error {
	if s.failed != nil {
		return s.failed
	}
	dirty := s.dirtyList[:0]
	for i := range s.frames {
		fr := &s.frames[i]
		if fr.id != NilBlock && fr.dirty {
			dirty = append(dirty, fr)
		}
	}
	err := s.writeRuns(dirty)
	s.dirtyList = dirty[:0] // retain backing array for reuse
	return err
}

// writeRuns flushes the given dirty frames: copy-on-write slots are
// assigned in block-ID order (matching the allocation sequence a
// per-block flush loop would produce, deterministically), then the
// writes are issued in physical-slot order with runs of adjacent slots
// coalesced into single pwrites.
func (s *FileStore) writeRuns(dirty []*frame) error {
	if len(dirty) == 0 {
		return nil
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].id < dirty[j].id })
	if s.durable {
		for _, fr := range dirty {
			s.assignSlot(fr)
		}
	}
	sort.Slice(dirty, func(i, j int) bool { return s.physFor(dirty[i].id) < s.physFor(dirty[j].id) })
	maxRun := int(maxRunBytes / s.slotBytes)
	if maxRun < 1 {
		maxRun = 1
	}
	for start := 0; start < len(dirty); {
		end := start + 1
		for end < len(dirty) && end-start < maxRun &&
			s.physFor(dirty[end].id) == s.physFor(dirty[end-1].id)+1 {
			end++
		}
		if s.wb != nil {
			s.submitRun(dirty[start:end])
		} else if err := s.flushRun(dirty[start:end]); err != nil {
			return err
		}
		start = end
	}
	return nil
}

// submitRun hands a run of frames occupying adjacent physical slots to
// the writeback pool: the frames are encoded here, on the store's
// goroutine, into a pool-owned buffer, then the pwrite is issued by a
// worker. The frames are clean the moment the snapshot is taken — later
// mutations re-dirty them and flush again — and write errors surface at
// the next drain barrier (Fsync/Close). Counters are charged at submit,
// so Stats reads stay deterministic at barriers.
func (s *FileStore) submitRun(run []*frame) {
	n := len(run) * int(s.slotBytes)
	buf := s.wb.getBuf(n)
	for i, fr := range run {
		s.encodeFrame(fr, buf[i*int(s.slotBytes):(i+1)*int(s.slotBytes)])
		fr.dirty = false
	}
	first := s.physFor(run[0].id)
	s.stats.WriteSyscalls++
	s.stats.FlushRuns++
	s.stats.FlushedFrames += int64(len(run))
	s.stats.BytesWritten += int64(n)
	s.wrote = true
	s.wb.submit(wbJob{
		buf:   buf,
		off:   first * s.slotBytes,
		first: first,
		n:     len(run),
		id0:   run[0].id,
		id1:   run[len(run)-1].id,
	})
}

// flushRun writes a run of frames occupying adjacent physical slots
// with one pwrite and clears their dirty bits.
func (s *FileStore) flushRun(run []*frame) error {
	n := len(run) * int(s.slotBytes)
	if cap(s.runBuf) < n {
		s.runBuf = alignedBytes(n, n, int(s.sector))
	}
	buf := s.runBuf[:n]
	for i, fr := range run {
		s.encodeFrame(fr, buf[i*int(s.slotBytes):(i+1)*int(s.slotBytes)])
	}
	off := s.physFor(run[0].id) * s.slotBytes
	wn, err := s.f.WriteAt(buf, off)
	s.stats.WriteSyscalls++
	s.stats.FlushRuns++
	s.stats.FlushedFrames += int64(len(run))
	s.stats.BytesWritten += int64(wn)
	s.wrote = true
	if err != nil {
		err = fmt.Errorf("iomodel: write blocks %d..%d: %w", run[0].id, run[len(run)-1].id, err)
		if s.failed == nil {
			s.failed = err
		}
		return err
	}
	for _, fr := range run {
		fr.dirty = false
	}
	return nil
}

// Fsync makes previously written frames durable with one fsync of the
// block file. It is the drain barrier for asynchronous writeback: every
// submitted write completes (and joins its error) before the fsync is
// issued. A barrier with nothing written since the last fsync elides
// the syscall — the one-fsync-per-fd-per-barrier dedupe — and counts
// the elision in FsyncsElided.
func (s *FileStore) Fsync() error {
	if s.wb != nil {
		if err := s.wb.drain(); err != nil && s.failed == nil {
			s.failed = err
		}
	}
	if s.failed != nil {
		return s.failed
	}
	if !s.wrote {
		s.stats.FsyncsElided++
		return nil
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("iomodel: sync block store: %w", err)
	}
	s.stats.Fsyncs++
	s.wrote = false
	return nil
}

// Sync flushes every dirty frame (coalesced; see FlushDirty) and fsyncs
// the file.
func (s *FileStore) Sync() error {
	if err := s.FlushDirty(); err != nil {
		return err
	}
	return s.Fsync()
}

// AllocState snapshots the allocator and placement state for a
// checkpoint: logical slot count, logical free list, and (durable mode)
// the logical→physical mapping. Call after Sync so the mapping reflects
// every flushed frame.
func (s *FileStore) AllocState() (nslots int, free []BlockID, mapping []int64) {
	free = append([]BlockID(nil), s.free...)
	if s.durable {
		mapping = append([]int64(nil), s.mapping...)
	}
	return s.nslots, free, mapping
}

// RestoreAllocState installs a checkpoint's allocator and placement
// state into a freshly opened durable store: the physical free list is
// re-derived as every slot below the high-water mark that the mapping
// does not reference. The cache must be empty (recovery runs before any
// block access).
func (s *FileStore) RestoreAllocState(nslots int, free []BlockID, mapping []int64) error {
	if !s.durable {
		return fmt.Errorf("iomodel: RestoreAllocState on a direct-mode store")
	}
	if len(mapping) != nslots {
		return fmt.Errorf("iomodel: mapping covers %d slots, allocator has %d", len(mapping), nslots)
	}
	s.nslots = nslots
	s.free = append(s.free[:0], free...)
	s.mapping = append(s.mapping[:0], mapping...)
	s.physHigh = 0
	used := make(map[int64]struct{}, len(mapping))
	for _, p := range mapping {
		if p < 0 {
			continue
		}
		used[p] = struct{}{}
		if p >= s.physHigh {
			s.physHigh = p + 1
		}
	}
	s.physFree = s.physFree[:0]
	for p := int64(0); p < s.physHigh; p++ {
		if _, ok := used[p]; !ok {
			s.physFree = append(s.physFree, p)
		}
	}
	// Reuse low slots first: keeps the file extent tight after recovery.
	sort.Slice(s.physFree, func(i, j int) bool { return s.physFree[i] > s.physFree[j] })
	s.pendingFree = s.pendingFree[:0]
	clear(s.epochSlots)
	return nil
}

// EndEpoch commits the copy-on-write epoch after a checkpoint has been
// made durable: physical slots superseded during the epoch become
// reusable, and subsequent flushes start a fresh epoch.
func (s *FileStore) EndEpoch() {
	s.physFree = append(s.physFree, s.pendingFree...)
	s.pendingFree = s.pendingFree[:0]
	clear(s.epochSlots)
}

// Close flushes and closes the backing file, removing it if the store
// was created by NewTempFileStore.
func (s *FileStore) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.Sync()
	if s.wb != nil {
		if werr := s.wb.shutdown(); werr != nil && err == nil {
			err = werr
		}
		s.wb = nil
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	if s.removeName != "" {
		if rerr := os.Remove(s.removeName); err == nil {
			err = rerr
		}
	}
	return err
}

// frameFor returns the pool frame of block id, faulting it in from the
// file on a miss.
func (s *FileStore) frameFor(id BlockID) *frame {
	s.checkID(id)
	if id == s.lastID {
		if fr := &s.frames[s.lastIdx]; fr.id == id {
			s.stats.CacheHits++
			fr.ref = true
			fr.hot = fr.wasHot
			return fr
		}
	}
	if idx, ok := s.cache[id]; ok {
		fr := &s.frames[idx]
		s.stats.CacheHits++
		fr.ref = true
		fr.hot = fr.wasHot
		s.lastID, s.lastIdx = id, idx
		return fr
	}
	s.stats.CacheMisses++
	fr := s.install(id)
	s.load(fr)
	return fr
}

// frameForWrite returns a frame for a whole-block overwrite of id: on a
// miss the old entries are not read, since they are about to be
// replaced. With preserveNext the on-disk header is still faulted in
// (one 8-byte pread) so the overflow-chain pointer survives; callers
// that reset the header (ClearBlock, allocator reuse) skip even that.
// The frame is marked dirty.
func (s *FileStore) frameForWrite(id BlockID, preserveNext bool) *frame {
	s.checkID(id)
	if id == s.lastID {
		if fr := &s.frames[s.lastIdx]; fr.id == id {
			s.stats.CacheHits++
			fr.ref = true
			fr.hot = fr.wasHot
			fr.dirty = true
			return fr
		}
	}
	var fr *frame
	if idx, ok := s.cache[id]; ok {
		fr = &s.frames[idx]
		s.stats.CacheHits++
		fr.ref = true
		fr.hot = fr.wasHot
		s.lastID, s.lastIdx = id, idx
	} else {
		s.stats.CacheMisses++
		fr = s.install(id)
		if preserveNext {
			s.loadHeader(fr)
		}
	}
	fr.dirty = true
	return fr
}

// install obtains a frame for id — from the free list, or by evicting —
// and inserts it into the cache empty and referenced. Eviction of a
// dirty frame on a failed store drops the frame: the write is lost,
// exactly as in the crash the failure models, and the loss is reported
// by Sync/Close.
func (s *FileStore) install(id BlockID) *frame {
	var idx int32
	if n := len(s.freeFrames); n > 0 {
		idx = s.freeFrames[n-1]
		s.freeFrames = s.freeFrames[:n-1]
	} else {
		idx = s.evict()
	}
	fr := &s.frames[idx]
	fr.id = id
	fr.entries = fr.entries[:0]
	fr.next = NilBlock
	fr.dirty = false
	fr.ref = true
	// Scan resistance: a first-touch block enters cold (one CLOCK lap
	// to live); a block returning within the ghost window proved reuse
	// and enters hot.
	fr.hot = false
	fr.wasHot = false
	if _, returning := s.ghost[id]; returning {
		delete(s.ghost, id)
		fr.hot = true
		fr.wasHot = true
		s.stats.GhostHits++
	}
	s.cache[id] = idx
	s.lastID, s.lastIdx = id, idx
	return fr
}

// evict runs the scan-resistant CLOCK sweep: skip pinned frames, give
// referenced frames a second chance, demote unreferenced hot frames to
// cold (their extra lap), and take the first cold unreferenced frame
// (writing it back if dirty). The evicted ID is recorded on the ghost
// list so a prompt re-fault earns hot status. With every frame pinned
// there is nothing to evict — that is a pool misconfiguration (capacity
// below the pin working set) and panics.
func (s *FileStore) evict() int32 {
	if s.pinned >= s.cacheCap {
		panic("iomodel: buffer pool exhausted: every frame is pinned")
	}
	// Worst case (all frames hot and referenced) a frame needs three
	// visits before eviction: ref clear, demotion, eviction.
	for steps := 0; steps <= 4*len(s.frames); steps++ {
		idx := int32(s.hand)
		fr := &s.frames[idx]
		s.hand++
		if s.hand == len(s.frames) {
			s.hand = 0
		}
		if fr.pins > 0 {
			continue
		}
		if fr.ref {
			fr.ref = false
			continue
		}
		if fr.hot {
			fr.hot = false
			continue
		}
		s.stats.Evictions++
		if fr.dirty {
			s.stats.DirtyWritebacks++
			if s.failed == nil {
				if err := s.flushCluster(fr); err != nil && s.failed == nil {
					s.failed = err
				}
			}
		}
		s.ghostAdd(fr.id)
		delete(s.cache, fr.id)
		fr.id = NilBlock
		fr.dirty = false
		fr.wasHot = false
		return idx
	}
	panic("iomodel: CLOCK sweep found no evictable frame")
}

// ghostAdd records an evicted block ID on the bounded ghost ring,
// displacing the oldest entry.
func (s *FileStore) ghostAdd(id BlockID) {
	if _, present := s.ghost[id]; present {
		return
	}
	if old := s.ghostLog[s.ghostPos]; old != NilBlock {
		delete(s.ghost, old)
	}
	s.ghostLog[s.ghostPos] = id
	s.ghostPos++
	if s.ghostPos == len(s.ghostLog) {
		s.ghostPos = 0
	}
	s.ghost[id] = struct{}{}
}

// maxClusterFrames bounds the write cluster gathered around a dirty
// eviction victim.
const maxClusterFrames = 128

// flushCluster writes the eviction victim back together with the
// contiguous run of dirty resident blocks around its block ID — write
// clustering. Sequential producers (the buffered table's merges, bulk
// loads) dirty long runs of consecutive blocks; flushing the whole run
// in one coalesced pwrite when its first frame is evicted turns the
// steady-state eviction stream from one syscall per block into one per
// run. The neighbors stay resident (now clean); only the victim is
// recycled by the caller.
func (s *FileStore) flushCluster(victim *frame) error {
	cluster := s.clusterList[:0]
	cluster = append(cluster, victim)
	for id := victim.id - 1; id >= 0 && len(cluster) < maxClusterFrames; id-- {
		idx, ok := s.cache[id]
		if !ok || !s.frames[idx].dirty {
			break
		}
		cluster = append(cluster, &s.frames[idx])
	}
	for id := victim.id + 1; int(id) < s.nslots && len(cluster) < maxClusterFrames; id++ {
		idx, ok := s.cache[id]
		if !ok || !s.frames[idx].dirty {
			break
		}
		cluster = append(cluster, &s.frames[idx])
	}
	var err error
	if len(cluster) == 1 && s.wb == nil {
		err = s.flushFrame(victim)
	} else {
		err = s.writeRuns(cluster)
	}
	s.clusterList = cluster[:0]
	return err
}

// loadHeader fills only fr's header (the next pointer) from the file
// with one small pread — 8 bytes buffered, one sector under O_DIRECT
// (the minimum aligned read) — for whole-block overwrites that must
// not lose the chain pointer. A slot past EOF — or never flushed in
// durable mode — decodes as a nil pointer.
func (s *FileStore) loadHeader(fr *frame) {
	phys := s.physFor(fr.id)
	fr.next = NilBlock
	if phys < 0 {
		return
	}
	if s.wb != nil {
		s.wb.waitSlot(phys)
	}
	rd := int64(blockHeaderBytes)
	if s.direct {
		rd = s.sector
	}
	n, err := s.f.ReadAt(s.scratch[:rd], phys*s.slotBytes)
	if err != nil && err != io.EOF {
		panic(fmt.Errorf("iomodel: read block %d header: %w", fr.id, err))
	}
	s.stats.ReadSyscalls++
	s.stats.BytesRead += int64(n)
	if n >= blockHeaderBytes {
		fr.next = decodeNext(s.scratch[4:8])
	}
}

// load fills fr from the file with one pread. A slot past EOF (or never
// flushed in durable mode) decodes as an empty block.
func (s *FileStore) load(fr *frame) {
	fr.entries = fr.entries[:0]
	fr.next = NilBlock
	fr.dirty = false
	phys := s.physFor(fr.id)
	if phys < 0 {
		return
	}
	if s.wb != nil {
		s.wb.waitSlot(phys)
	}
	n, err := s.f.ReadAt(s.scratch, phys*s.slotBytes)
	if err != nil && err != io.EOF {
		panic(fmt.Errorf("iomodel: read block %d: %w", fr.id, err))
	}
	s.stats.ReadSyscalls++
	s.stats.BytesRead += int64(n)
	if n < blockHeaderBytes {
		return
	}
	count := int(binary.LittleEndian.Uint32(s.scratch[0:4]))
	fr.next = decodeNext(s.scratch[4:8])
	if count > s.b || blockHeaderBytes+count*entryBytes > n {
		if s.failed != nil {
			// The bytes were torn by the failure the store already
			// carries. A really-crashed process would never read them;
			// serve the block as empty so the doomed session degrades
			// instead of panicking. Recovery never reads such a slot:
			// copy-on-write keeps torn epoch writes out of every slot
			// the last checkpoint references.
			fr.entries = fr.entries[:0]
			fr.next = NilBlock
			return
		}
		panic(fmt.Sprintf("iomodel: corrupt block %d: count %d exceeds capacity/extent", fr.id, count))
	}
	for i := 0; i < count; i++ {
		off := blockHeaderBytes + i*entryBytes
		fr.entries = append(fr.entries, Entry{
			Key: binary.LittleEndian.Uint64(s.scratch[off : off+8]),
			Val: binary.LittleEndian.Uint64(s.scratch[off+8 : off+16]),
		})
	}
}

// decodeNext reads the +1-biased chain pointer; zero bytes (holes, EOF)
// are NilBlock.
func decodeNext(b []byte) BlockID {
	return BlockID(int32(binary.LittleEndian.Uint32(b))) - 1
}

// assignSlot gives fr a physical slot for a copy-on-write flush: the
// first flush of a block within an epoch goes to a fresh slot,
// preserving the last checkpoint's image of the block. Durable mode
// only.
func (s *FileStore) assignSlot(fr *frame) {
	phys := s.mapping[fr.id]
	if _, thisEpoch := s.epochSlots[phys]; phys < 0 || !thisEpoch {
		s.retirePhys(phys)
		phys = s.allocPhys()
		s.epochSlots[phys] = struct{}{}
		s.mapping[fr.id] = phys
	}
}

// encodeFrame serializes fr into buf, which must be slotBytes long.
// The unused tail — including the direct layout's sector padding — is
// zeroed so stale bytes never resurface as data.
func (s *FileStore) encodeFrame(fr *frame, buf []byte) {
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(fr.entries)))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(int32(fr.next+1)))
	for i, e := range fr.entries {
		off := blockHeaderBytes + i*entryBytes
		binary.LittleEndian.PutUint64(buf[off:off+8], e.Key)
		binary.LittleEndian.PutUint64(buf[off+8:off+16], e.Val)
	}
	clear(buf[blockHeaderBytes+len(fr.entries)*entryBytes:])
}

// flushFrame writes one frame with one pwrite and clears its dirty bit:
// the eviction write-back path. (Flush barriers go through FlushDirty,
// which coalesces.) In durable mode the write is copy-on-write.
func (s *FileStore) flushFrame(fr *frame) error {
	if s.failed != nil {
		return s.failed
	}
	if s.durable {
		s.assignSlot(fr)
	}
	s.encodeFrame(fr, s.scratch)
	n, err := s.f.WriteAt(s.scratch, s.physFor(fr.id)*s.slotBytes)
	s.stats.WriteSyscalls++
	s.stats.FlushRuns++
	s.stats.FlushedFrames++
	s.stats.BytesWritten += int64(n)
	s.wrote = true
	if err != nil {
		err = fmt.Errorf("iomodel: write block %d: %w", fr.id, err)
		if s.failed == nil {
			s.failed = err
		}
		return err
	}
	fr.dirty = false
	return nil
}

func (s *FileStore) checkID(id BlockID) {
	if id < 0 || int(id) >= s.nslots {
		panic(fmt.Sprintf("iomodel: invalid block id %d", id))
	}
}
