package iomodel

import (
	"os"
	"unsafe"
)

// I/O modes for a FileStore. The mode picks both the on-disk slot
// layout and the syscall path:
//
//   - IOModeBuffered: slots are packed at frameBytes stride and every
//     read/write goes through the kernel page cache — the pre-PR 9
//     behavior, and the only mode available to crash-injected stores.
//   - IOModeODirect: the block file is opened O_DIRECT, making the
//     store's own buffer pool the only cache between the tables and the
//     device. Slots are padded to the filesystem's logical sector size
//     so every pread/pwrite offset and length is sector-aligned, and
//     all I/O buffers are allocated sector-aligned. Where the
//     filesystem refuses O_DIRECT the store falls back to buffered
//     syscalls — recorded in FileStats.ODirectFallbacks — but keeps the
//     sector-padded layout, so the file stays readable either way.
//   - IOModeUring: IOModeODirect plus an io_uring submission queue in
//     place of the pwrite worker pool (build tag "iouring", Linux
//     only). When the tag is off or the kernel probe fails the store
//     falls back to the pwrite pool, recorded in
//     FileStats.UringFallbacks.
//
// The two direct modes share one layout, so a store written under
// odirect reopens under uring and vice versa; buffered and direct
// layouts are mutually incompatible (package extbuf's superblock
// records the layout and rejects the mismatch).
const (
	IOModeBuffered = "buffered"
	IOModeODirect  = "odirect"
	IOModeUring    = "uring"
)

// IOOptions selects a FileStore's I/O mode and layout alignment.
type IOOptions struct {
	// Mode is one of the IOMode constants; "" means IOModeBuffered.
	Mode string
	// Sector overrides the layout alignment for the direct modes —
	// superblock-recorded stores reopen with the stride they were
	// written with. 0 probes the backing filesystem.
	Sector int
}

// ValidIOMode reports whether mode names a known I/O mode ("" counts,
// meaning buffered).
func ValidIOMode(mode string) bool {
	switch mode {
	case "", IOModeBuffered, IOModeODirect, IOModeUring:
		return true
	}
	return false
}

// directLayout reports whether mode uses the sector-padded slot layout.
func directLayout(mode string) bool {
	return mode == IOModeODirect || mode == IOModeUring
}

// DirectLayout reports whether mode uses the sector-padded direct
// layout. Exported for package wal, which shares the alignment rules.
func DirectLayout(mode string) bool { return directLayout(mode) }

// OpenDirectFile opens path with flags, attempting O_DIRECT when
// wantDirect and falling back to a buffered fd where the filesystem
// refuses the flag; the bool reports whether the fd actually is
// direct. Exported for package wal.
func OpenDirectFile(path string, flags int, wantDirect bool) (*os.File, bool, error) {
	return openBlockFile(path, flags, wantDirect)
}

// FsBlockSize returns the block size of the filesystem holding path
// (preallocation granularity), 4096 when the probe fails.
func FsBlockSize(path string) int { return fsBlockSize(path) }

// FsSectorSize returns the direct-I/O alignment for the filesystem
// holding path.
func FsSectorSize(path string) int { return fsSectorSize(path) }

// AlignedBuf returns an n-byte buffer whose base address is
// align-aligned, as O_DIRECT requires. Exported for package wal.
func AlignedBuf(n, align int) []byte { return alignedBytes(n, n, align) }

// alignUp rounds n up to the next multiple of align (a power of two).
func alignUp(n, align int64) int64 {
	return (n + align - 1) &^ (align - 1)
}

// alignedBytes allocates an n-byte slice (capacity at least capHint)
// whose base address is align-aligned, as O_DIRECT requires of I/O
// buffers. align <= 1 is a plain make. Go's heap does not move
// objects, so the alignment holds for the buffer's lifetime.
func alignedBytes(n, capHint, align int) []byte {
	c := capHint
	if n > c {
		c = n
	}
	if align <= 1 {
		return make([]byte, n, c)
	}
	raw := make([]byte, c+align)
	off := int(-uintptr(unsafe.Pointer(&raw[0])) & uintptr(align-1))
	return raw[off : off+n : off+c]
}

// alignedEntryArena allocates the buffer pool's shared entry backing
// page-aligned: the arena is byte-allocated at page alignment and
// reinterpreted as entries (Entry is two uint64s, no pointers), so
// frame backing starts on a page boundary regardless of allocator
// placement — the alignment discipline the direct I/O tier applies to
// every buffer it owns.
func alignedEntryArena(n int) []Entry {
	if n == 0 {
		return nil
	}
	buf := alignedBytes(n*entryBytes, n*entryBytes, 4096)
	return unsafe.Slice((*Entry)(unsafe.Pointer(&buf[0])), n)
}

// uringDepth is the submission-queue depth of a store's io_uring ring:
// deep enough that a checkpoint's coalesced runs queue without
// stalling, small enough that the rings of a many-shard engine stay
// cheap.
const uringDepth = 64

// ioSubmitter is the seam between a FileStore's flush path and its
// asynchronous write backend: the pwrite worker pool (writeback) and
// the io_uring ring (uring, build-tagged) both implement it. All
// methods are store-goroutine only except the internal completion
// paths each implementation owns.
type ioSubmitter interface {
	// getBuf returns an n-byte submission buffer (aligned when the
	// store's layout demands it), recycled from completed jobs.
	getBuf(n int) []byte
	// submit queues one encoded run, blocking while an earlier
	// in-flight write overlaps any of its physical slots.
	submit(job wbJob)
	// waitSlot blocks until no in-flight write covers slot phys.
	waitSlot(phys int64)
	// drain blocks until every submitted write completed and returns
	// the sticky first error.
	drain() error
	// shutdown drains and releases the backend's resources.
	shutdown() error
}
