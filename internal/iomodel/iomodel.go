// Package iomodel implements the standard external memory model of
// Aggarwal and Vitter, which is the cost model of Wei, Yi, Zhang
// (SPAA 2009): a disk of infinite size partitioned into blocks holding b
// items each, and a main memory of m words. Computation is free; the
// complexity of an algorithm is the number of block transfers (I/Os) it
// performs.
//
// The package is layered as a small storage engine (see README.md):
//
//   - BlockStore is the storage backend — a flat space of fixed-capacity
//     blocks with per-block overflow-chain headers. MemStore keeps blocks
//     in memory (the paper's simulator), FileStore persists them to a
//     real file behind a page cache, and LatencyStore injects seek and
//     transfer delays into any inner store.
//   - Disk is the cost-accounting layer every table operates through: it
//     charges the paper's I/O counters, enforces the footnote-2
//     write-back rule and block capacity, and delegates the bytes to
//     whichever backend it was constructed on.
//
// The paper's claims are statements about I/O counts under a memory
// budget; Disk measures exactly those counts regardless of backend, so
// the same table code yields the paper's numbers on MemStore and real
// wall-clock and syscall costs on FileStore.
//
// # Cost accounting
//
//   - Read(id):       1 I/O.
//   - Write(id):      1 I/O.
//   - WriteBack(id):  0 I/Os, but only legal immediately after Read(id) of
//     the same block. This implements footnote 2 of the paper: "since disk
//     I/Os are dominated by the seek time, writing a block immediately
//     after reading it can be considered as one I/O."
//
// Sequential scans receive no discount: the paper's bounds count block
// transfers uniformly, so uniform counting reproduces them.
//
// # Items and words
//
// The paper's item is one machine word of log u bits; a block holds b
// items and the memory holds m words. Our Entry carries a key (the item,
// i.e. its hash-relevant identity) and a value word for realism as a
// library. The value word rides along for free in the model; all capacity
// accounting is in items, matching the paper. Chain headers (the next
// pointer of an overflow block) are modeled as part of the block header
// and are read/written together with the block at no extra cost.
package iomodel

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Entry is one stored item: the key identifies it (the paper's atomic,
// indivisible item) and Val is an uninterpreted payload word.
type Entry struct {
	Key uint64
	Val uint64
}

// BlockID names a disk block. NilBlock is the null pointer.
type BlockID int32

// NilBlock is the null block pointer, used to terminate overflow chains.
const NilBlock BlockID = -1

// Counters accumulates I/O counts. The difference of two snapshots gives
// the cost of an operation window.
type Counters struct {
	Reads      int64 // blocks read (1 I/O each)
	Writes     int64 // blocks written cold (1 I/O each)
	WriteBacks int64 // write-immediately-after-read (free per footnote 2)
}

// IOs returns the seek-dominated I/O count: reads plus cold writes.
// Write-backs are free (footnote 2 of the paper).
func (c Counters) IOs() int64 { return c.Reads + c.Writes }

// Transfers returns the raw number of block transfers including
// write-backs, for experiments that want the conservative count.
func (c Counters) Transfers() int64 { return c.Reads + c.Writes + c.WriteBacks }

// Sub returns c - o, the counts accumulated since snapshot o.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		Reads:      c.Reads - o.Reads,
		Writes:     c.Writes - o.Writes,
		WriteBacks: c.WriteBacks - o.WriteBacks,
	}
}

// Add returns c + o.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		Reads:      c.Reads + o.Reads,
		Writes:     c.Writes + o.Writes,
		WriteBacks: c.WriteBacks + o.WriteBacks,
	}
}

// String renders the counters compactly.
func (c Counters) String() string {
	return fmt.Sprintf("reads=%d writes=%d writebacks=%d ios=%d",
		c.Reads, c.Writes, c.WriteBacks, c.IOs())
}

// ErrWriteBackOrder is returned (via panic in strict mode) when WriteBack
// is called on a block that was not the most recently read block.
var ErrWriteBackOrder = errors.New("iomodel: WriteBack must immediately follow Read of the same block")

// Disk is the cost-accounting layer of the model: the paper's I/O
// counters, the footnote-2 write-back rule and block-capacity checks,
// over any BlockStore backend. Blocks hold up to B entries plus a header
// containing an overflow-chain pointer. Disk is not safe for concurrent
// use; each experiment owns its Disk. The one exception is Counters:
// the counter fields are updated atomically, so observers on other
// goroutines (the sharded engine's non-blocking Stats path) may read a
// monotonic snapshot while the owning goroutine operates the disk.
type Disk struct {
	store      BlockStore
	b          int
	reads      atomic.Int64
	writes     atomic.Int64
	writeBacks atomic.Int64
	lastRead   BlockID
	strict     bool
	bufFree    [][]Entry // reusable entry buffers for AcquireBuf
}

// NewDisk returns an empty simulated disk (MemStore backend) with blocks
// of capacity b entries. Strict mode validates WriteBack ordering
// (enabled by default; it is cheap and catches accounting bugs in the
// table implementations).
func NewDisk(b int) *Disk {
	return NewDiskOn(NewMemStore(b))
}

// NewDiskOn layers the cost accounting over an arbitrary backend. The
// counters charged are identical across backends: only the price of the
// bytes differs.
func NewDiskOn(store BlockStore) *Disk {
	return &Disk{store: store, b: store.B(), lastRead: NilBlock, strict: true}
}

// Store returns the underlying backend, for backend-specific reporting
// (e.g. FileStore.Stats) and lifecycle management.
func (d *Disk) Store() BlockStore { return d.store }

// Close releases the backend's resources. Tables never call this; the
// owner of the Disk does.
func (d *Disk) Close() error { return d.store.Close() }

// SetStrict toggles WriteBack-order validation.
func (d *Disk) SetStrict(strict bool) { d.strict = strict }

// B returns the block capacity in entries.
func (d *Disk) B() int { return d.b }

// Counters returns a snapshot of the accumulated I/O counters. It is
// safe to call from any goroutine: each field is loaded atomically, so
// the snapshot is monotonic even while the owning goroutine is mid-run
// (the fields may straddle an in-flight operation, never tear within
// one).
func (d *Disk) Counters() Counters {
	return Counters{
		Reads:      d.reads.Load(),
		Writes:     d.writes.Load(),
		WriteBacks: d.writeBacks.Load(),
	}
}

// ResetCounters zeroes the I/O counters.
func (d *Disk) ResetCounters() {
	d.reads.Store(0)
	d.writes.Store(0)
	d.writeBacks.Store(0)
}

// NumBlocks returns the number of allocated (live) blocks.
func (d *Disk) NumBlocks() int { return d.store.NumBlocks() }

// Alloc reserves a fresh empty block and returns its ID. Allocation by
// itself performs no I/O; the write that first populates the block pays.
func (d *Disk) Alloc() BlockID { return d.store.Alloc() }

// Free releases a block back to the allocator. Freeing performs no I/O.
func (d *Disk) Free(id BlockID) {
	d.store.Free(id)
	if d.lastRead == id {
		d.lastRead = NilBlock
	}
}

// Read transfers block id into memory, costing 1 I/O, and appends its
// entries to buf (which may be nil). The returned slice is owned by the
// caller; the disk contents are unaffected by mutation of it.
func (d *Disk) Read(id BlockID, buf []Entry) []Entry {
	buf = d.store.ReadBlock(id, buf)
	d.reads.Add(1)
	d.lastRead = id
	return buf
}

// Peek returns the current contents of block id without performing an
// I/O. It exists for assertions and snapshot analysis (package zones),
// never for table operation logic. The slice must not be mutated and is
// only valid until the next disk operation.
func (d *Disk) Peek(id BlockID) []Entry {
	return d.store.PeekBlock(id)
}

// ReadPinned transfers block id into memory, costing 1 I/O like Read,
// but returns the store's own frame without copying. The slice stays
// valid — even across further disk operations — until the matching
// Unpin releases it; a caching backend keeps the frame resident for
// exactly that window. The slice must not be mutated. This is the
// zero-copy read path for scan-and-discard callers (chain walks).
func (d *Disk) ReadPinned(id BlockID) []Entry {
	buf := d.store.PinBlock(id)
	d.reads.Add(1)
	d.lastRead = id
	return buf
}

// Unpin releases the frame returned by ReadPinned(id). Pins must
// balance; the backend panics on underflow.
func (d *Disk) Unpin(id BlockID) { d.store.UnpinBlock(id) }

// AcquireBuf returns an empty entry buffer with capacity for one block,
// reused across calls so steady-state operations allocate nothing.
// Return it with ReleaseBuf when done. The disk has a single operating
// goroutine, so the freelist needs no locking.
func (d *Disk) AcquireBuf() []Entry {
	if n := len(d.bufFree); n > 0 {
		buf := d.bufFree[n-1]
		d.bufFree = d.bufFree[:n-1]
		return buf[:0]
	}
	return make([]Entry, 0, d.b)
}

// ReleaseBuf returns a buffer obtained from AcquireBuf to the freelist.
func (d *Disk) ReleaseBuf(buf []Entry) {
	d.bufFree = append(d.bufFree, buf)
}

// Write replaces the contents of block id, costing 1 I/O. It panics if
// entries exceeds the block capacity.
func (d *Disk) Write(id BlockID, entries []Entry) {
	d.checkFit(entries)
	d.store.WriteBlock(id, entries)
	d.writes.Add(1)
	d.lastRead = NilBlock
}

// WriteBack replaces the contents of block id at zero I/O cost, modeling
// a write issued while the disk head still sits on the block just read
// (footnote 2 of the paper). In strict mode it panics unless id is the
// most recently read block.
func (d *Disk) WriteBack(id BlockID, entries []Entry) {
	d.checkFit(entries)
	if d.strict && d.lastRead != id {
		panic(ErrWriteBackOrder)
	}
	d.store.WriteBlock(id, entries)
	d.writeBacks.Add(1)
	d.lastRead = NilBlock
}

// Clear empties block id without charging an I/O, modeling a TRIM or
// free-list format operation: discarding data requires no transfer. It
// must not be used to move data (the block simply becomes empty).
func (d *Disk) Clear(id BlockID) {
	d.store.ClearBlock(id)
	if d.lastRead == id {
		d.lastRead = NilBlock
	}
}

// Next returns the overflow-chain pointer stored in the header of block
// id. Headers travel with their block: calling Next is free but only
// meaningful adjacent to a Read/Write of the same block.
func (d *Disk) Next(id BlockID) BlockID { return d.store.Next(id) }

// SetNext updates the overflow-chain pointer in the header of block id.
// Like Next, it is free and must accompany a Read/Write of the block.
func (d *Disk) SetNext(id, next BlockID) { d.store.SetNext(id, next) }

func (d *Disk) checkFit(entries []Entry) {
	if len(entries) > d.b {
		panic(fmt.Sprintf("iomodel: %d entries exceed block capacity %d", len(entries), d.b))
	}
}
