package iomodel

import (
	"testing"
	"testing/quick"
)

func TestCountersArithmetic(t *testing.T) {
	a := Counters{Reads: 10, Writes: 5, WriteBacks: 3}
	b := Counters{Reads: 4, Writes: 2, WriteBacks: 1}
	d := a.Sub(b)
	if d.Reads != 6 || d.Writes != 3 || d.WriteBacks != 2 {
		t.Fatalf("Sub = %+v", d)
	}
	s := b.Add(d)
	if s != a {
		t.Fatalf("Add(Sub) != original: %+v", s)
	}
	if a.IOs() != 15 {
		t.Fatalf("IOs = %d", a.IOs())
	}
	if a.Transfers() != 18 {
		t.Fatalf("Transfers = %d", a.Transfers())
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	d := NewDisk(4)
	id := d.Alloc()
	in := []Entry{{1, 10}, {2, 20}}
	d.Write(id, in)
	out := d.Read(id, nil)
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("round trip failed: %v", out)
	}
	c := d.Counters()
	if c.Reads != 1 || c.Writes != 1 || c.WriteBacks != 0 {
		t.Fatalf("counters %+v", c)
	}
}

func TestReadReturnsCopy(t *testing.T) {
	d := NewDisk(4)
	id := d.Alloc()
	d.Write(id, []Entry{{1, 10}})
	out := d.Read(id, nil)
	out[0].Val = 999
	again := d.Read(id, nil)
	if again[0].Val != 10 {
		t.Fatal("mutating the returned slice changed disk contents")
	}
}

func TestWriteBackAfterRead(t *testing.T) {
	d := NewDisk(4)
	id := d.Alloc()
	d.Write(id, []Entry{{1, 1}})
	buf := d.Read(id, nil)
	buf = append(buf, Entry{2, 2})
	d.WriteBack(id, buf)
	c := d.Counters()
	if c.IOs() != 2 { // 1 write + 1 read; write-back free
		t.Fatalf("IOs = %d, want 2", c.IOs())
	}
	if got := d.Read(id, nil); len(got) != 2 {
		t.Fatalf("write-back lost data: %v", got)
	}
}

func TestWriteBackStrictViolation(t *testing.T) {
	d := NewDisk(4)
	a, b := d.Alloc(), d.Alloc()
	d.Write(a, nil)
	d.Write(b, nil)
	d.Read(a, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("WriteBack to non-last-read block did not panic in strict mode")
		}
	}()
	d.WriteBack(b, nil) // b was not the last read
}

func TestWriteBackNonStrict(t *testing.T) {
	d := NewDisk(4)
	d.SetStrict(false)
	a, b := d.Alloc(), d.Alloc()
	d.Write(a, nil)
	d.Write(b, nil)
	d.Read(a, nil)
	d.WriteBack(b, nil) // allowed when strict is off
}

func TestWriteBackAfterWriteInvalid(t *testing.T) {
	d := NewDisk(4)
	id := d.Alloc()
	d.Write(id, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("WriteBack after Write (no Read) did not panic")
		}
	}()
	d.WriteBack(id, nil)
}

func TestAllocFreeReuse(t *testing.T) {
	d := NewDisk(4)
	a := d.Alloc()
	d.Write(a, []Entry{{1, 1}})
	d.SetNext(a, 99) // garbage pointer that must be cleared on reuse
	d.Free(a)
	if d.NumBlocks() != 0 {
		t.Fatalf("NumBlocks = %d after free", d.NumBlocks())
	}
	b := d.Alloc()
	if b != a {
		t.Fatalf("allocator did not reuse freed block: got %d want %d", b, a)
	}
	if d.Next(b) != NilBlock {
		t.Fatal("reused block kept stale next pointer")
	}
	if len(d.Peek(b)) != 0 {
		t.Fatal("reused block kept stale contents")
	}
}

func TestBlockCapacityEnforced(t *testing.T) {
	d := NewDisk(2)
	id := d.Alloc()
	defer func() {
		if recover() == nil {
			t.Fatal("overfull write did not panic")
		}
	}()
	d.Write(id, []Entry{{1, 0}, {2, 0}, {3, 0}})
}

func TestInvalidBlockID(t *testing.T) {
	d := NewDisk(2)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid id did not panic")
		}
	}()
	d.Read(5, nil)
}

func TestNextPointers(t *testing.T) {
	d := NewDisk(2)
	a, b := d.Alloc(), d.Alloc()
	if d.Next(a) != NilBlock {
		t.Fatal("fresh block has non-nil next")
	}
	d.SetNext(a, b)
	if d.Next(a) != b {
		t.Fatal("SetNext lost pointer")
	}
}

func TestResetCounters(t *testing.T) {
	d := NewDisk(2)
	id := d.Alloc()
	d.Write(id, nil)
	d.ResetCounters()
	if d.Counters() != (Counters{}) {
		t.Fatal("reset did not zero counters")
	}
}

func TestMemoryBudget(t *testing.T) {
	m := NewMemory(100)
	if err := m.Alloc(60); err != nil {
		t.Fatal(err)
	}
	if err := m.Alloc(50); err == nil {
		t.Fatal("over-budget alloc succeeded")
	}
	if m.Used() != 60 {
		t.Fatalf("failed alloc changed Used: %d", m.Used())
	}
	if err := m.Alloc(40); err != nil {
		t.Fatal("exact-fit alloc failed")
	}
	if m.Free() != 0 {
		t.Fatalf("Free = %d", m.Free())
	}
	m.Release(100)
	if m.Used() != 0 {
		t.Fatalf("Used = %d after release", m.Used())
	}
	if m.Peak() != 100 {
		t.Fatalf("Peak = %d", m.Peak())
	}
}

func TestMemoryOverRelease(t *testing.T) {
	m := NewMemory(10)
	m.MustAlloc(5)
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	m.Release(6)
}

func TestModel(t *testing.T) {
	mo := NewModel(8, 1024)
	if mo.B() != 8 || mo.MWords() != 1024 {
		t.Fatalf("model params: b=%d m=%d", mo.B(), mo.MWords())
	}
	id := mo.Disk.Alloc()
	mo.Disk.Write(id, []Entry{{1, 1}})
	if mo.Counters().Writes != 1 {
		t.Fatal("model counters not wired to disk")
	}
}

func TestAllocFreeProperty(t *testing.T) {
	// Property: after any interleaving of allocs and frees, NumBlocks
	// equals live count and every live block is readable.
	f := func(ops []bool) bool {
		d := NewDisk(2)
		var live []BlockID
		for _, alloc := range ops {
			if alloc || len(live) == 0 {
				live = append(live, d.Alloc())
			} else {
				id := live[len(live)-1]
				live = live[:len(live)-1]
				d.Free(id)
			}
		}
		if d.NumBlocks() != len(live) {
			return false
		}
		for _, id := range live {
			d.Read(id, nil)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
