package iomodel

import "time"

// LatencyConfig sets the delays a LatencyStore injects per block
// transfer: Seek models head positioning, Transfer the block's time on
// the bus. Both apply to every ReadBlock and WriteBlock; header access,
// allocation and Peek stay free, matching the model's convention that
// only block transfers cost.
type LatencyConfig struct {
	Seek     time.Duration
	Transfer time.Duration
}

// LatencyStore wraps another BlockStore and sleeps for a configurable
// seek+transfer time on every block read and write. It sits between the
// free MemStore and the hardware-priced FileStore: counters stay exactly
// those of the inner store's Disk, but wall-clock measurements now
// reflect a device with the configured characteristics (e.g. a 4 ms seek
// spindle or a 50 µs NVMe read).
type LatencyStore struct {
	inner  BlockStore
	cfg    LatencyConfig
	ops    int64
	waited time.Duration
}

var _ BlockStore = (*LatencyStore)(nil)

// NewLatencyStore wraps inner with the given delays.
func NewLatencyStore(inner BlockStore, cfg LatencyConfig) *LatencyStore {
	return &LatencyStore{inner: inner, cfg: cfg}
}

// Waited returns the total injected delay so far.
func (s *LatencyStore) Waited() time.Duration { return s.waited }

// DelayedOps returns the number of block transfers that were delayed.
func (s *LatencyStore) DelayedOps() int64 { return s.ops }

// Inner returns the wrapped store.
func (s *LatencyStore) Inner() BlockStore { return s.inner }

func (s *LatencyStore) delay() {
	d := s.cfg.Seek + s.cfg.Transfer
	if d <= 0 {
		return
	}
	time.Sleep(d)
	s.waited += d
	s.ops++
}

// B returns the block capacity in entries.
func (s *LatencyStore) B() int { return s.inner.B() }

// Alloc reserves a fresh empty block (free, like the model's Alloc).
func (s *LatencyStore) Alloc() BlockID { return s.inner.Alloc() }

// Free releases a block (free).
func (s *LatencyStore) Free(id BlockID) { s.inner.Free(id) }

// ReadBlock reads block id after the configured delay.
func (s *LatencyStore) ReadBlock(id BlockID, buf []Entry) []Entry {
	s.delay()
	return s.inner.ReadBlock(id, buf)
}

// WriteBlock writes block id after the configured delay.
func (s *LatencyStore) WriteBlock(id BlockID, entries []Entry) {
	s.delay()
	s.inner.WriteBlock(id, entries)
}

// ClearBlock empties block id (free: a TRIM transfers no data).
func (s *LatencyStore) ClearBlock(id BlockID) { s.inner.ClearBlock(id) }

// PeekBlock returns block id's contents without delay (audit-only API).
func (s *LatencyStore) PeekBlock(id BlockID) []Entry { return s.inner.PeekBlock(id) }

// PinBlock reads block id after the configured delay: a pinned read is
// still a block transfer, so it is priced exactly like ReadBlock.
func (s *LatencyStore) PinBlock(id BlockID) []Entry {
	s.delay()
	return s.inner.PinBlock(id)
}

// UnpinBlock releases one pin (free: no data moves).
func (s *LatencyStore) UnpinBlock(id BlockID) { s.inner.UnpinBlock(id) }

// Next returns the overflow-chain pointer of block id (header, free).
func (s *LatencyStore) Next(id BlockID) BlockID { return s.inner.Next(id) }

// SetNext updates the overflow-chain pointer of block id (header, free).
func (s *LatencyStore) SetNext(id, next BlockID) { s.inner.SetNext(id, next) }

// NumBlocks returns the number of allocated (live) blocks.
func (s *LatencyStore) NumBlocks() int { return s.inner.NumBlocks() }

// Sync delegates to the inner store.
func (s *LatencyStore) Sync() error { return s.inner.Sync() }

// Close delegates to the inner store.
func (s *LatencyStore) Close() error { return s.inner.Close() }
