package iomodel

import (
	"fmt"
	"sort"
	"time"
)

// LatencyConfig sets the delays a LatencyStore injects per block
// transfer: Seek models head positioning, Transfer the block's time on
// the bus. Both apply to every ReadBlock and WriteBlock; header access,
// allocation and Peek stay free, matching the model's convention that
// only block transfers cost.
//
// The zero values of the optional fields reproduce the original flat
// pricing: every transfer costs Seek + Transfer. SeqTransfer and
// QueueDepth refine the device model in the fio style:
//
//   - SeqTransfer, if > 0, prices an access whose block ID immediately
//     follows the previous access: Seek is waived and SeqTransfer
//     replaces Transfer, so coalesced/clustered I/O patterns are
//     rewarded the way real devices reward them.
//   - QueueDepth, if > 0, bounds how many transfers the device absorbs
//     concurrently: when more callers than QueueDepth arrive, the
//     excess queue behind a semaphore, making measured latency
//     queue-depth-sensitive (an hdd with QueueDepth 1 serializes; an
//     nvme with QueueDepth 8 absorbs a worker pool).
type LatencyConfig struct {
	Seek        time.Duration
	Transfer    time.Duration
	SeqTransfer time.Duration
	QueueDepth  int
}

// DeviceProfiles lists the built-in fio-style presets accepted by
// DeviceProfile, roughly calibrated to the three device classes
// experiments care about.
var deviceProfiles = map[string]LatencyConfig{
	// NVMe flash: cheap "seeks" (no head), deep queues.
	"nvme": {Seek: 20 * time.Microsecond, Transfer: 5 * time.Microsecond,
		SeqTransfer: 2 * time.Microsecond, QueueDepth: 8},
	// SATA SSD: flat latency, shallow queue.
	"ssd": {Seek: 80 * time.Microsecond, Transfer: 25 * time.Microsecond,
		SeqTransfer: 10 * time.Microsecond, QueueDepth: 4},
	// Spinning disk: seeks dominate, sequential streams are nearly
	// free by comparison, one head — queue depth 1.
	"hdd": {Seek: 4 * time.Millisecond, Transfer: 60 * time.Microsecond,
		SeqTransfer: 60 * time.Microsecond, QueueDepth: 1},
}

// DeviceProfile returns the named built-in latency preset (nvme, ssd
// or hdd).
func DeviceProfile(name string) (LatencyConfig, error) {
	cfg, ok := deviceProfiles[name]
	if !ok {
		return LatencyConfig{}, fmt.Errorf("iomodel: unknown device profile %q (want one of %v)",
			name, DeviceProfileNames())
	}
	return cfg, nil
}

// DeviceProfileIO returns the named preset priced for an I/O mode. The
// kernel-bypass tier does not change the device, only the per-transfer
// software overhead in front of it: the direct modes shave the
// page-cache copy + buffered-syscall component (4 µs, floored at 1 µs)
// off both transfer rates, and "uring" additionally doubles the
// absorbed queue depth — batched SQE submission keeps the device queue
// full without one syscall per write. "" and "buffered" return the
// preset unchanged.
func DeviceProfileIO(name, mode string) (LatencyConfig, error) {
	cfg, err := DeviceProfile(name)
	if err != nil {
		return cfg, err
	}
	if !ValidIOMode(mode) {
		return LatencyConfig{}, fmt.Errorf("iomodel: unknown io mode %q", mode)
	}
	if !directLayout(mode) {
		return cfg, nil
	}
	shave := func(d time.Duration) time.Duration {
		const overhead = 4 * time.Microsecond
		if d -= overhead; d < time.Microsecond {
			return time.Microsecond
		}
		return d
	}
	cfg.Transfer = shave(cfg.Transfer)
	if cfg.SeqTransfer > 0 {
		cfg.SeqTransfer = shave(cfg.SeqTransfer)
	}
	if mode == IOModeUring && cfg.QueueDepth > 0 {
		cfg.QueueDepth *= 2
	}
	return cfg, nil
}

// DeviceProfileNames returns the built-in profile names, sorted.
func DeviceProfileNames() []string {
	names := make([]string, 0, len(deviceProfiles))
	for name := range deviceProfiles {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// LatencyStore wraps another BlockStore and sleeps for a configurable
// seek+transfer time on every block read and write. It sits between the
// free MemStore and the hardware-priced FileStore: counters stay exactly
// those of the inner store's Disk, but wall-clock measurements now
// reflect a device with the configured characteristics (e.g. a 4 ms seek
// spindle or a 50 µs NVMe read).
type LatencyStore struct {
	inner  BlockStore
	cfg    LatencyConfig
	ops    int64
	seqOps int64
	waited time.Duration
	lastID BlockID       // previous delayed access, for sequential detection
	queue  chan struct{} // device queue-depth semaphore (nil: unbounded)
}

var _ BlockStore = (*LatencyStore)(nil)

// NewLatencyStore wraps inner with the given delays.
func NewLatencyStore(inner BlockStore, cfg LatencyConfig) *LatencyStore {
	s := &LatencyStore{inner: inner, cfg: cfg, lastID: NilBlock}
	if cfg.QueueDepth > 0 {
		s.queue = make(chan struct{}, cfg.QueueDepth)
	}
	return s
}

// Waited returns the total injected delay so far.
func (s *LatencyStore) Waited() time.Duration { return s.waited }

// DelayedOps returns the number of block transfers that were delayed.
func (s *LatencyStore) DelayedOps() int64 { return s.ops }

// SeqOps returns the number of delayed transfers priced at the
// sequential rate (block ID adjacent to the previous access).
func (s *LatencyStore) SeqOps() int64 { return s.seqOps }

// Inner returns the wrapped store.
func (s *LatencyStore) Inner() BlockStore { return s.inner }

func (s *LatencyStore) delay(id BlockID) {
	d := s.cfg.Seek + s.cfg.Transfer
	if s.cfg.SeqTransfer > 0 && s.lastID != NilBlock && id == s.lastID+1 {
		d = s.cfg.SeqTransfer
		s.seqOps++
	}
	s.lastID = id
	if d <= 0 {
		return
	}
	if s.queue != nil {
		s.queue <- struct{}{}
	}
	time.Sleep(d)
	if s.queue != nil {
		<-s.queue
	}
	s.waited += d
	s.ops++
}

// B returns the block capacity in entries.
func (s *LatencyStore) B() int { return s.inner.B() }

// Alloc reserves a fresh empty block (free, like the model's Alloc).
func (s *LatencyStore) Alloc() BlockID { return s.inner.Alloc() }

// Free releases a block (free).
func (s *LatencyStore) Free(id BlockID) { s.inner.Free(id) }

// ReadBlock reads block id after the configured delay.
func (s *LatencyStore) ReadBlock(id BlockID, buf []Entry) []Entry {
	s.delay(id)
	return s.inner.ReadBlock(id, buf)
}

// WriteBlock writes block id after the configured delay.
func (s *LatencyStore) WriteBlock(id BlockID, entries []Entry) {
	s.delay(id)
	s.inner.WriteBlock(id, entries)
}

// ClearBlock empties block id (free: a TRIM transfers no data).
func (s *LatencyStore) ClearBlock(id BlockID) { s.inner.ClearBlock(id) }

// PeekBlock returns block id's contents without delay (audit-only API).
func (s *LatencyStore) PeekBlock(id BlockID) []Entry { return s.inner.PeekBlock(id) }

// PinBlock reads block id after the configured delay: a pinned read is
// still a block transfer, so it is priced exactly like ReadBlock.
func (s *LatencyStore) PinBlock(id BlockID) []Entry {
	s.delay(id)
	return s.inner.PinBlock(id)
}

// UnpinBlock releases one pin (free: no data moves).
func (s *LatencyStore) UnpinBlock(id BlockID) { s.inner.UnpinBlock(id) }

// Next returns the overflow-chain pointer of block id (header, free).
func (s *LatencyStore) Next(id BlockID) BlockID { return s.inner.Next(id) }

// SetNext updates the overflow-chain pointer of block id (header, free).
func (s *LatencyStore) SetNext(id, next BlockID) { s.inner.SetNext(id, next) }

// NumBlocks returns the number of allocated (live) blocks.
func (s *LatencyStore) NumBlocks() int { return s.inner.NumBlocks() }

// Sync delegates to the inner store.
func (s *LatencyStore) Sync() error { return s.inner.Sync() }

// Close delegates to the inner store.
func (s *LatencyStore) Close() error { return s.inner.Close() }
