package iomodel

import (
	"fmt"
	"sync/atomic"
)

// Memory tracks the main-memory budget of m words. Every structure that
// keeps state in memory (buffers, directories, split pointers) allocates
// its footprint here, so experiments can assert that no structure exceeds
// the m the paper grants it.
//
// Accounting is in words: one Entry key is one word (the paper's item);
// auxiliary pointers and counters are charged one word each. Value words
// ride free, consistent with the Disk convention.
//
// Like Disk, a Memory has a single operating goroutine (Alloc/Release),
// but Used and Peak are atomic so observers on other goroutines (the
// sharded engine's non-blocking MemoryUsed path) can read the gauges
// without stalling the owner.
type Memory struct {
	capacity int64
	used     atomic.Int64
	peak     atomic.Int64
}

// NewMemory returns a memory budget of capacity words.
func NewMemory(capacity int64) *Memory {
	if capacity < 0 {
		panic("iomodel: negative memory capacity")
	}
	return &Memory{capacity: capacity}
}

// Capacity returns the budget in words.
func (m *Memory) Capacity() int64 { return m.capacity }

// Used returns the words currently allocated.
func (m *Memory) Used() int64 { return m.used.Load() }

// Peak returns the high-water mark of Used.
func (m *Memory) Peak() int64 { return m.peak.Load() }

// Free returns the words still available.
func (m *Memory) Free() int64 { return m.capacity - m.used.Load() }

// Alloc reserves words from the budget. It returns an error if the budget
// would be exceeded; the reservation is not applied in that case.
func (m *Memory) Alloc(words int64) error {
	if words < 0 {
		panic("iomodel: negative allocation")
	}
	used := m.used.Add(words)
	if used > m.capacity {
		m.used.Add(-words)
		return fmt.Errorf("iomodel: memory budget exceeded: used %d + alloc %d > capacity %d",
			used-words, words, m.capacity)
	}
	for {
		peak := m.peak.Load()
		if used <= peak || m.peak.CompareAndSwap(peak, used) {
			return nil
		}
	}
}

// MustAlloc is Alloc for callers holding a structural invariant that the
// allocation fits; it panics on violation.
func (m *Memory) MustAlloc(words int64) {
	if err := m.Alloc(words); err != nil {
		panic(err)
	}
}

// Release returns words to the budget. It panics if more is released than
// is currently used (an accounting bug in the caller).
func (m *Memory) Release(words int64) {
	if words < 0 {
		panic("iomodel: negative release")
	}
	if used := m.used.Add(-words); used < 0 {
		panic(fmt.Sprintf("iomodel: releasing %d words but only %d in use", words, used+words))
	}
}

// Model bundles a Disk and a Memory with the two parameters of the
// external memory model: b (block size in items) and m (memory size in
// words). It is the substrate handed to every table constructor.
type Model struct {
	Disk *Disk
	Mem  *Memory
}

// NewModel returns a fresh model with block size b and memory budget
// mWords, on the default in-memory simulated store.
func NewModel(b int, mWords int64) *Model {
	return NewModelOn(NewMemStore(b), mWords)
}

// NewModelOn returns a model whose disk runs over the given backend,
// with memory budget mWords. The I/O accounting is backend-independent.
func NewModelOn(store BlockStore, mWords int64) *Model {
	return &Model{Disk: NewDiskOn(store), Mem: NewMemory(mWords)}
}

// Close releases the disk backend's resources (file handles for
// file-backed stores; a no-op for in-memory stores).
func (mo *Model) Close() error { return mo.Disk.Close() }

// B returns the block size in items.
func (mo *Model) B() int { return mo.Disk.B() }

// MWords returns the memory budget in words.
func (mo *Model) MWords() int64 { return mo.Mem.Capacity() }

// Counters returns the disk's I/O counter snapshot.
func (mo *Model) Counters() Counters { return mo.Disk.Counters() }
