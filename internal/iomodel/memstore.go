package iomodel

import "fmt"

// MemStore is the default BlockStore: blocks held in main memory of the
// simulating process. It is the backend of the paper experiments — all
// storage is free and instantaneous, so the only costs are the I/O
// counters Disk accounts on top.
type MemStore struct {
	b      int
	blocks [][]Entry
	next   []BlockID
	free   []BlockID
	pins   []int32 // per-block pin counts; nothing is ever evicted, so
	// pinning only tracks balance (the same contract FileStore enforces
	// for real, kept here so bugs surface on the cheap backend too)
	pinned int64
}

var _ BlockStore = (*MemStore)(nil)

// NewMemStore returns an empty in-memory store with blocks of capacity b
// entries.
func NewMemStore(b int) *MemStore {
	if b < 1 {
		panic("iomodel: block size must be >= 1")
	}
	return &MemStore{b: b}
}

// B returns the block capacity in entries.
func (s *MemStore) B() int { return s.b }

// Alloc reserves a fresh empty block and returns its ID.
func (s *MemStore) Alloc() BlockID {
	if n := len(s.free); n > 0 {
		id := s.free[n-1]
		s.free = s.free[:n-1]
		s.blocks[id] = s.blocks[id][:0]
		s.next[id] = NilBlock
		return id
	}
	id := BlockID(len(s.blocks))
	s.blocks = append(s.blocks, make([]Entry, 0, s.b))
	s.next = append(s.next, NilBlock)
	s.pins = append(s.pins, 0)
	return id
}

// Free releases a block back to the allocator. Freeing a pinned block
// is a caller bug (the pinned slice would alias recycled storage).
func (s *MemStore) Free(id BlockID) {
	s.checkID(id)
	if s.pins[id] > 0 {
		panic(fmt.Sprintf("iomodel: freeing pinned block %d", id))
	}
	s.blocks[id] = s.blocks[id][:0]
	s.next[id] = NilBlock
	s.free = append(s.free, id)
}

// ReadBlock appends the entries of block id to buf and returns it.
func (s *MemStore) ReadBlock(id BlockID, buf []Entry) []Entry {
	s.checkID(id)
	return append(buf, s.blocks[id]...)
}

// WriteBlock replaces the contents of block id.
func (s *MemStore) WriteBlock(id BlockID, entries []Entry) {
	s.checkID(id)
	s.blocks[id] = append(s.blocks[id][:0], entries...)
}

// ClearBlock empties block id and resets its next pointer.
func (s *MemStore) ClearBlock(id BlockID) {
	s.checkID(id)
	s.blocks[id] = s.blocks[id][:0]
	s.next[id] = NilBlock
}

// PeekBlock returns the live contents of block id without copying.
func (s *MemStore) PeekBlock(id BlockID) []Entry {
	s.checkID(id)
	return s.blocks[id]
}

// PinBlock returns the live contents of block id without copying. The
// in-memory store never evicts, so the pin only records balance.
func (s *MemStore) PinBlock(id BlockID) []Entry {
	s.checkID(id)
	s.pins[id]++
	s.pinned++
	return s.blocks[id]
}

// UnpinBlock releases one pin of block id, panicking on underflow.
func (s *MemStore) UnpinBlock(id BlockID) {
	s.checkID(id)
	if s.pins[id] == 0 {
		panic(fmt.Sprintf("iomodel: unpin of unpinned block %d", id))
	}
	s.pins[id]--
	s.pinned--
}

// PinnedBlocks returns the number of outstanding pins, for balance
// assertions in tests.
func (s *MemStore) PinnedBlocks() int { return int(s.pinned) }

// Next returns the overflow-chain pointer of block id.
func (s *MemStore) Next(id BlockID) BlockID {
	s.checkID(id)
	return s.next[id]
}

// SetNext updates the overflow-chain pointer of block id.
func (s *MemStore) SetNext(id, next BlockID) {
	s.checkID(id)
	s.next[id] = next
}

// NumBlocks returns the number of allocated (live) blocks.
func (s *MemStore) NumBlocks() int { return len(s.blocks) - len(s.free) }

// Sync is a no-op for the in-memory store.
func (s *MemStore) Sync() error { return nil }

// Close is a no-op for the in-memory store.
func (s *MemStore) Close() error { return nil }

func (s *MemStore) checkID(id BlockID) {
	if id < 0 || int(id) >= len(s.blocks) {
		panic(fmt.Sprintf("iomodel: invalid block id %d", id))
	}
}
