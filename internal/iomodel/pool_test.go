package iomodel

import (
	"path/filepath"
	"strings"
	"testing"
)

// The buffer-pool invariant suite: pinned frames survive any cache
// pressure, pins balance, eviction is counted, and flush barriers
// coalesce adjacent slots into single writes without changing what is
// on disk.

func tempStore(t *testing.T, b, cacheBlocks int) *FileStore {
	t.Helper()
	s, err := NewTempFileStore(b, cacheBlocks)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestPoolPinnedNeverEvicted pins one block, thrashes the pool far past
// capacity, and requires the pinned frame to stay resident — same
// backing memory, same contents — the whole time.
func TestPoolPinnedNeverEvicted(t *testing.T) {
	s := tempStore(t, 8, 4)
	ids := make([]BlockID, 64)
	for i := range ids {
		ids[i] = s.Alloc()
		s.WriteBlock(ids[i], []Entry{{Key: uint64(i), Val: uint64(i) * 10}})
	}
	target := ids[3]
	pinnedView := s.PinBlock(target)
	if len(pinnedView) != 1 || pinnedView[0].Key != 3 {
		t.Fatalf("pinned view = %+v", pinnedView)
	}
	if got := s.PinnedFrames(); got != 1 {
		t.Fatalf("PinnedFrames = %d, want 1", got)
	}
	// Thrash: every other block cycles through the 4-frame pool many
	// times over.
	for round := 0; round < 8; round++ {
		for _, id := range ids {
			if id == target {
				continue
			}
			s.ReadBlock(id, nil)
		}
	}
	if s.Stats().Evictions == 0 {
		t.Fatal("thrash produced no evictions; test is vacuous")
	}
	// The pinned slice must still read the same frame memory.
	after := s.PinBlock(target)
	if &after[0] != &pinnedView[0] {
		t.Fatal("pinned frame was relocated under cache pressure")
	}
	if after[0].Key != 3 || after[0].Val != 30 {
		t.Fatalf("pinned contents corrupted: %+v", after[0])
	}
	s.UnpinBlock(target)
	s.UnpinBlock(target)
	if got := s.PinnedFrames(); got != 0 {
		t.Fatalf("PinnedFrames after unpin = %d, want 0", got)
	}
	// Unpinned, the frame is evictable again: thrash and verify the
	// pool survives (no panic) and contents still read back correctly.
	for _, id := range ids {
		buf := s.ReadBlock(id, nil)
		if len(buf) != 1 || buf[0].Key != uint64(id) {
			t.Fatalf("block %d = %+v", id, buf)
		}
	}
}

// TestPoolAllPinnedPanics: a fault with every frame pinned has no legal
// victim and must panic rather than evict a pinned frame.
func TestPoolAllPinnedPanics(t *testing.T) {
	s := tempStore(t, 8, 2)
	a, b, c := s.Alloc(), s.Alloc(), s.Alloc()
	s.WriteBlock(a, []Entry{{Key: 1}})
	s.WriteBlock(b, []Entry{{Key: 2}})
	s.PinBlock(a)
	s.PinBlock(b)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("fault with all frames pinned did not panic")
		}
		if !strings.Contains(r.(string), "pinned") {
			t.Fatalf("panic = %v", r)
		}
		s.UnpinBlock(a)
		s.UnpinBlock(b)
	}()
	s.ReadBlock(c, nil)
}

// TestPoolUnpinUnderflowPanics on both pool-backed and in-memory
// stores: pins must balance everywhere.
func TestPoolUnpinUnderflowPanics(t *testing.T) {
	check := func(name string, s BlockStore) {
		t.Run(name, func(t *testing.T) {
			id := s.Alloc()
			s.PinBlock(id)
			s.UnpinBlock(id)
			defer func() {
				if recover() == nil {
					t.Fatal("unbalanced unpin did not panic")
				}
			}()
			s.UnpinBlock(id)
		})
	}
	check("file", tempStore(t, 8, 4))
	check("mem", NewMemStore(8))
}

// TestMemStorePinBalance: the mem backend tracks the same balance
// gauge, so pin bugs surface on the cheap backend too.
func TestMemStorePinBalance(t *testing.T) {
	s := NewMemStore(8)
	a, b := s.Alloc(), s.Alloc()
	s.WriteBlock(a, []Entry{{Key: 9, Val: 90}})
	va := s.PinBlock(a)
	s.PinBlock(b)
	s.PinBlock(a) // nested
	if got := s.PinnedBlocks(); got != 3 {
		t.Fatalf("PinnedBlocks = %d, want 3", got)
	}
	if va[0].Val != 90 {
		t.Fatalf("pinned view = %+v", va)
	}
	s.UnpinBlock(a)
	s.UnpinBlock(a)
	s.UnpinBlock(b)
	if got := s.PinnedBlocks(); got != 0 {
		t.Fatalf("PinnedBlocks = %d, want 0", got)
	}
}

// TestCoalescedFlush writes a batch of blocks and checks a Sync barrier
// issues one large pwrite per run of adjacent slots — not one syscall
// per block — and that a reopened durable store reads every block back.
func TestCoalescedFlush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "coalesce.blocks")
	s, err := OpenFileStore(path, 8, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	const nBlocks = 32
	ids := make([]BlockID, nBlocks)
	for i := range ids {
		ids[i] = s.Alloc()
		s.WriteBlock(ids[i], []Entry{{Key: uint64(i), Val: uint64(i) ^ 0xabc}})
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.FlushedFrames != nBlocks {
		t.Fatalf("FlushedFrames = %d, want %d", st.FlushedFrames, nBlocks)
	}
	// Fresh durable slots are allocated sequentially, so all 32 dirty
	// frames land in one adjacent run → one pwrite.
	if st.FlushRuns != 1 {
		t.Fatalf("FlushRuns = %d, want 1 (adjacent slots must coalesce)", st.FlushRuns)
	}
	if st.WriteSyscalls != 1 {
		t.Fatalf("WriteSyscalls = %d, want 1", st.WriteSyscalls)
	}
	if st.Fsyncs != 1 {
		t.Fatalf("Fsyncs = %d, want 1", st.Fsyncs)
	}

	// Rewrite a sparse subset: non-adjacent slots may not be merged
	// into one run, adjacent ones must be.
	for _, i := range []int{4, 5, 6, 20, 21, 30} {
		s.WriteBlock(ids[i], []Entry{{Key: uint64(i), Val: 7}})
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	st2 := s.Stats()
	if got := st2.FlushedFrames - st.FlushedFrames; got != 6 {
		t.Fatalf("second flush frames = %d, want 6", got)
	}
	runs := st2.FlushRuns - st.FlushRuns
	if runs < 2 || runs > 3 {
		// COW reassigns slots, so exact adjacency depends on the free
		// list; 6 frames must still need far fewer writes than 6.
		t.Fatalf("second flush runs = %d, want 2..3", runs)
	}

	// Durability check across reopen: state restore + every block read.
	nslots, free, mapping := s.AllocState()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFileStore(path, 8, 4, nil) // tiny pool: force faults
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.RestoreAllocState(nslots, free, mapping); err != nil {
		t.Fatal(err)
	}
	rewritten := map[int]bool{4: true, 5: true, 6: true, 20: true, 21: true, 30: true}
	for i, id := range ids {
		buf := s2.ReadBlock(id, nil)
		want := uint64(i) ^ 0xabc
		if rewritten[i] {
			want = 7
		}
		if len(buf) != 1 || buf[0].Key != uint64(i) || buf[0].Val != want {
			t.Fatalf("block %d after reopen = %+v, want key %d val %d", i, buf, i, want)
		}
	}
}

// TestPoolEvictionWritebackStats: dirty evictions are counted and write
// their frame back, so nothing is lost under pressure.
func TestPoolEvictionWritebackStats(t *testing.T) {
	s := tempStore(t, 8, 4)
	const n = 40
	ids := make([]BlockID, n)
	for i := range ids {
		ids[i] = s.Alloc()
		s.WriteBlock(ids[i], []Entry{{Key: uint64(i), Val: uint64(i)}})
	}
	st := s.Stats()
	if st.Evictions == 0 || st.DirtyWritebacks == 0 {
		t.Fatalf("stats = %+v: writing %d blocks through a 4-frame pool must evict dirty frames", st, n)
	}
	if st.DirtyWritebacks > st.Evictions {
		t.Fatalf("DirtyWritebacks %d > Evictions %d", st.DirtyWritebacks, st.Evictions)
	}
	for i, id := range ids {
		buf := s.ReadBlock(id, nil)
		if len(buf) != 1 || buf[0].Val != uint64(i) {
			t.Fatalf("block %d lost under eviction: %+v", id, buf)
		}
	}
}
