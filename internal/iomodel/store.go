package iomodel

// BlockStore is the storage backend beneath Disk: a flat address space of
// fixed-capacity blocks, each carrying a header with an overflow-chain
// pointer. Disk layers the paper's cost accounting (I/O counters,
// footnote-2 write-back legality, strict-mode checks) on top of any
// BlockStore, so the same table code runs against an in-memory simulated
// store (MemStore), a real file (FileStore), or a delay-injecting wrapper
// (LatencyStore) without change.
//
// Stores perform no cost accounting of their own: reading, writing,
// clearing and header access are raw storage operations. All model-level
// bookkeeping lives in Disk. Like Disk, stores are not safe for
// concurrent use; each Disk owns its store exclusively.
type BlockStore interface {
	// B returns the block capacity in entries.
	B() int
	// Alloc reserves a fresh empty block and returns its ID. Freed
	// blocks are reused (most recently freed first) and come back empty
	// with a nil next pointer.
	Alloc() BlockID
	// Free releases a block back to the allocator.
	Free(id BlockID)
	// ReadBlock appends the entries of block id to buf (which may be
	// nil) and returns the result. The returned slice is owned by the
	// caller; mutating it does not affect the stored block.
	ReadBlock(id BlockID, buf []Entry) []Entry
	// WriteBlock replaces the contents of block id. The store may
	// assume len(entries) <= B(); Disk enforces it.
	WriteBlock(id BlockID, entries []Entry)
	// ClearBlock empties block id and resets its next pointer.
	ClearBlock(id BlockID)
	// PeekBlock returns the current contents of block id without the
	// copy ReadBlock makes. The slice is only valid until the next
	// store operation and must not be mutated. It exists for audits and
	// assertions, never operation logic.
	PeekBlock(id BlockID) []Entry
	// PinBlock returns the entries of block id without copying, like
	// PeekBlock, but the returned slice stays valid until the matching
	// UnpinBlock: a caching store must not evict or recycle the frame
	// while it is pinned. Pins nest (a frame may be pinned more than
	// once) and must balance. The slice must not be mutated.
	PinBlock(id BlockID) []Entry
	// UnpinBlock releases one pin taken by PinBlock. Unbalanced unpins
	// are a caller bug and panic.
	UnpinBlock(id BlockID)
	// Next returns the overflow-chain pointer in the header of block id.
	Next(id BlockID) BlockID
	// SetNext updates the overflow-chain pointer of block id.
	SetNext(id, next BlockID)
	// NumBlocks returns the number of allocated (live) blocks.
	NumBlocks() int
	// Sync flushes any buffered state to durable storage. In-memory
	// stores return nil.
	Sync() error
	// Close releases backend resources (file handles, temp files).
	// The store must not be used afterwards.
	Close() error
}
