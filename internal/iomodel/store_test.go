package iomodel

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// lcg is a tiny deterministic generator so backend runs see identical
// operation streams without importing the workload packages.
type lcg uint64

func (l *lcg) next() uint64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint64(*l)
}

// driveOps runs a deterministic mixed stream of disk operations and
// returns the final contents of every live block plus the counters.
func driveOps(t *testing.T, d *Disk, ops int) (map[BlockID][]Entry, map[BlockID]BlockID, Counters) {
	t.Helper()
	rng := lcg(12345)
	var live []BlockID
	for i := 0; i < ops; i++ {
		if len(live) == 0 {
			live = append(live, d.Alloc())
			continue
		}
		id := live[int(rng.next()%uint64(len(live)))]
		switch rng.next() % 8 {
		case 0:
			live = append(live, d.Alloc())
		case 1:
			// Free the picked block, unlinking any header that names it.
			for _, o := range live {
				if o != id && d.Next(o) == id {
					d.SetNext(o, NilBlock)
				}
			}
			for j, o := range live {
				if o == id {
					live = append(live[:j], live[j+1:]...)
					break
				}
			}
			d.Free(id)
		case 2:
			n := int(rng.next() % uint64(d.B()+1))
			ents := make([]Entry, n)
			for j := range ents {
				ents[j] = Entry{Key: rng.next(), Val: rng.next()}
			}
			d.Write(id, ents)
		case 3:
			buf := d.Read(id, nil)
			if len(buf) < d.B() {
				buf = append(buf, Entry{Key: rng.next(), Val: rng.next()})
			}
			d.WriteBack(id, buf)
		case 4:
			d.Read(id, nil)
		case 5:
			d.Clear(id)
		case 6:
			other := live[int(rng.next()%uint64(len(live)))]
			if other != id {
				d.SetNext(id, other)
			}
		case 7:
			d.Peek(id)
		}
	}
	contents := make(map[BlockID][]Entry, len(live))
	nexts := make(map[BlockID]BlockID, len(live))
	for _, id := range live {
		contents[id] = append([]Entry(nil), d.Peek(id)...)
		nexts[id] = d.Next(id)
	}
	return contents, nexts, d.Counters()
}

// TestBackendConformance drives an identical operation stream against
// every backend and requires bit-for-bit identical visible state and —
// critically for the paper experiments — identical I/O counters.
func TestBackendConformance(t *testing.T) {
	const b, ops = 4, 4000
	refContents, refNexts, refCtr := driveOps(t, NewDisk(b), ops)

	backends := map[string]func(t *testing.T) BlockStore{
		"file-small-cache": func(t *testing.T) BlockStore {
			fs, err := NewFileStore(filepath.Join(t.TempDir(), "store.blocks"), b, 3)
			if err != nil {
				t.Fatal(err)
			}
			return fs
		},
		"file-large-cache": func(t *testing.T) BlockStore {
			fs, err := NewFileStore(filepath.Join(t.TempDir(), "store.blocks"), b, 1024)
			if err != nil {
				t.Fatal(err)
			}
			return fs
		},
		"latency-over-mem": func(t *testing.T) BlockStore {
			return NewLatencyStore(NewMemStore(b), LatencyConfig{})
		},
	}
	for name, mk := range backends {
		t.Run(name, func(t *testing.T) {
			store := mk(t)
			d := NewDiskOn(store)
			contents, nexts, ctr := driveOps(t, d, ops)
			if ctr != refCtr {
				t.Fatalf("counters diverge from mem backend: %v vs %v", ctr, refCtr)
			}
			if len(contents) != len(refContents) {
				t.Fatalf("live block count %d, want %d", len(contents), len(refContents))
			}
			for id, want := range refContents {
				got, ok := contents[id]
				if !ok {
					t.Fatalf("block %d missing", id)
				}
				if len(got) != len(want) {
					t.Fatalf("block %d length %d, want %d", id, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("block %d entry %d = %v, want %v", id, i, got[i], want[i])
					}
				}
				if nexts[id] != refNexts[id] {
					t.Fatalf("block %d next = %d, want %d", id, nexts[id], refNexts[id])
				}
			}
			if err := d.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
		})
	}
}

func TestFileStoreEvictionRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "evict.blocks")
	fs, err := NewFileStore(path, 4, 2) // 2 frames: heavy eviction
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	const n = 64
	ids := make([]BlockID, n)
	for i := range ids {
		ids[i] = fs.Alloc()
		fs.WriteBlock(ids[i], []Entry{{Key: uint64(i), Val: uint64(i) * 3}})
		fs.SetNext(ids[i], BlockID(i%7)-1)
	}
	for i, id := range ids {
		got := fs.ReadBlock(id, nil)
		if len(got) != 1 || got[0].Key != uint64(i) || got[0].Val != uint64(i)*3 {
			t.Fatalf("block %d round trip: %v", id, got)
		}
		if fs.Next(id) != BlockID(i%7)-1 {
			t.Fatalf("block %d next = %d", id, fs.Next(id))
		}
	}
	st := fs.Stats()
	if st.WriteSyscalls == 0 || st.ReadSyscalls == 0 {
		t.Fatalf("expected real syscalls with a 2-frame cache, got %+v", st)
	}
	if st.CacheHits == 0 || st.CacheMisses == 0 {
		t.Fatalf("expected both hits and misses, got %+v", st)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(n) * int64(blockHeaderBytes+4*entryBytes); info.Size() != want {
		t.Fatalf("file size %d, want %d", info.Size(), want)
	}
}

func TestFileStoreFreeReuse(t *testing.T) {
	fs, err := NewTempFileStore(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	a := fs.Alloc()
	fs.WriteBlock(a, []Entry{{1, 1}, {2, 2}})
	fs.SetNext(a, 99)
	// Force the dirty frame to the file, then free and reallocate: the
	// stale on-disk bytes must not resurface.
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.Free(a)
	b := fs.Alloc()
	if b != a {
		t.Fatalf("allocator did not reuse freed block: got %d want %d", b, a)
	}
	if got := fs.ReadBlock(b, nil); len(got) != 0 {
		t.Fatalf("reused block kept stale contents: %v", got)
	}
	if fs.Next(b) != NilBlock {
		t.Fatal("reused block kept stale next pointer")
	}
	if fs.NumBlocks() != 1 {
		t.Fatalf("NumBlocks = %d", fs.NumBlocks())
	}
}

// TestFileStoreWriteMissPreservesNext is the regression test for the
// chain-corruption bug: a whole-block write to a block whose frame has
// been evicted must not clobber the on-disk overflow-chain pointer.
// MemStore keeps next across WriteBlock; FileStore must too.
func TestFileStoreWriteMissPreservesNext(t *testing.T) {
	fs, err := NewTempFileStore(4, 1) // single frame: every second access misses
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	a, b := fs.Alloc(), fs.Alloc()
	fs.WriteBlock(a, []Entry{{1, 1}})
	fs.SetNext(a, b)
	// Evict a by touching b, then overwrite a's contents on a cold frame.
	fs.WriteBlock(b, []Entry{{2, 2}})
	fs.WriteBlock(a, []Entry{{3, 3}})
	if got := fs.Next(a); got != b {
		t.Fatalf("write miss lost chain pointer: Next(a) = %d, want %d", got, b)
	}
	if got := fs.ReadBlock(a, nil); len(got) != 1 || got[0] != (Entry{3, 3}) {
		t.Fatalf("contents after overwrite: %v", got)
	}
}

// TestFileStoreHoleDecodesAsEmpty is the regression test for the
// sparse-hole bug: a block allocated but never flushed occupies a
// zero-filled file region once later blocks are written past it. Those
// zeros must decode as an empty block with a NIL chain pointer — with a
// naive encoding they decode as next=0, grafting phantom edges to block
// 0 into every chain and sending chain walks into cycles.
func TestFileStoreHoleDecodesAsEmpty(t *testing.T) {
	fs, err := NewTempFileStore(4, 1) // single frame: nothing lingers cached
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	hole := fs.Alloc()
	later := fs.Alloc()
	// Flush 'later' past the hole, leaving 'hole' as zero bytes on disk.
	fs.WriteBlock(later, []Entry{{9, 9}})
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := fs.Next(hole); got != NilBlock {
		t.Fatalf("hole decoded with chain pointer %d, want NilBlock", got)
	}
	if got := fs.ReadBlock(hole, nil); len(got) != 0 {
		t.Fatalf("hole decoded with entries: %v", got)
	}
	// A cold whole-block write to the hole must also see a nil header.
	fs.WriteBlock(later, []Entry{{9, 9}}) // evict hole's frame again
	fs.WriteBlock(hole, []Entry{{1, 1}})
	if got := fs.Next(hole); got != NilBlock {
		t.Fatalf("cold write to hole picked up chain pointer %d", got)
	}
}

func TestTempFileStoreRemovedOnClose(t *testing.T) {
	fs, err := NewTempFileStore(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := fs.Path()
	id := fs.Alloc()
	fs.WriteBlock(id, []Entry{{7, 7}})
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("temp file %s survived Close (err=%v)", path, err)
	}
	if err := fs.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestLatencyStoreWaits(t *testing.T) {
	ls := NewLatencyStore(NewMemStore(4), LatencyConfig{Seek: time.Millisecond})
	d := NewDiskOn(ls)
	id := d.Alloc()
	start := time.Now()
	d.Write(id, []Entry{{1, 1}})
	d.Read(id, nil)
	d.Read(id, nil)
	elapsed := time.Since(start)
	if ls.DelayedOps() != 3 {
		t.Fatalf("DelayedOps = %d, want 3", ls.DelayedOps())
	}
	if ls.Waited() != 3*time.Millisecond {
		t.Fatalf("Waited = %v, want 3ms", ls.Waited())
	}
	if elapsed < 3*time.Millisecond {
		t.Fatalf("elapsed %v < injected 3ms", elapsed)
	}
	// Header and allocator operations stay free.
	d.Next(id)
	d.Free(id)
	if ls.DelayedOps() != 3 {
		t.Fatalf("free operations were delayed: %d", ls.DelayedOps())
	}
}

// TestModelOnFileBackend runs the Disk invariants that the simulated
// backend's tests cover — write-back legality, capacity, counter math —
// over the file backend, confirming Disk semantics are backend-independent.
func TestModelOnFileBackend(t *testing.T) {
	fs, err := NewTempFileStore(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	mo := NewModelOn(fs, 1024)
	defer mo.Close()
	d := mo.Disk
	id := d.Alloc()
	d.Write(id, []Entry{{1, 10}})
	buf := d.Read(id, nil)
	buf = append(buf, Entry{2, 20})
	d.WriteBack(id, buf)
	if c := d.Counters(); c.Reads != 1 || c.Writes != 1 || c.WriteBacks != 1 {
		t.Fatalf("counters %+v", c)
	}
	other := d.Alloc()
	d.Write(other, nil)
	d.Read(id, nil)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-order WriteBack did not panic on file backend")
			}
		}()
		d.WriteBack(other, nil)
	}()
}
