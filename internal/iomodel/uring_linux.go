//go:build linux && iouring

package iomodel

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// uringBuilt is true in binaries compiled with the iouring build tag.
const uringBuilt = true

// io_uring ABI constants (linux/io_uring.h). The raw-syscall
// implementation keeps the module dependency-free: setup and enter are
// plain syscalls, the rings are three mmaps of the ring fd.
const (
	sysIOURingSetup = 425
	sysIOURingEnter = 426

	ioringOffSQRing = 0
	ioringOffCQRing = 0x8000000
	ioringOffSQEs   = 0x10000000

	ioringEnterGetevents = 1

	// IORING_OP_WRITE: pwrite semantics — fd, buffer address, length,
	// file offset. Kernel >= 5.6; the zero-length probe write at setup
	// verifies support and falls back to the pwrite pool where absent.
	opWrite = 23

	sqeSize = 64
	cqeSize = 16
)

// uringParams mirrors struct io_uring_params (120 bytes).
type uringParams struct {
	sqEntries    uint32
	cqEntries    uint32
	flags        uint32
	sqThreadCPU  uint32
	sqThreadIdle uint32
	features     uint32
	wqFd         uint32
	resv         [3]uint32
	sqOff        sqringOffsets
	cqOff        cqringOffsets
}

type sqringOffsets struct {
	head, tail, ringMask, ringEntries uint32
	flags, dropped, array, resv1      uint32
	resv2                             uint64
}

type cqringOffsets struct {
	head, tail, ringMask, ringEntries uint32
	overflow, cqes, flags, resv1      uint32
	resv2                             uint64
}

// uring is the io_uring submission backend behind a FileStore: one
// ring per store, replacing the pwrite worker pool. Unlike the pool it
// runs no goroutines and takes no locks — every method executes on the
// store's goroutine; the kernel provides the concurrency. SQEs for
// flush runs accumulate in the submission queue and are pushed with
// one io_uring_enter at the next barrier (drain), when the queue
// fills, or when an ordering rule needs a completion — so a checkpoint
// submits its runs in batches instead of one syscall each, which is
// where the queue-depth win over the pool comes from on a real device.
//
// The pool's two ordering guarantees carry over unchanged: submit
// blocks (reaping completions) while an earlier in-flight write
// overlaps any of the run's physical slots, and waitSlot blocks a
// pread until the write covering its slot has completed. Errors are
// sticky; once a write has failed, later submits drop their jobs
// unwritten (the same crash-loss semantics as the pool) and the drop
// count joins the error at drain. Short writes are completed
// synchronously with a pwrite through the store's BlockFile.
type uring struct {
	s      *FileStore
	ringFd int
	fileFd int32 // target file descriptor for every SQE

	sqMem, cqMem, sqeMem []byte // mmaps; unmapped at shutdown

	sqHead, sqTail *uint32 // kernel-shared ring indices (atomic access)
	sqMask         uint32
	sqArray        []uint32
	depth          uint32

	cqHead, cqTail *uint32
	cqMask         uint32
	cqeOff         uint32 // CQE array offset inside the CQ mapping

	queued   uint32             // SQEs placed since the last enter
	ops      map[uint64]wbJob   // in-flight writes by user_data token
	slots    map[int64]struct{} // physical slots covered by in-flight writes
	nextTok  uint64
	firstErr error
	dropped  int
	bufs     [][]byte // run-buffer free list, as in writeback
	bufBytes int
	align    int
}

// newURing sets up a ring of the given depth against the store's raw
// fd and probes it with a zero-length write, so opcode support is
// verified before the store commits to the backend. Any failure —
// setup refused (io_uring disabled or absent), mmap failure, probe
// error — returns an error and the caller falls back to the pwrite
// pool.
func newURing(s *FileStore, depth uint32) (ioSubmitter, error) {
	if s.osf == nil {
		return nil, fmt.Errorf("iomodel: io_uring needs the store's raw fd")
	}
	var p uringParams
	rfd, _, errno := syscall.Syscall(sysIOURingSetup, uintptr(depth), uintptr(unsafe.Pointer(&p)), 0)
	if errno != 0 {
		return nil, fmt.Errorf("iomodel: io_uring_setup: %w", errno)
	}
	u := &uring{
		s:        s,
		ringFd:   int(rfd),
		fileFd:   int32(s.osf.Fd()),
		depth:    p.sqEntries,
		ops:      make(map[uint64]wbJob, p.sqEntries),
		slots:    make(map[int64]struct{}, 4*p.sqEntries),
		bufBytes: int(maxRunBytes),
		align:    int(s.sector),
	}
	if sb := int(s.slotBytes); sb > u.bufBytes {
		u.bufBytes = sb
	}
	fail := func(err error) (ioSubmitter, error) {
		u.unmap()
		syscall.Close(u.ringFd)
		return nil, err
	}
	var err error
	sqSize := int(p.sqOff.array + p.sqEntries*4)
	if u.sqMem, err = syscall.Mmap(u.ringFd, ioringOffSQRing, sqSize,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE); err != nil {
		return fail(fmt.Errorf("iomodel: mmap sq ring: %w", err))
	}
	cqSize := int(p.cqOff.cqes + p.cqEntries*cqeSize)
	if u.cqMem, err = syscall.Mmap(u.ringFd, ioringOffCQRing, cqSize,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE); err != nil {
		return fail(fmt.Errorf("iomodel: mmap cq ring: %w", err))
	}
	if u.sqeMem, err = syscall.Mmap(u.ringFd, ioringOffSQEs, int(p.sqEntries)*sqeSize,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE); err != nil {
		return fail(fmt.Errorf("iomodel: mmap sqes: %w", err))
	}
	u.sqHead = (*uint32)(unsafe.Pointer(&u.sqMem[p.sqOff.head]))
	u.sqTail = (*uint32)(unsafe.Pointer(&u.sqMem[p.sqOff.tail]))
	u.sqMask = *(*uint32)(unsafe.Pointer(&u.sqMem[p.sqOff.ringMask]))
	u.sqArray = unsafe.Slice((*uint32)(unsafe.Pointer(&u.sqMem[p.sqOff.array])), p.sqEntries)
	u.cqHead = (*uint32)(unsafe.Pointer(&u.cqMem[p.cqOff.head]))
	u.cqTail = (*uint32)(unsafe.Pointer(&u.cqMem[p.cqOff.tail]))
	u.cqMask = *(*uint32)(unsafe.Pointer(&u.cqMem[p.cqOff.ringMask]))
	u.cqeOff = p.cqOff.cqes

	// Probe: a zero-length write (pwrite(fd, NULL, 0) == 0 everywhere
	// the opcode exists) round-trips the whole submit/enter/reap
	// machinery. -EINVAL here means the kernel predates IORING_OP_WRITE.
	u.placeSQE(wbJob{})
	if err := u.enter(1); err != nil {
		return fail(fmt.Errorf("iomodel: io_uring probe enter: %w", err))
	}
	u.reap()
	if len(u.ops) != 0 || u.firstErr != nil {
		return fail(fmt.Errorf("iomodel: io_uring probe write: %w", u.firstErr))
	}
	// The probe charged the ring counters; the store's stats should
	// meter real work only.
	u.s.stats.UringEnters, u.s.stats.UringSQEs = 0, 0
	return u, nil
}

func (u *uring) unmap() {
	for _, m := range [][]byte{u.sqMem, u.cqMem, u.sqeMem} {
		if m != nil {
			syscall.Munmap(m)
		}
	}
	u.sqMem, u.cqMem, u.sqeMem = nil, nil, nil
}

// getBuf returns an n-byte run buffer, recycled from a completed job
// when one is free. Store-goroutine only.
func (u *uring) getBuf(n int) []byte {
	for k := len(u.bufs); k > 0; k-- {
		buf := u.bufs[k-1]
		u.bufs = u.bufs[:k-1]
		if cap(buf) >= n {
			return buf[:n]
		}
	}
	return alignedBytes(n, u.bufBytes, u.align)
}

// submit queues one encoded run on the ring. Per-slot ordering is the
// pool's rule verbatim: while an earlier in-flight write overlaps any
// of the run's slots, push the queue and reap completions until it no
// longer does. A full ring likewise waits out one completion. The SQE
// itself is only placed — io_uring_enter is deferred to the next
// barrier or forced wait, batching a checkpoint's runs into a handful
// of syscalls.
func (u *uring) submit(job wbJob) {
	if u.firstErr != nil {
		// Crash-loss semantics after a failure: the job is dropped
		// unwritten, counted, and reported at the barrier.
		u.dropped++
		u.bufs = append(u.bufs, job.buf[:0])
		return
	}
	for u.overlaps(job.first, job.n) || uint32(len(u.ops)) >= u.depth {
		u.waitOne()
		if u.firstErr != nil {
			u.dropped++
			u.bufs = append(u.bufs, job.buf[:0])
			return
		}
	}
	u.placeSQE(job)
}

// placeSQE writes one IORING_OP_WRITE entry into the submission queue
// and records the job as in flight. The job's buffer is referenced by
// u.ops until its CQE arrives: the kernel reads it asynchronously, and
// Go's non-moving heap keeps the address stable.
func (u *uring) placeSQE(job wbJob) {
	tok := u.nextTok
	u.nextTok++
	u.ops[tok] = job
	for i := 0; i < job.n; i++ {
		u.slots[job.first+int64(i)] = struct{}{}
	}
	tail := *u.sqTail // ours to write; the kernel only reads it
	idx := tail & u.sqMask
	sqe := u.sqeMem[int(idx)*sqeSize : (int(idx)+1)*sqeSize]
	clear(sqe)
	sqe[0] = opWrite
	binary.LittleEndian.PutUint32(sqe[4:8], uint32(u.fileFd))
	binary.LittleEndian.PutUint64(sqe[8:16], uint64(job.off))
	if len(job.buf) > 0 {
		binary.LittleEndian.PutUint64(sqe[16:24], uint64(uintptr(unsafe.Pointer(&job.buf[0]))))
	}
	binary.LittleEndian.PutUint32(sqe[24:28], uint32(len(job.buf)))
	binary.LittleEndian.PutUint64(sqe[32:40], tok)
	u.sqArray[idx] = idx
	// Publish: the kernel must observe the SQE contents before the new
	// tail. Go's atomics are sequentially consistent, which subsumes
	// the release ordering the ABI asks for.
	atomic.StoreUint32(u.sqTail, tail+1)
	u.queued++
	u.s.stats.UringSQEs++
}

// enter pushes every queued SQE to the kernel and, with minComplete >
// 0, blocks until that many completions are available. An enter
// failure is fatal for the ring's in-flight writes: they are recorded
// as the sticky error and forgotten, so ordering waits cannot hang on
// completions that will never arrive.
func (u *uring) enter(minComplete uint32) error {
	for {
		var flags uintptr
		if minComplete > 0 {
			flags = ioringEnterGetevents
		}
		n, _, errno := syscall.Syscall6(sysIOURingEnter, uintptr(u.ringFd),
			uintptr(u.queued), uintptr(minComplete), flags, 0, 0)
		if errno == syscall.EINTR {
			continue
		}
		if errno != 0 {
			err := fmt.Errorf("iomodel: io_uring_enter: %w", errno)
			if u.firstErr == nil {
				u.firstErr = err
			}
			u.queued = 0
			clear(u.ops)
			clear(u.slots)
			return err
		}
		u.queued -= uint32(n)
		u.s.stats.UringEnters++
		return nil
	}
}

// reap consumes every available CQE: resolve the op, release its
// slots, complete short writes synchronously, record errors sticky,
// recycle the buffer.
func (u *uring) reap() {
	head := *u.cqHead // only this side writes the head
	tail := atomic.LoadUint32(u.cqTail)
	for ; head != tail; head++ {
		off := int(head&u.cqMask) * cqeSize
		cqe := u.cqMem[int(u.cqeOff)+off:]
		tok := binary.LittleEndian.Uint64(cqe[0:8])
		res := int32(binary.LittleEndian.Uint32(cqe[8:12]))
		job, ok := u.ops[tok]
		if !ok {
			continue // forgotten after an enter failure
		}
		delete(u.ops, tok)
		for i := 0; i < job.n; i++ {
			delete(u.slots, job.first+int64(i))
		}
		if res < 0 {
			if u.firstErr == nil {
				u.firstErr = fmt.Errorf("iomodel: write blocks %d..%d: %w",
					job.id0, job.id1, syscall.Errno(-res))
			}
		} else if int(res) < len(job.buf) {
			// Short write: finish the tail synchronously through the
			// BlockFile seam so the run lands whole before its slots are
			// considered settled.
			if _, err := u.s.f.WriteAt(job.buf[res:], job.off+int64(res)); err != nil && u.firstErr == nil {
				u.firstErr = fmt.Errorf("iomodel: write blocks %d..%d (short-write tail): %w",
					job.id0, job.id1, err)
			}
		}
		if job.buf != nil {
			u.bufs = append(u.bufs, job.buf[:0])
		}
	}
	atomic.StoreUint32(u.cqHead, head)
}

// overlaps reports whether any slot of [first, first+n) has an
// in-flight write.
func (u *uring) overlaps(first int64, n int) bool {
	for i := 0; i < n; i++ {
		if _, busy := u.slots[first+int64(i)]; busy {
			return true
		}
	}
	return false
}

// waitOne pushes queued SQEs and blocks for at least one completion,
// then reaps everything available.
func (u *uring) waitOne() {
	if len(u.ops) == 0 {
		return
	}
	if u.enter(1) != nil {
		return
	}
	u.reap()
}

// waitSlot blocks until no in-flight write covers physical slot phys,
// so a following pread observes the completed write.
func (u *uring) waitSlot(phys int64) {
	for {
		if _, busy := u.slots[phys]; !busy {
			return
		}
		u.waitOne()
	}
}

// drain pushes and completes everything in flight — the flush barrier
// where batched submission actually happens — and returns the sticky
// first error, annotated with the number of runs dropped behind it.
func (u *uring) drain() error {
	for len(u.ops) > 0 {
		u.waitOne()
	}
	if u.firstErr != nil && u.dropped > 0 {
		return fmt.Errorf("%w (%d queued runs dropped after the failure)", u.firstErr, u.dropped)
	}
	return u.firstErr
}

// shutdown drains the ring and releases it. The target file stays
// open; the store owns it.
func (u *uring) shutdown() error {
	err := u.drain()
	u.unmap()
	syscall.Close(u.ringFd)
	return err
}
