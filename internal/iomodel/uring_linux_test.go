//go:build linux && iouring

package iomodel

import "testing"

// newUringStore builds a temp store with an engaged ring, skipping
// where the kernel refuses io_uring (sysctl io_uring_disabled,
// seccomp, pre-5.6 kernels).
func newUringStore(t *testing.T, b, cacheBlocks int) *FileStore {
	t.Helper()
	s, err := NewTempFileStoreIO(b, cacheBlocks, IOOptions{Mode: IOModeUring})
	if err != nil {
		t.Fatal(err)
	}
	s.ConfigureSubmission(IOModeUring, 2)
	if !s.uringOn {
		s.Close()
		t.Skipf("io_uring probe failed on this kernel (fallbacks=%d)", s.Stats().UringFallbacks)
	}
	return s
}

// TestUringRoundTrip pushes enough blocks through the ring to wrap the
// submission queue several times and force barrier batching, then
// reads everything back through real preads.
func TestUringRoundTrip(t *testing.T) {
	s := newUringStore(t, 8, 32)
	defer s.Close()
	const blocks = 1500 // >> uringDepth and >> pool capacity
	for i := 0; i < blocks; i++ {
		id := s.Alloc()
		s.WriteBlock(id, []Entry{{Key: uint64(i), Val: uint64(i) * 7}})
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < blocks; i++ {
		got := s.ReadBlock(BlockID(i), nil)
		if len(got) != 1 || got[0].Key != uint64(i) || got[0].Val != uint64(i)*7 {
			t.Fatalf("block %d: got %v", i, got)
		}
	}
	st := s.Stats()
	if st.UringSQEs == 0 || st.UringEnters == 0 {
		t.Fatalf("ring not metered: %+v", st)
	}
	t.Logf("ring: %d SQEs in %d enters (batch %.1f), effective mode %s",
		st.UringSQEs, st.UringEnters, float64(st.UringSQEs)/float64(st.UringEnters), s.EffectiveIOMode())
}

// TestUringSlotOrdering rewrites the same small set of blocks across
// many barriers: per-slot ordering and read-after-write must keep the
// last write visible, exactly as with the pwrite pool.
func TestUringSlotOrdering(t *testing.T) {
	s := newUringStore(t, 4, 4)
	defer s.Close()
	ids := make([]BlockID, 8)
	for i := range ids {
		ids[i] = s.Alloc()
	}
	for round := 0; round < 200; round++ {
		for i, id := range ids {
			s.WriteBlock(id, []Entry{{Key: uint64(round), Val: uint64(i)}})
		}
		if err := s.FlushDirty(); err != nil {
			t.Fatal(err)
		}
		// Immediate read-back while writes may still be in flight:
		// waitSlot must order the pread after the covering write.
		for i, id := range ids {
			got := s.ReadBlock(id, nil)
			if len(got) != 1 || got[0].Key != uint64(round) || got[0].Val != uint64(i) {
				t.Fatalf("round %d block %d: got %v", round, i, got)
			}
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
}

// TestUringDurable runs the checkpoint-shaped cycle (write, sync,
// AllocState, close, reopen, restore, verify) through a ring-backed
// durable store.
func TestUringDurable(t *testing.T) {
	path := t.TempDir() + "/blocks"
	s, err := OpenFileStoreIO(path, 4, 8, nil, IOOptions{Mode: IOModeUring})
	if err != nil {
		t.Fatal(err)
	}
	s.ConfigureSubmission(IOModeUring, 2)
	if !s.uringOn {
		s.Close()
		t.Skip("io_uring probe failed on this kernel")
	}
	const blocks = 64
	for i := 0; i < blocks; i++ {
		id := s.Alloc()
		s.WriteBlock(id, []Entry{{Key: uint64(i)}})
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	nslots, free, mapping := s.AllocState()
	sector := s.SectorSize()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFileStoreIO(path, 4, 8, nil, IOOptions{Mode: IOModeUring, Sector: sector})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s2.ConfigureSubmission(IOModeUring, 2)
	if err := s2.RestoreAllocState(nslots, free, mapping); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < blocks; i++ {
		if got := s2.ReadBlock(BlockID(i), nil); len(got) != 1 || got[0].Key != uint64(i) {
			t.Fatalf("block %d after reopen: got %v", i, got)
		}
	}
}
