//go:build !linux || !iouring

package iomodel

import "errors"

// uringBuilt is false in binaries compiled without the iouring build
// tag (or off Linux): IOModeUring falls back to the pwrite worker
// pool, recorded in FileStats.UringFallbacks.
const uringBuilt = false

var errURingUnavailable = errors.New("iomodel: io_uring unavailable (built without the iouring tag, or not Linux)")

func newURing(s *FileStore, depth uint32) (ioSubmitter, error) {
	return nil, errURingUnavailable
}
