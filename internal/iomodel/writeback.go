package iomodel

import (
	"fmt"
	"sync"
)

// writeback is the asynchronous I/O submission engine behind a
// FileStore: a bounded pool of workers that issue the store's encoded
// flush runs as concurrent pwrites, keeping the device queue full
// instead of serializing every run behind the previous one's
// completion. The store remains single-threaded — encoding happens on
// the store's goroutine at submit time into a pool-owned buffer, so
// workers never touch frames — and the pool provides the two ordering
// guarantees the store's correctness needs:
//
//   - per-slot write ordering: submit blocks while an earlier write to
//     any of the run's physical slots is still in flight, so two writes
//     of the same slot can never land out of order;
//   - read-after-write: waitSlot blocks a pread of a slot until the
//     in-flight write covering it has completed.
//
// Errors are sticky and surface at the drain barrier (Fsync/Close),
// matching the store's crash-like loss semantics for failed writes.
// A store wrapped by a Crasher never uses a pool: crash injection
// counts write syscalls, so write order must stay deterministic.
type writeback struct {
	f    BlockFile
	jobs chan wbJob
	wg   sync.WaitGroup

	mu       sync.Mutex
	done     sync.Cond
	inflight map[int64]struct{} // physical slots with a queued or in-progress write
	pending  int                // submitted jobs not yet completed
	firstErr error              // first write failure, sticky
	dropped  int                // jobs discarded unwritten after the first failure
	bufs     [][]byte           // run-buffer free list, recycled across jobs
	bufBytes int                // capacity of each pooled buffer
	align    int                // buffer base alignment (0 = none; sector under O_DIRECT)
}

// wbJob is one submitted pwrite: an encoded run of n frames occupying
// adjacent physical slots [first, first+n), at byte offset off.
type wbJob struct {
	buf      []byte
	off      int64
	first    int64
	n        int
	id0, id1 BlockID // logical block range, for error messages
}

// newWriteback starts a pool of workers issuing writes against f.
// bufBytes is the buffer capacity per job (the store's run bound);
// align > 0 base-aligns every pooled buffer (O_DIRECT stores).
func newWriteback(f BlockFile, workers, bufBytes, align int) *writeback {
	w := &writeback{
		f:        f,
		jobs:     make(chan wbJob, 2*workers),
		inflight: make(map[int64]struct{}, 4*workers),
		bufBytes: bufBytes,
		align:    align,
	}
	w.done.L = &w.mu
	w.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go w.run()
	}
	return w
}

// run is one worker: issue the pwrite, record the outcome, release the
// job's slots and buffer, and wake every waiter. Once a write has
// failed, jobs still queued behind it are dropped unwritten — the file
// stops changing at the first failure, exactly as in the crash the
// sticky error models, instead of acquiring whichever later runs
// happened to be queued on other workers — and the drop count joins
// the error at the drain barrier.
func (w *writeback) run() {
	defer w.wg.Done()
	for job := range w.jobs {
		w.mu.Lock()
		failed := w.firstErr != nil
		w.mu.Unlock()
		var err error
		if !failed {
			_, err = w.f.WriteAt(job.buf, job.off)
		}
		w.mu.Lock()
		if failed {
			w.dropped++
		}
		if err != nil && w.firstErr == nil {
			w.firstErr = fmt.Errorf("iomodel: write blocks %d..%d: %w", job.id0, job.id1, err)
		}
		for i := 0; i < job.n; i++ {
			delete(w.inflight, job.first+int64(i))
		}
		w.pending--
		w.bufs = append(w.bufs, job.buf[:0])
		w.done.Broadcast()
		w.mu.Unlock()
	}
}

// getBuf returns an n-byte run buffer, recycled from a completed job
// when one is free. Store-goroutine only.
func (w *writeback) getBuf(n int) []byte {
	w.mu.Lock()
	if k := len(w.bufs); k > 0 {
		buf := w.bufs[k-1]
		w.bufs = w.bufs[:k-1]
		w.mu.Unlock()
		return buf[:n]
	}
	w.mu.Unlock()
	return alignedBytes(n, w.bufBytes, w.align)
}

// submit queues one encoded run for writing. It blocks while an earlier
// in-flight write overlaps any of the run's slots (per-slot ordering),
// and while the job queue is full (backpressure). Store-goroutine only.
func (w *writeback) submit(job wbJob) {
	w.mu.Lock()
	for w.overlaps(job.first, job.n) {
		w.done.Wait()
	}
	for i := 0; i < job.n; i++ {
		w.inflight[job.first+int64(i)] = struct{}{}
	}
	w.pending++
	w.mu.Unlock()
	w.jobs <- job
}

// overlaps reports whether any slot of [first, first+n) has an
// in-flight write. Callers hold w.mu.
func (w *writeback) overlaps(first int64, n int) bool {
	for i := 0; i < n; i++ {
		if _, busy := w.inflight[first+int64(i)]; busy {
			return true
		}
	}
	return false
}

// waitSlot blocks until no in-flight write covers physical slot phys,
// so a following pread observes the completed write.
func (w *writeback) waitSlot(phys int64) {
	w.mu.Lock()
	for {
		if _, busy := w.inflight[phys]; !busy {
			break
		}
		w.done.Wait()
	}
	w.mu.Unlock()
}

// drain blocks until every submitted write has completed and returns
// the sticky first error, annotated with the number of queued runs
// dropped unwritten behind it. This is the barrier Fsync and Close
// join asynchronous errors at.
func (w *writeback) drain() error {
	w.mu.Lock()
	for w.pending > 0 {
		w.done.Wait()
	}
	err := w.firstErr
	dropped := w.dropped
	w.mu.Unlock()
	if err != nil && dropped > 0 {
		return fmt.Errorf("%w (%d queued runs dropped after the failure)", err, dropped)
	}
	return err
}

// shutdown drains outstanding writes and stops the workers.
func (w *writeback) shutdown() error {
	err := w.drain()
	close(w.jobs)
	w.wg.Wait()
	return err
}
