package iomodel

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// fillStore writes n fresh blocks of distinct content through st.
func fillStore(t *testing.T, st *FileStore, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		id := st.Alloc()
		st.WriteBlock(id, []Entry{{Key: uint64(i), Val: uint64(i) * 3}})
	}
}

// verifyStore checks the n blocks written by fillStore.
func verifyStore(t *testing.T, st *FileStore, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		got := st.ReadBlock(BlockID(i), nil)
		if len(got) != 1 || got[0].Key != uint64(i) || got[0].Val != uint64(i)*3 {
			t.Fatalf("block %d = %v, want [{%d %d}]", i, got, i, i*3)
		}
	}
}

// TestWritebackRoundTrip drives a store with an async pool through
// write/flush/evict/read cycles far past the pool capacity and checks
// every block's content — under -race this also exercises the
// worker/submitter/reader synchronization.
func TestWritebackRoundTrip(t *testing.T) {
	for _, durable := range []bool{false, true} {
		t.Run(fmt.Sprintf("durable=%v", durable), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wb.blocks")
			var st *FileStore
			var err error
			if durable {
				st, err = OpenFileStore(path, 4, 32, nil)
			} else {
				st, err = NewFileStore(path, 4, 32)
			}
			if err != nil {
				t.Fatal(err)
			}
			st.SetWritebackWorkers(4)
			const blocks = 400 // >> 32-frame pool: constant eviction traffic
			fillStore(t, st, blocks)
			if err := st.Sync(); err != nil {
				t.Fatal(err)
			}
			// Rewrite half the blocks, interleaved with reads of the other
			// half: reads must wait out in-flight writes to their slots.
			for i := 0; i < blocks; i += 2 {
				st.WriteBlock(BlockID(i), []Entry{{Key: uint64(i), Val: uint64(i) * 3}})
				if got := st.ReadBlock(BlockID(blocks-1-i), nil); len(got) != 1 {
					t.Fatalf("read during writeback: block %d = %v", blocks-1-i, got)
				}
			}
			if err := st.Sync(); err != nil {
				t.Fatal(err)
			}
			verifyStore(t, st, blocks)
			st2 := st.Stats()
			if st2.WriteSyscalls == 0 || st2.FlushedFrames < blocks {
				t.Fatalf("stats did not account async writes: %+v", st2)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestWritebackBarrierJoinsErrors checks that an asynchronous write
// failure surfaces at the next Fsync barrier and sticks.
func TestWritebackBarrierJoinsErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wb.blocks")
	st, err := NewFileStore(path, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	st.SetWritebackWorkers(2)
	fillStore(t, st, 8)
	// Close the fd out from under the store: every subsequent pwrite
	// fails, modeling a dying device.
	st.f.Close()
	if err := st.FlushDirty(); err != nil {
		t.Fatalf("FlushDirty reported synchronously, want deferral to the barrier: %v", err)
	}
	if err := st.Fsync(); err == nil {
		t.Fatal("Fsync acked despite failed async writes")
	}
	if st.Failed() == nil {
		t.Fatal("write failure did not stick")
	}
	if err := st.Fsync(); err == nil {
		t.Fatal("second Fsync acked after the first reported a failure")
	}
	st.Close()
}

// gateFile is a BlockFile stub whose first WriteAt blocks until the
// gate opens and then fails; it counts every write attempt. It lets a
// test pile jobs up behind a failing one deterministically.
type gateFile struct {
	gate     chan struct{}
	mu       sync.Mutex
	attempts int
}

func (g *gateFile) WriteAt(p []byte, off int64) (int, error) {
	g.mu.Lock()
	g.attempts++
	first := g.attempts == 1
	g.mu.Unlock()
	if first {
		<-g.gate
		return 0, errors.New("injected device failure")
	}
	return len(p), nil
}

func (g *gateFile) writeAttempts() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.attempts
}

func (g *gateFile) ReadAt(p []byte, off int64) (int, error) { return 0, io.EOF }
func (g *gateFile) Write(p []byte) (int, error)             { return len(p), nil }
func (g *gateFile) Sync() error                             { return nil }
func (g *gateFile) Close() error                            { return nil }
func (g *gateFile) Truncate(int64) error                    { return nil }
func (g *gateFile) Name() string                            { return "gate" }

// TestWritebackDrainDropsQueuedAfterFailure covers a worker failing
// mid-barrier with jobs still queued behind it: the queued jobs must
// be dropped unwritten (the file stops changing at the first failure,
// matching the synchronous path's crash-loss semantics), and drain
// must join the drop count onto the sticky error instead of
// deadlocking or silently writing past the failure.
func TestWritebackDrainDropsQueuedAfterFailure(t *testing.T) {
	g := &gateFile{gate: make(chan struct{})}
	w := newWriteback(g, 1, 4096, 0)
	defer func() {
		// shutdown re-reports the sticky error; the pool must still wind
		// down cleanly after a failure.
		if err := w.shutdown(); err == nil {
			t.Error("shutdown lost the sticky error")
		}
	}()

	// Job A: the single worker picks it up and blocks inside WriteAt.
	// Jobs B and C queue behind it (channel capacity 2*workers = 2).
	for i := 0; i < 3; i++ {
		buf := w.getBuf(64)
		w.submit(wbJob{buf: buf, off: int64(i) * 64, first: int64(i), n: 1, id0: BlockID(i), id1: BlockID(i)})
	}
	close(g.gate) // A fails now; B and C are still queued

	err := w.drain()
	if err == nil {
		t.Fatal("drain acked a barrier with a failed write")
	}
	if !strings.Contains(err.Error(), "2 queued runs dropped") {
		t.Fatalf("drain error does not join the dropped jobs: %v", err)
	}
	if got := g.writeAttempts(); got != 1 {
		t.Fatalf("%d writes reached the file, want 1: queued jobs must not write after a failure", got)
	}
	// The pool must be fully settled: no inflight slots, buffers
	// recycled.
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.inflight) != 0 || w.pending != 0 {
		t.Fatalf("pool not settled after drain: inflight=%d pending=%d", len(w.inflight), w.pending)
	}
	if len(w.bufs) != 3 {
		t.Fatalf("buffers not recycled: %d pooled, want 3", len(w.bufs))
	}
}

// TestWritebackCrasherStaysSynchronous checks that a crash-injected
// store refuses the pool: the crash matrix counts write syscalls, so
// submission order must stay deterministic.
func TestWritebackCrasherStaysSynchronous(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wb.blocks")
	st, err := OpenFileStore(path, 4, 16, NewCrasher(CrashPlan{FailAfterWrites: 1 << 30}))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.SetWritebackWorkers(8)
	if st.wb != nil {
		t.Fatal("crash-injected store accepted an async writeback pool")
	}
}

// TestFsyncElided asserts the one-fsync-per-fd-per-barrier dedupe: a
// barrier with nothing written since the last fsync skips the syscall
// and counts the elision.
func TestFsyncElided(t *testing.T) {
	st, err := NewTempFileStore(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	fillStore(t, st, 4)
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	base := st.Stats()
	if base.Fsyncs != 1 || base.FsyncsElided != 0 {
		t.Fatalf("first barrier: Fsyncs=%d FsyncsElided=%d, want 1/0", base.Fsyncs, base.FsyncsElided)
	}
	// Nothing written since: the second and third barrier fsyncs are
	// deduped away.
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := st.Fsync(); err != nil {
		t.Fatal(err)
	}
	got := st.Stats()
	if got.Fsyncs != 1 || got.FsyncsElided != 2 {
		t.Fatalf("idle barriers: Fsyncs=%d FsyncsElided=%d, want 1/2", got.Fsyncs, got.FsyncsElided)
	}
	// New bytes re-arm the fsync.
	st.WriteBlock(0, []Entry{{Key: 9, Val: 9}})
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	got = st.Stats()
	if got.Fsyncs != 2 {
		t.Fatalf("dirty barrier: Fsyncs=%d, want 2", got.Fsyncs)
	}
}

// TestDeviceProfiles checks the fio-style presets: lookup, unknown
// names, and that sequential access is priced below seek-heavy access.
func TestDeviceProfiles(t *testing.T) {
	for _, name := range DeviceProfileNames() {
		cfg, err := DeviceProfile(name)
		if err != nil {
			t.Fatalf("profile %s: %v", name, err)
		}
		if cfg.Seek <= 0 || cfg.Transfer <= 0 || cfg.SeqTransfer <= 0 || cfg.QueueDepth <= 0 {
			t.Fatalf("profile %s is not fully specified: %+v", name, cfg)
		}
		if cfg.SeqTransfer > cfg.Seek+cfg.Transfer {
			t.Fatalf("profile %s prices sequential above random: %+v", name, cfg)
		}
	}
	if _, err := DeviceProfile("floppy"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

// TestDeviceProfileIO checks the kernel-bypass pricing of the presets:
// the direct modes shave software overhead off the transfer rates but
// never the device's seek, and uring deepens the absorbed queue.
func TestDeviceProfileIO(t *testing.T) {
	for _, name := range DeviceProfileNames() {
		base, _ := DeviceProfile(name)
		for _, mode := range []string{"", IOModeBuffered} {
			got, err := DeviceProfileIO(name, mode)
			if err != nil || got != base {
				t.Fatalf("%s/%q: %+v, %v; want the unchanged preset", name, mode, got, err)
			}
		}
		od, err := DeviceProfileIO(name, IOModeODirect)
		if err != nil {
			t.Fatal(err)
		}
		if od.Seek != base.Seek || od.Transfer >= base.Transfer || od.Transfer <= 0 ||
			od.SeqTransfer > base.SeqTransfer || od.SeqTransfer <= 0 || od.QueueDepth != base.QueueDepth {
			t.Fatalf("%s/odirect mispriced: base %+v, got %+v", name, base, od)
		}
		ur, err := DeviceProfileIO(name, IOModeUring)
		if err != nil {
			t.Fatal(err)
		}
		if ur.Transfer != od.Transfer || ur.QueueDepth != 2*base.QueueDepth {
			t.Fatalf("%s/uring mispriced: odirect %+v, got %+v", name, od, ur)
		}
	}
	if _, err := DeviceProfileIO("nvme", "dax"); err == nil {
		t.Fatal("unknown io mode accepted")
	}
}

// TestLatencyStoreSequentialPricing checks that adjacent-block access
// hits the sequential rate and is counted.
func TestLatencyStoreSequentialPricing(t *testing.T) {
	ls := NewLatencyStore(NewMemStore(4), LatencyConfig{
		Seek: 2 * time.Millisecond, Transfer: time.Millisecond,
		SeqTransfer: 10 * time.Microsecond, QueueDepth: 2,
	})
	d := NewDiskOn(ls)
	ids := make([]BlockID, 8)
	for i := range ids {
		ids[i] = d.Alloc()
	}
	for _, id := range ids {
		d.Write(id, []Entry{{Key: uint64(id)}})
	}
	seq := ls.SeqOps()
	if seq < int64(len(ids)-1) {
		t.Fatalf("sequential writes priced sequentially: SeqOps=%d, want >= %d", seq, len(ids)-1)
	}
	// A strided pass breaks adjacency: no new sequential ops.
	for i := len(ids) - 1; i >= 0; i -= 2 {
		d.Read(ids[i], nil)
	}
	if got := ls.SeqOps(); got != seq {
		t.Fatalf("strided reads counted as sequential: SeqOps=%d, want %d", got, seq)
	}
	if ls.Waited() == 0 || ls.DelayedOps() == 0 {
		t.Fatal("latency store injected no delay")
	}
}
