package iomodel

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"
)

// fillStore writes n fresh blocks of distinct content through st.
func fillStore(t *testing.T, st *FileStore, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		id := st.Alloc()
		st.WriteBlock(id, []Entry{{Key: uint64(i), Val: uint64(i) * 3}})
	}
}

// verifyStore checks the n blocks written by fillStore.
func verifyStore(t *testing.T, st *FileStore, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		got := st.ReadBlock(BlockID(i), nil)
		if len(got) != 1 || got[0].Key != uint64(i) || got[0].Val != uint64(i)*3 {
			t.Fatalf("block %d = %v, want [{%d %d}]", i, got, i, i*3)
		}
	}
}

// TestWritebackRoundTrip drives a store with an async pool through
// write/flush/evict/read cycles far past the pool capacity and checks
// every block's content — under -race this also exercises the
// worker/submitter/reader synchronization.
func TestWritebackRoundTrip(t *testing.T) {
	for _, durable := range []bool{false, true} {
		t.Run(fmt.Sprintf("durable=%v", durable), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wb.blocks")
			var st *FileStore
			var err error
			if durable {
				st, err = OpenFileStore(path, 4, 32, nil)
			} else {
				st, err = NewFileStore(path, 4, 32)
			}
			if err != nil {
				t.Fatal(err)
			}
			st.SetWritebackWorkers(4)
			const blocks = 400 // >> 32-frame pool: constant eviction traffic
			fillStore(t, st, blocks)
			if err := st.Sync(); err != nil {
				t.Fatal(err)
			}
			// Rewrite half the blocks, interleaved with reads of the other
			// half: reads must wait out in-flight writes to their slots.
			for i := 0; i < blocks; i += 2 {
				st.WriteBlock(BlockID(i), []Entry{{Key: uint64(i), Val: uint64(i) * 3}})
				if got := st.ReadBlock(BlockID(blocks-1-i), nil); len(got) != 1 {
					t.Fatalf("read during writeback: block %d = %v", blocks-1-i, got)
				}
			}
			if err := st.Sync(); err != nil {
				t.Fatal(err)
			}
			verifyStore(t, st, blocks)
			st2 := st.Stats()
			if st2.WriteSyscalls == 0 || st2.FlushedFrames < blocks {
				t.Fatalf("stats did not account async writes: %+v", st2)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestWritebackBarrierJoinsErrors checks that an asynchronous write
// failure surfaces at the next Fsync barrier and sticks.
func TestWritebackBarrierJoinsErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wb.blocks")
	st, err := NewFileStore(path, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	st.SetWritebackWorkers(2)
	fillStore(t, st, 8)
	// Close the fd out from under the store: every subsequent pwrite
	// fails, modeling a dying device.
	st.f.Close()
	if err := st.FlushDirty(); err != nil {
		t.Fatalf("FlushDirty reported synchronously, want deferral to the barrier: %v", err)
	}
	if err := st.Fsync(); err == nil {
		t.Fatal("Fsync acked despite failed async writes")
	}
	if st.Failed() == nil {
		t.Fatal("write failure did not stick")
	}
	if err := st.Fsync(); err == nil {
		t.Fatal("second Fsync acked after the first reported a failure")
	}
	st.Close()
}

// TestWritebackCrasherStaysSynchronous checks that a crash-injected
// store refuses the pool: the crash matrix counts write syscalls, so
// submission order must stay deterministic.
func TestWritebackCrasherStaysSynchronous(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wb.blocks")
	st, err := OpenFileStore(path, 4, 16, NewCrasher(CrashPlan{FailAfterWrites: 1 << 30}))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.SetWritebackWorkers(8)
	if st.wb != nil {
		t.Fatal("crash-injected store accepted an async writeback pool")
	}
}

// TestFsyncElided asserts the one-fsync-per-fd-per-barrier dedupe: a
// barrier with nothing written since the last fsync skips the syscall
// and counts the elision.
func TestFsyncElided(t *testing.T) {
	st, err := NewTempFileStore(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	fillStore(t, st, 4)
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	base := st.Stats()
	if base.Fsyncs != 1 || base.FsyncsElided != 0 {
		t.Fatalf("first barrier: Fsyncs=%d FsyncsElided=%d, want 1/0", base.Fsyncs, base.FsyncsElided)
	}
	// Nothing written since: the second and third barrier fsyncs are
	// deduped away.
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := st.Fsync(); err != nil {
		t.Fatal(err)
	}
	got := st.Stats()
	if got.Fsyncs != 1 || got.FsyncsElided != 2 {
		t.Fatalf("idle barriers: Fsyncs=%d FsyncsElided=%d, want 1/2", got.Fsyncs, got.FsyncsElided)
	}
	// New bytes re-arm the fsync.
	st.WriteBlock(0, []Entry{{Key: 9, Val: 9}})
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	got = st.Stats()
	if got.Fsyncs != 2 {
		t.Fatalf("dirty barrier: Fsyncs=%d, want 2", got.Fsyncs)
	}
}

// TestDeviceProfiles checks the fio-style presets: lookup, unknown
// names, and that sequential access is priced below seek-heavy access.
func TestDeviceProfiles(t *testing.T) {
	for _, name := range DeviceProfileNames() {
		cfg, err := DeviceProfile(name)
		if err != nil {
			t.Fatalf("profile %s: %v", name, err)
		}
		if cfg.Seek <= 0 || cfg.Transfer <= 0 || cfg.SeqTransfer <= 0 || cfg.QueueDepth <= 0 {
			t.Fatalf("profile %s is not fully specified: %+v", name, cfg)
		}
		if cfg.SeqTransfer > cfg.Seek+cfg.Transfer {
			t.Fatalf("profile %s prices sequential above random: %+v", name, cfg)
		}
	}
	if _, err := DeviceProfile("floppy"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

// TestLatencyStoreSequentialPricing checks that adjacent-block access
// hits the sequential rate and is counted.
func TestLatencyStoreSequentialPricing(t *testing.T) {
	ls := NewLatencyStore(NewMemStore(4), LatencyConfig{
		Seek: 2 * time.Millisecond, Transfer: time.Millisecond,
		SeqTransfer: 10 * time.Microsecond, QueueDepth: 2,
	})
	d := NewDiskOn(ls)
	ids := make([]BlockID, 8)
	for i := range ids {
		ids[i] = d.Alloc()
	}
	for _, id := range ids {
		d.Write(id, []Entry{{Key: uint64(id)}})
	}
	seq := ls.SeqOps()
	if seq < int64(len(ids)-1) {
		t.Fatalf("sequential writes priced sequentially: SeqOps=%d, want >= %d", seq, len(ids)-1)
	}
	// A strided pass breaks adjacency: no new sequential ops.
	for i := len(ids) - 1; i >= 0; i -= 2 {
		d.Read(ids[i], nil)
	}
	if got := ls.SeqOps(); got != seq {
		t.Fatalf("strided reads counted as sequential: SeqOps=%d, want %d", got, seq)
	}
	if ls.Waited() == 0 || ls.DelayedOps() == 0 {
		t.Fatal("latency store injected no delay")
	}
}
