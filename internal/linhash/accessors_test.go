package linhash

import (
	"testing"

	"extbuf/internal/workload"
	"extbuf/internal/xrand"
	"extbuf/internal/zones"
)

func TestAccessorsAndZoneView(t *testing.T) {
	model, tab := newTable(t, 8, 1)
	if tab.Disk() != model.Disk {
		t.Fatal("Disk accessor broken")
	}
	if tab.MemoryKeys() != nil {
		t.Fatal("MemoryKeys should be nil")
	}
	rng := xrand.New(3)
	keys := workload.Keys(rng, 400)
	for i, k := range keys {
		tab.Insert(k, uint64(i))
	}
	if sp := tab.SplitPointer(); sp < 0 || sp >= tab.NumBuckets() {
		t.Fatalf("split pointer %d out of range", sp)
	}
	if lf := tab.LoadFactor(); lf <= 0 || lf > 1 {
		t.Fatalf("load factor %v", lf)
	}
	rep := zones.Audit(tab, keys)
	if rep.M != 0 || rep.F+rep.S != 400 {
		t.Fatalf("audit: %+v", rep)
	}
	// Items in overflow chains form the slow zone; at the default 0.85
	// fill this is a modest fraction.
	if rep.SlowFraction() > 0.3 {
		t.Fatalf("slow fraction %.3f", rep.SlowFraction())
	}
	tab.Close()
	if model.Mem.Used() != 0 {
		t.Fatalf("Close left %d words", model.Mem.Used())
	}
}
