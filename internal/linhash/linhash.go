// Package linhash implements linear hashing (Litwin 1980), the second
// classical scheme the paper cites for maintaining the load factor of an
// external hash table at an extra amortized O(1/b) I/Os per insertion.
//
// Buckets split in a fixed round-robin order controlled by a split
// pointer rather than when they themselves overflow, so no directory is
// needed: the address function needs only the level L and split pointer
// p — O(1) words of memory, the cheapest possible f in the paper's
// framework. Buckets that overflow before their turn grow overflow
// chains, which is where the 1/2^Omega(b) query surcharge comes from.
//
// # Addressing
//
// With level L there are between 2^L and 2^(L+1) buckets. An item whose
// top L hash bits give index i < p (already split this round) uses L+1
// bits; otherwise L bits. This is the textbook scheme transposed to
// top-bit indexing so that splits refine buckets contiguously like every
// other structure in this repository.
package linhash

import (
	"fmt"

	"extbuf/internal/block"
	"extbuf/internal/hashfn"
	"extbuf/internal/iomodel"
)

// memoryWords is the charged in-memory footprint: level, split pointer,
// count, seed.
const memoryWords = 4

// Table is a linear hash table. Not safe for concurrent use.
type Table struct {
	d       *iomodel.Disk
	mem     *iomodel.Memory
	fn      hashfn.Fn
	heads   []iomodel.BlockID // bucket heads, indexed by split order
	level   uint
	split   int // next bucket to split, in [0, 2^level)
	n       int
	blocks  int
	maxLoad float64 // trigger for splits; default 0.85
	memRes  int64
}

// New returns a table starting with 2^initialLevel buckets.
func New(model *iomodel.Model, fn hashfn.Fn, initialLevel uint) (*Table, error) {
	if initialLevel > 28 {
		return nil, fmt.Errorf("linhash: initial level %d too large", initialLevel)
	}
	if err := model.Mem.Alloc(memoryWords); err != nil {
		return nil, fmt.Errorf("linhash: %w", err)
	}
	size := 1 << initialLevel
	t := &Table{
		d:       model.Disk,
		mem:     model.Mem,
		fn:      fn,
		heads:   make([]iomodel.BlockID, size),
		level:   initialLevel,
		blocks:  size,
		maxLoad: 0.85,
		memRes:  memoryWords,
	}
	for i := range t.heads {
		t.heads[i] = model.Disk.Alloc()
	}
	return t, nil
}

// SetMaxLoad sets the fill threshold that triggers a round-robin split.
func (t *Table) SetMaxLoad(maxLoad float64) { t.maxLoad = maxLoad }

// Len returns the number of stored entries.
func (t *Table) Len() int { return t.n }

// NumBuckets returns the current number of buckets.
func (t *Table) NumBuckets() int { return len(t.heads) }

// Level returns the current level L.
func (t *Table) Level() uint { return t.level }

// SplitPointer returns the next bucket index to split.
func (t *Table) SplitPointer() int { return t.split }

// Fill returns n / (b * buckets).
func (t *Table) Fill() float64 {
	return float64(t.n) / (float64(t.d.B()) * float64(len(t.heads)))
}

// LoadFactor returns ceil(n/b) over occupied blocks.
func (t *Table) LoadFactor() float64 {
	b := t.d.B()
	if t.blocks == 0 {
		return 0
	}
	return float64((t.n+b-1)/b) / float64(t.blocks)
}

// bucket computes the split-aware bucket index of key.
func (t *Table) bucket(key uint64) int {
	h := t.fn.Hash(key)
	i := int(hashfn.TopBits(h, t.level))
	if i < t.split {
		// Bucket i has already split this round; use one more bit.
		// Top-bit refinement maps it to 2i or 2i+1 in the (L+1)-bit
		// space; our heads slice stores the round's new buckets at
		// 2^level + i, so translate.
		j := int(hashfn.TopBits(h, t.level+1))
		if j == 2*i+1 {
			return 1<<t.level + i
		}
		return i
	}
	return i
}

// Insert stores (key, val), overwriting existing values, and returns the
// I/Os spent. A controlled split runs when the fill exceeds the
// threshold.
func (t *Table) Insert(key, val uint64) int {
	ios, grew, replaced := block.Insert(t.d, t.heads[t.bucket(key)], iomodel.Entry{Key: key, Val: val})
	if grew {
		t.blocks++
	}
	if !replaced {
		t.n++
	}
	if t.maxLoad > 0 && t.Fill() > t.maxLoad {
		ios += t.splitNext()
	}
	return ios
}

// splitNext splits the bucket at the split pointer, advancing the round.
func (t *Table) splitNext() int {
	i := t.split
	head := t.heads[i]
	var buf []iomodel.Entry
	buf, ios := block.Collect(t.d, head, buf)
	oldBlocks := block.Blocks(t.d, head)
	var lo, hi []iomodel.Entry
	for _, e := range buf {
		j := int(hashfn.TopBits(t.fn.Hash(e.Key), t.level+1))
		if j == 2*i+1 {
			hi = append(hi, e)
		} else {
			lo = append(lo, e)
		}
	}
	ios += block.Rewrite(t.d, head, lo)
	newHead, w := block.WriteChain(t.d, hi)
	ios += w
	t.heads = append(t.heads, newHead)
	loBlocks := block.Blocks(t.d, head)
	t.blocks += loBlocks + w - oldBlocks
	t.split++
	if t.split == 1<<t.level {
		// Round complete: reorder heads into the natural (L+1)-bit
		// order so the next round's split indices are again aligned.
		t.reorder()
		t.level++
		t.split = 0
	}
	return ios
}

// reorder rearranges heads from round layout [old 0..2^L-1, new 0..2^L-1]
// to interleaved (L+1)-bit order [old0, new0, old1, new1, ...], which is
// the top-bit bucket order at level L+1. Pure memory operation.
func (t *Table) reorder() {
	size := 1 << t.level
	out := make([]iomodel.BlockID, 2*size)
	for i := 0; i < size; i++ {
		out[2*i] = t.heads[i]
		out[2*i+1] = t.heads[size+i]
	}
	t.heads = out
}

// Lookup returns the value for key and the I/Os spent.
func (t *Table) Lookup(key uint64) (val uint64, ok bool, ios int) {
	return block.Find(t.d, t.heads[t.bucket(key)], key)
}

// Delete removes key, reporting presence and the I/Os spent. Linear
// hashing shrinks by reversing splits; for simplicity (and because the
// paper's workloads are insert-dominated) this implementation removes the
// entry and lets the fill drift down without merging.
func (t *Table) Delete(key uint64) (ok bool, ios int) {
	head := t.heads[t.bucket(key)]
	before := block.Blocks(t.d, head)
	ios, ok = block.Delete(t.d, head, key)
	if ok {
		t.n--
		t.blocks -= before - block.Blocks(t.d, head)
	}
	return ok, ios
}

// AddressOf returns the head block of key's bucket for the zones audit.
func (t *Table) AddressOf(key uint64) iomodel.BlockID {
	return t.heads[t.bucket(key)]
}

// MemoryKeys returns nil; only the two control words live in memory.
func (t *Table) MemoryKeys() []uint64 { return nil }

// Disk exposes the underlying disk for audits.
func (t *Table) Disk() *iomodel.Disk { return t.d }

// CheckInvariant verifies that every stored key is in the bucket its
// address function names (test hook, no I/O).
func (t *Table) CheckInvariant() error {
	for i, head := range t.heads {
		for id := head; id != iomodel.NilBlock; id = t.d.Next(id) {
			for _, e := range t.d.Peek(id) {
				if t.bucket(e.Key) != i {
					return fmt.Errorf("linhash: key %d stored in bucket %d, addressed to %d", e.Key, i, t.bucket(e.Key))
				}
			}
		}
	}
	return nil
}

// Close releases the table's memory reservation.
func (t *Table) Close() {
	t.mem.Release(t.memRes)
	t.memRes = 0
}
