package linhash

import (
	"testing"
	"testing/quick"

	"extbuf/internal/hashfn"
	"extbuf/internal/iomodel"
	"extbuf/internal/workload"
	"extbuf/internal/xrand"
)

func newTable(t *testing.T, b int, level uint) (*iomodel.Model, *Table) {
	t.Helper()
	model := iomodel.NewModel(b, 1<<20)
	tab, err := New(model, hashfn.NewIdeal(1), level)
	if err != nil {
		t.Fatal(err)
	}
	return model, tab
}

func TestInsertLookup(t *testing.T) {
	_, tab := newTable(t, 4, 1)
	rng := xrand.New(2)
	keys := workload.Keys(rng, 500)
	for i, k := range keys {
		tab.Insert(k, uint64(i))
	}
	if tab.Len() != 500 {
		t.Fatalf("Len = %d", tab.Len())
	}
	if err := tab.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		v, ok, _ := tab.Lookup(k)
		if !ok || v != uint64(i) {
			t.Fatalf("key %d lost", k)
		}
	}
	if tab.NumBuckets() <= 2 {
		t.Fatalf("table never split: %d buckets", tab.NumBuckets())
	}
}

func TestReplace(t *testing.T) {
	_, tab := newTable(t, 4, 1)
	tab.Insert(5, 1)
	tab.Insert(5, 2)
	if tab.Len() != 1 {
		t.Fatalf("Len = %d", tab.Len())
	}
	v, _, _ := tab.Lookup(5)
	if v != 2 {
		t.Fatalf("v = %d", v)
	}
}

func TestSplitRoundProgression(t *testing.T) {
	_, tab := newTable(t, 2, 1)
	rng := xrand.New(3)
	keys := workload.Keys(rng, 300)
	levelsSeen := map[uint]bool{}
	for i, k := range keys {
		tab.Insert(k, uint64(i))
		levelsSeen[tab.Level()] = true
		if err := tab.CheckInvariant(); err != nil {
			t.Fatalf("after insert %d (level %d, split %d): %v",
				i, tab.Level(), tab.SplitPointer(), err)
		}
	}
	if len(levelsSeen) < 3 {
		t.Fatalf("expected several level completions, saw %v", levelsSeen)
	}
	for i, k := range keys {
		v, ok, _ := tab.Lookup(k)
		if !ok || v != uint64(i) {
			t.Fatalf("key %d lost across rounds", k)
		}
	}
}

func TestFillControlled(t *testing.T) {
	_, tab := newTable(t, 8, 1)
	tab.SetMaxLoad(0.8)
	rng := xrand.New(5)
	for _, k := range workload.Keys(rng, 3000) {
		tab.Insert(k, 0)
	}
	if f := tab.Fill(); f > 0.85 {
		t.Fatalf("fill %.3f exceeds controlled threshold", f)
	}
}

func TestDelete(t *testing.T) {
	_, tab := newTable(t, 4, 1)
	rng := xrand.New(7)
	keys := workload.Keys(rng, 200)
	for i, k := range keys {
		tab.Insert(k, uint64(i))
	}
	for i, k := range keys {
		if i%3 == 0 {
			if ok, _ := tab.Delete(k); !ok {
				t.Fatalf("delete %d failed", k)
			}
		}
	}
	for i, k := range keys {
		_, ok, _ := tab.Lookup(k)
		want := i%3 != 0
		if ok != want {
			t.Fatalf("key %d present=%v want %v", k, ok, want)
		}
	}
	if ok, _ := tab.Delete(424242); ok {
		t.Fatal("deleted absent key")
	}
}

func TestInsertCostConstant(t *testing.T) {
	// At moderate load with a realistic block size, the amortized insert
	// cost must be 1 + O(1/b) + (overflow-chain term); splits amortize
	// to ~4/(maxLoad*b) per insert.
	model, tab := newTable(t, 32, 1)
	tab.SetMaxLoad(0.7)
	rng := xrand.New(9)
	keys := workload.Keys(rng, 8000)
	c0 := model.Counters()
	for _, k := range keys {
		tab.Insert(k, 0)
	}
	dc := model.Counters().Sub(c0)
	perInsert := float64(dc.IOs()) / float64(len(keys))
	if perInsert > 1.4 {
		t.Fatalf("amortized insert cost %.3f I/Os, want ~1 + O(1/b)", perInsert)
	}
	if perInsert < 1.0 {
		t.Fatalf("amortized insert cost %.3f < 1, accounting broken", perInsert)
	}
}

func TestQueryCostLowLoad(t *testing.T) {
	_, tab := newTable(t, 32, 2)
	tab.SetMaxLoad(0.5)
	rng := xrand.New(11)
	keys := workload.Keys(rng, 3000)
	for _, k := range keys {
		tab.Insert(k, 0)
	}
	total := 0
	for _, k := range keys {
		_, ok, ios := tab.Lookup(k)
		if !ok {
			t.Fatal("lost key")
		}
		total += ios
	}
	avg := float64(total) / float64(len(keys))
	if avg > 1.05 {
		t.Fatalf("avg successful lookup %.4f at load 0.5", avg)
	}
}

func TestMatchesMapModel(t *testing.T) {
	f := func(seed uint64, ops []byte) bool {
		model := iomodel.NewModel(2, 1<<18)
		tab, err := New(model, hashfn.NewIdeal(seed), 1)
		if err != nil {
			return false
		}
		ref := map[uint64]uint64{}
		r := xrand.New(seed)
		for _, op := range ops {
			key := uint64(op % 24)
			switch op % 3 {
			case 0:
				v := r.Uint64()
				tab.Insert(key, v)
				ref[key] = v
			case 1:
				ok, _ := tab.Delete(key)
				_, inRef := ref[key]
				if ok != inRef {
					return false
				}
				delete(ref, key)
			default:
				v, ok, _ := tab.Lookup(key)
				rv, rok := ref[key]
				if ok != rok || (ok && v != rv) {
					return false
				}
			}
			if tab.Len() != len(ref) {
				return false
			}
			if err := tab.CheckInvariant(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
