package linhash

import (
	"fmt"

	"extbuf/internal/ckpt"
	"extbuf/internal/hashfn"
	"extbuf/internal/iomodel"
)

// SaveState serializes the table's volatile in-memory state — the
// bucket heads in split order, the level, the split pointer and the
// counters — for a checkpoint.
func (t *Table) SaveState(e *ckpt.Encoder) {
	e.BlockIDs(t.heads)
	e.U64(uint64(t.level))
	e.Int(t.split)
	e.Int(t.n)
	e.Int(t.blocks)
	e.F64(t.maxLoad)
}

// Restore rebuilds a table from a SaveState payload on a model whose
// store already holds the checkpointed blocks. It charges the same
// memory reservation as New.
func Restore(model *iomodel.Model, fn hashfn.Fn, d *ckpt.Decoder) (*Table, error) {
	heads := d.BlockIDs()
	level := uint(d.U64())
	split := d.Int()
	n := d.Int()
	blocks := d.Int()
	maxLoad := d.F64()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("linhash: restore: %w", err)
	}
	if level > 28 || split < 0 || split >= 1<<level || len(heads) != (1<<level)+split {
		return nil, fmt.Errorf("linhash: restore: %d heads inconsistent with level %d split %d",
			len(heads), level, split)
	}
	if n < 0 || blocks < len(heads) {
		return nil, fmt.Errorf("linhash: restore: implausible counters n=%d blocks=%d", n, blocks)
	}
	if err := model.Mem.Alloc(memoryWords); err != nil {
		return nil, fmt.Errorf("linhash: %w", err)
	}
	return &Table{
		d:       model.Disk,
		mem:     model.Mem,
		fn:      fn,
		heads:   heads,
		level:   level,
		split:   split,
		n:       n,
		blocks:  blocks,
		maxLoad: maxLoad,
		memRes:  memoryWords,
	}, nil
}
