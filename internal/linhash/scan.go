package linhash

import (
	"extbuf/internal/block"
	"extbuf/internal/iomodel"
)

// ScanBuckets returns the number of scan buckets: one per chain. During
// a split round the slice order is [old round | new buckets]; a scan
// paged across a split may see keys move — the engine documents the
// weak cursor contract.
func (t *Table) ScanBuckets() int { return len(t.heads) }

// ScanBucket appends bucket i's entries (its whole chain) to buf,
// returning buf and the I/Os spent.
func (t *Table) ScanBucket(i int, buf []iomodel.Entry) ([]iomodel.Entry, int) {
	return block.Collect(t.d, t.heads[i], buf)
}
