package linprobe

import (
	"testing"

	"extbuf/internal/hashfn"
	"extbuf/internal/iomodel"
	"extbuf/internal/workload"
	"extbuf/internal/xrand"
	"extbuf/internal/zones"
)

func TestAccessorsAndZoneView(t *testing.T) {
	model := iomodel.NewModel(8, 1024)
	tab, err := New(model, hashfn.NewIdeal(1), 16)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Disk() != model.Disk {
		t.Fatal("Disk accessor broken")
	}
	if tab.MemoryKeys() != nil {
		t.Fatal("MemoryKeys should be nil")
	}
	rng := xrand.New(3)
	keys := workload.Keys(rng, 50)
	for i, k := range keys {
		if _, err := tab.Insert(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	lf := tab.LoadFactor()
	if lf <= 0 || lf > 1 {
		t.Fatalf("load factor %v", lf)
	}
	rep := zones.Audit(tab, keys)
	if rep.M != 0 || rep.F+rep.S != 50 {
		t.Fatalf("audit: %+v", rep)
	}
	// At fill ~0.39 nearly everything should be in its home block; the
	// displaced (probed-forward) items are the slow zone.
	if rep.SlowFraction() > 0.3 {
		t.Fatalf("slow fraction %.3f too high", rep.SlowFraction())
	}
	tab.Close()
	if model.Mem.Used() != 0 {
		t.Fatalf("Close left %d words", model.Mem.Used())
	}
}
