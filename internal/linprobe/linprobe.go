// Package linprobe implements the external hash table with block-level
// linear probing, the other classical collision-resolution strategy whose
// analysis Knuth gives in TAOCP vol. 3 §6.4 and which the paper cites for
// the 1 + 1/2^Omega(b) query cost of standard external hashing.
//
// The table is a circular array of disk blocks. An item with home block
// h(x) is stored in the first block at or cyclically after h(x) that had
// free space at insertion time. The structure maintains the probing
// invariant:
//
//	for every stored item x placed in block j, every block in the
//	cyclic interval [home(x), j) is full.
//
// A successful lookup therefore scans from the home block and can stop
// after the first non-full block; at load factors bounded below 1 the
// expected scan length is 1 + 1/2^Omega(b) blocks. Deletions restore the
// invariant with a block-level version of Knuth's Algorithm R (backward
// shifting), so no tombstones are needed and the table never degrades.
package linprobe

import (
	"errors"
	"fmt"

	"extbuf/internal/hashfn"
	"extbuf/internal/iomodel"
)

// ErrFull is returned by Insert when every block is full and growth is
// disabled.
var ErrFull = errors.New("linprobe: table full")

// memoryWords is the charged in-memory footprint: base address, block
// count, item count, hash seed.
const memoryWords = 4

// Table is an external linear-probing hash table. Not safe for concurrent
// use.
type Table struct {
	d       *iomodel.Disk
	mem     *iomodel.Memory
	fn      hashfn.Fn
	blocks  []iomodel.BlockID
	bits    uint
	n       int
	maxLoad float64
	memRes  int64
}

// New returns a table over nblocks blocks (rounded up to a power of two).
func New(model *iomodel.Model, fn hashfn.Fn, nblocks int) (*Table, error) {
	if nblocks < 1 {
		return nil, fmt.Errorf("linprobe: nblocks must be >= 1, got %d", nblocks)
	}
	nblocks = hashfn.CeilPow2(nblocks)
	if err := model.Mem.Alloc(memoryWords); err != nil {
		return nil, fmt.Errorf("linprobe: %w", err)
	}
	t := &Table{
		d:      model.Disk,
		mem:    model.Mem,
		fn:     fn,
		blocks: make([]iomodel.BlockID, nblocks),
		bits:   uint(hashfn.Log2(nblocks)),
		memRes: memoryWords,
	}
	for i := range t.blocks {
		t.blocks[i] = model.Disk.Alloc()
	}
	return t, nil
}

// SetMaxLoad enables automatic doubling when the fill n/(b*blocks)
// exceeds maxLoad. Zero keeps the size fixed; Insert then returns ErrFull
// on a full table.
func (t *Table) SetMaxLoad(maxLoad float64) { t.maxLoad = maxLoad }

// Len returns the number of stored entries.
func (t *Table) Len() int { return t.n }

// NumBlocks returns the number of blocks in the probing array.
func (t *Table) NumBlocks() int { return len(t.blocks) }

// Fill returns n/(b*blocks).
func (t *Table) Fill() float64 {
	return float64(t.n) / (float64(t.d.B()) * float64(len(t.blocks)))
}

// LoadFactor returns the paper's load factor ceil(n/b)/blocks.
func (t *Table) LoadFactor() float64 {
	b := t.d.B()
	return float64((t.n+b-1)/b) / float64(len(t.blocks))
}

func (t *Table) home(key uint64) int {
	return int(hashfn.TopBits(t.fn.Hash(key), t.bits))
}

func (t *Table) next(i int) int {
	if i++; i == len(t.blocks) {
		return 0
	}
	return i
}

// Insert stores (key, val), overwriting an existing value for key. It
// returns the I/Os spent and ErrFull if no space exists.
func (t *Table) Insert(key, val uint64) (int, error) {
	ios := 0
	i := t.home(key)
	buf := t.d.AcquireBuf()
	defer func() { t.d.ReleaseBuf(buf) }()
	for step := 0; step < len(t.blocks); step++ {
		buf = t.d.Read(t.blocks[i], buf[:0])
		ios++
		for j := range buf {
			if buf[j].Key == key {
				buf[j].Val = val
				t.d.WriteBack(t.blocks[i], buf)
				return ios, nil
			}
		}
		if len(buf) < t.d.B() {
			buf = append(buf, iomodel.Entry{Key: key, Val: val})
			t.d.WriteBack(t.blocks[i], buf)
			t.n++
			if t.maxLoad > 0 && t.Fill() > t.maxLoad {
				ios += t.rebuild(2 * len(t.blocks))
			}
			return ios, nil
		}
		i = t.next(i)
	}
	if t.maxLoad > 0 {
		ios += t.rebuild(2 * len(t.blocks))
		more, err := t.Insert(key, val)
		return ios + more, err
	}
	return ios, ErrFull
}

// Lookup returns the value for key and the I/Os spent. The scan stops
// after the first non-full block, which the probing invariant makes
// sound.
func (t *Table) Lookup(key uint64) (val uint64, ok bool, ios int) {
	i := t.home(key)
	for step := 0; step < len(t.blocks); step++ {
		// Pinned zero-copy scan; see block.Find.
		buf := t.d.ReadPinned(t.blocks[i])
		ios++
		for j := range buf {
			if buf[j].Key == key {
				v := buf[j].Val
				t.d.Unpin(t.blocks[i])
				return v, true, ios
			}
		}
		full := len(buf) == t.d.B()
		t.d.Unpin(t.blocks[i])
		if !full {
			return 0, false, ios
		}
		i = t.next(i)
	}
	return 0, false, ios
}

// Delete removes key and repairs the probing invariant by backward
// shifting (block-level Algorithm R). It reports whether the key was
// present and the I/Os spent.
func (t *Table) Delete(key uint64) (ok bool, ios int) {
	i := t.home(key)
	buf := t.d.AcquireBuf()
	defer func() { t.d.ReleaseBuf(buf) }()
	for step := 0; step < len(t.blocks); step++ {
		buf = t.d.Read(t.blocks[i], buf[:0])
		ios++
		for j, e := range buf {
			if e.Key == key {
				buf[j] = buf[len(buf)-1]
				buf = buf[:len(buf)-1]
				t.d.WriteBack(t.blocks[i], buf)
				t.n--
				ios += t.repair(i)
				return true, ios
			}
		}
		if len(buf) < t.d.B() {
			return false, ios
		}
		i = t.next(i)
	}
	return false, ios
}

// repair restores the probing invariant after block hole gained a free
// slot: any later item of the same cluster whose home lies cyclically at
// or before hole is shifted back, and the repair continues from the slot
// it vacates.
func (t *Table) repair(hole int) int {
	ios := 0
	k := t.next(hole)
	buf := t.d.AcquireBuf()
	defer func() { t.d.ReleaseBuf(buf) }()
	for step := 0; step < len(t.blocks); step++ {
		if k == hole { // wrapped all the way around
			return ios
		}
		buf = t.d.Read(t.blocks[k], buf[:0])
		ios++
		cand := -1
		for j, e := range buf {
			if !cyclicBetween(t.home(e.Key), t.next(hole), k, len(t.blocks)) {
				// home(e) is NOT in (hole, k], so e may move back.
				cand = j
				break
			}
		}
		if cand >= 0 {
			e := buf[cand]
			buf[cand] = buf[len(buf)-1]
			buf = buf[:len(buf)-1]
			t.d.WriteBack(t.blocks[k], buf)
			// Move e into the hole block.
			hb := t.d.Read(t.blocks[hole], t.d.AcquireBuf())
			ios++
			hb = append(hb, e)
			t.d.WriteBack(t.blocks[hole], hb)
			t.d.ReleaseBuf(hb)
			hole = k
			k = t.next(k)
			continue
		}
		if len(buf) < t.d.B() {
			// Cluster ends here and no candidate exists: invariant holds.
			return ios
		}
		k = t.next(k)
	}
	return ios
}

// cyclicBetween reports whether x lies in the cyclic interval [lo, hi]
// of a ring of size n.
func cyclicBetween(x, lo, hi, n int) bool {
	if lo <= hi {
		return x >= lo && x <= hi
	}
	return x >= lo || x <= hi
}

// rebuild resizes the table to newSize blocks (a power of two) with a
// bulk load: all entries are collected, counting-sorted by new home
// block, and laid out in one sequential sweep that writes each block at
// most twice (once in the main sweep, possibly once more on cyclic
// wrap-around). Returns the I/Os spent.
func (t *Table) rebuild(newSize int) int {
	ios := 0
	var all []iomodel.Entry
	for _, id := range t.blocks {
		all = t.d.Read(id, all)
		ios++
		t.d.Free(id)
	}
	newSize = hashfn.CeilPow2(newSize)
	newBits := uint(hashfn.Log2(newSize))
	// Counting sort by new home block.
	counts := make([]int, newSize+1)
	for _, e := range all {
		counts[int(hashfn.TopBits(t.fn.Hash(e.Key), newBits))+1]++
	}
	for i := 1; i <= newSize; i++ {
		counts[i] += counts[i-1]
	}
	sorted := make([]iomodel.Entry, len(all))
	pos := append([]int(nil), counts[:newSize]...)
	for _, e := range all {
		h := int(hashfn.TopBits(t.fn.Hash(e.Key), newBits))
		sorted[pos[h]] = e
		pos[h]++
	}
	blocks := make([]iomodel.BlockID, newSize)
	for i := range blocks {
		blocks[i] = t.d.Alloc()
	}
	b := t.d.B()
	var carry []iomodel.Entry
	fills := make([]int, newSize)
	writeOut := func(i int) {
		blk := carry
		if len(blk) > b {
			blk = carry[:b]
		}
		t.d.Write(blocks[i], blk)
		ios++
		fills[i] = len(blk)
		carry = append(carry[:0], carry[len(blk):]...)
	}
	for i := 0; i < newSize; i++ {
		carry = append(carry, sorted[counts[i]:counts[i+1]]...)
		writeOut(i)
	}
	// Wrap-around: leftover carry continues filling from block 0.
	for i := 0; len(carry) > 0; i++ {
		if fills[i] == b {
			continue // already full; carry items' homes precede it
		}
		cur := t.d.Read(blocks[i], nil)
		ios++
		space := b - len(cur)
		take := space
		if take > len(carry) {
			take = len(carry)
		}
		cur = append(cur, carry[:take]...)
		carry = carry[take:]
		t.d.WriteBack(blocks[i], cur)
		fills[i] = len(cur)
	}
	t.blocks = blocks
	t.bits = newBits
	return ios
}

// Grow doubles the table via a bulk rebuild and returns the I/Os spent.
func (t *Table) Grow() int { return t.rebuild(2 * len(t.blocks)) }

// AddressOf returns the home block f(x) of key for the zones audit. Note
// that items displaced by probing sit outside B_f(x) and are correctly
// counted in the paper's slow zone, which is exactly why linear probing's
// query cost exceeds 1 by the displaced fraction.
func (t *Table) AddressOf(key uint64) iomodel.BlockID {
	return t.blocks[t.home(key)]
}

// MemoryKeys returns nil: the plain table buffers nothing in memory.
func (t *Table) MemoryKeys() []uint64 { return nil }

// Disk exposes the underlying disk for audits.
func (t *Table) Disk() *iomodel.Disk { return t.d }

// CheckInvariant verifies the probing invariant by direct inspection
// (test hook; uses Peek, no I/O): every stored entry's preceding cluster
// blocks are full. It returns an error describing the first violation.
func (t *Table) CheckInvariant() error {
	b := t.d.B()
	for j, id := range t.blocks {
		for _, e := range t.d.Peek(id) {
			h := t.home(e.Key)
			for i := h; i != j; i = t.next(i) {
				if len(t.d.Peek(t.blocks[i])) < b {
					return fmt.Errorf("linprobe: key %d home %d stored at %d but block %d not full", e.Key, h, j, i)
				}
			}
		}
	}
	return nil
}

// Close releases the table's memory reservation.
func (t *Table) Close() {
	t.mem.Release(t.memRes)
	t.memRes = 0
}
