package linprobe

import (
	"errors"
	"testing"
	"testing/quick"

	"extbuf/internal/hashfn"
	"extbuf/internal/iomodel"
	"extbuf/internal/workload"
	"extbuf/internal/xrand"
)

func newTable(t *testing.T, b, nblocks int) *Table {
	t.Helper()
	model := iomodel.NewModel(b, 1<<20)
	tab, err := New(model, hashfn.NewIdeal(1), nblocks)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestInsertLookup(t *testing.T) {
	tab := newTable(t, 8, 32)
	rng := xrand.New(2)
	keys := workload.Keys(rng, 150)
	for i, k := range keys {
		if _, err := tab.Insert(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tab.Len() != 150 {
		t.Fatalf("Len = %d", tab.Len())
	}
	for i, k := range keys {
		v, ok, _ := tab.Lookup(k)
		if !ok || v != uint64(i) {
			t.Fatalf("key %d: ok=%v v=%d", k, ok, v)
		}
	}
	if err := tab.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestReplace(t *testing.T) {
	tab := newTable(t, 4, 8)
	tab.Insert(7, 1)
	tab.Insert(7, 2)
	if tab.Len() != 1 {
		t.Fatalf("Len = %d", tab.Len())
	}
	v, ok, _ := tab.Lookup(7)
	if !ok || v != 2 {
		t.Fatalf("v = %d", v)
	}
}

func TestFullTable(t *testing.T) {
	tab := newTable(t, 2, 2) // capacity 4
	rng := xrand.New(3)
	keys := workload.Keys(rng, 4)
	for _, k := range keys {
		if _, err := tab.Insert(k, 0); err != nil {
			t.Fatal(err)
		}
	}
	_, err := tab.Insert(999, 0)
	if !errors.Is(err, ErrFull) {
		t.Fatalf("err = %v, want ErrFull", err)
	}
	// All four keys still findable in the saturated table.
	for _, k := range keys {
		if _, ok, _ := tab.Lookup(k); !ok {
			t.Fatalf("key %d lost in full table", k)
		}
	}
}

func TestDeleteRepair(t *testing.T) {
	tab := newTable(t, 4, 16)
	rng := xrand.New(5)
	keys := workload.Keys(rng, 48) // fill 0.75
	for i, k := range keys {
		tab.Insert(k, uint64(i))
	}
	// Delete every third key, checking the invariant and the survivors
	// after each removal: this is what exercises backward shifting.
	deleted := map[uint64]bool{}
	for i := 0; i < len(keys); i += 3 {
		ok, _ := tab.Delete(keys[i])
		if !ok {
			t.Fatalf("delete %d failed", keys[i])
		}
		deleted[keys[i]] = true
		if err := tab.CheckInvariant(); err != nil {
			t.Fatalf("after deleting %d: %v", keys[i], err)
		}
	}
	for i, k := range keys {
		v, ok, _ := tab.Lookup(k)
		if deleted[k] {
			if ok {
				t.Fatalf("deleted key %d still present", k)
			}
		} else if !ok || v != uint64(i) {
			t.Fatalf("survivor %d lost (ok=%v)", k, ok)
		}
	}
}

func TestDeleteAbsent(t *testing.T) {
	tab := newTable(t, 4, 4)
	tab.Insert(1, 1)
	if ok, _ := tab.Delete(2); ok {
		t.Fatal("deleted absent key")
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d", tab.Len())
	}
}

func TestKnuthQueryCostLowLoad(t *testing.T) {
	tab := newTable(t, 32, 64)
	rng := xrand.New(7)
	n := 819
	keys := workload.Keys(rng, n)
	for _, k := range keys {
		tab.Insert(k, 0)
	}
	total := 0
	for _, k := range keys {
		_, ok, ios := tab.Lookup(k)
		if !ok {
			t.Fatal("lost key")
		}
		total += ios
	}
	avg := float64(total) / float64(n)
	if avg > 1.05 {
		t.Fatalf("avg successful lookup %.4f at load 0.4", avg)
	}
}

func TestGrowth(t *testing.T) {
	tab := newTable(t, 8, 4)
	tab.SetMaxLoad(0.7)
	rng := xrand.New(9)
	keys := workload.Keys(rng, 1000)
	for i, k := range keys {
		if _, err := tab.Insert(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tab.NumBlocks() <= 4 {
		t.Fatalf("no growth: %d blocks", tab.NumBlocks())
	}
	if err := tab.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		v, ok, _ := tab.Lookup(k)
		if !ok || v != uint64(i) {
			t.Fatalf("key %d lost after growth", k)
		}
	}
}

func TestExplicitGrow(t *testing.T) {
	tab := newTable(t, 4, 8)
	rng := xrand.New(11)
	keys := workload.Keys(rng, 24)
	for i, k := range keys {
		tab.Insert(k, uint64(i))
	}
	before := tab.NumBlocks()
	ios := tab.Grow()
	if tab.NumBlocks() != 2*before {
		t.Fatalf("blocks %d after grow from %d", tab.NumBlocks(), before)
	}
	if ios < before {
		t.Fatalf("grow cost %d suspiciously low", ios)
	}
	if err := tab.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		v, ok, _ := tab.Lookup(k)
		if !ok || v != uint64(i) {
			t.Fatalf("key %d lost in grow", k)
		}
	}
}

func TestWrapAround(t *testing.T) {
	// Force keys into the last block so probing wraps to block 0.
	model := iomodel.NewModel(2, 1<<16)
	tab, err := New(model, hashfn.NewIdeal(1), 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(13)
	// Find keys homed at the last block.
	var lastKeys []uint64
	for len(lastKeys) < 5 {
		k := rng.Uint64()
		if tab.home(k) == 3 {
			lastKeys = append(lastKeys, k)
		}
	}
	for i, k := range lastKeys {
		if _, err := tab.Insert(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	for i, k := range lastKeys {
		v, ok, _ := tab.Lookup(k)
		if !ok || v != uint64(i) {
			t.Fatalf("wrapped key %d lost", k)
		}
	}
	// Delete with wrap-around repair.
	for _, k := range lastKeys[:3] {
		if ok, _ := tab.Delete(k); !ok {
			t.Fatalf("wrapped delete %d failed", k)
		}
		if err := tab.CheckInvariant(); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range lastKeys[3:] {
		v, ok, _ := tab.Lookup(k)
		if !ok || v != uint64(i+3) {
			t.Fatalf("survivor %d lost after wrapped repair", k)
		}
	}
}

func TestMatchesMapModel(t *testing.T) {
	f := func(seed uint64, ops []byte) bool {
		model := iomodel.NewModel(2, 1<<16)
		tab, err := New(model, hashfn.NewIdeal(seed), 8)
		if err != nil {
			return false
		}
		ref := map[uint64]uint64{}
		r := xrand.New(seed)
		for _, op := range ops {
			key := uint64(op % 24)
			switch op % 3 {
			case 0:
				v := r.Uint64()
				if _, err := tab.Insert(key, v); err != nil {
					if errors.Is(err, ErrFull) {
						continue
					}
					return false
				}
				ref[key] = v
			case 1:
				ok, _ := tab.Delete(key)
				_, inRef := ref[key]
				if ok != inRef {
					return false
				}
				delete(ref, key)
			default:
				v, ok, _ := tab.Lookup(key)
				rv, rok := ref[key]
				if ok != rok || (ok && v != rv) {
					return false
				}
			}
			if tab.Len() != len(ref) {
				return false
			}
			if err := tab.CheckInvariant(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
