package linprobe

import (
	"fmt"

	"extbuf/internal/ckpt"
	"extbuf/internal/hashfn"
	"extbuf/internal/iomodel"
)

// SaveState serializes the table's volatile in-memory state — the
// block directory and counters — for a checkpoint.
func (t *Table) SaveState(e *ckpt.Encoder) {
	e.BlockIDs(t.blocks)
	e.Int(t.n)
	e.F64(t.maxLoad)
}

// Restore rebuilds a table from a SaveState payload on a model whose
// store already holds the checkpointed blocks. It charges the same
// memory reservation as New.
func Restore(model *iomodel.Model, fn hashfn.Fn, d *ckpt.Decoder) (*Table, error) {
	blocks := d.BlockIDs()
	n := d.Int()
	maxLoad := d.F64()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("linprobe: restore: %w", err)
	}
	if len(blocks) < 1 || len(blocks) != hashfn.CeilPow2(len(blocks)) {
		return nil, fmt.Errorf("linprobe: restore: block count %d is not a positive power of two", len(blocks))
	}
	if n < 0 {
		return nil, fmt.Errorf("linprobe: restore: negative entry count %d", n)
	}
	if err := model.Mem.Alloc(memoryWords); err != nil {
		return nil, fmt.Errorf("linprobe: %w", err)
	}
	return &Table{
		d:       model.Disk,
		mem:     model.Mem,
		fn:      fn,
		blocks:  blocks,
		bits:    uint(hashfn.Log2(len(blocks))),
		n:       n,
		maxLoad: maxLoad,
		memRes:  memoryWords,
	}, nil
}
