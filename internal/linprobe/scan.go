package linprobe

import "extbuf/internal/iomodel"

// ScanBuckets returns the number of scan buckets: one per probe block.
func (t *Table) ScanBuckets() int { return len(t.blocks) }

// ScanBucket appends block i's entries to buf, returning buf and the
// I/Os spent (always 1). Probing displaces keys from their home block,
// so bucket order is physical order, not hash order — fine for the
// engine's unordered scan contract.
func (t *Table) ScanBucket(i int, buf []iomodel.Entry) ([]iomodel.Entry, int) {
	return t.d.Read(t.blocks[i], buf), 1
}
