package logmethod

import (
	"testing"

	"extbuf/internal/iomodel"
	"extbuf/internal/workload"
	"extbuf/internal/xrand"
	"extbuf/internal/zones"
)

func TestAccessorsAndZoneView(t *testing.T) {
	model, tab := newTable(t, 8, 512, 4)
	if tab.Gamma() != 4 {
		t.Fatalf("Gamma = %d", tab.Gamma())
	}
	if tab.Disk() != model.Disk {
		t.Fatal("Disk accessor broken")
	}
	// Before any flush, everything lives in H_0: the zone audit must
	// classify it all as memory zone and AddressOf must be nil.
	rng := xrand.New(3)
	few := workload.Keys(rng, 10)
	for i, k := range few {
		tab.Insert(k, uint64(i))
	}
	if tab.AddressOf(few[0]) != iomodel.NilBlock {
		t.Fatal("AddressOf before any disk level should be NilBlock")
	}
	rep := zones.Audit(tab, few)
	if rep.M != 10 || rep.S != 0 {
		t.Fatalf("pre-flush audit: %+v", rep)
	}
	if len(tab.MemoryKeys()) != 10 {
		t.Fatalf("MemoryKeys = %d", len(tab.MemoryKeys()))
	}
	// Push enough to create disk levels; level sizes must sum with H_0
	// to Len, and Migrations must count flushes.
	keys := workload.Keys(rng, 3000)
	for i, k := range keys {
		tab.Insert(k, uint64(i))
	}
	if tab.Migrations() == 0 {
		t.Fatal("no migrations counted")
	}
	sum := tab.H0Len()
	for k := 1; k <= tab.Levels(); k++ {
		sum += tab.LevelLen(k)
	}
	if sum != tab.Len() {
		t.Fatalf("level lengths sum %d != Len %d", sum, tab.Len())
	}
	if tab.LevelLen(0) != 0 || tab.LevelLen(tab.Levels()+1) != 0 {
		t.Fatal("out-of-range LevelLen should be 0")
	}
	if tab.AddressOf(keys[0]) == iomodel.NilBlock {
		t.Fatal("AddressOf with occupied levels should name a block")
	}
}

func TestLookupLevelsLargestFirstFindsDiskKeys(t *testing.T) {
	_, tab := newTable(t, 8, 256, 2)
	rng := xrand.New(5)
	keys := workload.Keys(rng, 1500)
	for i, k := range keys {
		tab.Insert(k, uint64(i))
	}
	foundOnDisk := 0
	for i, k := range keys {
		if _, inMem := tab.LookupMem(k); inMem {
			continue
		}
		v, ok, ios := tab.LookupLevelsLargestFirst(k)
		if !ok || v != uint64(i) {
			t.Fatalf("disk key %d lost (ok=%v)", k, ok)
		}
		if ios < 1 {
			t.Fatalf("disk lookup cost %d", ios)
		}
		foundOnDisk++
	}
	if foundOnDisk == 0 {
		t.Fatal("no keys migrated to disk")
	}
	if _, ok, _ := tab.LookupLevelsLargestFirst(0xabcdef); ok {
		t.Fatal("found absent key")
	}
}
