// Package logmethod implements the logarithmic method hash table of
// Lemma 5 of Wei, Yi, Zhang (SPAA 2009): Bentley's logarithmic method
// applied to a standard external hash table.
//
// For a parameter gamma >= 2 the structure maintains a series of hash
// tables H_0, H_1, ..., where H_k has gamma^k * (m/b) buckets and stores
// up to (1/2) * gamma^k * m items, so its load factor never exceeds 1/2.
// H_0 lives in memory; the rest are chained external hash tables on
// disk. A new item always enters H_0; when H_k fills, its items migrate
// into H_(k+1) by a sequential parallel scan (top-bit bucket indexing
// makes bucket j of H_k feed exactly the consecutive buckets
// [j*gamma, (j+1)*gamma) of H_(k+1)).
//
// Lemma 5's bounds, which the benchmarks reproduce: insertions cost
// amortized O((gamma/b) * log_gamma(n/m)) I/Os and lookups cost expected
// average O(log_gamma(n/m)) I/Os.
//
// Deviation from the paper: gamma is rounded up to a power of two so
// that bucket counts stay powers of two under top-bit addressing. The
// paper allows arbitrary gamma >= 2; the experiments use 2, 4, 8.
package logmethod

import (
	"fmt"

	"extbuf/internal/chainhash"
	"extbuf/internal/hashfn"
	"extbuf/internal/iomodel"
)

// Config parametrizes the structure.
type Config struct {
	// Gamma is the growth factor between successive tables (>= 2;
	// rounded up to a power of two).
	Gamma int
	// H0Cap caps the in-memory table H_0, in items. Zero selects
	// m/4, leaving room for merge scratch space within the budget.
	H0Cap int
}

// Table is a logarithmic-method hash table. Not safe for concurrent use.
type Table struct {
	model  *iomodel.Model
	fn     hashfn.Fn
	gamma  int
	h0     map[uint64]uint64
	h0cap  int
	levels []*level // levels[i] is H_(i+1); nil entries never occur
	n      int
	memRes int64
	// migrations counts level-merge events, exposed for experiments.
	migrations int
}

// level wraps one disk-resident table H_k with its item capacity.
type level struct {
	t   *chainhash.Table
	cap int
}

// scratchWords is the transient merge buffer charged against memory:
// one source bucket plus one target bucket of entries.
const scratchWords = 4

// New returns an empty structure on the model. It errors if the memory
// budget cannot hold H_0 plus merge scratch (roughly m/4 + 4b + 16
// words).
func New(model *iomodel.Model, fn hashfn.Fn, cfg Config) (*Table, error) {
	gamma := cfg.Gamma
	if gamma < 2 {
		gamma = 2
	}
	gamma = hashfn.CeilPow2(gamma)
	h0cap := cfg.H0Cap
	if h0cap == 0 {
		h0cap = int(model.MWords() / 4)
	}
	if h0cap < 1 {
		return nil, fmt.Errorf("logmethod: H0 capacity %d < 1", h0cap)
	}
	res := int64(h0cap) + int64(scratchWords*model.B()) + 16
	if err := model.Mem.Alloc(res); err != nil {
		return nil, fmt.Errorf("logmethod: %w", err)
	}
	return &Table{
		model:  model,
		fn:     fn,
		gamma:  gamma,
		h0:     make(map[uint64]uint64, h0cap),
		h0cap:  h0cap,
		memRes: res,
	}, nil
}

// Gamma returns the (power-of-two-rounded) growth factor.
func (t *Table) Gamma() int { return t.gamma }

// Len returns the number of stored entries.
func (t *Table) Len() int { return t.n }

// H0Len returns the number of entries buffered in memory.
func (t *Table) H0Len() int { return len(t.h0) }

// Levels returns the number of disk-resident tables (occupied or not).
func (t *Table) Levels() int { return len(t.levels) }

// LevelLen returns the number of entries in disk level k (1-based, as in
// the paper's H_k). It returns 0 for out-of-range k.
func (t *Table) LevelLen(k int) int {
	if k < 1 || k > len(t.levels) {
		return 0
	}
	return t.levels[k-1].t.Len()
}

// Migrations returns the number of level merges performed.
func (t *Table) Migrations() int { return t.migrations }

// levelCap returns the item capacity of disk level k (1-based):
// (1/2) * gamma^k * h0cap * 2 — i.e. H_k holds gamma^k times H_0's
// capacity, at load <= 1/2 given its bucket count.
func (t *Table) levelCap(k int) int {
	c := t.h0cap
	for i := 0; i < k; i++ {
		c *= t.gamma
	}
	return c
}

// ensureLevel materializes disk level k (1-based) if needed.
func (t *Table) ensureLevel(k int) error {
	for len(t.levels) < k {
		idx := len(t.levels) + 1
		cap := t.levelCap(idx)
		nb := hashfn.CeilPow2((2*cap + t.model.B() - 1) / t.model.B())
		ch, err := chainhash.New(t.model, t.fn, nb)
		if err != nil {
			return fmt.Errorf("logmethod: level %d: %w", idx, err)
		}
		t.levels = append(t.levels, &level{t: ch, cap: cap})
	}
	return nil
}

// Insert stores (key, val), overwriting an existing value, and returns
// the I/Os spent. The item lands in H_0 for free; migrations are charged
// when they run.
func (t *Table) Insert(key, val uint64) (int, error) {
	// Overwrite semantics: if the key is already on disk, the freshest
	// version in H_0 must shadow it. Lookup resolves H_0 first, and
	// merges resolve duplicates in favour of the smaller level, so a
	// plain H_0 store suffices.
	if _, ok := t.h0[key]; !ok && len(t.h0) >= t.h0cap {
		ios, err := t.flushH0()
		if err != nil {
			return ios, err
		}
		t.h0[key] = val
		t.recount()
		return ios, nil
	}
	t.h0[key] = val
	t.recount()
	return 0, nil
}

// recount recomputes n from the level sizes. H_0 inserts may shadow disk
// entries, so n is maintained as "sum of level lengths" with duplicates
// resolved at merge time; for the insert-only workloads of the paper the
// count is exact, and with overwrites it is an upper bound until the
// next merge deduplicates.
func (t *Table) recount() {
	n := len(t.h0)
	for _, lv := range t.levels {
		n += lv.t.Len()
	}
	t.n = n
}

// flushH0 migrates H_0 into H_1, cascading carries first so every level
// has room. Returns the I/Os spent.
func (t *Table) flushH0() (int, error) {
	ios, err := t.makeRoom(1, len(t.h0))
	if err != nil {
		return ios, err
	}
	entries := make([]iomodel.Entry, 0, len(t.h0))
	for k, v := range t.h0 {
		entries = append(entries, iomodel.Entry{Key: k, Val: v})
	}
	ios += t.mergeInto(1, entries)
	t.h0 = make(map[uint64]uint64, t.h0cap)
	t.migrations++
	t.recount()
	return ios, nil
}

// makeRoom guarantees disk level k can absorb extra items, migrating it
// into level k+1 first when it cannot.
func (t *Table) makeRoom(k, extra int) (int, error) {
	if err := t.ensureLevel(k); err != nil {
		return 0, err
	}
	lv := t.levels[k-1]
	if lv.t.Len()+extra <= lv.cap {
		return 0, nil
	}
	ios, err := t.makeRoom(k+1, lv.t.Len())
	if err != nil {
		return ios, err
	}
	moved, c := lv.t.CollectAll(nil)
	ios += c
	ios += t.mergeInto(k+1, moved)
	lv.t.Reset()
	t.migrations++
	return ios, nil
}

// mergeInto merges entries (grouped arbitrarily) into disk level k with
// a bucket-by-bucket sequential scan. An empty target level takes the
// pure bulk-load path (cold writes only, no reads). Otherwise each
// touched bucket is merged by mergeChain in one streaming pass: every
// chain block is read once and written back for free (footnote 2 of the
// paper — this is the "scanning the two tables in parallel" merge), with
// cold writes only for net growth. Memory held at any instant is one
// bucket's worth, within the scratch reservation.
func (t *Table) mergeInto(k int, entries []iomodel.Entry) int {
	lv := t.levels[k-1]
	if lv.t.Len() == 0 {
		return lv.t.BulkLoad(entries)
	}
	nb := lv.t.NumBuckets()
	groups := make([][]iomodel.Entry, nb)
	for _, e := range entries {
		i := hashfn.BucketOf(t.fn.Hash(e.Key), nb)
		groups[i] = append(groups[i], e)
	}
	ios := 0
	added := 0
	for i, g := range groups {
		if len(g) == 0 {
			continue
		}
		c, a := t.mergeChain(lv.t.BucketHead(i), g)
		ios += c
		added += a
	}
	lv.t.AdjustAfterMerge(added)
	return ios
}

// mergeChain streams fresh into the chain rooted at head: each block is
// read, entries shadowed by fresh keys are dropped, survivors and fresh
// items are repacked densely, and the block is written back at zero
// cost. Net growth allocates overflow blocks (cold writes); net
// shrinkage frees emptied tail blocks. Returns I/Os spent and the net
// entry-count change.
func (t *Table) mergeChain(head iomodel.BlockID, fresh []iomodel.Entry) (ios, added int) {
	d := t.model.Disk
	b := d.B()
	freshKeys := make(map[uint64]struct{}, len(fresh))
	for _, e := range fresh {
		freshKeys[e.Key] = struct{}{}
	}
	added = len(fresh)
	// pending holds items awaiting placement: fresh first, then chain
	// survivors stream through it.
	pending := append([]iomodel.Entry(nil), fresh...)
	var buf []iomodel.Entry
	id := head
	var lastNonEmpty iomodel.BlockID = iomodel.NilBlock
	for {
		buf = d.Read(id, buf[:0])
		ios++
		for _, e := range buf {
			if _, shadowed := freshKeys[e.Key]; shadowed {
				added-- // replacement, not growth
				continue
			}
			pending = append(pending, e)
		}
		take := len(pending)
		if take > b {
			take = b
		}
		next := d.Next(id)
		if len(pending) > take && next == iomodel.NilBlock {
			// Net growth: allocate the overflow chain, link it via the
			// free write-back, then pay cold writes for the new blocks.
			rest := pending[take:]
			need := (len(rest) + b - 1) / b
			ids := make([]iomodel.BlockID, need)
			for j := range ids {
				ids[j] = d.Alloc()
			}
			for j := 0; j+1 < need; j++ {
				d.SetNext(ids[j], ids[j+1])
			}
			d.SetNext(id, ids[0])
			d.WriteBack(id, pending[:take])
			for j := 0; j < need; j++ {
				chunk := rest
				if len(chunk) > b {
					chunk = rest[:b]
				}
				d.Write(ids[j], chunk)
				ios++
				rest = rest[len(chunk):]
			}
			return ios, added
		}
		d.WriteBack(id, pending[:take])
		pending = pending[take:]
		if take > 0 {
			lastNonEmpty = id
		}
		if next == iomodel.NilBlock {
			break
		}
		id = next
	}
	// Net shrinkage: free the emptied tail, keeping the head alive.
	if lastNonEmpty == iomodel.NilBlock {
		lastNonEmpty = head
	}
	if tail := d.Next(lastNonEmpty); tail != iomodel.NilBlock {
		d.SetNext(lastNonEmpty, iomodel.NilBlock)
		for cur := tail; cur != iomodel.NilBlock; {
			next := d.Next(cur)
			d.Free(cur)
			cur = next
		}
	}
	return ios, added
}

// Lookup returns the value for key and the I/Os spent. H_0 is probed
// free; disk levels are then probed smallest-first with an early stop.
// Smallest-first is the freshness order — re-inserting a key leaves its
// newest copy in the smallest level holding one — so Lookup is correct
// under overwrites, and since each level must be probed in the worst
// case anyway, the expected average cost keeps Lemma 5's
// O(log_gamma(n/m)) bound, which the benchmarks confirm.
func (t *Table) Lookup(key uint64) (val uint64, ok bool, ios int) {
	if v, hit := t.h0[key]; hit {
		return v, true, 0
	}
	return t.LookupLevels(key)
}

// LookupMem probes only the memory-resident H_0, at zero I/O cost. The
// Theorem 2 structure uses it to interleave the big-table probe between
// the memory check and the cascade probes.
func (t *Table) LookupMem(key uint64) (val uint64, ok bool) {
	v, hit := t.h0[key]
	return v, hit
}

// LookupLevels probes only the disk-resident levels, smallest-first
// (freshest copy wins). Callers must have consulted LookupMem first for
// overwrite correctness.
func (t *Table) LookupLevels(key uint64) (val uint64, ok bool, ios int) {
	for k := 1; k <= len(t.levels); k++ {
		lv := t.levels[k-1]
		if lv.t.Len() == 0 {
			continue
		}
		v, hit, c := lv.t.Lookup(key)
		ios += c
		if hit {
			return v, true, ios
		}
	}
	return 0, false, ios
}

// LookupLevelsLargestFirst probes only the disk levels, largest level
// first. This is the probe order of §3 of the paper: when most of the
// cascade's mass sits in its largest level, the expected rank of the
// level holding a uniformly random cascade item is O(1)
// (2·(1/2) + 3·(1/4) + ... in the paper's computation). It is only
// correct when at most one copy of the key exists across levels, which
// the Theorem 2 structure's API contract guarantees.
func (t *Table) LookupLevelsLargestFirst(key uint64) (val uint64, ok bool, ios int) {
	for k := len(t.levels); k >= 1; k-- {
		lv := t.levels[k-1]
		if lv.t.Len() == 0 {
			continue
		}
		v, hit, c := lv.t.Lookup(key)
		ios += c
		if hit {
			return v, true, ios
		}
	}
	return 0, false, ios
}

// UpdateLevels overwrites key's value in whichever disk level holds it,
// without inserting. Returns whether a copy was found and I/Os spent.
func (t *Table) UpdateLevels(key, val uint64) (ok bool, ios int) {
	for k := 1; k <= len(t.levels); k++ {
		lv := t.levels[k-1]
		if lv.t.Len() == 0 {
			continue
		}
		hit, c := lv.t.Update(key, val)
		ios += c
		if hit {
			return true, ios
		}
	}
	return false, ios
}

// Delete removes every copy of key from the structure (an overwritten
// key may have a fresh copy in H_0 shadowing a stale one on disk, so all
// levels are purged). Reports whether any copy existed and I/Os spent.
func (t *Table) Delete(key uint64) (ok bool, ios int) {
	if _, hit := t.h0[key]; hit {
		delete(t.h0, key)
		ok = true
	}
	for k := len(t.levels); k >= 1; k-- {
		lv := t.levels[k-1]
		if lv.t.Len() == 0 {
			continue
		}
		hit, c := lv.t.Delete(key)
		ios += c
		ok = ok || hit
	}
	t.recount()
	return ok, ios
}

// CollectAll drains every entry of the structure (memory and disk) into
// buf, returning entries and I/Os spent. Used by the Theorem 2 structure
// when absorbing the cascade into the big table.
func (t *Table) CollectAll(buf []iomodel.Entry) ([]iomodel.Entry, int) {
	seen := make(map[uint64]struct{}, t.n)
	for k, v := range t.h0 {
		buf = append(buf, iomodel.Entry{Key: k, Val: v})
		seen[k] = struct{}{}
	}
	ios := 0
	// Smaller levels are fresher; collect smallest-first and let the
	// first occurrence win.
	for k := 1; k <= len(t.levels); k++ {
		lv := t.levels[k-1]
		if lv.t.Len() == 0 {
			continue
		}
		var c int
		start := len(buf)
		buf, c = lv.t.CollectAll(buf)
		ios += c
		w := start
		for _, e := range buf[start:] {
			if _, dup := seen[e.Key]; dup {
				continue
			}
			seen[e.Key] = struct{}{}
			buf[w] = e
			w++
		}
		buf = buf[:w]
	}
	return buf, ios
}

// Clear discards all contents (a format operation, no I/O) while keeping
// the allocated levels for reuse.
func (t *Table) Clear() {
	t.h0 = make(map[uint64]uint64, t.h0cap)
	for _, lv := range t.levels {
		lv.t.Reset()
	}
	t.n = 0
}

// MemoryKeys returns the keys buffered in H_0 (the paper's memory zone
// M), for the zones audit.
func (t *Table) MemoryKeys() []uint64 {
	keys := make([]uint64, 0, len(t.h0))
	for k := range t.h0 {
		keys = append(keys, k)
	}
	return keys
}

// AddressOf returns the first disk block a query for key would probe:
// the bucket head in the largest occupied level. Items living in smaller
// levels are outside B_f(x) and therefore in the paper's slow zone,
// which is exactly why the plain logarithmic method cannot answer
// queries in 1 + o(1) I/Os.
func (t *Table) AddressOf(key uint64) iomodel.BlockID {
	for k := len(t.levels); k >= 1; k-- {
		lv := t.levels[k-1]
		if lv.t.Len() == 0 {
			continue
		}
		return lv.t.AddressOf(key)
	}
	return iomodel.NilBlock
}

// Disk exposes the underlying disk for audits.
func (t *Table) Disk() *iomodel.Disk { return t.model.Disk }

// Close releases all memory reservations.
func (t *Table) Close() {
	for _, lv := range t.levels {
		lv.t.Close()
	}
	t.model.Mem.Release(t.memRes)
	t.memRes = 0
}
