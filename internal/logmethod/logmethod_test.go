package logmethod

import (
	"math"
	"testing"
	"testing/quick"

	"extbuf/internal/hashfn"
	"extbuf/internal/iomodel"
	"extbuf/internal/workload"
	"extbuf/internal/xrand"
)

func newTable(t *testing.T, b int, mWords int64, gamma int) (*iomodel.Model, *Table) {
	t.Helper()
	model := iomodel.NewModel(b, mWords)
	tab, err := New(model, hashfn.NewIdeal(1), Config{Gamma: gamma})
	if err != nil {
		t.Fatal(err)
	}
	return model, tab
}

func TestInsertLookup(t *testing.T) {
	_, tab := newTable(t, 8, 1024, 2)
	rng := xrand.New(2)
	keys := workload.Keys(rng, 3000)
	for i, k := range keys {
		if _, err := tab.Insert(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tab.Len() != 3000 {
		t.Fatalf("Len = %d", tab.Len())
	}
	if tab.Levels() < 2 {
		t.Fatalf("expected multiple levels, got %d", tab.Levels())
	}
	for i, k := range keys {
		v, ok, _ := tab.Lookup(k)
		if !ok || v != uint64(i) {
			t.Fatalf("key %d lost (ok=%v v=%d want %d)", k, ok, v, i)
		}
	}
	for i := 0; i < 100; i++ {
		if _, ok, _ := tab.Lookup(rng.Uint64()); ok {
			t.Fatal("found absent key")
		}
	}
}

func TestOverwriteFreshness(t *testing.T) {
	_, tab := newTable(t, 4, 256, 2)
	rng := xrand.New(3)
	keys := workload.Keys(rng, 400)
	for i, k := range keys {
		tab.Insert(k, uint64(i))
	}
	// Overwrite every key; old copies sit in deeper levels until merges
	// shadow them, and smallest-first lookup must always see the fresh
	// value.
	for i, k := range keys {
		tab.Insert(k, uint64(i)+1000)
		v, ok, _ := tab.Lookup(k)
		if !ok || v != uint64(i)+1000 {
			t.Fatalf("key %d: stale value %d after overwrite", k, v)
		}
	}
	// Overwrites must not inflate the logical count after merges settle:
	// force consolidation and check every key has exactly one live copy.
	for i, k := range keys {
		v, ok, _ := tab.Lookup(k)
		if !ok || v != uint64(i)+1000 {
			t.Fatalf("key %d: value %d after settling", k, v)
		}
	}
}

func TestDeletePurgesAllCopies(t *testing.T) {
	_, tab := newTable(t, 4, 256, 2)
	rng := xrand.New(5)
	keys := workload.Keys(rng, 300)
	for i, k := range keys {
		tab.Insert(k, uint64(i))
	}
	// Overwrite to create cross-level copies, then delete.
	for i, k := range keys {
		tab.Insert(k, uint64(i)+7)
	}
	for _, k := range keys {
		ok, _ := tab.Delete(k)
		if !ok {
			t.Fatalf("delete %d failed", k)
		}
		if _, found, _ := tab.Lookup(k); found {
			t.Fatalf("key %d still visible after delete", k)
		}
	}
}

func TestLemma5InsertCost(t *testing.T) {
	// Lemma 5: amortized insertion cost O((gamma/b) log(n/m)). The o(1)
	// character needs b >> gamma*log(n/m), so measure at a realistic
	// block size.
	b := 128
	mWords := int64(2048)
	for _, gamma := range []int{2, 4} {
		model, tab := newTable(t, b, mWords, gamma)
		rng := xrand.New(7)
		n := 100000
		keys := workload.Keys(rng, n)
		c0 := model.Counters()
		for _, k := range keys {
			if _, err := tab.Insert(k, 0); err != nil {
				t.Fatal(err)
			}
		}
		perInsert := float64(model.Counters().Sub(c0).IOs()) / float64(n)
		predicted := float64(gamma) / float64(b) * math.Log2(float64(n)/float64(mWords)) / math.Log2(float64(gamma))
		// The constant is implementation-specific; demand the right
		// order of magnitude and, critically, perInsert << 1 (the whole
		// point of buffering).
		if perInsert > 6*predicted+0.05 {
			t.Fatalf("gamma=%d: insert cost %.4f far above O((g/b)log(n/m)) ~ %.4f",
				gamma, perInsert, predicted)
		}
		if perInsert >= 0.8 {
			t.Fatalf("gamma=%d: insert cost %.4f not o(1)", gamma, perInsert)
		}
	}
}

func TestLemma5QueryCost(t *testing.T) {
	// Query cost O(log_gamma(n/m)): grows with n, shrinks with gamma.
	b := 16
	mWords := int64(512)
	measure := func(gamma, n int) float64 {
		model, tab := newTable(t, b, mWords, gamma)
		rng := xrand.New(11)
		keys := workload.Keys(rng, n)
		for _, k := range keys {
			tab.Insert(k, 0)
		}
		qs := workload.SuccessfulQueries(rng, keys, n, 2000)
		c0 := model.Counters()
		for _, q := range qs {
			if _, ok, _ := tab.Lookup(q); !ok {
				t.Fatal("lost key")
			}
		}
		return float64(model.Counters().Sub(c0).IOs()) / float64(len(qs))
	}
	q2 := measure(2, 30000)
	q8 := measure(8, 30000)
	bound2 := math.Log2(30000.0 / 512)
	if q2 > 2*bound2+2 {
		t.Fatalf("gamma=2 query cost %.2f far above log bound %.2f", q2, bound2)
	}
	if q8 >= q2 {
		t.Fatalf("larger gamma should reduce query cost: g8=%.2f g2=%.2f", q8, q2)
	}
	if q2 <= 1 {
		t.Fatalf("query cost %.2f implausibly low for the log method", q2)
	}
}

func TestMemoryBudgetRespected(t *testing.T) {
	model, tab := newTable(t, 8, 1024, 2)
	rng := xrand.New(13)
	for _, k := range workload.Keys(rng, 10000) {
		if _, err := tab.Insert(k, 0); err != nil {
			t.Fatal(err)
		}
		if model.Mem.Used() > model.Mem.Capacity() {
			t.Fatal("memory budget exceeded")
		}
	}
	if tab.H0Len() > int(model.MWords())/4 {
		t.Fatalf("H0 holds %d items, above its cap", tab.H0Len())
	}
	tab.Close()
	if model.Mem.Used() != 0 {
		t.Fatalf("Close left %d words", model.Mem.Used())
	}
}

func TestCollectAllDedups(t *testing.T) {
	_, tab := newTable(t, 4, 128, 2)
	rng := xrand.New(17)
	keys := workload.Keys(rng, 150)
	for i, k := range keys {
		tab.Insert(k, uint64(i))
	}
	for i, k := range keys { // create shadowed copies
		tab.Insert(k, uint64(i)+500)
	}
	entries, _ := tab.CollectAll(nil)
	seen := map[uint64]uint64{}
	for _, e := range entries {
		if _, dup := seen[e.Key]; dup {
			t.Fatalf("CollectAll returned duplicate key %d", e.Key)
		}
		seen[e.Key] = e.Val
	}
	if len(seen) != 150 {
		t.Fatalf("collected %d distinct keys, want 150", len(seen))
	}
	for i, k := range keys {
		if seen[k] != uint64(i)+500 {
			t.Fatalf("key %d: collected stale value %d", k, seen[k])
		}
	}
}

func TestClear(t *testing.T) {
	_, tab := newTable(t, 4, 128, 2)
	rng := xrand.New(19)
	for _, k := range workload.Keys(rng, 200) {
		tab.Insert(k, 0)
	}
	tab.Clear()
	if tab.Len() != 0 || tab.H0Len() != 0 {
		t.Fatalf("Clear left %d items", tab.Len())
	}
	// Structure remains usable.
	tab.Insert(1, 2)
	v, ok, _ := tab.Lookup(1)
	if !ok || v != 2 {
		t.Fatal("table broken after Clear")
	}
}

func TestLevelGeometry(t *testing.T) {
	_, tab := newTable(t, 8, 256, 2)
	rng := xrand.New(23)
	for _, k := range workload.Keys(rng, 5000) {
		tab.Insert(k, 0)
	}
	// Level capacities must grow geometrically by gamma.
	for k := 1; k < tab.Levels(); k++ {
		if tab.levelCap(k+1) != tab.gamma*tab.levelCap(k) {
			t.Fatalf("level %d cap %d, level %d cap %d: not geometric",
				k, tab.levelCap(k), k+1, tab.levelCap(k+1))
		}
	}
}

func TestUpdateLevels(t *testing.T) {
	_, tab := newTable(t, 4, 128, 2)
	rng := xrand.New(29)
	keys := workload.Keys(rng, 200)
	for i, k := range keys {
		tab.Insert(k, uint64(i))
	}
	// Find a key that has migrated to disk.
	var diskKey uint64
	found := false
	for _, k := range keys {
		if _, inMem := tab.LookupMem(k); !inMem {
			diskKey = k
			found = true
			break
		}
	}
	if !found {
		t.Skip("no key migrated to disk at these parameters")
	}
	ok, _ := tab.UpdateLevels(diskKey, 9999)
	if !ok {
		t.Fatal("UpdateLevels missed a disk-resident key")
	}
	v, ok, _ := tab.Lookup(diskKey)
	if !ok || v != 9999 {
		t.Fatalf("v = %d after UpdateLevels", v)
	}
	if ok, _ := tab.UpdateLevels(0xdeadbeef, 1); ok {
		t.Fatal("UpdateLevels hit an absent key")
	}
}

func TestMatchesMapModelInsertLookup(t *testing.T) {
	f := func(seed uint64, ops []byte) bool {
		model := iomodel.NewModel(4, 256)
		tab, err := New(model, hashfn.NewIdeal(seed), Config{Gamma: 2})
		if err != nil {
			return false
		}
		ref := map[uint64]uint64{}
		r := xrand.New(seed)
		for _, op := range ops {
			key := uint64(op % 48)
			switch op % 4 {
			case 0, 1: // insert weighted higher: the structure is insert-optimized
				v := r.Uint64()
				if _, err := tab.Insert(key, v); err != nil {
					return false
				}
				ref[key] = v
			case 2:
				ok, _ := tab.Delete(key)
				_, inRef := ref[key]
				if ok != inRef {
					return false
				}
				delete(ref, key)
			default:
				v, ok, _ := tab.Lookup(key)
				rv, rok := ref[key]
				if ok != rok || (ok && v != rv) {
					return false
				}
			}
		}
		// Final sweep.
		for k, v := range ref {
			got, ok, _ := tab.Lookup(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
