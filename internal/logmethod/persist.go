package logmethod

import (
	"fmt"

	"extbuf/internal/chainhash"
	"extbuf/internal/ckpt"
	"extbuf/internal/hashfn"
	"extbuf/internal/iomodel"
)

// SaveState serializes the structure's volatile in-memory state for a
// checkpoint: the parameters, the buffered H_0 contents (the paper's
// RAM buffer — exactly the state a crash would lose without logging),
// and every disk level's directory. H_0 pairs are written in map order,
// so payloads are content-equal across runs, not byte-equal.
func (t *Table) SaveState(e *ckpt.Encoder) {
	e.Int(t.gamma)
	e.Int(t.h0cap)
	e.Int(t.n)
	e.Int(t.migrations)
	e.PairMap(t.h0)
	e.Int(len(t.levels))
	for _, lv := range t.levels {
		e.Int(lv.cap)
		lv.t.SaveState(e)
	}
}

// Restore rebuilds a structure from a SaveState payload on a model
// whose store already holds the checkpointed blocks. It charges the
// same memory reservation as New.
func Restore(model *iomodel.Model, fn hashfn.Fn, d *ckpt.Decoder) (*Table, error) {
	gamma := d.Int()
	h0cap := d.Int()
	n := d.Int()
	migrations := d.Int()
	h0 := d.PairMap()
	nlevels := d.Int()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("logmethod: restore: %w", err)
	}
	if gamma < 2 || gamma != hashfn.CeilPow2(gamma) || h0cap < 1 || n < 0 ||
		len(h0) > h0cap || nlevels < 0 || nlevels > 64 {
		return nil, fmt.Errorf("logmethod: restore: implausible state (gamma=%d h0cap=%d n=%d levels=%d)",
			gamma, h0cap, n, nlevels)
	}
	res := int64(h0cap) + int64(scratchWords*model.B()) + 16
	if err := model.Mem.Alloc(res); err != nil {
		return nil, fmt.Errorf("logmethod: %w", err)
	}
	t := &Table{
		model:      model,
		fn:         fn,
		gamma:      gamma,
		h0:         h0,
		h0cap:      h0cap,
		n:          n,
		memRes:     res,
		migrations: migrations,
	}
	if t.h0 == nil {
		t.h0 = make(map[uint64]uint64, h0cap)
	}
	for i := 0; i < nlevels; i++ {
		cap := d.Int()
		ch, err := chainhash.Restore(model, fn, d)
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("logmethod: restore level %d: %w", i+1, err)
		}
		t.levels = append(t.levels, &level{t: ch, cap: cap})
	}
	return t, nil
}
