package logmethod

import (
	"slices"

	"extbuf/internal/iomodel"
)

// ScanBuckets returns the number of scan buckets: one for the memory
// table H_0, then every bucket of every disk level, smallest level
// first.
func (t *Table) ScanBuckets() int {
	n := 1
	for _, lv := range t.levels {
		n += lv.t.ScanBuckets()
	}
	return n
}

// ScanBucket appends bucket i's live entries to buf, returning buf and
// the I/Os spent. Overwriting a key leaves stale copies in deeper
// levels; a copy at level k is emitted only when no fresher copy exists
// in H_0 or a smaller level, so a full scan emits each key exactly once
// with its newest value. The freshness probes cost extra I/Os, which is
// acceptable for the engine's scan contract (backup/iteration, not the
// hot path).
func (t *Table) ScanBucket(i int, buf []iomodel.Entry) ([]iomodel.Entry, int) {
	return t.scanBucket(i, buf, true)
}

// ScanBucketUnique is ScanBucket without the freshness probes, for
// callers (the Theorem 2 structure) whose API contract keeps at most
// one copy of each key across the cascade.
func (t *Table) ScanBucketUnique(i int, buf []iomodel.Entry) ([]iomodel.Entry, int) {
	return t.scanBucket(i, buf, false)
}

func (t *Table) scanBucket(i int, buf []iomodel.Entry, checkShadow bool) ([]iomodel.Entry, int) {
	if i == 0 {
		// H_0, sorted by key so the page is deterministic within one
		// process (map order is randomized per iteration).
		start := len(buf)
		for k, v := range t.h0 {
			buf = append(buf, iomodel.Entry{Key: k, Val: v})
		}
		slices.SortFunc(buf[start:], func(a, b iomodel.Entry) int {
			switch {
			case a.Key < b.Key:
				return -1
			case a.Key > b.Key:
				return 1
			}
			return 0
		})
		return buf, 0
	}
	i--
	for k := 0; k < len(t.levels); k++ {
		lv := t.levels[k]
		nb := lv.t.ScanBuckets()
		if i >= nb {
			i -= nb
			continue
		}
		start := len(buf)
		buf, ios := lv.t.ScanBucket(i, buf)
		if !checkShadow {
			return buf, ios
		}
		w := start
		for _, e := range buf[start:] {
			if _, hit := t.h0[e.Key]; hit {
				continue
			}
			shadowed := false
			for j := 0; j < k; j++ {
				if t.levels[j].t.Len() == 0 {
					continue
				}
				_, hit, c := t.levels[j].t.Lookup(e.Key)
				ios += c
				if hit {
					shadowed = true
					break
				}
			}
			if shadowed {
				continue
			}
			buf[w] = e
			w++
		}
		return buf[:w], ios
	}
	return buf, 0
}
