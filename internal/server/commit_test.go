package server

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGroupCommitterWaveErrors pins the error-attribution contract: a
// commit returns the error of ITS covering sync wave — waiters of a
// failed wave all see the failure, waiters of a later clean wave see
// nil, and a clean later wave never launders an earlier wave's error
// away.
func TestGroupCommitterWaveErrors(t *testing.T) {
	gate := make(chan error)
	var syncs atomic.Int64
	g := &groupCommitter{sync: func() error {
		syncs.Add(1)
		return <-gate
	}}

	commit := func() chan error {
		ch := make(chan error, 1)
		go func() { ch <- g.commit() }()
		return ch
	}

	// A starts wave 1 and blocks inside sync.
	a := commit()
	waitFor(t, func() bool { return syncs.Load() == 1 })

	// B and C enqueue while wave 1 is in flight: they target wave 2.
	b := commit()
	c := commit()
	time.Sleep(20 * time.Millisecond) // let them park on the cond

	boom := errors.New("boom")
	gate <- boom // wave 1 completes with an error -> A
	waitFor(t, func() bool { return syncs.Load() == 2 })
	gate <- nil // wave 2 completes clean -> B and C

	if err := <-a; err != boom {
		t.Fatalf("wave-1 waiter got %v, want boom", err)
	}
	if err := <-b; err != nil {
		t.Fatalf("wave-2 waiter got %v, want nil", err)
	}
	if err := <-c; err != nil {
		t.Fatalf("wave-2 waiter got %v, want nil", err)
	}
	if n := syncs.Load(); n != 2 {
		t.Fatalf("ran %d syncs for 3 commits, want 2 (B and C share a wave)", n)
	}

	// The reverse order: a clean wave followed by a failing one must
	// deliver the failure to exactly its own waiters.
	d := commit()
	waitFor(t, func() bool { return syncs.Load() == 3 })
	e := commit()
	time.Sleep(20 * time.Millisecond)
	gate <- nil // wave 3 clean -> D
	waitFor(t, func() bool { return syncs.Load() == 4 })
	gate <- boom // wave 4 fails -> E
	if err := <-d; err != nil {
		t.Fatalf("wave-3 waiter got %v, want nil", err)
	}
	if err := <-e; err != boom {
		t.Fatalf("wave-4 waiter got %v, want boom", err)
	}

	// No wave bookkeeping may outlive its waiters.
	g.mu.Lock()
	leftover := len(g.waves)
	g.mu.Unlock()
	if leftover != 0 {
		t.Fatalf("%d wave entries leaked", leftover)
	}
}

// TestGroupCommitterConcurrent hammers the committer from many
// goroutines against a slow sync and checks every commit completes and
// waves were actually shared.
func TestGroupCommitterConcurrent(t *testing.T) {
	var syncs atomic.Int64
	g := &groupCommitter{sync: func() error {
		syncs.Add(1)
		time.Sleep(time.Millisecond)
		return nil
	}}
	const callers = 32
	const rounds = 20
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				if err := g.commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	total := int64(callers * rounds)
	if n := syncs.Load(); n >= total {
		t.Fatalf("%d syncs for %d commits — no grouping", n, total)
	} else {
		t.Logf("grouping: %d commits -> %d syncs", total, n)
	}
	g.mu.Lock()
	leftover := len(g.waves)
	g.mu.Unlock()
	if leftover != 0 {
		t.Fatalf("%d wave entries leaked", leftover)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}
