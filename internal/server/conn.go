package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"extbuf/internal/wal"
	"extbuf/internal/wire"
)

// connBufBytes sizes each connection's buffered reader and writer.
const connBufBytes = 64 << 10

// request is one decoded request frame, pooled per connection. keys and
// vals retain capacity across requests, so a steady-state connection
// decodes without allocating.
type request struct {
	op      wire.Op
	id      uint32
	keys    []uint64
	vals    []uint64
	vals2   []uint64 // UPSERTTTL's deadlines / CAS's new values
	lsn     uint64   // LOOKUPAT's read token / REPL_SUBSCRIBE's start / SCAN's cursor
	maxN    uint32   // SCAN's requested page size
	errText string   // set when the reader rejected the frame (op == wire.OpErr)
}

// conn is one client connection: a reader decoding frames into a
// bounded apply queue, an applier coalescing queued requests into
// engine batch calls, and a writer streaming the encoded responses
// back. The queue bound is the connection's backpressure (the reader
// simply stops reading); response order is request order because the
// single applier drains the queue FIFO.
type conn struct {
	srv *Server
	nc  net.Conn

	applyCh chan *request
	writeCh chan []byte

	// readerDone closes when the reader exits — disconnect or drain —
	// which is what tells a replication streamer parked at the log tail
	// to stop.
	readerDone chan struct{}

	// freelists, all single-producer/single-consumer friendly.
	reqFree chan *request
	bufFree chan []byte

	// applier scratch, reused across aggregated batches.
	batch []*request
	keys  []uint64
	vals  []uint64
	found []bool
	pay   []byte

	// replication streamer scratch.
	recs  []wal.Record
	wrecs []wire.ReplRec

	draining atomic.Bool
}

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{
		srv:        s,
		nc:         nc,
		applyCh:    make(chan *request, s.pipeline),
		writeCh:    make(chan []byte, s.pipeline),
		readerDone: make(chan struct{}),
		reqFree:    make(chan *request, s.pipeline+1),
		bufFree:    make(chan []byte, s.pipeline+1),
	}
}

// beginDrain tells the connection to stop reading new requests; the
// already-queued ones are applied and answered before the connection
// closes. The poked read deadline unblocks a reader parked in Read.
func (c *conn) beginDrain() {
	c.draining.Store(true)
	c.nc.SetReadDeadline(time.Now())
}

// run owns the connection lifecycle: it runs the reader inline and the
// applier and writer as goroutines, wired so that reader exit closes
// the apply queue, applier exit closes the write queue, and writer exit
// closes the socket. run returns once all three are done.
func (c *conn) run() {
	writerDone := make(chan struct{})
	go c.applier()
	go func() {
		defer close(writerDone)
		c.writer()
	}()
	c.reader()
	<-writerDone
}

// reader decodes request frames into the apply queue until the client
// disconnects, a drain begins, or the stream turns invalid. Frame-level
// corruption (bad magic or CRC) closes the connection — after it the
// stream offsets cannot be trusted — while a well-framed but invalid
// batch payload is answered with ERR and the stream continues.
func (c *conn) reader() {
	defer close(c.applyCh)
	defer close(c.readerDone)
	r := wire.NewReader(bufio.NewReaderSize(c.nc, connBufBytes))
	for {
		f, err := r.Next()
		if err != nil {
			switch {
			case err == io.EOF: // clean disconnect at a frame boundary
			case c.draining.Load(): // drain deadline kicked the read loose
			default:
				c.srv.logf("conn %s: read: %v", c.nc.RemoteAddr(), err)
			}
			return
		}
		req := c.getReq()
		req.op, req.id = f.Op, f.ID
		var derr error
		switch f.Op {
		case wire.OpInsert, wire.OpUpsert, wire.OpInsertAt, wire.OpUpsertAt:
			if derr = c.checkBatch(f.Payload); derr == nil {
				req.keys, req.vals, derr = wire.DecodeKVInto(f.Payload, req.keys, req.vals)
			}
		case wire.OpLookup, wire.OpDelete, wire.OpDeleteAt:
			if derr = c.checkBatch(f.Payload); derr == nil {
				req.keys, derr = wire.DecodeKeysInto(f.Payload, req.keys)
			}
		case wire.OpLookupAt:
			if len(f.Payload) < 8 {
				derr = fmt.Errorf("%w: %d-byte LOOKUPAT payload", wire.ErrFrame, len(f.Payload))
			} else {
				req.lsn = binary.LittleEndian.Uint64(f.Payload)
				if derr = c.checkBatch(f.Payload[8:]); derr == nil {
					req.keys, derr = wire.DecodeKeysInto(f.Payload[8:], req.keys)
				}
			}
		case wire.OpExpire:
			// Deadlines ride the value column of the KV codec.
			if derr = c.checkBatch(f.Payload); derr == nil {
				req.keys, req.vals, derr = wire.DecodeKVInto(f.Payload, req.keys, req.vals)
			}
		case wire.OpUpsertTTL, wire.OpCAS:
			if derr = c.checkBatch(f.Payload); derr == nil {
				req.keys, req.vals, req.vals2, derr = wire.DecodeTriplesInto(f.Payload, req.keys, req.vals, req.vals2)
			}
		case wire.OpScan:
			req.lsn, req.maxN, derr = wire.DecodeScan(f.Payload)
		case wire.OpReplSubscribe:
			req.lsn, derr = wire.DecodeLSN(f.Payload)
		case wire.OpReplAck:
			// Follower progress on a subscribed connection: record it and
			// move on — no response, no apply-queue trip, so the reader
			// stays responsive while the applier streams.
			if lsn, aerr := wire.DecodeLSN(f.Payload); aerr == nil && c.srv.repl != nil {
				c.srv.repl.ackFrom(c, lsn)
			}
			c.putReq(req)
			continue
		case wire.OpLen, wire.OpSync, wire.OpFlush, wire.OpStats, wire.OpPing,
			wire.OpInfo, wire.OpPromote:
			// empty payloads
		default:
			derr = fmt.Errorf("unknown request op %v", f.Op)
		}
		if derr != nil {
			// Mark the request bad before handing it over; the applier
			// answers it with ERR in order, like any other response.
			req.op = wire.OpErr
			req.errText = derr.Error()
			req.keys = req.keys[:0]
			req.vals = req.vals[:0]
			c.srv.logf("conn %s: rejected frame id %d: %v", c.nc.RemoteAddr(), f.ID, derr)
			c.applyCh <- req
			continue
		}
		c.applyCh <- req // bounded: this send is the backpressure point
	}
}

// checkBatch rejects a batch request whose count prefix exceeds the
// server's limit BEFORE any entries are decoded, so the per-connection
// memory bound really is Pipeline x MaxBatch — not Pipeline times the
// protocol's absolute wire.MaxBatch.
func (c *conn) checkBatch(payload []byte) error {
	if len(payload) < 4 {
		return fmt.Errorf("%w: %d-byte batch payload", wire.ErrFrame, len(payload))
	}
	if n := binary.LittleEndian.Uint32(payload); int64(n) > int64(c.srv.maxBatch) {
		return fmt.Errorf("batch of %d operations exceeds server limit %d", n, c.srv.maxBatch)
	}
	return nil
}

// applier drains the apply queue, coalescing runs of same-kind batch
// requests into one engine call each, and emits responses in request
// order.
func (c *conn) applier() {
	defer close(c.writeCh)
	var pending *request
	chOpen := true
	next := func(block bool) *request {
		if pending != nil {
			r := pending
			pending = nil
			return r
		}
		if !chOpen {
			return nil
		}
		if block {
			r, ok := <-c.applyCh
			if !ok {
				chOpen = false
				return nil
			}
			return r
		}
		select {
		case r, ok := <-c.applyCh:
			if !ok {
				chOpen = false
				return nil
			}
			return r
		default:
			return nil
		}
	}
	for {
		first := next(true)
		if first == nil {
			return
		}
		switch first.op {
		case wire.OpInsert, wire.OpUpsert, wire.OpLookup, wire.OpDelete,
			wire.OpInsertAt, wire.OpUpsertAt, wire.OpDeleteAt:
			// Aggregate the pipelined run of same-kind requests into one
			// engine batch — this is what maps client pipelining 1:1 onto
			// the engine's shard fan-out.
			c.batch = append(c.batch[:0], first)
			ops := len(first.keys)
			for ops < c.srv.maxBatch {
				r2 := next(false)
				if r2 == nil {
					break
				}
				if r2.op != first.op || ops+len(r2.keys) > c.srv.maxBatch {
					pending = r2
					break
				}
				c.batch = append(c.batch, r2)
				ops += len(r2.keys)
			}
			c.serveBatch(first.op, c.batch)
		case wire.OpLookupAt:
			c.serveLookupAt(first)
		case wire.OpExpire, wire.OpUpsertTTL, wire.OpCAS:
			c.serveTTL(first)
		case wire.OpScan:
			c.serveScan(first)
		case wire.OpReplSubscribe:
			c.serveRepl(first)
		default:
			c.serveSingle(first)
		}
	}
}

// serveBatch applies one aggregated run of same-kind requests with a
// single engine call and answers every request in it.
func (c *conn) serveBatch(op wire.Op, batch []*request) {
	// Concatenate the requests' operands. A run of one request uses its
	// slices directly — the common case when the client is not
	// pipelining — so aggregation costs nothing when it buys nothing.
	keys, vals := batch[0].keys, batch[0].vals
	if len(batch) > 1 {
		c.keys = c.keys[:0]
		c.vals = c.vals[:0]
		for _, r := range batch {
			c.keys = append(c.keys, r.keys...)
			c.vals = append(c.vals, r.vals...)
		}
		keys, vals = c.keys, c.vals
	}
	var err error
	switch op {
	case wire.OpInsert, wire.OpUpsert, wire.OpInsertAt, wire.OpUpsertAt:
		var last uint64
		if !c.srv.writableNow() {
			err = errNotWritable
		} else {
			// The Ship variants apply AND emit ship-log records from
			// inside the engine's shard workers, so a key's ship order is
			// its apply order even across racing connections (the
			// replication total order, DESIGN.md §2a). With replication
			// off the sink is nil and last stays 0. On success, the ack
			// barrier: group-committed WAL + ship-log fsync, then the
			// semi-sync follower wait — acks below are only sent when the
			// operations are crash-durable (and, under semi-sync,
			// follower-applied). Scratch backends skip the fsync.
			if op == wire.OpInsert || op == wire.OpInsertAt {
				last, err = c.srv.engine.InsertBatchShip(keys, vals)
			} else {
				last, err = c.srv.engine.UpsertBatchShip(keys, vals)
			}
			if err == nil {
				err = c.srv.commitMutation(last)
			}
		}
		epoch := c.srv.epochNow()
		for _, r := range batch {
			switch {
			case err != nil:
				c.respondErr(r.id, err)
			case op == wire.OpInsertAt || op == wire.OpUpsertAt:
				// The token is the aggregated run's highest ship LSN: the
				// shard fan-out interleaves the run's records, so a
				// per-request contiguous sub-range no longer exists. A
				// covering LSN preserves read-your-writes — waiting for it
				// waits for this request's own records too. 0 (no
				// constraint) when the node does not replicate.
				c.pay = wire.AppendAckT(c.pay[:0], last, epoch)
				c.respond(wire.OpAckT, r.id, c.pay)
			default:
				c.respond(wire.OpAck, r.id, nil)
			}
			c.putReq(r)
		}
	case wire.OpLookup:
		found := c.foundOut(len(keys))
		outV := c.valsOut(len(keys))
		err = c.srv.engine.LookupBatchInto(keys, outV, found)
		off := 0
		for _, r := range batch {
			n := len(r.keys)
			if err != nil {
				c.respondErr(r.id, err)
			} else {
				c.pay = wire.AppendValues(c.pay[:0], outV[off:off+n], found[off:off+n])
				c.respond(wire.OpValues, r.id, c.pay)
			}
			off += n
			c.putReq(r)
		}
	case wire.OpDelete, wire.OpDeleteAt:
		found := c.foundOut(len(keys))
		var last uint64
		if !c.srv.writableNow() {
			err = errNotWritable
		} else {
			last, err = c.srv.engine.DeleteBatchShipInto(keys, found)
			if err == nil {
				err = c.srv.commitMutation(last) // deletes are mutations: ack behind the barrier
			}
		}
		epoch := c.srv.epochNow()
		off := 0
		for _, r := range batch {
			n := len(r.keys)
			switch {
			case err != nil:
				c.respondErr(r.id, err)
			case op == wire.OpDeleteAt:
				// Covering token, as for INSERTAT/UPSERTAT above.
				c.pay = wire.AppendFoundsT(c.pay[:0], last, epoch, found[off:off+n])
				c.respond(wire.OpFoundsT, r.id, c.pay)
			default:
				c.pay = wire.AppendFounds(c.pay[:0], found[off:off+n])
				c.respond(wire.OpFounds, r.id, c.pay)
			}
			off += n
			c.putReq(r)
		}
	}
}

// foundOut returns the reusable found-flag result buffer at length n.
func (c *conn) foundOut(n int) []bool {
	if cap(c.found) < n {
		c.found = make([]bool, n)
	}
	return c.found[:n]
}

// valsOut returns a reusable uint64 result buffer of length n, disjoint
// from the key scratch.
func (c *conn) valsOut(n int) []uint64 {
	if cap(c.vals) < n {
		c.vals = make([]uint64, n)
	}
	return c.vals[:n]
}

// serveTTL answers the TTL/CAS mutations. They are mutations in full:
// gated on writability, shipped from inside the engine (the Ship
// variants), and acknowledged only behind the same commit barrier as
// inserts — a kill -9 after the response never loses an acked expiry
// or swap. Responses carry the covering ship LSN, so a client can
// read-its-swap on a replica with LOOKUPAT.
func (c *conn) serveTTL(r *request) {
	defer c.putReq(r)
	if !c.srv.writableNow() {
		c.respondErr(r.id, errNotWritable)
		return
	}
	var (
		last  uint64
		found []bool
		err   error
	)
	switch r.op {
	case wire.OpExpire:
		found = c.foundOut(len(r.keys))
		last, err = c.srv.engine.ExpireBatchShip(r.keys, r.vals, found)
	case wire.OpUpsertTTL:
		last, err = c.srv.engine.UpsertTTLBatchShip(r.keys, r.vals, r.vals2)
	case wire.OpCAS:
		found = c.foundOut(len(r.keys))
		last, err = c.srv.engine.CompareSwapBatchShip(r.keys, r.vals, r.vals2, found)
	}
	if err == nil {
		err = c.srv.commitMutation(last)
	}
	if err != nil {
		c.respondErr(r.id, err)
		return
	}
	epoch := c.srv.epochNow()
	if r.op == wire.OpUpsertTTL {
		c.pay = wire.AppendAckT(c.pay[:0], last, epoch)
		c.respond(wire.OpAckT, r.id, c.pay)
		return
	}
	c.pay = wire.AppendFoundsT(c.pay[:0], last, epoch, found)
	c.respond(wire.OpFoundsT, r.id, c.pay)
}

// serveScan answers one cursor page. Scans are reads — replicas serve
// them — and the engine may overshoot the requested page by the tail
// of the bucket that crossed it, so the request's max is clamped to
// half the protocol batch bound to keep the response encodable.
func (c *conn) serveScan(r *request) {
	defer c.putReq(r)
	max := int(r.maxN)
	if limit := min(c.srv.maxBatch, wire.MaxBatch/2); max <= 0 || max > limit {
		max = limit
	}
	keys, vals, next, err := c.srv.engine.Scan(r.lsn, max)
	if err != nil {
		c.respondErr(r.id, err)
		return
	}
	c.pay = wire.AppendScanR(c.pay[:0], next, keys, vals)
	c.respond(wire.OpScanR, r.id, c.pay)
}

// serveLookupAt answers a token-carrying lookup: wait (bounded) until
// this node has applied at least the token's LSN — read-your-writes on
// a replica — then serve the batch like any LOOKUP. A node without
// replication serves immediately: it cannot be behind a token it (or a
// primary it follows) never issued.
func (c *conn) serveLookupAt(r *request) {
	defer c.putReq(r)
	if c.srv.repl != nil && r.lsn > 0 {
		if err := c.srv.repl.waitApplied(r.lsn, c.srv.repl.tokenWait); err != nil {
			c.respondErr(r.id, err)
			return
		}
	}
	found := c.foundOut(len(r.keys))
	outV := c.valsOut(len(r.keys))
	if err := c.srv.engine.LookupBatchInto(r.keys, outV, found); err != nil {
		c.respondErr(r.id, err)
		return
	}
	c.pay = wire.AppendValues(c.pay[:0], outV, found)
	c.respond(wire.OpValues, r.id, c.pay)
}

// replReadBatch is the streamer's ship-log read granularity (records
// per REPLBATCH frame), bounded by wire.MaxReplBatch.
const replReadBatch = 4096

// serveRepl turns the connection into a replication stream: read the
// ship log from the subscriber's requested LSN, send each chunk as a
// REPLBATCH echoing the subscribe id, and at the tail block on the
// log's change channel — sending empty heartbeat batches so the
// follower can distinguish "idle" from "dead". The applier never
// returns to the request loop: a subscribed connection serves nothing
// else (REPL_ACK frames are handled by the reader). Exits when the
// reader does — disconnect or drain — which closes the write queue and
// the socket behind it.
func (c *conn) serveRepl(r *request) {
	id, cur := r.id, r.lsn
	c.putReq(r)
	repl := c.srv.repl
	if repl == nil {
		c.respondErr(id, errors.New("replication is not enabled"))
		return
	}
	repl.subscribe(c)
	defer repl.unsubscribe(c)
	if cap(c.recs) < replReadBatch {
		c.recs = make([]wal.Record, replReadBatch)
	}
	hb := time.NewTicker(repl.heartbeat)
	defer hb.Stop()
	for {
		select {
		case <-c.readerDone:
			return // the subscriber hung up (or the server is draining)
		default:
		}
		n, err := repl.ship.Read(cur, c.recs[:replReadBatch])
		if err != nil {
			// A subscribe below the log's start (or a corrupt log) cannot
			// be served; the follower must re-seed from a checkpoint.
			c.respondErr(id, err)
			return
		}
		if n == 0 {
			ch := repl.ship.Changed()
			if repl.ship.NextLSN() > cur {
				continue // an append raced the channel grab
			}
			select {
			case <-ch:
			case <-hb.C:
				c.pay = wire.AppendReplBatch(c.pay[:0], c.srv.epochNow(), cur, nil)
				c.respond(wire.OpReplBatch, id, c.pay)
			case <-c.readerDone:
				return
			}
			continue
		}
		c.wrecs = c.wrecs[:0]
		for _, rec := range c.recs[:n] {
			c.wrecs = append(c.wrecs, wire.ReplRec{Op: uint8(rec.Op), Key: rec.Key, Val: rec.Val})
		}
		c.pay = wire.AppendReplBatch(c.pay[:0], c.srv.epochNow(), cur, c.wrecs)
		c.respond(wire.OpReplBatch, id, c.pay)
		repl.addShipped()
		cur += uint64(n)
	}
}

// serveSingle answers the non-batch requests.
func (c *conn) serveSingle(r *request) {
	switch r.op {
	case wire.OpLen:
		c.pay = wire.AppendCount(c.pay[:0], uint64(c.srv.engine.Len()))
		c.respond(wire.OpCount, r.id, c.pay)
	case wire.OpSync:
		if err := c.srv.commit.commit(); err != nil {
			c.respondErr(r.id, err)
		} else {
			c.respond(wire.OpAck, r.id, nil)
		}
	case wire.OpFlush:
		if err := c.srv.engine.Flush(); err != nil {
			c.respondErr(r.id, err)
		} else {
			c.respond(wire.OpAck, r.id, nil)
		}
	case wire.OpStats:
		c.pay = wire.AppendStats(c.pay[:0], wire.Stats{
			Len:        int64(c.srv.engine.Len()),
			MemoryUsed: c.srv.engine.MemoryUsed(),
			Ops:        c.srv.engine.Stats(),
			Store:      c.srv.engine.StoreStats(),
			Repl:       c.srv.replStats(),
			Expiry:     c.srv.engine.ExpiryStats(),
		})
		c.respond(wire.OpStatsR, r.id, c.pay)
	case wire.OpPing:
		c.respond(wire.OpAck, r.id, nil)
	case wire.OpInfo:
		if info, ok := c.srv.Info(); ok {
			c.pay = wire.AppendInfo(c.pay[:0], info)
			c.respond(wire.OpInfoR, r.id, c.pay)
		} else {
			c.respondErr(r.id, errors.New("replication is not enabled"))
		}
	case wire.OpPromote:
		if info, err := c.srv.Promote(); err != nil {
			c.respondErr(r.id, err)
		} else {
			c.pay = wire.AppendInfo(c.pay[:0], info)
			c.respond(wire.OpInfoR, r.id, c.pay)
		}
	case wire.OpErr:
		// A request the reader rejected during decode; answer with its
		// recorded error text.
		c.respondErr(r.id, errors.New(r.errText))
	default:
		c.respondErr(r.id, fmt.Errorf("unknown request op %v", r.op))
	}
	c.putReq(r)
}

// respond encodes one response frame into a pooled buffer and queues it
// for the writer.
func (c *conn) respond(op wire.Op, id uint32, payload []byte) {
	var buf []byte
	select {
	case buf = <-c.bufFree:
		buf = buf[:0]
	default:
	}
	c.writeCh <- wire.AppendFrame(buf, op, id, payload)
}

// respondErr answers a request with an ERR frame carrying err's text.
func (c *conn) respondErr(id uint32, err error) {
	c.pay = append(c.pay[:0], err.Error()...)
	c.respond(wire.OpErr, id, c.pay)
}

// writer streams queued response frames to the socket, flushing
// whenever the queue runs dry (the pipelining flush rule: one syscall
// per burst, not per response). On a write error it keeps draining the
// queue so the applier never blocks, and closes the socket on exit —
// which is what finally unblocks the reader of a half-dead connection.
func (c *conn) writer() {
	defer c.nc.Close()
	bw := bufio.NewWriterSize(c.nc, connBufBytes)
	var werr error
	for buf := range c.writeCh {
		if werr == nil {
			if _, err := bw.Write(buf); err != nil {
				werr = err
			} else if len(c.writeCh) == 0 {
				if err := bw.Flush(); err != nil {
					werr = err
				}
			}
		}
		select {
		case c.bufFree <- buf:
		default:
		}
	}
	if werr == nil {
		bw.Flush()
	}
}

// getReq returns a pooled request with empty operand slices.
func (c *conn) getReq() *request {
	select {
	case r := <-c.reqFree:
		r.keys = r.keys[:0]
		r.vals = r.vals[:0]
		r.vals2 = r.vals2[:0]
		r.lsn = 0
		r.maxN = 0
		r.errText = ""
		return r
	default:
		return &request{}
	}
}

// putReq recycles a request.
func (c *conn) putReq(r *request) {
	select {
	case c.reqFree <- r:
	default:
	}
}
