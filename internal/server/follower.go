package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"extbuf/internal/wal"
	"extbuf/internal/wire"
)

// Follower is a node's replication apply loop: it dials the primary,
// subscribes to its ship log from this node's own applied horizon, and
// replays every record through the engine's normal batch path — then
// into this node's own ship log, which is what advances the applied
// LSN that read tokens wait on and what lets the node source
// replication itself after a promotion. The loop reconnects on any
// error until Stop (or promotion) ends it.
//
// Replay is idempotent by the same rule recovery uses (durable.go
// replayRecords): inserts re-apply as upserts, so a batch re-delivered
// across a reconnect — or re-applied after a crash that lost the ship
// log's tail but not the engine's — converges instead of erroring.
type Follower struct {
	srv  *Server
	addr string
	logf func(string, ...any)

	mu      sync.Mutex
	nc      net.Conn
	stopped bool

	done chan struct{}

	// replay scratch, reused across batches.
	recs  []wire.ReplRec
	keys  []uint64
	vals  []uint64
	found []bool
	pay   []byte
	frame []byte
}

// Follow starts replaying from the primary at addr. The server must
// have replication enabled and not already be following.
func (s *Server) Follow(addr string) (*Follower, error) {
	if s.repl == nil {
		return nil, errors.New("server: replication is not enabled")
	}
	f := &Follower{srv: s, addr: addr, logf: s.logf, done: make(chan struct{})}
	s.mu.Lock()
	if s.follower != nil {
		s.mu.Unlock()
		return nil, errors.New("server: already following")
	}
	s.follower = f
	s.mu.Unlock()
	go f.run()
	return f, nil
}

// Stop ends the loop and waits for it to exit. Idempotent.
func (f *Follower) Stop() {
	f.mu.Lock()
	f.stopped = true
	if f.nc != nil {
		f.nc.Close()
	}
	f.mu.Unlock()
	<-f.done
}

func (f *Follower) isStopped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stopped
}

// setConn publishes the live connection so Stop can sever it.
func (f *Follower) setConn(nc net.Conn) {
	f.mu.Lock()
	f.nc = nc
	f.mu.Unlock()
}

// followReconnect is the pause between stream attempts.
const followReconnect = 300 * time.Millisecond

func (f *Follower) run() {
	defer close(f.done)
	for !f.isStopped() {
		err := f.stream()
		if f.isStopped() {
			return
		}
		f.logf("follower: stream from %s ended: %v; reconnecting", f.addr, err)
		time.Sleep(followReconnect)
	}
}

// stream runs one connection's worth of replication: subscribe from
// our applied horizon, then replay batches until the stream breaks.
func (f *Follower) stream() error {
	nc, err := net.DialTimeout("tcp", f.addr, 3*time.Second)
	if err != nil {
		return err
	}
	f.setConn(nc)
	defer func() {
		f.setConn(nil)
		nc.Close()
	}()
	repl := f.srv.repl
	from := repl.ship.NextLSN()
	f.pay = wire.AppendLSN(f.pay[:0], from)
	f.frame = wire.AppendFrame(f.frame[:0], wire.OpReplSubscribe, 1, f.pay)
	if _, err := nc.Write(f.frame); err != nil {
		return err
	}
	// The primary heartbeats idle streams; a silent connection for many
	// heartbeat intervals means the primary (or the path to it) is dead.
	readTimeout := 10 * repl.heartbeat
	if readTimeout < 5*time.Second {
		readTimeout = 5 * time.Second
	}
	r := wire.NewReader(bufio.NewReaderSize(nc, connBufBytes))
	lastSync := time.Now()
	for {
		nc.SetReadDeadline(time.Now().Add(readTimeout))
		fr, err := r.Next()
		if err != nil {
			return err
		}
		switch fr.Op {
		case wire.OpReplBatch:
			epoch, firstLSN, batch, err := wire.DecodeReplBatchInto(fr.Payload, f.recs[:0])
			f.recs = batch[:0]
			if err != nil {
				return err
			}
			if err := repl.adoptEpoch(epoch); err != nil {
				return err
			}
			next := repl.ship.NextLSN()
			if firstLSN > next {
				return fmt.Errorf("replication gap: batch starts at lsn %d, applied through %d",
					firstLSN, next-1)
			}
			if skip := next - firstLSN; skip > 0 {
				// A re-delivery overlap (reconnect race): drop what we
				// already applied.
				if skip >= uint64(len(batch)) {
					batch = nil
				} else {
					batch = batch[skip:]
				}
			}
			if len(batch) > 0 {
				if err := f.apply(batch); err != nil {
					return err
				}
				repl.addReplayed()
			}
			// Acknowledge the applied horizon — heartbeats too, so a
			// primary that just connected us learns our position.
			f.pay = wire.AppendLSN(f.pay[:0], repl.ship.NextLSN()-1)
			f.frame = wire.AppendFrame(f.frame[:0], wire.OpReplAck, 1, f.pay)
			if _, err := nc.Write(f.frame); err != nil {
				return err
			}
			// Periodic local durability, off the ack path: semi-sync acks
			// promise the follower APPLIED the ops; this bounds how much
			// a crashed follower re-replays. With ShipRetain set, the
			// just-synced engine now durably covers everything below the
			// retained window, so this is also the safe point to drop the
			// ship log's prefix and bound the replica's disk footprint.
			if f.srv.durable && time.Since(lastSync) > repl.syncEvery {
				if err := f.srv.engine.Sync(); err != nil {
					return err
				}
				if err := repl.ship.Fsync(); err != nil {
					return err
				}
				if retain := uint64(repl.shipRetain); retain > 0 {
					if next := repl.ship.NextLSN(); next > retain {
						if err := repl.ship.TruncateBefore(next - retain); err != nil {
							return err
						}
					}
				}
				lastSync = time.Now()
			}
		case wire.OpErr:
			return fmt.Errorf("primary rejected subscription: %s", fr.Payload)
		default:
			return fmt.Errorf("unexpected %v frame on replication stream", fr.Op)
		}
	}
}

// apply replays one batch: engine first (so the applied horizon the
// ship log advertises never runs ahead of readable state), then the
// ship log, in runs of consecutive same-op records so the engine sees
// batch calls, not single ops.
//
// The replay deliberately does NOT go through the engine's ship seam
// (the *BatchShip variants): the seam lets shard workers interleave a
// batch's records into the log in apply order, which on the PRIMARY is
// what creates the total order — but a follower must reproduce the
// primary's log POSITION-IDENTICALLY, because LSNs are positions:
// chained subscribers (a follower serving REPL_SUBSCRIBE from this very
// log) and read tokens both address records by LSN, and a permuted copy
// would hand them different records under the same LSNs. Stream-order
// apply-then-append by this single goroutine preserves both the total
// order (it IS the primary's order) and the positions.
func (f *Follower) apply(batch []wire.ReplRec) error {
	for i := 0; i < len(batch); {
		op := batch[i].Op
		j := i + 1
		for j < len(batch) && batch[j].Op == op {
			j++
		}
		run := batch[i:j]
		f.keys = f.keys[:0]
		f.vals = f.vals[:0]
		for _, rec := range run {
			f.keys = append(f.keys, rec.Key)
			f.vals = append(f.vals, rec.Val)
		}
		var err error
		switch wal.Op(op) {
		case wal.OpInsert, wal.OpUpsert:
			err = f.srv.engine.UpsertBatch(f.keys, f.vals)
		case wal.OpDelete:
			if cap(f.found) < len(f.keys) {
				f.found = make([]bool, len(f.keys))
			}
			err = f.srv.engine.DeleteBatchInto(f.keys, f.found[:len(f.keys)])
		case wal.OpExpire:
			// Deadlines ride the value field. Non-ship variant: the
			// stream-order append below adds the record to our own ship
			// log at the primary's position; the engine seam must not.
			if cap(f.found) < len(f.keys) {
				f.found = make([]bool, len(f.keys))
			}
			err = f.srv.engine.ExpireBatch(f.keys, f.vals, f.found[:len(f.keys)])
		default:
			err = fmt.Errorf("replicated record with unknown op %d", op)
		}
		if err != nil {
			return err
		}
		if _, err := f.srv.repl.ship.Append(wal.Op(op), f.keys, f.vals); err != nil {
			return err
		}
		i = j
	}
	return nil
}
