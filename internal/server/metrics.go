package server

import (
	"bytes"
	"fmt"
	"net/http"
	"runtime"
)

// MetricsHandler returns an http.Handler serving the node's counters in
// Prometheus text exposition format (version 0.0.4). No client library:
// each scrape takes one stats snapshot and renders it with fmt, so the
// endpoint adds no dependencies and no steady-state cost. Mount it on a
// side listener (cmd/hashserved -metrics), never the data port.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		s.writeMetrics(&buf)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(buf.Bytes())
	})
}

// metric emits one single-sample metric family.
func metric(buf *bytes.Buffer, name, typ, help string, v int64) {
	fmt.Fprintf(buf, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", name, help, name, typ, name, v)
}

func (s *Server) writeMetrics(buf *bytes.Buffer) {
	ops := s.engine.Stats()
	st := s.engine.StoreStats()
	exp := s.engine.ExpiryStats()
	repl := s.replStats()

	metric(buf, "extbuf_keys", "gauge", "Live keys in the table.", int64(s.engine.Len()))
	metric(buf, "extbuf_memory_bytes", "gauge", "Bytes of in-memory buffering the structures account for.", s.engine.MemoryUsed())

	// Cost-model counters (the paper's currency: seek-dominated I/Os).
	metric(buf, "extbuf_model_reads_total", "counter", "Model block reads.", ops.Reads)
	metric(buf, "extbuf_model_writes_total", "counter", "Model block writes.", ops.Writes)
	metric(buf, "extbuf_model_writebacks_total", "counter", "Model buffer write-backs.", ops.WriteBacks)

	// Real storage costs (buffer pool, WAL, kernel-bypass tier).
	metric(buf, "extbuf_store_read_syscalls_total", "counter", "preads issued by the buffer pool.", st.ReadSyscalls)
	metric(buf, "extbuf_store_write_syscalls_total", "counter", "pwrites issued by the buffer pool.", st.WriteSyscalls)
	metric(buf, "extbuf_store_cache_hits_total", "counter", "Block accesses served from the pool.", st.CacheHits)
	metric(buf, "extbuf_store_cache_misses_total", "counter", "Block accesses that faulted a frame.", st.CacheMisses)
	metric(buf, "extbuf_store_bytes_read_total", "counter", "Bytes read from block files.", st.BytesRead)
	metric(buf, "extbuf_store_bytes_written_total", "counter", "Bytes written to block files.", st.BytesWritten)
	metric(buf, "extbuf_store_evictions_total", "counter", "Frames recycled for faulting blocks.", st.Evictions)
	metric(buf, "extbuf_store_dirty_writebacks_total", "counter", "Evictions that wrote the frame back first.", st.DirtyWritebacks)
	metric(buf, "extbuf_store_flushed_frames_total", "counter", "Dirty frames written back by flush barriers.", st.FlushedFrames)
	metric(buf, "extbuf_store_flush_runs_total", "counter", "pwrites the flushed frames coalesced into.", st.FlushRuns)
	metric(buf, "extbuf_store_fsyncs_total", "counter", "Block-file fsyncs.", st.Fsyncs)
	metric(buf, "extbuf_store_ghost_hits_total", "counter", "Faults of recently evicted blocks.", st.GhostHits)
	metric(buf, "extbuf_wal_spills_total", "counter", "Write-ahead-log spill writes.", st.WALSpills)
	metric(buf, "extbuf_wal_fsyncs_total", "counter", "Write-ahead-log fsyncs.", st.WALFsyncs)
	metric(buf, "extbuf_uring_enters_total", "counter", "io_uring_enter syscalls.", st.UringEnters)
	metric(buf, "extbuf_uring_sqes_total", "counter", "io_uring submission-queue entries placed.", st.UringSQEs)
	metric(buf, "extbuf_directio_stores", "gauge", "Stores whose block fd is open O_DIRECT.", st.DirectIO)

	// TTL expiry.
	metric(buf, "extbuf_expiry_tracked", "gauge", "Keys with a pending expiry deadline.", exp.Tracked)
	metric(buf, "extbuf_expiry_lazy_hits_total", "counter", "Reads that filtered an expired key.", exp.LazyHits)
	metric(buf, "extbuf_expiry_swept_total", "counter", "Expired keys reclaimed by the sweeper.", exp.Swept)

	// Replication (all zero with replication off).
	metric(buf, "extbuf_repl_epoch", "gauge", "Replication epoch (bumped per promotion).", repl.Epoch)
	metric(buf, "extbuf_repl_current_lsn", "gauge", "Highest LSN assigned or applied.", repl.CurrentLSN)
	metric(buf, "extbuf_repl_follower_lag", "gauge", "Slowest subscribed follower's LSN lag.", repl.FollowerLag)
	metric(buf, "extbuf_repl_frames_shipped_total", "counter", "Replication batches sent to followers.", repl.FramesShipped)
	metric(buf, "extbuf_repl_frames_replayed_total", "counter", "Replication batches applied as a follower.", repl.FramesReplayed)

	writable := int64(0)
	if s.writableNow() {
		writable = 1
	}
	metric(buf, "extbuf_writable", "gauge", "1 when this node accepts mutations.", writable)
	metric(buf, "go_goroutines", "gauge", "Goroutines in the process.", int64(runtime.NumGoroutine()))
}
