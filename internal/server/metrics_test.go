package server_test

import (
	"context"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"extbuf"
	"extbuf/internal/server"
)

// TestMetricsEndpoint scrapes /metrics off a live engine and checks the
// exposition parses as prometheus text: every family has HELP and TYPE
// lines, and the engine's state shows up with the right values.
func TestMetricsEndpoint(t *testing.T) {
	eng, err := extbuf.NewSharded("buffered", extbuf.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv := server.New(server.Config{Engine: eng, Logf: t.Logf})
	defer srv.Shutdown(context.Background())

	if err := eng.UpsertBatch([]uint64{1, 2, 3}, []uint64{4, 5, 6}); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(srv.MetricsHandler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}

	samples := make(map[string]string)
	var families, helps, types int
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			helps++
		case strings.HasPrefix(line, "# TYPE "):
			types++
		default:
			fields := strings.Fields(line)
			if len(fields) != 2 {
				t.Fatalf("malformed sample line %q", line)
			}
			samples[fields[0]] = fields[1]
			families++
		}
	}
	if families == 0 || helps != families || types != families {
		t.Fatalf("%d samples, %d HELP, %d TYPE lines", families, helps, types)
	}
	if samples["extbuf_keys"] != "3" {
		t.Fatalf("extbuf_keys = %q, want 3", samples["extbuf_keys"])
	}
	if samples["extbuf_writable"] != "1" {
		t.Fatalf("extbuf_writable = %q, want 1", samples["extbuf_writable"])
	}
	for _, want := range []string{"extbuf_expiry_tracked", "extbuf_expiry_swept_total",
		"extbuf_store_cache_hits_total", "extbuf_repl_current_lsn", "go_goroutines"} {
		if _, ok := samples[want]; !ok {
			t.Fatalf("metric %s missing from exposition", want)
		}
	}
}
