package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"time"

	"extbuf"
	"extbuf/internal/wal"
	"extbuf/internal/wire"
)

// ReplConfig enables WAL-shipping replication on a server. A node with
// replication on keeps a ship log — a server-level append-only op log
// (wal.ShipLog) that every applied mutation is written to — and either
// sources it to subscribed followers (primary) or replays a primary's
// stream into its own engine and ship log (follower). See DESIGN.md,
// "Replication".
type ReplConfig struct {
	// ShipPath names the ship log file (required).
	ShipPath string
	// StatePath names the small state file persisting the replication
	// epoch across restarts (required).
	StatePath string
	// Follow is the primary's address. Empty starts the node writable
	// (a primary); non-empty starts it as a read-only follower of that
	// address — call Server.Follow to begin replaying.
	Follow string
	// SyncFollowers is the semi-synchronous commit requirement: a
	// mutation is acknowledged only after this many subscribed
	// followers have confirmed applying its LSN. 0 (default) keeps
	// acks local — asynchronous replication.
	SyncFollowers int
	// SyncTimeout bounds the semi-sync wait (default 5s); on expiry
	// the mutation is answered with an error and NOT acknowledged,
	// though it remains applied locally.
	SyncTimeout time.Duration
	// Heartbeat is the idle-stream heartbeat interval (default 500ms).
	Heartbeat time.Duration
	// TokenWait bounds how long a token-carrying LOOKUP waits for this
	// node to apply up to the token before answering BEHIND (default
	// 3s). Short enough that a client can fall back to the primary;
	// long enough to ride out a normal replication hiccup.
	TokenWait time.Duration
	// ShipRetain bounds a follower's ship log: after each periodic
	// durability sync the apply loop truncates the log to its newest
	// ShipRetain records (the synced engine covers the dropped prefix).
	// 0 (default) keeps everything. Chained subscribers reading below
	// the retained window get an error and must re-seed.
	ShipRetain int
	// SyncEvery is the follower's periodic local durability interval —
	// engine Sync + ship-log fsync off the ack path (default 1s). It is
	// also the ship-log truncation cadence when ShipRetain is set.
	SyncEvery time.Duration
}

// Replication error sentinels. The wire carries their text; clients
// match on the ErrTextReadOnly/ErrTextBehind prefixes.
var (
	// errNotWritable rejects mutations on a follower.
	errNotWritable = errors.New(wire.ErrTextReadOnly + ": node is a read-only replica")
	// errSyncTimeout fails a semi-sync commit whose followers lag.
	errSyncTimeout = errors.New("repl: timed out waiting for follower acks")
)

// replState is a node's replication machinery, shared by every
// connection: the ship log, the epoch/writable identity, the subscribed
// followers and their acknowledged LSNs, and the traffic counters.
type replState struct {
	ship       *wal.ShipLog
	statePath  string
	syncN      int
	syncTmo    time.Duration
	heartbeat  time.Duration
	tokenWait  time.Duration
	shipRetain int
	syncEvery  time.Duration

	mu       sync.Mutex
	epoch    uint64
	writable bool
	follower bool             // role for INFO: started with Follow
	subs     map[*conn]uint64 // subscribed follower conns -> acked LSN
	ackCh    chan struct{}    // closed+replaced when subs/acks change
	shipped  int64            // REPLBATCH frames sent
	replayed int64            // REPLBATCH frames applied (follower)
}

// openRepl builds the replication state: open (or recover) the ship
// log and adopt the persisted epoch.
func openRepl(cfg ReplConfig) (*replState, error) {
	if cfg.ShipPath == "" || cfg.StatePath == "" {
		return nil, errors.New("server: ReplConfig needs ShipPath and StatePath")
	}
	if cfg.SyncTimeout <= 0 {
		cfg.SyncTimeout = 5 * time.Second
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 500 * time.Millisecond
	}
	if cfg.TokenWait <= 0 {
		cfg.TokenWait = 3 * time.Second
	}
	if cfg.SyncEvery <= 0 {
		cfg.SyncEvery = time.Second
	}
	ship, err := wal.OpenShip(cfg.ShipPath, 1)
	if err != nil {
		return nil, err
	}
	epoch, err := loadReplEpoch(cfg.StatePath)
	if err != nil {
		ship.Close()
		return nil, err
	}
	return &replState{
		ship:       ship,
		statePath:  cfg.StatePath,
		syncN:      cfg.SyncFollowers,
		syncTmo:    cfg.SyncTimeout,
		heartbeat:  cfg.Heartbeat,
		tokenWait:  cfg.TokenWait,
		shipRetain: cfg.ShipRetain,
		syncEvery:  cfg.SyncEvery,
		epoch:      epoch,
		writable:   cfg.Follow == "",
		follower:   cfg.Follow != "",
		subs:       make(map[*conn]uint64),
		ackCh:      make(chan struct{}),
	}, nil
}

// appliedLSN is the highest LSN in the node's ship log — on a primary
// the engine's shard workers ship every mutation as they apply it, and
// on a follower the apply loop appends each replayed record, so this is
// the node's applied horizon for read tokens.
func (r *replState) appliedLSN() uint64 { return r.ship.NextLSN() - 1 }

// info snapshots the node's replication identity.
func (r *replState) info() wire.Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	role := uint8(wire.RolePrimary)
	if r.follower {
		role = wire.RoleFollower
	}
	return wire.Info{
		Epoch:      r.epoch,
		AppliedLSN: r.appliedLSN(),
		Writable:   r.writable,
		Role:       role,
	}
}

// isWritable reports whether mutations are accepted.
func (r *replState) isWritable() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.writable
}

// stats snapshots the replication counters for the STATS payload.
func (r *replState) stats() extbuf.ReplStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	current := int64(r.appliedLSN())
	var lag int64
	for _, acked := range r.subs {
		if l := current - int64(acked); l > lag {
			lag = l
		}
	}
	return extbuf.ReplStats{
		Epoch:          int64(r.epoch),
		CurrentLSN:     current,
		FollowerLag:    lag,
		FramesShipped:  r.shipped,
		FramesReplayed: r.replayed,
		ShipStartLSN:   int64(r.ship.StartLSN()),
	}
}

// epochNow reads the current epoch.
func (r *replState) epochNow() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// addShipped and addReplayed bump the frame traffic counters.
func (r *replState) addShipped() {
	r.mu.Lock()
	r.shipped++
	r.mu.Unlock()
}

func (r *replState) addReplayed() {
	r.mu.Lock()
	r.replayed++
	r.mu.Unlock()
}

// subscribe registers a follower connection (acked nothing yet) and
// unsubscribe drops it, waking semi-sync waiters so they re-count.
func (r *replState) subscribe(c *conn) {
	r.mu.Lock()
	r.subs[c] = 0
	r.bumpAckLocked()
	r.mu.Unlock()
}

func (r *replState) unsubscribe(c *conn) {
	r.mu.Lock()
	delete(r.subs, c)
	r.bumpAckLocked()
	r.mu.Unlock()
}

// ackFrom records a follower's applied-up-to LSN (sent as REPL_ACK on
// its subscribed connection) and wakes semi-sync waiters.
func (r *replState) ackFrom(c *conn, lsn uint64) {
	r.mu.Lock()
	if prev, ok := r.subs[c]; ok && lsn > prev {
		r.subs[c] = lsn
		r.bumpAckLocked()
	}
	r.mu.Unlock()
}

// bumpAckLocked rotates the ack notification channel (callers hold mu).
func (r *replState) bumpAckLocked() {
	close(r.ackCh)
	r.ackCh = make(chan struct{})
}

// ackedBy counts followers that have confirmed applying lsn.
func (r *replState) ackedBy(lsn uint64) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, acked := range r.subs {
		if acked >= lsn {
			n++
		}
	}
	return n
}

// waitFollowers implements the semi-synchronous commit rule: block
// until SyncFollowers subscribed followers have acknowledged applying
// lsn, or fail after SyncTimeout. With SyncFollowers 0 it returns
// immediately — asynchronous replication. With SyncFollowers > 1 the
// rule generalizes without primary fan-out: every follower acks its own
// applied horizon on its own subscription, and ackedBy simply counts
// them (in a chain, F2's progress is acked to F1, not here — only
// direct subscribers count toward the barrier).
//
// Fresh-subscriber semantics (audited): a newly subscribed follower
// starts at acked LSN 0, so it can never SATISFY a barrier for a real
// mutation (lsn >= 1) before catching up and acking — and it cannot
// STALL one either: barriers count satisfied followers, they never wait
// on the slowest, so a far-behind subscriber only delays a commit when
// fewer than SyncFollowers others are caught up, which is the semantics
// semi-sync promises. The lsn == 0 guard keeps a no-op mutation (empty
// batch, or replication-off engine returning no LSN) from blocking on
// "acked >= 0 by N followers" when no followers exist at all.
func (r *replState) waitFollowers(lsn uint64) error {
	if r.syncN == 0 || lsn == 0 {
		return nil
	}
	deadline := time.NewTimer(r.syncTmo)
	defer deadline.Stop()
	for {
		if r.ackedBy(lsn) >= r.syncN {
			return nil
		}
		r.mu.Lock()
		ch := r.ackCh
		r.mu.Unlock()
		if r.ackedBy(lsn) >= r.syncN {
			return nil
		}
		select {
		case <-ch:
		case <-deadline.C:
			return fmt.Errorf("%w: lsn %d acked by %d of %d required",
				errSyncTimeout, lsn, r.ackedBy(lsn), r.syncN)
		}
	}
}

// waitApplied blocks until the node has applied minLSN — the replica
// side of an LSN read token — or fails after timeout with a BEHIND
// error the client can use to re-route.
func (r *replState) waitApplied(minLSN uint64, timeout time.Duration) error {
	if r.appliedLSN() >= minLSN {
		return nil
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for r.appliedLSN() < minLSN {
		ch := r.ship.Changed()
		if r.appliedLSN() >= minLSN {
			break
		}
		select {
		case <-ch:
		case <-deadline.C:
			return fmt.Errorf("%s: applied lsn %d behind read token %d",
				wire.ErrTextBehind, r.appliedLSN(), minLSN)
		}
	}
	return nil
}

// adoptEpoch records a higher epoch observed in the primary's stream,
// persisting it so a restart keeps counting from there.
func (r *replState) adoptEpoch(epoch uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if epoch <= r.epoch {
		return nil
	}
	r.epoch = epoch
	return saveReplEpoch(r.statePath, epoch)
}

// promote flips the node writable in a fresh epoch. The caller
// (Server.Promote) has already stopped the follower loop and synced
// the engine.
func (r *replState) promote() (wire.Info, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.writable {
		r.epoch++
		r.writable = true
		r.follower = false
		if err := saveReplEpoch(r.statePath, r.epoch); err != nil {
			r.epoch--
			r.writable = false
			r.follower = true
			return wire.Info{}, err
		}
	}
	return wire.Info{
		Epoch:      r.epoch,
		AppliedLSN: r.appliedLSN(),
		Writable:   true,
		Role:       wire.RolePrimary,
	}, nil
}

// close shuts the ship log. Streaming connections must be gone.
func (r *replState) close() error { return r.ship.Close() }

// The epoch state file: [4 magic "EXRP"] [4 version] [8 epoch] [4 crc],
// written atomically (temp + rename) so a crash leaves either the old
// or the new epoch, never a torn one.
const replStateMagic = 0x50525845

func loadReplEpoch(path string) (uint64, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("repl: read state: %w", err)
	}
	if len(data) != 20 ||
		binary.LittleEndian.Uint32(data[0:4]) != replStateMagic ||
		binary.LittleEndian.Uint32(data[4:8]) != 1 ||
		binary.LittleEndian.Uint32(data[16:20]) != crc32.ChecksumIEEE(data[:16]) {
		// A torn state write can only lose an epoch bump; starting at 0
		// is wrong after a promotion, so fail loudly instead of healing.
		return 0, fmt.Errorf("repl: corrupt state file %s", path)
	}
	return binary.LittleEndian.Uint64(data[8:16]), nil
}

func saveReplEpoch(path string, epoch uint64) error {
	var data [20]byte
	binary.LittleEndian.PutUint32(data[0:4], replStateMagic)
	binary.LittleEndian.PutUint32(data[4:8], 1)
	binary.LittleEndian.PutUint64(data[8:16], epoch)
	binary.LittleEndian.PutUint32(data[16:20], crc32.ChecksumIEEE(data[:16]))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data[:], 0o644); err != nil {
		return fmt.Errorf("repl: write state: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("repl: commit state: %w", err)
	}
	return nil
}
