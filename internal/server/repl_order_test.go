package server_test

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"extbuf"
	"extbuf/client"
	"extbuf/internal/server"
	"extbuf/internal/wal"
	"extbuf/internal/wire"
)

// orderNode is a replication node whose state directory is known, so a
// test can inspect its ship log file after a clean stop.
type orderNode struct {
	*replNode
	dir string
}

// startOrderNode is startReplNode with the state directory exposed, an
// optional durable engine, and a ReplConfig hook for retention knobs.
func startOrderNode(t *testing.T, follow string, durable bool, mut func(*server.ReplConfig)) *orderNode {
	t.Helper()
	dir := t.TempDir()
	cfg := extbuf.Config{}
	if durable {
		cfg = extbuf.Config{
			BlockSize: 16, MemoryWords: 512, ExpectedItems: 4096,
			Backend: "file", Path: filepath.Join(dir, "db"), CacheBlocks: 8,
		}
	}
	eng, err := extbuf.NewSharded("buffered", cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	rc := &server.ReplConfig{
		ShipPath:  filepath.Join(dir, "ship.log"),
		StatePath: filepath.Join(dir, "repl.state"),
		Follow:    follow,
		Heartbeat: 50 * time.Millisecond,
		TokenWait: 2 * time.Second,
	}
	if mut != nil {
		mut(rc)
	}
	srv, err := server.NewServer(server.Config{Engine: eng, Logf: t.Logf, Repl: rc})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n := &replNode{srv: srv, eng: eng, addr: lis.Addr().String(), serveErr: make(chan error, 1)}
	go func() { n.serveErr <- srv.Serve(lis) }()
	return &orderNode{replNode: n, dir: dir}
}

// readShipRecords reads a closed ship log file in full.
func readShipRecords(t *testing.T, path string) []wal.Record {
	t.Helper()
	s, err := wal.OpenShip(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var out []wal.Record
	recs := make([]wal.Record, 512)
	cur := s.StartLSN()
	for {
		n, err := s.Read(cur, recs)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			return out
		}
		out = append(out, recs[:n]...)
		cur += uint64(n)
	}
}

// TestOneKeyHammerOrderIdentical is the §2a regression at the server
// level: N connections race upserts on one hot key (plus fan-out
// traffic on others) while a follower tails. The shard-sequenced ship
// path must make the ship log a total order of applied mutations, so
// after quiescing (1) the primary's engine value for the hot key equals
// the value of the LAST ship-log record for that key — apply order ==
// ship order — and (2) the follower's log is record-identical to the
// primary's and its engine converged to the same value. Run with -race.
func TestOneKeyHammerOrderIdentical(t *testing.T) {
	primary := startOrderNode(t, "", false, nil)
	follower := startOrderNode(t, primary.addr, false, nil)
	if _, err := follower.srv.Follow(primary.addr); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	const (
		hotKey  = uint64(77)
		writers = 8
		rounds  = 300
	)
	var mu sync.Mutex
	var maxTok client.ReadToken
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := client.Dial(primary.addr, client.Options{Conns: 1})
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			var last client.ReadToken
			for i := 0; i < rounds; i++ {
				val := uint64(w)<<32 | uint64(i+1)
				// The hot key plus a writer-private key: the batch fans
				// out across shards, so the ship merge is really racing.
				tok, err := cl.Upsert(ctx,
					[]uint64{hotKey, uint64(1000 + w)},
					[]uint64{val, val})
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				last = last.Max(tok)
			}
			mu.Lock()
			maxTok = maxTok.Max(last)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	pc := dialNode(t, primary.addr)
	fc := dialNode(t, follower.addr)
	pv, pfound, err := pc.Lookup(ctx, []uint64{hotKey}, client.ReadToken{})
	if err != nil || !pfound[0] {
		t.Fatalf("primary hot-key lookup: %v %v", pfound, err)
	}
	// The token forces the follower to the primary's horizon first.
	fv, ffound, err := fc.Lookup(ctx, []uint64{hotKey}, maxTok)
	if err != nil || !ffound[0] {
		t.Fatalf("follower hot-key lookup: %v %v", ffound, err)
	}
	if fv[0] != pv[0] {
		t.Fatalf("§2a divergence: hot key = %#x on primary, %#x on follower", pv[0], fv[0])
	}

	primary.stop(t)
	follower.stop(t)

	precs := readShipRecords(t, filepath.Join(primary.dir, "ship.log"))
	frecs := readShipRecords(t, filepath.Join(follower.dir, "ship.log"))
	if len(precs) != writers*rounds*2 {
		t.Fatalf("primary shipped %d records, want %d", len(precs), writers*rounds*2)
	}
	if len(frecs) != len(precs) {
		t.Fatalf("follower log has %d records, primary %d", len(frecs), len(precs))
	}
	var lastHot uint64
	for i := range precs {
		if precs[i] != frecs[i] {
			t.Fatalf("logs diverge at lsn %d: primary %+v, follower %+v",
				precs[i].LSN, precs[i], frecs[i])
		}
		if precs[i].Key == hotKey {
			lastHot = precs[i].Val
		}
	}
	if lastHot != pv[0] {
		t.Fatalf("total-order violation: engine settled on %#x but the ship log's last record for the hot key is %#x",
			pv[0], lastHot)
	}
}

// TestChainedReplication stands up primary -> F1 -> F2: F2 subscribes
// to F1's own ship log, so the chain needs exactly one stream from the
// primary. Writes reach F2 through the chain (read tokens ride it),
// and after the primary dies and F1 is promoted, F2 keeps following F1
// and adopts the bumped epoch from the stream.
func TestChainedReplication(t *testing.T) {
	p := startOrderNode(t, "", false, nil)
	f1 := startOrderNode(t, p.addr, false, nil)
	defer f1.stop(t)
	if _, err := f1.srv.Follow(p.addr); err != nil {
		t.Fatal(err)
	}
	f2 := startOrderNode(t, f1.addr, false, nil)
	defer f2.stop(t)
	if _, err := f2.srv.Follow(f1.addr); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	pc := dialNode(t, p.addr)
	keys := make([]uint64, 300)
	vals := make([]uint64, 300)
	for i := range keys {
		keys[i] = uint64(i + 1)
		vals[i] = uint64(i) * 11
	}
	tok, err := pc.Insert(ctx, keys, vals)
	if err != nil {
		t.Fatal(err)
	}

	// Read-your-writes at the end of the chain.
	f2c := dialNode(t, f2.addr)
	got, found, err := f2c.Lookup(ctx, keys, tok)
	if err != nil {
		t.Fatalf("chain-end Lookup: %v", err)
	}
	for i := range keys {
		if !found[i] || got[i] != vals[i] {
			t.Fatalf("key %d at chain end: (%d,%v), want (%d,true)", keys[i], got[i], found[i], vals[i])
		}
	}

	// Failover: kill the primary, promote F1. F2's subscription to F1
	// is untouched — the chain keeps replicating in the new epoch.
	p.kill(t)
	f1c := dialNode(t, f1.addr)
	info, err := f1c.Promote(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 1 || !info.Writable {
		t.Fatalf("promoted F1 info = %+v", info)
	}
	tok2, err := f1c.Upsert(ctx, []uint64{9999}, []uint64{123})
	if err != nil {
		t.Fatalf("post-promotion Upsert on F1: %v", err)
	}
	got2, found2, err := f2c.Lookup(ctx, []uint64{9999}, tok2)
	if err != nil || !found2[0] || got2[0] != 123 {
		t.Fatalf("chained write after promotion: (%v,%v) %v", got2, found2, err)
	}
	fi, err := f2c.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Epoch != 1 {
		t.Fatalf("F2 did not adopt the promotion epoch: %+v", fi)
	}
}

// TestSemiSyncTwoFollowers checks SyncFollowers=2 without primary
// fan-out: with one caught-up follower commits time out; with two they
// are acked, and both followers' applied horizons then cover the token.
func TestSemiSyncTwoFollowers(t *testing.T) {
	p := startOrderNode(t, "", false, func(rc *server.ReplConfig) {
		rc.SyncFollowers = 2
		rc.SyncTimeout = 300 * time.Millisecond
	})
	defer p.stop(t)
	ctx := context.Background()
	pc := dialNode(t, p.addr)

	fa := startOrderNode(t, p.addr, false, nil)
	defer fa.stop(t)
	if _, err := fa.srv.Follow(p.addr); err != nil {
		t.Fatal(err)
	}
	// One follower cannot satisfy a 2-follower barrier.
	if _, err := pc.Insert(ctx, []uint64{1}, []uint64{10}); err == nil {
		t.Fatal("semi-sync-2 Insert with one follower succeeded")
	}

	fb := startOrderNode(t, p.addr, false, nil)
	defer fb.stop(t)
	if _, err := fb.srv.Follow(p.addr); err != nil {
		t.Fatal(err)
	}
	var tok client.ReadToken
	deadline := time.Now().Add(10 * time.Second)
	for {
		var err error
		tok, err = pc.Upsert(ctx, []uint64{2}, []uint64{20})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("semi-sync-2 Upsert never succeeded: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, f := range []*orderNode{fa, fb} {
		fi, err := dialNode(t, f.addr).Info(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if fi.AppliedLSN < tok.LSN {
			t.Fatalf("follower %s applied %d behind semi-sync-2 acked token %d",
				f.addr, fi.AppliedLSN, tok.LSN)
		}
	}
}

// TestFreshSubscriberSemiSync pins the audited fresh-subscriber
// semantics: a newly subscribed follower that never acks (1) cannot
// satisfy a semi-sync barrier — commits still time out when it is the
// only subscriber — and (2) cannot stall one — commits still succeed
// promptly once a caught-up follower acks, with concurrent writers
// racing the subscription under -race.
func TestFreshSubscriberSemiSync(t *testing.T) {
	p := startOrderNode(t, "", false, func(rc *server.ReplConfig) {
		rc.SyncFollowers = 1
		rc.SyncTimeout = 400 * time.Millisecond
	})
	defer p.stop(t)
	ctx := context.Background()
	pc := dialNode(t, p.addr)

	// A raw REPL_SUBSCRIBE that never acks: the freshest possible
	// subscriber, permanently at acked LSN 0.
	silent, err := net.Dial("tcp", p.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()
	frame := wire.AppendFrame(nil, wire.OpReplSubscribe, 1, wire.AppendLSN(nil, 1))
	if _, err := silent.Write(frame); err != nil {
		t.Fatal(err)
	}
	// Wait until the subscription registered (the lag gauge sees it).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := pc.Insert(ctx, []uint64{1}, []uint64{10}); err != nil {
			// Expected: the silent subscriber must not satisfy the
			// barrier. The mutation applied locally, so the lag gauge now
			// shows the silent subscriber behind — proof it was counted
			// as subscribed when it failed to satisfy.
			st, serr := pc.Stats(ctx)
			if serr == nil && st.Repl.FollowerLag > 0 {
				break
			}
		} else {
			t.Fatal("semi-sync Insert satisfied by a never-acking fresh subscriber")
		}
		if time.Now().After(deadline) {
			t.Fatal("silent subscription never registered")
		}
	}

	// A real follower catches up and acks; the silent subscriber must
	// not stall the barrier either. Concurrent writers race the
	// subscription handshake — the -race half of the pin.
	f := startOrderNode(t, p.addr, false, nil)
	defer f.stop(t)
	if _, err := f.srv.Follow(p.addr); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := client.Dial(p.addr, client.Options{Conns: 1})
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			deadline := time.Now().Add(10 * time.Second)
			ok := 0
			for ok < 20 {
				if _, err := cl.Upsert(ctx, []uint64{uint64(100 + w)}, []uint64{uint64(ok)}); err == nil {
					ok++
					continue
				}
				if time.Now().After(deadline) {
					t.Errorf("writer %d: commits never unblocked with a caught-up follower present", w)
					return
				}
				time.Sleep(10 * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
}

// TestFollowerShipLogTruncation is the bounded-replica regression: with
// ShipRetain set, the follower's periodic durability sync truncates its
// ship log prefix, so the file shrinks instead of growing forever, and
// STATS exposes the retained window's start.
func TestFollowerShipLogTruncation(t *testing.T) {
	const retain = 200
	p := startOrderNode(t, "", false, nil)
	defer p.stop(t)
	f := startOrderNode(t, p.addr, true, func(rc *server.ReplConfig) {
		rc.ShipRetain = retain
		rc.SyncEvery = 30 * time.Millisecond
	})
	defer f.stop(t)
	if _, err := f.srv.Follow(p.addr); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	pc := dialNode(t, p.addr)
	const total = 3000
	keys := make([]uint64, 100)
	vals := make([]uint64, 100)
	for base := 0; base < total; base += len(keys) {
		for i := range keys {
			keys[i] = uint64(base + i + 1)
			vals[i] = uint64(base+i) * 3
		}
		if _, err := pc.Insert(ctx, keys, vals); err != nil {
			t.Fatal(err)
		}
	}

	// Heartbeats keep driving the follower's sync cadence after the
	// writes stop, so the final truncation lands without more traffic.
	fc := dialNode(t, f.addr)
	wantStart := int64(total + 1 - retain)
	deadline := time.Now().Add(15 * time.Second)
	for {
		st, err := fc.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Repl.CurrentLSN == total && st.Repl.ShipStartLSN >= wantStart {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never truncated: current=%d shipStart=%d, want start >= %d",
				st.Repl.CurrentLSN, st.Repl.ShipStartLSN, wantStart)
		}
		time.Sleep(30 * time.Millisecond)
	}
	info, err := os.Stat(filepath.Join(f.dir, "ship.log"))
	if err != nil {
		t.Fatal(err)
	}
	// 21 bytes per record: the retained window plus header is a small
	// fraction of the 3000-record stream the log would otherwise hold.
	if max := int64(21 * total / 2); info.Size() > max {
		t.Fatalf("follower ship log is %d bytes after truncation, want <= %d", info.Size(), max)
	}
	// The primary, with no retention configured, still holds everything.
	st, err := pc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Repl.ShipStartLSN != 1 {
		t.Fatalf("primary ship start = %d, want 1", st.Repl.ShipStartLSN)
	}
}
