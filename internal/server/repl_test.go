package server_test

import (
	"context"
	"errors"
	"net"
	"path/filepath"
	"testing"
	"time"

	"extbuf"
	"extbuf/client"
	"extbuf/internal/server"
)

// replNode is one replication-enabled server over a mem-backend engine.
type replNode struct {
	srv      *server.Server
	eng      *extbuf.Sharded
	addr     string
	serveErr chan error
}

// startReplNode boots a replication-enabled node. follow="" makes a
// primary; otherwise the node starts as a read-only follower of that
// address (call node.srv.Follow to begin replaying). Short intervals
// throughout so tests run fast.
func startReplNode(t *testing.T, follow string, syncFollowers int, syncTimeout time.Duration) *replNode {
	t.Helper()
	dir := t.TempDir()
	eng, err := extbuf.NewSharded("buffered", extbuf.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.NewServer(server.Config{
		Engine: eng,
		Logf:   t.Logf,
		Repl: &server.ReplConfig{
			ShipPath:      filepath.Join(dir, "ship.log"),
			StatePath:     filepath.Join(dir, "repl.state"),
			Follow:        follow,
			SyncFollowers: syncFollowers,
			SyncTimeout:   syncTimeout,
			Heartbeat:     50 * time.Millisecond,
			TokenWait:     300 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n := &replNode{srv: srv, eng: eng, addr: lis.Addr().String(), serveErr: make(chan error, 1)}
	go func() { n.serveErr <- srv.Serve(lis) }()
	return n
}

// stop drains the node gracefully.
func (n *replNode) stop(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := n.srv.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
	<-n.serveErr
	if err := n.srv.CloseRepl(); err != nil {
		t.Errorf("close repl: %v", err)
	}
	if err := n.eng.Close(); err != nil {
		t.Errorf("engine close: %v", err)
	}
}

// kill tears the node down ungracefully — connections are severed with
// requests in flight, like a process death (minus losing memory, which
// the e2e harness covers with a real kill -9).
func (n *replNode) kill(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = n.srv.Shutdown(ctx) // expired ctx: forcible close
	<-n.serveErr
	_ = n.srv.CloseRepl()
	_ = n.eng.Close()
}

func dialNode(t *testing.T, addr string) *client.Client {
	t.Helper()
	cl, err := client.Dial(addr, client.Options{Conns: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// TestReplicationReadYourWrites stands up a primary/follower pair and
// checks the tentpole path end to end: mutations on the primary return
// tokens, token-carrying lookups on the follower see those writes, the
// follower rejects mutations, and both INFO and the STATS replication
// counters reflect the topology.
func TestReplicationReadYourWrites(t *testing.T) {
	primary := startReplNode(t, "", 0, 0)
	defer primary.stop(t)
	follower := startReplNode(t, primary.addr, 0, 0)
	defer follower.stop(t)
	if _, err := follower.srv.Follow(primary.addr); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	pc := dialNode(t, primary.addr)
	fc := dialNode(t, follower.addr)

	keys := make([]uint64, 500)
	vals := make([]uint64, 500)
	for i := range keys {
		keys[i] = uint64(i + 1)
		vals[i] = uint64(i) * 3
	}
	tok, err := pc.Insert(ctx, keys, vals)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if tok.LSN != 500 {
		t.Fatalf("insert token LSN = %d, want 500", tok.LSN)
	}
	founds, dtok, err := pc.Delete(ctx, keys[:20])
	if err != nil {
		t.Fatalf("Delete: %v", err)
	}
	for i, ok := range founds {
		if !ok {
			t.Fatalf("delete %d missed", i)
		}
	}
	if dtok.LSN != 520 {
		t.Fatalf("delete token LSN = %d, want 520", dtok.LSN)
	}
	tok = tok.Max(dtok)

	// Read-your-writes on the replica: the token forces it to catch up.
	got, found, err := fc.Lookup(ctx, keys, tok)
	if err != nil {
		t.Fatalf("follower Lookup: %v", err)
	}
	for i := range keys {
		if i < 20 {
			if found[i] {
				t.Fatalf("deleted key %d found on follower", keys[i])
			}
			continue
		}
		if !found[i] || got[i] != vals[i] {
			t.Fatalf("key %d on follower: (%d,%v), want (%d,true)", keys[i], got[i], found[i], vals[i])
		}
	}

	// The follower rejects writes with the routable READONLY error.
	if _, err := fc.Insert(ctx, keys[:1], vals[:1]); !client.IsReadOnly(err) {
		t.Fatalf("follower Insert error = %v, want READONLY", err)
	}

	// Roles and positions.
	pi, err := pc.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !pi.Writable || pi.Role != "primary" || pi.AppliedLSN != 520 {
		t.Fatalf("primary info = %+v", pi)
	}
	fi, err := fc.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Writable || fi.Role != "follower" || fi.AppliedLSN != 520 {
		t.Fatalf("follower info = %+v", fi)
	}

	// Replication counters ride the existing STATS payload.
	ps, err := pc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Repl.CurrentLSN != 520 || ps.Repl.FramesShipped == 0 {
		t.Fatalf("primary repl stats = %+v", ps.Repl)
	}
	fs, err := fc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Repl.CurrentLSN != 520 || fs.Repl.FramesReplayed == 0 {
		t.Fatalf("follower repl stats = %+v", fs.Repl)
	}
}

// TestReadTokenBehind checks the replica-lag rejection: a follower that
// cannot reach a token's LSN within the bounded wait answers BEHIND
// (for the client to re-route), while a deadline the client sets is
// reported as the context error — the two failure modes that must stay
// distinguishable.
func TestReadTokenBehind(t *testing.T) {
	// A follower of an unreachable primary never applies anything.
	node := startReplNode(t, "127.0.0.1:1", 0, 0)
	defer node.stop(t)
	cl := dialNode(t, node.addr)
	ctx := context.Background()

	_, _, err := cl.Lookup(ctx, []uint64{42}, client.ReadToken{LSN: 10})
	if !client.IsBehind(err) {
		t.Fatalf("stale replica Lookup error = %v, want BEHIND", err)
	}
	var se *client.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("BEHIND should be a ServerError, got %T", err)
	}

	// The same read under a client deadline shorter than the server's
	// token wait fails with the context error, not a ServerError.
	dctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	_, _, err = cl.Lookup(dctx, []uint64{42}, client.ReadToken{LSN: 10})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline Lookup error = %v, want DeadlineExceeded", err)
	}
	if errors.As(err, &se) {
		t.Fatalf("deadline error misreported as ServerError: %v", err)
	}

	// A zero token never waits.
	if _, _, err := cl.Lookup(ctx, []uint64{42}, client.ReadToken{}); err != nil {
		t.Fatalf("zero-token Lookup: %v", err)
	}
}

// TestSemiSyncCommit checks the semi-synchronous ack rule: with
// SyncFollowers=1 and no follower, mutations fail after SyncTimeout;
// once a follower subscribes, they are acked again — and only after the
// follower applied them, so its applied horizon covers every ack.
func TestSemiSyncCommit(t *testing.T) {
	primary := startReplNode(t, "", 1, 200*time.Millisecond)
	defer primary.stop(t)
	ctx := context.Background()
	pc := dialNode(t, primary.addr)

	if _, err := pc.Insert(ctx, []uint64{1}, []uint64{10}); err == nil {
		t.Fatal("semi-sync Insert with no follower succeeded")
	} else if client.IsReadOnly(err) || client.IsBehind(err) {
		t.Fatalf("semi-sync timeout mislabeled: %v", err)
	}

	follower := startReplNode(t, primary.addr, 0, 0)
	defer follower.stop(t)
	if _, err := follower.srv.Follow(primary.addr); err != nil {
		t.Fatal(err)
	}

	// The first acked write may race the subscription; retry with
	// upserts (idempotent) until the follower is counted.
	var tok client.ReadToken
	deadline := time.Now().Add(10 * time.Second)
	for {
		var err error
		tok, err = pc.Upsert(ctx, []uint64{2}, []uint64{20})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("semi-sync Upsert never succeeded: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Semi-sync acked means the follower applied it: its horizon must
	// already cover the token, with no waiting.
	fi, err := dialNode(t, follower.addr).Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fi.AppliedLSN < tok.LSN {
		t.Fatalf("follower applied %d behind semi-sync acked token %d", fi.AppliedLSN, tok.LSN)
	}
}

// TestPromotionFailover kills the primary, promotes the follower, and
// checks the promoted node is writable in a bumped epoch with every
// semi-sync-acked write intact.
func TestPromotionFailover(t *testing.T) {
	primary := startReplNode(t, "", 1, 5*time.Second)
	follower := startReplNode(t, primary.addr, 0, 0)
	defer follower.stop(t)
	if _, err := follower.srv.Follow(primary.addr); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	pc := dialNode(t, primary.addr)
	keys := make([]uint64, 200)
	vals := make([]uint64, 200)
	for i := range keys {
		keys[i] = uint64(i + 1)
		vals[i] = uint64(i) * 7
	}
	// Semi-sync: a nil error means the follower applied it.
	tok, err := pc.Insert(ctx, keys, vals)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}

	primary.kill(t)

	fc := dialNode(t, follower.addr)
	info, err := fc.Promote(ctx)
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if !info.Writable || info.Role != "primary" {
		t.Fatalf("post-promotion info = %+v", info)
	}
	if info.Epoch != 1 {
		t.Fatalf("post-promotion epoch = %d, want 1", info.Epoch)
	}
	if info.AppliedLSN < tok.LSN {
		t.Fatalf("promoted node applied %d, token %d lost", info.AppliedLSN, tok.LSN)
	}

	// Every acked write survived, and the node accepts new ones.
	got, found, err := fc.Lookup(ctx, keys, tok)
	if err != nil {
		t.Fatalf("post-promotion Lookup: %v", err)
	}
	for i := range keys {
		if !found[i] || got[i] != vals[i] {
			t.Fatalf("key %d after failover: (%d,%v), want (%d,true)", keys[i], got[i], found[i], vals[i])
		}
	}
	tok2, err := fc.Upsert(ctx, []uint64{9999}, []uint64{1})
	if err != nil {
		t.Fatalf("post-promotion Upsert: %v", err)
	}
	if tok2.Epoch != 1 {
		t.Fatalf("post-promotion token epoch = %d, want 1", tok2.Epoch)
	}
	if tok2.LSN <= tok.LSN {
		t.Fatalf("post-promotion token LSN %d did not advance past %d", tok2.LSN, tok.LSN)
	}

	// Idempotent: promoting again only reports the identity.
	again, err := fc.Promote(ctx)
	if err != nil || again.Epoch != 1 {
		t.Fatalf("re-promotion = %+v, %v", again, err)
	}
}

// TestClusterFailover drives the failover-aware cluster client: writes
// route to the primary, survive its death once the follower is
// promoted, and the epoch ratchet moves forward.
func TestClusterFailover(t *testing.T) {
	primary := startReplNode(t, "", 1, 5*time.Second)
	follower := startReplNode(t, primary.addr, 0, 0)
	defer follower.stop(t)
	if _, err := follower.srv.Follow(primary.addr); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	cc, err := client.DialCluster([]string{primary.addr, follower.addr}, client.Options{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if cc.Addr() != primary.addr {
		t.Fatalf("cluster picked %s, want primary %s", cc.Addr(), primary.addr)
	}

	tok, err := cc.Insert(ctx, []uint64{1, 2, 3}, []uint64{10, 20, 30})
	if err != nil {
		t.Fatalf("cluster Insert: %v", err)
	}

	primary.kill(t)
	if _, err := dialNode(t, follower.addr).Promote(ctx); err != nil {
		t.Fatalf("Promote: %v", err)
	}

	// The next write fails over to the promoted follower.
	tok2, err := cc.Upsert(ctx, []uint64{4}, []uint64{40})
	if err != nil {
		t.Fatalf("cluster Upsert after failover: %v", err)
	}
	if cc.Addr() != follower.addr {
		t.Fatalf("cluster still routed at %s after failover", cc.Addr())
	}
	if cc.Epoch() != 1 || tok2.Epoch != 1 {
		t.Fatalf("cluster epoch = %d, token epoch = %d, want 1", cc.Epoch(), tok2.Epoch)
	}

	got, found, err := cc.Lookup(ctx, []uint64{1, 2, 3, 4}, tok.Max(tok2))
	if err != nil {
		t.Fatalf("cluster Lookup after failover: %v", err)
	}
	want := []uint64{10, 20, 30, 40}
	for i, w := range want {
		if !found[i] || got[i] != w {
			t.Fatalf("key %d after failover: (%d,%v), want (%d,true)", i+1, got[i], found[i], w)
		}
	}
}

// TestClientReconnect checks the single-address client heals from a
// server restart: the pool's dead connections are skipped and redialed
// instead of poisoning the client.
func TestClientReconnect(t *testing.T) {
	eng, err := extbuf.NewSharded("buffered", extbuf.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{Engine: eng, Logf: t.Logf})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()

	cl := dialNode(t, addr)
	ctx := context.Background()
	if err := cl.InsertBatch(ctx, []uint64{1}, []uint64{10}); err != nil {
		t.Fatal(err)
	}

	// Restart the server on the same address.
	ctxCancel, cancel := context.WithCancel(context.Background())
	cancel()
	_ = srv.Shutdown(ctxCancel)
	<-serveErr
	_ = eng.Close()

	eng2, err := extbuf.NewSharded("buffered", extbuf.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	srv2 := server.New(server.Config{Engine: eng2, Logf: t.Logf})
	lis2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	go func() { serveErr <- srv2.Serve(lis2) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv2.Shutdown(ctx)
		<-serveErr
	}()

	// The old sockets are dead; the client must redial, not fail forever.
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := cl.UpsertBatch(ctx, []uint64{2}, []uint64{20})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never reconnected: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if n, err := cl.Len(ctx); err != nil || n != 1 {
		t.Fatalf("Len after reconnect = %d, %v; want 1", n, err)
	}
}
