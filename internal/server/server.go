// Package server implements the serving layer: a TCP server speaking
// the wire protocol (package wire) in front of the sharded pipelined
// engine (extbuf.Sharded). See DESIGN.md, "Serving layer".
//
// Each connection runs three goroutines — reader, applier, writer — so
// a client that pipelines requests gets them aggregated: the applier
// coalesces consecutive same-kind requests into single engine batch
// calls (InsertBatch/UpsertBatch/LookupBatchInto/DeleteBatchInto),
// which fan out across the engine's shard workers exactly like any
// other batch. Responses stream back strictly in request order, so the
// id-matching on the client side never reorders.
//
// Durability of acks: a mutation is acknowledged only after an engine
// Sync barrier (write-ahead-log fsync on durable backends) that started
// after it was applied. Connections share one group committer, so
// concurrent mutation batches across all connections ride the same
// fsync — the serving-layer analogue of the WAL group commit inside the
// checkpoint path. On scratch backends Sync is a no-op and acks are
// immediate.
//
// Backpressure: each connection's in-flight requests are bounded by a
// fixed-depth apply queue; when a client pipelines past it the reader
// stops reading and TCP flow control pushes back. Behind the queue, the
// engine's own bounded shard channels bound the batches in flight, so
// server memory is a constant multiple of (connections x pipeline x
// batch) regardless of offered load.
package server

import (
	"context"
	"errors"
	"net"
	"sync"
	"syscall"
	"time"

	"extbuf"
	"extbuf/internal/wal"
	"extbuf/internal/wire"
)

// Engine is the store the server fronts: extbuf's exported engine
// surface, satisfied by both extbuf.Sharded and single tables from
// extbuf.OpenEngine. The alias keeps server.Engine as the name this
// package's API is written in while guaranteeing the server and the
// replication follower program against exactly the public interface.
type Engine = extbuf.Engine

var _ Engine = (*extbuf.Sharded)(nil)

// ErrServerClosed is returned by Serve after Shutdown or Close.
var ErrServerClosed = errors.New("server: closed")

// Config parametrizes a Server.
type Config struct {
	// Engine is the store to serve (required).
	Engine Engine
	// MaxBatch caps the operations in one request frame AND the
	// operations the applier aggregates into one engine call (default
	// 4096; hard-capped by wire.MaxBatch). Oversized request frames are
	// rejected with an ERR response.
	MaxBatch int
	// Pipeline bounds each connection's queued-but-unapplied requests
	// (default 64). Together with MaxBatch it bounds per-connection
	// memory; past it, TCP backpressure holds the client.
	Pipeline int
	// Logf receives connection-level diagnostics (nil: discard).
	Logf func(format string, args ...any)
	// Repl enables WAL-shipping replication (nil: off). See ReplConfig.
	Repl *ReplConfig
	// SweepEvery runs the background TTL sweeper at this interval
	// (0: no sweeper — expired keys are hidden lazily on read but
	// their space is only reclaimed when the key is written again).
	// Followers skip sweeping and converge via the primary's shipped
	// deletes.
	SweepEvery time.Duration
	// SweepMax caps the keys reclaimed per sweep tick (default 4096),
	// bounding the write burst a sweep injects ahead of client load.
	SweepMax int
}

// DefaultMaxBatch is the per-frame and per-aggregation operation cap
// used when Config.MaxBatch is zero.
const DefaultMaxBatch = 4096

// DefaultPipeline is the per-connection in-flight request bound used
// when Config.Pipeline is zero.
const DefaultPipeline = 64

// Server serves the wire protocol over any net.Listener.
type Server struct {
	engine   Engine
	maxBatch int
	pipeline int
	logf     func(string, ...any)
	durable  bool
	commit   *groupCommitter
	repl     *replState // nil: replication off

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[*conn]struct{}
	follower  *Follower
	draining  bool

	connWG sync.WaitGroup

	sweepStop chan struct{} // nil: no sweeper configured
	sweepDone chan struct{}
	sweepOnce sync.Once
}

// New returns a server for cfg. It does not listen; pass listeners to
// Serve. It panics on an invalid configuration — use NewServer when
// replication (whose state lives in files that may fail to open) is
// configured.
func New(cfg Config) *Server {
	s, err := NewServer(cfg)
	if err != nil {
		panic("server: " + err.Error())
	}
	return s
}

// NewServer returns a server for cfg, opening the replication state
// (ship log + epoch file) when cfg.Repl is set.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("Config.Engine is required")
	}
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	if maxBatch > wire.MaxBatch {
		maxBatch = wire.MaxBatch // the protocol decoders reject anything larger
	}
	pipeline := cfg.Pipeline
	if pipeline <= 0 {
		pipeline = DefaultPipeline
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Server{
		engine:    cfg.Engine,
		maxBatch:  maxBatch,
		pipeline:  pipeline,
		logf:      logf,
		durable:   cfg.Engine.Durable(),
		commit:    &groupCommitter{sync: cfg.Engine.Sync},
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[*conn]struct{}),
	}
	if cfg.Repl != nil {
		repl, err := openRepl(*cfg.Repl)
		if err != nil {
			return nil, err
		}
		s.repl = repl
		// Wire the engine's ship seam to this node's ship log: shard
		// workers emit applied mutations, the log's append mutex merges
		// them into one contiguous total order (Engine.SetShip). Wired
		// here, before any listener exists, per the seam's contract.
		cfg.Engine.SetShip(func(op uint8, keys, vals []uint64) (uint64, error) {
			return repl.ship.Append(wal.Op(op), keys, vals)
		})
		if s.durable {
			// The ack barrier must also make the ship log durable, or a
			// restarted primary could serve tokens for records its
			// followers can no longer fetch. One group-commit wave fsyncs
			// both fds.
			s.commit.sync = func() error {
				if err := cfg.Engine.Sync(); err != nil {
					return err
				}
				return repl.ship.Fsync()
			}
		}
	}
	if cfg.SweepEvery > 0 {
		max := cfg.SweepMax
		if max <= 0 {
			max = DefaultSweepMax
		}
		s.sweepStop = make(chan struct{})
		s.sweepDone = make(chan struct{})
		go s.sweepLoop(cfg.SweepEvery, max)
	}
	return s, nil
}

// DefaultSweepMax is the per-tick reclamation cap used when
// Config.SweepMax is zero.
const DefaultSweepMax = 4096

// stopSweeper ends the sweep loop and waits for it. Idempotent; no-op
// when no sweeper was configured.
func (s *Server) stopSweeper() {
	if s.sweepStop == nil {
		return
	}
	s.sweepOnce.Do(func() { close(s.sweepStop) })
	<-s.sweepDone
}

// sweepLoop periodically reclaims due keys through the engine's normal
// logged-and-shipped delete path, then runs the same commit barrier as
// client mutations so a crash cannot resurrect swept keys after their
// deletes were shipped to followers.
func (s *Server) sweepLoop(every time.Duration, max int) {
	defer close(s.sweepDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.sweepStop:
			return
		case <-t.C:
		}
		if !s.writableNow() {
			continue // replicas converge via the primary's shipped deletes
		}
		n, last, err := s.engine.SweepExpired(max)
		if err != nil {
			s.logf("ttl sweep: %v", err)
			continue
		}
		if n > 0 {
			if err := s.commitMutation(last); err != nil {
				s.logf("ttl sweep commit: %v", err)
			}
		}
	}
}

// writableNow reports whether the node currently accepts mutations:
// always, unless it is a not-yet-promoted replica.
func (s *Server) writableNow() bool {
	return s.repl == nil || s.repl.isWritable()
}

// commitMutation is the full acknowledgement barrier for a mutation
// whose last ship-log record is lastLSN: the durable group commit
// (engine WAL + ship log fsync), then the semi-synchronous follower
// wait. Either failing withholds the ack.
func (s *Server) commitMutation(lastLSN uint64) error {
	if s.durable {
		if err := s.commit.commit(); err != nil {
			return err
		}
	}
	// lastLSN 0 means nothing was shipped (replication off, or an empty
	// batch) — there is nothing for a follower to confirm.
	if s.repl != nil && lastLSN > 0 {
		return s.repl.waitFollowers(lastLSN)
	}
	return nil
}

// epochNow returns the replication epoch, 0 with replication off.
func (s *Server) epochNow() uint64 {
	if s.repl == nil {
		return 0
	}
	return s.repl.epochNow()
}

// replStats snapshots the replication counters for STATS.
func (s *Server) replStats() extbuf.ReplStats {
	if s.repl == nil {
		return extbuf.ReplStats{}
	}
	return s.repl.stats()
}

// Info returns the node's replication identity; ok is false when
// replication is off.
func (s *Server) Info() (wire.Info, bool) {
	if s.repl == nil {
		return wire.Info{}, false
	}
	return s.repl.info(), true
}

// Promote makes a follower writable in a fresh epoch: stop replaying
// from the (presumably dead) primary, sync the engine so everything
// replayed so far is durable, bump and persist the epoch, and start
// accepting mutations. Promoting an already-writable node only reports
// its current identity. Safe to call from any goroutine, including a
// connection serving the PROMOTE request.
func (s *Server) Promote() (wire.Info, error) {
	if s.repl == nil {
		return wire.Info{}, errors.New("server: replication is not enabled")
	}
	s.mu.Lock()
	f := s.follower
	s.follower = nil
	s.mu.Unlock()
	if f != nil {
		f.Stop()
	}
	if s.durable {
		if err := s.engine.Sync(); err != nil {
			return wire.Info{}, err
		}
		if err := s.repl.ship.Fsync(); err != nil {
			return wire.Info{}, err
		}
	}
	return s.repl.promote()
}

// CloseRepl stops the follower loop (if running) and closes the ship
// log. Call after Shutdown, before closing the engine.
func (s *Server) CloseRepl() error {
	if s.repl == nil {
		return nil
	}
	s.mu.Lock()
	f := s.follower
	s.follower = nil
	s.mu.Unlock()
	if f != nil {
		f.Stop()
	}
	// Detach the engine's ship sink before closing the log it points at.
	// The caller has already drained the serving layer (Shutdown), so no
	// Ship-variant mutation can be in flight.
	s.engine.SetShip(nil)
	return s.repl.close()
}

// Serve accepts connections on lis until Shutdown. It always returns a
// non-nil error: ErrServerClosed after a Shutdown, the accept error
// otherwise. Multiple Serve calls (distinct listeners) are allowed.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		lis.Close()
		return ErrServerClosed
	}
	s.listeners[lis] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, lis)
		s.mu.Unlock()
	}()
	var backoff time.Duration
	for {
		nc, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return ErrServerClosed
			}
			// Transient accept failures — a timeout, or fd exhaustion
			// under a connection burst — must not take down a healthy
			// server (established connections keep being served either
			// way). Back off and retry; anything else is fatal.
			if isTransientAccept(err) {
				if backoff == 0 {
					backoff = 5 * time.Millisecond
				} else if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
				s.logf("accept: %v; retrying in %v", err, backoff)
				time.Sleep(backoff)
				continue
			}
			return err
		}
		backoff = 0
		c := newConn(s, nc)
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			nc.Close()
			return ErrServerClosed
		}
		s.conns[c] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.connWG.Done()
			c.run()
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
		}()
	}
}

// isTransientAccept reports whether an Accept error is worth retrying:
// a timeout, or the process running out of file descriptors (the
// burst subsides as existing connections close).
func isTransientAccept(err error) bool {
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		return true
	}
	return errors.Is(err, syscall.EMFILE) || errors.Is(err, syscall.ENFILE)
}

// Shutdown drains the server gracefully: it stops accepting, tells
// every connection to stop reading new requests, lets already-received
// requests complete (applied, committed and responded), then closes the
// connections. If ctx expires first the remaining connections are
// closed forcibly and ctx.Err is returned. The engine is not touched —
// the caller owns its lifecycle and typically runs the checkpoint
// (engine Close) right after a nil return.
func (s *Server) Shutdown(ctx context.Context) error {
	// The sweeper injects mutations; stop it before draining so no sweep
	// races the connections' final commits.
	s.stopSweeper()
	s.mu.Lock()
	s.draining = true
	for lis := range s.listeners {
		lis.Close()
	}
	for c := range s.conns {
		c.beginDrain()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// groupCommitter batches the ack barrier across connections: a commit
// call returns once an engine Sync that STARTED after the call began
// has completed, and at most one Sync runs at a time — every mutation
// applied while one is in flight shares the next one. This is the
// serving-layer group commit: N concurrent connections cost one WAL
// fsync per round, not N.
//
// Errors are tracked per sync wave, not in a single last-error slot: a
// waiter must see the error of ITS covering wave even if a later wave
// completed cleanly in between — a Sync that consumed a deferred
// write-behind apply error reports it exactly once, and dropping it
// would ack a write that never applied.
type groupCommitter struct {
	sync func() error

	mu        sync.Mutex
	cond      *sync.Cond
	started   uint64 // syncs started
	completed uint64 // syncs completed
	inFlight  bool
	waves     map[uint64]*commitWave
}

// commitWave is one sync's bookkeeping: its waiters (refs) and, once
// done, its error. Entries are deleted when the last waiter has read
// the result, so the map stays at the handful of in-flight waves.
type commitWave struct {
	refs int
	err  error
	done bool
}

// commit blocks until a covering Sync completes and returns that very
// sync's error.
func (g *groupCommitter) commit() error {
	g.mu.Lock()
	if g.cond == nil {
		g.cond = sync.NewCond(&g.mu)
		g.waves = make(map[uint64]*commitWave)
	}
	// The next sync to start is numbered started+1; it necessarily
	// begins after our mutations were applied, so its completion makes
	// them durable. An in-flight sync (numbered started) may have begun
	// before them and does not count.
	target := g.started + 1
	w := g.waves[target]
	if w == nil {
		w = &commitWave{}
		g.waves[target] = w
	}
	w.refs++
	for !w.done {
		if !g.inFlight {
			// Become the runner of the next wave (which is ours: waves
			// start in order and every earlier one has completed).
			g.inFlight = true
			g.started++
			mine := g.waves[g.started]
			if mine == nil {
				mine = &commitWave{}
				g.waves[g.started] = mine
			}
			num := g.started
			g.mu.Unlock()
			err := g.sync()
			g.mu.Lock()
			mine.err = err
			mine.done = true
			g.completed = num
			g.inFlight = false
			g.cond.Broadcast()
		} else {
			g.cond.Wait()
		}
	}
	err := w.err
	w.refs--
	if w.refs == 0 {
		delete(g.waves, target)
	}
	g.mu.Unlock()
	return err
}
