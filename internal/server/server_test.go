package server_test

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"extbuf"
	"extbuf/client"
	"extbuf/internal/server"
	"extbuf/internal/wire"
)

// startServer boots a server over a fresh mem-backend sharded engine on
// a loopback listener and returns its address plus a teardown that
// drains the server and closes the engine.
func startServer(t testing.TB, cfg extbuf.Config, shards int, scfg server.Config) (string, *extbuf.Sharded, func()) {
	t.Helper()
	eng, err := extbuf.NewSharded("buffered", cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	scfg.Engine = eng
	if scfg.Logf == nil {
		scfg.Logf = t.Logf
	}
	srv := server.New(scfg)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()
	return lis.Addr().String(), eng, func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveErr; err != server.ErrServerClosed {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
		if err := eng.Close(); err != nil {
			t.Errorf("engine close: %v", err)
		}
	}
}

func TestServeRoundTrip(t *testing.T) {
	addr, _, stop := startServer(t, extbuf.Config{}, 4, server.Config{})
	defer stop()

	cl, err := client.Dial(addr, client.Options{Conns: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	keys := make([]uint64, 500)
	vals := make([]uint64, 500)
	for i := range keys {
		keys[i] = uint64(i + 1)
		vals[i] = uint64(i) * 7
	}
	if err := cl.InsertBatch(ctx, keys, vals); err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}
	if n, err := cl.Len(ctx); err != nil || n != 500 {
		t.Fatalf("Len = %d, %v; want 500", n, err)
	}
	got, found, err := cl.LookupBatch(ctx, append([]uint64{9999}, keys...))
	if err != nil {
		t.Fatalf("LookupBatch: %v", err)
	}
	if found[0] {
		t.Fatal("absent key reported found")
	}
	for i := range keys {
		if !found[i+1] || got[i+1] != vals[i] {
			t.Fatalf("key %d: (%d,%v), want (%d,true)", keys[i], got[i+1], found[i+1], vals[i])
		}
	}
	if err := cl.UpsertBatch(ctx, keys[:10], make([]uint64, 10)); err != nil {
		t.Fatalf("UpsertBatch: %v", err)
	}
	if got, _, _ := cl.LookupBatch(ctx, keys[:1]); got[0] != 0 {
		t.Fatalf("upserted value = %d, want 0", got[0])
	}
	deleted, err := cl.DeleteBatch(ctx, keys[:20])
	if err != nil {
		t.Fatalf("DeleteBatch: %v", err)
	}
	for i, ok := range deleted {
		if !ok {
			t.Fatalf("delete %d missed", i)
		}
	}
	if n, _ := cl.Len(ctx); n != 480 {
		t.Fatalf("Len after delete = %d, want 480", n)
	}
	if err := cl.Ping(ctx); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	if err := cl.Sync(ctx); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := cl.Flush(ctx); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Len != 480 {
		t.Fatalf("Stats.Len = %d, want 480", st.Len)
	}
	if st.Ops.IOs() == 0 {
		t.Fatal("Stats.Ops.IOs = 0, want > 0")
	}
}

// TestPipelinedAggregation floods one connection with async inserts and
// lookups and checks every response arrives, in a consistent state. The
// engine call counter proves the server coalesced pipelined requests
// into fewer engine batches.
func TestPipelinedAggregation(t *testing.T) {
	eng := &countingEngine{}
	srv := server.New(server.Config{Engine: eng, Logf: t.Logf})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	defer srv.Shutdown(context.Background())

	cl, err := client.Dial(lis.Addr().String(), client.Options{Pipeline: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const requests = 200
	pendings := make([]*client.Pending, 0, requests)
	keys := []uint64{1, 2, 3, 4}
	vals := []uint64{5, 6, 7, 8}
	for i := 0; i < requests; i++ {
		p, err := cl.GoInsert(keys, vals)
		if err != nil {
			t.Fatal(err)
		}
		pendings = append(pendings, p)
	}
	ctx := context.Background()
	for i, p := range pendings {
		if err := p.Wait(ctx); err != nil {
			t.Fatalf("pending %d: %v", i, err)
		}
	}
	if got := eng.inserted.Load(); got != requests*4 {
		t.Fatalf("engine saw %d inserted ops, want %d", got, requests*4)
	}
	calls := eng.insertCalls.Load()
	if calls >= requests {
		t.Fatalf("engine saw %d InsertBatch calls for %d pipelined requests — no aggregation", calls, requests)
	}
	t.Logf("aggregation: %d requests -> %d engine calls, %d syncs", requests, calls, eng.syncs.Load())
	if eng.syncs.Load() == 0 {
		t.Fatal("mutations acked without any Sync barrier")
	}
}

// countingEngine fakes the engine to observe aggregation and the
// ack-after-Sync discipline.
type countingEngine struct {
	mu          sync.Mutex
	m           map[uint64]uint64
	ttl         map[uint64]uint64
	ship        extbuf.ShipFunc
	insertCalls atomic.Int64
	inserted    atomic.Int64
	syncs       atomic.Int64
	unsynced    atomic.Int64 // ops applied since the last Sync
}

func (e *countingEngine) InsertBatch(keys, vals []uint64) error {
	e.insertCalls.Add(1)
	e.inserted.Add(int64(len(keys)))
	e.unsynced.Add(int64(len(keys)))
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.m == nil {
		e.m = make(map[uint64]uint64)
	}
	for i := range keys {
		e.m[keys[i]] = vals[i]
	}
	return nil
}
func (e *countingEngine) UpsertBatch(keys, vals []uint64) error { return e.InsertBatch(keys, vals) }
func (e *countingEngine) LookupBatchInto(keys, vals []uint64, found []bool) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, k := range keys {
		vals[i], found[i] = e.m[k], false
		if _, ok := e.m[k]; ok {
			found[i] = true
		}
	}
	return nil
}
func (e *countingEngine) DeleteBatchInto(keys []uint64, found []bool) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, k := range keys {
		_, found[i] = e.m[k]
		delete(e.m, k)
	}
	return nil
}
func (e *countingEngine) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.m)
}
func (e *countingEngine) MemoryUsed() int64             { return 0 }
func (e *countingEngine) Stats() extbuf.Stats           { return extbuf.Stats{} }
func (e *countingEngine) StoreStats() extbuf.StoreStats { return extbuf.StoreStats{} }
func (e *countingEngine) Sync() error {
	e.syncs.Add(1)
	e.unsynced.Store(0)
	time.Sleep(200 * time.Microsecond) // a believable fsync, so commits pile up
	return nil
}
func (e *countingEngine) Flush() error { return e.Sync() }

// Durable: the fake claims durability so the tests exercise the
// group-commit ack barrier.
func (e *countingEngine) Durable() bool { return true }
func (e *countingEngine) Close() error  { return nil }

// Ship seam (Engine): the fake is single-map-serialized, so apply-then-
// ship under the mutex trivially satisfies the total-order contract.
func (e *countingEngine) SetShip(fn extbuf.ShipFunc) { e.ship = fn }
func (e *countingEngine) InsertBatchShip(keys, vals []uint64) (uint64, error) {
	if err := e.InsertBatch(keys, vals); err != nil {
		return 0, err
	}
	return e.shipAll(extbuf.ShipInsert, keys, vals)
}
func (e *countingEngine) UpsertBatchShip(keys, vals []uint64) (uint64, error) {
	if err := e.UpsertBatch(keys, vals); err != nil {
		return 0, err
	}
	return e.shipAll(extbuf.ShipUpsert, keys, vals)
}
func (e *countingEngine) DeleteBatchShipInto(keys []uint64, found []bool) (uint64, error) {
	if err := e.DeleteBatchInto(keys, found); err != nil {
		return 0, err
	}
	return e.shipAll(extbuf.ShipDelete, keys, nil)
}
func (e *countingEngine) shipAll(op uint8, keys, vals []uint64) (uint64, error) {
	if e.ship == nil || len(keys) == 0 {
		return 0, nil
	}
	first, err := e.ship(op, keys, vals)
	if err != nil {
		return 0, err
	}
	return first + uint64(len(keys)) - 1, nil
}

// Single-key and allocating-batch methods complete the extbuf.Engine
// surface; the server's hot path never calls them, but the follower
// apply loop and Engine consumers may.
func (e *countingEngine) Insert(key, val uint64) error {
	return e.InsertBatch([]uint64{key}, []uint64{val})
}
func (e *countingEngine) Upsert(key, val uint64) error { return e.Insert(key, val) }
func (e *countingEngine) Lookup(key uint64) (uint64, bool) {
	var v [1]uint64
	var f [1]bool
	e.LookupBatchInto([]uint64{key}, v[:], f[:])
	return v[0], f[0]
}
func (e *countingEngine) Delete(key uint64) bool {
	var f [1]bool
	e.DeleteBatchInto([]uint64{key}, f[:])
	return f[0]
}
func (e *countingEngine) LookupBatch(keys []uint64) ([]uint64, []bool, error) {
	vals := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	err := e.LookupBatchInto(keys, vals, found)
	return vals, found, err
}
func (e *countingEngine) DeleteBatch(keys []uint64) ([]bool, error) {
	found := make([]bool, len(keys))
	err := e.DeleteBatchInto(keys, found)
	return found, err
}

// TTL/CAS/scan surface: the fake tracks deadlines in a second map so
// server-level round-trips have something to observe.
func (e *countingEngine) ExpireBatch(keys, deadlines []uint64, found []bool) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ttl == nil {
		e.ttl = make(map[uint64]uint64)
	}
	for i, k := range keys {
		_, found[i] = e.m[k]
		if found[i] {
			e.ttl[k] = deadlines[i]
		}
	}
	return nil
}
func (e *countingEngine) ExpireBatchShip(keys, deadlines []uint64, found []bool) (uint64, error) {
	if err := e.ExpireBatch(keys, deadlines, found); err != nil {
		return 0, err
	}
	return e.shipAll(extbuf.ShipExpire, keys, deadlines)
}
func (e *countingEngine) UpsertTTLBatchShip(keys, vals, deadlines []uint64) (uint64, error) {
	if err := e.UpsertBatch(keys, vals); err != nil {
		return 0, err
	}
	found := make([]bool, len(keys))
	return e.ExpireBatchShip(keys, deadlines, found)
}
func (e *countingEngine) CompareSwapBatchShip(keys, olds, news []uint64, swapped []bool) (uint64, error) {
	e.mu.Lock()
	var sk, sv []uint64
	for i, k := range keys {
		v, ok := e.m[k]
		swapped[i] = ok && v == olds[i]
		if swapped[i] {
			e.m[k] = news[i]
			sk = append(sk, k)
			sv = append(sv, news[i])
		}
	}
	e.mu.Unlock()
	return e.shipAll(extbuf.ShipUpsert, sk, sv)
}
func (e *countingEngine) Scan(cursor uint64, max int) ([]uint64, []uint64, uint64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if cursor != 0 {
		return nil, nil, extbuf.ScanDone, nil
	}
	var keys, vals []uint64
	for k, v := range e.m {
		keys = append(keys, k)
		vals = append(vals, v)
	}
	return keys, vals, extbuf.ScanDone, nil
}
func (e *countingEngine) SweepExpired(max int) (int, uint64, error) { return 0, 0, nil }
func (e *countingEngine) ExpiryStats() extbuf.ExpiryStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return extbuf.ExpiryStats{Tracked: int64(len(e.ttl))}
}

// TestOversizedBatchRejected sends a well-framed request above the
// server's MaxBatch and expects an ERR response — with the connection
// still usable afterwards.
func TestOversizedBatchRejected(t *testing.T) {
	addr, _, stop := startServer(t, extbuf.Config{}, 1, server.Config{MaxBatch: 8})
	defer stop()

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	keys := make([]uint64, 9) // one past MaxBatch
	frame := wire.AppendFrame(nil, wire.OpLookup, 1, wire.AppendKeys(nil, keys))
	frame = wire.AppendFrame(frame, wire.OpLen, 2, nil) // pipelined follow-up
	if _, err := nc.Write(frame); err != nil {
		t.Fatal(err)
	}
	r := wire.NewReader(nc)
	f, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.Op != wire.OpErr || f.ID != 1 {
		t.Fatalf("response = %v id %d, want ERR id 1", f.Op, f.ID)
	}
	f, err = r.Next()
	if err != nil || f.Op != wire.OpCount || f.ID != 2 {
		t.Fatalf("follow-up = %+v, %v; want COUNT id 2 (connection must survive)", f, err)
	}
}

// TestCorruptStreamClosesConn sends bytes that fail frame validation
// and expects the server to drop the connection rather than guess at
// resynchronization.
func TestCorruptStreamClosesConn(t *testing.T) {
	addr, _, stop := startServer(t, extbuf.Config{}, 1, server.Config{})
	defer stop()

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	good := wire.AppendFrame(nil, wire.OpPing, 1, nil)
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xff // break the magic
	if _, err := nc.Write(bad); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	if n, err := nc.Read(buf); err != io.EOF {
		t.Fatalf("read after corrupt frame: n=%d err=%v, want EOF", n, err)
	}
}

// TestShutdownDrains verifies graceful drain: requests in flight when
// Shutdown begins are still answered.
func TestShutdownDrains(t *testing.T) {
	eng, err := extbuf.NewSharded("buffered", extbuf.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv := server.New(server.Config{Engine: eng, Logf: t.Logf})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()

	cl, err := client.Dial(lis.Addr().String(), client.Options{Pipeline: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Pipeline a burst, let the server pick it up, then shut down. The
	// drain contract: every request the server received is answered,
	// every ack corresponds to an applied operation, and nothing hangs —
	// requests still in flight on the wire fail cleanly instead.
	var pendings []*client.Pending
	for i := 0; i < 100; i++ {
		p, err := cl.GoInsert([]uint64{uint64(i + 1)}, []uint64{uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		pendings = append(pendings, p)
	}
	time.Sleep(100 * time.Millisecond) // let the reader ingest the burst
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != server.ErrServerClosed {
		t.Fatalf("Serve = %v, want ErrServerClosed", err)
	}
	acked := 0
	for _, p := range pendings {
		if err := p.Wait(ctx); err == nil {
			acked++
		}
	}
	if acked == 0 {
		t.Fatal("no pipelined request survived a drain that started after ingestion")
	}
	if n := eng.Len(); n != acked {
		t.Fatalf("engine Len = %d but %d requests were acked", n, acked)
	}
}

// TestConcurrentClients hammers the server from several pooled clients
// under the race detector.
func TestConcurrentClients(t *testing.T) {
	addr, eng, stop := startServer(t, extbuf.Config{}, 4, server.Config{})
	defer stop()

	const clients = 4
	const perClient = 2000
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for cidx := 0; cidx < clients; cidx++ {
		wg.Add(1)
		go func(cidx int) {
			defer wg.Done()
			cl, err := client.Dial(addr, client.Options{Conns: 2})
			if err != nil {
				errCh <- err
				return
			}
			defer cl.Close()
			ctx := context.Background()
			keys := make([]uint64, 100)
			vals := make([]uint64, 100)
			for i := 0; i < perClient/100; i++ {
				for j := range keys {
					keys[j] = uint64(cidx)<<32 | uint64(i*100+j+1)
					vals[j] = keys[j] * 3
				}
				if err := cl.InsertBatch(ctx, keys, vals); err != nil {
					errCh <- fmt.Errorf("insert: %w", err)
					return
				}
				got, found, err := cl.LookupBatch(ctx, keys)
				if err != nil {
					errCh <- fmt.Errorf("lookup: %w", err)
					return
				}
				for j := range keys {
					if !found[j] || got[j] != vals[j] {
						errCh <- fmt.Errorf("key %d: (%d,%v)", keys[j], got[j], found[j])
						return
					}
				}
			}
		}(cidx)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if n := eng.Len(); n != clients*perClient {
		t.Fatalf("engine Len = %d, want %d", n, clients*perClient)
	}
}

// TestStatsOverWire checks that the file backend's real-cost counters
// travel the wire.
func TestStatsOverWire(t *testing.T) {
	dir := t.TempDir()
	addr, _, stop := startServer(t, extbuf.Config{Backend: "file", Path: dir + "/t"}, 2, server.Config{})
	defer stop()

	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	keys := make([]uint64, 1000)
	vals := make([]uint64, 1000)
	for i := range keys {
		keys[i] = uint64(i + 1)
		vals[i] = uint64(i)
	}
	if err := cl.InsertBatch(ctx, keys, vals); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len != 1000 {
		t.Fatalf("Len = %d, want 1000", st.Len)
	}
	if st.Store.WALFsyncs == 0 || st.Store.Fsyncs == 0 {
		t.Fatalf("durable acks travelled without fsyncs: %+v", st.Store)
	}
	if st.Store.BytesWritten == 0 {
		t.Fatalf("no bytes written reported: %+v", st.Store)
	}
}

// BenchmarkServerPipeline measures end-to-end loopback throughput of
// pipelined insert batches — the number the e2e smoke gate watches.
func BenchmarkServerPipeline(b *testing.B) {
	addr, _, stop := startServer(b, extbuf.Config{}, 4, server.Config{
		Logf: func(string, ...any) {},
	})
	defer stop()
	cl, err := client.Dial(addr, client.Options{Conns: 2, Pipeline: 64})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	const batch = 256
	keys := make([]uint64, batch)
	vals := make([]uint64, batch)
	var ctr uint64
	b.ReportAllocs()
	b.ResetTimer()
	depth := 0
	var pendings []*client.Pending
	for i := 0; i < b.N; i++ {
		for j := range keys {
			ctr++
			keys[j] = ctr
			vals[j] = ctr * 3
		}
		p, err := cl.GoUpsert(keys, vals)
		if err != nil {
			b.Fatal(err)
		}
		pendings = append(pendings, p)
		depth++
		if depth == 32 {
			for _, p := range pendings {
				if err := p.Wait(ctx); err != nil {
					b.Fatal(err)
				}
			}
			pendings = pendings[:0]
			depth = 0
		}
	}
	for _, p := range pendings {
		if err := p.Wait(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "ops/s")
}
