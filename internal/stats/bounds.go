package stats

import "math"

// The functions below evaluate the explicit tail bounds the paper's lemmas
// use, so the experiment harness can print "measured vs bound" rows.

// ChernoffLowerTail bounds Pr[X < (1-eps)*mu] for a sum X of independent
// 0/1 variables with mean mu, using the multiplicative Chernoff form
// exp(-eps^2 * mu / 2), the form invoked in Lemma 2 of the paper.
func ChernoffLowerTail(mu, eps float64) float64 {
	if eps <= 0 {
		return 1
	}
	return math.Exp(-eps * eps * mu / 2)
}

// ChernoffUpperTail bounds Pr[X > (1+eps)*mu] using exp(-eps^2*mu/(2+eps)).
func ChernoffUpperTail(mu, eps float64) float64 {
	if eps <= 0 {
		return 1
	}
	return math.Exp(-eps * eps * mu / (2 + eps))
}

// Lemma3Bound returns the cost lower bound of Lemma 3 for an (s, p, t)
// bin-ball game with slack parameter mu: (1-mu)(1-sp)s - t, together with
// the failure probability exp(-mu^2 s / 3). The bound is only valid when
// s*p <= 1/3; callers should check Lemma3Applies first.
func Lemma3Bound(s int, p float64, t int, mu float64) (bound float64, failProb float64) {
	fs := float64(s)
	bound = (1-mu)*(1-fs*p)*fs - float64(t)
	failProb = math.Exp(-mu * mu * fs / 3)
	return bound, failProb
}

// Lemma3Applies reports whether the precondition s*p <= 1/3 of Lemma 3
// holds.
func Lemma3Applies(s int, p float64) bool { return float64(s)*p <= 1.0/3 }

// Lemma4Bound returns the cost lower bound 1/(20p) of Lemma 4. The bound
// holds with probability 1 - 2^{-Omega(s)} when s/2 >= t and s/2 >= 1/p;
// callers should check Lemma4Applies first.
func Lemma4Bound(p float64) float64 { return 1 / (20 * p) }

// Lemma4Applies reports whether the preconditions s/2 >= t and s/2 >= 1/p
// of Lemma 4 hold.
func Lemma4Applies(s int, p float64, t int) bool {
	return float64(s)/2 >= float64(t) && float64(s)/2 >= 1/p
}

// BinomialTailAbove returns an upper bound on Pr[Bin(n, p) > k] via the
// Chernoff bound with eps = k/(np) - 1; it returns 1 when k <= np.
// Used to predict bucket-overflow probabilities (the 1/2^Omega(b) terms).
func BinomialTailAbove(n int, p float64, k int) float64 {
	mu := float64(n) * p
	if mu <= 0 {
		return 0
	}
	if float64(k) <= mu {
		return 1
	}
	eps := float64(k)/mu - 1
	return ChernoffUpperTail(mu, eps)
}
