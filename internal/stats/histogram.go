package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Histogram counts integer-valued observations, such as "I/Os per query".
// The zero value is ready to use.
type Histogram struct {
	counts map[int]int64
	total  int64
}

// Add records one observation of value v.
func (h *Histogram) Add(v int) { h.AddN(v, 1) }

// AddN records k observations of value v.
func (h *Histogram) AddN(v int, k int64) {
	if h.counts == nil {
		h.counts = make(map[int]int64)
	}
	h.counts[v] += k
	h.total += k
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int64 { return h.total }

// Count returns the number of observations of value v.
func (h *Histogram) Count(v int) int64 { return h.counts[v] }

// Mean returns the mean observation, or 0 if the histogram is empty.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for v, c := range h.counts {
		sum += float64(v) * float64(c)
	}
	return sum / float64(h.total)
}

// TailFraction returns the fraction of observations with value >= v.
func (h *Histogram) TailFraction(v int) float64 {
	if h.total == 0 {
		return 0
	}
	var tail int64
	for x, c := range h.counts {
		if x >= v {
			tail += c
		}
	}
	return float64(tail) / float64(h.total)
}

// Values returns the distinct observed values in increasing order.
func (h *Histogram) Values() []int {
	vs := make([]int, 0, len(h.counts))
	for v := range h.counts {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	return vs
}

// Max returns the largest observed value, or 0 if empty.
func (h *Histogram) Max() int {
	vs := h.Values()
	if len(vs) == 0 {
		return 0
	}
	return vs[len(vs)-1]
}

// String renders the histogram with one "value: count (fraction)" line per
// distinct value.
func (h *Histogram) String() string {
	var b strings.Builder
	for _, v := range h.Values() {
		c := h.counts[v]
		fmt.Fprintf(&b, "%4d: %10d (%.4f)\n", v, c, float64(c)/float64(h.total))
	}
	return b.String()
}
