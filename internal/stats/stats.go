// Package stats provides the summary statistics, quantiles, histograms and
// tail-bound helpers used by the experiment harness to compare measured
// quantities against the paper's Chernoff-style concentration claims
// (Lemmas 1–4 of Wei, Yi, Zhang, SPAA 2009).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds streaming moments of a sample. The zero value is an empty
// summary ready for use. Add values with Add; all accessors are O(1).
type Summary struct {
	n    int
	mean float64
	m2   float64 // sum of squared deviations (Welford)
	min  float64
	max  float64
}

// Add incorporates x into the summary using Welford's online update.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// AddN incorporates x into the summary k times.
func (s *Summary) AddN(x float64, k int) {
	for i := 0; i < k; i++ {
		s.Add(x)
	}
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean, or 0 for an empty summary.
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation, or 0 for an empty summary.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 for an empty summary.
func (s *Summary) Max() float64 { return s.max }

// Var returns the unbiased sample variance, or 0 if fewer than two
// observations have been added.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Var()) }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of a 95% normal-approximation confidence
// interval for the mean.
func (s *Summary) CI95() float64 { return 1.96 * s.StdErr() }

// String renders the summary in a compact human-readable form.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.6g ±%.2g sd=%.4g min=%.6g max=%.6g",
		s.n, s.Mean(), s.CI95(), s.StdDev(), s.min, s.max)
}

// Merge combines another summary into s, as if all of o's observations had
// been Added to s (Chan et al. parallel variance update).
func (s *Summary) Merge(o *Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	delta := o.mean - s.mean
	n := s.n + o.n
	s.m2 += o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(n)
	s.mean += delta * float64(o.n) / float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n = n
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks. It sorts a copy and leaves xs
// untouched. Returns NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return quantileSorted(cp, q)
}

// Quantiles returns the quantiles of xs at each of qs, sorting once.
func Quantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	for i, q := range qs {
		out[i] = quantileSorted(cp, q)
	}
	return out
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
