package stats

import (
	"math"
	"testing"
	"testing/quick"

	"extbuf/internal/xrand"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) == math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{1, 2, 3, 4, 5} {
		s.Add(x)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Var() != 2.5 {
		t.Fatalf("Var = %v", s.Var())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.StdErr() != 0 {
		t.Fatal("empty summary should return zeros")
	}
}

func TestSummaryMatchesDirect(t *testing.T) {
	r := xrand.New(5)
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 2
		rr := xrand.New(seed)
		_ = r
		xs := make([]float64, n)
		var s Summary
		for i := range xs {
			xs[i] = rr.Float64()*100 - 50
			s.Add(xs[i])
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(n)
		var m2 float64
		for _, x := range xs {
			m2 += (x - mean) * (x - mean)
		}
		variance := m2 / float64(n-1)
		return almostEq(s.Mean(), mean, 1e-12) && almostEq(s.Var(), variance, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryMergeEquivalence(t *testing.T) {
	f := func(seed uint64, aRaw, bRaw uint8) bool {
		na, nb := int(aRaw%50)+1, int(bRaw%50)+1
		r := xrand.New(seed)
		var whole, left, right Summary
		for i := 0; i < na; i++ {
			x := r.Float64() * 10
			whole.Add(x)
			left.Add(x)
		}
		for i := 0; i < nb; i++ {
			x := r.Float64()*10 - 5
			whole.Add(x)
			right.Add(x)
		}
		left.Merge(&right)
		return left.N() == whole.N() &&
			almostEq(left.Mean(), whole.Mean(), 1e-12) &&
			almostEq(left.Var(), whole.Var(), 1e-9) &&
			left.Min() == whole.Min() && left.Max() == whole.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryMergeEmpty(t *testing.T) {
	var a, b Summary
	a.Add(1)
	a.Merge(&b) // merging empty changes nothing
	if a.N() != 1 || a.Mean() != 1 {
		t.Fatal("merge with empty changed summary")
	}
	b.Merge(&a) // merging into empty copies
	if b.N() != 1 || b.Mean() != 1 {
		t.Fatal("merge into empty failed")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Fatalf("median = %v", q)
	}
	if q := Quantile(xs, 0.25); q != 2 {
		t.Fatalf("q25 = %v", q)
	}
	// Input must be untouched.
	if xs[0] != 5 {
		t.Fatal("Quantile mutated input")
	}
}

func TestQuantileEmpty(t *testing.T) {
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestQuantilesMonotone(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%40) + 1
		r := xrand.New(seed)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64()
		}
		qs := Quantiles(xs, 0, 0.1, 0.5, 0.9, 1)
		for i := 1; i < len(qs); i++ {
			if qs[i] < qs[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{2, 4, 6}); m != 4 {
		t.Fatalf("Mean = %v", m)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	h.Add(1)
	h.Add(1)
	h.Add(2)
	h.AddN(5, 2)
	if h.Total() != 5 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Count(1) != 2 || h.Count(5) != 2 || h.Count(3) != 0 {
		t.Fatal("bad counts")
	}
	if got := h.Mean(); math.Abs(got-(1+1+2+5+5)/5.0) > 1e-12 {
		t.Fatalf("mean = %v", got)
	}
	if tf := h.TailFraction(2); math.Abs(tf-3.0/5) > 1e-12 {
		t.Fatalf("tail(2) = %v", tf)
	}
	if h.Max() != 5 {
		t.Fatalf("max = %d", h.Max())
	}
	vs := h.Values()
	if len(vs) != 3 || vs[0] != 1 || vs[2] != 5 {
		t.Fatalf("values = %v", vs)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.TailFraction(0) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram accessors should be zero")
	}
}

func TestChernoffBounds(t *testing.T) {
	// Bounds must be probabilities and decrease with mu and eps.
	if p := ChernoffLowerTail(100, 0.5); p <= 0 || p >= 1 {
		t.Fatalf("lower tail = %v", p)
	}
	if ChernoffLowerTail(100, 0.5) <= ChernoffLowerTail(200, 0.5) {
		t.Fatal("lower tail should shrink with mu")
	}
	if ChernoffUpperTail(100, 0.5) <= ChernoffUpperTail(100, 1.0) {
		t.Fatal("upper tail should shrink with eps")
	}
	if ChernoffLowerTail(100, 0) != 1 || ChernoffUpperTail(100, -1) != 1 {
		t.Fatal("non-positive eps should give trivial bound 1")
	}
}

func TestChernoffEmpirical(t *testing.T) {
	// Empirical check that the lower-tail bound really bounds the tail of
	// a Binomial(n, p) sum (Lemma 2's inequality).
	r := xrand.New(77)
	const n = 2000
	p := 0.05
	mu := float64(n) * p
	eps := 0.4
	thresh := (1 - eps) * mu
	const trials = 20000
	hits := 0
	for i := 0; i < trials; i++ {
		if float64(r.Binomial(n, p)) < thresh {
			hits++
		}
	}
	emp := float64(hits) / trials
	bound := ChernoffLowerTail(mu, eps)
	if emp > bound+0.01 {
		t.Fatalf("empirical tail %v exceeds Chernoff bound %v", emp, bound)
	}
}

func TestLemma3Bound(t *testing.T) {
	bound, fail := Lemma3Bound(1000, 1e-4, 50, 0.1)
	want := 0.9 * (1 - 0.1) * 1000 // (1-mu)(1-sp)s
	if math.Abs(bound-(want-50)) > 1e-9 {
		t.Fatalf("bound = %v want %v", bound, want-50)
	}
	if fail <= 0 || fail >= 1 {
		t.Fatalf("fail prob = %v", fail)
	}
	if !Lemma3Applies(1000, 1e-4) {
		t.Fatal("lemma 3 should apply")
	}
	if Lemma3Applies(1000, 1e-3) {
		t.Fatal("lemma 3 should not apply when sp > 1/3")
	}
}

func TestLemma4Bound(t *testing.T) {
	if b := Lemma4Bound(0.01); b != 5 {
		t.Fatalf("bound = %v", b)
	}
	if !Lemma4Applies(1000, 0.01, 100) {
		t.Fatal("lemma 4 should apply")
	}
	if Lemma4Applies(1000, 0.01, 600) {
		t.Fatal("lemma 4 should not apply when t > s/2")
	}
	if Lemma4Applies(100, 0.001, 10) {
		t.Fatal("lemma 4 should not apply when 1/p > s/2")
	}
}

func TestBinomialTailAbove(t *testing.T) {
	if p := BinomialTailAbove(100, 0.5, 40); p != 1 {
		t.Fatalf("below-mean threshold should give 1, got %v", p)
	}
	p1 := BinomialTailAbove(100, 0.5, 70)
	p2 := BinomialTailAbove(100, 0.5, 90)
	if !(p1 > p2 && p2 > 0) {
		t.Fatalf("tails not decreasing: %v %v", p1, p2)
	}
	if BinomialTailAbove(0, 0.5, 1) != 0 {
		t.Fatal("zero trials should give zero tail")
	}
}
