// Package tablefmt renders the experiment harness's result tables as
// aligned plain text, the way the paper's tables and figure series are
// reported. It is shared by cmd/* binaries and the root benchmarks so
// every experiment prints in one consistent format.
package tablefmt

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of string cells with a header row.
type Table struct {
	Title  string
	Notes  []string // free-form caption lines printed under the title
	Header []string
	Rows   [][]string
}

// New returns an empty table with the given title and column headers.
func New(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddNote appends a caption line printed beneath the title.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// AddRow appends a row; cells are formatted with %v unless already strings.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = FormatFloat(v)
		case float32:
			row[i] = FormatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: integers without decimals, small
// magnitudes with enough precision to be meaningful.
func FormatFloat(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15 && v > -1e15:
		return fmt.Sprintf("%d", int64(v))
	case v != 0 && (v < 0.001 && v > -0.001):
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "   %s\n", n)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(strings.Repeat(" ", pad))
			b.WriteString(c)
		}
		fmt.Fprintln(w, b.String())
	}
	line(t.Header)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if total > 2 {
		fmt.Fprintln(w, strings.Repeat("-", total-2))
	}
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}
