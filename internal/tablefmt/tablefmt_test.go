package tablefmt

import (
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tab := New("demo", "name", "value")
	tab.AddRow("alpha", 1)
	tab.AddRow("beta-longer", 22.5)
	s := tab.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[0], "== demo ==") {
		t.Fatalf("title line: %q", lines[0])
	}
	// All data lines equal width (right-aligned columns).
	if len(lines[3]) != len(lines[4]) {
		t.Fatalf("rows not aligned:\n%s", s)
	}
	if !strings.Contains(s, "22.5000") {
		t.Fatalf("float not formatted: %s", s)
	}
}

func TestNotes(t *testing.T) {
	tab := New("x", "a")
	tab.AddNote("n=%d", 42)
	tab.AddNote("plain")
	s := tab.String()
	if !strings.Contains(s, "n=42") || !strings.Contains(s, "plain") {
		t.Fatalf("notes missing: %s", s)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		1:         "1",
		-3:        "-3",
		1.5:       "1.5000",
		0.0001234: "1.234e-04",
		0:         "0",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q want %q", in, got, want)
		}
	}
}

func TestAddRowTypes(t *testing.T) {
	tab := New("t", "a", "b", "c", "d")
	tab.AddRow("s", 7, 1.25, true)
	row := tab.Rows[0]
	if row[0] != "s" || row[1] != "7" || row[2] != "1.2500" || row[3] != "true" {
		t.Fatalf("row = %v", row)
	}
}

func TestEmptyTable(t *testing.T) {
	tab := New("", "only")
	s := tab.String()
	if strings.Contains(s, "==") {
		t.Fatal("empty title should not render a title line")
	}
	if !strings.Contains(s, "only") {
		t.Fatal("header missing")
	}
}

func TestWideCellGrowsColumn(t *testing.T) {
	tab := New("t", "h")
	tab.AddRow("a-very-long-cell-value")
	s := tab.String()
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n")[2:] {
		if len(line) < len("a-very-long-cell-value") {
			t.Fatalf("column did not grow: %q", line)
		}
	}
}
