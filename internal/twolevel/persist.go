package twolevel

import (
	"fmt"

	"extbuf/internal/chainhash"
	"extbuf/internal/ckpt"
	"extbuf/internal/hashfn"
	"extbuf/internal/iomodel"
)

// SaveState serializes the table's volatile in-memory state — the home
// directory, the dirty-bucket set and the nested overflow table — for a
// checkpoint.
func (t *Table) SaveState(e *ckpt.Encoder) {
	e.BlockIDs(t.homes)
	e.Int(t.n)
	e.Int(t.dirtyCap)
	dirty := make([]int64, 0, len(t.dirty))
	for i := range t.dirty {
		dirty = append(dirty, int64(i))
	}
	e.I64s(dirty)
	t.overflow.SaveState(e)
}

// Restore rebuilds a table from a SaveState payload on a model whose
// store already holds the checkpointed blocks. It charges the same
// memory reservation the live table held: the fixed control words plus
// one word per dirty bucket.
func Restore(model *iomodel.Model, fn hashfn.Fn, d *ckpt.Decoder) (*Table, error) {
	homes := d.BlockIDs()
	n := d.Int()
	dirtyCap := d.Int()
	dirtyList := d.I64s()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("twolevel: restore: %w", err)
	}
	if len(homes) < 1 || n < 0 || dirtyCap < 0 || len(dirtyList) > dirtyCap {
		return nil, fmt.Errorf("twolevel: restore: implausible state (homes=%d n=%d dirty=%d/%d)",
			len(homes), n, len(dirtyList), dirtyCap)
	}
	res := int64(memoryWords + len(dirtyList))
	if err := model.Mem.Alloc(res); err != nil {
		return nil, fmt.Errorf("twolevel: %w", err)
	}
	ovf, err := chainhash.Restore(model, fn, d)
	if err != nil {
		model.Mem.Release(res)
		return nil, fmt.Errorf("twolevel: overflow table: %w", err)
	}
	dirty := make(map[int]struct{}, len(dirtyList))
	for _, i := range dirtyList {
		if i < 0 || i >= int64(len(homes)) {
			ovf.Close()
			model.Mem.Release(res)
			return nil, fmt.Errorf("twolevel: restore: dirty bucket %d out of range", i)
		}
		dirty[int(i)] = struct{}{}
	}
	return &Table{
		d:        model.Disk,
		mem:      model.Mem,
		fn:       fn,
		homes:    homes,
		overflow: ovf,
		dirty:    dirty,
		dirtyCap: dirtyCap,
		n:        n,
		memRes:   res,
	}, nil
}
