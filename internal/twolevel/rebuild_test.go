package twolevel

import (
	"testing"

	"extbuf/internal/hashfn"
	"extbuf/internal/iomodel"
	"extbuf/internal/xrand"
	"extbuf/internal/zones"
)

// fillHomes inserts keys until every home bucket is full, returning the
// inserted keys. Small b keeps this fast.
func fillHomes(t *testing.T, tab *Table, rng *xrand.Rand, b int) []uint64 {
	t.Helper()
	var keys []uint64
	fullBuckets := 0
	fill := make(map[int]int)
	for fullBuckets < len(tab.homes) && len(keys) < 100000 {
		k := rng.Uint64()
		h := tab.home(k)
		if fill[h] >= b {
			continue // already full; adding would go to overflow
		}
		tab.Insert(k, uint64(len(keys)))
		keys = append(keys, k)
		fill[h]++
		if fill[h] == b {
			fullBuckets++
		}
	}
	if fullBuckets < len(tab.homes) {
		t.Fatal("could not fill every home bucket")
	}
	return keys
}

// TestDirtyRebuild drives the dirty set past its cap so rebuildOverflow
// runs, then verifies full consistency.
func TestDirtyRebuild(t *testing.T) {
	const b = 2
	// Small memory -> small dirtyCap (max(16, m/8) = 32) so the rebuild
	// triggers quickly.
	model := iomodel.NewModel(b, 256)
	tab, err := New(model, hashfn.NewIdeal(5), 128)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(7)
	keys := fillHomes(t, tab, rng, b)

	// Push extra keys into overflow (their home blocks are full).
	var ovfKeys []uint64
	for len(ovfKeys) < 60 {
		k := rng.Uint64()
		tab.Insert(k, uint64(1000+len(ovfKeys)))
		ovfKeys = append(ovfKeys, k)
	}
	if tab.OverflowLen() != 60 {
		t.Fatalf("overflow len = %d", tab.OverflowLen())
	}

	// Delete one resident from many distinct full home buckets: each
	// marks its bucket dirty; past dirtyCap the overflow rebuild fires
	// and drains overflow items back into the freed home slots.
	deleted := make(map[uint64]bool)
	buckets := make(map[int]bool)
	for _, k := range keys {
		h := tab.home(k)
		if buckets[h] {
			continue
		}
		buckets[h] = true
		if ok, _ := tab.Delete(k); !ok {
			t.Fatalf("delete %d failed", k)
		}
		deleted[k] = true
		if len(buckets) == 60 {
			break
		}
	}
	// The rebuild must have run (dirty set capped well below 60) and
	// drained overflow items into home space.
	if tab.OverflowLen() >= 60 {
		t.Fatalf("overflow not drained by rebuild: %d", tab.OverflowLen())
	}
	// Every surviving key must still resolve with its value.
	for i, k := range keys {
		v, ok, _ := tab.Lookup(k)
		if deleted[k] {
			if ok {
				t.Fatalf("deleted key %d still present", k)
			}
			continue
		}
		if !ok || v != uint64(i) {
			t.Fatalf("key %d lost after rebuild (ok=%v v=%d want %d)", k, ok, v, i)
		}
	}
	for i, k := range ovfKeys {
		v, ok, _ := tab.Lookup(k)
		if !ok || v != uint64(1000+i) {
			t.Fatalf("overflow key %d lost after rebuild (ok=%v)", k, ok)
		}
	}
	// And upserts through the now-clean buckets must not duplicate.
	before := tab.Len()
	for _, k := range ovfKeys {
		tab.Insert(k, 9)
	}
	if tab.Len() != before {
		t.Fatalf("re-insert after rebuild changed count: %d -> %d", before, tab.Len())
	}
}

func TestAccessors(t *testing.T) {
	model := iomodel.NewModel(4, 1024)
	tab, err := New(model, hashfn.NewIdeal(1), 8)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumHomeBuckets() != 8 {
		t.Fatalf("NumHomeBuckets = %d", tab.NumHomeBuckets())
	}
	if tab.MemoryKeys() != nil {
		t.Fatal("MemoryKeys should be nil")
	}
	if tab.Disk() != model.Disk {
		t.Fatal("Disk accessor broken")
	}
	tab.Insert(1, 2)
	rep := zones.Audit(tab, []uint64{1})
	if rep.F != 1 {
		t.Fatalf("audit: %+v", rep)
	}
	tab.Close()
	if model.Mem.Used() != 0 {
		t.Fatalf("Close left %d words", model.Mem.Used())
	}
}
