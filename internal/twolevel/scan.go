package twolevel

import (
	"extbuf/internal/block"
	"extbuf/internal/iomodel"
)

// ScanBuckets returns the number of scan buckets: the home buckets
// followed by the overflow table's buckets. A key lives in exactly one
// of the two levels (the dirty-set machinery preserves that invariant),
// so the concatenation emits each key once.
func (t *Table) ScanBuckets() int {
	return len(t.homes) + t.overflow.ScanBuckets()
}

// ScanBucket appends bucket i's entries to buf, returning buf and the
// I/Os spent.
func (t *Table) ScanBucket(i int, buf []iomodel.Entry) ([]iomodel.Entry, int) {
	if i < len(t.homes) {
		return block.Collect(t.d, t.homes[i], buf)
	}
	return t.overflow.ScanBucket(i-len(t.homes), buf)
}
