// Package twolevel implements a Jensen–Pagh-style high-load external hash
// table: home buckets of one block each filled to load factor
// alpha = 1 - Theta(1/sqrt(b)), with all overflowing items placed in a
// shared low-load overflow hash table.
//
// This is the repository's substitution for the construction of Jensen
// and Pagh ("Optimality in external memory hashing", Algorithmica 2008)
// that the paper cites: maintaining load 1 - O(1/sqrt(b)) while
// supporting queries and updates in 1 + O(1/sqrt(b)) I/Os. With home
// buckets at load alpha, the expected overflow mass per bucket is
// E[(X - b)^+] = Theta(sqrt(b)) for X ~ Binomial(n, 1/buckets) at
// alpha = 1 - 1/sqrt(b), i.e. a Theta(1/sqrt(b)) fraction of all items,
// so lookups and inserts touch the overflow table with probability
// O(1/sqrt(b)) — the same bounds as JP via a much simpler scheme
// (DESIGN.md §5, substitution 3).
//
// # Deletions and the dirty set
//
// A key is placed in overflow only when its home block is full, so an
// insert that finds space in the home block may normally skip the
// duplicate check in overflow. Deleting from a full home block breaks
// that inference; such buckets are recorded in a small in-memory dirty
// set (charged against the memory budget), and inserts into dirty
// buckets pay one extra overflow probe. When the dirty set exceeds its
// bound the structure rebuilds the overflow table, draining items back
// into home blocks with space.
package twolevel

import (
	"fmt"
	"math"
	"math/bits"

	"extbuf/internal/chainhash"
	"extbuf/internal/hashfn"
	"extbuf/internal/iomodel"
)

// memoryWords is the fixed charged footprint (control words); the dirty
// set charges one word per entry as it grows.
const memoryWords = 4

// Table is a two-level high-load hash table. Not safe for concurrent use.
type Table struct {
	d        *iomodel.Disk
	mem      *iomodel.Memory
	fn       hashfn.Fn
	homes    []iomodel.BlockID
	overflow *chainhash.Table
	dirty    map[int]struct{}
	dirtyCap int
	n        int
	memRes   int64
}

// HomeBucketsFor returns the number of home buckets sizing the table
// for n items at the Jensen–Pagh load factor alpha = 1 - 1/sqrt(b).
// The count is exact (not rounded to a power of two): the home array
// never splits, so it uses multiplicative range mapping and any count
// works — which is what lets the table actually sit at load alpha.
func HomeBucketsFor(n, b int) int {
	alpha := 1 - 1/math.Sqrt(float64(b))
	nh := int(math.Ceil(float64(n) / (alpha * float64(b))))
	if nh < 1 {
		nh = 1
	}
	return nh
}

// New returns a table with exactly nhome home buckets. The overflow
// table starts tiny and doubles on demand: the expected overflow mass
// at JP load is only a Theta(1/sqrt(b)) fraction of the items, so
// growing it lazily keeps the structure's disk footprint — and hence
// its load factor — within 1 + O(1/sqrt(b)) of optimal, which is the
// JP claim itself.
func New(model *iomodel.Model, fn hashfn.Fn, nhome int) (*Table, error) {
	if nhome < 1 {
		return nil, fmt.Errorf("twolevel: nhome must be >= 1, got %d", nhome)
	}
	if err := model.Mem.Alloc(memoryWords); err != nil {
		return nil, fmt.Errorf("twolevel: %w", err)
	}
	ovf, err := chainhash.New(model, fn, 4)
	if err != nil {
		model.Mem.Release(memoryWords)
		return nil, fmt.Errorf("twolevel: overflow table: %w", err)
	}
	ovf.SetMaxLoad(0.5)
	t := &Table{
		d:        model.Disk,
		mem:      model.Mem,
		fn:       fn,
		homes:    make([]iomodel.BlockID, nhome),
		overflow: ovf,
		dirty:    make(map[int]struct{}),
		dirtyCap: 1024,
		memRes:   memoryWords,
	}
	if t.dirtyCap > int(model.Mem.Capacity()/8) {
		t.dirtyCap = int(model.Mem.Capacity() / 8)
		if t.dirtyCap < 16 {
			t.dirtyCap = 16
		}
	}
	for i := range t.homes {
		t.homes[i] = model.Disk.Alloc()
	}
	return t, nil
}

// Len returns the number of stored entries.
func (t *Table) Len() int { return t.n }

// OverflowLen returns the number of entries currently in the overflow
// table (the Theta(1/sqrt(b)) fraction the analysis predicts).
func (t *Table) OverflowLen() int { return t.overflow.Len() }

// NumHomeBuckets returns the number of home buckets.
func (t *Table) NumHomeBuckets() int { return len(t.homes) }

// LoadFactor returns the paper's load factor over all blocks in use.
func (t *Table) LoadFactor() float64 {
	b := t.d.B()
	blocks := len(t.homes) + t.overflow.DiskBlocks()
	return float64((t.n+b-1)/b) / float64(blocks)
}

// home maps the hash to a bucket with multiplicative range mapping
// (hash * nhome) >> 64: uniform for any bucket count, no power-of-two
// rounding, so the configured load factor is hit exactly.
func (t *Table) home(key uint64) int {
	hi, _ := bits.Mul64(t.fn.Hash(key), uint64(len(t.homes)))
	return int(hi)
}

// Insert stores (key, val), overwriting existing values. It returns the
// I/Os spent: 1 when the home block absorbs the item, 1 + overflow cost
// otherwise.
func (t *Table) Insert(key, val uint64) int {
	h := t.home(key)
	id := t.homes[h]
	buf := t.d.Read(id, t.d.AcquireBuf())
	defer func() { t.d.ReleaseBuf(buf) }()
	ios := 1
	for i := range buf {
		if buf[i].Key == key {
			buf[i].Val = val
			t.d.WriteBack(id, buf)
			return ios
		}
	}
	_, isDirty := t.dirty[h]
	if len(buf) < t.d.B() && !isDirty {
		// Clean bucket with space: key cannot be in overflow.
		buf = append(buf, iomodel.Entry{Key: key, Val: val})
		t.d.WriteBack(id, buf)
		t.n++
		return ios
	}
	if len(buf) < t.d.B() {
		// Dirty bucket: the key may be hiding in overflow. Probe it;
		// if present update there, else claim the home space and the
		// bucket's inference stays broken (still dirty).
		if _, ok, c := t.overflow.Lookup(key); ok {
			ios += c
			ios += t.overflow.Insert(key, val)
			return ios
		} else {
			ios += c
		}
		buf = t.d.Read(id, buf[:0])
		ios++
		buf = append(buf, iomodel.Entry{Key: key, Val: val})
		t.d.WriteBack(id, buf)
		t.n++
		return ios
	}
	// Full home block: the item goes to overflow (chainhash handles
	// duplicates there).
	before := t.overflow.Len()
	ios += t.overflow.Insert(key, val)
	if t.overflow.Len() > before {
		t.n++
	}
	return ios
}

// Lookup returns the value for key and the I/Os spent: 1 when the home
// block holds it, 1 + overflow cost otherwise. A miss in a non-full clean
// home block stops immediately — the key cannot be in overflow.
func (t *Table) Lookup(key uint64) (val uint64, ok bool, ios int) {
	h := t.home(key)
	id := t.homes[h]
	buf := t.d.ReadPinned(id)
	ios = 1
	for i := range buf {
		if buf[i].Key == key {
			v := buf[i].Val
			t.d.Unpin(id)
			return v, true, ios
		}
	}
	full := len(buf) == t.d.B()
	t.d.Unpin(id)
	_, isDirty := t.dirty[h]
	if !full && !isDirty {
		return 0, false, ios
	}
	val, ok, c := t.overflow.Lookup(key)
	return val, ok, ios + c
}

// Delete removes key, marking the bucket dirty when it breaks the
// full-home inference, and rebuilding the overflow table when the dirty
// set outgrows its memory bound. Reports presence and I/Os spent.
func (t *Table) Delete(key uint64) (ok bool, ios int) {
	h := t.home(key)
	id := t.homes[h]
	buf := t.d.Read(id, t.d.AcquireBuf())
	defer func() { t.d.ReleaseBuf(buf) }()
	ios = 1
	for i := range buf {
		if buf[i].Key == key {
			wasFull := len(buf) == t.d.B()
			buf[i] = buf[len(buf)-1]
			buf = buf[:len(buf)-1]
			t.d.WriteBack(id, buf)
			t.n--
			if wasFull {
				if _, already := t.dirty[h]; !already {
					if err := t.mem.Alloc(1); err == nil {
						t.memRes++
						t.dirty[h] = struct{}{}
					} else {
						// No memory for another dirty word: rebuild now.
						ios += t.rebuildOverflow()
					}
					if len(t.dirty) > t.dirtyCap {
						ios += t.rebuildOverflow()
					}
				}
			}
			return true, ios
		}
	}
	_, isDirty := t.dirty[h]
	if len(buf) < t.d.B() && !isDirty {
		return false, ios
	}
	delOK, c := t.overflow.Delete(key)
	if delOK {
		t.n--
	}
	return delOK, ios + c
}

// rebuildOverflow drains overflow items back into home blocks with
// space, rebuilds the overflow table with the remainder, and clears the
// dirty set. Returns the I/Os spent.
func (t *Table) rebuildOverflow() int {
	entries, ios := t.overflow.CollectAll(nil)
	// Group overflow items by home bucket.
	byHome := make(map[int][]iomodel.Entry)
	for _, e := range entries {
		h := t.home(e.Key)
		byHome[h] = append(byHome[h], e)
	}
	var stay []iomodel.Entry
	for h, es := range byHome {
		id := t.homes[h]
		buf := t.d.Read(id, nil)
		ios++
		space := t.d.B() - len(buf)
		take := space
		if take > len(es) {
			take = len(es)
		}
		buf = append(buf, es[:take]...)
		t.d.WriteBack(id, buf)
		stay = append(stay, es[take:]...)
	}
	t.overflow.Reset()
	ios += t.overflow.BulkLoad(stay)
	t.mem.Release(int64(len(t.dirty)))
	t.memRes -= int64(len(t.dirty))
	t.dirty = make(map[int]struct{})
	return ios
}

// AddressOf returns the home block of key for the zones audit. Items in
// overflow are outside B_f(x) and therefore in the paper's slow zone —
// the O(1/sqrt(b)) slow-zone mass is exactly what buys the high load
// factor.
func (t *Table) AddressOf(key uint64) iomodel.BlockID {
	return t.homes[t.home(key)]
}

// MemoryKeys returns nil: the dirty set stores bucket indices, not items.
func (t *Table) MemoryKeys() []uint64 { return nil }

// Disk exposes the underlying disk for audits.
func (t *Table) Disk() *iomodel.Disk { return t.d }

// Close releases the table's memory reservations.
func (t *Table) Close() {
	t.overflow.Close()
	t.mem.Release(t.memRes)
	t.memRes = 0
}
