package twolevel

import (
	"math"
	"testing"
	"testing/quick"

	"extbuf/internal/hashfn"
	"extbuf/internal/iomodel"
	"extbuf/internal/workload"
	"extbuf/internal/xrand"
)

func newTable(t *testing.T, b, nhome int) (*iomodel.Model, *Table) {
	t.Helper()
	model := iomodel.NewModel(b, 1<<20)
	tab, err := New(model, hashfn.NewIdeal(1), nhome)
	if err != nil {
		t.Fatal(err)
	}
	return model, tab
}

func TestInsertLookup(t *testing.T) {
	_, tab := newTable(t, 8, 16)
	rng := xrand.New(2)
	keys := workload.Keys(rng, 120) // high load: ~0.94
	for i, k := range keys {
		tab.Insert(k, uint64(i))
	}
	if tab.Len() != 120 {
		t.Fatalf("Len = %d", tab.Len())
	}
	for i, k := range keys {
		v, ok, _ := tab.Lookup(k)
		if !ok || v != uint64(i) {
			t.Fatalf("key %d lost (ok=%v)", k, ok)
		}
	}
	for i := 0; i < 50; i++ {
		if _, ok, _ := tab.Lookup(rng.Uint64()); ok {
			t.Fatal("found absent key")
		}
	}
}

func TestReplaceInHomeAndOverflow(t *testing.T) {
	model, tab := newTable(t, 2, 2)
	_ = model
	rng := xrand.New(3)
	keys := workload.Keys(rng, 6) // b=2, 2 home buckets: must overflow
	for i, k := range keys {
		tab.Insert(k, uint64(i))
	}
	if tab.OverflowLen() == 0 {
		t.Fatal("expected overflow at saturating load")
	}
	for i, k := range keys {
		tab.Insert(k, uint64(i)+100)
	}
	if tab.Len() != 6 {
		t.Fatalf("Len = %d after replaces", tab.Len())
	}
	for i, k := range keys {
		v, ok, _ := tab.Lookup(k)
		if !ok || v != uint64(i)+100 {
			t.Fatalf("key %d: v=%d", k, v)
		}
	}
}

func TestHomeBucketsFor(t *testing.T) {
	nh := HomeBucketsFor(1000, 64)
	// Capacity at alpha = 1-1/8 must cover n...
	if float64(nh*64)*(1-1/math.Sqrt(64)) < 1000 {
		t.Fatalf("sizing too small: %d buckets", nh)
	}
	// ...but only barely: the whole point is to sit AT the high load
	// factor, so one bucket fewer must not suffice.
	if nh > 1 && float64((nh-1)*64)*(1-1/math.Sqrt(64)) >= 1000 {
		t.Fatalf("sizing too generous: %d buckets", nh)
	}
}

func TestJensenPaghCosts(t *testing.T) {
	// At alpha = 1 - 1/sqrt(b) the overflow fraction, query cost and
	// insert cost must all be 1 + O(1/sqrt(b)).
	b := 64
	n := 20000
	nh := HomeBucketsFor(n, b)
	model := iomodel.NewModel(b, 1<<22)
	tab, err := New(model, hashfn.NewIdeal(42), nh)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(5)
	keys := workload.Keys(rng, n)
	c0 := model.Counters()
	for _, k := range keys {
		tab.Insert(k, 0)
	}
	insPer := float64(model.Counters().Sub(c0).IOs()) / float64(n)
	ovfFrac := float64(tab.OverflowLen()) / float64(n)
	qc0 := model.Counters()
	for _, k := range keys {
		if _, ok, _ := tab.Lookup(k); !ok {
			t.Fatal("lost key")
		}
	}
	qryPer := float64(model.Counters().Sub(qc0).IOs()) / float64(n)
	// 1/sqrt(64) = 0.125; allow generous constants but demand the shape.
	if ovfFrac > 4/math.Sqrt(float64(b)) {
		t.Fatalf("overflow fraction %.4f too large for JP regime", ovfFrac)
	}
	if insPer > 1+6/math.Sqrt(float64(b)) {
		t.Fatalf("insert cost %.4f exceeds 1 + O(1/sqrt b)", insPer)
	}
	if qryPer > 1+6/math.Sqrt(float64(b)) {
		t.Fatalf("query cost %.4f exceeds 1 + O(1/sqrt b)", qryPer)
	}
	if lf := tab.LoadFactor(); lf < 0.5 {
		t.Fatalf("load factor %.3f too low for the high-load regime", lf)
	}
}

func TestDeleteDirtyPath(t *testing.T) {
	_, tab := newTable(t, 2, 2)
	rng := xrand.New(7)
	keys := workload.Keys(rng, 8)
	for i, k := range keys {
		tab.Insert(k, uint64(i))
	}
	// Delete everything, then re-insert; dirty-set handling must keep
	// lookups consistent throughout.
	for _, k := range keys {
		if ok, _ := tab.Delete(k); !ok {
			t.Fatalf("delete %d failed", k)
		}
	}
	if tab.Len() != 0 {
		t.Fatalf("Len = %d", tab.Len())
	}
	for i, k := range keys {
		tab.Insert(k, uint64(i)+50)
	}
	for i, k := range keys {
		v, ok, _ := tab.Lookup(k)
		if !ok || v != uint64(i)+50 {
			t.Fatalf("key %d lost after delete/reinsert cycle (v=%d ok=%v)", k, v, ok)
		}
	}
}

func TestDeleteAbsent(t *testing.T) {
	_, tab := newTable(t, 4, 4)
	tab.Insert(1, 1)
	if ok, _ := tab.Delete(2); ok {
		t.Fatal("deleted absent key")
	}
}

func TestMatchesMapModel(t *testing.T) {
	f := func(seed uint64, ops []byte) bool {
		model := iomodel.NewModel(2, 1<<18)
		tab, err := New(model, hashfn.NewIdeal(seed), 2)
		if err != nil {
			return false
		}
		ref := map[uint64]uint64{}
		r := xrand.New(seed)
		for _, op := range ops {
			key := uint64(op % 24)
			switch op % 3 {
			case 0:
				v := r.Uint64()
				tab.Insert(key, v)
				ref[key] = v
			case 1:
				ok, _ := tab.Delete(key)
				_, inRef := ref[key]
				if ok != inRef {
					return false
				}
				delete(ref, key)
			default:
				v, ok, _ := tab.Lookup(key)
				rv, rok := ref[key]
				if ok != rok || (ok && v != rv) {
					return false
				}
			}
			if tab.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
