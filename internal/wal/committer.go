package wal

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Committer is the group-commit engine of the durability barrier: it
// runs the fsyncs of a commit — the write-ahead log, the block file,
// and (indirectly) the checkpoint — concurrently on a bounded worker
// pool instead of serially in the committing goroutine. One committer
// is shared by every shard of a sharded durable engine, so a Flush
// barrier across S shards overlaps up to 2S fsyncs: per shard the WAL
// and block-file fsyncs of step (1)+(2) of the checkpoint protocol
// proceed together, and across shards all of them batch into the same
// pool. The fsync count per barrier is unchanged (different files need
// their own fsync); the serial latency — previously three fsync round
// trips per shard, back to back — collapses toward one.
//
// Committer is safe for concurrent use.
type Committer struct {
	sem     chan struct{}
	batches atomic.Int64
	syncs   atomic.Int64
}

// NewCommitter returns a committer running at most parallel fsyncs at
// once (minimum 1).
func NewCommitter(parallel int) *Committer {
	if parallel < 1 {
		parallel = 1
	}
	return &Committer{sem: make(chan struct{}, parallel)}
}

// Commit runs the given sync functions concurrently, bounded by the
// committer's parallelism, and returns their errors joined in argument
// order — deterministic, so injected-fault tests see stable errors.
func (c *Committer) Commit(fns ...func() error) error {
	c.batches.Add(1)
	c.syncs.Add(int64(len(fns)))
	if len(fns) == 1 {
		c.sem <- struct{}{}
		err := fns[0]()
		<-c.sem
		return err
	}
	errs := make([]error, len(fns))
	var wg sync.WaitGroup
	for i, fn := range fns {
		wg.Add(1)
		go func(i int, fn func() error) {
			defer wg.Done()
			c.sem <- struct{}{}
			errs[i] = fn()
			<-c.sem
		}(i, fn)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Batches returns the number of Commit calls served.
func (c *Committer) Batches() int64 { return c.batches.Load() }

// Syncs returns the total number of sync functions run.
func (c *Committer) Syncs() int64 { return c.syncs.Load() }
