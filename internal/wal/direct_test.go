package wal

import (
	"os"
	"path/filepath"
	"testing"
	"unsafe"

	"extbuf/internal/iomodel"
)

// openDirectLog opens an O_DIRECT log at path, skipping the test where
// the filesystem refuses the flag.
func openDirectLog(t *testing.T, path string, firstLSN uint64) (*Log, []Record) {
	t.Helper()
	l, recs, err := OpenIO(path, nil, firstLSN, iomodel.IOOptions{Mode: iomodel.IOModeODirect})
	if err != nil {
		t.Fatal(err)
	}
	if !l.Direct() {
		l.Close()
		t.Skip("filesystem refuses O_DIRECT; direct WAL path not exercisable here")
	}
	return l, recs
}

// alignCheckFile interposes on the log's direct fd and fails the test
// on any write that violates O_DIRECT's contract: offset, length and
// buffer base address must all be sector-aligned.
type alignCheckFile struct {
	iomodel.BlockFile
	t      *testing.T
	sector int64
	writes int
}

func (a *alignCheckFile) WriteAt(p []byte, off int64) (int, error) {
	a.writes++
	if off%a.sector != 0 || int64(len(p))%a.sector != 0 {
		a.t.Errorf("unaligned direct WAL write: off=%d len=%d sector=%d", off, len(p), a.sector)
	}
	if addr := addrOf(p); addr%uintptr(a.sector) != 0 {
		a.t.Errorf("unaligned direct WAL buffer: %#x (sector %d)", addr, a.sector)
	}
	return a.BlockFile.WriteAt(p, off)
}

func addrOf(p []byte) uintptr {
	if len(p) == 0 {
		return 0
	}
	return uintptr(unsafe.Pointer(&p[0]))
}

// TestDirectAppendRecoverRoundTrip drives the tail-sector rewrite hard:
// many small append+Sync cycles, each spilling a partial sector, with
// every write's alignment checked; then a direct reopen and a buffered
// reopen must both recover every record (the format is mode-agnostic).
func TestDirectAppendRecoverRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "direct.wal")
	l, _ := openDirectLog(t, path, 1)
	chk := &alignCheckFile{BlockFile: l.f, t: t, sector: l.sector}
	l.f = chk

	const rounds, perRound = 100, 3
	lsn := uint64(1)
	for r := 0; r < rounds; r++ {
		for i := 0; i < perRound; i++ {
			got, err := l.Append(OpUpsert, lsn*10, lsn*10+1)
			if err != nil {
				t.Fatal(err)
			}
			if got != lsn {
				t.Fatalf("append LSN = %d, want %d", got, lsn)
			}
			lsn++
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if chk.writes == 0 {
		t.Fatal("no writes reached the direct fd")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	const total = rounds * perRound
	verify := func(recs []Record) {
		t.Helper()
		if len(recs) != total {
			t.Fatalf("recovered %d records, want %d", len(recs), total)
		}
		for i, r := range recs {
			want := uint64(i + 1)
			if r.LSN != want || r.Key != want*10 || r.Val != want*10+1 {
				t.Fatalf("record %d = %+v", i, r)
			}
		}
	}
	l2, recs := openDirectLog(t, path, 1)
	verify(recs)
	// Resume appending through the reloaded tail, then check a buffered
	// reopen reads the same file.
	if _, err := l2.Append(OpDelete, 7, 0); err != nil {
		t.Fatal(err)
	}
	if err := l2.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, recs, err := Open(path, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if len(recs) != total+1 || recs[total].Op != OpDelete || recs[total].Key != 7 {
		t.Fatalf("buffered reopen: %d records, tail %+v", len(recs), recs[len(recs)-1])
	}
}

// TestDirectReset checks the sector-padded header rewrite: a reset log
// renumbers from the new LSN and survives a direct reopen.
func TestDirectReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reset.wal")
	l, _ := openDirectLog(t, path, 1)
	for i := uint64(0); i < 50; i++ {
		if _, err := l.Append(OpInsert, i, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Reset(900); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(OpUpsert, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs := openDirectLog(t, path, 900)
	if len(recs) != 1 || recs[0].LSN != 900 || recs[0].Key != 1 || recs[0].Val != 2 {
		t.Fatalf("post-reset recovery: %+v", recs)
	}
}

// TestDirectCrasherStaysBuffered: fault injection counts write
// syscalls, so a crash-injected log must refuse the direct path even
// when asked for it.
func TestDirectCrasherStaysBuffered(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crash.wal")
	c := iomodel.NewCrasher(iomodel.CrashPlan{FailAfterWrites: 1 << 30})
	l, _, err := OpenIO(path, c, 1, iomodel.IOOptions{Mode: iomodel.IOModeODirect})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Direct() || l.SectorSize() != 0 {
		t.Fatalf("crash-injected log took the direct path (sector=%d)", l.SectorSize())
	}
}

// TestPreallocBlockAligned (satellite): a log reopened from a trimmed
// file starts with a mid-block prealloc; the next reservation must
// round the Truncate target up to the filesystem block size so the
// extent never ends mid-block.
func TestPreallocBlockAligned(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prealloc.wal")
	l, _, err := Open(path, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		if _, err := l.Append(OpInsert, i, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil { // trims to header + 100 records: mid-block
		t.Fatal(err)
	}

	l2, recs, err := Open(path, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recs) != 100 {
		t.Fatalf("recovered %d records, want 100", len(recs))
	}
	if l2.fsBlock <= 0 {
		t.Fatalf("fsBlock not probed: %d", l2.fsBlock)
	}
	// Drive past the recovered prealloc so reserve issues a Truncate.
	for i := uint64(100); i < 10000; i++ {
		if _, err := l2.Append(OpInsert, i, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := l2.Spill(); err != nil {
		t.Fatal(err)
	}
	if l2.prealloc <= l2.size {
		t.Skip("no preallocated extent to check") // defensive; should not happen
	}
	if l2.prealloc%l2.fsBlock != 0 {
		t.Fatalf("prealloc %d not a multiple of the %d-byte fs block", l2.prealloc, l2.fsBlock)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != l2.prealloc {
		t.Fatalf("file %d bytes, prealloc %d", info.Size(), l2.prealloc)
	}
}
