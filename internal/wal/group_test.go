package wal

import (
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
)

// TestSpillChunksAndPrealloc drives enough appends to cross the 64 KiB
// spill threshold several times and checks (a) spills happen in few,
// large writes, (b) the file is preallocated ahead in doubling steps
// rather than extended per spill, (c) Close trims the preallocated
// tail, and (d) a reopen recovers every record.
func TestSpillChunksAndPrealloc(t *testing.T) {
	path := filepath.Join(t.TempDir(), "group.wal")
	l, recs, err := Open(path, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log recovered %d records", len(recs))
	}
	const n = 10000 // 210 KB of records: > 3 spill chunks
	for i := uint64(0); i < n; i++ {
		if _, err := l.Append(OpUpsert, i, i*2); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// 210 KB through 64 KiB chunks plus the Sync spill: a handful of
	// writes, not the ~52 the old 4 KiB threshold would issue.
	if got := l.Spills(); got < 2 || got > 8 {
		t.Fatalf("Spills = %d, want a handful (2..8) for %d records", got, n)
	}
	if l.Fsyncs() != 1 {
		t.Fatalf("Fsyncs = %d, want 1", l.Fsyncs())
	}
	// Preallocation extends ahead of the data in powers of two.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() < l.size {
		t.Fatalf("file %d bytes < data %d", info.Size(), l.size)
	}
	if info.Size() != l.prealloc {
		t.Fatalf("file %d bytes, prealloc %d", info.Size(), l.prealloc)
	}
	dataSize := l.size
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Close trims the zero tail: the file ends at its last record.
	info, err = os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != dataSize {
		t.Fatalf("file %d bytes after Close, want trimmed to %d", info.Size(), dataSize)
	}

	l2, recs, err := Open(path, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recs) != n {
		t.Fatalf("recovered %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) || r.Key != uint64(i) || r.Val != uint64(i)*2 {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
}

// TestRecoverIgnoresPreallocatedTail: a crash leaves the preallocated
// zero tail in place; recovery must stop at the last valid record, not
// interpret zeros.
func TestRecoverIgnoresPreallocatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tail.wal")
	l, _, err := Open(path, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5000; i++ { // crosses the spill threshold
		if _, err := l.Append(OpInsert, i, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: close the descriptor without the trimming Close.
	if err := l.f.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() <= l.size {
		t.Skip("no preallocated tail to exercise") // defensive; should not happen
	}
	_, recs, err := Open(path, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5000 {
		t.Fatalf("recovered %d records, want 5000", len(recs))
	}
}

// TestCommitterJoinsErrors: the group committer runs every sync and
// joins errors in argument order, deterministically.
func TestCommitterJoinsErrors(t *testing.T) {
	c := NewCommitter(2)
	errA := errors.New("a")
	errB := errors.New("b")
	var ran atomic.Int32
	err := c.Commit(
		func() error { ran.Add(1); return errA },
		func() error { ran.Add(1); return nil },
		func() error { ran.Add(1); return errB },
	)
	if ran.Load() != 3 {
		t.Fatalf("ran %d fns, want 3", ran.Load())
	}
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Fatalf("err = %v, want both a and b", err)
	}
	if err := c.Commit(func() error { return nil }); err != nil {
		t.Fatalf("all-nil commit err = %v", err)
	}
	if c.Batches() != 2 || c.Syncs() != 4 {
		t.Fatalf("batches=%d syncs=%d, want 2 and 4", c.Batches(), c.Syncs())
	}
}
