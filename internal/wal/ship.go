// ShipLog is the replication half of the package: a server-level
// append-only log of logical operations, written by the node that
// executes mutations and read concurrently by any number of cursors —
// the replication sources streaming its contents to followers. It
// reuses the WAL's 21-byte CRC-framed record format (the LSN is mixed
// into each record's CRC without being stored, tying records to their
// positions) under a distinct magic, but differs from Log in lifecycle:
// appends write through to the file immediately (so cursors can read
// them), a subscribe-style notification channel lets tail readers block
// until new records land instead of polling, and the only truncation is
// TruncateBefore — dropping a durable prefix, never the tail.
//
// Concurrency contract: Append may be called from many goroutines (it
// serializes internally and publishes records atomically),
// Read/NextLSN/StartLSN and the notification channel are safe from any
// goroutine, cursors use pread so they never disturb the append
// position, and TruncateBefore may run concurrently with all of them.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

const shipMagic = 0x4c535845 // "EXSL"

// ErrShipCorrupt is returned by ShipLog.Read when a record below the
// committed size fails its CRC — on-disk corruption, not a torn tail
// (torn tails are healed at open).
var ErrShipCorrupt = errors.New("wal: ship log corrupt record")

// ShipLog is an open replication log. See the package comment above
// for the concurrency contract.
type ShipLog struct {
	f    *os.File
	path string

	mu       sync.Mutex    // serializes appends, truncation and notify rotation
	notify   chan struct{} // closed and replaced on every append
	prealloc int64         // file extent reserved ahead of size

	size  atomic.Int64  // committed bytes (header + records)
	next  atomic.Uint64 // LSN of the next append
	start atomic.Uint64 // LSN of the first record in the file

	// readMu fences cursors against TruncateBefore's file swap: Read
	// holds the read side across its offset computation and pread, so a
	// (start, f) pair is always consistent. Deriving the start LSN from
	// size arithmetic instead would be racy — Append publishes size and
	// next as two separate stores.
	readMu sync.RWMutex

	fsyncMu sync.Mutex
	dirty   atomic.Bool // bytes written since the last fsync

	appendBuf []byte // reused encode buffer, guarded by mu
}

// OpenShip opens (creating if absent) the ship log at path and scans
// the existing records, discarding a torn tail. A fresh (or
// torn-header) log starts at firstLSN; an existing one resumes at its
// recovered position, and firstLSN is ignored.
func OpenShip(path string, firstLSN uint64) (*ShipLog, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: ship open: %w", err)
	}
	s := &ShipLog{f: f, path: path, notify: make(chan struct{})}
	if err := s.recoverShip(firstLSN); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// recoverShip scans the file like Log.recover: parse or (re)write the
// header, then validate records in bulk reads until the first CRC
// failure ends the valid prefix.
func (s *ShipLog) recoverShip(firstLSN uint64) error {
	var hdr [headerBytes]byte
	n, err := s.f.ReadAt(hdr[:], 0)
	if err != nil && err != io.EOF {
		return fmt.Errorf("wal: ship read header: %w", err)
	}
	if n < headerBytes ||
		binary.LittleEndian.Uint32(hdr[0:4]) != shipMagic ||
		binary.LittleEndian.Uint32(hdr[4:8]) != version ||
		binary.LittleEndian.Uint32(hdr[16:20]) != crc32.ChecksumIEEE(hdr[:16]) {
		// Empty file, or a header torn by a crash before any record
		// could exist behind it: start fresh at firstLSN.
		return s.resetShip(firstLSN)
	}
	lsn := binary.LittleEndian.Uint64(hdr[8:16])
	s.start.Store(lsn)
	size := int64(headerBytes)
	buf := make([]byte, spillChunk)
	for {
		rn, err := s.f.ReadAt(buf, size)
		if err != nil && err != io.EOF {
			return fmt.Errorf("wal: ship scan: %w", err)
		}
		valid := 0
		for valid+recordBytes <= rn {
			if !validate(buf[valid:valid+recordBytes], lsn) {
				break
			}
			valid += recordBytes
			lsn++
		}
		size += int64(valid)
		if valid+recordBytes <= rn || rn < len(buf) {
			break // hit an invalid record, or the end of the file
		}
	}
	s.next.Store(lsn)
	s.size.Store(size)
	s.prealloc = size
	if info, err := s.f.Stat(); err == nil && info.Size() > s.prealloc {
		s.prealloc = info.Size()
	}
	return nil
}

// resetShip truncates the file and writes a fresh header at firstLSN.
func (s *ShipLog) resetShip(firstLSN uint64) error {
	if err := s.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: ship truncate: %w", err)
	}
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], shipMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], version)
	binary.LittleEndian.PutUint64(hdr[8:16], firstLSN)
	binary.LittleEndian.PutUint32(hdr[16:20], crc32.ChecksumIEEE(hdr[:16]))
	if _, err := s.f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("wal: ship write header: %w", err)
	}
	s.next.Store(firstLSN)
	s.start.Store(firstLSN)
	s.size.Store(headerBytes)
	s.prealloc = headerBytes
	s.dirty.Store(true)
	return nil
}

// NextLSN returns the LSN the next appended record will receive; every
// LSN below it (and at or above StartLSN) is committed and readable.
func (s *ShipLog) NextLSN() uint64 { return s.next.Load() }

// StartLSN returns the LSN of the oldest record still in the log (equal
// to NextLSN when the log is empty). Reads below it fail: a subscriber
// that far behind must re-seed from a checkpoint.
func (s *ShipLog) StartLSN() uint64 { return s.start.Load() }

// Changed returns a channel that is closed once records are appended
// after this call. The standard tail-follow loop is: read; if nothing
// new, grab Changed(), re-check NextLSN (an append may have raced the
// grab), then select on the channel.
func (s *ShipLog) Changed() <-chan struct{} {
	s.mu.Lock()
	ch := s.notify
	s.mu.Unlock()
	return ch
}

// Append writes one record per key with the given op (vals may be nil,
// meaning zero values — deletes), assigns consecutive LSNs, and
// publishes them to readers before returning. It returns the LSN of
// the first record; the batch occupies [first, first+len(keys)). The
// records are readable immediately but durable only after Fsync.
func (s *ShipLog) Append(op Op, keys, vals []uint64) (uint64, error) {
	if len(keys) == 0 {
		return s.next.Load(), nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	first := s.next.Load()
	buf := s.appendBuf[:0]
	lsn := first
	var lsnb [8]byte
	for i, k := range keys {
		var v uint64
		if vals != nil {
			v = vals[i]
		}
		var rec [recordBytes]byte
		rec[0] = byte(op)
		binary.LittleEndian.PutUint64(rec[1:9], k)
		binary.LittleEndian.PutUint64(rec[9:17], v)
		binary.LittleEndian.PutUint64(lsnb[:], lsn)
		h := crc32.NewIEEE()
		h.Write(rec[:17])
		h.Write(lsnb[:])
		binary.LittleEndian.PutUint32(rec[17:21], h.Sum32())
		buf = append(buf, rec[:]...)
		lsn++
	}
	s.appendBuf = buf
	size := s.size.Load()
	if err := s.reserveShip(size + int64(len(buf))); err != nil {
		return 0, err
	}
	if _, err := s.f.WriteAt(buf, size); err != nil {
		return 0, fmt.Errorf("wal: ship append: %w", err)
	}
	s.dirty.Store(true)
	// Publish: size first (readers gate on it), then the LSN, then wake
	// tail followers by rotating the notification channel.
	s.size.Store(size + int64(len(buf)))
	s.next.Store(lsn)
	close(s.notify)
	s.notify = make(chan struct{})
	return first, nil
}

// reserveShip extends the file in doubling steps ahead of appends, like
// Log.reserve; the zero tail fails record CRCs, so recovery ignores it.
func (s *ShipLog) reserveShip(size int64) error {
	if size <= s.prealloc {
		return nil
	}
	p := s.prealloc
	if p < spillChunk {
		p = spillChunk
	}
	for p < size {
		p *= 2
	}
	if err := s.f.Truncate(p); err != nil {
		return fmt.Errorf("wal: ship preallocate: %w", err)
	}
	s.prealloc = p
	s.dirty.Store(true)
	return nil
}

// Fsync makes previously appended records durable. Safe concurrently
// with Append; a barrier that raced no appends elides the syscall.
func (s *ShipLog) Fsync() error {
	s.fsyncMu.Lock()
	defer s.fsyncMu.Unlock()
	if !s.dirty.Swap(false) {
		return nil
	}
	if err := s.f.Sync(); err != nil {
		s.dirty.Store(true)
		return fmt.Errorf("wal: ship fsync: %w", err)
	}
	return nil
}

// Read fills recs with committed records starting at LSN from,
// returning how many it read — 0 when from is at (or past) the tail.
// Records below the committed size always validate; a CRC failure is
// reported as ErrShipCorrupt.
func (s *ShipLog) Read(from uint64, recs []Record) (int, error) {
	// The read lock pins (start, f) as a consistent pair against
	// TruncateBefore's file swap. next is loaded inside it too: a record
	// below next is fully written before next is published, so offsets
	// computed from (start, next) always land on committed bytes.
	s.readMu.RLock()
	defer s.readMu.RUnlock()
	next := s.next.Load()
	if from >= next || len(recs) == 0 {
		return 0, nil
	}
	first := s.start.Load()
	if from < first {
		return 0, fmt.Errorf("wal: ship read below log start (lsn %d < %d)", from, first)
	}
	avail := int(next - from)
	if avail > len(recs) {
		avail = len(recs)
	}
	off := headerBytes + int64(from-first)*recordBytes
	buf := make([]byte, avail*recordBytes)
	if _, err := io.ReadFull(io.NewSectionReader(s.f, off, int64(len(buf))), buf); err != nil {
		return 0, fmt.Errorf("wal: ship read: %w", err)
	}
	for i := 0; i < avail; i++ {
		rec := buf[i*recordBytes : (i+1)*recordBytes]
		lsn := from + uint64(i)
		if !validate(rec, lsn) {
			return 0, fmt.Errorf("%w at lsn %d", ErrShipCorrupt, lsn)
		}
		recs[i] = Record{
			LSN: lsn,
			Op:  Op(rec[0]),
			Key: binary.LittleEndian.Uint64(rec[1:9]),
			Val: binary.LittleEndian.Uint64(rec[9:17]),
		}
	}
	return avail, nil
}

// TruncateBefore drops every record below lsn, bounding the log's disk
// footprint: the caller asserts those records are covered by a durable
// engine checkpoint, so no subscriber may ever need them again (a
// subscriber reading below the new start gets an error and must re-seed
// from a checkpoint). lsn is clamped to [StartLSN, NextLSN]; a no-op
// call (lsn at or below the current start) is free.
//
// The retained suffix is copied into a temp file with a fresh header
// (firstLSN = lsn), fsynced and renamed over the log, then the open fd
// is swapped under the cursors' read lock — in-flight Reads finish on
// the old fd (still valid data, the rename only unlinks the name) and
// later ones see the new (start, f) pair. Record CRCs mix in the LSN,
// not the file offset, so retained records stay valid at their new
// positions. Lock order: mu (excludes appends), then fsyncMu (excludes
// a racing Fsync syncing a closed fd), then readMu.
func (s *ShipLog) TruncateBefore(lsn uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := s.start.Load()
	next := s.next.Load()
	if lsn <= start {
		return nil
	}
	if lsn > next {
		lsn = next
	}
	retained := s.size.Load() - headerBytes - int64(lsn-start)*recordBytes
	tmpPath := s.path + ".trunc"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: ship truncate open: %w", err)
	}
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], shipMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], version)
	binary.LittleEndian.PutUint64(hdr[8:16], lsn)
	binary.LittleEndian.PutUint32(hdr[16:20], crc32.ChecksumIEEE(hdr[:16]))
	// Write (not WriteAt): the copy below appends at the file offset.
	if _, err := tmp.Write(hdr[:]); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("wal: ship truncate header: %w", err)
	}
	src := io.NewSectionReader(s.f, headerBytes+int64(lsn-start)*recordBytes, retained)
	if _, err := io.Copy(tmp, src); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("wal: ship truncate copy: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("wal: ship truncate sync: %w", err)
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("wal: ship truncate rename: %w", err)
	}
	s.fsyncMu.Lock()
	s.readMu.Lock()
	old := s.f
	s.f = tmp
	s.start.Store(lsn)
	s.size.Store(headerBytes + retained)
	s.prealloc = headerBytes + retained
	s.readMu.Unlock()
	s.fsyncMu.Unlock()
	// A crash between the rename above and the next directory sync may
	// resurrect the old name; recovery then just sees the longer log —
	// same records, earlier start — which is safe. dirty is left as-is:
	// the copied suffix is already synced.
	return old.Close()
}

// Close trims the preallocated tail and closes the file. Readers must
// be stopped first.
func (s *ShipLog) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	size := s.size.Load()
	if s.prealloc > size {
		if err := s.f.Truncate(size); err == nil {
			s.prealloc = size
		}
	}
	return s.f.Close()
}
