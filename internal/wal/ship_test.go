package wal

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestShipAppendRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ship")
	s, err := OpenShip(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.NextLSN(); got != 1 {
		t.Fatalf("fresh NextLSN = %d, want 1", got)
	}
	first, err := s.Append(OpInsert, []uint64{10, 20, 30}, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 {
		t.Fatalf("first = %d, want 1", first)
	}
	if first, err = s.Append(OpDelete, []uint64{20}, nil); err != nil || first != 4 {
		t.Fatalf("second append: first=%d err=%v, want 4, nil", first, err)
	}
	recs := make([]Record, 16)
	n, err := s.Read(1, recs)
	if err != nil || n != 4 {
		t.Fatalf("Read = %d, %v; want 4, nil", n, err)
	}
	want := []Record{
		{LSN: 1, Op: OpInsert, Key: 10, Val: 1},
		{LSN: 2, Op: OpInsert, Key: 20, Val: 2},
		{LSN: 3, Op: OpInsert, Key: 30, Val: 3},
		{LSN: 4, Op: OpDelete, Key: 20, Val: 0},
	}
	for i, w := range want {
		if recs[i] != w {
			t.Fatalf("rec[%d] = %+v, want %+v", i, recs[i], w)
		}
	}
	// Partial read from the middle.
	if n, err = s.Read(3, recs[:1]); err != nil || n != 1 || recs[0].Key != 30 {
		t.Fatalf("mid read = %d (%+v), %v", n, recs[0], err)
	}
	// Reading at the tail returns 0 without blocking.
	if n, _ = s.Read(5, recs); n != 0 {
		t.Fatalf("tail read = %d, want 0", n)
	}
	if err := s.Fsync(); err != nil {
		t.Fatal(err)
	}
}

func TestShipReopenResumes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ship")
	s, err := OpenShip(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(OpUpsert, []uint64{7, 8}, []uint64{70, 80}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// firstLSN is ignored on reopen of a valid log.
	s, err = OpenShip(path, 999)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.NextLSN(); got != 3 {
		t.Fatalf("reopened NextLSN = %d, want 3", got)
	}
	recs := make([]Record, 4)
	n, err := s.Read(1, recs)
	if err != nil || n != 2 || recs[1] != (Record{LSN: 2, Op: OpUpsert, Key: 8, Val: 80}) {
		t.Fatalf("reopened read = %d %+v, %v", n, recs[:n], err)
	}
}

func TestShipTornTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ship")
	s, err := OpenShip(path, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(OpInsert, []uint64{1, 2, 3}, []uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record mid-write.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}
	s, err = OpenShip(path, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.NextLSN(); got != 7 {
		t.Fatalf("NextLSN after torn tail = %d, want 7", got)
	}
	// The log heals: the next append reuses the torn record's LSN.
	if first, err := s.Append(OpInsert, []uint64{9}, []uint64{9}); err != nil || first != 7 {
		t.Fatalf("append after tear: first=%d err=%v, want 7", first, err)
	}
	recs := make([]Record, 4)
	if n, err := s.Read(5, recs); err != nil || n != 3 || recs[2].Key != 9 {
		t.Fatalf("read after heal = %d %+v, %v", n, recs[:n], err)
	}
}

// TestShipTruncateBefore drops a prefix and checks the file shrinks,
// the retained records stay readable at their LSNs, reads below the new
// start fail, and a reopen resumes with the truncated start.
func TestShipTruncateBefore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ship")
	s, err := OpenShip(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	const total = 10000
	for i := 0; i < total; i += 100 {
		keys := make([]uint64, 100)
		vals := make([]uint64, 100)
		for j := range keys {
			keys[j] = uint64(i + j)
			vals[j] = uint64(i+j) * 7
		}
		if _, err := s.Append(OpInsert, keys, vals); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil { // trim prealloc so sizes compare honestly
		t.Fatal(err)
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if s, err = OpenShip(path, 1); err != nil {
		t.Fatal(err)
	}
	const cut = 9001 // keep [9001, 10001)
	if err := s.TruncateBefore(cut); err != nil {
		t.Fatal(err)
	}
	if got := s.StartLSN(); got != cut {
		t.Fatalf("StartLSN = %d, want %d", got, cut)
	}
	if got := s.NextLSN(); got != total+1 {
		t.Fatalf("NextLSN = %d, want %d", got, total+1)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("file did not shrink: %d -> %d bytes", before.Size(), after.Size())
	}
	recs := make([]Record, 32)
	if _, err := s.Read(cut-1, recs); err == nil {
		t.Fatal("read below the truncated start succeeded")
	}
	if n, err := s.Read(cut, recs); err != nil || n == 0 || recs[0] != (Record{LSN: cut, Op: OpInsert, Key: cut - 1, Val: (cut - 1) * 7}) {
		t.Fatalf("read at new start = %d %+v, %v", n, recs[0], err)
	}
	// Idempotent / clamped calls are no-ops.
	if err := s.TruncateBefore(cut - 500); err != nil {
		t.Fatal(err)
	}
	if got := s.StartLSN(); got != cut {
		t.Fatalf("StartLSN moved backwards: %d", got)
	}
	// Appends continue at the same LSN sequence after truncation.
	if first, err := s.Append(OpDelete, []uint64{42}, nil); err != nil || first != total+1 {
		t.Fatalf("append after truncate: first=%d err=%v, want %d", first, err, total+1)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s, err = OpenShip(path, 1); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.StartLSN() != cut || s.NextLSN() != total+2 {
		t.Fatalf("reopen after truncate: start=%d next=%d, want %d, %d",
			s.StartLSN(), s.NextLSN(), cut, total+2)
	}
}

// TestShipTruncateConcurrent races TruncateBefore against an appender
// and a tail reader: the reader must see every record it asks for in
// order (it reads at or ahead of the truncation horizon), and nothing
// may corrupt. Run with -race.
func TestShipTruncateConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ship")
	s, err := OpenShip(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const total = 20000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i += 100 {
			keys := make([]uint64, 100)
			for j := range keys {
				keys[j] = uint64(i + j)
			}
			if _, err := s.Append(OpUpsert, keys, keys); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	stop := make(chan struct{})
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Keep the newest 1000 records.
			if next := s.NextLSN(); next > 1000 {
				if err := s.TruncateBefore(next - 1000); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	cur := uint64(1)
	recs := make([]Record, 64)
	for cur < total+1 {
		// A tail reader tracks the start: after a truncation raced past
		// it, it jumps forward (the chained-subscriber re-seed path).
		if start := s.StartLSN(); cur < start {
			cur = start
		}
		n, err := s.Read(cur, recs)
		if err != nil {
			// The truncation horizon may pass cur between the check and
			// the read; that surfaces as below-start, never as corrupt.
			if errors.Is(err, ErrShipCorrupt) {
				t.Fatal(err)
			}
			continue
		}
		if n == 0 {
			ch := s.Changed()
			if s.NextLSN() > cur {
				continue
			}
			<-ch
			continue
		}
		for i := 0; i < n; i++ {
			if recs[i].LSN != cur+uint64(i) || recs[i].Key != cur+uint64(i)-1 {
				t.Fatalf("wrong record %+v at cursor %d", recs[i], cur)
			}
		}
		cur += uint64(n)
	}
	close(stop)
	wg.Wait()
}

// TestShipConcurrentTailFollow races one appender against a tail
// follower using the Changed() notification protocol and checks the
// follower sees every record exactly once, in order.
func TestShipConcurrentTailFollow(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ship")
	s, err := OpenShip(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const total = 5000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i += 50 {
			keys := make([]uint64, 0, 50)
			vals := make([]uint64, 0, 50)
			for j := i; j < i+50 && j < total; j++ {
				keys = append(keys, uint64(j))
				vals = append(vals, uint64(j)*3)
			}
			if _, err := s.Append(OpInsert, keys, vals); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	cur := uint64(1)
	recs := make([]Record, 64)
	for cur < total+1 {
		n, err := s.Read(cur, recs)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			ch := s.Changed()
			if s.NextLSN() > cur {
				continue // an append raced the channel grab
			}
			<-ch
			continue
		}
		for i := 0; i < n; i++ {
			if recs[i].LSN != cur+uint64(i) || recs[i].Key != cur+uint64(i)-1 {
				t.Fatalf("out-of-order record %+v at cursor %d", recs[i], cur)
			}
		}
		cur += uint64(n)
	}
	wg.Wait()
}
