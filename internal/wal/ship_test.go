package wal

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestShipAppendRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ship")
	s, err := OpenShip(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.NextLSN(); got != 1 {
		t.Fatalf("fresh NextLSN = %d, want 1", got)
	}
	first, err := s.Append(OpInsert, []uint64{10, 20, 30}, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 {
		t.Fatalf("first = %d, want 1", first)
	}
	if first, err = s.Append(OpDelete, []uint64{20}, nil); err != nil || first != 4 {
		t.Fatalf("second append: first=%d err=%v, want 4, nil", first, err)
	}
	recs := make([]Record, 16)
	n, err := s.Read(1, recs)
	if err != nil || n != 4 {
		t.Fatalf("Read = %d, %v; want 4, nil", n, err)
	}
	want := []Record{
		{LSN: 1, Op: OpInsert, Key: 10, Val: 1},
		{LSN: 2, Op: OpInsert, Key: 20, Val: 2},
		{LSN: 3, Op: OpInsert, Key: 30, Val: 3},
		{LSN: 4, Op: OpDelete, Key: 20, Val: 0},
	}
	for i, w := range want {
		if recs[i] != w {
			t.Fatalf("rec[%d] = %+v, want %+v", i, recs[i], w)
		}
	}
	// Partial read from the middle.
	if n, err = s.Read(3, recs[:1]); err != nil || n != 1 || recs[0].Key != 30 {
		t.Fatalf("mid read = %d (%+v), %v", n, recs[0], err)
	}
	// Reading at the tail returns 0 without blocking.
	if n, _ = s.Read(5, recs); n != 0 {
		t.Fatalf("tail read = %d, want 0", n)
	}
	if err := s.Fsync(); err != nil {
		t.Fatal(err)
	}
}

func TestShipReopenResumes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ship")
	s, err := OpenShip(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(OpUpsert, []uint64{7, 8}, []uint64{70, 80}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// firstLSN is ignored on reopen of a valid log.
	s, err = OpenShip(path, 999)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.NextLSN(); got != 3 {
		t.Fatalf("reopened NextLSN = %d, want 3", got)
	}
	recs := make([]Record, 4)
	n, err := s.Read(1, recs)
	if err != nil || n != 2 || recs[1] != (Record{LSN: 2, Op: OpUpsert, Key: 8, Val: 80}) {
		t.Fatalf("reopened read = %d %+v, %v", n, recs[:n], err)
	}
}

func TestShipTornTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ship")
	s, err := OpenShip(path, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(OpInsert, []uint64{1, 2, 3}, []uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record mid-write.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}
	s, err = OpenShip(path, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.NextLSN(); got != 7 {
		t.Fatalf("NextLSN after torn tail = %d, want 7", got)
	}
	// The log heals: the next append reuses the torn record's LSN.
	if first, err := s.Append(OpInsert, []uint64{9}, []uint64{9}); err != nil || first != 7 {
		t.Fatalf("append after tear: first=%d err=%v, want 7", first, err)
	}
	recs := make([]Record, 4)
	if n, err := s.Read(5, recs); err != nil || n != 3 || recs[2].Key != 9 {
		t.Fatalf("read after heal = %d %+v, %v", n, recs[:n], err)
	}
}

// TestShipConcurrentTailFollow races one appender against a tail
// follower using the Changed() notification protocol and checks the
// follower sees every record exactly once, in order.
func TestShipConcurrentTailFollow(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ship")
	s, err := OpenShip(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const total = 5000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i += 50 {
			keys := make([]uint64, 0, 50)
			vals := make([]uint64, 0, 50)
			for j := i; j < i+50 && j < total; j++ {
				keys = append(keys, uint64(j))
				vals = append(vals, uint64(j)*3)
			}
			if _, err := s.Append(OpInsert, keys, vals); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	cur := uint64(1)
	recs := make([]Record, 64)
	for cur < total+1 {
		n, err := s.Read(cur, recs)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			ch := s.Changed()
			if s.NextLSN() > cur {
				continue // an append raced the channel grab
			}
			<-ch
			continue
		}
		for i := 0; i < n; i++ {
			if recs[i].LSN != cur+uint64(i) || recs[i].Key != cur+uint64(i)-1 {
				t.Fatalf("out-of-order record %+v at cursor %d", recs[i], cur)
			}
		}
		cur += uint64(n)
	}
	wg.Wait()
}
