// Package wal implements the per-table write-ahead log of the
// durability subsystem: a flat file of logical operation records
// (insert/upsert/delete with key and value) appended before the table's
// buffer absorbs each operation, fsynced at every Flush barrier, and
// truncated once a checkpoint has made the logged state durable.
//
// Recovery contract (see DESIGN.md, "Durability & recovery"): on open
// the log is scanned, each record validated by its CRC, and the valid
// prefix returned for replay. Records carry log sequence numbers (LSNs)
// so a replayer can skip operations a checkpoint already contains — the
// window between a checkpoint commit and the log truncation that
// follows it. A torn append (a crash mid-record) fails the CRC of the
// final record and cleanly ends the scan: a half-written operation is
// never replayed, so no operation half-applies.
//
// On-disk format, all little-endian:
//
//	header  [4 magic "EXWL"] [4 version] [8 firstLSN] [4 crc32(prev 16)]
//	record  [1 op] [8 key] [8 val] [4 crc32(op|key|val|lsn)]
//
// The LSN of record i is firstLSN + i; including it in the record CRC
// (without storing it) ties each record to its position, so stale bytes
// from a previous log generation can never validate.
//
// # Direct I/O
//
// Under the kernel-bypass tier (OpenIO with an odirect/uring mode) the
// log fd is O_DIRECT, so every spill must start and end on a sector
// boundary. The on-disk format does not change: a spill rewrites the
// partial tail sector — the bytes past the last sector boundary, kept
// in memory — together with the new records, zero-padded to a sector
// multiple. Recovery reads through a separate buffered fd (O_DIRECT
// constrains this fd's reads, and the scan is unaligned by nature) and
// reloads the tail bytes so appends can resume. Zero padding fails
// every record CRC, so a pad tail is indistinguishable from
// preallocated extent and the next spill simply overwrites it. The
// rewrite assumes sector writes are atomic (the standard WAL
// assumption); a torn tail sector can lose at most records that were
// never fsync-acknowledged. Crash-injected logs always stay buffered —
// the crash matrix counts write syscalls, and the tail rewrite would
// change the count.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"extbuf/internal/iomodel"
)

// Op is a logged logical operation.
type Op uint8

// Logged operation kinds. OpExpire reuses the record frame with the
// value field carrying the expiry deadline (unix milliseconds); it sets
// a key's TTL without changing its value.
const (
	OpInsert Op = 1
	OpUpsert Op = 2
	OpDelete Op = 3
	OpExpire Op = 4
)

// Record is one recovered log entry.
type Record struct {
	LSN      uint64
	Op       Op
	Key, Val uint64
}

const (
	magic       = 0x4c575845 // "EXWL"
	version     = 1
	headerBytes = 20
	recordBytes = 21
)

// spillChunk is the append buffer's spill granularity: once the buffer
// holds at least this much, whole multiples of it are written to the
// file in one WriteAt. 64 KiB batches ~3120 records per syscall (the
// old 4096-byte threshold issued one small pwrite per ~195 records
// under batch load) and matches the write sizes storage stacks like.
const spillChunk = 64 << 10

// errCorruptHeader marks an existing log file whose header fails
// validation. Within the crash model this only happens when a crash
// tore the header write itself, and the protocol writes headers only at
// points with zero live records (fresh creation, post-checkpoint
// truncation) — so Open heals the log by resetting it rather than
// failing recovery.
var errCorruptHeader = errors.New("wal: corrupt log header")

// Log is an open write-ahead log. Appends are buffered in memory;
// Sync flushes and fsyncs them — an operation is durable only after
// the Sync that follows its Append returns nil. Not safe for concurrent
// use; the owning table serializes access.
type Log struct {
	f        iomodel.BlockFile
	buf      []byte
	next     uint64 // LSN of the next append
	size     int64  // bytes written to the file (header + records)
	prealloc int64  // file extent reserved ahead of size via Truncate
	syncs    int64  // fsyncs issued (Fsync/Sync)
	elided   int64  // barrier fsyncs skipped: nothing written since the last
	spills   int64  // spill WriteAt syscalls issued
	dirty    bool   // bytes written (spill/truncate/header) since the last fsync
	failed   error  // sticky first write failure
	fsBlock  int64  // preallocation granularity: the filesystem block size
	sector   int64  // >0: O_DIRECT fd, spills rewrite the tail sector
	tail     []byte // direct mode: logical bytes past the last sector boundary
	dbuf     []byte // direct mode: reusable aligned spill buffer
}

// Open opens (creating if absent) the log at path, scanning any
// existing records. It returns the log positioned to append after the
// valid prefix, and that prefix for replay. A non-nil crasher
// interposes fault injection on the file. A torn trailing record is
// discarded, and a missing or torn header resets the log to start at
// firstLSN — the LSN after the owning checkpoint's last absorbed
// operation, so healed logs stay aligned with the LSN filter.
func Open(path string, crasher *iomodel.Crasher, firstLSN uint64) (*Log, []Record, error) {
	return OpenIO(path, crasher, firstLSN, iomodel.IOOptions{})
}

// OpenIO is Open with an I/O mode: under the direct modes (and no
// crasher — fault injection counts syscalls, so it pins the buffered
// path) the log fd is opened O_DIRECT and spills use the tail-sector
// rewrite described in the package comment. Where the filesystem
// refuses O_DIRECT the log falls back to buffered syscalls, reported
// by Direct().
func OpenIO(path string, crasher *iomodel.Crasher, firstLSN uint64, opt iomodel.IOOptions) (*Log, []Record, error) {
	wantDirect := iomodel.DirectLayout(opt.Mode) && crasher == nil
	f, direct, err := iomodel.OpenDirectFile(path, os.O_RDWR|os.O_CREATE, wantDirect)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open: %w", err)
	}
	var bf iomodel.BlockFile = f
	if crasher != nil {
		bf = crasher.WrapFile(bf)
	}
	l := &Log{f: bf, fsBlock: int64(iomodel.FsBlockSize(path))}
	if direct {
		if opt.Sector > 0 {
			l.sector = int64(opt.Sector)
		} else {
			l.sector = int64(iomodel.FsSectorSize(path))
		}
	}
	recs, err := l.recover(firstLSN)
	if errors.Is(err, errCorruptHeader) {
		// A header torn by a crash: the protocol guarantees no live
		// records behind it (headers are only written into empty logs).
		recs, err = nil, l.reset(firstLSN)
	}
	if err != nil {
		bf.Close()
		return nil, nil, err
	}
	return l, recs, nil
}

// recover scans the file: parse the header (writing a fresh one into an
// empty file), then validate records until the first CRC failure or
// short read. An O_DIRECT log scans through a short-lived buffered fd —
// the record walk is unaligned by nature — and reloads the partial tail
// sector into memory so appends can resume with the rewrite protocol.
func (l *Log) recover(firstLSN uint64) ([]Record, error) {
	var r io.ReaderAt = l.f
	if l.sector > 0 {
		sf, err := os.Open(l.f.Name())
		if err != nil {
			return nil, fmt.Errorf("wal: open recovery fd: %w", err)
		}
		defer sf.Close()
		r = sf
	}
	var hdr [headerBytes]byte
	n, err := r.ReadAt(hdr[:], 0)
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("wal: read header: %w", err)
	}
	if n == 0 {
		// Fresh log: write a header continuing the checkpoint's LSNs.
		return nil, l.reset(firstLSN)
	}
	if n < headerBytes ||
		binary.LittleEndian.Uint32(hdr[0:4]) != magic ||
		binary.LittleEndian.Uint32(hdr[4:8]) != version ||
		binary.LittleEndian.Uint32(hdr[16:20]) != crc32.ChecksumIEEE(hdr[:16]) {
		return nil, fmt.Errorf("%w: %q", errCorruptHeader, l.f.Name())
	}
	first := binary.LittleEndian.Uint64(hdr[8:16])
	l.next = first
	l.size = headerBytes
	var recs []Record
	var rec [recordBytes]byte
	for off := int64(headerBytes); ; off += recordBytes {
		n, err := r.ReadAt(rec[:], off)
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("wal: read record: %w", err)
		}
		if n < recordBytes {
			break // clean end, or a torn tail below record size
		}
		if !validate(rec[:], l.next) {
			break // torn or stale record: drop it and everything after
		}
		recs = append(recs, Record{
			LSN: l.next,
			Op:  Op(rec[0]),
			Key: binary.LittleEndian.Uint64(rec[1:9]),
			Val: binary.LittleEndian.Uint64(rec[9:17]),
		})
		l.next++
		l.size += recordBytes
	}
	// The physical file may extend past the valid prefix — a
	// preallocated zero tail left by a crash. Record the real extent so
	// Close's trim (and reserve's doubling) see the true file size.
	l.prealloc = l.size
	if info, err := os.Stat(l.f.Name()); err == nil && info.Size() > l.prealloc {
		l.prealloc = info.Size()
	}
	if l.sector > 0 {
		// Reload the partial tail sector: the next spill rewrites these
		// bytes together with the new records.
		off := l.size &^ (l.sector - 1)
		l.tail = l.tail[:0]
		if rem := l.size - off; rem > 0 {
			t := make([]byte, rem)
			if _, err := r.ReadAt(t, off); err != nil {
				return nil, fmt.Errorf("wal: read tail sector: %w", err)
			}
			l.tail = t
		}
	}
	return recs, nil
}

// validate checks a record's CRC against its position LSN.
func validate(rec []byte, lsn uint64) bool {
	var lsnb [8]byte
	binary.LittleEndian.PutUint64(lsnb[:], lsn)
	h := crc32.NewIEEE()
	h.Write(rec[:17])
	h.Write(lsnb[:])
	return binary.LittleEndian.Uint32(rec[17:21]) == h.Sum32()
}

// NextLSN returns the LSN the next Append will receive.
func (l *Log) NextLSN() uint64 { return l.next }

// Append logs one operation and returns its LSN. The record is
// buffered; it is durable only after the next successful Sync. The
// buffer is spilled to the file before the new record is added — never
// after — so the newest record is always still in memory and Rollback
// can retract it.
func (l *Log) Append(op Op, key, val uint64) (uint64, error) {
	if l.failed != nil {
		return 0, l.failed
	}
	// Bound the append buffer: spill whole 64 KiB chunks to the file
	// (without fsync) before admitting the next record. Partial spills
	// are safe — each record carries its own CRC, so a crash tears at
	// most the last record — and spilling before the append (never
	// after) keeps the newest record in memory for Rollback.
	if len(l.buf) >= spillChunk {
		if err := l.spillN(len(l.buf) / spillChunk * spillChunk); err != nil {
			return 0, err
		}
	}
	lsn := l.next
	var rec [recordBytes]byte
	rec[0] = byte(op)
	binary.LittleEndian.PutUint64(rec[1:9], key)
	binary.LittleEndian.PutUint64(rec[9:17], val)
	var lsnb [8]byte
	binary.LittleEndian.PutUint64(lsnb[:], lsn)
	h := crc32.NewIEEE()
	h.Write(rec[:17])
	h.Write(lsnb[:])
	binary.LittleEndian.PutUint32(rec[17:21], h.Sum32())
	l.buf = append(l.buf, rec[:]...)
	l.next++
	return lsn, nil
}

// Rollback retracts the most recently appended record, which Append
// guarantees is still buffered. The write-ahead discipline logs before
// applying; when the apply fails and the caller is told so, the record
// must not survive to be replayed as if the operation had happened.
func (l *Log) Rollback() {
	if len(l.buf) >= recordBytes {
		l.buf = l.buf[:len(l.buf)-recordBytes]
		l.next--
	}
}

// spill writes all buffered records at the end of the file without
// fsyncing them.
func (l *Log) spill() error { return l.spillN(len(l.buf)) }

// spillN writes the first n buffered bytes at the end of the file
// without fsyncing, preallocating file extent ahead of the write (in
// doubling steps, so a growing log pays O(log size) truncates instead
// of one implicit size extension per spill).
func (l *Log) spillN(n int) error {
	if l.failed != nil {
		return l.failed
	}
	if n == 0 {
		return nil
	}
	if l.sector > 0 {
		return l.spillDirect(n)
	}
	if err := l.reserve(l.size + int64(n)); err != nil {
		return err
	}
	wn, err := l.f.WriteAt(l.buf[:n], l.size)
	l.size += int64(wn)
	l.spills++
	l.dirty = true
	if err != nil {
		l.failed = fmt.Errorf("wal: append: %w", err)
		return l.failed
	}
	l.buf = append(l.buf[:0], l.buf[n:]...)
	return nil
}

// spillDirect writes the first n buffered bytes with one sector-aligned
// WriteAt: the write starts at the last sector boundary at or below the
// logical size (rewriting the tail bytes already on disk with identical
// content), covers the new records, and is zero-padded up to the next
// sector boundary. See the package comment for the crash-safety
// argument.
func (l *Log) spillDirect(n int) error {
	writeOff := l.size &^ (l.sector - 1)
	prefix := int(l.size - writeOff) // == len(l.tail)
	total := prefix + n
	padded := int(alignUp(int64(total), l.sector))
	if err := l.reserve(writeOff + int64(padded)); err != nil {
		return err
	}
	if cap(l.dbuf) < padded {
		l.dbuf = iomodel.AlignedBuf(padded, int(l.sector))
	}
	buf := l.dbuf[:padded]
	copy(buf, l.tail)
	copy(buf[prefix:], l.buf[:n])
	clear(buf[total:])
	wn, err := l.f.WriteAt(buf, writeOff)
	l.spills++
	l.dirty = true
	if err == nil && wn < padded {
		err = io.ErrShortWrite
	}
	if err != nil {
		l.failed = fmt.Errorf("wal: append: %w", err)
		return l.failed
	}
	l.size += int64(n)
	newOff := l.size &^ (l.sector - 1)
	l.tail = append(l.tail[:0], buf[newOff-writeOff:total]...)
	l.buf = append(l.buf[:0], l.buf[n:]...)
	return nil
}

// alignUp rounds n up to the next multiple of align (a power of two).
func alignUp(n, align int64) int64 {
	return (n + align - 1) &^ (align - 1)
}

// reserve extends the file to at least size bytes ahead of the writes
// that need it. The reserved tail is zeros, which fail every record
// CRC, so recovery cleanly ignores it. The preallocated extent is
// rounded up to the filesystem block size (and the direct-mode
// sector): the doubling start point comes from recovered file sizes,
// which end mid-block, and an unrounded Truncate there makes every
// later extension repay the partial-block tail.
func (l *Log) reserve(size int64) error {
	if size <= l.prealloc {
		return nil
	}
	p := l.prealloc
	if p < spillChunk {
		p = spillChunk
	}
	for p < size {
		p *= 2
	}
	if gran := max(l.fsBlock, l.sector); gran > 0 {
		p = alignUp(p, gran)
	}
	if err := l.f.Truncate(p); err != nil {
		l.failed = fmt.Errorf("wal: preallocate: %w", err)
		return l.failed
	}
	l.prealloc = p
	l.dirty = true
	return nil
}

// Spill writes every buffered record to the file without fsyncing:
// the first half of the commit protocol, separated from Fsync so a
// group committer can overlap the fsync with other files'.
func (l *Log) Spill() error { return l.spill() }

// Fsync makes previously spilled records durable. It does not spill;
// pair it with Spill (or use Sync for both). A barrier that wrote
// nothing since the last fsync elides the syscall — one fsync per fd
// per group-commit round — counting the elision in FsyncsElided.
func (l *Log) Fsync() error {
	if l.failed != nil {
		return l.failed
	}
	if !l.dirty {
		l.elided++
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.syncs++
	l.dirty = false
	return nil
}

// Sync makes every appended record durable: spill the buffer and fsync.
func (l *Log) Sync() error {
	if err := l.spill(); err != nil {
		return err
	}
	return l.Fsync()
}

// Fsyncs returns the number of fsyncs issued, and Spills the number of
// spill writes — the real-cost counters experiments report next to the
// paper's I/O counts.
func (l *Log) Fsyncs() int64 { return l.syncs }

// FsyncsElided returns the number of barrier fsyncs skipped because
// nothing had been written since the previous fsync.
func (l *Log) FsyncsElided() int64 { return l.elided }

// Spills returns the number of spill WriteAt syscalls issued.
func (l *Log) Spills() int64 { return l.spills }

// Reset truncates the log after a checkpoint commit: all records are
// discarded and the next append receives firstLSN. The truncation is
// not fsynced — if a crash resurrects the old records, every one of
// them carries an LSN at or below the new checkpoint's and is skipped
// by the replay filter; the next Sync barrier makes the reset durable.
func (l *Log) Reset(firstLSN uint64) error {
	if l.failed != nil {
		return l.failed
	}
	l.buf = l.buf[:0]
	// An empty log already at firstLSN is byte-identical to the reset
	// result: skip the truncate + header rewrite so an idle checkpoint
	// stays clean and its barrier fsync can be elided.
	if l.next == firstLSN && l.size == headerBytes {
		return nil
	}
	return l.reset(firstLSN)
}

func (l *Log) reset(firstLSN uint64) error {
	if err := l.f.Truncate(0); err != nil {
		l.failed = fmt.Errorf("wal: truncate: %w", err)
		return l.failed
	}
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	binary.LittleEndian.PutUint32(hdr[4:8], version)
	binary.LittleEndian.PutUint64(hdr[8:16], firstLSN)
	binary.LittleEndian.PutUint32(hdr[16:20], crc32.ChecksumIEEE(hdr[:16]))
	if l.sector > 0 {
		// Direct fd: pad the header write to one sector and keep its
		// bytes as the in-memory tail for the next spill's rewrite.
		if cap(l.dbuf) < int(l.sector) {
			l.dbuf = iomodel.AlignedBuf(int(l.sector), int(l.sector))
		}
		buf := l.dbuf[:l.sector]
		copy(buf, hdr[:])
		clear(buf[headerBytes:])
		if _, err := l.f.WriteAt(buf, 0); err != nil {
			l.failed = fmt.Errorf("wal: write header: %w", err)
			return l.failed
		}
		l.tail = append(l.tail[:0], hdr[:]...)
		l.prealloc = l.sector
	} else {
		if _, err := l.f.WriteAt(hdr[:], 0); err != nil {
			l.failed = fmt.Errorf("wal: write header: %w", err)
			return l.failed
		}
		l.prealloc = headerBytes
	}
	l.next = firstLSN
	l.size = headerBytes
	l.dirty = true
	return nil
}

// Direct reports whether the log fd is O_DIRECT — false when OpenIO
// was asked for a direct mode but the filesystem refused the flag (the
// buffered fallback) or a crasher pinned the buffered path.
func (l *Log) Direct() bool { return l.sector > 0 }

// SectorSize returns the direct-mode spill alignment, 0 when buffered.
func (l *Log) SectorSize() int { return int(l.sector) }

// Close flushes buffered records (without fsync), trims the
// preallocated tail so the file ends at its last record, and closes
// the file.
func (l *Log) Close() error {
	err := l.spill()
	if err == nil && l.prealloc > l.size {
		if terr := l.f.Truncate(l.size); terr == nil {
			l.prealloc = l.size
		}
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}
