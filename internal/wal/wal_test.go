package wal

import (
	"os"
	"path/filepath"
	"testing"

	"extbuf/internal/iomodel"
)

func openFresh(t *testing.T) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.wal")
	l, recs, err := Open(path, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log recovered %d records", len(recs))
	}
	return l, path
}

func TestAppendSyncRecover(t *testing.T) {
	l, path := openFresh(t)
	for i := uint64(0); i < 300; i++ {
		op := OpUpsert
		if i%3 == 0 {
			op = OpDelete
		}
		lsn, err := l.Append(op, i, i*2)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != i+1 {
			t.Fatalf("lsn = %d, want %d", lsn, i+1)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, recs, err := Open(path, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recs) != 300 {
		t.Fatalf("recovered %d records, want 300", len(recs))
	}
	for i, r := range recs {
		wantOp := OpUpsert
		if i%3 == 0 {
			wantOp = OpDelete
		}
		if r.LSN != uint64(i+1) || r.Op != wantOp || r.Key != uint64(i) || r.Val != uint64(i)*2 {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	if l2.NextLSN() != 301 {
		t.Fatalf("NextLSN = %d, want 301", l2.NextLSN())
	}
}

func TestTornTailDropped(t *testing.T) {
	l, path := openFresh(t)
	for i := uint64(0); i < 10; i++ {
		if _, err := l.Append(OpInsert, i, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the final record mid-way.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-7); err != nil {
		t.Fatal(err)
	}
	l2, recs, err := Open(path, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recs) != 9 {
		t.Fatalf("recovered %d records after torn tail, want 9", len(recs))
	}
	// New appends continue where the valid prefix ended.
	if l2.NextLSN() != 10 {
		t.Fatalf("NextLSN = %d, want 10", l2.NextLSN())
	}
}

func TestCorruptHeaderHeals(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	if err := os.WriteFile(path, []byte{0x13, 0x37}, 0o644); err != nil {
		t.Fatal(err)
	}
	l, recs, err := Open(path, nil, 42)
	if err != nil {
		t.Fatalf("torn header should heal, got %v", err)
	}
	defer l.Close()
	if len(recs) != 0 {
		t.Fatalf("healed log returned %d records", len(recs))
	}
	if l.NextLSN() != 42 {
		t.Fatalf("healed log NextLSN = %d, want the caller's 42", l.NextLSN())
	}
}

func TestResetDiscardsAndRenumbers(t *testing.T) {
	l, path := openFresh(t)
	for i := uint64(0); i < 5; i++ {
		if _, err := l.Append(OpUpsert, i, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Reset(6); err != nil {
		t.Fatal(err)
	}
	if lsn, err := l.Append(OpUpsert, 100, 200); err != nil || lsn != 6 {
		t.Fatalf("post-reset append lsn = %d err = %v, want 6", lsn, err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, recs, err := Open(path, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recs) != 1 || recs[0].LSN != 6 || recs[0].Key != 100 {
		t.Fatalf("post-reset recovery = %+v, want one record at LSN 6", recs)
	}
}

func TestCrasherStopsAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crash.wal")
	cr := iomodel.NewCrasher(iomodel.CrashPlan{FailAfterWrites: 2, TornWrite: true, Seed: 5})
	l, _, err := Open(path, cr, 1) // write 1: the header
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Buffered appends succeed until a spill hits the crash point.
	sawError := false
	for i := uint64(0); i < 1000; i++ {
		if _, err := l.Append(OpUpsert, i, i); err != nil {
			sawError = true
			break
		}
	}
	if !sawError {
		if err := l.Sync(); err == nil {
			t.Fatal("crashed log acknowledged a sync")
		}
	}
	if !cr.Crashed() {
		t.Fatal("crash point never reached")
	}
	// Recovery sees only a CRC-valid prefix.
	l2, recs, err := Open(path, nil, 1)
	if err != nil {
		t.Fatalf("recovery after torn append: %v", err)
	}
	defer l2.Close()
	for i, r := range recs {
		if r.LSN != uint64(i+1) || r.Key != uint64(i) {
			t.Fatalf("replay record %d inconsistent: %+v", i, r)
		}
	}
}
