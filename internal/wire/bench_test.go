package wire

import (
	"bytes"
	"testing"
)

// The protocol encode/decode benchmarks feed the CI benchdiff gate
// alongside the engine benchmarks: a regression in framing cost is a
// regression in every byte the server moves.

func BenchmarkWireEncodeKV(b *testing.B) {
	keys := make([]uint64, 256)
	vals := make([]uint64, 256)
	for i := range keys {
		keys[i] = uint64(i) * 0x9e3779b97f4a7c15
		vals[i] = uint64(i)
	}
	var payload, frame []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload = AppendKV(payload[:0], keys, vals)
		frame = AppendFrame(frame[:0], OpInsert, uint32(i), payload)
	}
	b.SetBytes(int64(len(frame)))
}

func BenchmarkWireDecodeKV(b *testing.B) {
	keys := make([]uint64, 256)
	vals := make([]uint64, 256)
	for i := range keys {
		keys[i] = uint64(i) * 0x9e3779b97f4a7c15
		vals[i] = uint64(i)
	}
	frame := AppendFrame(nil, OpInsert, 1, AppendKV(nil, keys, vals))
	rd := bytes.NewReader(frame)
	r := NewReader(rd)
	kbuf := make([]uint64, 0, 256)
	vbuf := make([]uint64, 0, 256)
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(frame)
		f, err := r.Next()
		if err != nil {
			b.Fatal(err)
		}
		var derr error
		kbuf, vbuf, derr = DecodeKVInto(f.Payload, kbuf[:0], vbuf[:0])
		if derr != nil {
			b.Fatal(derr)
		}
	}
	_ = vbuf
}
