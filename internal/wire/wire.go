// Package wire defines the serving layer's binary protocol: the framed,
// CRC-checked messages hashserved and its clients exchange over TCP
// (see DESIGN.md, "Serving layer").
//
// The format follows the repository's durability codec conventions
// (package ckpt): little-endian fixed-width words, length-prefixed
// sequences, no compression, no reflection. Every message is one frame:
//
//	frame   [4 magic "EXWF"] [1 version] [1 op] [2 reserved=0]
//	        [4 id] [4 payload length n] [n payload] [4 crc]
//
// with crc = CRC-32 (IEEE) over the 16-byte header plus the payload, so
// a torn or bit-flipped frame is detected before any of it is
// interpreted. The id is an opaque request identifier: responses echo
// the id of the request they answer, which is what lets a client
// pipeline many requests down one connection and match the (in-order)
// responses coming back.
//
// Request payload grammar (count is uint32, keys/values uint64):
//
//	INSERT, UPSERT   count, then count x (key, val)
//	LOOKUP, DELETE   count, then count x key
//	LEN, SYNC, FLUSH, STATS, PING   empty
//	REPL_SUBSCRIBE   from LSN (uint64)
//	REPL_ACK         received LSN (uint64); no response — flows
//	                 follower -> primary on a subscribed connection
//	LOOKUPAT         min LSN (uint64), count, count x key
//	INSERTAT, UPSERTAT   count, then count x (key, val)
//	DELETEAT         count, then count x key
//	INFO, PROMOTE    empty
//
// Response payload grammar:
//
//	ACK     empty (mutation applied and WAL-durable; also answers
//	        SYNC, FLUSH and PING)
//	VALUES  count, then count x (val, found byte)     answers LOOKUP
//	        and LOOKUPAT
//	FOUNDS  count, then count x found byte            answers DELETE
//	COUNT   one uint64                                answers LEN
//	STATS   field count, then that many int64s in the
//	        order documented on the Stats struct      answers STATS
//	ERR     UTF-8 error text (whole payload)
//	REPLBATCH  epoch, first LSN, count, count x (op byte, key, val);
//	           a stream of these answers REPL_SUBSCRIBE (all echoing
//	           its id); count 0 is a liveness heartbeat
//	ACKT    LSN, epoch                 answers INSERTAT and UPSERTAT
//	FOUNDST LSN, epoch, count, count x found byte     answers DELETEAT
//	INFOR   epoch, applied LSN, writable byte, role byte
//	                                  answers INFO and PROMOTE
//
// Batches are bounded: a frame whose payload exceeds MaxPayload, or a
// count prefix above MaxBatch (or beyond the payload that carries it),
// is rejected during decode with ErrTooLarge — a reader never allocates
// in proportion to an attacker-chosen length.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"extbuf"
)

// Op discriminates frame types. Requests and responses share the space;
// responses start at OpAck.
type Op uint8

// Request opcodes.
const (
	OpInsert Op = 1 // payload: count, count x (key, val)
	OpUpsert Op = 2 // payload: count, count x (key, val)
	OpLookup Op = 3 // payload: count, count x key
	OpDelete Op = 4 // payload: count, count x key
	OpLen    Op = 5 // empty
	OpSync   Op = 6 // empty: WAL acknowledgement barrier
	OpFlush  Op = 7 // empty: full checkpoint barrier
	OpStats  Op = 8 // empty
	OpPing   Op = 9 // empty

	// Replication and token-carrying requests (PR 7). Opcodes 10-15
	// fill the remaining request space below OpAck; further requests
	// continue at 32.
	OpReplSubscribe Op = 10 // from LSN: stream the op log from here
	OpReplAck       Op = 11 // received LSN: follower progress, no response
	OpLookupAt      Op = 12 // min LSN, then a key batch
	OpInsertAt      Op = 13 // key/value batch; answered by ACKT
	OpUpsertAt      Op = 14 // key/value batch; answered by ACKT
	OpDeleteAt      Op = 15 // key batch; answered by FOUNDST
	OpInfo          Op = 32 // empty; answered by INFOR
	OpPromote       Op = 33 // empty; answered by INFOR after promotion

	// TTL / CAS / scan requests (PR 10).
	OpExpire    Op = 34 // count, count x (key, deadline ms); answered by FOUNDST
	OpUpsertTTL Op = 35 // count, count x (key, val, deadline ms); answered by ACKT
	OpCAS       Op = 36 // count, count x (key, old, new); answered by FOUNDST
	OpScan      Op = 37 // cursor, max count; answered by SCANR
)

// Response opcodes.
const (
	OpAck    Op = 16 // empty
	OpValues Op = 17 // count, count x (val, found byte)
	OpFounds Op = 18 // count, count x found byte
	OpCount  Op = 19 // one uint64
	OpStatsR Op = 20 // field count, count x int64
	OpErr    Op = 21 // UTF-8 error text

	// Replication and token-carrying responses (PR 7).
	OpReplBatch Op = 22 // epoch, first LSN, count, count x (op, key, val)
	OpAckT      Op = 23 // LSN, epoch
	OpFoundsT   Op = 24 // LSN, epoch, count, count x found byte
	OpInfoR     Op = 25 // epoch, applied LSN, writable byte, role byte
	OpScanR     Op = 26 // next cursor, count, count x (key, val)
)

// String names the opcode for logs and errors.
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "INSERT"
	case OpUpsert:
		return "UPSERT"
	case OpLookup:
		return "LOOKUP"
	case OpDelete:
		return "DELETE"
	case OpLen:
		return "LEN"
	case OpSync:
		return "SYNC"
	case OpFlush:
		return "FLUSH"
	case OpStats:
		return "STATS"
	case OpPing:
		return "PING"
	case OpReplSubscribe:
		return "REPL_SUBSCRIBE"
	case OpReplAck:
		return "REPL_ACK"
	case OpLookupAt:
		return "LOOKUPAT"
	case OpInsertAt:
		return "INSERTAT"
	case OpUpsertAt:
		return "UPSERTAT"
	case OpDeleteAt:
		return "DELETEAT"
	case OpInfo:
		return "INFO"
	case OpPromote:
		return "PROMOTE"
	case OpExpire:
		return "EXPIRE"
	case OpUpsertTTL:
		return "UPSERTTTL"
	case OpCAS:
		return "CAS"
	case OpScan:
		return "SCAN"
	case OpAck:
		return "ACK"
	case OpValues:
		return "VALUES"
	case OpFounds:
		return "FOUNDS"
	case OpCount:
		return "COUNT"
	case OpStatsR:
		return "STATSR"
	case OpErr:
		return "ERR"
	case OpReplBatch:
		return "REPLBATCH"
	case OpAckT:
		return "ACKT"
	case OpFoundsT:
		return "FOUNDST"
	case OpInfoR:
		return "INFOR"
	case OpScanR:
		return "SCANR"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

const (
	// Version is the protocol version carried by every frame. A reader
	// rejects frames of any other version.
	Version = 1

	magic = 0x46575845 // "EXWF", little-endian

	// HeaderBytes is the fixed frame header size.
	HeaderBytes = 16
	// trailerBytes is the CRC trailer size.
	trailerBytes = 4

	// MaxBatch bounds the operations in one request frame.
	MaxBatch = 1 << 16
	// MaxPayload bounds a frame payload: the largest legal batch (a
	// key/value batch of MaxBatch pairs plus its count prefix). Anything
	// longer is rejected before it is read.
	MaxPayload = 4 + MaxBatch*16

	// MaxReplBatch bounds the records in one REPLBATCH frame: 17 bytes
	// per record plus the 20-byte prefix stays well inside MaxPayload.
	MaxReplBatch = 1 << 15

	// MaxTripleBatch bounds the operations in a triple-column request
	// (UPSERTTTL, CAS): the largest 24-byte-stride batch whose payload
	// still fits MaxPayload, so the reader's allocation bound is
	// unchanged.
	MaxTripleBatch = (MaxPayload - 4) / 24
)

// Error-text prefixes for replication routing errors carried in ERR
// frames. They are protocol, not presentation: clients match on them
// to decide whether to re-route a request to another node.
const (
	// ErrTextReadOnly prefixes rejections of mutations sent to a
	// non-writable node (a follower) — re-route to the primary.
	ErrTextReadOnly = "READONLY"
	// ErrTextBehind prefixes rejections of token-carrying reads on a
	// replica that could not catch up to the token in time — retry
	// here, or read from a fresher node.
	ErrTextBehind = "BEHIND"
)

// ErrFrame is returned (wrapped) for a structurally invalid frame: bad
// magic, unsupported version, nonzero reserved bytes, or a CRC
// mismatch.
var ErrFrame = errors.New("wire: invalid frame")

// ErrTooLarge is returned for a frame payload above MaxPayload or a
// batch count above MaxBatch (or beyond its payload) — the reader's
// allocation bound.
var ErrTooLarge = errors.New("wire: frame exceeds protocol limits")

// Frame is one decoded message. Payload aliases the Reader's internal
// buffer and is valid only until the next call to Next.
type Frame struct {
	Op      Op
	ID      uint32
	Payload []byte
}

// AppendFrame appends one encoded frame to dst and returns the extended
// slice. The payload is copied; callers reuse their payload scratch
// immediately.
func AppendFrame(dst []byte, op Op, id uint32, payload []byte) []byte {
	if len(payload) > MaxPayload {
		panic(fmt.Sprintf("wire: payload of %d bytes exceeds MaxPayload", len(payload)))
	}
	start := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, magic)
	dst = append(dst, Version, byte(op), 0, 0)
	dst = binary.LittleEndian.AppendUint32(dst, id)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// Reader decodes a frame stream. It owns a reusable frame buffer, so a
// steady-state connection loop performs no per-frame allocation.
type Reader struct {
	r   io.Reader
	buf []byte
}

// NewReader returns a Reader decoding frames from r. Callers that can
// batch reads should hand in a buffered reader; Reader issues one Read
// sequence per frame section.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Next reads and validates one frame. The returned Frame's Payload
// aliases the Reader's buffer — valid only until the next call. A clean
// end of stream between frames returns io.EOF; a stream ending inside a
// frame returns io.ErrUnexpectedEOF (a torn frame).
func (r *Reader) Next() (Frame, error) {
	if cap(r.buf) < HeaderBytes {
		r.buf = make([]byte, 4096)
	}
	hdr := r.buf[:HeaderBytes]
	if _, err := io.ReadFull(r.r, hdr); err != nil {
		return Frame{}, err // io.EOF at a frame boundary, ErrUnexpectedEOF inside the header
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != magic {
		return Frame{}, fmt.Errorf("%w: bad magic %#x", ErrFrame, binary.LittleEndian.Uint32(hdr[0:4]))
	}
	if hdr[4] != Version {
		return Frame{}, fmt.Errorf("%w: unsupported version %d", ErrFrame, hdr[4])
	}
	if hdr[6] != 0 || hdr[7] != 0 {
		return Frame{}, fmt.Errorf("%w: nonzero reserved bytes", ErrFrame)
	}
	n := int(binary.LittleEndian.Uint32(hdr[12:16]))
	if n > MaxPayload {
		return Frame{}, fmt.Errorf("%w: payload of %d bytes", ErrTooLarge, n)
	}
	total := HeaderBytes + n + trailerBytes
	if cap(r.buf) < total {
		grown := make([]byte, total)
		copy(grown, hdr)
		r.buf = grown
	} else {
		r.buf = r.buf[:cap(r.buf)]
	}
	if _, err := io.ReadFull(r.r, r.buf[HeaderBytes:total]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF // the stream died inside the frame
		}
		return Frame{}, err
	}
	body := r.buf[:HeaderBytes+n]
	want := binary.LittleEndian.Uint32(r.buf[HeaderBytes+n : total])
	if got := crc32.ChecksumIEEE(body); got != want {
		return Frame{}, fmt.Errorf("%w: crc %#x, want %#x", ErrFrame, got, want)
	}
	return Frame{
		Op:      Op(r.buf[5]),
		ID:      binary.LittleEndian.Uint32(r.buf[8:12]),
		Payload: r.buf[HeaderBytes : HeaderBytes+n],
	}, nil
}

// AppendKV appends a key/value batch payload (INSERT/UPSERT). It panics
// if the slices differ in length or exceed MaxBatch — both are caller
// bugs, checked before anything reaches a socket.
func AppendKV(dst []byte, keys, vals []uint64) []byte {
	if len(keys) != len(vals) {
		panic("wire: key/value batch length mismatch")
	}
	if len(keys) > MaxBatch {
		panic("wire: batch exceeds MaxBatch")
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(keys)))
	for i := range keys {
		dst = binary.LittleEndian.AppendUint64(dst, keys[i])
		dst = binary.LittleEndian.AppendUint64(dst, vals[i])
	}
	return dst
}

// DecodeKVInto appends the decoded key/value batch of p to keys and
// vals and returns the extended slices. The count prefix is validated
// against MaxBatch and the payload length before anything is copied.
func DecodeKVInto(p []byte, keys, vals []uint64) ([]uint64, []uint64, error) {
	n, body, err := batchHeader(p, 16)
	if err != nil {
		return keys, vals, err
	}
	for i := 0; i < n; i++ {
		keys = append(keys, binary.LittleEndian.Uint64(body[i*16:]))
		vals = append(vals, binary.LittleEndian.Uint64(body[i*16+8:]))
	}
	return keys, vals, nil
}

// AppendKeys appends a key batch payload (LOOKUP/DELETE). It panics if
// the batch exceeds MaxBatch.
func AppendKeys(dst []byte, keys []uint64) []byte {
	if len(keys) > MaxBatch {
		panic("wire: batch exceeds MaxBatch")
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(keys)))
	for _, k := range keys {
		dst = binary.LittleEndian.AppendUint64(dst, k)
	}
	return dst
}

// DecodeKeysInto appends the decoded key batch of p to keys.
func DecodeKeysInto(p []byte, keys []uint64) ([]uint64, error) {
	n, body, err := batchHeader(p, 8)
	if err != nil {
		return keys, err
	}
	for i := 0; i < n; i++ {
		keys = append(keys, binary.LittleEndian.Uint64(body[i*8:]))
	}
	return keys, nil
}

// AppendValues appends a VALUES response payload: vals[i] and found[i]
// answer the i-th looked-up key.
func AppendValues(dst []byte, vals []uint64, found []bool) []byte {
	if len(vals) != len(found) {
		panic("wire: value/found length mismatch")
	}
	if len(vals) > MaxBatch {
		panic("wire: batch exceeds MaxBatch")
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(vals)))
	for i := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, vals[i])
		if found[i] {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

// DecodeValuesInto appends the decoded VALUES payload to vals and
// found.
func DecodeValuesInto(p []byte, vals []uint64, found []bool) ([]uint64, []bool, error) {
	n, body, err := batchHeader(p, 9)
	if err != nil {
		return vals, found, err
	}
	for i := 0; i < n; i++ {
		vals = append(vals, binary.LittleEndian.Uint64(body[i*9:]))
		found = append(found, body[i*9+8] != 0)
	}
	return vals, found, nil
}

// AppendFounds appends a FOUNDS response payload (DELETE results).
func AppendFounds(dst []byte, found []bool) []byte {
	if len(found) > MaxBatch {
		panic("wire: batch exceeds MaxBatch")
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(found)))
	for _, ok := range found {
		if ok {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

// DecodeFoundsInto appends the decoded FOUNDS payload to found.
func DecodeFoundsInto(p []byte, found []bool) ([]bool, error) {
	n, body, err := batchHeader(p, 1)
	if err != nil {
		return found, err
	}
	for i := 0; i < n; i++ {
		found = append(found, body[i] != 0)
	}
	return found, nil
}

// AppendTriples appends a triple-column batch payload: UPSERTTTL's
// (key, val, deadline) or CAS's (key, old, new). It panics on length
// mismatches or batches above MaxTripleBatch — caller bugs.
func AppendTriples(dst []byte, a, b, c []uint64) []byte {
	if len(a) != len(b) || len(a) != len(c) {
		panic("wire: triple batch length mismatch")
	}
	if len(a) > MaxTripleBatch {
		panic("wire: batch exceeds MaxTripleBatch")
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(a)))
	for i := range a {
		dst = binary.LittleEndian.AppendUint64(dst, a[i])
		dst = binary.LittleEndian.AppendUint64(dst, b[i])
		dst = binary.LittleEndian.AppendUint64(dst, c[i])
	}
	return dst
}

// DecodeTriplesInto appends the decoded triple-column batch of p to the
// three column slices.
func DecodeTriplesInto(p []byte, a, b, c []uint64) ([]uint64, []uint64, []uint64, error) {
	n, body, err := batchHeader(p, 24)
	if err != nil {
		return a, b, c, err
	}
	for i := 0; i < n; i++ {
		a = append(a, binary.LittleEndian.Uint64(body[i*24:]))
		b = append(b, binary.LittleEndian.Uint64(body[i*24+8:]))
		c = append(c, binary.LittleEndian.Uint64(body[i*24+16:]))
	}
	return a, b, c, nil
}

// AppendScan appends a SCAN request payload: the resume cursor (0
// starts a scan) and the page size the client wants.
func AppendScan(dst []byte, cursor uint64, max uint32) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, cursor)
	return binary.LittleEndian.AppendUint32(dst, max)
}

// DecodeScan decodes a SCAN request payload.
func DecodeScan(p []byte) (cursor uint64, max uint32, err error) {
	if len(p) != 12 {
		return 0, 0, fmt.Errorf("%w: %d-byte SCAN payload", ErrFrame, len(p))
	}
	return binary.LittleEndian.Uint64(p), binary.LittleEndian.Uint32(p[8:]), nil
}

// AppendScanR appends a SCANR response payload: the cursor for the next
// page (extbuf.ScanDone when exhausted) and this page's entries.
func AppendScanR(dst []byte, next uint64, keys, vals []uint64) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, next)
	return AppendKV(dst, keys, vals)
}

// DecodeScanRInto decodes a SCANR payload, appending the entries.
func DecodeScanRInto(p []byte, keys, vals []uint64) (next uint64, outK, outV []uint64, err error) {
	if len(p) < 8 {
		return 0, keys, vals, fmt.Errorf("%w: %d-byte SCANR payload", ErrFrame, len(p))
	}
	next = binary.LittleEndian.Uint64(p)
	outK, outV, err = DecodeKVInto(p[8:], keys, vals)
	return next, outK, outV, err
}

// batchHeader validates a count-prefixed payload whose entries are
// stride bytes each and returns the count and entry bytes.
func batchHeader(p []byte, stride int) (int, []byte, error) {
	if len(p) < 4 {
		return 0, nil, fmt.Errorf("%w: %d-byte batch payload", ErrFrame, len(p))
	}
	n := int(binary.LittleEndian.Uint32(p))
	if n > MaxBatch {
		return 0, nil, fmt.Errorf("%w: batch of %d operations", ErrTooLarge, n)
	}
	if len(p) != 4+n*stride {
		return 0, nil, fmt.Errorf("%w: batch of %d needs %d payload bytes, frame has %d",
			ErrFrame, n, 4+n*stride, len(p))
	}
	return n, p[4:], nil
}

// AppendCount appends a COUNT response payload.
func AppendCount(dst []byte, n uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, n)
}

// DecodeCount decodes a COUNT response payload.
func DecodeCount(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("%w: %d-byte COUNT payload", ErrFrame, len(p))
	}
	return binary.LittleEndian.Uint64(p), nil
}

// AppendLSN appends a bare-LSN payload (REPL_SUBSCRIBE, REPL_ACK).
func AppendLSN(dst []byte, lsn uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, lsn)
}

// DecodeLSN decodes a bare-LSN payload.
func DecodeLSN(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("%w: %d-byte LSN payload", ErrFrame, len(p))
	}
	return binary.LittleEndian.Uint64(p), nil
}

// AppendLookupAt appends a LOOKUPAT request payload: the minimum LSN
// the serving node must have applied, then the key batch.
func AppendLookupAt(dst []byte, minLSN uint64, keys []uint64) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, minLSN)
	return AppendKeys(dst, keys)
}

// DecodeLookupAtInto decodes a LOOKUPAT payload, appending the keys.
func DecodeLookupAtInto(p []byte, keys []uint64) (uint64, []uint64, error) {
	if len(p) < 8 {
		return 0, keys, fmt.Errorf("%w: %d-byte LOOKUPAT payload", ErrFrame, len(p))
	}
	minLSN := binary.LittleEndian.Uint64(p)
	keys, err := DecodeKeysInto(p[8:], keys)
	return minLSN, keys, err
}

// AppendAckT appends an ACKT response payload: the LSN assigned to the
// mutation batch's last record and the node's replication epoch.
func AppendAckT(dst []byte, lsn, epoch uint64) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, lsn)
	return binary.LittleEndian.AppendUint64(dst, epoch)
}

// DecodeAckT decodes an ACKT response payload.
func DecodeAckT(p []byte) (lsn, epoch uint64, err error) {
	if len(p) != 16 {
		return 0, 0, fmt.Errorf("%w: %d-byte ACKT payload", ErrFrame, len(p))
	}
	return binary.LittleEndian.Uint64(p), binary.LittleEndian.Uint64(p[8:]), nil
}

// AppendFoundsT appends a FOUNDST response payload: ACKT's (LSN, epoch)
// followed by the per-key found bytes of the delete batch.
func AppendFoundsT(dst []byte, lsn, epoch uint64, found []bool) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, lsn)
	dst = binary.LittleEndian.AppendUint64(dst, epoch)
	return AppendFounds(dst, found)
}

// DecodeFoundsTInto decodes a FOUNDST payload, appending the founds.
func DecodeFoundsTInto(p []byte, found []bool) (lsn, epoch uint64, out []bool, err error) {
	if len(p) < 16 {
		return 0, 0, found, fmt.Errorf("%w: %d-byte FOUNDST payload", ErrFrame, len(p))
	}
	lsn = binary.LittleEndian.Uint64(p)
	epoch = binary.LittleEndian.Uint64(p[8:])
	out, err = DecodeFoundsInto(p[16:], found)
	return lsn, epoch, out, err
}

// Node roles carried by INFOR.
const (
	RolePrimary  = 1 // accepts mutations, sources replication
	RoleFollower = 2 // replays a primary's stream, serves reads
)

// Info is a node's replication identity: which epoch it is in, how far
// it has applied, and whether it accepts mutations. Clients use it to
// find the writable node after a failover.
type Info struct {
	Epoch      uint64
	AppliedLSN uint64
	Writable   bool
	Role       uint8
}

// AppendInfo appends an INFOR response payload.
func AppendInfo(dst []byte, info Info) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, info.Epoch)
	dst = binary.LittleEndian.AppendUint64(dst, info.AppliedLSN)
	if info.Writable {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	return append(dst, info.Role)
}

// DecodeInfo decodes an INFOR response payload.
func DecodeInfo(p []byte) (Info, error) {
	if len(p) != 18 {
		return Info{}, fmt.Errorf("%w: %d-byte INFOR payload", ErrFrame, len(p))
	}
	return Info{
		Epoch:      binary.LittleEndian.Uint64(p),
		AppliedLSN: binary.LittleEndian.Uint64(p[8:]),
		Writable:   p[16] != 0,
		Role:       p[17],
	}, nil
}

// ReplRec is one replicated operation in a REPLBATCH frame. Op uses
// the WAL's operation codes (1 insert, 2 upsert, 3 delete); the LSN is
// implicit — record i of a batch starting at firstLSN has LSN
// firstLSN+i.
type ReplRec struct {
	Op       uint8
	Key, Val uint64
}

// AppendReplBatch appends a REPLBATCH response payload. An empty batch
// (heartbeat) carries only the epoch and next-LSN-to-ship prefix. It
// panics on batches above MaxReplBatch — a source bug.
func AppendReplBatch(dst []byte, epoch, firstLSN uint64, recs []ReplRec) []byte {
	if len(recs) > MaxReplBatch {
		panic("wire: repl batch exceeds MaxReplBatch")
	}
	dst = binary.LittleEndian.AppendUint64(dst, epoch)
	dst = binary.LittleEndian.AppendUint64(dst, firstLSN)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(recs)))
	for _, r := range recs {
		dst = append(dst, r.Op)
		dst = binary.LittleEndian.AppendUint64(dst, r.Key)
		dst = binary.LittleEndian.AppendUint64(dst, r.Val)
	}
	return dst
}

// DecodeReplBatchInto decodes a REPLBATCH payload, appending records.
func DecodeReplBatchInto(p []byte, recs []ReplRec) (epoch, firstLSN uint64, out []ReplRec, err error) {
	if len(p) < 20 {
		return 0, 0, recs, fmt.Errorf("%w: %d-byte REPLBATCH payload", ErrFrame, len(p))
	}
	epoch = binary.LittleEndian.Uint64(p)
	firstLSN = binary.LittleEndian.Uint64(p[8:])
	n := int(binary.LittleEndian.Uint32(p[16:]))
	if n > MaxReplBatch {
		return 0, 0, recs, fmt.Errorf("%w: repl batch of %d records", ErrTooLarge, n)
	}
	body := p[20:]
	if len(body) != n*17 {
		return 0, 0, recs, fmt.Errorf("%w: repl batch of %d needs %d payload bytes, frame has %d",
			ErrFrame, n, n*17, len(body))
	}
	for i := 0; i < n; i++ {
		recs = append(recs, ReplRec{
			Op:  body[i*17],
			Key: binary.LittleEndian.Uint64(body[i*17+1:]),
			Val: binary.LittleEndian.Uint64(body[i*17+9:]),
		})
	}
	return epoch, firstLSN, recs, nil
}

// Stats is the wire form of the server's STATS reply: the engine's
// length and memory gauges, its model counters (extbuf.Stats), and the
// aggregated backend real-cost counters (extbuf.StoreStats) — carried
// as those structs directly, so the engine, server and client never
// copy counters field by field. Encoded as a field count and then the
// fields as int64s in statsFields order, so a newer server may append
// fields without breaking an older decoder.
type Stats struct {
	Len        int64
	MemoryUsed int64
	Ops        extbuf.Stats
	Store      extbuf.StoreStats
	Repl       extbuf.ReplStats
	Expiry     extbuf.ExpiryStats
}

// statsFields lists the encoded fields in wire order. The order is the
// protocol; append only.
func (s *Stats) statsFields() []*int64 {
	return []*int64{
		&s.Len, &s.MemoryUsed, &s.Ops.Reads, &s.Ops.Writes, &s.Ops.WriteBacks,
		&s.Store.ReadSyscalls, &s.Store.WriteSyscalls, &s.Store.CacheHits, &s.Store.CacheMisses,
		&s.Store.BytesRead, &s.Store.BytesWritten, &s.Store.Evictions, &s.Store.DirtyWritebacks,
		&s.Store.FlushedFrames, &s.Store.FlushRuns, &s.Store.Fsyncs, &s.Store.WALSpills, &s.Store.WALFsyncs,
		&s.Store.FsyncsElided, &s.Store.GhostHits, &s.Store.WALFsyncsElided,
		// PR 7: replication counters.
		&s.Repl.Epoch, &s.Repl.CurrentLSN, &s.Repl.FollowerLag, &s.Repl.FramesShipped, &s.Repl.FramesReplayed,
		// PR 8: ship-log retained-window start (append-only, like every
		// extension above — old decoders ignore it, old encoders leave
		// it zero).
		&s.Repl.ShipStartLSN,
		// PR 9: kernel-bypass I/O tier counters.
		&s.Store.DirectIO, &s.Store.ODirectFallbacks,
		&s.Store.UringEnters, &s.Store.UringSQEs, &s.Store.UringFallbacks,
		// PR 10: TTL expiry counters.
		&s.Expiry.Tracked, &s.Expiry.LazyHits, &s.Expiry.Swept,
	}
}

// AppendStats appends a STATS response payload.
func AppendStats(dst []byte, s Stats) []byte {
	fields := s.statsFields()
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(fields)))
	for _, f := range fields {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(*f))
	}
	return dst
}

// DecodeStats decodes a STATS response payload. Extra trailing fields
// from a newer server are ignored; missing fields decode as zero.
func DecodeStats(p []byte) (Stats, error) {
	var s Stats
	if len(p) < 4 {
		return s, fmt.Errorf("%w: %d-byte STATS payload", ErrFrame, len(p))
	}
	n := int(binary.LittleEndian.Uint32(p))
	if n > 1024 {
		return s, fmt.Errorf("%w: STATS with %d fields", ErrTooLarge, n)
	}
	if len(p) != 4+n*8 {
		return s, fmt.Errorf("%w: STATS of %d fields needs %d payload bytes, frame has %d",
			ErrFrame, n, 4+n*8, len(p))
	}
	fields := s.statsFields()
	for i := 0; i < n && i < len(fields); i++ {
		*fields[i] = int64(binary.LittleEndian.Uint64(p[4+i*8:]))
	}
	return s, nil
}
